package wgrap

import (
	"context"
	"math"
	"os"
	"runtime"
	"testing"
)

// BenchmarkResolveAfterEdit is the session warm-path acceptance benchmark at
// the paper's conference scale (P=1000, R=2000, T=40, δp=3): a long-lived
// Solver absorbs one small edit per iteration (a fresh conflict of interest,
// or a withdrawal immediately restored next iteration) and re-solves warm;
// the cold variant builds a new session and solves from scratch on every
// iteration. CI gates warm-resolve-after-coi against BENCH_BASELINE.json
// (see cmd/wgrap-bench), and the acceptance criterion requires the warm path
// to beat the cold one by ≥3x.
func BenchmarkResolveAfterEdit(b *testing.B) {
	in := benchConferenceInstance(1000, 2000, 40, 3)

	b.Run("warm-resolve-after-coi", func(b *testing.B) {
		s, err := NewSolver(in, WithMethod(MethodSDGA))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Solve(context.Background()); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.AddConflict((i*37)%in.NumReviewers(), (i*11)%in.NumPapers()); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Resolve(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("warm-resolve-after-withdraw", func(b *testing.B) {
		s, err := NewSolver(in, WithMethod(MethodSDGA))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Solve(context.Background()); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := (i * 13) % in.NumPapers()
			if err := s.WithdrawPaper(p); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Resolve(context.Background()); err != nil {
				b.Fatal(err)
			}
			if err := s.RestorePaper(p); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Resolve(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("cold-solve", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := NewSolver(in, WithMethod(MethodSDGA))
			if err != nil {
				b.Fatal(err)
			}
			if err := s.AddConflict((i*37)%in.NumReviewers(), (i*11)%in.NumPapers()); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Solve(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestResolveAfterEditSpeedup asserts the acceptance criterion directly:
// at P=1000/R=2000 a warm Resolve after one added conflict of interest beats
// a cold Solve of the edited instance by at least 3x (while the randomized
// parity tests pin the scores to 1e-9). Skipped in -short mode; the CI bench
// gate tracks the same ratio continuously via BenchmarkResolveAfterEdit.
func TestResolveAfterEditSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale speedup check skipped in -short mode")
	}
	in := benchConferenceInstance(1000, 2000, 40, 3)
	warm, err := NewSolver(in, WithMethod(MethodSDGA))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Solve(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Median-of-three single-COI warm resolves against one cold solve.
	var warmBest, coldElapsed float64
	var warmScore, coldScore float64
	for trial := 0; trial < 3; trial++ {
		if err := warm.AddConflict(100+trial*131, 200+trial*17); err != nil {
			t.Fatal(err)
		}
		res, err := warm.Resolve(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		sec := res.Elapsed.Seconds()
		if trial == 0 || sec < warmBest {
			warmBest = sec
		}
		warmScore = res.Score
	}
	cold, err := NewSolver(warm.Instance(), WithMethod(MethodSDGA))
	if err != nil {
		t.Fatal(err)
	}
	coldRes, err := cold.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	coldElapsed = coldRes.Elapsed.Seconds()
	coldScore = coldRes.Score
	if math.Abs(warmScore-coldScore) > 1e-9 {
		t.Fatalf("score parity: warm %v != cold %v", warmScore, coldScore)
	}
	ratio := coldElapsed / warmBest
	t.Logf("warm resolve (best of 3) %.3fs vs cold solve %.3fs: %.1fx", warmBest, coldElapsed, ratio)
	if ratio < 3 {
		t.Fatalf("warm resolve only %.1fx faster than cold solve, want >= 3x", ratio)
	}
}

// BenchmarkResolveAfterWithdraw is the acceptance benchmark for the parallel
// warm re-solve at the paper's conference scale (P=1000, R=2000, T=40,
// δp=3): a coalesced withdrawal wave — withdrawWave papers withdrawn, one
// warm Resolve, then restored, one warm Resolve — exactly the batch shape
// ResolveAsync's write coalescing drains. The wave exercises both parallel
// levers at once: the sharded dirty-row read phase of ResolveRows and the
// batched improving-cycle repair (one search per cascade depth instead of
// one per freed slot). The single-worker variant pins GOMAXPROCS and shards
// to 1 (the name avoids a trailing digit, which the wgrap-bench parser would
// strip as a GOMAXPROCS suffix); CI requires multicore to beat it by ≥1.3x
// (see cmd/wgrap-bench -min-speedup) while the two produce bit-identical
// assignments (TestResolveRowsShardedDeterminism pins that at the flow
// layer, TestSolverWithdrawWaveShardParity end to end).
func BenchmarkResolveAfterWithdraw(b *testing.B) {
	in := benchConferenceInstance(1000, 2000, 40, 3)
	run := func(b *testing.B, shards int) {
		s, err := NewSolver(in, WithMethod(MethodSDGA), WithShards(shards))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Solve(context.Background()); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for w := 0; w < withdrawWave; w++ {
				if err := s.WithdrawPaper((i*withdrawWave + w*61) % in.NumPapers()); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := s.Resolve(context.Background()); err != nil {
				b.Fatal(err)
			}
			for w := 0; w < withdrawWave; w++ {
				if err := s.RestorePaper((i*withdrawWave + w*61) % in.NumPapers()); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := s.Resolve(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("single-worker", func(b *testing.B) {
		prev := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(prev)
		run(b, 1)
	})
	b.Run("multicore", func(b *testing.B) {
		run(b, 0)
	})
}

// withdrawWave is the wave width of BenchmarkResolveAfterWithdraw and its
// parity test: wide enough to engage the sharded dirty-row read phase
// (withdrawWave × R = 40000 cells, above the flow layer's 1<<15 parallel
// threshold), small enough to stay a realistic pre-deadline burst.
const withdrawWave = 20

// BenchmarkSolveColdPaperScale is the multi-core acceptance benchmark for
// the sharded stage solve: one full cold SDGA solve at the paper's
// conference scale (P=1000, R=2000, T=40, δp=3), run once pinned to a
// single CPU with sharding off (sub-benchmark "single-cpu" — the name
// avoids a trailing digit, which the wgrap-bench parser would strip as a
// GOMAXPROCS suffix) and once with all CPUs and the default sharding. CI
// requires the multicore variant to beat the single-CPU one by ≥1.5x on its
// ≥4-CPU runners (see cmd/wgrap-bench -min-speedup); the two variants
// produce identical assignments, so the comparison is pure wall-clock.
func BenchmarkSolveColdPaperScale(b *testing.B) {
	in := benchConferenceInstance(1000, 2000, 40, 3)
	run := func(b *testing.B, shards int) {
		for i := 0; i < b.N; i++ {
			s, err := NewSolver(in, WithMethod(MethodSDGA), WithShards(shards))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Solve(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("single-cpu", func(b *testing.B) {
		prev := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(prev)
		run(b, 1)
	})
	b.Run("multicore", func(b *testing.B) {
		run(b, 0)
	})
}

// TestShardedSolveSpeedup asserts the multi-core acceptance criterion
// directly on machines with at least 4 CPUs: the full paper-scale cold solve
// with the sharded stage solve (and the parallel profit-matrix build it
// rides with) must run ≥1.5x faster than the same solve pinned to one CPU,
// while producing an identical assignment. A wall-clock ratio is only
// meaningful on an otherwise idle machine — inside `go test ./...` the
// multicore variant competes with other package test binaries for the same
// cores while the pinned variant does not — so the assertion is opt-in via
// WGRAP_ASSERT_SPEEDUP=1; CI enforces the same ratio in its isolated bench
// job through BenchmarkSolveColdPaperScale and wgrap-bench -min-speedup.
func TestShardedSolveSpeedup(t *testing.T) {
	if os.Getenv("WGRAP_ASSERT_SPEEDUP") == "" {
		t.Skip("wall-clock speedup assertion is opt-in: set WGRAP_ASSERT_SPEEDUP=1 on an idle machine (CI asserts the ratio in the isolated bench job)")
	}
	if testing.Short() {
		t.Skip("paper-scale speedup check skipped in -short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs to assert the multi-core speedup, have %d", runtime.NumCPU())
	}
	in := benchConferenceInstance(1000, 2000, 40, 3)
	solve := func(shards int) (*Result, float64) {
		best := math.Inf(1)
		var res *Result
		for trial := 0; trial < 2; trial++ {
			s, err := NewSolver(in, WithMethod(MethodSDGA), WithShards(shards))
			if err != nil {
				t.Fatal(err)
			}
			r, err := s.Solve(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if sec := r.Elapsed.Seconds(); sec < best {
				best = sec
			}
			res = r
		}
		return res, best
	}
	prev := runtime.GOMAXPROCS(1)
	serialRes, serialSec := solve(1)
	runtime.GOMAXPROCS(prev)
	multiRes, multiSec := solve(0)
	if math.Abs(serialRes.Score-multiRes.Score) > 1e-9 {
		t.Fatalf("sharded score %v != serial score %v", multiRes.Score, serialRes.Score)
	}
	ratio := serialSec / multiSec
	t.Logf("cold solve: 1 cpu %.2fs vs %d cpus %.2fs: %.2fx", serialSec, runtime.NumCPU(), multiSec, ratio)
	if ratio < 1.5 {
		t.Fatalf("multicore cold solve only %.2fx faster than single-CPU, want >= 1.5x", ratio)
	}
}
