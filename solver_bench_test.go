package wgrap

import (
	"context"
	"math"
	"testing"
)

// BenchmarkResolveAfterEdit is the session warm-path acceptance benchmark at
// the paper's conference scale (P=1000, R=2000, T=40, δp=3): a long-lived
// Solver absorbs one small edit per iteration (a fresh conflict of interest,
// or a withdrawal immediately restored next iteration) and re-solves warm;
// the cold variant builds a new session and solves from scratch on every
// iteration. CI gates warm-resolve-after-coi against BENCH_BASELINE.json
// (see cmd/wgrap-bench), and the acceptance criterion requires the warm path
// to beat the cold one by ≥3x.
func BenchmarkResolveAfterEdit(b *testing.B) {
	in := benchConferenceInstance(1000, 2000, 40, 3)

	b.Run("warm-resolve-after-coi", func(b *testing.B) {
		s, err := NewSolver(in, WithMethod(MethodSDGA))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Solve(context.Background()); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := s.AddConflict((i*37)%in.NumReviewers(), (i*11)%in.NumPapers()); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Resolve(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("warm-resolve-after-withdraw", func(b *testing.B) {
		s, err := NewSolver(in, WithMethod(MethodSDGA))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Solve(context.Background()); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := (i * 13) % in.NumPapers()
			if err := s.WithdrawPaper(p); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Resolve(context.Background()); err != nil {
				b.Fatal(err)
			}
			if err := s.RestorePaper(p); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Resolve(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("cold-solve", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := NewSolver(in, WithMethod(MethodSDGA))
			if err != nil {
				b.Fatal(err)
			}
			if err := s.AddConflict((i*37)%in.NumReviewers(), (i*11)%in.NumPapers()); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Solve(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestResolveAfterEditSpeedup asserts the acceptance criterion directly:
// at P=1000/R=2000 a warm Resolve after one added conflict of interest beats
// a cold Solve of the edited instance by at least 3x (while the randomized
// parity tests pin the scores to 1e-9). Skipped in -short mode; the CI bench
// gate tracks the same ratio continuously via BenchmarkResolveAfterEdit.
func TestResolveAfterEditSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale speedup check skipped in -short mode")
	}
	in := benchConferenceInstance(1000, 2000, 40, 3)
	warm, err := NewSolver(in, WithMethod(MethodSDGA))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Solve(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Median-of-three single-COI warm resolves against one cold solve.
	var warmBest, coldElapsed float64
	var warmScore, coldScore float64
	for trial := 0; trial < 3; trial++ {
		if err := warm.AddConflict(100+trial*131, 200+trial*17); err != nil {
			t.Fatal(err)
		}
		res, err := warm.Resolve(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		sec := res.Elapsed.Seconds()
		if trial == 0 || sec < warmBest {
			warmBest = sec
		}
		warmScore = res.Score
	}
	cold, err := NewSolver(warm.Instance(), WithMethod(MethodSDGA))
	if err != nil {
		t.Fatal(err)
	}
	coldRes, err := cold.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	coldElapsed = coldRes.Elapsed.Seconds()
	coldScore = coldRes.Score
	if math.Abs(warmScore-coldScore) > 1e-9 {
		t.Fatalf("score parity: warm %v != cold %v", warmScore, coldScore)
	}
	ratio := coldElapsed / warmBest
	t.Logf("warm resolve (best of 3) %.3fs vs cold solve %.3fs: %.1fx", warmBest, coldElapsed, ratio)
	if ratio < 3 {
		t.Fatalf("warm resolve only %.1fx faster than cold solve, want >= 3x", ratio)
	}
}
