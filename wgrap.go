// Package wgrap is the public API of the Weighted-coverage Group-based
// Reviewer Assignment library, a reproduction of "Weighted Coverage based
// Reviewer Assignment" (Kou, U, Mamoulis, Gong — SIGMOD 2015).
//
// The package exposes the paper's data model (topic vectors, reviewers,
// papers, assignments), the exact Journal Reviewer Assignment solver (the
// Branch-and-Bound Algorithm, BBA), the approximate Conference Reviewer
// Assignment algorithms (the Stage Deepening Greedy Algorithm SDGA, its
// stochastic refinement SRA, and the baselines used in the paper's
// evaluation), the evaluation metrics, and the topic-extraction pipeline
// (Author-Topic Model plus EM inference).
//
// Quick start:
//
//	in := wgrap.NewInstance(papers, reviewers, 3, 0) // δp=3, minimum workload
//	result, err := wgrap.Assign(in, wgrap.AssignOptions{})
//	// result.Assignment.Groups[p] lists the reviewers of paper p.
//
// For a single (journal) paper:
//
//	group, err := wgrap.AssignJournal(in) // exact optimum via BBA
//
// Long-running assignments are cancellable: AssignContext and RefineContext
// accept a context.Context whose cancellation or deadline aborts the
// construction phase and gracefully stops the (anytime) refinement phase.
// The hot paths — marginal-gain evaluation and profit-matrix construction —
// run through the fused, parallel gain engine of internal/engine.
package wgrap

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cra"
	"repro/internal/eval"
	"repro/internal/flow"
	"repro/internal/jra"
)

// Re-exported core types: the data model of Definition 3.
type (
	// Vector is a T-dimensional topic vector.
	Vector = core.Vector
	// Paper is a submission with its topic vector.
	Paper = core.Paper
	// Reviewer is a candidate reviewer with their expertise vector.
	Reviewer = core.Reviewer
	// Instance bundles papers, reviewers, the group size δp, the workload δr,
	// conflicts of interest and the scoring function.
	Instance = core.Instance
	// Assignment maps every paper to its group of reviewers.
	Assignment = core.Assignment
	// ScoreFunc scores how well an expertise vector covers a paper vector.
	ScoreFunc = core.ScoreFunc
	// JournalResult is the outcome of a journal (single-paper) assignment.
	JournalResult = jra.Result
)

// Scoring functions of Definition 1 and Appendix B.
var (
	// WeightedCoverage is the paper's default quality measure (Definition 1).
	WeightedCoverage = core.WeightedCoverage
	// ReviewerCoverage is the winner-takes-all reviewer-side alternative cR.
	ReviewerCoverage = core.ReviewerCoverage
	// PaperCoverage is the paper-side alternative cP.
	PaperCoverage = core.PaperCoverage
	// DotProduct is the inner-product alternative cD.
	DotProduct = core.DotProduct
)

// NewInstance builds a WGRAP instance. groupSize is δp (reviewers per paper);
// workload is δr (papers per reviewer), where 0 selects the minimum balanced
// workload ⌈P·δp/R⌉ used throughout the paper's experiments.
func NewInstance(papers []Paper, reviewers []Reviewer, groupSize, workload int) *Instance {
	in := core.NewInstance(papers, reviewers, groupSize, workload)
	if workload == 0 && len(reviewers) > 0 {
		in.Workload = in.MinWorkload()
	}
	return in
}

// Method identifies a conference assignment algorithm.
type Method string

// Conference assignment methods (Section 4 and the baselines of Section 5.2).
const (
	// MethodSDGASRA is the paper's recommended pipeline: the Stage Deepening
	// Greedy Algorithm followed by stochastic refinement. Default.
	MethodSDGASRA Method = "sdga-sra"
	// MethodSDGA is the Stage Deepening Greedy Algorithm alone
	// ((1−1/e)- or 1/2-approximation).
	MethodSDGA Method = "sdga"
	// MethodGreedy is the pairwise greedy of Long et al. (1/3-approximation).
	MethodGreedy Method = "greedy"
	// MethodBRGG is the Best Reviewer Group Greedy baseline.
	MethodBRGG Method = "brgg"
	// MethodStableMatching is the capacitated Gale–Shapley baseline (SM).
	MethodStableMatching Method = "sm"
	// MethodPairILP maximises the pair-additive (ARAP) objective exactly.
	MethodPairILP Method = "ilp"
)

// Methods lists the available conference assignment methods.
func Methods() []Method {
	return []Method{MethodSDGASRA, MethodSDGA, MethodGreedy, MethodBRGG, MethodStableMatching, MethodPairILP}
}

// TransportSolver selects the min-cost transportation engine used by the
// flow-based methods (SDGA's Stage-WGRAP solves and the ARAP/pair-ILP
// baseline).
type TransportSolver = flow.Solver

// Transportation solvers.
const (
	// TransportDijkstra is the default: a CSR-stored
	// Dijkstra-with-potentials solver that augments along maximal sets of
	// tight paths and warm-starts stage re-solves.
	TransportDijkstra TransportSolver = flow.Dijkstra
	// TransportLegacy is the original SPFA successive-shortest-paths solver,
	// kept for parity testing and the transport ablation benchmark.
	TransportLegacy TransportSolver = flow.Legacy
)

// AssignOptions configure Assign.
type AssignOptions struct {
	// Method selects the algorithm (default MethodSDGASRA).
	Method Method
	// Transport selects the transportation solver used by the flow-based
	// methods (default TransportDijkstra).
	Transport TransportSolver
	// Omega is the convergence threshold of the stochastic refinement
	// (default 10; only used by MethodSDGASRA).
	Omega int
	// RefinementBudget optionally caps the wall-clock refinement time. With
	// AssignContext it is unified with the context deadline: the refinement
	// stops at whichever comes first and returns the best assignment found.
	RefinementBudget time.Duration
	// Seed makes stochastic steps reproducible (default 1).
	Seed int64
}

// Result is the outcome of a conference assignment.
type Result struct {
	// Assignment holds, for every paper index, the assigned reviewer indices.
	Assignment *Assignment
	// Score is the WGRAP objective value (sum of per-paper coverage scores).
	Score float64
	// AverageCoverage is Score divided by the number of papers.
	AverageCoverage float64
	// LowestCoverage is the coverage score of the worst-served paper.
	LowestCoverage float64
	// Elapsed is the wall-clock time of the assignment.
	Elapsed time.Duration
	// Method echoes the algorithm used.
	Method Method
}

// algorithmFor maps a Method to its implementation.
func algorithmFor(opts AssignOptions) (cra.Algorithm, error) {
	method := opts.Method
	if method == "" {
		method = MethodSDGASRA
	}
	switch method {
	case MethodSDGASRA:
		return cra.WithRefiner{
			Base:    cra.SDGA{Transport: opts.Transport},
			Refiner: cra.SRA{Omega: opts.Omega, TimeBudget: opts.RefinementBudget, Seed: opts.Seed},
		}, nil
	case MethodSDGA:
		return cra.SDGA{Transport: opts.Transport}, nil
	case MethodGreedy:
		return cra.Greedy{}, nil
	case MethodBRGG:
		return cra.BRGG{}, nil
	case MethodStableMatching:
		return cra.StableMatching{}, nil
	case MethodPairILP:
		return cra.PairILP{Transport: opts.Transport}, nil
	default:
		return nil, fmt.Errorf("wgrap: unknown method %q", method)
	}
}

// Assign computes a conference assignment with the selected method (the
// general WGRAP of Definition 3). It is AssignContext with
// context.Background().
func Assign(in *Instance, opts AssignOptions) (*Result, error) {
	return AssignContext(context.Background(), in, opts)
}

// AssignContext computes a conference assignment under a context, the entry
// point for serving: cancelling ctx (or letting its deadline pass) aborts
// the construction phase with the context's error and gracefully stops the
// refinement phase of MethodSDGASRA, which is an anytime algorithm and
// returns the best assignment found so far. A ctx deadline and
// opts.RefinementBudget compose; the earlier one stops the refinement.
func AssignContext(ctx context.Context, in *Instance, opts AssignOptions) (*Result, error) {
	alg, err := algorithmFor(opts)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	a, err := alg.AssignContext(ctx, in)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	method := opts.Method
	if method == "" {
		method = MethodSDGASRA
	}
	return &Result{
		Assignment:      a,
		Score:           in.AssignmentScore(a),
		AverageCoverage: eval.AverageCoverage(in, a),
		LowestCoverage:  eval.LowestCoverage(in, a),
		Elapsed:         elapsed,
		Method:          method,
	}, nil
}

// Refine improves an existing assignment with the stochastic refinement of
// Section 4.4 and returns the refined copy (never worse than the input).
// It is RefineContext with context.Background().
func Refine(in *Instance, a *Assignment, opts AssignOptions) (*Assignment, error) {
	return RefineContext(context.Background(), in, a, opts)
}

// RefineContext improves an existing assignment under a context. Refinement
// is an anytime process: when ctx is done (or opts.RefinementBudget expires,
// whichever comes first) the best assignment found so far is returned —
// never worse than the input.
func RefineContext(ctx context.Context, in *Instance, a *Assignment, opts AssignOptions) (*Assignment, error) {
	sra := cra.SRA{Omega: opts.Omega, TimeBudget: opts.RefinementBudget, Seed: opts.Seed}
	return sra.RefineContext(ctx, in, a)
}

// AssignJournal finds the optimal reviewer group for a single-paper instance
// (the Journal Reviewer Assignment of Definition 6) with the exact
// Branch-and-Bound Algorithm.
func AssignJournal(in *Instance) (JournalResult, error) {
	return jra.BranchAndBound{}.Solve(in)
}

// TopReviewerGroups returns the k best reviewer groups for a single-paper
// instance, best first.
func TopReviewerGroups(in *Instance, k int) ([]JournalResult, error) {
	return jra.BranchAndBound{}.TopK(in, k)
}

// OptimalityRatio returns the assignment's score relative to the ideal
// (workload-free) assignment, the quality metric of Section 5.2.
func OptimalityRatio(in *Instance, a *Assignment) float64 {
	return eval.OptimalityRatio(in, a)
}

// SuperiorityRatio returns the fraction of papers that are served at least as
// well by x as by y, together with the fraction of exact ties.
func SuperiorityRatio(in *Instance, x, y *Assignment) (betterOrEqual, ties float64) {
	s := eval.SuperiorityRatio(in, x, y)
	return s.BetterOrEqual, s.Ties
}
