// Package wgrap is the public API of the Weighted-coverage Group-based
// Reviewer Assignment library, a reproduction of "Weighted Coverage based
// Reviewer Assignment" (Kou, U, Mamoulis, Gong — SIGMOD 2015) grown into a
// serving-oriented assignment engine.
//
// The package exposes the paper's data model (topic vectors, reviewers,
// papers, assignments), the exact Journal Reviewer Assignment solver (the
// Branch-and-Bound Algorithm, BBA), the approximate Conference Reviewer
// Assignment algorithms (the Stage Deepening Greedy Algorithm SDGA, its
// stochastic refinement SRA, and the baselines used in the paper's
// evaluation), the evaluation metrics, and the topic-extraction pipeline
// (Author-Topic Model plus EM inference).
//
// # Solver sessions
//
// The primary entry point is the long-lived Solver session. Real conference
// workloads are incremental — papers are withdrawn, reviewers declare late
// conflicts, workloads change — so the Solver owns its hot state (profit
// matrices, per-stage transportation solvers, refinement scratch) across
// calls and re-solves warm after edits:
//
//	in := wgrap.NewInstance(papers, reviewers, 3, 0) // δp=3, minimum workload
//	solver, err := wgrap.NewSolver(in)               // default SDGA-SRA pipeline
//	res, err := solver.Solve(ctx)                    // cold solve
//	// … a reviewer declares a conflict of interest:
//	err = solver.AddConflict(r, p)
//	res, err = solver.Resolve(ctx)                   // warm re-solve: much faster
//
// Resolve re-fills only the profit-matrix rows the edits dirtied and
// re-solves each SDGA stage's transportation from the retained flow and
// duals; the result matches what a cold Solve of the edited instance would
// return. Streaming anytime progress is available through
// Solver.OnImprovement (or the WithProgress option); structured sentinel
// errors (ErrInfeasible, ErrConflictSaturated, …) classify every failure.
//
// Long-running calls are cancellable: construction aborts with the context
// error, the (anytime) refinement phase stops gracefully at the deadline and
// keeps the best assignment found. The hot paths — marginal-gain evaluation
// and profit-matrix construction — run through the fused, parallel gain
// engine of internal/engine; the transportation solves through the
// warm-startable Dijkstra solver of internal/flow.
//
// # Concurrent serving
//
// A Solver is safe for concurrent use, with a read path that never blocks on
// a running solve. Every successful Solve or Resolve publishes an immutable,
// versioned View (an atomically swapped snapshot); View, Result and Progress
// read the latest one lock-free from any goroutine, at any time — including
// mid-solve:
//
//	v := solver.View()           // never blocks; v.Version is monotone
//	_ = v.Result, v.Warm, v.Edits
//
// Edits from concurrent goroutines are validated immediately and coalesced
// into a pending batch; when no solve is running they apply synchronously,
// otherwise they wait for the running solve to finish and drain with the
// next one. ResolveAsync returns a Ticket right away and drains the whole
// pending batch as one warm re-solve in the background; several outstanding
// tickets coalesce into a single solve and all complete with the same
// published Result. The coalesced warm re-solve returns the same assignment
// a cold solve of the identically edited instance would.
//
// Progress callbacks run on the solving goroutine while the solve lock is
// held: calling the blocking Solve or Resolve from inside one panics (it
// would deadlock); View, Progress, Result, the edit mutators and
// ResolveAsync are all callback-safe.
//
// For single-paper (journal) assignment, AssignJournalContext returns the
// exact optimum via branch and bound and TopReviewerGroupsContext the k best
// groups.
//
// The one-shot Assign/Refine entry points remain as deprecated shims over
// the session API.
package wgrap

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/flow"
	"repro/internal/jra"
)

// Re-exported core types: the data model of Definition 3.
type (
	// Vector is a T-dimensional topic vector.
	Vector = core.Vector
	// Paper is a submission with its topic vector.
	Paper = core.Paper
	// Reviewer is a candidate reviewer with their expertise vector.
	Reviewer = core.Reviewer
	// Instance bundles papers, reviewers, the group size δp, the workload δr,
	// conflicts of interest and the scoring function.
	Instance = core.Instance
	// Assignment maps every paper to its group of reviewers.
	Assignment = core.Assignment
	// ScoreFunc scores how well an expertise vector covers a paper vector.
	ScoreFunc = core.ScoreFunc
	// JournalResult is the outcome of a journal (single-paper) assignment.
	JournalResult = jra.Result
)

// Scoring functions of Definition 1 and Appendix B.
var (
	// WeightedCoverage is the paper's default quality measure (Definition 1).
	WeightedCoverage = core.WeightedCoverage
	// ReviewerCoverage is the winner-takes-all reviewer-side alternative cR.
	ReviewerCoverage = core.ReviewerCoverage
	// PaperCoverage is the paper-side alternative cP.
	PaperCoverage = core.PaperCoverage
	// DotProduct is the inner-product alternative cD.
	DotProduct = core.DotProduct
)

// NewInstance builds a WGRAP instance. groupSize is δp (reviewers per paper);
// workload is δr (papers per reviewer), where 0 selects the minimum balanced
// workload ⌈P·δp/R⌉ used throughout the paper's experiments.
func NewInstance(papers []Paper, reviewers []Reviewer, groupSize, workload int) *Instance {
	in := core.NewInstance(papers, reviewers, groupSize, workload)
	if workload == 0 && len(reviewers) > 0 {
		in.Workload = in.MinWorkload()
	}
	return in
}

// Method identifies a conference assignment algorithm.
type Method string

// Conference assignment methods (Section 4 and the baselines of Section 5.2).
const (
	// MethodSDGASRA is the paper's recommended pipeline: the Stage Deepening
	// Greedy Algorithm followed by stochastic refinement. Default.
	MethodSDGASRA Method = "sdga-sra"
	// MethodSDGA is the Stage Deepening Greedy Algorithm alone
	// ((1−1/e)- or 1/2-approximation).
	MethodSDGA Method = "sdga"
	// MethodGreedy is the pairwise greedy of Long et al. (1/3-approximation).
	MethodGreedy Method = "greedy"
	// MethodBRGG is the Best Reviewer Group Greedy baseline.
	MethodBRGG Method = "brgg"
	// MethodStableMatching is the capacitated Gale–Shapley baseline (SM).
	MethodStableMatching Method = "sm"
	// MethodPairILP maximises the pair-additive (ARAP) objective exactly.
	MethodPairILP Method = "ilp"
)

// Methods lists the available conference assignment methods.
func Methods() []Method {
	return []Method{MethodSDGASRA, MethodSDGA, MethodGreedy, MethodBRGG, MethodStableMatching, MethodPairILP}
}

// TransportSolver selects the min-cost transportation engine used by the
// flow-based methods (SDGA's Stage-WGRAP solves and the ARAP/pair-ILP
// baseline).
type TransportSolver = flow.Solver

// Transportation solvers.
const (
	// TransportDijkstra is the default: a CSR-stored
	// Dijkstra-with-potentials solver that augments along maximal sets of
	// tight paths and warm-starts stage and session re-solves.
	TransportDijkstra TransportSolver = flow.Dijkstra
	// TransportLegacy is the original SPFA successive-shortest-paths solver,
	// kept for parity testing and the transport ablation benchmark. It has
	// no warm path: sessions configured with it re-solve cold.
	TransportLegacy TransportSolver = flow.Legacy
)

// Result is the outcome of a conference assignment.
type Result struct {
	// Assignment holds, for every paper index, the assigned reviewer
	// indices; papers withdrawn from the session have empty groups.
	Assignment *Assignment
	// Score is the WGRAP objective value (sum of per-paper coverage scores
	// over the active papers).
	Score float64
	// AverageCoverage is Score divided by the number of active papers.
	AverageCoverage float64
	// LowestCoverage is the coverage score of the worst-served active paper.
	LowestCoverage float64
	// Elapsed is the wall-clock time of the assignment.
	Elapsed time.Duration
	// Method echoes the algorithm used.
	Method Method
}

// AssignJournal finds the optimal reviewer group for a single-paper instance
// (the Journal Reviewer Assignment of Definition 6) with the exact
// Branch-and-Bound Algorithm. It is AssignJournalContext with
// context.Background().
func AssignJournal(in *Instance) (JournalResult, error) {
	return AssignJournalContext(context.Background(), in)
}

// AssignJournalContext is AssignJournal under a context: the exact search
// polls ctx and aborts with its error when cancelled (there is no partial
// optimum to return). Conflict saturation surfaces as ErrConflictSaturated.
func AssignJournalContext(ctx context.Context, in *Instance) (JournalResult, error) {
	res, err := jra.BranchAndBound{}.SolveContext(ctx, in)
	return res, wrapErr(err)
}

// TopReviewerGroups returns the k best reviewer groups for a single-paper
// instance, best first. It is TopReviewerGroupsContext with
// context.Background().
func TopReviewerGroups(in *Instance, k int) ([]JournalResult, error) {
	return TopReviewerGroupsContext(context.Background(), in, k)
}

// TopReviewerGroupsContext is TopReviewerGroups under a context (see
// AssignJournalContext).
func TopReviewerGroupsContext(ctx context.Context, in *Instance, k int) ([]JournalResult, error) {
	res, err := jra.BranchAndBound{}.TopKContext(ctx, in, k)
	return res, wrapErr(err)
}

// OptimalityRatio returns the assignment's score relative to the ideal
// (workload-free) assignment, the quality metric of Section 5.2.
func OptimalityRatio(in *Instance, a *Assignment) float64 {
	return eval.OptimalityRatio(in, a)
}

// SuperiorityRatio returns the fraction of papers that are served at least as
// well by x as by y, together with the fraction of exact ties.
func SuperiorityRatio(in *Instance, x, y *Assignment) (betterOrEqual, ties float64) {
	s := eval.SuperiorityRatio(in, x, y)
	return s.BetterOrEqual, s.Ties
}

// Assign computes a conference assignment with the selected method (the
// general WGRAP of Definition 3).
//
// Deprecated: use NewSolver and Solver.Solve — the session API reuses solver
// state across calls and supports incremental edits with warm re-solves.
// Assign remains as a thin shim: one throwaway session per call.
func Assign(in *Instance, opts AssignOptions) (*Result, error) {
	return AssignContext(context.Background(), in, opts)
}

// AssignContext computes a conference assignment under a context: cancelling
// ctx (or letting its deadline pass) aborts the construction phase with the
// context's error and gracefully stops the refinement phase of
// MethodSDGASRA, which is an anytime algorithm and returns the best
// assignment found so far. A ctx deadline and opts.RefinementBudget compose;
// the earlier one stops the refinement.
//
// Deprecated: use NewSolver and Solver.Solve (see Assign).
func AssignContext(ctx context.Context, in *Instance, opts AssignOptions) (*Result, error) {
	s, err := NewSolver(in, opts.asOptions()...)
	if err != nil {
		return nil, err
	}
	return s.Solve(ctx)
}

// Refine improves an existing assignment with the stochastic refinement of
// Section 4.4 and returns the refined copy (never worse than the input).
//
// Deprecated: configure a Solver with MethodSDGASRA instead; Refine remains
// for callers that produce assignments out-of-band. It resolves its
// defaults (ω=10, seed 1) through the same path as every other entry point.
func Refine(in *Instance, a *Assignment, opts AssignOptions) (*Assignment, error) {
	return RefineContext(context.Background(), in, a, opts)
}

// RefineContext improves an existing assignment under a context. Refinement
// is an anytime process: when ctx is done (or opts.RefinementBudget expires,
// whichever comes first) the best assignment found so far is returned —
// never worse than the input.
//
// Deprecated: see Refine.
func RefineContext(ctx context.Context, in *Instance, a *Assignment, opts AssignOptions) (*Assignment, error) {
	o := resolveOptions(opts.asOptions())
	refined, err := o.sra().RefineContext(ctx, in, a)
	return refined, wrapErr(err)
}
