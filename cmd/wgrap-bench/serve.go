package main

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"time"

	wgrap "repro"
	"repro/client"
	"repro/internal/serve"
	"repro/internal/wire"
)

// serveConfig sizes the -serve request-level workload. The edit scripts are
// deterministic so CI runs are comparable across commits.
type serveConfig struct {
	papers    int
	reviewers int
	topics    int
	delta     int
	resolves  int // edit-burst + warm-resolve request cycles
	editBurst int // edits per POST /edits request
	views     int // GET /view requests sampled per cycle
}

// runServe measures request-level latency of the wgrap-serve HTTP surface:
// it boots the real handler on a loopback listener, drives one tenant
// through the repro/client remote backend — cold solve, then deterministic
// edit-batch + warm-resolve cycles with view reads between them — and
// reports per-endpoint p50/p99 as `go test -bench`-format lines
// (BenchmarkServeHTTP/...), so the returned map plugs into the same snapshot
// and regression-gate machinery as real benchmarks. Unlike -concurrent
// (which times the in-process Solver surface), every number here includes
// JSON encoding and a loopback TCP round trip.
func runServe(stdout io.Writer, cfg serveConfig) (map[string]Result, error) {
	reg, err := serve.NewRegistry("")
	if err != nil {
		return nil, err
	}
	defer reg.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: serve.Handler(reg)}
	serr := make(chan error, 1)
	go func() { serr <- srv.Serve(ln) }()
	defer srv.Close()

	c, err := client.Open("http://" + ln.Addr().String())
	if err != nil {
		return nil, err
	}
	defer c.Close()
	ctx := context.Background()

	// MethodSDGA without refinement, matching the -concurrent workload: the
	// numbers isolate the serving surface (JSON + TCP + warm re-solve), not
	// the anytime refinement budget.
	in := serveWireInstance(cfg)
	if _, err := c.CreateTenant(ctx, &wire.CreateRequest{
		ID: "bench", Instance: in, Config: wire.TenantConfig{Method: string(wgrap.MethodSDGA), Seed: 1},
	}); err != nil {
		return nil, err
	}
	t0 := time.Now()
	if _, err := c.Solve(ctx, "bench"); err != nil {
		return nil, err
	}
	coldLat := time.Since(t0)

	// The request cycles: one edit batch, cfg.views view reads, one warm
	// resolve. Edits cycle withdraw/restore/conflict like the -concurrent
	// writer so the warm re-solve work matches the in-process workload.
	var editLat, viewLat, resolveLat []time.Duration
	rng := rand.New(rand.NewSource(99))
	start := time.Now()
	for i := 0; i < cfg.resolves; i++ {
		edits := make([]wire.Edit, 0, cfg.editBurst)
		for e := 0; e < cfg.editBurst; e++ {
			p := rng.Intn(cfg.papers)
			switch e % 3 {
			case 0:
				edits = append(edits, wire.Edit{Op: wire.OpWithdraw, P: p})
			case 1:
				edits = append(edits, wire.Edit{Op: wire.OpRestore, P: p})
			case 2:
				edits = append(edits, wire.Edit{Op: wire.OpAddConflict, R: rng.Intn(cfg.reviewers), P: p})
			}
		}
		t0 = time.Now()
		if _, err := c.Edit(ctx, "bench", edits...); err != nil {
			return nil, fmt.Errorf("edit batch %d: %w", i, err)
		}
		editLat = append(editLat, time.Since(t0))
		for v := 0; v < cfg.views; v++ {
			t0 = time.Now()
			if _, err := c.View(ctx, "bench"); err != nil {
				return nil, fmt.Errorf("view %d/%d: %w", i, v, err)
			}
			viewLat = append(viewLat, time.Since(t0))
		}
		t0 = time.Now()
		if _, err := c.Resolve(ctx, "bench"); err != nil {
			return nil, fmt.Errorf("resolve %d: %w", i, err)
		}
		resolveLat = append(resolveLat, time.Since(t0))
	}
	window := time.Since(start)

	sort.Slice(editLat, func(i, j int) bool { return editLat[i] < editLat[j] })
	sort.Slice(viewLat, func(i, j int) bool { return viewLat[i] < viewLat[j] })
	sort.Slice(resolveLat, func(i, j int) bool { return resolveLat[i] < resolveLat[j] })

	fmt.Fprintf(stdout, "serve: P=%d R=%d over HTTP loopback: cold solve %v, then %d cycles (%d-edit batch + %d views + warm resolve) in %v\n",
		cfg.papers, cfg.reviewers, coldLat.Round(time.Millisecond), cfg.resolves, cfg.editBurst, cfg.views, window.Round(time.Millisecond))
	fmt.Fprintf(stdout, "serve: request latency edit p50=%v p99=%v; view p50=%v p99=%v; resolve p50=%v p99=%v\n",
		quantile(editLat, 0.50).Round(time.Microsecond), quantile(editLat, 0.99).Round(time.Microsecond),
		quantile(viewLat, 0.50).Round(time.Microsecond), quantile(viewLat, 0.99).Round(time.Microsecond),
		quantile(resolveLat, 0.50).Round(time.Microsecond), quantile(resolveLat, 0.99).Round(time.Microsecond))

	out := map[string]Result{
		"BenchmarkServeHTTP/edit-p50":    {Iterations: len(editLat), NsPerOp: float64(quantile(editLat, 0.50).Nanoseconds())},
		"BenchmarkServeHTTP/edit-p99":    {Iterations: len(editLat), NsPerOp: float64(quantile(editLat, 0.99).Nanoseconds())},
		"BenchmarkServeHTTP/view-p50":    {Iterations: len(viewLat), NsPerOp: float64(quantile(viewLat, 0.50).Nanoseconds())},
		"BenchmarkServeHTTP/view-p99":    {Iterations: len(viewLat), NsPerOp: float64(quantile(viewLat, 0.99).Nanoseconds())},
		"BenchmarkServeHTTP/resolve-p50": {Iterations: len(resolveLat), NsPerOp: float64(quantile(resolveLat, 0.50).Nanoseconds())},
		"BenchmarkServeHTTP/resolve-p99": {Iterations: len(resolveLat), NsPerOp: float64(quantile(resolveLat, 0.99).Nanoseconds())},
		"BenchmarkServeHTTP/cold-solve":  {Iterations: 1, NsPerOp: float64(coldLat.Nanoseconds())},
	}
	names := make([]string, 0, len(out))
	for name := range out {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(stdout, "%s \t%d\t%.0f ns/op\n", name, out[name].Iterations, out[name].NsPerOp)
	}

	if err := srv.Close(); err != nil {
		return nil, err
	}
	if err := <-serr; err != nil && err != http.ErrServerClosed {
		return nil, err
	}
	return out, nil
}

// serveWireInstance mirrors concurrentInstance (seed-8 normalized random
// topic vectors) in wire form, so -serve latencies are measured against the
// same instance family as -concurrent and the gated benchmarks.
func serveWireInstance(cfg serveConfig) *wire.Instance {
	rng := rand.New(rand.NewSource(8))
	vec := func() []float64 {
		v := make(wgrap.Vector, cfg.topics)
		for i := range v {
			v[i] = rng.Float64()
		}
		return v.Normalized()
	}
	in := &wire.Instance{GroupSize: cfg.delta}
	for i := 0; i < cfg.papers; i++ {
		in.Papers = append(in.Papers, wire.Paper{Topics: vec()})
	}
	for i := 0; i < cfg.reviewers; i++ {
		in.Reviewers = append(in.Reviewers, wire.Reviewer{Topics: vec()})
	}
	return in
}
