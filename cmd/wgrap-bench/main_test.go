package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro/internal/flow
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTransportSolve/dijkstra-200x400-8         	      10	   5233623 ns/op	  492745 B/op	     230 allocs/op
BenchmarkTransportSolve/legacy-200x400-8           	      10	 508076954 ns/op	55548472 B/op	    8989 allocs/op
BenchmarkProfitMatrixCI-8                          	       3	   2345678 ns/op	      16 B/op	       1 allocs/op
BenchmarkSolveHugeScale/solve_huge_scale_sparse-8  	       1	28348720444 ns/op	         0.7534 avg-coverage
BenchmarkSDGAConference-8                          	       2	 123456789 ns/op
PASS
`

func TestParseBenchStripsProcSuffix(t *testing.T) {
	res, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	d, ok := res["BenchmarkTransportSolve/dijkstra-200x400"]
	if !ok {
		t.Fatalf("dijkstra benchmark missing; got %v", res)
	}
	if d.Iterations != 10 || math.Abs(d.NsPerOp-5233623) > 0.5 || math.Abs(d.AllocsPerOp-230) > 0.5 {
		t.Fatalf("unexpected result %+v", d)
	}
	if _, ok := res["BenchmarkSDGAConference"]; !ok {
		t.Fatal("benchmark without allocs columns missing")
	}
}

func writeSample(t *testing.T) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "bench.txt")
	if err := os.WriteFile(p, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunWritesSnapshot(t *testing.T) {
	in := writeSample(t)
	out := filepath.Join(t.TempDir(), "snap.json")
	var buf strings.Builder
	if err := run([]string{"-in", in, "-out", out, "-note", "test", "-candidate-cap", "64"}, nil, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Note != "test" {
		t.Fatalf("note = %q", snap.Note)
	}
	if snap.CandidateCap != 64 {
		t.Fatalf("candidate cap = %d, want 64", snap.CandidateCap)
	}
	// Default -keep records the transport, profit-matrix and solve-scale
	// benchmarks only.
	if len(snap.Benchmarks) != 4 {
		t.Fatalf("kept %d benchmarks, want 4: %v", len(snap.Benchmarks), snap.Benchmarks)
	}
	if _, ok := snap.Benchmarks["BenchmarkSolveHugeScale/solve_huge_scale_sparse"]; !ok {
		t.Fatal("huge-scale sparse benchmark not kept by the default -keep")
	}
	if _, ok := snap.Benchmarks["BenchmarkSDGAConference"]; ok {
		t.Fatal("-keep did not filter")
	}
}

func writeBaseline(t *testing.T, ns float64) string {
	t.Helper()
	snap := Snapshot{Benchmarks: map[string]Result{
		"BenchmarkTransportSolve/dijkstra-200x400": {Iterations: 10, NsPerOp: ns},
	}}
	data, _ := json.Marshal(snap)
	p := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGatePassesWithinBudget(t *testing.T) {
	in := writeSample(t)
	// Baseline slightly faster than current (5233623 ns): 10% slower is
	// within the 20% budget.
	base := writeBaseline(t, 5233623/1.1)
	var buf strings.Builder
	if err := run([]string{"-in", in, "-baseline", base}, nil, &buf); err != nil {
		t.Fatalf("gate failed within budget: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "ok") {
		t.Fatalf("missing gate report:\n%s", buf.String())
	}
}

func TestGateFailsBeyondBudget(t *testing.T) {
	in := writeSample(t)
	// Baseline twice as fast as current: a 100% regression must fail.
	base := writeBaseline(t, 5233623/2)
	var buf strings.Builder
	err := run([]string{"-in", in, "-baseline", base}, nil, &buf)
	if err == nil {
		t.Fatalf("gate passed a 2x regression:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Fatalf("missing regression report:\n%s", buf.String())
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	in := writeSample(t)
	snap := Snapshot{Benchmarks: map[string]Result{
		"BenchmarkTransportSolve/dijkstra-999x999": {Iterations: 1, NsPerOp: 1},
	}}
	data, _ := json.Marshal(snap)
	base := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(base, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := run([]string{"-in", in, "-baseline", base}, nil, &buf); err == nil {
		t.Fatal("gate passed with its benchmark missing from the run")
	}
}

func TestGateRejectsEmptyGateMatch(t *testing.T) {
	in := writeSample(t)
	base := writeBaseline(t, 5233623)
	var buf strings.Builder
	if err := run([]string{"-in", in, "-baseline", base, "-gate", "NoSuchBenchmark"}, nil, &buf); err == nil {
		t.Fatal("empty gate selection accepted")
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run(nil, strings.NewReader("no benchmarks here"), &strings.Builder{}); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestGateNormalizedByReference(t *testing.T) {
	in := writeSample(t)
	// Baseline from a machine 2x faster across the board: raw ns/op of the
	// gated benchmark is half the current run's, which a raw gate would call
	// a 100% regression — but normalized by the legacy reference (also 2x
	// faster in the baseline) the ratio is 1.0 and the gate must pass.
	snap := Snapshot{Benchmarks: map[string]Result{
		"BenchmarkTransportSolve/dijkstra-200x400": {Iterations: 1, NsPerOp: 5233623 / 2},
		"BenchmarkTransportSolve/legacy-200x400":   {Iterations: 1, NsPerOp: 508076954 / 2},
	}}
	data, _ := json.Marshal(snap)
	base := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(base, data, 0o644); err != nil {
		t.Fatal(err)
	}
	norm := []string{"-in", in, "-baseline", base, "-normalize-by", "BenchmarkTransportSolve/legacy-200x400"}
	var buf strings.Builder
	if err := run(norm, nil, &buf); err != nil {
		t.Fatalf("normalized gate failed across machine speeds: %v\n%s", err, buf.String())
	}
	// The same baseline without normalization must trip the raw gate.
	var buf2 strings.Builder
	if err := run([]string{"-in", in, "-baseline", base}, nil, &buf2); err == nil {
		t.Fatal("raw gate ignored a 2x ns/op difference")
	}
	// A genuine regression (dijkstra slower, reference unchanged) must still
	// fail under normalization.
	snap.Benchmarks["BenchmarkTransportSolve/dijkstra-200x400"] = Result{Iterations: 1, NsPerOp: 5233623 / 4}
	snap.Benchmarks["BenchmarkTransportSolve/legacy-200x400"] = Result{Iterations: 1, NsPerOp: 508076954}
	data, _ = json.Marshal(snap)
	if err := os.WriteFile(base, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf3 strings.Builder
	if err := run(norm, nil, &buf3); err == nil {
		t.Fatalf("normalized gate passed a genuine 4x regression:\n%s", buf3.String())
	}
}

func TestGateNormalizeByMissingReference(t *testing.T) {
	in := writeSample(t)
	base := writeBaseline(t, 5233623)
	var buf strings.Builder
	err := run([]string{"-in", in, "-baseline", base, "-normalize-by", "BenchmarkTransportSolve/legacy-200x400"}, nil, &buf)
	if err == nil {
		t.Fatal("missing normalize-by reference accepted")
	}
}

func TestMinSpeedupAssertion(t *testing.T) {
	in := writeSample(t)
	// legacy (508ms) vs dijkstra (5.2ms) in the same run: ~97x speedup.
	pass := []string{"-in", in,
		"-speedup-num", "BenchmarkTransportSolve/legacy-200x400",
		"-speedup-den", "BenchmarkTransportSolve/dijkstra-200x400",
		"-min-speedup", "50"}
	var buf strings.Builder
	if err := run(pass, nil, &buf); err != nil {
		t.Fatalf("speedup assertion failed at 50x when the run shows ~97x: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "ok") {
		t.Fatalf("missing speedup report:\n%s", buf.String())
	}
	fail := []string{"-in", in,
		"-speedup-num", "BenchmarkTransportSolve/legacy-200x400",
		"-speedup-den", "BenchmarkTransportSolve/dijkstra-200x400",
		"-min-speedup", "200"}
	var buf2 strings.Builder
	if err := run(fail, nil, &buf2); err == nil {
		t.Fatalf("speedup assertion passed at 200x when the run shows ~97x:\n%s", buf2.String())
	}
	// Missing operands and missing benchmarks are hard errors.
	if err := run([]string{"-in", in, "-min-speedup", "2"}, nil, &strings.Builder{}); err == nil {
		t.Fatal("missing -speedup-num/-speedup-den accepted")
	}
	if err := run([]string{"-in", in, "-speedup-num", "BenchmarkNope", "-speedup-den", "BenchmarkTransportSolve/dijkstra-200x400", "-min-speedup", "2"}, nil, &strings.Builder{}); err == nil {
		t.Fatal("missing speedup benchmark accepted")
	}
}
