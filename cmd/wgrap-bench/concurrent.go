package main

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	wgrap "repro"
)

// concurrentConfig sizes the -concurrent mixed workload. Goroutine counts and
// edit scripts are deterministic so CI runs are comparable across commits.
type concurrentConfig struct {
	papers    int
	reviewers int
	topics    int
	delta     int
	readers   int
	resolves  int
	editBurst int
	// maxReadP99 fails the run when the read-latency p99 exceeds it while
	// warm re-solves are in flight (0 disables the assertion). This is the
	// snapshot-isolation acceptance gate: reads must never block on the
	// solve lock.
	maxReadP99 time.Duration
}

// runConcurrent drives a mixed read/write workload against one live Solver:
// cfg.readers goroutines spin on View/Progress while a writer issues
// deterministic edit bursts and drains each through ResolveAsync. It reports
// read latency (p50/p99, reads/sec) and per-burst coalesced-resolve latency
// (p50/p99) both as a human summary and as `go test -bench`-format lines
// (BenchmarkConcurrentMixed/...), so the returned map plugs into the same
// snapshot and regression-gate machinery as real benchmarks.
func runConcurrent(stdout io.Writer, cfg concurrentConfig) (map[string]Result, error) {
	in := concurrentInstance(cfg)
	s, err := wgrap.NewSolver(in, wgrap.WithMethod(wgrap.MethodSDGA), wgrap.WithSeed(1))
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	if _, err := s.Solve(ctx); err != nil {
		return nil, err
	}

	stop := make(chan struct{})
	var readerErr atomic.Value
	lat := make([][]time.Duration, cfg.readers)
	var readers sync.WaitGroup
	for r := 0; r < cfg.readers; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			samples := make([]time.Duration, 0, 1<<20)
			var last uint64
			for {
				select {
				case <-stop:
					lat[r] = samples
					return
				default:
				}
				t0 := time.Now()
				v := s.View()
				_ = s.Progress()
				d := time.Since(t0)
				if len(samples) < cap(samples) {
					samples = append(samples, d)
				}
				if v == nil || v.Version < last {
					readerErr.Store(fmt.Errorf("reader %d: torn or regressed view (version %d after %d)", r, v.Version, last))
					lat[r] = samples
					return
				}
				last = v.Version
				runtime.Gosched()
			}
		}(r)
	}

	// Writer: cfg.resolves deterministic edit bursts, each coalesced into one
	// async warm re-solve. Latency is enqueue-to-completion of the ticket.
	resolveLat := make([]time.Duration, 0, cfg.resolves)
	rng := rand.New(rand.NewSource(99))
	writeStart := time.Now()
	for i := 0; i < cfg.resolves; i++ {
		for e := 0; e < cfg.editBurst; e++ {
			p := rng.Intn(cfg.papers)
			switch e % 3 {
			case 0:
				err = s.WithdrawPaper(p)
			case 1:
				err = s.RestorePaper(p)
			case 2:
				err = s.AddConflict(rng.Intn(cfg.reviewers), p)
			}
			if err != nil {
				return nil, fmt.Errorf("edit burst %d: %w", i, err)
			}
		}
		t0 := time.Now()
		if _, err := s.ResolveAsync().Wait(ctx); err != nil {
			return nil, fmt.Errorf("coalesced resolve %d: %w", i, err)
		}
		resolveLat = append(resolveLat, time.Since(t0))
	}
	window := time.Since(writeStart)
	close(stop)
	readers.Wait()
	if err, ok := readerErr.Load().(error); ok {
		return nil, err
	}

	var reads []time.Duration
	for _, s := range lat {
		reads = append(reads, s...)
	}
	if len(reads) == 0 {
		return nil, fmt.Errorf("no reads completed during the %v write window", window)
	}
	sort.Slice(reads, func(i, j int) bool { return reads[i] < reads[j] })
	sort.Slice(resolveLat, func(i, j int) bool { return resolveLat[i] < resolveLat[j] })
	readP50, readP99 := quantile(reads, 0.50), quantile(reads, 0.99)
	resP50, resP99 := quantile(resolveLat, 0.50), quantile(resolveLat, 0.99)
	readsPerSec := float64(len(reads)) / window.Seconds()

	fmt.Fprintf(stdout, "concurrent: P=%d R=%d, %d readers x %d resolves (%d-edit bursts): %d reads in %v (%.0f reads/sec)\n",
		cfg.papers, cfg.reviewers, cfg.readers, cfg.resolves, cfg.editBurst, len(reads), window.Round(time.Millisecond), readsPerSec)
	fmt.Fprintf(stdout, "concurrent: read latency p50=%v p99=%v; coalesced resolve p50=%v p99=%v\n",
		readP50, readP99, resP50.Round(time.Microsecond), resP99.Round(time.Microsecond))

	out := map[string]Result{
		"BenchmarkConcurrentMixed/read-p50":    {Iterations: len(reads), NsPerOp: float64(readP50.Nanoseconds())},
		"BenchmarkConcurrentMixed/read-p99":    {Iterations: len(reads), NsPerOp: float64(readP99.Nanoseconds())},
		"BenchmarkConcurrentMixed/resolve-p50": {Iterations: len(resolveLat), NsPerOp: float64(resP50.Nanoseconds())},
		"BenchmarkConcurrentMixed/resolve-p99": {Iterations: len(resolveLat), NsPerOp: float64(resP99.Nanoseconds())},
	}
	for name, res := range out {
		fmt.Fprintf(stdout, "%s \t%d\t%.0f ns/op\n", name, res.Iterations, res.NsPerOp)
	}
	if cfg.maxReadP99 > 0 && readP99 > cfg.maxReadP99 {
		return nil, fmt.Errorf("read p99 %v exceeds the %v budget: snapshot reads are blocking on the solve", readP99, cfg.maxReadP99)
	}
	return out, nil
}

// quantile reads the q-quantile of an ascending-sorted slice.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// concurrentInstance mirrors the paper-scale conference generator of the
// package benchmarks (seed-8 normalized random topic vectors, minimum
// balanced workload) so -concurrent latencies are measured against the same
// instance family the gated benchmarks use.
func concurrentInstance(cfg concurrentConfig) *wgrap.Instance {
	rng := rand.New(rand.NewSource(8))
	vec := func() wgrap.Vector {
		v := make(wgrap.Vector, cfg.topics)
		for i := range v {
			v[i] = rng.Float64()
		}
		return v.Normalized()
	}
	papers := make([]wgrap.Paper, cfg.papers)
	for i := range papers {
		papers[i] = wgrap.Paper{Topics: vec()}
	}
	reviewers := make([]wgrap.Reviewer, cfg.reviewers)
	for i := range reviewers {
		reviewers[i] = wgrap.Reviewer{Topics: vec()}
	}
	return wgrap.NewInstance(papers, reviewers, cfg.delta, 0)
}
