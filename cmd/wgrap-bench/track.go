package main

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/client"
	"repro/internal/track"
)

// trackConfig is the -track replay mode's configuration.
type trackConfig struct {
	path       string  // track file
	backend    string  // client.Open URL (mem://, mem:///dir, http://…)
	tenant     string  // tenant id override ("" derives from the track name)
	reportPath string  // full per-op-kind histogram report JSON ("" skips)
	sleepScale float64 // sleep-op multiplier (0 skips sleeps)
}

// runTrack replays one workload track file against a backend and reports
// per-op-kind latency percentiles as `go test -bench`-format lines
// (BenchmarkTrackReplay/<track>/<kind>-p50 …), so replays plug into the
// same snapshot and regression-gate machinery as real benchmarks. The full
// report — per-kind log₂ histograms, accepted/rejected splits, per-phase
// wall clocks, final seq/objective — optionally lands in a JSON file for CI
// artifact upload.
func runTrack(stdout io.Writer, cfg trackConfig) (map[string]Result, error) {
	t, err := track.ReadFile(cfg.path)
	if err != nil {
		return nil, err
	}
	c, err := client.Open(cfg.backend)
	if err != nil {
		return nil, err
	}
	defer c.Close()

	rep, err := track.Replay(context.Background(), c, t, track.ReplayOptions{
		TenantID:   cfg.tenant,
		SleepScale: cfg.sleepScale,
		Backend:    cfg.backend,
		Log:        stdout,
	})
	if err != nil {
		return nil, err
	}

	fmt.Fprintf(stdout, "track %s (%s) on %s: %d ops in %v; edits accepted=%d rejected=%d; final seq=%d version=%d objective=%.6f\n",
		rep.Track, rep.Scenario, cfg.backend, rep.Ops,
		time.Duration(rep.WallNS).Round(time.Millisecond),
		rep.EditsAccepted, rep.EditsRejected, rep.FinalSeq, rep.FinalVersion, rep.FinalScore)

	out := make(map[string]Result)
	for kind, st := range rep.Kinds {
		if st.Count == 0 {
			continue
		}
		prefix := fmt.Sprintf("BenchmarkTrackReplay/%s/%s", rep.Track, kind)
		out[prefix+"-p50"] = Result{Iterations: st.Count, NsPerOp: float64(st.P50NS)}
		out[prefix+"-p99"] = Result{Iterations: st.Count, NsPerOp: float64(st.P99NS)}
	}
	names := make([]string, 0, len(out))
	for name := range out {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(stdout, "%s \t%d\t%.0f ns/op\n", name, out[name].Iterations, out[name].NsPerOp)
	}

	if cfg.reportPath != "" {
		if err := rep.WriteJSON(cfg.reportPath); err != nil {
			return nil, err
		}
		fmt.Fprintf(stdout, "wrote replay report to %s\n", cfg.reportPath)
	}
	return out, nil
}
