package main

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/client"
	"repro/internal/track"
)

// trackConfig is the -track replay mode's configuration.
type trackConfig struct {
	path       string        // track file
	backend    string        // client.Open URL (mem://, mem:///dir, http://…)
	tenant     string        // tenant id override ("" derives from the track name)
	reportPath string        // full per-op-kind histogram report JSON ("" skips)
	sleepScale float64       // sleep-op multiplier (0 skips sleeps)
	budgets    []phaseBudget // -phase-budget assertions
}

// phaseBudget is one -phase-budget assertion: latency percentile ceilings
// for an op kind, scoped to one replay phase (or the whole track when phase
// is empty).
type phaseBudget struct {
	phase string // "" = whole-track kinds
	kind  string // op kind ("edit" aggregates the edit kinds)
	p50   time.Duration
	p99   time.Duration
}

// budgetFlags parses repeated -phase-budget values of the form
//
//	[phase/]kind:p50=10ms,p99=80ms
//
// e.g. "deadline-rush/edit:p99=50ms" or "view:p50=200us,p99=2ms". Either
// percentile may be omitted; at least one is required.
type budgetFlags []phaseBudget

func (b *budgetFlags) String() string {
	parts := make([]string, 0, len(*b))
	for _, pb := range *b {
		s := pb.kind
		if pb.phase != "" {
			s = pb.phase + "/" + s
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, ",")
}

func (b *budgetFlags) Set(s string) error {
	target, limits, ok := strings.Cut(s, ":")
	if !ok {
		return fmt.Errorf("bad -phase-budget %q (want [phase/]kind:p50=…,p99=…)", s)
	}
	var pb phaseBudget
	if phase, kind, ok := strings.Cut(target, "/"); ok {
		pb.phase, pb.kind = phase, kind
	} else {
		pb.kind = target
	}
	if pb.kind == "" {
		return fmt.Errorf("bad -phase-budget %q: empty op kind", s)
	}
	for _, part := range strings.Split(limits, ",") {
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("bad -phase-budget limit %q (want p50=DUR or p99=DUR)", part)
		}
		d, err := time.ParseDuration(val)
		if err != nil || d <= 0 {
			return fmt.Errorf("bad -phase-budget duration %q", val)
		}
		switch key {
		case "p50":
			pb.p50 = d
		case "p99":
			pb.p99 = d
		default:
			return fmt.Errorf("bad -phase-budget percentile %q (want p50 or p99)", key)
		}
	}
	if pb.p50 == 0 && pb.p99 == 0 {
		return fmt.Errorf("bad -phase-budget %q: no percentile limit", s)
	}
	*b = append(*b, pb)
	return nil
}

// assertPhaseBudgets checks every -phase-budget against the replay report's
// per-phase (or whole-track) latency histograms and fails on any violation —
// the replay-level analogue of the bench regression gate, with absolute
// ceilings instead of a baseline ratio.
func assertPhaseBudgets(stdout io.Writer, rep *track.Report, budgets []phaseBudget) error {
	var failures []string
	for _, pb := range budgets {
		kinds := rep.Kinds
		scope := "track"
		if pb.phase != "" {
			kinds = nil
			for i := range rep.Phases {
				if rep.Phases[i].Name == pb.phase {
					kinds = rep.Phases[i].Kinds
					break
				}
			}
			if kinds == nil {
				failures = append(failures, fmt.Sprintf("%s/%s: phase not found in replay", pb.phase, pb.kind))
				continue
			}
			scope = "phase " + pb.phase
		}
		st, ok := kinds[pb.kind]
		if !ok || st.Count == 0 {
			failures = append(failures, fmt.Sprintf("%s/%s: op kind has no samples in %s", pb.phase, pb.kind, scope))
			continue
		}
		check := func(label string, got int64, budget time.Duration) {
			if budget == 0 {
				return
			}
			status := "ok"
			if got > budget.Nanoseconds() {
				status = "FAIL"
				failures = append(failures, fmt.Sprintf("%s %s %s=%v exceeds budget %v",
					scope, pb.kind, label, time.Duration(got).Round(time.Microsecond), budget))
			}
			fmt.Fprintf(stdout, "phase-budget %-40s %s=%v (budget %v)  %s\n",
				scope+"/"+pb.kind, label, time.Duration(got).Round(time.Microsecond), budget, status)
		}
		check("p50", st.P50NS, pb.p50)
		check("p99", st.P99NS, pb.p99)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(stdout, "FAIL:", f)
		}
		return fmt.Errorf("%d phase-budget violation(s)", len(failures))
	}
	return nil
}

// runTrack replays one workload track file against a backend and reports
// per-op-kind latency percentiles as `go test -bench`-format lines
// (BenchmarkTrackReplay/<track>/<kind>-p50 …), so replays plug into the
// same snapshot and regression-gate machinery as real benchmarks. The full
// report — per-kind log₂ histograms, accepted/rejected splits, per-phase
// wall clocks, final seq/objective — optionally lands in a JSON file for CI
// artifact upload.
func runTrack(stdout io.Writer, cfg trackConfig) (map[string]Result, error) {
	t, err := track.ReadFile(cfg.path)
	if err != nil {
		return nil, err
	}
	c, err := client.Open(cfg.backend)
	if err != nil {
		return nil, err
	}
	defer c.Close()

	rep, err := track.Replay(context.Background(), c, t, track.ReplayOptions{
		TenantID:   cfg.tenant,
		SleepScale: cfg.sleepScale,
		Backend:    cfg.backend,
		Log:        stdout,
	})
	if err != nil {
		return nil, err
	}

	fmt.Fprintf(stdout, "track %s (%s) on %s: %d ops in %v; edits accepted=%d rejected=%d; final seq=%d version=%d objective=%.6f\n",
		rep.Track, rep.Scenario, cfg.backend, rep.Ops,
		time.Duration(rep.WallNS).Round(time.Millisecond),
		rep.EditsAccepted, rep.EditsRejected, rep.FinalSeq, rep.FinalVersion, rep.FinalScore)

	out := make(map[string]Result)
	for kind, st := range rep.Kinds {
		if st.Count == 0 {
			continue
		}
		prefix := fmt.Sprintf("BenchmarkTrackReplay/%s/%s", rep.Track, kind)
		out[prefix+"-p50"] = Result{Iterations: st.Count, NsPerOp: float64(st.P50NS)}
		out[prefix+"-p99"] = Result{Iterations: st.Count, NsPerOp: float64(st.P99NS)}
	}
	names := make([]string, 0, len(out))
	for name := range out {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(stdout, "%s \t%d\t%.0f ns/op\n", name, out[name].Iterations, out[name].NsPerOp)
	}

	if cfg.reportPath != "" {
		if err := rep.WriteJSON(cfg.reportPath); err != nil {
			return nil, err
		}
		fmt.Fprintf(stdout, "wrote replay report to %s\n", cfg.reportPath)
	}
	if len(cfg.budgets) > 0 {
		if err := assertPhaseBudgets(stdout, rep, cfg.budgets); err != nil {
			return nil, err
		}
	}
	return out, nil
}
