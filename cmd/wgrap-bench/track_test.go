package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/track"
	"repro/internal/wire"
)

// writeTestTrack generates a tiny corpus-referenced track file.
func writeTestTrack(t *testing.T) string {
	t.Helper()
	ds, err := corpus.NewGenerator(corpus.Config{Scale: 0.06, Seed: 3, AuthorsPerArea: 60}).Dataset(corpus.Databases, 2008)
	if err != nil {
		t.Fatal(err)
	}
	in, err := wire.FromInstance(ds.Instance(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	ops, err := track.Generate("coi-storm", in, track.GenConfig{Seed: 2, Edits: 30})
	if err != nil {
		t.Fatal(err)
	}
	tr := &track.Track{
		Format: track.FormatVersion, Name: "bench-test", Scenario: "coi-storm",
		Config: wire.TenantConfig{Method: "sdga", Seed: 1},
		Corpus: &track.CorpusRef{Area: "DB", Year: 2008, Scale: 0.06, Seed: 3, Authors: 60, GroupSize: 3},
		Ops:    ops,
	}
	path := filepath.Join(t.TempDir(), "t.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunTrackMode replays a track through the full -track CLI path and
// checks the emitted bench lines plus the report artifact.
func TestRunTrackMode(t *testing.T) {
	path := writeTestTrack(t)
	report := filepath.Join(t.TempDir(), "report.json")
	snap := filepath.Join(t.TempDir(), "snap.json")
	var buf strings.Builder
	err := run([]string{"-track", path, "-track-json", report, "-out", snap}, nil, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "BenchmarkTrackReplay/bench-test/edit-p99") {
		t.Fatalf("no edit p99 bench line in output:\n%s", out)
	}
	if !strings.Contains(out, "BenchmarkTrackReplay/bench-test/resolve-p50") {
		t.Fatalf("no resolve p50 bench line in output:\n%s", out)
	}

	var rep track.Report
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Track != "bench-test" || rep.FinalSeq == 0 || rep.FinalScore == 0 {
		t.Fatalf("implausible report: track=%q seq=%d score=%f", rep.Track, rep.FinalSeq, rep.FinalScore)
	}

	// The snapshot must hold the bench entries (default -keep covers
	// TrackReplay), so -baseline gating works on replays.
	var s Snapshot
	data, err = os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Benchmarks["BenchmarkTrackReplay/bench-test/edit-p99"]; !ok {
		t.Fatalf("edit p99 missing from snapshot: %v", s.Benchmarks)
	}
}

func TestRunTrackModeMissingFile(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-track", filepath.Join(t.TempDir(), "nope.json")}, nil, &buf); err == nil {
		t.Fatal("missing track file accepted")
	}
}

func TestBudgetFlagsParse(t *testing.T) {
	var b budgetFlags
	for _, s := range []string{"edit:p50=10ms,p99=80ms", "coi-storm/view:p99=2ms"} {
		if err := b.Set(s); err != nil {
			t.Fatalf("Set(%q): %v", s, err)
		}
	}
	if len(b) != 2 {
		t.Fatalf("parsed %d budgets, want 2", len(b))
	}
	if b[0].phase != "" || b[0].kind != "edit" || b[0].p50 != 10*time.Millisecond || b[0].p99 != 80*time.Millisecond {
		t.Fatalf("budget 0: %+v", b[0])
	}
	if b[1].phase != "coi-storm" || b[1].kind != "view" || b[1].p50 != 0 || b[1].p99 != 2*time.Millisecond {
		t.Fatalf("budget 1: %+v", b[1])
	}
	for _, bad := range []string{
		"edit",            // no limits
		"edit:",           // empty limits
		":p50=1ms",        // empty kind
		"edit:p75=1ms",    // unknown percentile
		"edit:p50=banana", // bad duration
		"edit:p50=-1ms",   // non-positive duration
	} {
		if err := b.Set(bad); err == nil {
			t.Fatalf("Set(%q) accepted", bad)
		}
	}
}

func TestAssertPhaseBudgets(t *testing.T) {
	rep := &track.Report{
		Kinds: map[string]*track.KindStats{
			"edit": {Count: 100, P50NS: int64(2 * time.Millisecond), P99NS: int64(9 * time.Millisecond)},
		},
		Phases: []track.PhaseStat{{
			Name: "storm",
			Kinds: map[string]*track.KindStats{
				"view": {Count: 40, P50NS: int64(100 * time.Microsecond), P99NS: int64(3 * time.Millisecond)},
			},
		}},
	}
	var out strings.Builder
	ok := []phaseBudget{
		{kind: "edit", p50: 5 * time.Millisecond, p99: 10 * time.Millisecond},
		{phase: "storm", kind: "view", p99: 5 * time.Millisecond},
	}
	if err := assertPhaseBudgets(&out, rep, ok); err != nil {
		t.Fatalf("budgets within limits failed: %v\n%s", err, out.String())
	}
	for name, bad := range map[string]phaseBudget{
		"p99 over":      {kind: "edit", p99: 5 * time.Millisecond},
		"missing phase": {phase: "quiet", kind: "edit", p99: time.Second},
		"missing kind":  {phase: "storm", kind: "edit", p99: time.Second},
		"no samples":    {kind: "solve", p50: time.Second},
	} {
		if err := assertPhaseBudgets(&out, rep, []phaseBudget{bad}); err == nil {
			t.Fatalf("%s: violation not reported", name)
		}
	}
}
