package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/track"
	"repro/internal/wire"
)

// writeTestTrack generates a tiny corpus-referenced track file.
func writeTestTrack(t *testing.T) string {
	t.Helper()
	ds, err := corpus.NewGenerator(corpus.Config{Scale: 0.06, Seed: 3, AuthorsPerArea: 60}).Dataset(corpus.Databases, 2008)
	if err != nil {
		t.Fatal(err)
	}
	in, err := wire.FromInstance(ds.Instance(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	ops, err := track.Generate("coi-storm", in, track.GenConfig{Seed: 2, Edits: 30})
	if err != nil {
		t.Fatal(err)
	}
	tr := &track.Track{
		Format: track.FormatVersion, Name: "bench-test", Scenario: "coi-storm",
		Config: wire.TenantConfig{Method: "sdga", Seed: 1},
		Corpus: &track.CorpusRef{Area: "DB", Year: 2008, Scale: 0.06, Seed: 3, Authors: 60, GroupSize: 3},
		Ops:    ops,
	}
	path := filepath.Join(t.TempDir(), "t.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunTrackMode replays a track through the full -track CLI path and
// checks the emitted bench lines plus the report artifact.
func TestRunTrackMode(t *testing.T) {
	path := writeTestTrack(t)
	report := filepath.Join(t.TempDir(), "report.json")
	snap := filepath.Join(t.TempDir(), "snap.json")
	var buf strings.Builder
	err := run([]string{"-track", path, "-track-json", report, "-out", snap}, nil, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "BenchmarkTrackReplay/bench-test/edit-p99") {
		t.Fatalf("no edit p99 bench line in output:\n%s", out)
	}
	if !strings.Contains(out, "BenchmarkTrackReplay/bench-test/resolve-p50") {
		t.Fatalf("no resolve p50 bench line in output:\n%s", out)
	}

	var rep track.Report
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Track != "bench-test" || rep.FinalSeq == 0 || rep.FinalScore == 0 {
		t.Fatalf("implausible report: track=%q seq=%d score=%f", rep.Track, rep.FinalSeq, rep.FinalScore)
	}

	// The snapshot must hold the bench entries (default -keep covers
	// TrackReplay), so -baseline gating works on replays.
	var s Snapshot
	data, err = os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Benchmarks["BenchmarkTrackReplay/bench-test/edit-p99"]; !ok {
		t.Fatalf("edit p99 missing from snapshot: %v", s.Benchmarks)
	}
}

func TestRunTrackModeMissingFile(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-track", filepath.Join(t.TempDir(), "nope.json")}, nil, &buf); err == nil {
		t.Fatal("missing track file accepted")
	}
}
