// Command wgrap-bench turns `go test -bench` output into a benchmark JSON
// snapshot and gates CI on performance regressions: it parses the benchstat
// text format, records ns/op, B/op and allocs/op per benchmark, and — when a
// committed baseline is supplied — fails if any gated benchmark slowed down
// by more than the allowed fraction.
//
// CI usage (see .github/workflows/ci.yml):
//
//	go test -bench=. -benchtime=1x -run='^$' ./... | tee bench.txt
//	wgrap-bench -in bench.txt -out BENCH_PR4.json \
//	    -baseline BENCH_BASELINE.json \
//	    -gate 'BenchmarkTransportSolve/dijkstra|BenchmarkResolveAfterEdit/warm' \
//	    -max-regression 0.20
//
// Regenerate the baseline by pointing -out at BENCH_BASELINE.json on a quiet
// machine and committing the result.
//
// Besides parsing bench text, three live workload modes emit bench-format
// results directly: -concurrent (in-process mixed read/write serving),
// -serve (HTTP request latency over loopback) and -track FILE (replay a
// committed workload track from internal/track against any client backend,
// reporting per-op-kind latency percentiles — see testdata/tracks/).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wgrap-bench:", err)
		os.Exit(1)
	}
}

// Result is one benchmark's recorded metrics.
type Result struct {
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Snapshot is the JSON file layout.
type Snapshot struct {
	Note string `json:"note,omitempty"`
	// CandidateCap records the WithCandidateCap(k) setting the benchmark run
	// used (0 = dense): snapshots of sparse candidate-pruned runs are not
	// comparable to dense ones, so the cap is provenance the gate's reader
	// needs next to the numbers.
	CandidateCap int               `json:"candidate_cap,omitempty"`
	Benchmarks   map[string]Result `json:"benchmarks"`
}

// benchLine matches one result line of `go test -bench` output, e.g.
//
//	BenchmarkTransportSolve/dijkstra-200x400-8  1  5233623 ns/op  492745 B/op  230 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+([\d.]+) allocs/op)?`)

func parseBench(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, _ := strconv.Atoi(m[2])
		res := Result{Iterations: iters}
		res.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			res.BytesPerOp, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			res.AllocsPerOp, _ = strconv.ParseFloat(m[5], 64)
		}
		out[m[1]] = res
	}
	return out, sc.Err()
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("wgrap-bench", flag.ContinueOnError)
	inPath := fs.String("in", "-", "bench text input file (- = stdin)")
	outPath := fs.String("out", "", "write the JSON snapshot to this file")
	keepPat := fs.String("keep", "TransportSolve|ProfitMatrixCI|ResolveAfterEdit|ResolveAfterWithdraw|ConcurrentMixed|ServeHTTP|TrackReplay|TransportStageSequencePaperScale|SolveColdPaperScale|SolveHugeScale", "regexp of benchmarks recorded in the snapshot")
	note := fs.String("note", "", "free-form note stored in the snapshot")
	candidateCap := fs.Int("candidate-cap", 0, "WithCandidateCap(k) setting of the benchmarked run, recorded in the snapshot for provenance (0 = dense)")
	baseline := fs.String("baseline", "", "baseline JSON to gate against (no gating when empty)")
	gatePat := fs.String("gate", "BenchmarkTransportSolve/dijkstra|BenchmarkResolveAfterEdit/warm", "regexp selecting the baseline benchmarks that gate")
	maxRegression := fs.Float64("max-regression", 0.20, "allowed fractional ns/op slowdown before failing")
	normalizeBy := fs.String("normalize-by", "", "benchmark whose ns/op divides both sides of the gate comparison (hardware-independent ratio gating)")
	speedupNum := fs.String("speedup-num", "", "benchmark expected to be SLOWER in a same-run speedup assertion (e.g. the single-CPU variant)")
	speedupDen := fs.String("speedup-den", "", "benchmark expected to be FASTER in a same-run speedup assertion (e.g. the sharded variant)")
	minSpeedup := fs.Float64("min-speedup", 0, "fail unless speedup-num's ns/op is at least this multiple of speedup-den's (0 disables)")
	concurrent := fs.Bool("concurrent", false, "run the live concurrent-serving workload instead of parsing bench text: readers spin on View/Progress while edit bursts drain through ResolveAsync")
	serveMode := fs.Bool("serve", false, "run the HTTP request-latency workload instead of parsing bench text: a real wgrap-serve handler on loopback driven through the remote client")
	trackPath := fs.String("track", "", "replay this workload track file instead of parsing bench text, reporting per-op-kind latency percentiles (see internal/track)")
	trackBackend := fs.String("backend", "mem://", "-track: backend URL to replay against (mem://, mem:///dir, http://host:port)")
	trackTenant := fs.String("tenant", "", "-track: tenant id override (default derives from the track name)")
	trackJSON := fs.String("track-json", "", "-track: write the full replay report (histograms, phases, accepted/rejected, final seq/objective) to this JSON file")
	sleepScale := fs.Float64("sleep-scale", 0, "-track: multiplier on the track's sleep ops (0 replays at full speed)")
	var phaseBudgets budgetFlags
	fs.Var(&phaseBudgets, "phase-budget", "-track: repeatable latency assertion [phase/]kind:p50=DUR,p99=DUR (e.g. deadline-rush/edit:p99=50ms); fails the run on violation")
	ccPapers := fs.Int("papers", 1000, "-concurrent/-serve: number of papers")
	ccReviewers := fs.Int("reviewers", 2000, "-concurrent/-serve: number of reviewers")
	ccTopics := fs.Int("topics", 40, "-concurrent/-serve: topic vector dimension")
	ccDelta := fs.Int("delta", 3, "-concurrent/-serve: reviewers per paper δp")
	ccReaders := fs.Int("readers", 4, "-concurrent: snapshot reader goroutines")
	ccResolves := fs.Int("resolves", 12, "-concurrent/-serve: warm re-solve cycles")
	ccBurst := fs.Int("edit-burst", 6, "-concurrent/-serve: edits coalesced per re-solve")
	srvViews := fs.Int("views", 50, "-serve: view reads sampled per cycle")
	maxReadP99 := fs.Duration("max-read-p99", 0, "-concurrent: fail when read p99 exceeds this while re-solves run (0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var current map[string]Result
	var err error
	switch {
	case *concurrent:
		current, err = runConcurrent(stdout, concurrentConfig{
			papers: *ccPapers, reviewers: *ccReviewers, topics: *ccTopics, delta: *ccDelta,
			readers: *ccReaders, resolves: *ccResolves, editBurst: *ccBurst, maxReadP99: *maxReadP99,
		})
		if err != nil {
			return err
		}
	case *serveMode:
		current, err = runServe(stdout, serveConfig{
			papers: *ccPapers, reviewers: *ccReviewers, topics: *ccTopics, delta: *ccDelta,
			resolves: *ccResolves, editBurst: *ccBurst, views: *srvViews,
		})
		if err != nil {
			return err
		}
	case *trackPath != "":
		current, err = runTrack(stdout, trackConfig{
			path: *trackPath, backend: *trackBackend, tenant: *trackTenant,
			reportPath: *trackJSON, sleepScale: *sleepScale, budgets: phaseBudgets,
		})
		if err != nil {
			return err
		}
	default:
		in := stdin
		if *inPath != "" && *inPath != "-" {
			f, err := os.Open(*inPath)
			if err != nil {
				return err
			}
			defer f.Close()
			in = f
		}
		current, err = parseBench(in)
		if err != nil {
			return err
		}
	}
	if len(current) == 0 {
		return fmt.Errorf("no benchmark results found in input")
	}

	keep, err := regexp.Compile(*keepPat)
	if err != nil {
		return fmt.Errorf("bad -keep pattern: %w", err)
	}
	snap := Snapshot{Note: *note, CandidateCap: *candidateCap, Benchmarks: make(map[string]Result)}
	for name, res := range current {
		if keep.MatchString(name) {
			snap.Benchmarks[name] = res
		}
	}
	if *outPath != "" {
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d benchmark(s) to %s\n", len(snap.Benchmarks), *outPath)
	}

	if *minSpeedup > 0 || *speedupNum != "" || *speedupDen != "" {
		// Naming the benchmarks without a threshold (or vice versa) is a
		// misconfigured gate, not a no-op: fail loudly either way.
		if err := assertSpeedup(stdout, current, *speedupNum, *speedupDen, *minSpeedup); err != nil {
			return err
		}
	}
	if *baseline == "" {
		return nil
	}
	return gate(stdout, current, *baseline, *gatePat, *normalizeBy, *maxRegression)
}

// assertSpeedup compares two benchmarks measured in the SAME run and fails
// unless num (the variant expected to be slower, e.g. a single-CPU solve) is
// at least minSpeedup times slower than den (e.g. the sharded multi-core
// solve). Same-run comparison makes the assertion hardware-independent —
// both sides ran on the same machine moments apart.
func assertSpeedup(stdout io.Writer, current map[string]Result, num, den string, minSpeedup float64) error {
	if num == "" || den == "" {
		return fmt.Errorf("-min-speedup requires both -speedup-num and -speedup-den")
	}
	if minSpeedup <= 0 {
		return fmt.Errorf("-speedup-num/-speedup-den require a positive -min-speedup")
	}
	n, okN := current[num]
	d, okD := current[den]
	if !okN || !okD {
		return fmt.Errorf("speedup benchmarks missing from the current run (have %q: %v, %q: %v)", num, okN, den, okD)
	}
	if n.NsPerOp <= 0 || d.NsPerOp <= 0 {
		return fmt.Errorf("speedup benchmarks have non-positive ns/op")
	}
	ratio := n.NsPerOp / d.NsPerOp
	status := "ok"
	if ratio < minSpeedup {
		status = "FAIL"
	}
	fmt.Fprintf(stdout, "speedup %s / %s = %.2fx (want >= %.2fx)  %s\n", num, den, ratio, minSpeedup, status)
	if ratio < minSpeedup {
		return fmt.Errorf("speedup %.2fx below the required %.2fx", ratio, minSpeedup)
	}
	return nil
}

// gate compares the gated benchmarks of the baseline file against the current
// results and fails on missing benchmarks or ns/op regressions beyond
// maxRegression. With normalizeBy set, each side's ns/op is divided by that
// benchmark's ns/op from the same snapshot, so the comparison is a
// hardware-independent ratio (the CI runner and the baseline machine need
// not be equally fast — the frozen legacy solver serves as the local
// yardstick).
func gate(stdout io.Writer, current map[string]Result, baselinePath, gatePattern, normalizeBy string, maxRegression float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base Snapshot
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("bad baseline %s: %w", baselinePath, err)
	}
	gateRe, err := regexp.Compile(gatePattern)
	if err != nil {
		return fmt.Errorf("bad -gate pattern: %w", err)
	}
	curScale, baseScale := 1.0, 1.0
	if normalizeBy != "" {
		cur, okCur := current[normalizeBy]
		b, okBase := base.Benchmarks[normalizeBy]
		if !okCur || !okBase {
			return fmt.Errorf("normalize-by benchmark %q missing from %s", normalizeBy,
				map[bool]string{true: "the baseline", false: "the current run"}[okCur])
		}
		if cur.NsPerOp <= 0 || b.NsPerOp <= 0 {
			return fmt.Errorf("normalize-by benchmark %q has non-positive ns/op", normalizeBy)
		}
		curScale, baseScale = cur.NsPerOp, b.NsPerOp
	}
	gated := 0
	var failures []string
	for name, b := range base.Benchmarks {
		if !gateRe.MatchString(name) || name == normalizeBy {
			continue
		}
		gated++
		cur, ok := current[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: gated benchmark missing from current run", name))
			continue
		}
		ratio := (cur.NsPerOp / curScale) / (b.NsPerOp / baseScale)
		status := "ok"
		if ratio > 1+maxRegression {
			status = "REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (normalized %.0f%% slower, budget %.0f%%)",
				name, cur.NsPerOp, b.NsPerOp, (ratio-1)*100, maxRegression*100))
		}
		fmt.Fprintf(stdout, "gate %-60s %12.0f ns/op  baseline %12.0f ns/op  normalized ratio %.2f  %s\n",
			name, cur.NsPerOp, b.NsPerOp, ratio, status)
	}
	if gated == 0 {
		return fmt.Errorf("no baseline benchmark matches gate pattern %q", gatePattern)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(stdout, "FAIL:", f)
		}
		return fmt.Errorf("%d benchmark regression(s) beyond the %.0f%% budget", len(failures), maxRegression*100)
	}
	return nil
}
