package main

import (
	"os"
	"strings"
	"testing"
)

func captureRun(t *testing.T, args []string) (string, error) {
	t.Helper()
	tmp, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	runErr := run(args, tmp)
	data, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestRunTopK(t *testing.T) {
	out, err := captureRun(t, []string{"-area", "DB", "-year", "2008", "-scale", "0.03", "-paper", "0", "-delta", "3", "-k", "3", "-compare"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"group 1", "group 3", "BBA time", "BFS time"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// BFS and BBA must agree on the best score: both appear as "coverage X".
	if !strings.Contains(out, "coverage") {
		t.Fatalf("missing coverage output:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := captureRun(t, []string{"-paper", "99999", "-scale", "0.03"}); err == nil {
		t.Fatal("out-of-range paper accepted")
	}
	if _, err := captureRun(t, []string{"-data", "missing.json"}); err == nil {
		t.Fatal("missing data file accepted")
	}
	if _, err := captureRun(t, []string{"-zzz"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
