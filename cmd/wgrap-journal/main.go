// Command wgrap-journal solves the Journal Reviewer Assignment problem
// (Section 3 of the paper): it finds the best group of δp reviewers for one
// paper with the exact Branch-and-Bound Algorithm, optionally listing the
// top-k groups, and can compare BBA against the brute-force baseline.
//
// Examples:
//
//	wgrap-journal -data db08.json -paper 0 -delta 3 -k 5
//	wgrap-journal -area T -year 2009 -scale 0.2 -delta 4 -compare
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	wgrap "repro"
	"repro/internal/corpus"
	"repro/internal/jra"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wgrap-journal:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("wgrap-journal", flag.ContinueOnError)
	data := fs.String("data", "", "dataset JSON produced by wgrap-datagen (optional)")
	area := fs.String("area", "DB", "research area when generating: DM, DB or T")
	year := fs.Int("year", 2008, "conference year when generating")
	scale := fs.Float64("scale", 0.1, "dataset scale when generating")
	seed := fs.Int64("seed", 1, "random seed")
	paper := fs.Int("paper", 0, "index of the paper to assign")
	delta := fs.Int("delta", 3, "group size δp")
	k := fs.Int("k", 1, "number of top groups to report")
	compare := fs.Bool("compare", false, "also run the brute-force baseline and report both times")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var d *corpus.Dataset
	var err error
	if *data != "" {
		d, err = corpus.LoadJSON(*data)
	} else {
		gen := corpus.NewGenerator(corpus.Config{Scale: *scale, Seed: *seed})
		d, err = gen.Dataset(corpus.Area(*area), *year)
	}
	if err != nil {
		return err
	}
	if *paper < 0 || *paper >= len(d.Papers) {
		return fmt.Errorf("paper index %d out of range [0,%d)", *paper, len(d.Papers))
	}

	in := wgrap.NewInstance([]wgrap.Paper{d.Papers[*paper]}, d.Reviewers, *delta, 1)
	fmt.Fprintf(out, "paper: %q\n", d.Papers[*paper].Title)
	fmt.Fprintf(out, "candidate reviewers: %d   δp=%d\n\n", len(d.Reviewers), *delta)

	start := time.Now()
	results, err := wgrap.TopReviewerGroupsContext(context.Background(), in, *k)
	if err != nil {
		return err
	}
	bbaTime := time.Since(start)
	for i, res := range results {
		fmt.Fprintf(out, "group %d (coverage %.4f):\n", i+1, res.Score)
		for _, r := range res.Group {
			fmt.Fprintf(out, "  - %s (pair coverage %.2f)\n", d.Reviewers[r].Name, in.PairScore(r, 0))
		}
	}
	fmt.Fprintf(out, "\nBBA time: %s\n", bbaTime)

	if *compare {
		start = time.Now()
		bfs, err := (jra.BruteForce{}).Solve(in)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "BFS time: %s (score %.4f)\n", time.Since(start), bfs.Score)
	}
	return nil
}
