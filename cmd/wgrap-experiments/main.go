// Command wgrap-experiments regenerates the tables and figures of the paper's
// evaluation (Section 5 and Appendix C) on the synthetic corpus and prints
// them as text tables.
//
// Examples:
//
//	wgrap-experiments -list
//	wgrap-experiments -run figure10 -scale 0.2
//	wgrap-experiments -run all -quick
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wgrap-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("wgrap-experiments", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the available experiments and exit")
	runName := fs.String("run", "all", "experiment to run (name or \"all\")")
	scale := fs.Float64("scale", 0, "dataset scale factor (0 = default)")
	seed := fs.Int64("seed", 1, "random seed")
	quick := fs.Bool("quick", false, "use the small smoke-test parameter grids")
	budget := fs.Duration("refine-budget", 0, "refinement time budget for figure12 (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, r := range experiments.Registry() {
			fmt.Fprintf(out, "%-12s %s\n", r.Name, r.Description)
		}
		return nil
	}

	cfg := experiments.Config{
		Scale:            *scale,
		Seed:             *seed,
		Quick:            *quick,
		RefinementBudget: *budget,
	}
	if strings.EqualFold(*runName, "all") {
		start := time.Now()
		if err := experiments.RunAll(cfg, out); err != nil {
			return err
		}
		fmt.Fprintf(out, "all experiments completed in %s\n", time.Since(start).Round(time.Millisecond))
		return nil
	}
	r, ok := experiments.Lookup(*runName)
	if !ok {
		return fmt.Errorf("unknown experiment %q (use -list)", *runName)
	}
	res, err := r.Run(cfg)
	if err != nil {
		return err
	}
	_, err = io.WriteString(out, res.String())
	return err
}
