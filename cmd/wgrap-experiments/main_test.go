package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"figure10", "table4", "figure9a", "casestudies"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("list output missing %q:\n%s", want, buf.String())
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "figure7", "-quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Approximation ratio") && !strings.Contains(buf.String(), "approximation ratio") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}

func TestRunQuickQualityExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "figure10", "-quick", "-scale", "0.03"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Optimality ratio") {
		t.Fatalf("unexpected output:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "unknown"}, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}
