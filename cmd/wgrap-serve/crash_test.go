package main

import (
	"bufio"
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	wgrap "repro"
	"repro/client"
	"repro/internal/wire"
)

// TestMain doubles the test binary as the daemon: with WGRAP_SERVE_CHILD=1
// it runs the real main loop instead of the tests, which lets the
// crash-recovery test boot, SIGKILL and restart actual server processes
// without needing the go toolchain at test runtime.
func TestMain(m *testing.M) {
	if os.Getenv("WGRAP_SERVE_CHILD") == "1" {
		os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// daemon is one child server process.
type daemon struct {
	cmd *exec.Cmd
	url string
}

// startDaemon boots a child server on a free loopback port and waits for its
// readiness line.
func startDaemon(t *testing.T, dataDir string) *daemon {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-addr", "127.0.0.1:0", "-data", dataDir)
	cmd.Env = append(os.Environ(), "WGRAP_SERVE_CHILD=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	urlc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "wgrap-serve: listening on "); ok {
				urlc <- rest
			}
		}
	}()
	select {
	case url := <-urlc:
		d := &daemon{cmd: cmd, url: url}
		t.Cleanup(func() { d.kill() })
		return d
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("daemon never reported its listening address")
		return nil
	}
}

// kill SIGKILLs the daemon — the crash under test: no drain, no journal
// close, exactly what a power cut or OOM kill leaves behind.
func (d *daemon) kill() {
	if d.cmd.ProcessState == nil {
		d.cmd.Process.Kill()
		d.cmd.Wait()
	}
}

// terminate asks for a graceful shutdown and returns the exit error.
func (d *daemon) terminate(t *testing.T) error {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		d.cmd.Process.Kill()
		t.Fatal("daemon ignored SIGTERM")
		return nil
	}
}

func crashTestInstance() *wire.Instance {
	rng := rand.New(rand.NewSource(1234))
	vec := func() []float64 {
		v := make(wgrap.Vector, 6)
		for i := range v {
			v[i] = rng.Float64()
		}
		return v.Normalized()
	}
	in := &wire.Instance{GroupSize: 3}
	for i := 0; i < 20; i++ {
		in.Papers = append(in.Papers, wire.Paper{ID: fmt.Sprintf("p%d", i), Topics: vec()})
	}
	for i := 0; i < 16; i++ {
		in.Reviewers = append(in.Reviewers, wire.Reviewer{ID: fmt.Sprintf("r%d", i), Topics: vec()})
	}
	return in
}

// TestCrashRecovery is the end-to-end kill-and-restart property: a real
// daemon process on loopback, a remote client driving a durable tenant
// through solve and edits, SIGKILL mid-session, a fresh daemon over the same
// data directory — and the replayed tenant must report the same accepted-edit
// sequence and re-solve to the same objective at 1e-9, which must also equal
// what the embedded (mem://) backend computes for the identical history.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns server processes")
	}
	dataDir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	d1 := startDaemon(t, dataDir)
	c, err := client.Open(d1.url)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	in := crashTestInstance()
	cfg := wire.TenantConfig{Omega: 3, Seed: 11, FsyncIntervalNS: -1} // fsync every edit: deterministic loss window
	if _, err := c.CreateTenant(ctx, &wire.CreateRequest{ID: "icml", Instance: in, Config: cfg}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Solve(ctx, "icml"); err != nil {
		t.Fatal(err)
	}
	edits := []wire.Edit{
		{Op: wire.OpAddConflict, R: 3, P: 2},
		{Op: wire.OpWithdraw, P: 9},
		{Op: wire.OpAddConflict, R: 1, P: 12},
		{Op: wire.OpWithdraw, P: 4},
		{Op: wire.OpRestore, P: 9},
	}
	if _, err := c.Edit(ctx, "icml", edits...); err != nil {
		t.Fatal(err)
	}
	preKill, err := c.Resolve(ctx, "icml")
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Status(ctx, "icml")
	if err != nil {
		t.Fatal(err)
	}
	if st.Seq != uint64(len(edits)) || !st.Durable {
		t.Fatalf("pre-kill status: %+v", st)
	}

	// The crash: SIGKILL, mid-session, with acknowledged (and fsynced) edits
	// in the journal and no graceful close.
	d1.kill()

	d2 := startDaemon(t, dataDir)
	c2, err := client.Open(d2.url)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st2, err := c2.Status(ctx, "icml")
	if err != nil {
		t.Fatal(err)
	}
	if st2.Seq != st.Seq {
		t.Fatalf("replayed Seq = %d, want %d", st2.Seq, st.Seq)
	}
	if st2.Active != st.Active {
		t.Fatalf("replayed active papers = %d, want %d", st2.Active, st.Active)
	}
	postKill, err := c2.Resolve(ctx, "icml")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(postKill.Score-preKill.Score) > 1e-9 {
		t.Fatalf("replayed objective %v != pre-kill %v", postKill.Score, preKill.Score)
	}

	// Cross-check against the embedded backend: the same history, cold.
	mem, err := client.Open("mem://")
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	if _, err := mem.CreateTenant(ctx, &wire.CreateRequest{ID: "icml", Instance: in, Config: wire.TenantConfig{Omega: 3, Seed: 11}}); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Edit(ctx, "icml", edits...); err != nil {
		t.Fatal(err)
	}
	ref, err := mem.Solve(ctx, "icml")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(postKill.Score-ref.Score) > 1e-9 {
		t.Fatalf("replayed objective %v != embedded cold solve %v", postKill.Score, ref.Score)
	}

	// The survivor keeps journaling: edit, then a clean SIGTERM shutdown must
	// exit 0 (the goroutine-leak gate lives in internal/serve's tests).
	if _, err := c2.Edit(ctx, "icml", wire.Edit{Op: wire.OpWithdraw, P: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d2.terminate(t); err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}

	d3 := startDaemon(t, dataDir)
	c3, err := client.Open(d3.url)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	st3, err := c3.Status(ctx, "icml")
	if err != nil {
		t.Fatal(err)
	}
	if st3.Seq != st.Seq+1 {
		t.Fatalf("post-shutdown Seq = %d, want %d", st3.Seq, st.Seq+1)
	}
	if err := d3.terminate(t); err != nil {
		t.Fatalf("final shutdown failed: %v", err)
	}
}
