// Command wgrap-serve is the assignment daemon: it hosts per-venue tenants —
// each a long-lived wgrap.Solver session — behind the HTTP API of
// internal/serve (instance upload, incremental edits, cold solve, warm
// re-solve, async tickets, lock-free views, SSE progress streams).
//
// With -data the tenants are durable: each lives in its own subdirectory of
// the data directory as a snapshot plus a checksummed append-only edit
// journal, and a killed or restarted daemon replays every tenant back to its
// exact pre-crash state — same accepted-edit sequence, same re-solve result
// as the uninterrupted session (the crash-recovery CI job asserts this
// end to end, SIGKILL included).
//
// With -node-id and -peers the daemon becomes one node of a shard-aware
// cluster (internal/cluster): venues are consistent-hashed onto the alive
// nodes, the epoch-stamped shard map is served at /cluster/map, requests for
// venues owned elsewhere answer not_owner with the owner's address, and each
// tenant's edit journal is replicated to its ring successor, which replays
// it into a warm standby and takes ownership when the owner dies.
//
// Examples:
//
//	wgrap-serve -addr 127.0.0.1:8080                 # in-memory tenants
//	wgrap-serve -addr :8080 -data /var/lib/wgrap     # durable tenants
//	wgrap-serve -node-id n1 -data /var/lib/wgrap \
//	  -peers n1=10.0.0.1:8080,n2=10.0.0.2:8080,n3=10.0.0.3:8080
//
// Drive it with the repro/client package: client.Open("http://127.0.0.1:8080")
// speaks the same interface as the embedded client.Open("mem://").
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable daemon body: it returns the exit code instead of
// exiting, so the crash-recovery test can host it in a child process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wgrap-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	data := fs.String("data", "", "data directory for durable tenants (empty: in-memory only)")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout")
	nodeID := fs.String("node-id", "", "cluster node id (requires -peers and -data)")
	peers := fs.String("peers", "", "static cluster membership: id=host:port,id=host:port,…")
	probeInterval := fs.Duration("probe-interval", 250*time.Millisecond, "cluster peer health-probe interval")
	replicaPoll := fs.Duration("replica-poll", 500*time.Millisecond, "cluster replication catch-up poll interval")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*nodeID == "") != (*peers == "") {
		fmt.Fprintln(stderr, "wgrap-serve: -node-id and -peers go together")
		return 2
	}

	var clusterCfg *cluster.Config
	if *nodeID != "" {
		if *data == "" {
			fmt.Fprintln(stderr, "wgrap-serve: cluster mode requires -data (journal replication ships the data directory)")
			return 2
		}
		nodes, err := cluster.ParsePeers(*peers)
		if err != nil {
			fmt.Fprintln(stderr, "wgrap-serve:", err)
			return 2
		}
		clusterCfg = &cluster.Config{
			Self:          *nodeID,
			Nodes:         nodes,
			ProbeInterval: *probeInterval,
			ReplicaPoll:   *replicaPoll,
		}
		// Unless -addr was given explicitly, listen on this node's advertised
		// peer address so a 3-line peer list is the whole cluster config.
		explicitAddr := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "addr" {
				explicitAddr = true
			}
		})
		if !explicitAddr {
			for _, n := range nodes {
				if n.ID == *nodeID {
					*addr = n.Addr
				}
			}
		}
	}

	// Catch shutdown signals before anything is announced: a SIGTERM racing
	// the boot must drain, not kill.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	reg, err := serve.NewRegistry(*data)
	if err != nil {
		fmt.Fprintln(stderr, "wgrap-serve:", err)
		return 1
	}
	if *data != "" {
		fmt.Fprintf(stdout, "wgrap-serve: restored %d durable tenant(s) from %s\n", len(reg.List()), *data)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "wgrap-serve:", err)
		return 1
	}
	var opts []serve.Option
	var member *cluster.Member
	if clusterCfg != nil {
		clusterCfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(stdout, "wgrap-serve: "+format+"\n", args...)
		}
		member, err = cluster.NewMember(reg, *clusterCfg)
		if err != nil {
			fmt.Fprintln(stderr, "wgrap-serve:", err)
			reg.Close()
			return 1
		}
		opts = append(opts, serve.WithCluster(member))
	}
	srv := &http.Server{Handler: serve.Handler(reg, opts...)}
	// The listening line is the readiness signal scripts and the CI crash
	// test wait for; it carries the resolved address so -addr :0 is usable.
	fmt.Fprintf(stdout, "wgrap-serve: listening on http://%s\n", ln.Addr())
	if member != nil {
		member.Start()
		fmt.Fprintf(stdout, "wgrap-serve: cluster node %s (%d peers)\n", clusterCfg.Self, len(clusterCfg.Nodes))
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case sig := <-sigc:
		fmt.Fprintf(stdout, "wgrap-serve: %v, draining\n", sig)
	case err := <-errc:
		fmt.Fprintln(stderr, "wgrap-serve:", err)
		if member != nil {
			member.Close()
		}
		reg.Close()
		return 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	code := 0
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(stderr, "wgrap-serve: shutdown:", err)
		code = 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "wgrap-serve:", err)
		code = 1
	}
	// Stop replication before closing tenants (the member reads their
	// journals), and close every tenant last: journals flush and close only
	// after the in-flight requests drained, so an acknowledged edit is never
	// dropped by a graceful shutdown.
	if member != nil {
		member.Close()
	}
	if err := reg.Close(); err != nil {
		fmt.Fprintln(stderr, "wgrap-serve:", err)
		code = 1
	}
	fmt.Fprintln(stdout, "wgrap-serve: stopped")
	return code
}
