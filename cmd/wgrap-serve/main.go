// Command wgrap-serve is the assignment daemon: it hosts per-venue tenants —
// each a long-lived wgrap.Solver session — behind the HTTP API of
// internal/serve (instance upload, incremental edits, cold solve, warm
// re-solve, async tickets, lock-free views, SSE progress streams).
//
// With -data the tenants are durable: each lives in its own subdirectory of
// the data directory as a snapshot plus a checksummed append-only edit
// journal, and a killed or restarted daemon replays every tenant back to its
// exact pre-crash state — same accepted-edit sequence, same re-solve result
// as the uninterrupted session (the crash-recovery CI job asserts this
// end to end, SIGKILL included).
//
// Examples:
//
//	wgrap-serve -addr 127.0.0.1:8080                 # in-memory tenants
//	wgrap-serve -addr :8080 -data /var/lib/wgrap     # durable tenants
//
// Drive it with the repro/client package: client.Open("http://127.0.0.1:8080")
// speaks the same interface as the embedded client.Open("mem://").
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable daemon body: it returns the exit code instead of
// exiting, so the crash-recovery test can host it in a child process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wgrap-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	data := fs.String("data", "", "data directory for durable tenants (empty: in-memory only)")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Catch shutdown signals before anything is announced: a SIGTERM racing
	// the boot must drain, not kill.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	reg, err := serve.NewRegistry(*data)
	if err != nil {
		fmt.Fprintln(stderr, "wgrap-serve:", err)
		return 1
	}
	if *data != "" {
		fmt.Fprintf(stdout, "wgrap-serve: restored %d durable tenant(s) from %s\n", len(reg.List()), *data)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "wgrap-serve:", err)
		return 1
	}
	srv := &http.Server{Handler: serve.Handler(reg)}
	// The listening line is the readiness signal scripts and the CI crash
	// test wait for; it carries the resolved address so -addr :0 is usable.
	fmt.Fprintf(stdout, "wgrap-serve: listening on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case sig := <-sigc:
		fmt.Fprintf(stdout, "wgrap-serve: %v, draining\n", sig)
	case err := <-errc:
		fmt.Fprintln(stderr, "wgrap-serve:", err)
		reg.Close()
		return 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	code := 0
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(stderr, "wgrap-serve: shutdown:", err)
		code = 1
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "wgrap-serve:", err)
		code = 1
	}
	// Close every tenant last: journals flush and close only after the
	// in-flight requests drained, so an acknowledged edit is never dropped by
	// a graceful shutdown.
	if err := reg.Close(); err != nil {
		fmt.Fprintln(stderr, "wgrap-serve:", err)
		code = 1
	}
	fmt.Fprintln(stdout, "wgrap-serve: stopped")
	return code
}
