package main

import (
	"bufio"
	"context"
	"math"
	"net"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/client"
	"repro/internal/cluster"
	"repro/internal/track"
)

// freeLoopbackAddrs reserves n distinct loopback host:port addresses by
// binding and immediately releasing listeners. Cluster peers must know each
// other's addresses before any process starts, so :0 self-assignment (the
// single-node tests' trick) is not available here.
func freeLoopbackAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// startClusterDaemon boots one cluster-mode child server and waits for its
// readiness line. The node listens on its advertised peer address.
func startClusterDaemon(t *testing.T, nodeID, peers, dataDir string) *daemon {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-node-id", nodeID, "-peers", peers, "-data", dataDir)
	cmd.Env = append(os.Environ(), "WGRAP_SERVE_CHILD=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	urlc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if rest, ok := strings.CutPrefix(sc.Text(), "wgrap-serve: listening on "); ok {
				urlc <- rest
			}
		}
	}()
	select {
	case url := <-urlc:
		d := &daemon{cmd: cmd, url: url}
		t.Cleanup(func() { d.kill() })
		return d
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("cluster node %s never reported its listening address", nodeID)
		return nil
	}
}

// TestClusterFailover is the scale-out acceptance property: a real 3-node
// cluster of wgrap-serve processes replays the committed deadline-rush track
// through the shard-aware client, the node owning the replay's venue is
// SIGKILLed mid-track, and the replay must nevertheless run to completion —
// with the exact accepted-edit sequence and (after an explicit re-solve on
// the promoted follower) the same objective at 1e-9 as an embedded mem://
// replay of the identical track. Failover is journal replay: whatever the
// dead owner acknowledged was synchronously replicated, so nothing
// acknowledged may be missing and nothing may be applied twice.
func TestClusterFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a 3-node server cluster and replays a paper-scale track")
	}
	const trackPath = "../../testdata/tracks/deadline-rush-db08.json"
	const tenantID = "rush-cluster"
	tr, err := track.ReadFile(trackPath)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Minute)
	defer cancel()

	addrs := freeLoopbackAddrs(t, 3)
	ids := []string{"a", "b", "c"}
	var peerList []string
	for i, id := range ids {
		peerList = append(peerList, id+"="+addrs[i])
	}
	peers := strings.Join(peerList, ",")
	daemons := make(map[string]*daemon, len(ids))
	for _, id := range ids {
		daemons[id] = startClusterDaemon(t, id, peers, t.TempDir())
	}

	ownerID, succID := cluster.NewRing(ids, cluster.DefaultVNodes).OwnerAndSuccessor(tenantID)
	t.Logf("venue %s: owner %s, designated follower %s", tenantID, ownerID, succID)

	// The assassin: a second shard-aware client polls the venue's sequence
	// and SIGKILLs the owner once the replay is well into the edit storm —
	// past follower bootstrap, with plenty of track left to replay through
	// the promoted follower.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		pc, err := client.Open(daemons[succID].url)
		if err != nil {
			t.Errorf("assassin client: %v", err)
			return
		}
		defer pc.Close()
		for ctx.Err() == nil {
			st, err := pc.Status(ctx, tenantID)
			if err == nil && st.Seq >= 100 {
				t.Logf("SIGKILL owner %s at seq %d", ownerID, st.Seq)
				daemons[ownerID].kill()
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	// Bootstrap against a non-owner on purpose: routing must not depend on
	// which node the client first talks to.
	c, err := client.Open(daemons[succID].url)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, err := track.Replay(ctx, c, tr, track.ReplayOptions{
		TenantID:   tenantID,
		KeepTenant: true, // the post-replay parity re-solve needs the tenant
		Backend:    "cluster",
		Log:        logWriter{t},
	})
	if err != nil {
		t.Fatalf("cluster replay did not survive the owner kill: %v", err)
	}
	<-killed
	clusterRes, err := c.Resolve(ctx, tenantID)
	if err != nil {
		t.Fatalf("post-replay resolve on the promoted follower: %v", err)
	}

	// Reference: the identical track on the embedded backend.
	mem, err := client.Open("mem://")
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	memRep, err := track.Replay(ctx, mem, tr, track.ReplayOptions{
		TenantID: tenantID, KeepTenant: true, Backend: "mem",
	})
	if err != nil {
		t.Fatal(err)
	}
	memRes, err := mem.Resolve(ctx, tenantID)
	if err != nil {
		t.Fatal(err)
	}

	if rep.FinalSeq != memRep.FinalSeq {
		t.Fatalf("cluster replay final seq = %d, mem replay = %d: an acknowledged edit was lost or doubled across the failover",
			rep.FinalSeq, memRep.FinalSeq)
	}
	if rep.EditsAccepted != memRep.EditsAccepted || rep.EditsRejected != memRep.EditsRejected {
		t.Fatalf("cluster accepted/rejected = %d/%d, mem = %d/%d",
			rep.EditsAccepted, rep.EditsRejected, memRep.EditsAccepted, memRep.EditsRejected)
	}
	if math.Abs(clusterRes.Score-memRes.Score) > 1e-9 {
		t.Fatalf("post-failover objective %v != embedded replay objective %v", clusterRes.Score, memRes.Score)
	}
	t.Logf("replay survived failover: %d ops, final seq %d, objective %v (parity at 1e-9)",
		rep.Ops, rep.FinalSeq, clusterRes.Score)

	// The survivors shut down cleanly.
	for _, id := range ids {
		if id == ownerID {
			continue
		}
		if err := daemons[id].terminate(t); err != nil {
			t.Fatalf("node %s graceful shutdown: %v", id, err)
		}
	}
}

// logWriter adapts t.Logf to the replay's phase-marker log.
type logWriter struct{ t *testing.T }

func (w logWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", strings.TrimRight(string(p), "\n"))
	return len(p), nil
}
