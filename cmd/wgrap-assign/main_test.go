package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/corpus"
)

func captureRun(t *testing.T, args []string) (string, error) {
	t.Helper()
	tmp, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	runErr := run(args, tmp)
	data, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestRunGeneratedDataset(t *testing.T) {
	out, err := captureRun(t, []string{"-area", "DB", "-year", "2008", "-scale", "0.03", "-delta", "3", "-method", "sdga", "-show", "2"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"method: sdga", "total coverage score", "optimality ratio", "group coverage"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFromJSONFile(t *testing.T) {
	gen := corpus.NewGenerator(corpus.Config{Scale: 0.03, AuthorsPerArea: 40, Seed: 2})
	d, err := gen.Dataset(corpus.DataMining, 2009)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dm09.json")
	if err := d.SaveJSON(path, false); err != nil {
		t.Fatal(err)
	}
	out, err := captureRun(t, []string{"-data", path, "-delta", "3", "-method", "greedy"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "DM 2009") {
		t.Fatalf("output missing dataset header:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := captureRun(t, []string{"-data", "does-not-exist.json"}); err == nil {
		t.Fatal("missing data file accepted")
	}
	if _, err := captureRun(t, []string{"-area", "DB", "-scale", "0.03", "-method", "bogus"}); err == nil {
		t.Fatal("unknown method accepted")
	}
	if _, err := captureRun(t, []string{"-bogus-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
