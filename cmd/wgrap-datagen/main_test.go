package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
)

func TestRunWritesDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ds.json")
	err := run([]string{"-area", "T", "-year", "2009", "-scale", "0.03", "-authors", "40", "-out", out, "-abstracts"})
	if err != nil {
		t.Fatal(err)
	}
	d, err := corpus.LoadJSON(out)
	if err != nil {
		t.Fatal(err)
	}
	if d.Area != corpus.Theory || d.Year != 2009 || len(d.Papers) == 0 || len(d.Reviewers) == 0 {
		t.Fatalf("unexpected dataset %+v", d)
	}
	if len(d.PaperPubs) == 0 {
		t.Fatal("abstracts missing despite -abstracts")
	}
}

func TestRunRejectsBadArea(t *testing.T) {
	if err := run([]string{"-area", "XX", "-scale", "0.03", "-authors", "20"}); err == nil {
		t.Fatal("bad area accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunRejectsUnwritableOutput(t *testing.T) {
	if err := run([]string{"-scale", "0.03", "-authors", "20", "-out", filepath.Join(os.DevNull, "x", "y.json")}); err == nil {
		t.Fatal("unwritable output accepted")
	}
}
