package main

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
	"repro/internal/track"
)

func TestRunWritesDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ds.json")
	err := run([]string{"-area", "T", "-year", "2009", "-scale", "0.03", "-authors", "40", "-out", out, "-abstracts"})
	if err != nil {
		t.Fatal(err)
	}
	d, err := corpus.LoadJSON(out)
	if err != nil {
		t.Fatal(err)
	}
	if d.Area != corpus.Theory || d.Year != 2009 || len(d.Papers) == 0 || len(d.Reviewers) == 0 {
		t.Fatalf("unexpected dataset %+v", d)
	}
	if len(d.PaperPubs) == 0 {
		t.Fatal("abstracts missing despite -abstracts")
	}
}

func TestRunRejectsBadArea(t *testing.T) {
	if err := run([]string{"-area", "XX", "-scale", "0.03", "-authors", "20"}); err == nil {
		t.Fatal("bad area accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunRejectsUnwritableOutput(t *testing.T) {
	if err := run([]string{"-scale", "0.03", "-authors", "20", "-out", filepath.Join(os.DevNull, "x", "y.json")}); err == nil {
		t.Fatal("unwritable output accepted")
	}
}

// TestWriteOutputRemovesPartialFile: a failed write must not leave a
// truncated JSON artifact behind.
func TestWriteOutputRemovesPartialFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "partial.json")
	err := writeOutput(out, func(w io.Writer) error {
		if _, err := w.Write([]byte(`{"truncated":`)); err != nil {
			return err
		}
		return errors.New("disk on fire")
	})
	if err == nil {
		t.Fatal("failed write reported success")
	}
	if _, statErr := os.Stat(out); !os.IsNotExist(statErr) {
		t.Fatalf("partial output file left behind (stat err: %v)", statErr)
	}
}

func TestRunEmitsTrack(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.json")
	err := run([]string{"-track", "coi-storm", "-area", "DB", "-year", "2008",
		"-scale", "0.06", "-authors", "60", "-track-edits", "30", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := track.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Scenario != "coi-storm" || tr.Corpus == nil || tr.Corpus.Scale != 0.06 {
		t.Fatalf("unexpected track: scenario=%q corpus=%+v", tr.Scenario, tr.Corpus)
	}
	if _, err := tr.Materialize(); err != nil {
		t.Fatal(err)
	}
}

func TestRunEmitsInlineTrack(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.json")
	err := run([]string{"-track", "rebalance", "-area", "T", "-year", "2008",
		"-scale", "0.06", "-authors", "60", "-track-edits", "20", "-inline", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := track.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Instance == nil || tr.Corpus != nil {
		t.Fatalf("-inline track still carries a corpus ref: %+v", tr.Corpus)
	}
}

func TestRunRejectsUnknownScenario(t *testing.T) {
	if err := run([]string{"-track", "nope", "-scale", "0.03", "-authors", "20"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestRunSizeTargeted(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sized.json")
	if err := run([]string{"-area", "DB", "-year", "2008", "-size", "200K", "-out", out}); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() < 150_000 || fi.Size() > 250_000 {
		t.Fatalf("-size 200K produced %d bytes", fi.Size())
	}
}

func TestRunRejectsBadSize(t *testing.T) {
	if err := run([]string{"-size", "wat"}); err == nil {
		t.Fatal("bad -size accepted")
	}
}

func TestRunSkewFlag(t *testing.T) {
	out := filepath.Join(t.TempDir(), "skewed.json")
	if err := run([]string{"-area", "DM", "-year", "2008", "-scale", "0.03", "-authors", "40", "-skew", "1.5", "-out", out}); err != nil {
		t.Fatal(err)
	}
	d, err := corpus.LoadJSON(out)
	if err != nil {
		t.Fatal(err)
	}
	// Hot-topic mass: with a Zipf exponent the area's first topic carries
	// far more aggregate reviewer expertise than its last.
	first, last := 0.0, 0.0
	for _, r := range d.Reviewers {
		first += r.Topics[0]
		last += r.Topics[len(r.Topics)/3-1]
	}
	if first < 2*last {
		t.Fatalf("skewed dataset not skewed: first topic mass %.3f vs last %.3f", first, last)
	}
}
