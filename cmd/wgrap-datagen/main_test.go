package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
)

func TestRunWritesDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ds.json")
	err := run([]string{"-area", "T", "-year", "2009", "-scale", "0.03", "-authors", "40", "-out", out, "-abstracts"})
	if err != nil {
		t.Fatal(err)
	}
	d, err := corpus.LoadJSON(out)
	if err != nil {
		t.Fatal(err)
	}
	if d.Area != corpus.Theory || d.Year != 2009 || len(d.Papers) == 0 || len(d.Reviewers) == 0 {
		t.Fatalf("unexpected dataset %+v", d)
	}
	if len(d.PaperPubs) == 0 {
		t.Fatal("abstracts missing despite -abstracts")
	}
}

func TestRunRejectsBadArea(t *testing.T) {
	if err := run([]string{"-area", "XX", "-scale", "0.03", "-authors", "20"}); err == nil {
		t.Fatal("bad area accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunRejectsUnwritableOutput(t *testing.T) {
	if err := run([]string{"-scale", "0.03", "-authors", "20", "-out", filepath.Join(os.DevNull, "x", "y.json")}); err == nil {
		t.Fatal("unwritable output accepted")
	}
}

func TestRunSkewFlag(t *testing.T) {
	out := filepath.Join(t.TempDir(), "skewed.json")
	if err := run([]string{"-area", "DM", "-year", "2008", "-scale", "0.03", "-authors", "40", "-skew", "1.5", "-out", out}); err != nil {
		t.Fatal(err)
	}
	d, err := corpus.LoadJSON(out)
	if err != nil {
		t.Fatal(err)
	}
	// Hot-topic mass: with a Zipf exponent the area's first topic carries
	// far more aggregate reviewer expertise than its last.
	first, last := 0.0, 0.0
	for _, r := range d.Reviewers {
		first += r.Topics[0]
		last += r.Topics[len(r.Topics)/3-1]
	}
	if first < 2*last {
		t.Fatalf("skewed dataset not skewed: first topic mass %.3f vs last %.3f", first, last)
	}
}
