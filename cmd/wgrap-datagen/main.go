// Command wgrap-datagen generates the synthetic inputs of the benchmark
// pipeline: conference datasets (papers, reviewers and, optionally,
// abstracts) shaped like the DBLP data of the paper's Table 3, and —
// elastic-package style — replayable workload tracks over them.
//
// Dataset generation, optionally size-targeted:
//
//	wgrap-datagen -area DB -year 2008 -scale 0.2 -out db08.json -abstracts
//	wgrap-datagen -area DB -year 2008 -size 100M -out db08-100M.json
//
// Track generation (see internal/track for the scenario catalog; the track
// embeds a corpus reference, so the file stays small and the replayer
// regenerates the identical instance):
//
//	wgrap-datagen -track deadline-rush -area DB -year 2008 -scale 1 \
//	    -track-edits 400 -out deadline-rush-db08.json
//	wgrap-bench -track deadline-rush-db08.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	wgrap "repro"
	"repro/internal/corpus"
	"repro/internal/track"
	"repro/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wgrap-datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wgrap-datagen", flag.ContinueOnError)
	area := fs.String("area", "DB", "research area: DM, DB or T")
	year := fs.Int("year", 2008, "conference year (2008 or 2009)")
	scale := fs.Float64("scale", 0.2, "scale factor applied to the Table 3 sizes")
	seed := fs.Int64("seed", 1, "random seed")
	authors := fs.Int("authors", 400, "authors generated per area")
	skew := fs.Float64("skew", 0, "Zipf exponent of topic popularity within each area (0 = uniform); skewed corpora concentrate expertise on hot topics, the stress case for candidate-pruned solves")
	size := fs.String("size", "", "approximate serialized output size to target (e.g. 500K, 100M); overrides -scale and grows -authors as needed, printing the achieved size")
	out := fs.String("out", "", "output file (default stdout); removed again if the write fails, so a truncated file never survives")
	abstracts := fs.Bool("abstracts", false, "include paper abstracts in the JSON")

	trackName := fs.String("track", "", "emit a workload track of this scenario over the generated corpus instead of the corpus itself (see -track-list)")
	trackList := fs.Bool("track-list", false, "list the track scenario catalog and exit")
	trackEdits := fs.Int("track-edits", 320, "-track: approximate number of edit ops")
	trackRate := fs.Int("track-rate", 8, "-track: mean edits coalesced between resolve points")
	trackSkew := fs.Float64("track-skew", 1.1, "-track: Zipf exponent of hot-paper/hot-reviewer targeting")
	trackSleep := fs.Duration("track-sleep", 0, "-track: pacing sleep emitted after each resolve point (0 = none)")
	trackDelta := fs.Int("delta", 3, "-track: reviewers per paper δp of the track instance")
	trackWorkload := fs.Int("workload", 0, "-track: per-reviewer workload δr (0 = minimum balanced)")
	trackMethod := fs.String("method", string(wgrap.MethodSDGA), "-track: solver method pinned in the track's tenant config")
	trackInline := fs.Bool("inline", false, "-track: embed the instance inline instead of a corpus reference (bigger file, no corpus regeneration on replay)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *trackList {
		for _, s := range track.Scenarios() {
			fmt.Printf("%-17s %s\n", s.Name, s.Description)
		}
		return nil
	}

	cfg := corpus.Config{
		Scale:          *scale,
		Seed:           *seed,
		AuthorsPerArea: *authors,
		Skew:           *skew,
	}

	// Resolve the corpus: plain, or size-targeted (-size picks Scale and
	// AuthorsPerArea to approximate the requested serialized size).
	var (
		d        *corpus.Dataset
		achieved int64
	)
	if *size != "" {
		target, err := corpus.ParseSize(*size)
		if err != nil {
			return err
		}
		d, cfg, achieved, err = corpus.SizedDataset(cfg, corpus.Area(*area), *year, target, *abstracts)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "size target %s: achieved %s (scale %.2f, %d authors/area)\n",
			corpus.FormatSize(target), corpus.FormatSize(achieved), cfg.Scale, cfg.AuthorsPerArea)
	} else {
		var err error
		d, err = corpus.NewGenerator(cfg).Dataset(corpus.Area(*area), *year)
		if err != nil {
			return err
		}
	}

	if *trackName != "" {
		t, err := buildTrack(d, cfg, trackParams{
			scenario: *trackName, area: *area, year: *year,
			delta: *trackDelta, workload: *trackWorkload, method: *trackMethod,
			edits: *trackEdits, rate: *trackRate, skew: *trackSkew,
			sleep: *trackSleep, seed: *seed, inline: *trackInline,
		})
		if err != nil {
			return err
		}
		if err := writeOutput(*out, t.Write); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "generated track %s (%s): %d ops over %s %d (%d papers, %d reviewers)\n",
			t.Name, t.Scenario, len(t.Ops), *area, *year, len(d.Papers), len(d.Reviewers))
		return nil
	}

	if err := writeOutput(*out, func(w io.Writer) error { return d.WriteJSON(w, *abstracts) }); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %s %d: %d papers, %d reviewers\n",
		*area, *year, len(d.Papers), len(d.Reviewers))
	return nil
}

// trackParams collects the -track flag set.
type trackParams struct {
	scenario, area, method string
	year, delta, workload  int
	edits, rate            int
	skew                   float64
	sleep                  time.Duration
	seed                   int64
	inline                 bool
}

// buildTrack derives a scenario track from the generated corpus. The track
// references the corpus by its generation parameters (tiny file, replayer
// regenerates it) unless inline embedding is requested.
func buildTrack(d *corpus.Dataset, cfg corpus.Config, p trackParams) (*track.Track, error) {
	in, err := wire.FromInstance(d.Instance(p.delta, p.workload))
	if err != nil {
		return nil, err
	}
	ops, err := track.Generate(p.scenario, in, track.GenConfig{
		Seed:            p.seed,
		Edits:           p.edits,
		EditsPerResolve: p.rate,
		Skew:            p.skew,
		Sleep:           p.sleep,
	})
	if err != nil {
		return nil, err
	}
	t := &track.Track{
		Format: track.FormatVersion,
		Name:   fmt.Sprintf("%s-%s%02d", p.scenario, map[string]string{"DM": "kdd", "DB": "db", "T": "theory"}[p.area], p.year%100),
		Description: fmt.Sprintf("%s scenario over the synthetic %s %d conference (scale %.2f, %d papers, %d reviewers)",
			p.scenario, p.area, p.year, cfg.Scale, len(d.Papers), len(d.Reviewers)),
		Scenario: p.scenario,
		Seed:     p.seed,
		Config:   wire.TenantConfig{Method: p.method, Seed: 1},
		Ops:      ops,
	}
	if p.inline {
		t.Instance = in
	} else {
		t.Corpus = &track.CorpusRef{
			Area: p.area, Year: p.year,
			Scale: cfg.Scale, Seed: cfg.Seed, Authors: cfg.AuthorsPerArea, Skew: cfg.Skew,
			GroupSize: p.delta, Workload: p.workload,
		}
	}
	return t, nil
}

// writeOutput streams write's output to path (stdout when empty). On any
// failure — including the Close, whose error a bare defer would swallow —
// the partial file is removed: a truncated JSON artifact that parses as
// garbage later is strictly worse than no file.
func writeOutput(path string, write func(io.Writer) error) error {
	if path == "" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := write(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(path)
		return fmt.Errorf("writing %s: %w", path, werr)
	}
	return nil
}
