// Command wgrap-datagen generates a synthetic conference dataset (papers,
// reviewers and, optionally, abstracts) shaped like the DBLP data of the
// paper's Table 3 and writes it as JSON for use with wgrap-assign and
// wgrap-journal.
//
// Example:
//
//	wgrap-datagen -area DB -year 2008 -scale 0.2 -out db08.json -abstracts
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/corpus"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wgrap-datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wgrap-datagen", flag.ContinueOnError)
	area := fs.String("area", "DB", "research area: DM, DB or T")
	year := fs.Int("year", 2008, "conference year (2008 or 2009)")
	scale := fs.Float64("scale", 0.2, "scale factor applied to the Table 3 sizes")
	seed := fs.Int64("seed", 1, "random seed")
	authors := fs.Int("authors", 400, "authors generated per area")
	skew := fs.Float64("skew", 0, "Zipf exponent of topic popularity within each area (0 = uniform); skewed corpora concentrate expertise on hot topics, the stress case for candidate-pruned solves")
	out := fs.String("out", "", "output file (default stdout)")
	abstracts := fs.Bool("abstracts", false, "include paper abstracts in the JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}

	gen := corpus.NewGenerator(corpus.Config{
		Scale:          *scale,
		Seed:           *seed,
		AuthorsPerArea: *authors,
		Skew:           *skew,
	})
	d, err := gen.Dataset(corpus.Area(*area), *year)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := d.WriteJSON(w, *abstracts); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %s %d: %d papers, %d reviewers\n",
		*area, *year, len(d.Papers), len(d.Reviewers))
	return nil
}
