package wgrap

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// solverEditScript applies the k-th scripted edit to a solver; replayed
// identically onto warm and cold sessions so their instances agree.
func solverEditScript(t *testing.T, s *Solver, rng *rand.Rand, k int) {
	t.Helper()
	in := s.Instance()
	P, R := in.NumPapers(), in.NumReviewers()
	switch k % 3 {
	case 0:
		if err := s.AddConflict(rng.Intn(R), rng.Intn(P)); err != nil {
			t.Fatalf("edit %d: %v", k, err)
		}
	case 1:
		if err := s.WithdrawPaper(rng.Intn(P)); err != nil {
			t.Fatalf("edit %d: %v", k, err)
		}
	case 2:
		for p := 0; p < P; p++ {
			if !s.Active(p) {
				if err := s.RestorePaper(p); err != nil {
					t.Fatalf("edit %d: %v", k, err)
				}
			}
		}
	}
}

// TestSolverResolveParity is the public-API acceptance parity test: after
// each scripted random edit, the warm Resolve score must match a cold
// NewSolver+Solve on the identically edited instance to 1e-9, for both
// session methods.
func TestSolverResolveParity(t *testing.T) {
	for _, m := range []Method{MethodSDGA, MethodSDGASRA} {
		t.Run(string(m), func(t *testing.T) {
			rng := rand.New(rand.NewSource(101))
			papers, reviewers := randomProblem(rng, 36, 28, 10)
			in := NewInstance(papers, reviewers, 3, 0)
			warm, err := NewSolver(in, WithMethod(m), WithOmega(3), WithSeed(9))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := warm.Solve(context.Background()); err != nil {
				t.Fatal(err)
			}
			editRng := rand.New(rand.NewSource(55))
			for k := 0; k < 9; k++ {
				solverEditScript(t, warm, editRng, k)
				warmRes, err := warm.Resolve(context.Background())
				if err != nil {
					t.Fatalf("edit %d: warm resolve: %v", k, err)
				}
				cold, err := NewSolver(in, WithMethod(m), WithOmega(3), WithSeed(9))
				if err != nil {
					t.Fatal(err)
				}
				coldRng := rand.New(rand.NewSource(55))
				for j := 0; j <= k; j++ {
					solverEditScript(t, cold, coldRng, j)
				}
				coldRes, err := cold.Solve(context.Background())
				if err != nil {
					t.Fatalf("edit %d: cold solve: %v", k, err)
				}
				if math.Abs(warmRes.Score-coldRes.Score) > 1e-9 {
					t.Fatalf("edit %d: warm score %v != cold score %v", k, warmRes.Score, coldRes.Score)
				}
				if warmRes.AverageCoverage <= 0 || warmRes.LowestCoverage < 0 {
					t.Fatalf("edit %d: bad metrics %+v", k, warmRes)
				}
			}
		})
	}
}

// TestSolverPaperScaleParity is the acceptance-scale spot check (P=1000,
// R=2000): one added conflict and one withdrawal, warm vs cold, scores to
// 1e-9. The ≥3x speed requirement is asserted by the resolve_after_edit
// benchmark (solver_bench_test.go) and gated in CI.
func TestSolverPaperScaleParity(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale parity skipped in -short mode")
	}
	in := benchConferenceInstance(1000, 2000, 40, 3)
	warm, err := NewSolver(in, WithMethod(MethodSDGA))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Solve(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := warm.AddConflict(1234, 567); err != nil {
		t.Fatal(err)
	}
	if err := warm.WithdrawPaper(89); err != nil {
		t.Fatal(err)
	}
	warmStart := time.Now()
	warmRes, err := warm.Resolve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	warmElapsed := time.Since(warmStart)

	cold, err := NewSolver(in, WithMethod(MethodSDGA))
	if err != nil {
		t.Fatal(err)
	}
	if err := cold.AddConflict(1234, 567); err != nil {
		t.Fatal(err)
	}
	if err := cold.WithdrawPaper(89); err != nil {
		t.Fatal(err)
	}
	coldStart := time.Now()
	coldRes, err := cold.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	coldElapsed := time.Since(coldStart)
	if math.Abs(warmRes.Score-coldRes.Score) > 1e-9 {
		t.Fatalf("paper-scale parity: warm %v != cold %v", warmRes.Score, coldRes.Score)
	}
	t.Logf("paper-scale edit-resolve: warm %s vs cold %s (%.1fx)",
		warmElapsed, coldElapsed, float64(coldElapsed)/float64(warmElapsed))
}

// TestSolverBaselineMethods: every method supports the session lifecycle
// (solve, edits, resolve); baselines run cold but must respect the edits.
func TestSolverBaselineMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	papers, reviewers := randomProblem(rng, 12, 9, 6)
	in := NewInstance(papers, reviewers, 3, 0)
	for _, m := range Methods() {
		s, err := NewSolver(in, WithMethod(m), WithOmega(3))
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if _, err := s.Solve(context.Background()); err != nil {
			t.Fatalf("%s: solve: %v", m, err)
		}
		if err := s.AddConflict(2, 3); err != nil {
			t.Fatalf("%s: conflict: %v", m, err)
		}
		if err := s.WithdrawPaper(5); err != nil {
			t.Fatalf("%s: withdraw: %v", m, err)
		}
		res, err := s.Resolve(context.Background())
		if err != nil {
			t.Fatalf("%s: resolve: %v", m, err)
		}
		if res.Method != m {
			t.Fatalf("%s: method echo = %q", m, res.Method)
		}
		if len(res.Assignment.Groups[5]) != 0 {
			t.Fatalf("%s: withdrawn paper still has reviewers %v", m, res.Assignment.Groups[5])
		}
		for _, r := range res.Assignment.Groups[3] {
			if r == 2 {
				t.Fatalf("%s: conflicted reviewer assigned after resolve", m)
			}
		}
		for p, g := range res.Assignment.Groups {
			if p != 5 && len(g) != in.GroupSize {
				t.Fatalf("%s: paper %d has %d reviewers", m, p, len(g))
			}
		}
	}
}

// TestSolverSentinelErrors: every failure class maps to its sentinel.
func TestSolverSentinelErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	papers, reviewers := randomProblem(rng, 6, 4, 5)
	in := NewInstance(papers, reviewers, 3, 0)

	if _, err := NewSolver(in, WithMethod("nope")); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("unknown method: err = %v", err)
	}
	if _, err := NewSolver(NewInstance(nil, nil, 3, 0)); !errors.Is(err, ErrInvalidInstance) {
		t.Fatalf("empty instance: err = %v", err)
	}
	tight := NewInstance(papers, reviewers, 3, 2) // 4·2 < 6·3
	if _, err := NewSolver(tight); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("capacity shortfall: err = %v", err)
	}

	s, err := NewSolver(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddConflict(0, 99); !errors.Is(err, ErrInvalidEdit) {
		t.Fatalf("out-of-range conflict: err = %v", err)
	}
	if err := s.WithdrawPaper(-1); !errors.Is(err, ErrInvalidEdit) {
		t.Fatalf("out-of-range withdraw: err = %v", err)
	}
	if err := s.SetWorkload(0); !errors.Is(err, ErrInvalidEdit) {
		t.Fatalf("zero workload: err = %v", err)
	}
	if err := s.SetWorkload(1); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("infeasible workload: err = %v", err)
	}
	if _, err := s.AddReviewer(Reviewer{Topics: Vector{1}}); !errors.Is(err, ErrInvalidEdit) {
		t.Fatalf("dimension-mismatched reviewer: err = %v", err)
	}
	// δp equals the pool size, so any conflict saturates.
	sat := NewInstance(papers, reviewers[:3], 3, 0)
	ss, err := NewSolver(sat)
	if err != nil {
		t.Fatal(err)
	}
	if err := ss.AddConflict(0, 0); !errors.Is(err, ErrConflictSaturated) {
		t.Fatalf("saturating conflict: err = %v", err)
	}
	// Journal path: conflicts below δp candidates.
	jin := NewInstance(papers[:1], reviewers[:3], 3, 1)
	jin.AddConflict(0, 0)
	if _, err := AssignJournal(jin); !errors.Is(err, ErrConflictSaturated) {
		t.Fatalf("journal saturation: err = %v", err)
	}
}

// TestSolverProgressStream: the construction snapshot arrives first, then
// monotonically improving refinement snapshots; the final snapshot equals
// the returned result.
func TestSolverProgressStream(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	papers, reviewers := randomProblem(rng, 20, 14, 8)
	in := NewInstance(papers, reviewers, 3, 0)
	var snaps []Snapshot
	s, err := NewSolver(in, WithOmega(8), WithSeed(3), WithProgress(func(sn Snapshot) {
		snaps = append(snaps, sn)
	}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no progress snapshots")
	}
	if snaps[0].Phase != "construct" || snaps[0].Round != 0 {
		t.Fatalf("first snapshot = %+v, want construct/round 0", snaps[0])
	}
	last := snaps[0].Score
	for i, sn := range snaps[1:] {
		if sn.Phase != "refine" {
			t.Fatalf("snapshot %d phase = %q", i+1, sn.Phase)
		}
		if sn.Score < last-1e-12 {
			t.Fatalf("snapshot %d score %v below previous %v", i+1, sn.Score, last)
		}
		if sn.Best == nil || len(sn.Best.Groups) != in.NumPapers() {
			t.Fatalf("snapshot %d has no usable assignment", i+1)
		}
		last = sn.Score
	}
	if math.Abs(last-res.Score) > 1e-9 {
		t.Fatalf("final snapshot score %v != result score %v", last, res.Score)
	}
	// A no-edit Resolve confirms the cached result without re-solving (and
	// emits no snapshots).
	before := len(snaps)
	confirm, err := s.Resolve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(confirm.Score-res.Score) > 1e-12 {
		t.Fatalf("no-edit Resolve score %v != cached %v", confirm.Score, res.Score)
	}
	if len(snaps) != before {
		t.Fatal("no-edit Resolve emitted snapshots")
	}
	// The callback can be replaced after construction and fires on the next
	// real re-solve.
	count := 0
	s.OnImprovement(func(Snapshot) { count++ })
	if err := s.AddConflict(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Resolve(context.Background()); err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("replaced callback never invoked")
	}
}

// TestSolverProgressBaselineMethods: non-session configurations still emit
// at least the construction snapshot (and refinement snapshots when the
// legacy-transport SDGA-SRA pipeline improves).
func TestSolverProgressBaselineMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	papers, reviewers := randomProblem(rng, 16, 12, 8)
	in := NewInstance(papers, reviewers, 3, 0)
	for _, opts := range [][]Option{
		{WithMethod(MethodGreedy)},
		{WithMethod(MethodSDGASRA), WithTransport(TransportLegacy), WithOmega(5)},
	} {
		var snaps []Snapshot
		s, err := NewSolver(in, append(opts, WithProgress(func(sn Snapshot) { snaps = append(snaps, sn) }))...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Solve(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(snaps) == 0 || snaps[0].Phase != "construct" {
			t.Fatalf("%s: no construction snapshot (got %d snaps)", s.Method(), len(snaps))
		}
		if last := snaps[len(snaps)-1]; math.Abs(last.Score-res.Score) > 1e-9 {
			t.Fatalf("%s: last snapshot score %v != result %v", s.Method(), last.Score, res.Score)
		}
		// With withdrawals, snapshots must still cover every original paper
		// index (the compacted baseline run is scattered back).
		if err := s.WithdrawPaper(3); err != nil {
			t.Fatal(err)
		}
		snaps = snaps[:0]
		if _, err := s.Resolve(context.Background()); err != nil {
			t.Fatal(err)
		}
		if len(snaps) == 0 || len(snaps[0].Best.Groups) != in.NumPapers() {
			t.Fatalf("%s: masked snapshot missing or mis-shaped", s.Method())
		}
		if len(snaps[0].Best.Groups[3]) != 0 {
			t.Fatalf("%s: withdrawn paper has reviewers in snapshot", s.Method())
		}
	}
}

// TestSolverResolveAfterCancelledResolve: a Resolve aborted mid-pipeline
// must not poison the warm state — the next Resolve rebuilds and matches a
// cold solve of the edited instance.
func TestSolverResolveAfterCancelledResolve(t *testing.T) {
	rng := rand.New(rand.NewSource(157))
	papers, reviewers := randomProblem(rng, 30, 22, 10)
	in := NewInstance(papers, reviewers, 3, 0)
	warm, err := NewSolver(in, WithMethod(MethodSDGA))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Solve(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := warm.AddConflict(5, 11); err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := warm.Resolve(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled resolve: err = %v", err)
	}
	warmRes, err := warm.Resolve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewSolver(warm.Instance(), WithMethod(MethodSDGA))
	if err != nil {
		t.Fatal(err)
	}
	coldRes, err := cold.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warmRes.Score-coldRes.Score) > 1e-9 {
		t.Fatalf("post-cancel parity: warm %v != cold %v", warmRes.Score, coldRes.Score)
	}
}

// TestSolverConcurrentSessions: independent sessions (each with its own
// private instance copy) solve and edit concurrently; run under -race in CI.
func TestSolverConcurrentSessions(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	papers, reviewers := randomProblem(rng, 18, 12, 8)
	in := NewInstance(papers, reviewers, 3, 0)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s, err := NewSolver(in, WithMethod(MethodSDGA), WithSeed(int64(g+1)))
			if err != nil {
				errs <- err
				return
			}
			if _, err := s.Solve(context.Background()); err != nil {
				errs <- err
				return
			}
			if err := s.AddConflict(g%len(reviewers), g%len(papers)); err != nil {
				errs <- err
				return
			}
			if _, err := s.Resolve(context.Background()); err != nil {
				errs <- err
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestSolverSingleSessionMutualExclusion: one session hammered from many
// goroutines stays consistent — the mutex serialises Solve/Resolve/mutators
// (the documented single-flight behavior). Run under -race in CI.
func TestSolverSingleSessionMutualExclusion(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	papers, reviewers := randomProblem(rng, 16, 12, 8)
	in := NewInstance(papers, reviewers, 3, 0)
	s, err := NewSolver(in, WithMethod(MethodSDGA))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			switch g % 3 {
			case 0:
				_, _ = s.Solve(context.Background())
			case 1:
				_ = s.AddConflict(g%len(reviewers), g%len(papers))
				_, _ = s.Resolve(context.Background())
			default:
				_, _ = s.Resolve(context.Background())
			}
		}(g)
	}
	wg.Wait()
	// After the dust settles the session still produces a valid assignment.
	res, err := s.Resolve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if err := in.ValidateAssignment(res.Assignment); err != nil {
		t.Fatal(err)
	}
}

// TestOptionDefaultsUnified: the resolved-options path gives Assign, Refine
// and NewSolver identical documented defaults (method sdga-sra, ω=10,
// seed 1), and the deprecated AssignOptions shim converts losslessly.
func TestOptionDefaultsUnified(t *testing.T) {
	def := resolveOptions(nil)
	if def.method != MethodSDGASRA || def.omega != 10 || def.seed != 1 ||
		def.transport != TransportDijkstra || def.refinementBudget != 0 {
		t.Fatalf("resolved defaults = %+v", def)
	}
	sra := def.sra()
	if sra.Omega != 10 || sra.Seed != 1 || sra.TimeBudget != 0 {
		t.Fatalf("default SRA = %+v", sra)
	}
	// The legacy struct's zero value resolves to the same configuration.
	legacy := resolveOptions(AssignOptions{}.asOptions())
	if legacy.method != def.method || legacy.transport != def.transport ||
		legacy.omega != def.omega || legacy.seed != def.seed ||
		legacy.refinementBudget != def.refinementBudget {
		t.Fatalf("AssignOptions{} resolves to %+v, want %+v", legacy, def)
	}
	// Non-zero legacy fields survive the conversion.
	full := resolveOptions(AssignOptions{
		Method:           MethodGreedy,
		Transport:        TransportLegacy,
		Omega:            4,
		RefinementBudget: time.Second,
		Seed:             7,
	}.asOptions())
	if full.method != MethodGreedy || full.transport != TransportLegacy ||
		full.omega != 4 || full.refinementBudget != time.Second || full.seed != 7 {
		t.Fatalf("converted options = %+v", full)
	}
	// Invalid explicit values fall back to the defaults instead of
	// diverging (the historical Refine bug class this test pins down).
	clamped := resolveOptions([]Option{WithOmega(0), WithSeed(0)})
	if clamped.omega != 10 || clamped.seed != 1 {
		t.Fatalf("clamped options = %+v", clamped)
	}

	// Behavioral check: Refine with zero options equals Refine with the
	// documented defaults spelled out.
	rng := rand.New(rand.NewSource(131))
	papers, reviewers := randomProblem(rng, 12, 8, 6)
	in := NewInstance(papers, reviewers, 2, 0)
	base, err := Assign(in, AssignOptions{Method: MethodGreedy})
	if err != nil {
		t.Fatal(err)
	}
	a1, err := Refine(in, base.Assignment, AssignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Refine(in, base.Assignment, AssignOptions{Omega: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(in.AssignmentScore(a1)-in.AssignmentScore(a2)) > 1e-12 {
		t.Fatal("zero-value Refine diverges from the documented defaults")
	}
}

// TestSolverShimEquivalence: the deprecated one-shot Assign must return the
// same assignment as an explicit session Solve with equivalent options.
func TestSolverShimEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	papers, reviewers := randomProblem(rng, 15, 10, 7)
	in := NewInstance(papers, reviewers, 3, 0)
	for _, m := range []Method{MethodSDGA, MethodSDGASRA, MethodGreedy} {
		shim, err := Assign(in, AssignOptions{Method: m, Omega: 4, Seed: 11})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		s, err := NewSolver(in, WithMethod(m), WithOmega(4), WithSeed(11))
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		sess, err := s.Solve(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if math.Abs(shim.Score-sess.Score) > 1e-12 {
			t.Fatalf("%s: shim score %v != session score %v", m, shim.Score, sess.Score)
		}
	}
}

// TestSolverWorkloadEdit: growing δr mid-session re-solves warm and matches
// the cold solve of the re-parameterised instance.
func TestSolverWorkloadEdit(t *testing.T) {
	rng := rand.New(rand.NewSource(139))
	papers, reviewers := randomProblem(rng, 20, 15, 8)
	in := NewInstance(papers, reviewers, 3, 0)
	warm, err := NewSolver(in, WithMethod(MethodSDGA))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Solve(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := warm.SetWorkload(in.Workload + 2); err != nil {
		t.Fatal(err)
	}
	warmRes, err := warm.Resolve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	coldIn := NewInstance(papers, reviewers, 3, in.Workload+2)
	cold, err := NewSolver(coldIn, WithMethod(MethodSDGA))
	if err != nil {
		t.Fatal(err)
	}
	coldRes, err := cold.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warmRes.Score-coldRes.Score) > 1e-9 {
		t.Fatalf("workload edit parity: warm %v != cold %v", warmRes.Score, coldRes.Score)
	}
}

// TestSolverAddReviewerEdit: a structural edit still resolves correctly and
// the new reviewer is usable.
func TestSolverAddReviewerEdit(t *testing.T) {
	rng := rand.New(rand.NewSource(149))
	papers, reviewers := randomProblem(rng, 14, 10, 6)
	in := NewInstance(papers, reviewers, 3, 0)
	s, err := NewSolver(in, WithMethod(MethodSDGA))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(context.Background()); err != nil {
		t.Fatal(err)
	}
	idx, err := s.AddReviewer(Reviewer{ID: "late", Topics: randVec(rng, 6)})
	if err != nil {
		t.Fatal(err)
	}
	if idx != 10 {
		t.Fatalf("AddReviewer index = %d, want 10", idx)
	}
	res, err := s.Resolve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewSolver(s.Instance(), WithMethod(MethodSDGA))
	if err != nil {
		t.Fatal(err)
	}
	coldRes, err := cold.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Score-coldRes.Score) > 1e-9 {
		t.Fatalf("reviewer-add parity: warm %v != cold %v", res.Score, coldRes.Score)
	}
}

// TestSolverBatchedEditParity: several edits before a single warm Resolve
// must match a cold solve of the identically edited instance to 1e-9, with
// the sharded stage solve forced on (WithShards pins the worker count above
// one so the parallel load paths run even on single-CPU machines).
func TestSolverBatchedEditParity(t *testing.T) {
	for _, m := range []Method{MethodSDGA, MethodSDGASRA} {
		t.Run(string(m), func(t *testing.T) {
			rng := rand.New(rand.NewSource(131))
			papers, reviewers := randomProblem(rng, 34, 26, 10)
			in := NewInstance(papers, reviewers, 3, 0)
			opts := []Option{WithMethod(m), WithOmega(3), WithSeed(11), WithShards(4)}
			warm, err := NewSolver(in, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := warm.Solve(context.Background()); err != nil {
				t.Fatal(err)
			}
			editRng := rand.New(rand.NewSource(77))
			edits := 0
			for batch := 0; batch < 3; batch++ {
				for k := 0; k < 3; k++ {
					solverEditScript(t, warm, editRng, edits)
					edits++
				}
				warmRes, err := warm.Resolve(context.Background())
				if err != nil {
					t.Fatalf("batch %d: warm resolve: %v", batch, err)
				}
				cold, err := NewSolver(in, opts...)
				if err != nil {
					t.Fatal(err)
				}
				coldRng := rand.New(rand.NewSource(77))
				for j := 0; j < edits; j++ {
					solverEditScript(t, cold, coldRng, j)
				}
				coldRes, err := cold.Solve(context.Background())
				if err != nil {
					t.Fatalf("batch %d: cold solve: %v", batch, err)
				}
				if math.Abs(warmRes.Score-coldRes.Score) > 1e-9 {
					t.Fatalf("batch %d (%d edits): warm score %v != cold score %v", batch, edits, warmRes.Score, coldRes.Score)
				}
			}
		})
	}
}

// TestSolverOutOfBandSaturation: conflicts injected directly into the view
// returned by Instance() — bypassing the Solver's guarded mutators — that
// saturate an active paper must surface ErrConflictSaturated from the next
// Resolve; the Solver must neither panic nor silently confirm the stale
// assignment, and must keep erroring until the situation is resolved.
func TestSolverOutOfBandSaturation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	papers, reviewers := randomProblem(rng, 8, 6, 8)
	in := NewInstance(papers, reviewers, 3, 0)
	s, err := NewSolver(in, WithMethod(MethodSDGA))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(context.Background()); err != nil {
		t.Fatal(err)
	}
	inner := s.Instance()
	for r := 0; r < inner.NumReviewers()-inner.GroupSize+1; r++ {
		inner.AddConflict(r, 3)
	}
	for attempt := 0; attempt < 2; attempt++ {
		res, err := s.Resolve(context.Background())
		if !errors.Is(err, ErrConflictSaturated) {
			t.Fatalf("attempt %d: err = %v, want ErrConflictSaturated", attempt, err)
		}
		if res != nil {
			t.Fatalf("attempt %d: Resolve returned a result alongside the error", attempt)
		}
	}
	if err := s.WithdrawPaper(3); err != nil {
		t.Fatal(err)
	}
	res, err := s.Resolve(context.Background())
	if err != nil {
		t.Fatalf("resolve after withdrawing the saturated paper: %v", err)
	}
	if len(res.Assignment.Groups[3]) != 0 {
		t.Fatalf("withdrawn saturated paper still has reviewers %v", res.Assignment.Groups[3])
	}
}

// TestSolverSnapshotsSurviveResolve: Snapshot.Best values delivered through
// the progress stream (and Result assignments) must be private copies — a
// caller may hold them across later edits and warm Resolves without
// observing mutation. A reader goroutine continuously walks the held
// snapshots while the solver re-solves, so the race detector also proves
// the absence of aliasing with solver-owned state.
func TestSolverSnapshotsSurviveResolve(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	papers, reviewers := randomProblem(rng, 24, 18, 8)
	in := NewInstance(papers, reviewers, 3, 0)
	s, err := NewSolver(in, WithMethod(MethodSDGASRA), WithOmega(3), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	var held []Snapshot
	var frozen [][][]int // deep copies taken at capture time
	s.OnImprovement(func(sn Snapshot) {
		held = append(held, sn)
		groups := make([][]int, len(sn.Best.Groups))
		for p, g := range sn.Best.Groups {
			groups[p] = append([]int(nil), g...)
		}
		frozen = append(frozen, groups)
	})
	if _, err := s.Solve(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(held) == 0 {
		t.Fatal("no snapshots emitted")
	}
	// The reader holds its own slice of the first batch (the callback keeps
	// appending to held during later resolves); the Best pointers inside are
	// the shared values under test.
	firstBatch := append([]Snapshot(nil), held...)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sink := 0
		for {
			select {
			case <-stop:
				_ = sink
				return
			default:
			}
			for i := range firstBatch {
				for _, g := range firstBatch[i].Best.Groups {
					for _, r := range g {
						sink += r
					}
				}
			}
		}
	}()
	// Edits + warm resolves while the reader walks the held snapshots: any
	// aliasing of solver-owned slices shows up as a data race.
	editRng := rand.New(rand.NewSource(3))
	for k := 0; k < 4; k++ {
		solverEditScript(t, s, editRng, k)
		if _, err := s.Resolve(context.Background()); err != nil {
			t.Fatalf("edit %d: %v", k, err)
		}
	}
	close(stop)
	wg.Wait()

	for i := range held {
		for p, g := range held[i].Best.Groups {
			want := frozen[i][p]
			if len(g) != len(want) {
				t.Fatalf("snapshot %d paper %d mutated: %v != %v", i, p, g, want)
			}
			for j := range g {
				if g[j] != want[j] {
					t.Fatalf("snapshot %d paper %d mutated: %v != %v", i, p, g, want)
				}
			}
		}
	}
}
