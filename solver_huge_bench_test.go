package wgrap

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// hugeScaleInstance builds the production-scale benchmark instance: P papers
// and R reviewers with Zipf-skewed topic vectors (hot topics carry most of
// the expertise mass, as in real corpora — see corpus.Config.Skew), so the
// candidate lists of the pruned solve collide on the same popular reviewers,
// the stress case for the sparse transport. The workload is one above the
// feasibility minimum: real conferences run with slack, and the tight
// minimum would turn the benchmark into a measurement of the densify escape
// hatch instead of the sparse path.
func hugeScaleInstance(p, r, t int) *core.Instance {
	rng := rand.New(rand.NewSource(8))
	weights := make([]float64, t)
	total := 0.0
	for j := range weights {
		weights[j] = math.Pow(float64(j+1), -1.0)
		total += weights[j]
	}
	zipfTopic := func() int {
		u := rng.Float64() * total
		for j, w := range weights {
			if u -= w; u < 0 {
				return j
			}
		}
		return t - 1
	}
	vec := func() core.Vector {
		v := make(core.Vector, t)
		for j := 0; j < 4; j++ {
			v[zipfTopic()] += rng.Float64() / float64(j+1)
		}
		return v.Normalized()
	}
	papers := make([]core.Paper, p)
	for i := range papers {
		papers[i] = core.Paper{Topics: vec()}
	}
	reviewers := make([]core.Reviewer, r)
	for i := range reviewers {
		reviewers[i] = core.Reviewer{Topics: vec()}
	}
	delta := 3
	in := core.NewInstance(papers, reviewers, delta, 0)
	in.Workload = in.MinWorkload() + 1
	return in
}

// BenchmarkSolveHugeScale is the sub-quadratic acceptance benchmark: one
// full cold SDGA solve at P=100k, R=200k (T=40, δp=3, k=64) through the
// candidate-pruned sparse path. The dense path cannot run at this scale at
// all — its profit matrix alone is 2·10^10 cells (~160 GB) — so the
// benchmark has no dense twin; the objective loss of pruning is pinned
// separately at paper scale by TestSolverCandidateCapPaperScaleEpsilon. CI
// runs one iteration and gates a >20% ns/op regression against
// BENCH_BASELINE.json (normalized by the legacy transport yardstick).
func BenchmarkSolveHugeScale(b *testing.B) {
	in := hugeScaleInstance(100_000, 200_000, 40)
	b.Run("solve_huge_scale_sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := NewSolver(in, WithMethod(MethodSDGA), WithCandidateCap(64))
			if err != nil {
				b.Fatal(err)
			}
			res, err := s.Solve(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if err := in.ValidateAssignment(res.Assignment); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Score/float64(in.NumPapers()), "avg-coverage")
		}
	})
}
