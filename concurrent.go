package wgrap

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/cra"
)

// View is one published, immutable solver state: the result of a completed
// Solve/Resolve plus its provenance. Views are swapped atomically — View()
// and Result() never take the solve lock and never block on a re-solve in
// flight; a reader always sees the latest complete version while the next
// one is computed. Everything reachable through a View (the Result, its
// Assignment) is a private copy the solver never touches again; readers must
// treat it as read-only but may hold it indefinitely.
type View struct {
	// Version increases by one per publication, starting at 0 for the
	// pre-solve view (whose Result is nil). Monotonic: a reader polling
	// View() can detect a new solve by comparing versions.
	Version uint64
	// Result of the solve that produced the view; nil only on version 0.
	Result *Result
	// Warm reports whether a warm Resolve (rather than a cold Solve)
	// produced the view.
	Warm bool
	// Edits is how many coalesced edits the producing solve drained from the
	// pending batch (0 for a confirmation of an unchanged instance).
	Edits int
	// When is the publication time.
	When time.Time
}

// Ticket tracks one ResolveAsync request. The zero Ticket is invalid; they
// are created by ResolveAsync only. Done closes after the request's solve
// completed and its View was published, so a waiter that then calls View()
// observes Version() or newer.
type Ticket struct {
	done    chan struct{}
	res     *Result
	err     error
	version uint64
}

// Done returns a channel closed once the solve has completed (successfully
// or not) and, on success, the new View is published.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Wait blocks until the solve completes or ctx is cancelled, returning the
// solve's result. Cancelling ctx abandons only this wait — the solve keeps
// running and publishes normally.
func (t *Ticket) Wait(ctx context.Context) (*Result, error) {
	select {
	case <-t.done:
		return t.res, t.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Version returns the published View version the solve produced. Valid only
// after Done; 0 while in flight or when the solve failed.
func (t *Ticket) Version() uint64 {
	select {
	case <-t.done:
		return t.version
	default:
		return 0
	}
}

func (t *Ticket) complete(res *Result, err error, version uint64) {
	t.res, t.err = res, err
	if err == nil {
		t.version = version
	}
	close(t.done)
}

// editKind discriminates the pending-batch operations.
type editKind uint8

const (
	editConflict editKind = iota
	editWithdraw
	editRestore
	editReviewer
	editWorkload
)

// pendingEdit is one accepted-but-not-yet-applied session edit.
type pendingEdit struct {
	kind     editKind
	r, p     int
	rev      Reviewer
	workload int
}

// editMirror replicates exactly the state the session's mutators validate
// against, advanced at enqueue time instead of apply time. It is what lets
// an edit made while a Resolve is in flight return the same error — or the
// same acceptance — it would get from the session itself, synchronously,
// without touching the session (which the running solve owns). Guarded by
// Solver.pendMu.
type editMirror struct {
	papers    int
	reviewers int
	topics    int
	groupSize int
	workload  int
	activeN   int
	withdrawn []bool
	conflictN []int
	conflicts map[int64]struct{}
}

func newEditMirror(in *core.Instance) editMirror {
	P := in.NumPapers()
	m := editMirror{
		papers:    P,
		reviewers: in.NumReviewers(),
		topics:    in.NumTopics(),
		groupSize: in.GroupSize,
		workload:  in.Workload,
		activeN:   P,
		withdrawn: make([]bool, P),
		conflictN: make([]int, P),
		conflicts: make(map[int64]struct{}),
	}
	for _, c := range in.Conflicts() {
		m.conflicts[m.key(c.Reviewer, c.Paper)] = struct{}{}
		m.conflictN[c.Paper]++
	}
	return m
}

func (m *editMirror) key(r, p int) int64 { return int64(r)*int64(m.papers) + int64(p) }

// check validates op against the mirror without mutating it, so the edit
// journal can persist the record between acceptance and apply — a journal
// write failure then rejects the edit with mirror and session untouched.
// Idempotent no-ops (a duplicate conflict, withdrawing a withdrawn paper)
// are accepted like the session accepts them. The errors are the same
// internal sentinels the session returns, pre-wrapping.
func (m *editMirror) check(op *pendingEdit) error {
	switch op.kind {
	case editConflict:
		if op.r < 0 || op.r >= m.reviewers || op.p < 0 || op.p >= m.papers {
			return fmt.Errorf("%w: conflict (%d,%d) out of range", ErrInvalidEdit, op.r, op.p)
		}
		if _, dup := m.conflicts[m.key(op.r, op.p)]; dup {
			return nil
		}
		if !m.withdrawn[op.p] && m.reviewers-m.conflictN[op.p]-1 < m.groupSize {
			return fmt.Errorf("%w (paper %d)", cra.ErrConflictSaturated, op.p)
		}
	case editWithdraw:
		if op.p < 0 || op.p >= m.papers {
			return fmt.Errorf("%w: paper %d out of range", ErrInvalidEdit, op.p)
		}
	case editRestore:
		if op.p < 0 || op.p >= m.papers {
			return fmt.Errorf("%w: paper %d out of range", ErrInvalidEdit, op.p)
		}
		if !m.withdrawn[op.p] {
			return nil
		}
		if m.reviewers-m.conflictN[op.p] < m.groupSize {
			return fmt.Errorf("%w (paper %d)", cra.ErrConflictSaturated, op.p)
		}
		if m.reviewers*m.workload < (m.activeN+1)*m.groupSize {
			return cra.ErrInsufficientCapacity
		}
	case editReviewer:
		if d := op.rev.Topics.Dim(); d != m.topics {
			return fmt.Errorf("%w: cra: reviewer has %d topics, want %d", ErrInvalidEdit, d, m.topics)
		}
	case editWorkload:
		if op.workload <= 0 {
			return fmt.Errorf("%w: workload δr must be positive, got %d", ErrInvalidEdit, op.workload)
		}
		if m.reviewers*op.workload < m.activeN*m.groupSize {
			return cra.ErrInsufficientCapacity
		}
	}
	return nil
}

// apply advances the mirror as the session will when the checked op is
// applied. Infallible: the op passed check against this exact mirror state.
func (m *editMirror) apply(op *pendingEdit) {
	switch op.kind {
	case editConflict:
		if _, dup := m.conflicts[m.key(op.r, op.p)]; !dup {
			m.conflicts[m.key(op.r, op.p)] = struct{}{}
			m.conflictN[op.p]++
		}
	case editWithdraw:
		if !m.withdrawn[op.p] {
			m.withdrawn[op.p] = true
			m.activeN--
		}
	case editRestore:
		if m.withdrawn[op.p] {
			m.withdrawn[op.p] = false
			m.activeN++
		}
	case editReviewer:
		m.reviewers++
	case editWorkload:
		m.workload = op.workload
	}
}

// enqueueEdit validates op against the mirror, journals it when the session
// is durable, queues it, and — when no solve holds the lock — immediately
// drains the batch into the session, so the uncontended path behaves exactly
// like the pre-concurrent solver. Callback-safe: from a progress callback
// the TryLock fails (the solve owns the lock) and the edit simply stays
// pending for the solve that follows.
func (s *Solver) enqueueEdit(op pendingEdit) error {
	s.pendMu.Lock()
	if err := s.acceptLocked(&op); err != nil {
		s.pendMu.Unlock()
		return err
	}
	s.pendMu.Unlock()
	if s.mu.TryLock() {
		s.drainLocked()
		s.maybeCompactLocked()
		s.mu.Unlock()
	}
	return nil
}

// acceptLocked runs the accept pipeline of one edit under pendMu: mirror
// check, journal append (durable sessions), mirror apply, enqueue. An edit
// is accepted — and therefore counted by Seq and visible to replay — exactly
// when this returns nil.
func (s *Solver) acceptLocked(op *pendingEdit) error {
	if s.storeErr != nil {
		return s.storeErr
	}
	if err := s.mirror.check(op); err != nil {
		return wrapErr(err)
	}
	if err := s.journalLocked(op); err != nil {
		return err
	}
	s.mirror.apply(op)
	s.accepted++
	s.pending = append(s.pending, *op)
	return nil
}

// drainLocked applies the pending batch to the session in enqueue order.
// Caller holds mu. The mirror already accepted every op, so the session
// applications cannot fail; a failure would mean mirror and session
// diverged — a bug — so it is kept and surfaced by the next solve rather
// than dropped, and the mirror is rebuilt from the session.
func (s *Solver) drainLocked() {
	s.pendMu.Lock()
	ops := s.pending
	s.pending = nil
	s.pendMu.Unlock()
	if len(ops) == 0 {
		return
	}
	for i := range ops {
		op := &ops[i]
		var err error
		switch op.kind {
		case editConflict:
			err = s.sess.AddConflict(op.r, op.p)
		case editWithdraw:
			err = s.sess.WithdrawPaper(op.p)
		case editRestore:
			err = s.sess.RestorePaper(op.p)
		case editReviewer:
			_, err = s.sess.AddReviewer(op.rev)
		case editWorkload:
			err = s.sess.SetWorkload(op.workload)
		}
		if err != nil && s.applyErr == nil {
			s.applyErr = wrapErr(err)
			s.pendMu.Lock()
			s.mirror = newEditMirror(s.sess.Instance())
			for p := 0; p < s.mirror.papers; p++ {
				if !s.sess.Active(p) {
					s.mirror.withdrawn[p] = true
					s.mirror.activeN--
				}
			}
			s.pendMu.Unlock()
		}
	}
	s.edited = true
	s.editsSince += len(ops)
}

// publishLocked swaps in a new View for a completed solve. Caller holds mu.
func (s *Solver) publishLocked(res *Result, warm bool) {
	v := &View{
		Version: s.version.Add(1),
		Result:  res,
		Warm:    warm,
		Edits:   s.editsSince,
		When:    time.Now(),
	}
	s.editsSince = 0
	s.view.Store(v)
}

// View returns the latest published solver state without taking the solve
// lock: it never blocks, not even while a Solve/Resolve/ResolveAsync is
// running. Before the first successful solve it returns the version-0 view
// (nil Result).
func (s *Solver) View() *View { return s.view.Load() }

// Result returns the Result of the latest published View (nil before the
// first successful solve). Like View, it never blocks on a solve in flight.
func (s *Solver) Result() *Result { return s.view.Load().Result }

// Progress returns the most recent anytime snapshot of the running (or last)
// solve — the construction result, then each refinement improvement — or nil
// before the first snapshot. It never blocks: mid-solve state is readable at
// any time while the full solve keeps running.
func (s *Solver) Progress() *Snapshot { return s.live.Load() }

// ResolveAsync requests a re-solve of the instance including every edit
// pending at the time the solve starts, without blocking the caller. Edits
// and ResolveAsync calls made while a solve is in flight coalesce: the next
// solve drains them all as one warm re-solve (the warm/cold parity guarantee
// of Resolve applies unchanged), publishes one new View, and completes every
// ticket that requested it with the same Result. Ordering guarantees: edits
// apply in enqueue order; an edit accepted before ResolveAsync returns is
// included in the ticket's solve or an earlier one; the ticket completes
// only after its View is published, so a waiter that calls View() after Wait
// sees Version() or newer.
func (s *Solver) ResolveAsync() *Ticket {
	tk := &Ticket{done: make(chan struct{})}
	s.pendMu.Lock()
	s.tickets = append(s.tickets, tk)
	spawn := !s.asyncOn
	s.asyncOn = true
	s.pendMu.Unlock()
	if spawn {
		go s.asyncLoop()
	}
	return tk
}

// asyncLoop is the single background worker that serves ResolveAsync
// tickets: it repeatedly takes the solve lock, steals the queued tickets,
// runs one solve that drains everything pending, publishes, and completes
// the stolen tickets. It exits when a round finds no tickets; the next
// ResolveAsync spawns a fresh worker (pendMu serialises the handoff, so no
// ticket is ever stranded).
func (s *Solver) asyncLoop() {
	for {
		s.mu.Lock()
		s.pendMu.Lock()
		tickets := s.tickets
		s.tickets = nil
		if len(tickets) == 0 {
			s.asyncOn = false
			s.pendMu.Unlock()
			s.mu.Unlock()
			return
		}
		s.pendMu.Unlock()
		s.solveGID.Store(curGID())
		res, err := s.run(context.Background(), !s.solved)
		s.solveGID.Store(0)
		var version uint64
		if v := s.view.Load(); v != nil {
			version = v.Version
		}
		s.mu.Unlock()
		for _, tk := range tickets {
			tk.complete(res, err, version)
		}
	}
}

// checkReentry panics when the calling goroutine is the one running the
// in-flight solve — i.e. a progress callback called back into a blocking
// Solver method, which would deadlock on the solve lock. The pre-solve load
// keeps the common path at one atomic read; the stack parse only runs while
// a solve is actually in flight.
func (s *Solver) checkReentry() {
	if gid := s.solveGID.Load(); gid != 0 && gid == curGID() {
		panic("wgrap: Solve/Resolve must not be called from a progress callback (it would deadlock); " +
			"use View, Progress, the edit mutators, or ResolveAsync instead — all are callback-safe")
	}
}

// curGID returns the calling goroutine's id, parsed from the "goroutine N"
// header of its stack trace (the runtime exposes no cheaper portable way).
func curGID() int64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	id := int64(0)
	for _, c := range buf[len("goroutine "):n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}
