package wgrap

// bench_test.go regenerates every table and figure of the paper's evaluation
// as a testing.B benchmark (one benchmark per experiment), plus ablation
// benchmarks for the design choices called out in DESIGN.md. The benchmarks
// run the experiment harness in Quick mode so the full suite finishes in
// minutes; run cmd/wgrap-experiments for the larger default scale.

import (
	"context"
	"io"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/cra"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/flow"
	"repro/internal/jra"
)

// benchCfg is the scaled-down experiment configuration used by benchmarks.
func benchCfg() experiments.Config {
	return experiments.Config{
		Quick:            true,
		Scale:            0.05,
		Seed:             1,
		GroupSizes:       []int{3},
		JRAPoolSizes:     []int{20, 40},
		JRAGroupSizes:    []int{2, 3},
		ILPMaxReviewers:  15,
		BFSMaxCombos:     2e5,
		RefinementBudget: 300 * time.Millisecond,
	}
}

// runExperiment executes a registered experiment b.N times.
func runExperiment(b *testing.B, name string) {
	b.Helper()
	r, ok := experiments.Lookup(name)
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tables) == 0 {
			b.Fatal("experiment produced no tables")
		}
	}
}

// --- One benchmark per table / figure of the paper -------------------------

func BenchmarkTable6ScoringFunctions(b *testing.B)  { runExperiment(b, "table6") }
func BenchmarkFigure7ApproxRatio(b *testing.B)      { runExperiment(b, "figure7") }
func BenchmarkFigure9aJRAGroupSize(b *testing.B)    { runExperiment(b, "figure9a") }
func BenchmarkFigure9bJRAPoolSize(b *testing.B)     { runExperiment(b, "figure9b") }
func BenchmarkCPComparison(b *testing.B)            { runExperiment(b, "cp") }
func BenchmarkFigure14JRAScalability(b *testing.B)  { runExperiment(b, "figure14") }
func BenchmarkFigure15TopK(b *testing.B)            { runExperiment(b, "figure15") }
func BenchmarkTable4ResponseTime(b *testing.B)      { runExperiment(b, "table4") }
func BenchmarkFigure10OptimalityRatio(b *testing.B) { runExperiment(b, "figure10") }
func BenchmarkFigure11SuperiorityRatio(b *testing.B) {
	runExperiment(b, "figure11")
}
func BenchmarkFigure12Refinement(b *testing.B)   { runExperiment(b, "figure12") }
func BenchmarkFigure16Omega(b *testing.B)        { runExperiment(b, "figure16") }
func BenchmarkFigure17Theory2008(b *testing.B)   { runExperiment(b, "figure17") }
func BenchmarkFigure18Year2009(b *testing.B)     { runExperiment(b, "figure18") }
func BenchmarkTable7LowestCoverage(b *testing.B) { runExperiment(b, "table7") }
func BenchmarkCaseStudies(b *testing.B)          { runExperiment(b, "casestudies") }
func BenchmarkFigure21AltScoring(b *testing.B)   { runExperiment(b, "figure21") }
func BenchmarkRunAllExperiments(b *testing.B) {
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.RunAll(cfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the core algorithms -------------------------------

func benchJournalInstance(r, t, delta int) *core.Instance {
	rng := rand.New(rand.NewSource(7))
	papers := []core.Paper{{Topics: benchVec(rng, t)}}
	reviewers := make([]core.Reviewer, r)
	for i := range reviewers {
		reviewers[i] = core.Reviewer{Topics: benchVec(rng, t)}
	}
	return core.NewInstance(papers, reviewers, delta, 1)
}

func benchConferenceInstance(p, r, t, delta int) *core.Instance {
	rng := rand.New(rand.NewSource(8))
	papers := make([]core.Paper, p)
	for i := range papers {
		papers[i] = core.Paper{Topics: benchVec(rng, t)}
	}
	reviewers := make([]core.Reviewer, r)
	for i := range reviewers {
		reviewers[i] = core.Reviewer{Topics: benchVec(rng, t)}
	}
	in := core.NewInstance(papers, reviewers, delta, 0)
	in.Workload = in.MinWorkload()
	return in
}

func benchVec(rng *rand.Rand, t int) core.Vector {
	v := make(core.Vector, t)
	for i := range v {
		v[i] = rng.Float64()
	}
	return v.Normalized()
}

func BenchmarkBBAJournal200x30(b *testing.B) {
	in := benchJournalInstance(200, 30, 3)
	solver := jra.BranchAndBound{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := solver.Solve(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSDGAConference(b *testing.B) {
	in := benchConferenceInstance(120, 25, 30, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (cra.SDGA{}).Assign(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyConference(b *testing.B) {
	in := benchConferenceInstance(120, 25, 30, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (cra.Greedy{}).Assign(in); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (DESIGN.md §4) -------------------------------------

// BenchmarkAblationBBA quantifies the contribution of the two ingredients of
// BBA: the gain-ordered branching and the per-topic upper bound.
func BenchmarkAblationBBA(b *testing.B) {
	in := benchJournalInstance(80, 30, 3)
	variants := []struct {
		name   string
		solver jra.BranchAndBound
	}{
		{"full", jra.BranchAndBound{}},
		{"no-bounding", jra.BranchAndBound{DisableBounding: true}},
		{"no-gain-ordering", jra.BranchAndBound{DisableGainOrdering: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := v.solver.Solve(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGreedyHeap compares the lazy-heap greedy against the naive
// rescan-everything variant.
func BenchmarkAblationGreedyHeap(b *testing.B) {
	in := benchConferenceInstance(100, 20, 30, 3)
	variants := []struct {
		name string
		alg  cra.Greedy
	}{
		{"lazy-heap", cra.Greedy{}},
		{"naive-rescan", cra.Greedy{Naive: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := v.alg.Assign(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationStageSolver compares the Stage-WGRAP formulations: the
// default Dijkstra transport, the legacy SPFA transport and the Hungarian
// column expansion.
func BenchmarkAblationStageSolver(b *testing.B) {
	in := benchConferenceInstance(120, 25, 30, 3)
	variants := []struct {
		name string
		alg  cra.SDGA
	}{
		{"flow", cra.SDGA{Solver: cra.StageFlow}},
		{"flow-legacy-spfa", cra.SDGA{Solver: cra.StageFlow, Transport: flow.Legacy}},
		{"hungarian", cra.SDGA{Solver: cra.StageHungarian}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := v.alg.Assign(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSRAProbability compares the three probability models of
// the stochastic refinement (Equations 9 and 10 and the uniform strawman).
func BenchmarkAblationSRAProbability(b *testing.B) {
	in := benchConferenceInstance(80, 20, 30, 3)
	base, err := cra.SDGA{}.Assign(in)
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name  string
		model cra.ProbabilityModel
	}{
		{"coverage-decay", cra.ProbCoverageDecay},
		{"coverage", cra.ProbCoverage},
		{"uniform", cra.ProbUniform},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sra := cra.SRA{Omega: 5, MaxRounds: 30, Model: v.model, Seed: int64(i + 1)}
				refined, err := sra.Refine(in, base)
				if err != nil {
					b.Fatal(err)
				}
				if in.AssignmentScore(refined) < in.AssignmentScore(base)-1e-9 {
					b.Fatal("refinement decreased the score")
				}
			}
		})
	}
}

// BenchmarkDatasetGeneration measures the synthetic corpus generator.
func BenchmarkDatasetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gen := corpus.NewGenerator(corpus.Config{Scale: 0.05, AuthorsPerArea: 60, Seed: int64(i + 1)})
		if _, err := gen.Dataset(corpus.Databases, 2008); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Gain-engine benchmarks (the fused, parallel profit-matrix build) -------

// benchGroupVecs builds partially filled per-paper group vectors (one random
// reviewer each), the state a mid-SDGA stage sees.
func benchGroupVecs(in *core.Instance, seed int64) []core.Vector {
	rng := rand.New(rand.NewSource(seed))
	vecs := make([]core.Vector, in.NumPapers())
	for p := range vecs {
		vecs[p] = make(core.Vector, in.NumTopics())
		vecs[p].MaxInPlace(in.Reviewers[rng.Intn(in.NumReviewers())].Topics)
	}
	return vecs
}

// BenchmarkProfitMatrixPaperScale compares the legacy sequential profit
// matrix build (fresh [][]float64 + core.GainWithVector per cell, the
// pre-engine SDGA code path) against the fused, parallel engine build with a
// reused flat matrix, at the paper's conference scale: P=1000 papers,
// R=2000 reviewers, T=40 topics.
func BenchmarkProfitMatrixPaperScale(b *testing.B) {
	in := benchConferenceInstance(1000, 2000, 40, 3)
	groupVecs := benchGroupVecs(in, 9)

	b.Run("legacy-sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			profit := make([][]float64, in.NumPapers())
			for p := 0; p < in.NumPapers(); p++ {
				profit[p] = make([]float64, in.NumReviewers())
				for r := 0; r < in.NumReviewers(); r++ {
					profit[p][r] = in.GainWithVector(p, groupVecs[p], r)
				}
			}
		}
	})

	b.Run("engine-fused-parallel", func(b *testing.B) {
		eng := engine.New(in)
		var m engine.Matrix
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			spec := engine.ProfitSpec{GroupVecs: groupVecs}
			if err := eng.FillProfit(context.Background(), &m, spec); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGainOracle measures one marginal-gain evaluation: the generic
// merged-vector path against the fused single-pass path, for each of the
// paper's four scoring functions.
func BenchmarkGainOracle(b *testing.B) {
	names := []string{"weighted", "reviewer", "paper", "dot-product"}
	in := benchConferenceInstance(100, 200, 40, 3)
	groupVecs := benchGroupVecs(in, 10)
	for _, name := range names {
		score := core.ScoringFunctions[name]
		in.Score = score
		eng := engine.New(in)
		b.Run(name+"/generic", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				in.GainWithVector(i%100, groupVecs[i%100], i%200)
			}
		})
		b.Run(name+"/fused", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng.Gain(i%100, groupVecs[i%100], i%200)
			}
		})
	}
	in.Score = nil
}

// BenchmarkProfitMatrixCI is the reduced-scale (P=200, R=400) profit-matrix
// fill recorded by the CI bench job alongside the transport solve of
// internal/flow (see BENCH_BASELINE.json and cmd/wgrap-bench).
func BenchmarkProfitMatrixCI(b *testing.B) {
	in := benchConferenceInstance(200, 400, 40, 3)
	groupVecs := benchGroupVecs(in, 11)
	eng := engine.New(in)
	var m engine.Matrix
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := engine.ProfitSpec{GroupVecs: groupVecs}
		if err := eng.FillProfit(context.Background(), &m, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSDGALargeConference runs one full SDGA assignment at a larger
// conference scale than BenchmarkSDGAConference; the end-to-end number the
// profit-matrix speedup feeds into. (At the paper's full P=1000, R=2000 the
// runtime is dominated by the per-stage min-cost-flow solve, which is the
// next scaling target — see ROADMAP.md.)
func BenchmarkSDGALargeConference(b *testing.B) {
	in := benchConferenceInstance(300, 600, 40, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (cra.SDGA{}).Assign(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSRARefinementRoundsPaperScale measures the per-round cost of the
// stochastic refinement at the paper's conference scale (P=1000, R=2000,
// T=40): a fixed number of rounds over a fixed SDGA construction. The
// per-round dirty tracking (engine.FillProfitRows + flow ResolveRows inside
// cra's completion) re-fills only the profit rows of papers whose
// post-removal group changed since the previous round, instead of rebuilding
// the whole P×R matrix and transport every round.
func BenchmarkSRARefinementRoundsPaperScale(b *testing.B) {
	in := benchConferenceInstance(1000, 2000, 40, 3)
	base, err := (cra.SDGA{}).Assign(in)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sra := cra.SRA{Omega: 1000, MaxRounds: 8, Seed: int64(i + 1)}
		refined, err := sra.Refine(in, base)
		if err != nil {
			b.Fatal(err)
		}
		if in.AssignmentScore(refined) < in.AssignmentScore(base)-1e-9 {
			b.Fatal("refinement decreased the score")
		}
	}
}
