package wgrap

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cra"
	"repro/internal/durable"
)

// Snapshot is one point of a solve's anytime progress stream: the best
// assignment known so far and its score. Construction emits one snapshot
// (Phase "construct", Round 0); every improving round of the stochastic
// refinement emits another (Phase "refine", 1-based Round).
type Snapshot struct {
	// Phase is "construct" (the SDGA result) or "refine" (an SRA
	// improvement).
	Phase string
	// Round is the refinement round that produced the improvement (0 for the
	// construction snapshot).
	Round int
	// Score is the WGRAP objective of Best over the active papers.
	Score float64
	// Best is a private copy of the best assignment found so far; withdrawn
	// papers have empty groups.
	Best *Assignment
	// Elapsed is the wall-clock time since the Solve/Resolve call started.
	Elapsed time.Duration
}

// Solver is a long-lived assignment session: it owns a private copy of the
// instance plus every piece of reusable solver state (profit matrices, the
// per-stage transportation solvers, refinement scratch), accepts incremental
// instance edits, and re-solves warm.
//
// The lifecycle is: NewSolver → Solve (cold) → edits (AddConflict,
// WithdrawPaper, RestorePaper, AddReviewer, SetWorkload) → Resolve (warm) →
// more edits → Resolve …. For the default SDGA-based methods, Resolve
// re-fills only the profit-matrix rows the edits dirtied and re-solves each
// stage's transportation from its retained flow and duals, so a small edit
// re-solves several times faster than a cold Solve while returning the same
// assignment a cold solve of the edited instance would (identical whenever
// the stage optima are unique, which holds with probability one for
// continuous scores). Baseline methods re-run cold on Resolve.
//
// All methods are safe for concurrent use, and the session is built to be
// served: solves are single-flight behind a solve lock, but reads and writes
// are not. View, Result and Progress return atomically-published immutable
// snapshots and never block on a Solve/Resolve in flight; the edit mutators
// validate against a mirror of the session state and enqueue into a pending
// batch, so they return their verdict immediately even mid-solve; and
// ResolveAsync drains everything pending as one coalesced warm re-solve in
// the background, publishing a new View on completion (see concurrent.go).
// Progress callbacks run synchronously on the solving goroutine; they must
// not call the blocking Solve/Resolve (enforced with a panic — it would
// deadlock), but View, Progress, the mutators and ResolveAsync are all
// callback-safe.
type Solver struct {
	// mu is the solve lock: it guards the session, the non-session algorithm
	// state (lastA, edited), start, editsSince and applyErr. Lock order is
	// always mu → pendMu; pendMu is never held while acquiring mu.
	mu        sync.Mutex
	opts      options
	sess      *cra.Session
	alg       cra.Algorithm // cold construction of the non-session methods
	algRefine bool          // run the stochastic refinement after alg
	solved    bool
	// edited and lastA implement the no-edit Resolve fast path for the
	// non-session methods (the session keeps its own equivalent state).
	edited bool
	lastA  *core.Assignment
	// start is the wall-clock origin of the running Solve/Resolve, read by
	// the progress hooks (only touched while mu is held).
	start time.Time
	// editsSince counts the edits drained since the last published View
	// (guarded by mu); applyErr keeps a mirror/session divergence for the
	// next solve to surface (a bug guard — see drainLocked).
	editsSince int
	applyErr   error

	// Lock-free read surface: the latest published View, the latest mid-solve
	// progress snapshot, the View version counter, the registered progress
	// callback, and the goroutine id of the in-flight solve (0 when idle,
	// used to turn callback re-entry deadlocks into panics).
	view     atomic.Pointer[View]
	live     atomic.Pointer[Snapshot]
	version  atomic.Uint64
	progress atomic.Pointer[func(Snapshot)]
	solveGID atomic.Int64

	// pendMu guards the pending edit batch, its validation mirror, the
	// ResolveAsync ticket queue, the accepted-edit counter and the durable
	// store handle. It is only ever held for O(1) work (plus, for durable
	// sessions, one journal append), so the mutators and mirror reads stay
	// non-blocking even mid-solve.
	pendMu  sync.Mutex
	pending []pendingEdit
	tickets []*Ticket
	asyncOn bool
	mirror  editMirror
	// accepted counts the edits accepted over the session's lifetime; for
	// durable sessions it is the journal sequence number (see durability.go).
	accepted uint64
	dstore   *durable.Store
	// storeErr is a sticky durability failure: once a journal append or
	// fsync fails, every further edit and solve is refused rather than
	// silently diverging from the journal.
	storeErr error
}

// NewSolver builds a solver session for the instance. The instance is
// copied: later mutations of in are invisible to the session (edit through
// the Solver's mutators instead). A zero Workload selects the minimum
// balanced workload ⌈P·δp/R⌉, exactly as NewInstance does.
//
// Errors: ErrUnknownMethod, ErrInvalidInstance, ErrInfeasible,
// ErrConflictSaturated; additionally ErrJournalExists when WithJournalDir
// points at a directory that already holds durable session state (restore
// it with RestoreSolver instead).
func NewSolver(in *Instance, opts ...Option) (*Solver, error) {
	o := resolveOptions(opts)
	s, err := newSolver(in, o)
	if err != nil {
		return nil, err
	}
	if o.journalDir != "" {
		if err := s.initDurable(o.journalDir, o); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// newSolver builds the in-memory session without touching any durable
// state; NewSolver and RestoreSolver wrap it.
func newSolver(in *Instance, o options) (*Solver, error) {
	own := in.Clone()
	if own.Workload == 0 && own.NumReviewers() > 0 {
		own.Workload = own.MinWorkload()
	}
	if err := own.Validate(); err != nil {
		return nil, wrapInstanceErr(own, err)
	}
	s := &Solver{opts: o}
	if o.progress != nil {
		fn := o.progress
		s.progress.Store(&fn)
	}
	if !o.sessionable() {
		alg, refine, err := o.algorithmParts()
		if err != nil {
			return nil, err
		}
		s.alg, s.algRefine = alg, refine
	}
	cfg := cra.SessionConfig{
		Refine:       o.method == MethodSDGASRA && o.sessionable(),
		SRA:          o.sra(),
		Shards:       o.shards,
		CandidateCap: o.candidateCap,
	}
	cfg.OnConstruct = s.constructHook()
	cfg.SRA.OnImprovement = s.improvementHook()
	sess, err := cra.NewSession(own, cfg)
	if err != nil {
		return nil, wrapErr(err)
	}
	s.sess = sess
	s.mirror = newEditMirror(own)
	s.view.Store(&View{When: time.Now()})
	return s, nil
}

// progressFn returns the registered progress callback, or nil.
func (s *Solver) progressFn() func(Snapshot) {
	if p := s.progress.Load(); p != nil {
		return *p
	}
	return nil
}

// emitSnapshot publishes sn as the latest anytime snapshot (readable via
// Progress without any lock) and forwards it to the registered callback.
// Runs on the solving goroutine, inside the solve lock: the callback must
// not call the blocking Solve/Resolve (checkReentry turns that deadlock into
// a panic), but every snapshot-safe entry point — View, Progress, the edit
// mutators, ResolveAsync, OnImprovement — works from inside it.
func (s *Solver) emitSnapshot(sn Snapshot) {
	s.live.Store(&sn)
	if fn := s.progressFn(); fn != nil {
		fn(sn)
	}
}

// constructHook emits the construction-phase snapshot.
func (s *Solver) constructHook() func(*core.Assignment) {
	return func(a *core.Assignment) {
		s.emitSnapshot(Snapshot{
			Phase:   "construct",
			Score:   s.activeScore(a),
			Best:    a,
			Elapsed: time.Since(s.start),
		})
	}
}

// improvementHook emits a refinement-phase snapshot per improving round.
func (s *Solver) improvementHook() func(int, *core.Assignment, float64, time.Duration) {
	return func(round int, best *core.Assignment, score float64, _ time.Duration) {
		s.emitSnapshot(Snapshot{
			Phase:   "refine",
			Round:   round,
			Score:   score,
			Best:    best,
			Elapsed: time.Since(s.start),
		})
	}
}

// OnImprovement registers (or replaces, or removes with nil) the streaming
// progress callback for subsequent Solve/Resolve calls. Every configuration
// emits at least the construction snapshot; refinement snapshots follow for
// the refining methods (MethodSDGASRA). A no-edit Resolve confirms the
// cached assignment without re-solving and emits nothing. The registration
// is atomic: it never blocks, even while a solve is in flight (the new
// callback takes effect from the next snapshot).
func (s *Solver) OnImprovement(fn func(Snapshot)) {
	if fn == nil {
		s.progress.Store(nil)
		return
	}
	s.progress.Store(&fn)
}

// Method returns the configured assignment method.
func (s *Solver) Method() Method { return s.opts.method }

// Instance returns a read-only view of the session's instance. The returned
// value must not be mutated; edits go through the Solver's mutators (and a
// value held across later edits may observe them — take what you need and
// drop it, or read through View for an immutable snapshot).
func (s *Solver) Instance() *Instance {
	return s.sess.Instance()
}

// Active reports whether paper p currently participates in the assignment,
// including the effect of accepted edits still pending in the batch. It
// never blocks on a solve in flight.
func (s *Solver) Active(p int) bool {
	s.pendMu.Lock()
	defer s.pendMu.Unlock()
	return p >= 0 && p < s.mirror.papers && !s.mirror.withdrawn[p]
}

// ActivePapers returns the number of non-withdrawn papers, including the
// effect of accepted edits still pending in the batch. It never blocks on a
// solve in flight.
func (s *Solver) ActivePapers() int {
	s.pendMu.Lock()
	defer s.pendMu.Unlock()
	return s.mirror.activeN
}

// AddConflict registers a late conflict of interest between reviewer r and
// paper p and marks the paper's solver state dirty. The edit is rejected
// with ErrConflictSaturated when it would leave an active paper without δp
// eligible reviewers, and with ErrInvalidEdit on out-of-range indices.
func (s *Solver) AddConflict(r, p int) error {
	return s.enqueueEdit(pendingEdit{kind: editConflict, r: r, p: p})
}

// WithdrawPaper removes paper p from the workload (e.g. a withdrawn
// submission): it keeps its index but receives no reviewers until restored.
func (s *Solver) WithdrawPaper(p int) error {
	return s.enqueueEdit(pendingEdit{kind: editWithdraw, p: p})
}

// RestorePaper re-activates a withdrawn paper. Errors: ErrConflictSaturated
// when conflicts accumulated during the withdrawal, ErrInfeasible when the
// pool cannot absorb the extra load, ErrInvalidEdit on a bad index.
func (s *Solver) RestorePaper(p int) error {
	return s.enqueueEdit(pendingEdit{kind: editRestore, p: p})
}

// AddReviewer appends a reviewer to the pool and returns its index. The
// edit is structural, so the next Resolve rebuilds the warm state (still
// reusing the session's buffers).
func (s *Solver) AddReviewer(r Reviewer) (int, error) {
	s.pendMu.Lock()
	op := pendingEdit{kind: editReviewer, rev: r}
	if err := s.acceptLocked(&op); err != nil {
		s.pendMu.Unlock()
		return -1, err
	}
	idx := s.mirror.reviewers - 1 // apply advanced the mirror
	s.pendMu.Unlock()
	if s.mu.TryLock() {
		s.drainLocked()
		s.maybeCompactLocked()
		s.mu.Unlock()
	}
	return idx, nil
}

// SetWorkload changes the per-reviewer workload δr. Errors: ErrInfeasible
// when the new capacity cannot cover the active demand, ErrInvalidEdit for
// non-positive values.
func (s *Solver) SetWorkload(workload int) error {
	return s.enqueueEdit(pendingEdit{kind: editWorkload, workload: workload})
}

// Solve computes the assignment from a cold start, recording the warm state
// later Resolve calls reuse. Cancelling ctx aborts construction with the
// context error; the refinement phase is anytime — at the deadline it stops
// and keeps the best assignment found. A successful Solve publishes a new
// View.
func (s *Solver) Solve(ctx context.Context) (*Result, error) {
	s.checkReentry()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.solveGID.Store(curGID())
	defer s.solveGID.Store(0)
	return s.run(ctx, true)
}

// Resolve re-solves after the pending edits, warm where the method supports
// it (the SDGA-based defaults); with no pending edits it cheaply confirms
// the current assignment. Calling Resolve before any Solve solves cold. A
// successful Resolve publishes a new View.
func (s *Solver) Resolve(ctx context.Context) (*Result, error) {
	s.checkReentry()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.solveGID.Store(curGID())
	defer s.solveGID.Store(0)
	return s.run(ctx, !s.solved)
}

// run executes one solve under the held solve lock: it first drains the
// pending edit batch into the session (so concurrent edits coalesce into
// this warm re-solve), then solves, then publishes the new View and — for a
// durable session past its compaction threshold — rewrites the snapshot.
func (s *Solver) run(ctx context.Context, cold bool) (*Result, error) {
	s.pendMu.Lock()
	serr := s.storeErr
	s.pendMu.Unlock()
	if serr != nil {
		return nil, serr
	}
	s.drainLocked()
	if err := s.applyErr; err != nil {
		s.applyErr = nil
		return nil, err
	}
	defer s.maybeCompactLocked()
	s.start = time.Now()
	warm := !cold
	var a *core.Assignment
	var err error
	switch {
	case s.alg != nil:
		if !cold && !s.edited && s.lastA != nil {
			// No pending edits: confirm the recorded assignment without
			// re-running the cold algorithm (and without progress snapshots),
			// matching the session methods' behavior.
			res := s.buildResult(s.lastA.Clone(), time.Since(s.start))
			s.publishLocked(res, warm)
			return res, nil
		}
		a, err = s.runBaseline(ctx)
	case cold:
		a, err = s.sess.Solve(ctx)
	default:
		a, err = s.sess.Resolve(ctx)
	}
	if err != nil {
		return nil, wrapErr(err)
	}
	s.solved = true
	if s.alg != nil {
		s.lastA = a.Clone()
		s.edited = false
	}
	res := s.buildResult(a, time.Since(s.start))
	s.publishLocked(res, warm)
	return res, nil
}

// runBaseline executes a non-session method cold: on an unedited paper set
// it runs directly on the session instance; with withdrawals it materialises
// the compacted instance and scatters the result back to original indices.
// The progress stream works here too: one construction snapshot after the
// base algorithm, plus per-improvement snapshots when the configuration
// refines (MethodSDGASRA on the legacy transport).
func (s *Solver) runBaseline(ctx context.Context) (*core.Assignment, error) {
	in := s.sess.Instance()
	P := in.NumPapers()
	if s.sess.ActivePapers() == P {
		a, err := s.alg.AssignContext(ctx, in)
		if err != nil {
			return nil, err
		}
		s.constructHook()(a.Clone())
		if s.algRefine {
			sra := s.opts.sra()
			sra.OnImprovement = s.improvementHook()
			return sra.RefineContext(ctx, in, a)
		}
		return a, nil
	}
	var papers []Paper
	idx := make([]int, 0, s.sess.ActivePapers())
	for p := 0; p < P; p++ {
		if s.sess.Active(p) {
			papers = append(papers, in.Papers[p])
			idx = append(idx, p)
		}
	}
	back := make(map[int]int, len(idx))
	for np, op := range idx {
		back[op] = np
	}
	sub := &core.Instance{
		Papers:    papers,
		Reviewers: in.Reviewers,
		GroupSize: in.GroupSize,
		Workload:  in.Workload,
		Score:     in.Score,
	}
	for _, c := range in.Conflicts() {
		if np, ok := back[c.Paper]; ok {
			sub.AddConflict(c.Reviewer, np)
		}
	}
	compact, err := s.alg.AssignContext(ctx, sub)
	if err != nil {
		return nil, err
	}
	// scatter copies the compact groups back onto the original paper
	// indices; slices are cloned so snapshots stay private copies even while
	// the compact assignment keeps being refined.
	scatter := func(a *core.Assignment) *core.Assignment {
		full := core.NewAssignment(P)
		for np, g := range a.Groups {
			full.Groups[idx[np]] = append([]int(nil), g...)
		}
		return full
	}
	s.constructHook()(scatter(compact))
	if s.algRefine {
		sra := s.opts.sra()
		hook := s.improvementHook()
		sra.OnImprovement = func(round int, best *core.Assignment, score float64, elapsed time.Duration) {
			hook(round, scatter(best), score, elapsed)
		}
		refined, err := sra.RefineContext(ctx, sub, compact)
		if err != nil {
			return nil, err
		}
		compact = refined
	}
	return scatter(compact), nil
}

// activeScore sums the group scores of the active papers.
func (s *Solver) activeScore(a *core.Assignment) float64 {
	in := s.sess.Instance()
	total := 0.0
	for p := range a.Groups {
		if s.sess.Active(p) {
			total += in.GroupScore(p, a.Groups[p])
		}
	}
	return total
}

// buildResult assembles the public Result: metrics cover the active papers
// only (withdrawn papers keep empty groups in Assignment).
func (s *Solver) buildResult(a *core.Assignment, elapsed time.Duration) *Result {
	in := s.sess.Instance()
	total, lowest, active := 0.0, 0.0, 0
	first := true
	for p := range a.Groups {
		if !s.sess.Active(p) {
			continue
		}
		sc := in.GroupScore(p, a.Groups[p])
		total += sc
		if first || sc < lowest {
			lowest, first = sc, false
		}
		active++
	}
	avg := 0.0
	if active > 0 {
		avg = total / float64(active)
	}
	return &Result{
		Assignment:      a,
		Score:           total,
		AverageCoverage: avg,
		LowestCoverage:  lowest,
		Elapsed:         elapsed,
		Method:          s.opts.method,
	}
}
