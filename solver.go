package wgrap

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cra"
)

// Snapshot is one point of a solve's anytime progress stream: the best
// assignment known so far and its score. Construction emits one snapshot
// (Phase "construct", Round 0); every improving round of the stochastic
// refinement emits another (Phase "refine", 1-based Round).
type Snapshot struct {
	// Phase is "construct" (the SDGA result) or "refine" (an SRA
	// improvement).
	Phase string
	// Round is the refinement round that produced the improvement (0 for the
	// construction snapshot).
	Round int
	// Score is the WGRAP objective of Best over the active papers.
	Score float64
	// Best is a private copy of the best assignment found so far; withdrawn
	// papers have empty groups.
	Best *Assignment
	// Elapsed is the wall-clock time since the Solve/Resolve call started.
	Elapsed time.Duration
}

// Solver is a long-lived assignment session: it owns a private copy of the
// instance plus every piece of reusable solver state (profit matrices, the
// per-stage transportation solvers, refinement scratch), accepts incremental
// instance edits, and re-solves warm.
//
// The lifecycle is: NewSolver → Solve (cold) → edits (AddConflict,
// WithdrawPaper, RestorePaper, AddReviewer, SetWorkload) → Resolve (warm) →
// more edits → Resolve …. For the default SDGA-based methods, Resolve
// re-fills only the profit-matrix rows the edits dirtied and re-solves each
// stage's transportation from its retained flow and duals, so a small edit
// re-solves several times faster than a cold Solve while returning the same
// assignment a cold solve of the edited instance would (identical whenever
// the stage optima are unique, which holds with probability one for
// continuous scores). Baseline methods re-run cold on Resolve.
//
// All methods are safe for concurrent use: a mutex serialises every call, so
// a session is effectively single-flight (concurrent Solves queue; use one
// Solver per goroutine for parallel solving — sessions are cheap and fully
// independent). Progress callbacks run synchronously on the solving
// goroutine and must not call back into the Solver.
type Solver struct {
	mu        sync.Mutex
	opts      options
	sess      *cra.Session
	alg       cra.Algorithm // cold construction of the non-session methods
	algRefine bool          // run the stochastic refinement after alg
	progress  func(Snapshot)
	solved    bool
	// edited and lastA implement the no-edit Resolve fast path for the
	// non-session methods (the session keeps its own equivalent state).
	edited bool
	lastA  *core.Assignment
	// start is the wall-clock origin of the running Solve/Resolve, read by
	// the progress hooks (only touched while mu is held).
	start time.Time
}

// NewSolver builds a solver session for the instance. The instance is
// copied: later mutations of in are invisible to the session (edit through
// the Solver's mutators instead). A zero Workload selects the minimum
// balanced workload ⌈P·δp/R⌉, exactly as NewInstance does.
//
// Errors: ErrUnknownMethod, ErrInvalidInstance, ErrInfeasible,
// ErrConflictSaturated.
func NewSolver(in *Instance, opts ...Option) (*Solver, error) {
	o := resolveOptions(opts)
	own := in.Clone()
	if own.Workload == 0 && own.NumReviewers() > 0 {
		own.Workload = own.MinWorkload()
	}
	if err := own.Validate(); err != nil {
		return nil, wrapInstanceErr(own, err)
	}
	s := &Solver{opts: o, progress: o.progress}
	if !o.sessionable() {
		alg, refine, err := o.algorithmParts()
		if err != nil {
			return nil, err
		}
		s.alg, s.algRefine = alg, refine
	}
	cfg := cra.SessionConfig{
		Refine:       o.method == MethodSDGASRA && o.sessionable(),
		SRA:          o.sra(),
		Shards:       o.shards,
		CandidateCap: o.candidateCap,
	}
	cfg.OnConstruct = s.constructHook()
	cfg.SRA.OnImprovement = s.improvementHook()
	sess, err := cra.NewSession(own, cfg)
	if err != nil {
		return nil, wrapErr(err)
	}
	s.sess = sess
	return s, nil
}

// constructHook emits the construction-phase snapshot.
func (s *Solver) constructHook() func(*core.Assignment) {
	return func(a *core.Assignment) {
		if s.progress == nil {
			return
		}
		s.progress(Snapshot{
			Phase:   "construct",
			Score:   s.activeScore(a),
			Best:    a,
			Elapsed: time.Since(s.start),
		})
	}
}

// improvementHook emits a refinement-phase snapshot per improving round.
func (s *Solver) improvementHook() func(int, *core.Assignment, float64, time.Duration) {
	return func(round int, best *core.Assignment, score float64, _ time.Duration) {
		if s.progress == nil {
			return
		}
		s.progress(Snapshot{
			Phase:   "refine",
			Round:   round,
			Score:   score,
			Best:    best,
			Elapsed: time.Since(s.start),
		})
	}
}

// OnImprovement registers (or replaces, or removes with nil) the streaming
// progress callback for subsequent Solve/Resolve calls. Every configuration
// emits at least the construction snapshot; refinement snapshots follow for
// the refining methods (MethodSDGASRA). A no-edit Resolve confirms the
// cached assignment without re-solving and emits nothing.
func (s *Solver) OnImprovement(fn func(Snapshot)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.progress = fn
}

// Method returns the configured assignment method.
func (s *Solver) Method() Method { return s.opts.method }

// Instance returns a read-only view of the session's instance. The returned
// value must not be mutated; edits go through the Solver's mutators.
func (s *Solver) Instance() *Instance {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sess.Instance()
}

// Active reports whether paper p currently participates in the assignment.
func (s *Solver) Active(p int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return p >= 0 && p < s.sess.Instance().NumPapers() && s.sess.Active(p)
}

// ActivePapers returns the number of non-withdrawn papers.
func (s *Solver) ActivePapers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sess.ActivePapers()
}

// AddConflict registers a late conflict of interest between reviewer r and
// paper p and marks the paper's solver state dirty. The edit is rejected
// with ErrConflictSaturated when it would leave an active paper without δp
// eligible reviewers, and with ErrInvalidEdit on out-of-range indices.
func (s *Solver) AddConflict(r, p int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	in := s.sess.Instance()
	if r < 0 || r >= in.NumReviewers() || p < 0 || p >= in.NumPapers() {
		return fmt.Errorf("%w: conflict (%d,%d) out of range", ErrInvalidEdit, r, p)
	}
	return s.noteEdit(s.sess.AddConflict(r, p))
}

// WithdrawPaper removes paper p from the workload (e.g. a withdrawn
// submission): it keeps its index but receives no reviewers until restored.
func (s *Solver) WithdrawPaper(p int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p < 0 || p >= s.sess.Instance().NumPapers() {
		return fmt.Errorf("%w: paper %d out of range", ErrInvalidEdit, p)
	}
	return s.noteEdit(s.sess.WithdrawPaper(p))
}

// RestorePaper re-activates a withdrawn paper. Errors: ErrConflictSaturated
// when conflicts accumulated during the withdrawal, ErrInfeasible when the
// pool cannot absorb the extra load, ErrInvalidEdit on a bad index.
func (s *Solver) RestorePaper(p int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p < 0 || p >= s.sess.Instance().NumPapers() {
		return fmt.Errorf("%w: paper %d out of range", ErrInvalidEdit, p)
	}
	return s.noteEdit(s.sess.RestorePaper(p))
}

// AddReviewer appends a reviewer to the pool and returns its index. The
// edit is structural, so the next Resolve rebuilds the warm state (still
// reusing the session's buffers).
func (s *Solver) AddReviewer(r Reviewer) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx, err := s.sess.AddReviewer(r)
	if err != nil {
		return -1, fmt.Errorf("%w: %v", ErrInvalidEdit, err)
	}
	s.edited = true
	return idx, nil
}

// SetWorkload changes the per-reviewer workload δr. Errors: ErrInfeasible
// when the new capacity cannot cover the active demand, ErrInvalidEdit for
// non-positive values.
func (s *Solver) SetWorkload(workload int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if workload <= 0 {
		return fmt.Errorf("%w: workload δr must be positive, got %d", ErrInvalidEdit, workload)
	}
	return s.noteEdit(s.sess.SetWorkload(workload))
}

// noteEdit records a successful mutation (it invalidates the non-session
// no-edit Resolve cache) and maps the error onto the public sentinels.
func (s *Solver) noteEdit(err error) error {
	if err == nil {
		s.edited = true
	}
	return wrapErr(err)
}

// Solve computes the assignment from a cold start, recording the warm state
// later Resolve calls reuse. Cancelling ctx aborts construction with the
// context error; the refinement phase is anytime — at the deadline it stops
// and keeps the best assignment found.
func (s *Solver) Solve(ctx context.Context) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.run(ctx, true)
}

// Resolve re-solves after the pending edits, warm where the method supports
// it (the SDGA-based defaults); with no pending edits it cheaply confirms
// the current assignment. Calling Resolve before any Solve solves cold.
func (s *Solver) Resolve(ctx context.Context) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.run(ctx, !s.solved)
}

func (s *Solver) run(ctx context.Context, cold bool) (*Result, error) {
	s.start = time.Now()
	var a *core.Assignment
	var err error
	switch {
	case s.alg != nil:
		if !cold && !s.edited && s.lastA != nil {
			// No pending edits: confirm the recorded assignment without
			// re-running the cold algorithm (and without progress snapshots),
			// matching the session methods' behavior.
			return s.buildResult(s.lastA.Clone(), time.Since(s.start)), nil
		}
		a, err = s.runBaseline(ctx)
	case cold:
		a, err = s.sess.Solve(ctx)
	default:
		a, err = s.sess.Resolve(ctx)
	}
	if err != nil {
		return nil, wrapErr(err)
	}
	s.solved = true
	if s.alg != nil {
		s.lastA = a.Clone()
		s.edited = false
	}
	return s.buildResult(a, time.Since(s.start)), nil
}

// runBaseline executes a non-session method cold: on an unedited paper set
// it runs directly on the session instance; with withdrawals it materialises
// the compacted instance and scatters the result back to original indices.
// The progress stream works here too: one construction snapshot after the
// base algorithm, plus per-improvement snapshots when the configuration
// refines (MethodSDGASRA on the legacy transport).
func (s *Solver) runBaseline(ctx context.Context) (*core.Assignment, error) {
	in := s.sess.Instance()
	P := in.NumPapers()
	if s.sess.ActivePapers() == P {
		a, err := s.alg.AssignContext(ctx, in)
		if err != nil {
			return nil, err
		}
		if s.progress != nil {
			s.constructHook()(a.Clone())
		}
		if s.algRefine {
			sra := s.opts.sra()
			sra.OnImprovement = s.improvementHook()
			return sra.RefineContext(ctx, in, a)
		}
		return a, nil
	}
	var papers []Paper
	idx := make([]int, 0, s.sess.ActivePapers())
	for p := 0; p < P; p++ {
		if s.sess.Active(p) {
			papers = append(papers, in.Papers[p])
			idx = append(idx, p)
		}
	}
	back := make(map[int]int, len(idx))
	for np, op := range idx {
		back[op] = np
	}
	sub := &core.Instance{
		Papers:    papers,
		Reviewers: in.Reviewers,
		GroupSize: in.GroupSize,
		Workload:  in.Workload,
		Score:     in.Score,
	}
	for _, c := range in.Conflicts() {
		if np, ok := back[c.Paper]; ok {
			sub.AddConflict(c.Reviewer, np)
		}
	}
	compact, err := s.alg.AssignContext(ctx, sub)
	if err != nil {
		return nil, err
	}
	// scatter copies the compact groups back onto the original paper
	// indices; slices are cloned so snapshots stay private copies even while
	// the compact assignment keeps being refined.
	scatter := func(a *core.Assignment) *core.Assignment {
		full := core.NewAssignment(P)
		for np, g := range a.Groups {
			full.Groups[idx[np]] = append([]int(nil), g...)
		}
		return full
	}
	if s.progress != nil {
		s.constructHook()(scatter(compact))
	}
	if s.algRefine {
		sra := s.opts.sra()
		if s.progress != nil {
			hook := s.improvementHook()
			sra.OnImprovement = func(round int, best *core.Assignment, score float64, elapsed time.Duration) {
				hook(round, scatter(best), score, elapsed)
			}
		}
		refined, err := sra.RefineContext(ctx, sub, compact)
		if err != nil {
			return nil, err
		}
		compact = refined
	}
	return scatter(compact), nil
}

// activeScore sums the group scores of the active papers.
func (s *Solver) activeScore(a *core.Assignment) float64 {
	in := s.sess.Instance()
	total := 0.0
	for p := range a.Groups {
		if s.sess.Active(p) {
			total += in.GroupScore(p, a.Groups[p])
		}
	}
	return total
}

// buildResult assembles the public Result: metrics cover the active papers
// only (withdrawn papers keep empty groups in Assignment).
func (s *Solver) buildResult(a *core.Assignment, elapsed time.Duration) *Result {
	in := s.sess.Instance()
	total, lowest, active := 0.0, 0.0, 0
	first := true
	for p := range a.Groups {
		if !s.sess.Active(p) {
			continue
		}
		sc := in.GroupScore(p, a.Groups[p])
		total += sc
		if first || sc < lowest {
			lowest, first = sc, false
		}
		active++
	}
	avg := 0.0
	if active > 0 {
		avg = total / float64(active)
	}
	return &Result{
		Assignment:      a,
		Score:           total,
		AverageCoverage: avg,
		LowestCoverage:  lowest,
		Elapsed:         elapsed,
		Method:          s.opts.method,
	}
}
