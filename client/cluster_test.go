package client_test

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/client"
	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/wire"
)

// ---- scripted fake nodes --------------------------------------------------
//
// The redirect and reconciliation paths of the cluster-aware client are
// driven here against scripted fake nodes: real HTTP servers whose answers
// are fixed by the test, so the exact interleavings (wrong owner, stale
// epoch, death mid-batch with a partially accepted batch) are deterministic
// instead of raced against real probe loops.

type scriptNode struct {
	id  string
	srv *httptest.Server
	mux *http.ServeMux

	mu  sync.Mutex
	sm  wire.ShardMap
	hit map[string]*int32
}

func newScriptNode(t *testing.T, id string) *scriptNode {
	n := &scriptNode{id: id, mux: http.NewServeMux(), hit: make(map[string]*int32)}
	n.mux.HandleFunc("GET /cluster/map", func(w http.ResponseWriter, r *http.Request) {
		n.mu.Lock()
		sm := n.sm
		n.mu.Unlock()
		writeJSON(w, http.StatusOK, sm)
	})
	n.srv = httptest.NewServer(n.mux)
	t.Cleanup(n.srv.Close)
	return n
}

func (n *scriptNode) addr() string { return n.srv.Listener.Addr().String() }

func (n *scriptNode) setMap(sm wire.ShardMap) {
	n.mu.Lock()
	n.sm = sm
	n.mu.Unlock()
}

func (n *scriptNode) counter(name string) *int32 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.hit[name] == nil {
		n.hit[name] = new(int32)
	}
	return n.hit[name]
}

func (n *scriptNode) hits(name string) int32 { return atomic.LoadInt32(n.counter(name)) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func notOwnerEnvelope(owner, ownerAddr string, epoch uint64) *wire.Error {
	return &wire.Error{
		Code:      wire.CodeNotOwner,
		Message:   "scripted: not owner",
		Owner:     owner,
		OwnerAddr: ownerAddr,
		Epoch:     epoch,
	}
}

// twoFakes builds two scripted nodes and splits them into the ring owner of
// tenant id (per the epoch-1 all-alive map) and the other node, so tests can
// script "the node the client will address first" deterministically.
func twoFakes(t *testing.T, id string) (owner, other *scriptNode) {
	a := newScriptNode(t, "a")
	b := newScriptNode(t, "b")
	sm := wire.ShardMap{
		Epoch:  1,
		VNodes: cluster.DefaultVNodes,
		Nodes: []wire.NodeInfo{
			{ID: "a", Addr: a.addr(), Alive: true},
			{ID: "b", Addr: b.addr(), Alive: true},
		},
	}
	a.setMap(sm)
	b.setMap(sm)
	if cluster.NewRing([]string{"a", "b"}, cluster.DefaultVNodes).Owner(id) == "a" {
		return a, b
	}
	return b, a
}

// TestClusterClientNotOwnerRedirect: the addressed node denies owning the
// venue and names the owner; the client must follow the hint and land the
// call there — one hop, no extra traffic to the denier.
func TestClusterClientNotOwnerRedirect(t *testing.T) {
	wrong, right := twoFakes(t, "venue")

	wrongHits := wrong.counter("status")
	wrong.mux.HandleFunc("GET /v1/tenants/venue", func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(wrongHits, 1)
		writeJSON(w, http.StatusMisdirectedRequest, notOwnerEnvelope(right.id, right.addr(), 1))
	})
	rightHits := right.counter("status")
	right.mux.HandleFunc("GET /v1/tenants/venue", func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(rightHits, 1)
		writeJSON(w, http.StatusOK, wire.Status{ID: "venue", Seq: 7})
	})

	c, err := client.Open("http://" + wrong.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Status(context.Background(), "venue")
	if err != nil {
		t.Fatal(err)
	}
	if st.Seq != 7 {
		t.Fatalf("status seq = %d, want 7 (from the hinted owner)", st.Seq)
	}
	if got := wrong.hits("status"); got != 1 {
		t.Fatalf("denier answered %d times, want 1", got)
	}
	if got := right.hits("status"); got != 1 {
		t.Fatalf("owner answered %d times, want 1", got)
	}
}

// TestClusterClientStaleEpochRefresh: the denial carries a newer epoch and
// no usable owner hint, so the client must refetch the shard map from the
// responder, recompute ownership under the new map, and retry — and keep
// using the refreshed map for later calls instead of bouncing off the
// denier again.
func TestClusterClientStaleEpochRefresh(t *testing.T) {
	wrong, right := twoFakes(t, "venue")
	// The epoch-2 map the denier steps down with: itself no longer alive.
	sm2 := wire.ShardMap{
		Epoch:  2,
		VNodes: cluster.DefaultVNodes,
		Nodes: []wire.NodeInfo{
			{ID: wrong.id, Addr: wrong.addr(), Alive: false},
			{ID: right.id, Addr: right.addr(), Alive: true},
		},
	}

	wrongHits := wrong.counter("status")
	wrong.mux.HandleFunc("GET /v1/tenants/venue", func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(wrongHits, 1)
		wrong.setMap(sm2) // step down: the refreshed map must come from here
		writeJSON(w, http.StatusMisdirectedRequest, notOwnerEnvelope(right.id, "", 2))
	})
	rightHits := right.counter("status")
	right.mux.HandleFunc("GET /v1/tenants/venue", func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(rightHits, 1)
		writeJSON(w, http.StatusOK, wire.Status{ID: "venue", Seq: 9})
	})

	c, err := client.Open("http://" + wrong.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		st, err := c.Status(ctx, "venue")
		if err != nil {
			t.Fatalf("status call %d: %v", i, err)
		}
		if st.Seq != 9 {
			t.Fatalf("status call %d seq = %d, want 9", i, st.Seq)
		}
	}
	if got := wrong.hits("status"); got != 1 {
		t.Fatalf("denier answered %d times, want 1 (second call must use the refreshed map)", got)
	}
	if got := right.hits("status"); got != 2 {
		t.Fatalf("new owner answered %d times, want 2", got)
	}
}

// TestClusterClientEditReconciliation: the owner dies mid-batch after
// journaling (and synchronously replicating) a prefix. The client must ask
// the promoted follower for its sequence, count the survived prefix into the
// accepted total, and resend exactly the unaccepted suffix — the
// accepted-prefix contract holds across the reroute with no edit applied
// twice and none dropped.
func TestClusterClientEditReconciliation(t *testing.T) {
	owner, follower := twoFakes(t, "venue")

	// Owner: sequence 10 pre-batch; dies (connection abort) on the edit POST.
	owner.mux.HandleFunc("GET /v1/tenants/venue", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, wire.Status{ID: "venue", Seq: 10})
	})
	owner.mux.HandleFunc("POST /v1/tenants/venue/edits", func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	})

	// Follower: already promoted in its own map (epoch 2), its replica holds
	// 2 of the 4 records — the prefix the dead owner accepted and replicated.
	follower.setMap(wire.ShardMap{
		Epoch:  2,
		VNodes: cluster.DefaultVNodes,
		Nodes: []wire.NodeInfo{
			{ID: owner.id, Addr: owner.addr(), Alive: false},
			{ID: follower.id, Addr: follower.addr(), Alive: true},
		},
	})
	follower.mux.HandleFunc("GET /v1/tenants/venue", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, wire.Status{ID: "venue", Seq: 12})
	})
	var followerGot []wire.Edit
	follower.mux.HandleFunc("POST /v1/tenants/venue/edits", func(w http.ResponseWriter, r *http.Request) {
		var req wire.EditRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, &wire.Error{Code: wire.CodeInvalidEdit, Message: err.Error()})
			return
		}
		follower.mu.Lock()
		followerGot = append(followerGot, req.Edits...)
		follower.mu.Unlock()
		writeJSON(w, http.StatusOK, wire.EditResponse{
			Accepted: len(req.Edits),
			Seq:      12 + uint64(len(req.Edits)),
		})
	})

	c, err := client.Open("http://" + owner.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	edits := []wire.Edit{
		{Op: wire.OpWithdraw, P: 1},
		{Op: wire.OpWithdraw, P: 2},
		{Op: wire.OpWithdraw, P: 3},
		{Op: wire.OpWithdraw, P: 4},
	}
	resp, err := c.Edit(context.Background(), "venue", edits...)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 4 {
		t.Fatalf("accepted = %d, want 4 (2 survived on the owner + 2 resent)", resp.Accepted)
	}
	if resp.Seq != 14 {
		t.Fatalf("seq = %d, want 14", resp.Seq)
	}
	follower.mu.Lock()
	got := followerGot
	follower.mu.Unlock()
	if len(got) != 2 || got[0].P != 3 || got[1].P != 4 {
		t.Fatalf("follower received %+v, want exactly the unaccepted suffix (P=3, P=4)", got)
	}
}

// ---- real in-process cluster ----------------------------------------------

type testClusterNode struct {
	id     string
	addr   string
	reg    *serve.Registry
	member *cluster.Member
	srv    *http.Server
	ln     net.Listener
	dead   bool
}

// kill drops the node abruptly: listener and connections closed, probes
// stopped. The registry is left un-closed until test cleanup — a killed
// process does not flush anything either.
func (n *testClusterNode) kill() {
	if n.dead {
		return
	}
	n.dead = true
	n.srv.Close()
	n.member.Close()
}

// startTestCluster boots size real cluster nodes in-process: durable
// registries, cluster members with fast probe/poll intervals, and the full
// serve handler on real TCP listeners.
func startTestCluster(t *testing.T, size int) []*testClusterNode {
	t.Helper()
	nodes := make([]*testClusterNode, size)
	var infos []wire.NodeInfo
	for i := range nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		id := string(rune('a' + i))
		nodes[i] = &testClusterNode{id: id, addr: ln.Addr().String(), ln: ln}
		infos = append(infos, wire.NodeInfo{ID: id, Addr: nodes[i].addr, Alive: true})
	}
	for _, n := range nodes {
		reg, err := serve.NewRegistry(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		member, err := cluster.NewMember(reg, cluster.Config{
			Self:          n.id,
			Nodes:         infos,
			ProbeInterval: 50 * time.Millisecond,
			ReplicaPoll:   50 * time.Millisecond,
			Logf:          t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		n.reg, n.member = reg, member
		n.srv = &http.Server{Handler: serve.Handler(reg, serve.WithCluster(member))}
		go n.srv.Serve(n.ln)
		member.Start()
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.kill()
			n.reg.Close()
		}
	})
	return nodes
}

func nodeByID(nodes []*testClusterNode, id string) *testClusterNode {
	for _, n := range nodes {
		if n.id == id {
			return n
		}
	}
	return nil
}

// TestClusterFailoverInProcess runs the full failover story against a real
// 3-node in-process cluster: create and edit a venue through the shard-aware
// client, wait for the journal to replicate to the ring successor, kill the
// owner without warning, and drive more edits, an orphaned async ticket, a
// re-solve and a view through the client — all must land on the promoted
// follower with the sequence intact.
func TestClusterFailoverInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node failover test")
	}
	nodes := startTestCluster(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	c, err := client.Open("http://" + nodes[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const venue = "venue-failover"
	in := testWireInstance(24, 18, 6, 5)
	if _, err := c.CreateTenant(ctx, &wire.CreateRequest{
		ID: venue, Instance: in, Config: wire.TenantConfig{Omega: 2, Seed: 3},
	}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Edit(ctx, venue,
		wire.Edit{Op: wire.OpWithdraw, P: 1},
		wire.Edit{Op: wire.OpWithdraw, P: 2},
		wire.Edit{Op: wire.OpAddConflict, R: 1, P: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 3 || resp.Seq != 3 {
		t.Fatalf("edit response %+v, want accepted=3 seq=3", resp)
	}

	ids := []string{"a", "b", "c"}
	ownerID, succID := cluster.NewRing(ids, cluster.DefaultVNodes).OwnerAndSuccessor(venue)
	ownerNode, succNode := nodeByID(nodes, ownerID), nodeByID(nodes, succID)
	if ownerNode == nil || succNode == nil {
		t.Fatalf("ring roles owner=%q succ=%q not in cluster", ownerID, succID)
	}

	// Wait until the successor's replica has replayed the full journal.
	waitFor(t, 15*time.Second, "successor replica at seq 3", func() bool {
		tn, err := succNode.reg.Get(venue)
		return err == nil && tn.Solver.Seq() == 3
	})

	token, err := c.ResolveAsync(ctx, venue)
	if err != nil {
		t.Fatal(err)
	}

	ownerNode.kill()

	// The orphaned ticket must still resolve: the client re-issues the solve
	// on the promoted follower under the caller's token.
	waitFor(t, 30*time.Second, "ticket done after owner death", func() bool {
		st, err := c.Ticket(ctx, venue, token)
		return err == nil && st.Done
	})

	// New edits route to the promoted follower; the sequence continues where
	// the replicated journal left off — nothing acknowledged was lost.
	resp, err = c.Edit(ctx, venue,
		wire.Edit{Op: wire.OpRestore, P: 1},
		wire.Edit{Op: wire.OpWithdraw, P: 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 2 || resp.Seq != 5 {
		t.Fatalf("post-failover edit response %+v, want accepted=2 seq=5", resp)
	}

	st, err := c.Status(ctx, venue)
	if err != nil {
		t.Fatal(err)
	}
	if st.Seq != 5 {
		t.Fatalf("post-failover status seq = %d, want 5", st.Seq)
	}
	res, err := c.Resolve(ctx, venue)
	if err != nil {
		t.Fatal(err)
	}
	if res.Score <= 0 {
		t.Fatalf("post-failover resolve score = %v", res.Score)
	}
	v, err := c.View(ctx, venue)
	if err != nil {
		t.Fatal(err)
	}
	if v.Result == nil || v.Result.Score != res.Score {
		t.Fatalf("view after resolve = %+v, want result with score %v", v, res.Score)
	}
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
