package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/wire"
)

// httpClient is the remote backend: a thin JSON transport over the
// wgrap-serve API. Every non-2xx response carries a wire.Error envelope that
// fromWireError maps back onto the sentinel errors, so callers cannot tell
// the backends apart by error behavior.
type httpClient struct {
	base string
	hc   *http.Client
}

func openHTTP(base string) Client {
	return &httpClient{base: base, hc: &http.Client{}}
}

// call issues one JSON request. out may be nil.
func (c *httpClient) call(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var we wire.Error
		if err := json.NewDecoder(resp.Body).Decode(&we); err != nil || we.Code == "" {
			return fmt.Errorf("client: %s %s: unexpected status %d", method, path, resp.StatusCode)
		}
		return fromWireError(&we)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *httpClient) CreateTenant(ctx context.Context, req *wire.CreateRequest) (*wire.Status, error) {
	st := &wire.Status{}
	if err := c.call(ctx, "POST", "/v1/tenants", req, st); err != nil {
		return nil, err
	}
	return st, nil
}

func (c *httpClient) Tenants(ctx context.Context) ([]string, error) {
	var list wire.TenantList
	if err := c.call(ctx, "GET", "/v1/tenants", nil, &list); err != nil {
		return nil, err
	}
	return list.Tenants, nil
}

func (c *httpClient) Status(ctx context.Context, id string) (*wire.Status, error) {
	st := &wire.Status{}
	if err := c.call(ctx, "GET", "/v1/tenants/"+id, nil, st); err != nil {
		return nil, err
	}
	return st, nil
}

func (c *httpClient) DeleteTenant(ctx context.Context, id string) error {
	return c.call(ctx, "DELETE", "/v1/tenants/"+id, nil, nil)
}

func (c *httpClient) Edit(ctx context.Context, id string, edits ...wire.Edit) (*wire.EditResponse, error) {
	resp := &wire.EditResponse{}
	if err := c.call(ctx, "POST", "/v1/tenants/"+id+"/edits", wire.EditRequest{Edits: edits}, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

func (c *httpClient) Solve(ctx context.Context, id string) (*wire.Result, error) {
	res := &wire.Result{}
	if err := c.call(ctx, "POST", "/v1/tenants/"+id+"/solve", nil, res); err != nil {
		return nil, err
	}
	return res, nil
}

func (c *httpClient) Resolve(ctx context.Context, id string) (*wire.Result, error) {
	res := &wire.Result{}
	if err := c.call(ctx, "POST", "/v1/tenants/"+id+"/resolve", nil, res); err != nil {
		return nil, err
	}
	return res, nil
}

func (c *httpClient) ResolveAsync(ctx context.Context, id string) (string, error) {
	var tk wire.Ticket
	if err := c.call(ctx, "POST", "/v1/tenants/"+id+"/resolve-async", nil, &tk); err != nil {
		return "", err
	}
	return tk.Ticket, nil
}

func (c *httpClient) Ticket(ctx context.Context, id, token string) (*wire.TicketStatus, error) {
	st := &wire.TicketStatus{}
	if err := c.call(ctx, "GET", "/v1/tenants/"+id+"/tickets/"+token, nil, st); err != nil {
		return nil, err
	}
	return st, nil
}

func (c *httpClient) View(ctx context.Context, id string) (*wire.View, error) {
	v := &wire.View{}
	if err := c.call(ctx, "GET", "/v1/tenants/"+id+"/view", nil, v); err != nil {
		return nil, err
	}
	return v, nil
}

// Progress subscribes to the tenant's SSE stream. The reader goroutine
// parses "data:" lines into wire.Progress events and closes the channel when
// the stream ends (context cancelled, stop called, or server shutdown).
func (c *httpClient) Progress(ctx context.Context, id string) (<-chan wire.Progress, func(), error) {
	ctx, cancel := context.WithCancel(ctx)
	req, err := http.NewRequestWithContext(ctx, "GET", c.base+"/v1/tenants/"+id+"/progress", nil)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		defer cancel()
		var we wire.Error
		if err := json.NewDecoder(resp.Body).Decode(&we); err == nil && we.Code != "" {
			return nil, nil, fromWireError(&we)
		}
		return nil, nil, fmt.Errorf("client: progress stream: unexpected status %d", resp.StatusCode)
	}
	ch := make(chan wire.Progress, 64)
	go func() {
		defer close(ch)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			data, ok := strings.CutPrefix(sc.Text(), "data: ")
			if !ok {
				continue
			}
			var p wire.Progress
			if json.Unmarshal([]byte(data), &p) != nil {
				continue
			}
			select {
			case ch <- p:
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch, cancel, nil
}

func (c *httpClient) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}
