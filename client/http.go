package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"repro/internal/wire"
)

// httpClient is the remote backend: a thin JSON transport over the
// wgrap-serve API. Every non-2xx response carries a wire.Error envelope that
// fromWireError maps back onto the sentinel errors, so callers cannot tell
// the backends apart by error behavior.
//
// Against a clustered deployment (the bootstrap node serves /cluster/map)
// the client turns shard-aware: it computes each venue's owner from the
// epoch-stamped shard map with the same consistent hashing the servers use,
// routes per-venue, follows not_owner redirects, refreshes the map on epoch
// mismatch, and fails over to the promoted follower when a node dies —
// including reconciling a mid-flight edit batch against the survivor's
// journal sequence. All of that is invisible at the Client interface:
// Open("http://…") callers are untouched.
type httpClient struct {
	base string
	hc   *http.Client

	// Cluster routing state; see cluster.go. All nil/empty against a
	// single-node server.
	cmu     sync.Mutex
	probed  bool
	cv      *clusterView
	dead    map[string]uint64    // node id -> epoch at which we marked it dead
	seqs    map[string]uint64    // tenant id -> last acknowledged edit seq
	tickets map[string]ticketRef // ticket token -> issuing node + remote token
}

func openHTTP(base string) Client {
	return &httpClient{
		base:    base,
		hc:      &http.Client{},
		dead:    make(map[string]uint64),
		seqs:    make(map[string]uint64),
		tickets: make(map[string]ticketRef),
	}
}

// call issues one JSON request against the bootstrap base URL.
func (c *httpClient) call(ctx context.Context, method, path string, body, out any) error {
	return c.callAt(ctx, method, c.base, path, body, out)
}

// callAt issues one JSON request against an explicit node base URL. Failures
// to reach the node (dial, reset, death mid-response) come back as
// *transportError; a not_owner envelope comes back as *notOwnerError; other
// error envelopes map onto the sentinel errors.
func (c *httpClient) callAt(ctx context.Context, method, base, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return &transportError{err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var we wire.Error
		if err := json.NewDecoder(resp.Body).Decode(&we); err != nil || we.Code == "" {
			return fmt.Errorf("client: %s %s: unexpected status %d", method, path, resp.StatusCode)
		}
		if we.Code == wire.CodeNotOwner {
			return &notOwnerError{we: &we}
		}
		return fromWireError(&we)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return &transportError{err: err} // node died mid-response
	}
	return nil
}

func (c *httpClient) CreateTenant(ctx context.Context, req *wire.CreateRequest) (*wire.Status, error) {
	st := &wire.Status{}
	if _, err := c.routedCall(ctx, req.ID, "POST", "/v1/tenants", req, st); err != nil {
		return nil, err
	}
	return st, nil
}

func (c *httpClient) Tenants(ctx context.Context) ([]string, error) {
	return c.clusterTenants(ctx)
}

func (c *httpClient) Status(ctx context.Context, id string) (*wire.Status, error) {
	st := &wire.Status{}
	if _, err := c.tenantCall(ctx, id, "GET", "", nil, st); err != nil {
		return nil, err
	}
	return st, nil
}

func (c *httpClient) DeleteTenant(ctx context.Context, id string) error {
	_, err := c.tenantCall(ctx, id, "DELETE", "", nil, nil)
	if err == nil {
		c.forgetTenant(id)
	}
	return err
}

func (c *httpClient) Edit(ctx context.Context, id string, edits ...wire.Edit) (*wire.EditResponse, error) {
	return c.clusterEdit(ctx, id, edits)
}

func (c *httpClient) Solve(ctx context.Context, id string) (*wire.Result, error) {
	res := &wire.Result{}
	if _, err := c.tenantCall(ctx, id, "POST", "/solve", nil, res); err != nil {
		return nil, err
	}
	return res, nil
}

func (c *httpClient) Resolve(ctx context.Context, id string) (*wire.Result, error) {
	res := &wire.Result{}
	if _, err := c.tenantCall(ctx, id, "POST", "/resolve", nil, res); err != nil {
		return nil, err
	}
	return res, nil
}

func (c *httpClient) ResolveAsync(ctx context.Context, id string) (string, error) {
	var tk wire.Ticket
	addr, err := c.tenantCall(ctx, id, "POST", "/resolve-async", nil, &tk)
	if err != nil {
		return "", err
	}
	c.rememberTicket(tk.Ticket, addr, tk.Ticket)
	return tk.Ticket, nil
}

func (c *httpClient) Ticket(ctx context.Context, id, token string) (*wire.TicketStatus, error) {
	return c.clusterTicket(ctx, id, token)
}

func (c *httpClient) View(ctx context.Context, id string) (*wire.View, error) {
	v := &wire.View{}
	if _, err := c.tenantCall(ctx, id, "GET", "/view", nil, v); err != nil {
		return nil, err
	}
	return v, nil
}

// Progress subscribes to the tenant's SSE stream. The reader goroutine
// parses "data:" lines into wire.Progress events and closes the channel when
// the stream ends (context cancelled, stop called, or server shutdown). In
// cluster mode the stream attaches to the venue's current owner.
func (c *httpClient) Progress(ctx context.Context, id string) (<-chan wire.Progress, func(), error) {
	base := c.base
	if cv, err := c.clusterView(ctx); err != nil {
		return nil, nil, err
	} else if cv != nil {
		_, addr := c.ownerOf(id)
		if addr == "" {
			return nil, nil, fmt.Errorf("client: no alive node owns tenant %q", id)
		}
		base = "http://" + addr
	}
	ctx, cancel := context.WithCancel(ctx)
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/tenants/"+id+"/progress", nil)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		defer cancel()
		var we wire.Error
		if err := json.NewDecoder(resp.Body).Decode(&we); err == nil && we.Code != "" {
			return nil, nil, fromWireError(&we)
		}
		return nil, nil, fmt.Errorf("client: progress stream: unexpected status %d", resp.StatusCode)
	}
	ch := make(chan wire.Progress, 64)
	go func() {
		defer close(ch)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			data, ok := strings.CutPrefix(sc.Text(), "data: ")
			if !ok {
				continue
			}
			var p wire.Progress
			if json.Unmarshal([]byte(data), &p) != nil {
				continue
			}
			select {
			case ch <- p:
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch, cancel, nil
}

func (c *httpClient) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}
