package client

import (
	"context"
	"errors"
	"fmt"

	wgrap "repro"
	"repro/internal/tenant"
	"repro/internal/wire"
)

// memClient is the embedded backend: the same tenant.Registry the daemon
// hosts, driven in-process. No HTTP, no serialization on the hot paths —
// but byte-for-byte the same wire types and the same semantics, which is
// what keeps the two backends interchangeable.
type memClient struct {
	reg *tenant.Registry
}

func openMem(dataDir string) (Client, error) {
	reg, err := tenant.NewRegistry(dataDir)
	if err != nil {
		return nil, err
	}
	return &memClient{reg: reg}, nil
}

// memErr maps registry errors onto the backend-agnostic sentinels (the HTTP
// backend arrives at the same sentinels through the wire error codes).
func memErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, tenant.ErrTenantNotFound):
		return fmt.Errorf("%w (%v)", ErrNotFound, err)
	case errors.Is(err, tenant.ErrTenantExists), errors.Is(err, wgrap.ErrJournalExists):
		return fmt.Errorf("%w (%v)", ErrTenantExists, err)
	case errors.Is(err, tenant.ErrBadTenantID):
		return fmt.Errorf("%w: %v", wgrap.ErrInvalidInstance, err)
	default:
		return err
	}
}

func (c *memClient) CreateTenant(_ context.Context, req *wire.CreateRequest) (*wire.Status, error) {
	t, err := c.reg.Create(req)
	if err != nil {
		return nil, memErr(err)
	}
	st := tenant.StatusOf(t)
	return &st, nil
}

func (c *memClient) Tenants(context.Context) ([]string, error) {
	return c.reg.List(), nil
}

func (c *memClient) Status(_ context.Context, id string) (*wire.Status, error) {
	t, err := c.reg.Get(id)
	if err != nil {
		return nil, memErr(err)
	}
	st := tenant.StatusOf(t)
	return &st, nil
}

func (c *memClient) DeleteTenant(_ context.Context, id string) error {
	return memErr(c.reg.Delete(id))
}

func (c *memClient) Edit(_ context.Context, id string, edits ...wire.Edit) (*wire.EditResponse, error) {
	t, err := c.reg.Get(id)
	if err != nil {
		return nil, memErr(err)
	}
	resp, err := tenant.ApplyEdits(t, edits)
	if err != nil {
		return nil, err
	}
	return resp, nil
}

func (c *memClient) Solve(ctx context.Context, id string) (*wire.Result, error) {
	t, err := c.reg.Get(id)
	if err != nil {
		return nil, memErr(err)
	}
	res, err := t.Solver.Solve(ctx)
	if err != nil {
		return nil, err
	}
	return tenant.ResultOf(res), nil
}

func (c *memClient) Resolve(ctx context.Context, id string) (*wire.Result, error) {
	t, err := c.reg.Get(id)
	if err != nil {
		return nil, memErr(err)
	}
	res, err := t.Solver.Resolve(ctx)
	if err != nil {
		return nil, err
	}
	return tenant.ResultOf(res), nil
}

func (c *memClient) ResolveAsync(_ context.Context, id string) (string, error) {
	t, err := c.reg.Get(id)
	if err != nil {
		return "", memErr(err)
	}
	return c.reg.NewTicket(t, t.Solver.ResolveAsync()), nil
}

func (c *memClient) Ticket(ctx context.Context, id, token string) (*wire.TicketStatus, error) {
	t, err := c.reg.Get(id)
	if err != nil {
		return nil, memErr(err)
	}
	tk, ok := t.Ticket(token)
	if !ok {
		return nil, fmt.Errorf("%w (ticket %q)", ErrNotFound, token)
	}
	st := &wire.TicketStatus{}
	select {
	case <-tk.Done():
		st.Done = true
		res, err := tk.Wait(ctx) // completed: returns immediately
		if err != nil {
			st.Error = tenant.ToWireError(err)
		} else {
			st.Version = tk.Version()
			st.Result = tenant.ResultOf(res)
		}
	default:
	}
	return st, nil
}

func (c *memClient) View(_ context.Context, id string) (*wire.View, error) {
	t, err := c.reg.Get(id)
	if err != nil {
		return nil, memErr(err)
	}
	v := tenant.ViewOf(t.Solver.View())
	return &v, nil
}

func (c *memClient) Progress(ctx context.Context, id string) (<-chan wire.Progress, func(), error) {
	t, err := c.reg.Get(id)
	if err != nil {
		return nil, nil, memErr(err)
	}
	ch, cancel := t.Subscribe()
	stop := context.AfterFunc(ctx, cancel)
	return ch, func() { stop(); cancel() }, nil
}

func (c *memClient) Close() error {
	return c.reg.Close()
}
