package client

import "repro/internal/wire"

// The protocol payloads live in internal/wire, shared verbatim with the
// server so the embedded↔remote duality is exact. These aliases re-export
// the types a caller needs to construct requests and read responses —
// without them an importer outside this module could not name the types at
// all (internal packages are unimportable), making the Client interface
// unusable externally.
type (
	// Instance is a conference instance in wire form (papers, reviewers,
	// group size, optional named scoring function and conflict pairs).
	Instance = wire.Instance
	// Paper is the wire form of one paper.
	Paper = wire.Paper
	// Reviewer is the wire form of one reviewer.
	Reviewer = wire.Reviewer
	// Edit is one incremental session edit (see the Op* constants).
	Edit = wire.Edit
	// EditResponse acknowledges an accepted edit batch.
	EditResponse = wire.EditResponse
	// CreateRequest creates a tenant: id, instance and solver config.
	CreateRequest = wire.CreateRequest
	// TenantConfig is the serializable solver configuration of a tenant.
	TenantConfig = wire.TenantConfig
	// Status describes one tenant (sizes, accepted-edit seq, durability).
	Status = wire.Status
	// Result is a completed solve.
	Result = wire.Result
	// View is a lock-free versioned snapshot of a tenant's best result.
	View = wire.View
	// Progress is one anytime progress snapshot.
	Progress = wire.Progress
	// TicketStatus reports an async resolve; exactly one of Result and
	// Error is set once Done.
	TicketStatus = wire.TicketStatus
)

// Edit operations, matching the Solver's incremental mutators.
const (
	OpAddConflict = wire.OpAddConflict
	OpWithdraw    = wire.OpWithdraw
	OpRestore     = wire.OpRestore
	OpAddReviewer = wire.OpAddReviewer
	OpSetWorkload = wire.OpSetWorkload
)
