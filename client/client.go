// Package client is the uniform front door to a wgrap solving backend: the
// same Client interface drives an in-process solver registry and a remote
// wgrap-serve daemon. Open selects the backend by URL scheme —
//
//	c, err := client.Open("mem://")                  // embedded, in-memory
//	c, err := client.Open("mem:///var/lib/wgrap")    // embedded, durable
//	c, err := client.Open("http://127.0.0.1:8080")   // remote wgrap-serve
//
// — and everything after the Open is identical: the same tenant lifecycle,
// the same wire types, the same sentinel errors (the HTTP transport maps the
// server's error codes back onto wgrap.ErrInvalidEdit and friends, so
// errors.Is works unchanged across the network). Code written against the
// embedded backend serves unmodified against a daemon, and vice versa; the
// integration suite runs one script against both and asserts identical
// results.
package client

import (
	"context"
	"errors"
	"fmt"
	"strings"

	wgrap "repro"
	"repro/internal/wire"
)

// Client drives one backend. All methods are safe for concurrent use.
// Implementations: the embedded mem:// backend (an in-process tenant
// registry) and the http:// backend (a wgrap-serve daemon).
type Client interface {
	// CreateTenant uploads an instance as a new tenant session.
	CreateTenant(ctx context.Context, req *CreateRequest) (*Status, error)
	// Tenants lists the tenant ids, sorted.
	Tenants(ctx context.Context) ([]string, error)
	// Status reports one tenant's state (sizes, edit Seq, view version).
	Status(ctx context.Context, id string) (*Status, error)
	// DeleteTenant closes a tenant session (durable state stays on disk).
	DeleteTenant(ctx context.Context, id string) error
	// Edit applies a batch of incremental edits in order. The batch is not
	// atomic: on error, the response of a partially accepted batch is lost but
	// the accepted prefix remains applied, exactly like consecutive mutator
	// calls on an embedded Solver.
	Edit(ctx context.Context, id string, edits ...Edit) (*EditResponse, error)
	// Solve runs a cold solve and blocks for the result.
	Solve(ctx context.Context, id string) (*Result, error)
	// Resolve runs a warm re-solve (drains pending edits) and blocks.
	Resolve(ctx context.Context, id string) (*Result, error)
	// ResolveAsync enqueues a coalescing background re-solve and returns a
	// ticket token for Ticket polling.
	ResolveAsync(ctx context.Context, id string) (string, error)
	// Ticket polls an async resolve; Done=false while the solve runs.
	Ticket(ctx context.Context, id, token string) (*TicketStatus, error)
	// View fetches the latest published view without blocking on any solve.
	View(ctx context.Context, id string) (*View, error)
	// Progress subscribes to the tenant's anytime progress stream (lossy for
	// slow consumers). Cancel the context or call the returned stop function
	// to unsubscribe; the channel closes on either.
	Progress(ctx context.Context, id string) (<-chan Progress, func(), error)
	// Close releases the client. For mem:// it shuts the embedded registry
	// down (flushing and closing every durable tenant); for http:// it only
	// drops idle connections — the daemon keeps running.
	Close() error
}

// Open connects to a backend by URL:
//
//	mem://            embedded in-memory registry
//	mem:///some/dir   embedded durable registry rooted at /some/dir
//	http://host:port  remote wgrap-serve daemon (https works too)
func Open(url string) (Client, error) {
	switch {
	case url == "mem:" || url == "mem://":
		return openMem("")
	case strings.HasPrefix(url, "mem://"):
		return openMem(strings.TrimPrefix(url, "mem://"))
	case strings.HasPrefix(url, "http://"), strings.HasPrefix(url, "https://"):
		return openHTTP(strings.TrimSuffix(url, "/")), nil
	default:
		return nil, fmt.Errorf("client: unsupported backend URL %q (want mem:// or http://)", url)
	}
}

// fromWireError maps a wire error envelope back onto the sentinel errors, so
// errors.Is(err, wgrap.ErrInvalidEdit) works identically on both backends.
func fromWireError(we *wire.Error) error {
	var sentinel error
	switch we.Code {
	case wire.CodeInvalidEdit:
		sentinel = wgrap.ErrInvalidEdit
	case wire.CodeConflictSaturated:
		sentinel = wgrap.ErrConflictSaturated
	case wire.CodeInfeasible:
		sentinel = wgrap.ErrInfeasible
	case wire.CodeInvalidInstance:
		sentinel = wgrap.ErrInvalidInstance
	case wire.CodeUnknownMethod:
		sentinel = wgrap.ErrUnknownMethod
	case wire.CodeTenantExists:
		sentinel = ErrTenantExists
	case wire.CodeNotFound:
		sentinel = ErrNotFound
	default:
		return errors.New(we.Message)
	}
	return fmt.Errorf("%w (%s)", sentinel, we.Message)
}

// Backend-agnostic sentinels for the tenant lifecycle; the solver sentinels
// (wgrap.ErrInvalidEdit, wgrap.ErrInfeasible, …) pass through unchanged.
var (
	// ErrNotFound reports an unknown tenant or ticket.
	ErrNotFound = errors.New("client: not found")
	// ErrTenantExists reports a create colliding with a live tenant or with
	// durable state left on disk.
	ErrTenantExists = errors.New("client: tenant already exists")
)
