package client_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	wgrap "repro"
	"repro/client"
	"repro/internal/serve"
	"repro/internal/wire"
)

func testWireInstance(p, r, t int, seed int64) *wire.Instance {
	rng := rand.New(rand.NewSource(seed))
	vec := func() []float64 {
		v := make(wgrap.Vector, t)
		for i := range v {
			v[i] = rng.Float64()
		}
		return v.Normalized()
	}
	in := &wire.Instance{GroupSize: 3}
	for i := 0; i < p; i++ {
		in.Papers = append(in.Papers, wire.Paper{ID: fmt.Sprintf("p%d", i), Topics: vec()})
	}
	for i := 0; i < r; i++ {
		in.Reviewers = append(in.Reviewers, wire.Reviewer{ID: fmt.Sprintf("r%d", i), Topics: vec()})
	}
	return in
}

// scriptOutcome is everything the duality script observes through a Client.
type scriptOutcome struct {
	coldScore   float64
	warmScore   float64
	asyncScore  float64
	seq         uint64
	version     uint64
	active      int
	reviewerIdx int
	progressed  bool
	editErr     error
	missingErr  error
}

// runScript drives the full tenant lifecycle through c. It is THE duality
// check: the same function runs against mem:// and http:// backends and the
// caller asserts identical outcomes.
func runScript(t *testing.T, c client.Client) scriptOutcome {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var out scriptOutcome

	in := testWireInstance(18, 14, 6, 42)
	st, err := c.CreateTenant(ctx, &wire.CreateRequest{
		ID: "venue", Instance: in, Config: wire.TenantConfig{Omega: 3, Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Papers != 18 || st.Reviewers != 14 {
		t.Fatalf("create status: %+v", st)
	}
	ids, err := c.Tenants(ctx)
	if err != nil || len(ids) != 1 || ids[0] != "venue" {
		t.Fatalf("tenant list %v (%v)", ids, err)
	}

	// Progress subscription before the solve: both backends must deliver at
	// least the construction snapshot.
	progress, stopProgress, err := c.Progress(ctx, "venue")
	if err != nil {
		t.Fatal(err)
	}
	defer stopProgress()

	res, err := c.Solve(ctx, "venue")
	if err != nil {
		t.Fatal(err)
	}
	out.coldScore = res.Score

	select {
	case p, ok := <-progress:
		out.progressed = ok && p.Phase == "construct" && p.Score > 0
	case <-time.After(10 * time.Second):
	}

	// Edit batch: conflict, withdrawal, a new reviewer.
	topics := make(wgrap.Vector, 6)
	for i := range topics {
		topics[i] = 1
	}
	eresp, err := c.Edit(ctx, "venue",
		wire.Edit{Op: wire.OpAddConflict, R: 2, P: 3},
		wire.Edit{Op: wire.OpWithdraw, P: 1},
		wire.Edit{Op: wire.OpAddReviewer, Reviewer: &wire.Reviewer{ID: "late", Topics: topics.Normalized()}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if eresp.Accepted != 3 || len(eresp.ReviewerIndices) != 1 {
		t.Fatalf("edit response: %+v", eresp)
	}
	out.reviewerIdx = eresp.ReviewerIndices[0]

	res, err = c.Resolve(ctx, "venue")
	if err != nil {
		t.Fatal(err)
	}
	out.warmScore = res.Score

	// Async resolve after one more edit; poll the ticket to completion.
	if _, err := c.Edit(ctx, "venue", wire.Edit{Op: wire.OpRestore, P: 1}); err != nil {
		t.Fatal(err)
	}
	token, err := c.ResolveAsync(ctx, "venue")
	if err != nil {
		t.Fatal(err)
	}
	for {
		ts, err := c.Ticket(ctx, "venue", token)
		if err != nil {
			t.Fatal(err)
		}
		if ts.Done {
			if ts.Error != nil || ts.Result == nil {
				t.Fatalf("ticket failed: %+v", ts)
			}
			out.asyncScore = ts.Result.Score
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	v, err := c.View(ctx, "venue")
	if err != nil {
		t.Fatal(err)
	}
	out.version = v.Version
	st, err = c.Status(ctx, "venue")
	if err != nil {
		t.Fatal(err)
	}
	out.seq, out.active = st.Seq, st.Active

	// Error surface: both backends reject the same edit with the same
	// sentinel, and miss the same unknown tenant.
	_, out.editErr = c.Edit(ctx, "venue", wire.Edit{Op: wire.OpAddConflict, R: -1, P: 0})
	_, out.missingErr = c.Status(ctx, "ghost")

	if err := c.DeleteTenant(ctx, "venue"); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestClientDuality is the embedded↔remote acceptance test: the identical
// client script runs against a mem:// backend and an http:// backend over a
// real loopback server, and every observable — scores (to 1e-9), sequence
// numbers, view versions, reviewer indices, error classification — matches.
func TestClientDuality(t *testing.T) {
	mem, err := client.Open("mem://")
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	memOut := runScript(t, mem)

	reg, err := serve.NewRegistry("")
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	srv := httptest.NewServer(serve.Handler(reg))
	defer srv.Close()
	remote, err := client.Open(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	httpOut := runScript(t, remote)

	if math.Abs(memOut.coldScore-httpOut.coldScore) > 1e-9 ||
		math.Abs(memOut.warmScore-httpOut.warmScore) > 1e-9 ||
		math.Abs(memOut.asyncScore-httpOut.asyncScore) > 1e-9 {
		t.Fatalf("backend scores diverge: mem %+v, http %+v", memOut, httpOut)
	}
	if memOut.seq != httpOut.seq || memOut.version != httpOut.version ||
		memOut.active != httpOut.active || memOut.reviewerIdx != httpOut.reviewerIdx {
		t.Fatalf("backend state diverges: mem %+v, http %+v", memOut, httpOut)
	}
	if !memOut.progressed || !httpOut.progressed {
		t.Fatalf("progress stream missing: mem %v, http %v", memOut.progressed, httpOut.progressed)
	}
	for _, o := range []scriptOutcome{memOut, httpOut} {
		if !errors.Is(o.editErr, wgrap.ErrInvalidEdit) {
			t.Fatalf("bad edit error: %v", o.editErr)
		}
		if !errors.Is(o.missingErr, client.ErrNotFound) {
			t.Fatalf("missing tenant error: %v", o.missingErr)
		}
	}
}

func TestOpenRejectsUnknownScheme(t *testing.T) {
	if _, err := client.Open("ftp://x"); err == nil {
		t.Fatal("ftp:// must be rejected")
	}
}

// TestMemDurable exercises the durable embedded backend: edits survive a
// close/reopen of the same mem:///dir URL.
func TestMemDurable(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	c, err := client.Open("mem://" + dir)
	if err != nil {
		t.Fatal(err)
	}
	in := testWireInstance(10, 8, 4, 7)
	if _, err := c.CreateTenant(ctx, &wire.CreateRequest{
		ID: "www", Instance: in, Config: wire.TenantConfig{Omega: 3, FsyncIntervalNS: -1},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Edit(ctx, "www", wire.Edit{Op: wire.OpWithdraw, P: 2}); err != nil {
		t.Fatal(err)
	}
	before, err := c.Solve(ctx, "www")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := client.Open("mem://" + dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st, err := c2.Status(ctx, "www")
	if err != nil {
		t.Fatal(err)
	}
	if st.Seq != 1 || !st.Durable || st.Active != 9 {
		t.Fatalf("restored status: %+v", st)
	}
	after, err := c2.Resolve(ctx, "www")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(after.Score-before.Score) > 1e-9 {
		t.Fatalf("restored score %v != pre-close %v", after.Score, before.Score)
	}
	// Creating over surviving durable state is refused with the shared
	// sentinel.
	if _, err := c2.CreateTenant(ctx, &wire.CreateRequest{ID: "www", Instance: in}); !errors.Is(err, client.ErrTenantExists) {
		t.Fatalf("create over durable state: %v", err)
	}
}
