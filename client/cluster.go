package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/wire"
)

// This file is the shard-map-aware side of the http client. The client
// probes GET /cluster/map once on first use: a single-node wgrap-serve
// answers 404 and every call passes through to the bootstrap URL unchanged
// (the embedded↔remote duality is untouched); a cluster node answers with
// the epoch-stamped shard map, and from then on the client computes each
// venue's owner itself — the same consistent hash over the same alive set —
// and talks to owners directly. Routing errors self-heal: a not_owner
// envelope redirects (refreshing the cached map when the responder's epoch
// is ahead), and a dead node is marked locally, the map refetched from a
// survivor, and the call retried against the promoted follower.

// clusterRetryBudget bounds how long a routed call chases redirects and
// failovers before giving up; failure detection on the servers runs on a
// sub-second probe interval, so this covers several transitions.
const clusterRetryBudget = 15 * time.Second

// failoverPause is the backoff between retries while the cluster has not
// yet observed a death the client ran into.
const failoverPause = 100 * time.Millisecond

// notOwnerError is the typed form of a not_owner envelope: the addressed
// node is alive but does not own the venue. It carries the owner hint and
// the responder's shard-map epoch.
type notOwnerError struct{ we *wire.Error }

func (e *notOwnerError) Error() string { return e.we.Error() }

// transportError marks a failure to reach a node (dial error, reset, death
// mid-response) as opposed to an application error a server sent back.
type transportError struct{ err error }

func (e *transportError) Error() string { return "client: transport: " + e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

// clusterView is the cached shard map.
type clusterView struct {
	epoch  uint64
	vnodes int
	nodes  []wire.NodeInfo
}

// ticketRef remembers which node issued an async-resolve ticket, and the
// token it knows the ticket by (re-issued tickets keep the caller's token
// but map to a fresh one on the new owner).
type ticketRef struct {
	addr  string
	token string
}

// clusterView lazily probes the bootstrap node. nil view = not a cluster.
func (c *httpClient) clusterView(ctx context.Context) (*clusterView, error) {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if c.probed {
		return c.cv, nil
	}
	req, err := http.NewRequestWithContext(ctx, "GET", c.base+"/cluster/map", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, &transportError{err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		c.probed = true // single-node server: stay in passthrough mode
		return nil, nil
	}
	var sm wire.ShardMap
	if err := json.NewDecoder(resp.Body).Decode(&sm); err != nil || len(sm.Nodes) == 0 {
		c.probed = true
		return nil, nil
	}
	c.probed = true
	c.cv = &clusterView{epoch: sm.Epoch, vnodes: sm.VNodes, nodes: sm.Nodes}
	return c.cv, nil
}

// adoptMap replaces the cached view when sm is at least as new.
func (c *httpClient) adoptMap(sm *wire.ShardMap) {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if c.cv == nil || sm.Epoch < c.cv.epoch {
		return
	}
	c.cv = &clusterView{epoch: sm.Epoch, vnodes: sm.VNodes, nodes: sm.Nodes}
	// A node this client marked dead in an older epoch but the newer map
	// reports alive has recovered (or the mark was a transient): clear it.
	for _, n := range sm.Nodes {
		if e, ok := c.dead[n.ID]; ok && n.Alive && sm.Epoch > e {
			delete(c.dead, n.ID)
		}
	}
}

// refreshMap refetches the shard map: from hintAddr first when given, then
// from every node not locally marked dead, then from the bootstrap URL.
func (c *httpClient) refreshMap(ctx context.Context, hintAddr string) {
	var bases []string
	if hintAddr != "" {
		bases = append(bases, "http://"+hintAddr)
	}
	c.cmu.Lock()
	if c.cv != nil {
		for _, n := range c.cv.nodes {
			if _, deadLocal := c.dead[n.ID]; !deadLocal && n.Alive {
				bases = append(bases, "http://"+n.Addr)
			}
		}
	}
	c.cmu.Unlock()
	bases = append(bases, c.base)
	for _, b := range bases {
		var sm wire.ShardMap
		if err := c.callAt(ctx, "GET", b, "/cluster/map", nil, &sm); err == nil && len(sm.Nodes) > 0 {
			c.adoptMap(&sm)
			return
		}
	}
}

// ownerOf computes the venue's owner under the cached map with the local
// dead overlay applied: the same ring the servers build, minus the nodes
// this client could not reach. Empty addr means no alive node is left.
func (c *httpClient) ownerOf(id string) (node, addr string) {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if c.cv == nil {
		return "", ""
	}
	var aliveIDs []string
	for _, n := range c.cv.nodes {
		if _, deadLocal := c.dead[n.ID]; n.Alive && !deadLocal {
			aliveIDs = append(aliveIDs, n.ID)
		}
	}
	node = cluster.NewRing(aliveIDs, c.cv.vnodes).Owner(id)
	for _, n := range c.cv.nodes {
		if n.ID == node {
			return node, n.Addr
		}
	}
	return node, ""
}

// markDeadAddr records that addr could not be reached, pinning the mark to
// the current epoch so a newer map can lift it.
func (c *httpClient) markDeadAddr(addr string) {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if c.cv == nil {
		return
	}
	for _, n := range c.cv.nodes {
		if n.Addr == addr {
			c.dead[n.ID] = c.cv.epoch
			return
		}
	}
}

// markAliveAddr clears a local dead mark — the node answered us.
func (c *httpClient) markAliveAddr(addr string) {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if c.cv == nil {
		return
	}
	for _, n := range c.cv.nodes {
		if n.Addr == addr {
			delete(c.dead, n.ID)
			return
		}
	}
}

func (c *httpClient) epochNow() uint64 {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	if c.cv == nil {
		return 0
	}
	return c.cv.epoch
}

// tenantCall routes one tenant-scoped request (path /v1/tenants/{id}+suffix)
// to the venue's owner, returning the node address that finally answered.
func (c *httpClient) tenantCall(ctx context.Context, id, method, suffix string, body, out any) (string, error) {
	return c.routedCall(ctx, id, method, "/v1/tenants/"+id+suffix, body, out)
}

// routedCall is the owner-routing retry loop shared by every cluster-aware
// request: compute the owner from the cached map, follow not_owner redirects
// (refreshing the map when the responder's epoch is ahead of ours), and on a
// transport failure mark the node dead, refresh the map from a survivor and
// retry against the new owner, until the call lands or the budget runs out.
func (c *httpClient) routedCall(ctx context.Context, routeID, method, path string, body, out any) (string, error) {
	cv, err := c.clusterView(ctx)
	if err != nil {
		return "", err
	}
	if cv == nil {
		return c.base, c.call(ctx, method, path, body, out)
	}
	deadline := time.Now().Add(clusterRetryBudget)
	_, addr := c.ownerOf(routeID)
	var lastErr error
	for {
		if addr == "" {
			if lastErr != nil {
				return "", lastErr
			}
			return "", fmt.Errorf("client: no alive node owns tenant %q", routeID)
		}
		err := c.callAt(ctx, method, "http://"+addr, path, body, out)
		var no *notOwnerError
		var te *transportError
		switch {
		case err == nil:
			c.markAliveAddr(addr)
			return addr, nil
		case errors.As(err, &no):
			c.markAliveAddr(addr)
			addr = c.redirect(ctx, routeID, addr, no)
		case errors.As(err, &te):
			c.markDeadAddr(addr)
			c.refreshMap(ctx, "")
			_, next := c.ownerOf(routeID)
			if next == addr {
				time.Sleep(failoverPause)
				_, next = c.ownerOf(routeID)
			}
			addr = next
		default:
			return addr, err
		}
		lastErr = err
		if ctx.Err() != nil {
			return addr, ctx.Err()
		}
		if time.Now().After(deadline) {
			return addr, lastErr
		}
	}
}

// redirect resolves the next address after a not_owner answer: trust the
// responder's owner hint, and when its epoch is ahead of the cached map,
// refresh from it so the local ring catches up before the retry.
func (c *httpClient) redirect(ctx context.Context, routeID, from string, no *notOwnerError) string {
	if no.we.Epoch > c.epochNow() {
		c.refreshMap(ctx, from)
	}
	if no.we.OwnerAddr != "" && no.we.OwnerAddr != from {
		return no.we.OwnerAddr
	}
	_, addr := c.ownerOf(routeID)
	if addr == from {
		// The responder denies owning a venue our (and maybe its) map says it
		// owns — an epoch transition in flight. Brief pause, refreshed map.
		time.Sleep(failoverPause)
		c.refreshMap(ctx, "")
		_, addr = c.ownerOf(routeID)
	}
	return addr
}

// clusterTenants lists tenants across the cluster: fan out to every alive
// node, union, sort. Single-node mode lists the bootstrap server.
func (c *httpClient) clusterTenants(ctx context.Context) ([]string, error) {
	cv, err := c.clusterView(ctx)
	if err != nil {
		return nil, err
	}
	if cv == nil {
		var list wire.TenantList
		if err := c.call(ctx, "GET", "/v1/tenants", nil, &list); err != nil {
			return nil, err
		}
		return list.Tenants, nil
	}
	c.cmu.Lock()
	var addrs []string
	for _, n := range cv.nodes {
		if _, deadLocal := c.dead[n.ID]; n.Alive && !deadLocal {
			addrs = append(addrs, n.Addr)
		}
	}
	c.cmu.Unlock()
	seen := make(map[string]bool)
	var lastErr error
	ok := false
	for _, addr := range addrs {
		var list wire.TenantList
		if err := c.callAt(ctx, "GET", "http://"+addr, "/v1/tenants", nil, &list); err != nil {
			lastErr = err
			continue
		}
		ok = true
		for _, id := range list.Tenants {
			seen[id] = true
		}
	}
	if !ok {
		return nil, lastErr
	}
	ids := make([]string, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

// editErrEnvelope is the error body of a partially applied edit batch: the
// wire error plus the accepted count and post-batch sequence.
type editErrEnvelope struct {
	wire.Error
	Accepted int    `json:"accepted"`
	Seq      uint64 `json:"seq"`
}

// editAt posts one edit batch to addr. Returns the response and an
// application error (batch rejected at some prefix) — or a routing error
// (*notOwnerError / *transportError) with a nil response.
func (c *httpClient) editAt(ctx context.Context, addr, id string, edits []wire.Edit) (*wire.EditResponse, error, error) {
	raw, err := json.Marshal(wire.EditRequest{Edits: edits})
	if err != nil {
		return nil, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, "POST",
		"http://"+addr+"/v1/tenants/"+id+"/edits", bytes.NewReader(raw))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, nil, &transportError{err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 == 2 {
		out := &wire.EditResponse{}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return nil, nil, &transportError{err: err}
		}
		return out, nil, nil
	}
	var env editErrEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Code == "" {
		return nil, nil, &transportError{err: fmt.Errorf("edit: unexpected status %d", resp.StatusCode)}
	}
	if env.Code == wire.CodeNotOwner {
		return nil, nil, &notOwnerError{we: &env.Error}
	}
	return &wire.EditResponse{Accepted: env.Accepted, Seq: env.Seq}, fromWireError(&env.Error), nil
}

// clusterEdit is Edit with failover reconciliation. The risk a cluster adds
// over a single server is an owner dying between accepting part of a batch
// and acknowledging it; the journal sequence closes that window. The client
// pins the tenant's sequence before sending; after a transport failure it
// asks the promoted follower (whose replica holds every acknowledged —
// synchronously replicated — record) for its sequence, and the difference is
// exactly how many edits of the batch survived. It resends the unaccepted
// suffix to the new owner, so the accepted-prefix contract holds across the
// reroute. Reviewer pool indices of add-reviewer edits are only reported for
// edits acknowledged directly (not reconstructed for the survived prefix).
func (c *httpClient) clusterEdit(ctx context.Context, id string, edits []wire.Edit) (*wire.EditResponse, error) {
	cv, err := c.clusterView(ctx)
	if err != nil {
		return nil, err
	}
	if cv == nil {
		resp := &wire.EditResponse{}
		if err := c.call(ctx, "POST", "/v1/tenants/"+id+"/edits", wire.EditRequest{Edits: edits}, resp); err != nil {
			return nil, err
		}
		return resp, nil
	}
	pre, known := c.knownSeq(id)
	if !known {
		st, err := c.Status(ctx, id)
		if err != nil {
			return nil, err
		}
		pre = st.Seq
	}
	total := &wire.EditResponse{}
	remaining := edits
	deadline := time.Now().Add(clusterRetryBudget)
	_, addr := c.ownerOf(id)
	var lastErr error
	for {
		if addr == "" {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, fmt.Errorf("client: no alive node owns tenant %q", id)
		}
		resp, appErr, routeErr := c.editAt(ctx, addr, id, remaining)
		var no *notOwnerError
		var te *transportError
		switch {
		case routeErr == nil:
			c.markAliveAddr(addr)
			total.Accepted += resp.Accepted
			total.ReviewerIndices = append(total.ReviewerIndices, resp.ReviewerIndices...)
			total.Seq = resp.Seq
			c.setSeq(id, resp.Seq)
			if appErr != nil {
				return total, appErr
			}
			return total, nil
		case errors.As(routeErr, &no):
			c.markAliveAddr(addr)
			addr = c.redirect(ctx, id, addr, no)
		case errors.As(routeErr, &te):
			// The owner died with the batch in flight. Find the survivor and
			// reconcile: its sequence minus the pre-batch sequence is the
			// accepted prefix; resend the rest.
			c.markDeadAddr(addr)
			c.refreshMap(ctx, "")
			st, err := c.Status(ctx, id) // routed: retries to the new owner
			if err != nil {
				return nil, fmt.Errorf("client: reconciling interrupted edit batch: %w", err)
			}
			survived := 0
			if st.Seq > pre {
				survived = int(st.Seq - pre)
			}
			if survived > len(remaining) {
				survived = len(remaining)
			}
			total.Accepted += survived
			remaining = remaining[survived:]
			pre = st.Seq
			total.Seq = st.Seq
			c.setSeq(id, st.Seq)
			if len(remaining) == 0 {
				return total, nil
			}
			_, addr = c.ownerOf(id)
		default:
			return nil, routeErr
		}
		lastErr = routeErr
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if time.Now().After(deadline) {
			return nil, lastErr
		}
	}
}

// clusterTicket polls an async-resolve ticket. Tickets live on the node that
// issued them (any node holding the tenant answers its own tickets); when
// that node dies the token dies with it, so the client transparently
// re-issues the resolve on the current owner and keeps polling under the
// caller's original token.
func (c *httpClient) clusterTicket(ctx context.Context, id, token string) (*wire.TicketStatus, error) {
	cv, err := c.clusterView(ctx)
	if err != nil {
		return nil, err
	}
	if cv == nil {
		st := &wire.TicketStatus{}
		if err := c.call(ctx, "GET", "/v1/tenants/"+id+"/tickets/"+token, nil, st); err != nil {
			return nil, err
		}
		return st, nil
	}
	ref, ok := c.ticketFor(token)
	if !ok {
		// Not issued through this client: route to the owner.
		st := &wire.TicketStatus{}
		if _, err := c.tenantCall(ctx, id, "GET", "/tickets/"+token, nil, st); err != nil {
			return nil, err
		}
		return st, nil
	}
	st := &wire.TicketStatus{}
	err = c.callAt(ctx, "GET", "http://"+ref.addr, "/v1/tenants/"+id+"/tickets/"+ref.token, nil, st)
	if err == nil {
		return st, nil
	}
	var te *transportError
	var no *notOwnerError
	if !errors.As(err, &te) && !errors.As(err, &no) {
		return nil, err
	}
	// The issuing node is gone (or lost the tenant). Re-issue the coalescing
	// resolve on the current owner and remap the caller's token onto the
	// fresh one; the solve the old ticket tracked either finished (its result
	// is in the replicated view) or died with the node, and the re-issued
	// solve covers both.
	if errors.As(err, &te) {
		c.markDeadAddr(ref.addr)
		c.refreshMap(ctx, "")
	}
	var tk wire.Ticket
	addr, err := c.tenantCall(ctx, id, "POST", "/resolve-async", nil, &tk)
	if err != nil {
		return nil, fmt.Errorf("client: re-issuing ticket %q after node loss: %w", token, err)
	}
	c.rememberTicket(token, addr, tk.Ticket)
	st = &wire.TicketStatus{}
	if err := c.callAt(ctx, "GET", "http://"+addr, "/v1/tenants/"+id+"/tickets/"+tk.Ticket, nil, st); err != nil {
		return nil, err
	}
	return st, nil
}

func (c *httpClient) knownSeq(id string) (uint64, bool) {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	s, ok := c.seqs[id]
	return s, ok
}

func (c *httpClient) setSeq(id string, seq uint64) {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	c.seqs[id] = seq
}

func (c *httpClient) forgetTenant(id string) {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	delete(c.seqs, id)
}

func (c *httpClient) rememberTicket(token, addr, remote string) {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	c.tickets[token] = ticketRef{addr: addr, token: remote}
}

func (c *httpClient) ticketFor(token string) (ticketRef, bool) {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	ref, ok := c.tickets[token]
	return ref, ok
}
