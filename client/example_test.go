package client_test

import (
	"context"
	"fmt"
	"log"

	"repro/client"
)

// ExampleClient runs a venue's assignment lifecycle against the embedded
// backend. Swapping "mem://" for "http://host:port" of a wgrap-serve daemon
// is the only change needed to run the identical code remotely.
func ExampleClient() {
	c, err := client.Open("mem://")
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	// Three papers, three reviewers, one reviewer per paper.
	in := &client.Instance{
		GroupSize: 1,
		Papers: []client.Paper{
			{ID: "p0", Topics: []float64{1, 0}},
			{ID: "p1", Topics: []float64{0, 1}},
			{ID: "p2", Topics: []float64{0.6, 0.8}},
		},
		Reviewers: []client.Reviewer{
			{ID: "r0", Topics: []float64{1, 0}},
			{ID: "r1", Topics: []float64{0, 1}},
			{ID: "r2", Topics: []float64{0.6, 0.8}},
		},
	}
	if _, err := c.CreateTenant(ctx, &client.CreateRequest{ID: "demo", Instance: in}); err != nil {
		log.Fatal(err)
	}
	res, err := c.Solve(ctx, "demo")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold solve: %d groups, score %.2f\n", len(res.Groups), res.Score)

	// A paper is withdrawn; the warm re-solve reflects it immediately.
	if _, err := c.Edit(ctx, "demo", client.Edit{Op: client.OpWithdraw, P: 2}); err != nil {
		log.Fatal(err)
	}
	res, err = c.Resolve(ctx, "demo")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after withdrawal: %d reviewers on paper 2\n", len(res.Groups[2]))

	st, err := c.Status(ctx, "demo")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accepted edits: %d\n", st.Seq)
	// Output:
	// cold solve: 3 groups, score 3.00
	// after withdrawal: 0 reviewers on paper 2
	// accepted edits: 1
}
