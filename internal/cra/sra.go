package cra

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"slices"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/flow"
)

// ProbabilityModel selects how the stochastic refinement estimates the
// probability P(r|p) that pair (r, p) belongs to the optimal assignment.
type ProbabilityModel int

// Probability models (Section 4.4).
const (
	// ProbCoverageDecay is Equation 10: coverage-based with an exponential
	// decay towards the uniform floor 1/R as refinement iterations pass.
	// Default.
	ProbCoverageDecay ProbabilityModel = iota
	// ProbCoverage is Equation 9: coverage-based, no decay.
	ProbCoverage
	// ProbUniform treats all reviewers as equally likely (the strawman
	// discussed before Equation 9).
	ProbUniform
)

// SRA is the Stochastic Refinement Algorithm of Section 4.4 (Algorithm 3).
// Starting from an existing assignment (typically produced by SDGA) it
// repeatedly removes one reviewer from every paper — reviewers with a low
// estimated probability of belonging to the optimal assignment are removed
// preferentially — and re-completes the assignment with one Stage-WGRAP
// linear assignment. The best assignment seen is retained, so refinement
// never lowers the coverage score. The process stops when the score has not
// improved for Omega consecutive rounds, when MaxRounds is reached, or when
// the context passed to RefineContext is done (TimeBudget is folded into the
// context deadline), always returning the best assignment found.
//
// The O(P·R) pair-score precomputation of the probability model runs through
// the parallel gain oracle, the per-round completion reuses one flat profit
// matrix and one transportation solver, and per-paper scores are re-evaluated
// only for papers whose group actually changed in the round (delta
// re-scoring: a round that removes and re-adds the same reviewer leaves the
// cached score untouched).
type SRA struct {
	// Omega is the convergence threshold ω (default 10, the paper's setting).
	Omega int
	// Lambda is the decay rate λ of Equation 10 (default 0.1).
	Lambda float64
	// MaxRounds caps the number of refinement rounds (default 1000).
	MaxRounds int
	// TimeBudget optionally bounds the wall-clock refinement time (0 =
	// none). It is equivalent to calling RefineContext with a deadline of
	// now+TimeBudget; when both are set the earlier deadline wins.
	TimeBudget time.Duration
	// Model selects the probability model (default Equation 10).
	Model ProbabilityModel
	// Seed makes the stochastic process reproducible (default 1).
	Seed int64
	// Shards bounds the goroutines the per-round completion transport uses
	// to load its instance (0 = GOMAXPROCS, 1 = serial; see SDGA.Shards).
	// The refinement trajectory is identical for every value.
	Shards int
	// CandidateCap, when positive, restricts the pair-score precomputation
	// and every per-round completion to the top-k candidate reviewers per
	// paper (see SDGA.CandidateCap): the O(P·R) precomputation and each
	// completion solve become O(P·k). Pairs outside a paper's candidates fall
	// back to an exact on-demand score in the probability model, and the
	// completion transport densifies papers whose candidates saturate, so
	// refinement quality degrades only by the candidate truncation itself.
	// 0 keeps the exact dense path.
	CandidateCap int
	// OnRound, when set, is called after every refinement round with the
	// 1-based round number, the best score so far and the elapsed time; the
	// refinement-progress experiment (Figure 12) uses it to record a trace.
	OnRound func(round int, bestScore float64, elapsed time.Duration)
	// OnImprovement, when set, is called whenever a round improves the best
	// score, with a private copy of the new best assignment; solver sessions
	// use it to stream anytime progress.
	OnImprovement func(round int, best *core.Assignment, score float64, elapsed time.Duration)
}

// Name implements Refiner.
func (SRA) Name() string { return "SRA" }

func (s SRA) withDefaults() SRA {
	if s.Omega <= 0 {
		s.Omega = 10
	}
	if s.Lambda <= 0 {
		s.Lambda = 0.1
	}
	if s.MaxRounds <= 0 {
		s.MaxRounds = 1000
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Refine implements Refiner.
func (s SRA) Refine(instance *core.Instance, start *core.Assignment) (*core.Assignment, error) {
	return s.RefineContext(context.Background(), instance, start)
}

// RefineContext implements Refiner. Refinement is an anytime process: when
// ctx is cancelled or its deadline (or TimeBudget) expires, the best
// assignment found so far is returned with a nil error.
func (s SRA) RefineContext(ctx context.Context, instance *core.Instance, start *core.Assignment) (*core.Assignment, error) {
	s = s.withDefaults()
	in, err := prepare(instance)
	if err != nil {
		return nil, err
	}
	if err := in.ValidateAssignment(start); err != nil {
		return nil, err
	}
	if s.TimeBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.TimeBudget)
		defer cancel()
	}
	eng := engine.New(in)

	// Pre-compute the pair coverage scores and the per-reviewer totals of the
	// probability model (the denominator of Equation 9). O(P·R) work, filled
	// in parallel by the oracle, as stated in the paper — O(P·k) under a
	// candidate cap.
	var cands [][]int32
	if k := effectiveCandidateCap(in, s.CandidateCap); k > 0 {
		cands = buildCandidates(in, k, shardWorkers(s.Shards))
	}
	var pairs engine.Matrix
	var err2 error
	if cands != nil {
		err2 = eng.FillProfitSparse(ctx, &pairs, engine.ProfitSpec{}, cands)
	} else {
		err2 = eng.FillPairScores(ctx, &pairs)
	}
	if err2 != nil {
		// Context already exhausted before the first round: anytime
		// semantics, the input is the best known assignment.
		return start.Clone(), nil
	}
	tr := &flow.Transport{Workers: shardWorkers(s.Shards)}
	run := sraRun{
		cfg:           s,
		eng:           eng,
		pairScore:     pairs.Rows(),
		reviewerTotal: pairReviewerTotals(pairs.Rows(), nil, in.NumReviewers(), cands),
		cands:         cands,
		fill:          &engine.Matrix{},
		tr:            tr,
		rng:           rand.New(rand.NewSource(s.Seed)),
	}
	return run.refine(ctx, start)
}

// pairReviewerTotals sums each reviewer's pair scores over the active papers
// (the denominator of Equation 9). A nil active mask means every paper; a
// non-nil cands means pairScore rows are candidate-aligned (row p holds one
// cell per entry of cands[p]), so totals run over candidate pairs only — the
// truncated pairs carry exactly the score mass the pruning already deemed
// negligible. Non-finite scores (a custom ScoreFunc gone wrong) are skipped
// so one bad cell cannot poison a reviewer's whole denominator with NaN —
// the probability model then degrades to the uniform floor for that reviewer
// instead of producing a zero-mass removal distribution.
func pairReviewerTotals(pairScore [][]float64, active []bool, R int, cands [][]int32) []float64 {
	totals := make([]float64, R)
	for p := range pairScore {
		if active != nil && !active[p] {
			continue
		}
		for x, c := range pairScore[p] {
			if math.IsInf(c, 0) || math.IsNaN(c) {
				continue
			}
			r := x
			if cands != nil {
				r = int(cands[p][x])
			}
			totals[r] += c
		}
	}
	return totals
}

// sraRun is one configured execution of the refinement loop, shared by
// SRA.RefineContext (which builds its state fresh) and Session.Resolve
// (which reuses the session's pair-score matrix, completion matrix and
// transportation solver, and masks withdrawn papers).
type sraRun struct {
	cfg           SRA // defaults already applied
	eng           *engine.Oracle
	pairScore     [][]float64
	reviewerTotal []float64
	// active masks the papers that participate (nil = all); withdrawn papers
	// keep empty groups and are never touched by removal or completion.
	active []bool
	// cands, when non-nil, holds the per-paper candidate lists of the sparse
	// mode; pairScore rows are then candidate-aligned.
	cands [][]int32
	fill  *engine.Matrix
	tr    *flow.Transport
	rng   *rand.Rand
}

// pairScoreAt returns the pair score c(r, p) regardless of layout: a direct
// cell in dense mode, a binary search over the candidate list in sparse mode
// with an exact on-demand oracle evaluation for the (rare) assigned pair
// outside it — a densified completion can assign any reviewer, and the
// removal model must price such pairs correctly rather than as zero.
func (run *sraRun) pairScoreAt(p, r int) float64 {
	// Kept small enough to inline: the dense lookup is on the removal
	// sampler's hot path, where an outlined call costs ~5% of the round.
	if run.cands == nil {
		return run.pairScore[p][r]
	}
	return run.pairScoreSparse(p, r)
}

func (run *sraRun) pairScoreSparse(p, r int) float64 {
	c := run.cands[p]
	lo, hi := 0, len(c)
	for lo < hi {
		mid := (lo + hi) / 2
		if c[mid] < int32(r) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(c) && c[lo] == int32(r) {
		return run.pairScore[p][lo]
	}
	return run.eng.PairScore(r, p)
}

func (run *sraRun) prob(r, p int, iteration int) float64 {
	R := len(run.reviewerTotal)
	switch run.cfg.Model {
	case ProbUniform:
		return 1 / float64(R)
	case ProbCoverage:
		if run.reviewerTotal[r] == 0 {
			return 1 / float64(R)
		}
		return run.pairScoreAt(p, r) / run.reviewerTotal[r]
	default: // ProbCoverageDecay, Equation 10
		base := 0.0
		if run.reviewerTotal[r] > 0 {
			base = run.pairScoreAt(p, r) / run.reviewerTotal[r]
		}
		v := math.Exp(-run.cfg.Lambda*float64(iteration)) * base
		if floor := 1 / float64(R); v < floor {
			v = floor
		}
		return v
	}
}

// refine runs the refinement loop from start and returns the best assignment
// found (anytime: never worse than start, nil error on context expiry).
func (run *sraRun) refine(ctx context.Context, start *core.Assignment) (*core.Assignment, error) {
	in := run.eng.Instance()
	s := run.cfg
	P := in.NumPapers()

	best := start.Clone()
	current := start.Clone()
	// trial is the round's scratch assignment: re-derived from current by
	// CloneInto every round (no per-round allocation) and swapped into
	// current's place when the round completes.
	trial := start.Clone()
	// Per-paper scores of the current assignment, kept incrementally; the
	// trial scores double-buffer them the same way the assignments do.
	currentScores := run.eng.PaperScores(current)
	trialScores := append([]float64(nil), currentScores...)
	bestScore := sum(currentScores)
	stale := 0
	startTime := time.Now()

	// Remaining reviewer capacity of current, maintained incrementally across
	// rounds: removals free a slot, completions take one back, and a failed
	// completion reverts its removals — so the O(P·δp + R) rebuild happens
	// once, not per round.
	rem := remainingCapacity(in, current)
	victims := make([]int, P)
	comp := newCompletion(P)
	weights := make([]float64, in.GroupSize)

	for iter := 1; iter <= s.MaxRounds && stale < s.Omega; iter++ {
		if ctx.Err() != nil {
			break
		}
		// Removal phase: drop one reviewer from every paper, preferring pairs
		// with a low probability of being "correct".
		current.CloneInto(trial)
		for p := 0; p < P; p++ {
			victims[p] = -1
			if run.active != nil && !run.active[p] {
				continue
			}
			g := trial.Groups[p]
			if len(g) == 0 {
				continue
			}
			w := weights[:0]
			for _, r := range g {
				wi := 1 - run.prob(r, p, iter)
				if wi < 0 {
					wi = 0
				}
				w = append(w, wi)
			}
			victim := g[categorical(run.rng, w)]
			trial.Remove(p, victim)
			rem[victim]++
			victims[p] = victim
		}
		// Completion phase: one Stage-WGRAP linear assignment adds a reviewer
		// back to every paper (Figure 8(c)). The completion re-fills profit
		// rows and re-solves the transport only for papers whose post-removal
		// group actually changed since the previous round (see complete).
		added, err := run.complete(ctx, comp, trial, rem)
		if err != nil {
			// Whatever failed, the completion applied nothing: revert the
			// removal phase's capacity releases so rem describes current again.
			for p := 0; p < P; p++ {
				if victims[p] >= 0 {
					rem[victims[p]]--
				}
			}
			if ctx.Err() != nil {
				break
			}
			// The stochastic removal produced an infeasible completion
			// (possible with many conflicts); skip this round.
			stale++
			continue
		}
		// Delta re-scoring: only papers whose group changed need a fresh
		// group-score evaluation; a paper that got its removed reviewer back
		// keeps its cached score.
		copy(trialScores, currentScores)
		for p := 0; p < P; p++ {
			if len(added[p]) == 1 && added[p][0] == victims[p] {
				continue
			}
			if len(added[p]) == 0 && victims[p] == -1 {
				continue
			}
			trialScores[p] = run.eng.GroupScore(p, trial.Groups[p])
		}
		score := sum(trialScores)
		if score > bestScore+1e-12 {
			bestScore = score
			best = trial.Clone()
			stale = 0
			if s.OnImprovement != nil {
				s.OnImprovement(iter, best.Clone(), bestScore, time.Since(startTime))
			}
		} else {
			stale++
		}
		// Continue refining from the trial even if it did not improve: the
		// stochastic walk may escape local maxima; the best is kept separately.
		// Swapping (not assigning) keeps the other buffer alive as the next
		// round's scratch; rem already describes the new current.
		current, trial = trial, current
		currentScores, trialScores = trialScores, currentScores
		if s.OnRound != nil {
			s.OnRound(iter, bestScore, time.Since(startTime))
		}
	}
	return best, nil
}

// completion is the retained state of the per-round Stage-WGRAP completion:
// the profit matrix contents are described row-by-row by the post-removal
// group (sorted) and open-slot count that were last written into them, so a
// round only re-fills the rows — and only releases the transport flow — of
// papers whose removal actually changed something. In the common case where
// a round removes and re-adds the same reviewer for most papers, the bulk of
// the O(P·R·T) matrix rebuild and of the transport re-solve disappears.
type completion struct {
	started bool
	// prev[p] is the sorted post-removal group currently encoded in profit
	// row p; need[p] the open-slot count; groupVecs[p] the matching group
	// expertise vector.
	prev      [][]int32
	need      []int
	groupVecs []core.Vector
	scratch   []int32
	dirty     []int
}

func newCompletion(papers int) *completion {
	return &completion{
		prev:      make([][]int32, papers),
		need:      make([]int, papers),
		groupVecs: make([]core.Vector, papers),
	}
}

// complete adds one reviewer back to every open slot of trial with a single
// maximum-profit transportation solve (Figure 8(c)), warm: profit rows are
// re-filled via engine.FillProfitRows and the transport re-solved via
// flow.Transport.ResolveRows for the dirty papers only. Reviewer capacity
// lives exclusively in the transport's column capacities (rem), never in the
// profit cells, which is what keeps clean rows byte-identical across rounds.
// On success the added reviewers are applied to trial and rem; on
// flow.ErrInfeasible the matrix and transport keep this round's instance (the
// next round diffs against it); on any other error the state is marked cold
// so the next round rebuilds from scratch.
func (run *sraRun) complete(ctx context.Context, c *completion, trial *core.Assignment, rem []int) ([][]int, error) {
	in := run.eng.Instance()
	P := in.NumPapers()
	c.dirty = c.dirty[:0]
	for p := 0; p < P; p++ {
		need := 0
		if run.active == nil || run.active[p] {
			need = in.GroupSize - len(trial.Groups[p])
			if need < 0 {
				need = 0
			}
		}
		g := trial.Groups[p]
		key := c.scratch[:0]
		for _, r := range g {
			key = append(key, int32(r))
		}
		c.scratch = key
		slices.Sort(key)
		if c.started && need == c.need[p] && slices.Equal(key, c.prev[p]) {
			continue
		}
		c.need[p] = need
		c.prev[p] = append(c.prev[p][:0], key...)
		c.dirty = append(c.dirty, p)
		if c.groupVecs[p] == nil {
			c.groupVecs[p] = make(core.Vector, in.NumTopics())
		}
		gv := c.groupVecs[p]
		clear(gv)
		for _, r := range g {
			gv.MaxInPlace(in.Reviewers[r].Topics)
		}
	}
	spec := engine.ProfitSpec{
		GroupVecs: c.groupVecs,
		Forbidden: func(p, r int) bool {
			return c.need[p] == 0 || trial.Contains(p, r) || in.IsConflict(r, p)
		},
		ForbiddenValue: flow.Forbidden,
	}
	if run.cands != nil {
		// The escape hatch (and the warm re-read of already-densified rows)
		// needs this round's spec; the closure over trial and c.need is only
		// valid within the round, so re-point the callback every call.
		run.tr.DenseRow = func(i int, buf []float64) []float64 {
			run.eng.FillRowInto(buf, i, spec)
			return buf
		}
	}
	var rows [][]int
	var err error
	if !c.started {
		if run.cands != nil {
			err = run.eng.FillProfitSparse(ctx, run.fill, spec, run.cands)
		} else {
			err = run.eng.FillProfit(ctx, run.fill, spec)
		}
		if err != nil {
			return nil, err
		}
		if run.cands != nil {
			rows, _, err = run.tr.SolveSparse(run.fill.Rows(), run.cands, in.NumReviewers(), c.need, rem)
		} else {
			rows, _, err = run.tr.SolveDense(run.fill.Rows(), c.need, rem)
		}
		if err == nil || errors.Is(err, flow.ErrInfeasible) {
			// The edit-stable CSR (and on infeasibility the partial flow) is
			// loaded; later rounds can re-solve incrementally either way.
			c.started = true
		}
	} else {
		if err = run.eng.FillProfitRows(ctx, run.fill, spec, c.dirty); err != nil {
			// The dirty rows may be partially re-filled; force a cold rebuild.
			c.started = false
			return nil, err
		}
		rows, _, err = run.tr.ResolveRows(run.fill.Rows(), c.dirty, c.need, rem)
		if err != nil && !errors.Is(err, flow.ErrInfeasible) {
			c.started = false
		}
	}
	if err != nil {
		return nil, err
	}
	for p, cols := range rows {
		for _, r := range cols {
			trial.Assign(p, r)
			rem[r]--
		}
	}
	return rows, nil
}

// sum adds up a score slice.
func sum(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}

// zeroMassEps is the weight mass under which the removal distribution counts
// as degenerate: weights are complements of probabilities in [0, 1], so a
// legitimate total sits at O(1) and anything at rounding-noise scale means
// every group member was estimated as near-certainly "correct".
const zeroMassEps = 1e-12

// categorical draws an index proportionally to the weights. Non-finite
// weights are treated as zero, and when the whole distribution is degenerate
// (total mass below zeroMassEps — e.g. every pair's membership probability
// saturated at 1) it falls back deterministically to the largest weight,
// ties broken by the lowest index, instead of sampling from a zero-mass
// distribution; the random stream is not consumed in that case, so the
// fallback is reproducible regardless of how the weights underflowed.
func categorical(rng *rand.Rand, weights []float64) int {
	total := 0.0
	argmax := 0
	for i, w := range weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			continue
		}
		total += w
		if w > weights[argmax] || math.IsNaN(weights[argmax]) || math.IsInf(weights[argmax], 0) || weights[argmax] < 0 {
			argmax = i
		}
	}
	if total <= zeroMassEps || math.IsNaN(total) {
		return argmax
	}
	u := rng.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			continue
		}
		acc += w
		if u < acc {
			return i
		}
	}
	// Rounding fell through the whole accumulation (u landed within an ulp of
	// total): return the largest valid weight, never a sanitized-away index.
	return argmax
}
