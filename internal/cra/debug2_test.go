package cra

import (
	"math/rand"
	"testing"
)

func TestDebugSeedGreedy(t *testing.T) {
	seed := int64(284869796476506422)
	rng := rand.New(rand.NewSource(seed))
	in := randomConference(rng, 3+rng.Intn(10), 4+rng.Intn(6), 2+rng.Intn(6), 2)
	a1, err1 := Greedy{}.Assign(in)
	a2, err2 := Greedy{Naive: true}.Assign(in)
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v %v", err1, err2)
	}
	t.Logf("P=%d R=%d T=%d workload=%d", in.NumPapers(), in.NumReviewers(), in.NumTopics(), in.Workload)
	t.Logf("heap score=%v naive score=%v", in.AssignmentScore(a1), in.AssignmentScore(a2))
	for p := range a1.Groups {
		t.Logf("p%d heap=%v naive=%v", p, a1.Sorted().Groups[p], a2.Sorted().Groups[p])
	}
}
