package cra

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/flow"
	"repro/internal/lap"
)

// StageSolver selects the linear-assignment engine used for each
// Stage-WGRAP sub-problem of SDGA.
type StageSolver int

// Stage solvers.
const (
	// StageFlow solves each stage as a transportation problem with min-cost
	// max-flow; it handles any per-stage workload directly. Default.
	StageFlow StageSolver = iota
	// StageHungarian duplicates every reviewer into ⌈δr/δp⌉ columns and runs
	// the Hungarian algorithm; the classic formulation referenced in
	// Section 4.2. Used by the stage-solver ablation benchmark.
	StageHungarian
)

// SDGA is the Stage Deepening Greedy Algorithm (Algorithm 2): the assignment
// is built in δp stages; at each stage exactly one reviewer is added to every
// paper by solving a linear assignment that maximises the total marginal gain
// (Definition 9 and Lemma 2), with the per-stage reviewer workload capped at
// ⌈δr/δp⌉. SDGA is a (1−1/e)-approximation when δp divides δr and a
// 1/2-approximation otherwise (Theorems 1 and 2).
//
// The per-stage P×R profit matrix is built by the fused gain oracle of
// internal/engine: rows are filled in parallel and the flat backing buffer is
// reused across stages.
type SDGA struct {
	// Solver selects the per-stage linear assignment engine.
	Solver StageSolver
	// Transport selects the transportation solver behind StageFlow:
	// flow.Dijkstra (default) shares one flow.Transport across the δp
	// stages — flat buffers are reused, and the stage-capacity fallback
	// re-solves incrementally with Resolve instead of rebuilding the stage —
	// while flow.Legacy is the SPFA path kept for parity tests and the
	// transport ablation benchmark.
	Transport flow.Solver
	// Shards bounds the goroutines the stage transport uses to load and seed
	// each stage instance, sharded across papers — the same parallel axis the
	// engine's profit-matrix build already exploits. 0 means GOMAXPROCS, 1
	// serial. The assignment is identical for every value (the parallel
	// passes write disjoint per-paper state; everything order-sensitive stays
	// serial), so sharding is on by default.
	Shards int
	// PairBonus optionally adds a modular per-pair term to the marginal gain
	// used by every stage (e.g. reviewer bids, see internal/bids). A modular
	// bonus keeps the overall objective submodular, so the approximation
	// guarantee is preserved for the blended objective. Called concurrently
	// during the matrix build; it must be safe for concurrent use.
	PairBonus func(r, p int) float64
	// GainWeight scales the coverage part of the marginal gain when a
	// PairBonus is supplied (0 means 1, i.e. plain coverage).
	GainWeight float64
	// CandidateCap, when positive, restricts every stage to the top-k
	// candidate reviewers per paper (by approximate coverage score, via the
	// inverted topic index), making the matrix build and each stage solve
	// O(P·k) instead of O(P·R). Papers whose candidates saturate are widened
	// to the full pool by the transport's escape hatch, so feasibility never
	// regresses. 0 keeps the exact dense path. Ignored by StageHungarian and
	// the Legacy transport (kept dense for the ablation baselines).
	CandidateCap int
}

// Name implements Algorithm.
func (SDGA) Name() string { return "SDGA" }

// Assign implements Algorithm.
func (s SDGA) Assign(instance *core.Instance) (*core.Assignment, error) {
	return s.AssignContext(context.Background(), instance)
}

// AssignContext implements Algorithm; cancellation is checked between and
// inside the δp stage solves.
func (s SDGA) AssignContext(ctx context.Context, instance *core.Instance) (*core.Assignment, error) {
	in, err := prepare(instance)
	if err != nil {
		return nil, err
	}
	eng := engine.New(in)
	P := in.NumPapers()
	a := core.NewAssignment(P)
	groupVecs := make([]core.Vector, P)
	for p := range groupVecs {
		groupVecs[p] = make(core.Vector, in.NumTopics())
	}
	rem := make([]int, in.NumReviewers())
	for r := range rem {
		rem[r] = in.Workload
	}
	var m engine.Matrix
	tr := flow.NewTransport()
	tr.Workers = shardWorkers(s.Shards)
	var cands [][]int32
	if k := effectiveCandidateCap(in, s.CandidateCap); k > 0 && s.Solver != StageHungarian && s.Transport != flow.Legacy {
		cands = buildCandidates(in, k, shardWorkers(s.Shards))
	}
	for stage := 0; stage < in.GroupSize; stage++ {
		if err := s.runStage(ctx, eng, a, groupVecs, rem, &m, tr, cands); err != nil {
			return nil, fmt.Errorf("cra: SDGA stage %d: %w", stage+1, err)
		}
	}
	return a, nil
}

// runStage solves one Stage-WGRAP sub-problem and applies its assignment.
// tr is the transportation solver shared across all stages of one assignment;
// cands, when non-nil, holds the per-paper candidate reviewers of the sparse
// solve path.
func (s SDGA) runStage(ctx context.Context, eng *engine.Oracle, a *core.Assignment, groupVecs []core.Vector, rem []int, m *engine.Matrix, tr *flow.Transport, cands [][]int32) error {
	in := eng.Instance()
	P, R := in.NumPapers(), in.NumReviewers()
	stageCap := in.StageWorkload()

	// Per-stage capacity: at most ⌈δr/δp⌉ new papers per reviewer this stage,
	// and never beyond the reviewer's remaining global workload.
	buildCaps := func(perStage int) []int {
		caps := make([]int, R)
		for r := 0; r < R; r++ {
			c := perStage
			if rem[r] < c {
				c = rem[r]
			}
			if c < 0 {
				c = 0
			}
			caps[r] = c
		}
		return caps
	}

	var bonus func(p, r int) float64
	if s.PairBonus != nil {
		bonus = func(p, r int) float64 { return s.PairBonus(r, p) }
	}

	solveStage := func(caps []int) ([]int, error) {
		// Profit matrix: marginal gain of adding reviewer r to paper p's
		// group, built in parallel into the stage-shared flat matrix (only
		// the candidate cells in sparse mode).
		spec := engine.ProfitSpec{
			GroupVecs: groupVecs,
			Forbidden: func(p, r int) bool {
				return caps[r] == 0 || a.Contains(p, r) || in.IsConflict(r, p)
			},
			ForbiddenValue: flow.Forbidden,
			Bonus:          bonus,
			GainWeight:     s.GainWeight,
		}
		if cands != nil && s.Solver != StageHungarian && s.Transport != flow.Legacy {
			if err := eng.FillProfitSparse(ctx, m, spec, cands); err != nil {
				return nil, err
			}
			need := make([]int, P)
			for p := range need {
				need[p] = 1
			}
			// The escape hatch densifies a paper whose candidates all
			// saturate; the callback stays valid through the fallback Resolve
			// because the forbidden set is capacity-identical there (caps[r]
			// and rem[r] zero together).
			tr.DenseRow = func(i int, buf []float64) []float64 {
				eng.FillRowInto(buf, i, spec)
				return buf
			}
			rows, _, err := tr.SolveSparse(m.Rows(), cands, R, need, caps)
			if err != nil {
				return nil, err
			}
			return perPaperColumns(rows), nil
		}
		if err := eng.FillProfit(ctx, m, spec); err != nil {
			return nil, err
		}
		profit := m.Rows()
		switch s.Solver {
		case StageHungarian:
			return stageHungarian(profit, caps)
		default:
			need := make([]int, P)
			for p := range need {
				need[p] = 1
			}
			var rows [][]int
			var err error
			if s.Transport == flow.Legacy {
				rows, _, err = flow.MaxProfitTransportWith(flow.Legacy, profit, need, caps)
			} else {
				rows, _, err = tr.Solve(profit, need, caps)
			}
			if err != nil {
				return nil, err
			}
			return perPaperColumns(rows), nil
		}
	}

	perPaper, err := solveStage(buildCaps(stageCap))
	if err != nil && ctx.Err() == nil && in.Workload > stageCap {
		if stageFallbackHook != nil {
			stageFallbackHook()
		}
		// The equal per-stage partition of Definition 9 can be infeasible in
		// the general (non-integral) case or in tail stages with conflicts;
		// fall back to the reviewers' full remaining workload, which keeps
		// the overall assignment feasible whenever one exists stage-wise.
		if s.Solver != StageHungarian && s.Transport != flow.Legacy {
			// Incremental re-solve: the profit matrix is unchanged — a
			// reviewer is forbidden exactly when rem[r] == 0, which zeroes
			// both capacity vectors identically — so only the column
			// capacities grew and the Transport can warm-start from the
			// partial flow of the failed tight-capacity solve instead of
			// refilling the P×R matrix and solving from scratch.
			var rows [][]int
			rows, _, err = tr.Resolve(buildCaps(in.Workload))
			if err == nil {
				perPaper = perPaperColumns(rows)
			}
		} else {
			perPaper, err = solveStage(buildCaps(in.Workload))
		}
	}
	if err != nil {
		return err
	}

	for p, r := range perPaper {
		a.Assign(p, r)
		groupVecs[p].MaxInPlace(in.Reviewers[r].Topics)
		rem[r]--
	}
	return nil
}

// shardWorkers resolves a Shards setting: 0 means one worker per available
// CPU, anything below 1 is serial.
func shardWorkers(n int) int {
	if n == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		return 1
	}
	return n
}

// stageFallbackHook, when non-nil, is invoked whenever a stage falls back to
// the reviewers' full remaining workload; tests use it to assert the fallback
// (and its incremental Resolve) is actually exercised.
var stageFallbackHook func()

// perPaperColumns flattens a unit-demand transportation plan (one column per
// row) into the per-paper reviewer slice.
func perPaperColumns(rows [][]int) []int {
	perPaper := make([]int, len(rows))
	for p, cols := range rows {
		perPaper[p] = cols[0]
	}
	return perPaper
}

// stageHungarian expands each reviewer into caps[r] identical columns and
// solves the resulting rectangular assignment with the Hungarian algorithm.
func stageHungarian(profit [][]float64, caps []int) ([]int, error) {
	P := len(profit)
	// Column expansion.
	var colOwner []int
	for r, c := range caps {
		for k := 0; k < c; k++ {
			colOwner = append(colOwner, r)
		}
	}
	if len(colOwner) < P {
		return nil, flow.ErrInfeasible
	}
	expanded := make([][]float64, P)
	for p := 0; p < P; p++ {
		expanded[p] = make([]float64, len(colOwner))
		for j, r := range colOwner {
			v := profit[p][r]
			if v == flow.Forbidden {
				expanded[p][j] = lap.Forbidden
			} else {
				expanded[p][j] = v
			}
		}
	}
	rows, _, err := lap.MaximizeRect(expanded)
	if err != nil {
		return nil, err
	}
	out := make([]int, P)
	for p, j := range rows {
		out[p] = colOwner[j]
	}
	return out, nil
}
