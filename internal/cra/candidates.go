package cra

import (
	"slices"
	"sync"

	"repro/internal/core"
	"repro/internal/topics"
)

// effectiveCandidateCap normalises a candidate-cap setting against the
// instance: 0 (or negative) disables pruning, as does a cap at or above the
// reviewer pool (the candidate lists would be the full pool); a positive cap
// is raised to the group size so every paper can at least fill its group
// from its own candidates.
func effectiveCandidateCap(in *core.Instance, k int) int {
	if k <= 0 || k >= in.NumReviewers() {
		return 0
	}
	if k < in.GroupSize {
		return in.GroupSize
	}
	return k
}

// spreadDenominator sets the fraction of every candidate list reserved for
// the deterministic stride over the whole pool: 1/4 spread, 3/4 topical.
//
// Purely topical top-k lists collapse onto the same popular reviewers when
// the pool's expertise overlaps (the more uniform the topic vectors, the
// worse): the union of all candidates is then a small slice of the pool, its
// aggregate workload cannot carry P papers, and the transport's densify
// escape hatch fires for nearly every row — correct, but at full dense cost.
// Striding a quarter of each list across the pool keeps every reviewer
// reachable from ~P·spread/R papers, so aggregate candidate capacity always
// spans the whole pool's workload and saturation stays the rare per-row case
// the escape hatch is meant for.
const spreadDenominator = 4

// buildCandidates computes the per-paper candidate reviewer lists (ascending,
// length k): the top topical reviewers by approximate coverage score through
// the inverted topic index, plus the stride slots described at
// spreadDenominator. One flat backing array holds all P·k ids; papers are
// sharded across workers, each with its own scorer scratch. Lists depend only
// on (paper, pool), never on worker count, so sharding cannot change results.
func buildCandidates(in *core.Instance, k, workers int) [][]int32 {
	P, R := in.NumPapers(), in.NumReviewers()
	vecs := make([][]float64, R)
	for r := 0; r < R; r++ {
		vecs[r] = in.Reviewers[r].Topics
	}
	ix := topics.BuildIndex(vecs)
	spread := k / spreadDenominator
	flat := make([]int32, P*k)
	cands := make([][]int32, P)
	fill := func(sc *topics.Scorer, p int) []int32 {
		row := sc.TopK(in.Papers[p].Topics, k-spread, flat[p*k:p*k:(p+1)*k])
		for j := 0; j < spread; j++ {
			r := int32((p*spread + j) % R)
			for slices.Contains(row, r) {
				r = (r + 1) % int32(R)
			}
			row = append(row, r)
		}
		slices.Sort(row)
		return row
	}
	if workers > P {
		workers = P
	}
	if workers <= 1 {
		sc := ix.NewScorer()
		for p := 0; p < P; p++ {
			cands[p] = fill(sc, p)
		}
		return cands
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo, hi := w*P/workers, (w+1)*P/workers
		go func(lo, hi int) {
			defer wg.Done()
			sc := ix.NewScorer()
			for p := lo; p < hi; p++ {
				cands[p] = fill(sc, p)
			}
		}(lo, hi)
	}
	wg.Wait()
	return cands
}
