package cra

import (
	"context"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
)

// StableMatching is the SM baseline of Section 5.2: a capacitated
// (many-to-many) Gale–Shapley deferred-acceptance procedure in which papers
// propose to reviewers in descending order of pair coverage and reviewers
// hold their best δr proposals. The result is stable with respect to the
// individual pair scores, but — as the paper points out — it ignores the
// group-coverage quality of each paper's reviewer set.
type StableMatching struct{}

// Name implements Algorithm.
func (StableMatching) Name() string { return "SM" }

// Assign implements Algorithm.
func (s StableMatching) Assign(instance *core.Instance) (*core.Assignment, error) {
	return s.AssignContext(context.Background(), instance)
}

// AssignContext implements Algorithm. It runs paper-proposing deferred
// acceptance and then fills any quota the stable phase left open (stability
// with full quotas is not always achievable; WGRAP's group-size constraint
// is hard, so the open slots are completed by a maximum-gain fill).
func (StableMatching) AssignContext(ctx context.Context, instance *core.Instance) (*core.Assignment, error) {
	in, err := prepare(instance)
	if err != nil {
		return nil, err
	}
	eng := engine.New(in)
	a, err := deferredAcceptance(ctx, eng)
	if err != nil {
		return nil, err
	}
	rem := remainingCapacity(in, a)
	if err := completeAssignment(ctx, eng, a, rem); err != nil {
		return nil, err
	}
	if err := in.ValidateAssignment(a); err != nil {
		return nil, err
	}
	return a, nil
}

// deferredAcceptance runs the capacitated paper-proposing Gale–Shapley phase
// and returns the (possibly quota-deficient) stable matching. The P×R pair
// scores behind both sides' preferences come from one parallel oracle fill.
func deferredAcceptance(ctx context.Context, eng *engine.Oracle) (*core.Assignment, error) {
	in := eng.Instance()
	P, R := in.NumPapers(), in.NumReviewers()

	var pairs engine.Matrix
	if err := eng.FillPairScores(ctx, &pairs); err != nil {
		return nil, err
	}
	pairScore := pairs.Rows()

	// Paper preference lists: reviewers in descending pair score, skipping
	// conflicts.
	prefs := make([][]int, P)
	for p := 0; p < P; p++ {
		list := make([]int, 0, R)
		for r := 0; r < R; r++ {
			if !in.IsConflict(r, p) {
				list = append(list, r)
			}
		}
		scores := pairScore[p]
		sort.SliceStable(list, func(i, j int) bool { return scores[list[i]] > scores[list[j]] })
		prefs[p] = list
	}
	// next[p] is the position in prefs[p] of the next reviewer to propose to.
	next := make([]int, P)
	// held[r] is the set of papers reviewer r currently holds.
	held := make([][]int, R)
	assignedCount := make([]int, P)

	// Papers that still need reviewers and can still propose.
	pending := make([]int, 0, P)
	for p := 0; p < P; p++ {
		pending = append(pending, p)
	}
	for len(pending) > 0 {
		p := pending[0]
		pending = pending[1:]
		for assignedCount[p] < in.GroupSize && next[p] < len(prefs[p]) {
			r := prefs[p][next[p]]
			next[p]++
			held[r] = append(held[r], p)
			assignedCount[p]++
			if len(held[r]) <= in.Workload {
				continue
			}
			// Reviewer over capacity: reject the worst held paper.
			worst := 0
			for i := 1; i < len(held[r]); i++ {
				if pairScore[held[r][i]][r] < pairScore[held[r][worst]][r] {
					worst = i
				}
			}
			rejected := held[r][worst]
			held[r] = append(held[r][:worst], held[r][worst+1:]...)
			assignedCount[rejected]--
			if rejected != p {
				pending = append(pending, rejected)
			}
		}
	}

	a := core.NewAssignment(P)
	for r := 0; r < R; r++ {
		for _, p := range held[r] {
			a.Assign(p, r)
		}
	}
	return a, nil
}

// BlockingPairs returns the reviewer-paper pairs that would both prefer each
// other over someone they are currently matched with; a stable matching has
// none. Exported for tests and for the examples that explain the SM baseline.
func BlockingPairs(in *core.Instance, a *core.Assignment) []core.Conflict {
	var out []core.Conflict
	loads := a.ReviewerLoads(in.NumReviewers())
	for p := 0; p < in.NumPapers(); p++ {
		// Worst score currently held by the paper.
		worstPaper := 2.0
		for _, r := range a.Groups[p] {
			if s := in.PairScore(r, p); s < worstPaper {
				worstPaper = s
			}
		}
		for r := 0; r < in.NumReviewers(); r++ {
			if a.Contains(p, r) || in.IsConflict(r, p) {
				continue
			}
			s := in.PairScore(r, p)
			paperPrefers := len(a.Groups[p]) < in.GroupSize || s > worstPaper+1e-12
			if !paperPrefers {
				continue
			}
			// Worst score currently held by the reviewer.
			reviewerPrefers := loads[r] < in.Workload
			if !reviewerPrefers {
				worstRev := 2.0
				for q := 0; q < in.NumPapers(); q++ {
					if a.Contains(q, r) {
						if sq := in.PairScore(r, q); sq < worstRev {
							worstRev = sq
						}
					}
				}
				reviewerPrefers = s > worstRev+1e-12
			}
			if paperPrefers && reviewerPrefers {
				out = append(out, core.Conflict{Reviewer: r, Paper: p})
			}
		}
	}
	return out
}
