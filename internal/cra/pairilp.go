package cra

import (
	"context"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/flow"
)

// PairILP is the "ILP" baseline of the experiments (Section 5.2): it
// maximises the pair-additive ARAP objective Σ_p Σ_{r∈A[p]} c(r, p) subject
// to the WGRAP constraints. Because that objective is linear in the
// individual assignment pairs, the integer program's constraint matrix is
// totally unimodular and the exact optimum is obtained by a single
// transportation (min-cost flow) solve — no branching is needed. As the
// paper notes, optimising pairs individually ignores the diversity of the
// group assigned to each paper, which is why it loses to SDGA on the
// group-coverage metric.
type PairILP struct{}

// Name implements Algorithm.
func (PairILP) Name() string { return "ILP" }

// Assign implements Algorithm.
func (i PairILP) Assign(instance *core.Instance) (*core.Assignment, error) {
	return i.AssignContext(context.Background(), instance)
}

// AssignContext implements Algorithm; the P×R pair-score matrix is built in
// parallel by the gain oracle.
func (PairILP) AssignContext(ctx context.Context, instance *core.Instance) (*core.Assignment, error) {
	in, err := prepare(instance)
	if err != nil {
		return nil, err
	}
	eng := engine.New(in)
	P, R := in.NumPapers(), in.NumReviewers()
	need := make([]int, P)
	caps := make([]int, R)
	for r := 0; r < R; r++ {
		caps[r] = in.Workload
	}
	for p := 0; p < P; p++ {
		need[p] = in.GroupSize
	}
	var m engine.Matrix
	spec := engine.ProfitSpec{
		Forbidden:      func(p, r int) bool { return in.IsConflict(r, p) },
		ForbiddenValue: flow.Forbidden,
	}
	if err := eng.FillProfit(ctx, &m, spec); err != nil {
		return nil, err
	}
	rows, _, err := flow.MaxProfitTransport(m.Rows(), need, caps)
	if err != nil {
		return nil, err
	}
	a := core.NewAssignment(P)
	for p, cols := range rows {
		for _, r := range cols {
			a.Assign(p, r)
		}
	}
	if err := in.ValidateAssignment(a); err != nil {
		return nil, err
	}
	return a, nil
}

// PairObjective returns the ARAP objective value Σ_p Σ_{r∈A[p]} c(r, p) of an
// assignment; used by tests to check PairILP's optimality.
func PairObjective(in *core.Instance, a *core.Assignment) float64 {
	s := 0.0
	for p := range a.Groups {
		for _, r := range a.Groups[p] {
			s += in.PairScore(r, p)
		}
	}
	return s
}
