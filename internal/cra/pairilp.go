package cra

import (
	"context"
	"math"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/flow"
	"repro/internal/ilp"
	"repro/internal/lp"
)

// PairILP is the "ILP" baseline of the experiments (Section 5.2): it
// maximises the pair-additive ARAP objective Σ_p Σ_{r∈A[p]} c(r, p) subject
// to the WGRAP constraints. Because that objective is linear in the
// individual assignment pairs, the integer program's constraint matrix is
// totally unimodular and the exact optimum is obtained by a single
// transportation (min-cost flow) solve — no branching is needed. As the
// paper notes, optimising pairs individually ignores the diversity of the
// group assigned to each paper, which is why it loses to SDGA on the
// group-coverage metric.
type PairILP struct {
	// Transport selects the transportation solver (flow.Dijkstra by
	// default; flow.Legacy keeps the SPFA path for parity tests).
	Transport flow.Solver
	// ViaILP additionally solves the ARAP program as a genuine 0/1 integer
	// program with internal/ilp, warm-started with the transportation
	// solution as its incumbent, and returns that solution. It exists to
	// validate the total-unimodularity shortcut on small instances (the
	// branch-and-bound search has P·R binary variables) and is exercised by
	// the parity tests; production callers should leave it false.
	ViaILP bool
}

// Name implements Algorithm.
func (PairILP) Name() string { return "ILP" }

// Assign implements Algorithm.
func (i PairILP) Assign(instance *core.Instance) (*core.Assignment, error) {
	return i.AssignContext(context.Background(), instance)
}

// AssignContext implements Algorithm; the P×R pair-score matrix is built in
// parallel by the gain oracle.
func (i PairILP) AssignContext(ctx context.Context, instance *core.Instance) (*core.Assignment, error) {
	in, err := prepare(instance)
	if err != nil {
		return nil, err
	}
	eng := engine.New(in)
	P, R := in.NumPapers(), in.NumReviewers()
	need := make([]int, P)
	caps := make([]int, R)
	for r := 0; r < R; r++ {
		caps[r] = in.Workload
	}
	for p := 0; p < P; p++ {
		need[p] = in.GroupSize
	}
	var m engine.Matrix
	spec := engine.ProfitSpec{
		Forbidden:      func(p, r int) bool { return in.IsConflict(r, p) },
		ForbiddenValue: flow.Forbidden,
	}
	if err := eng.FillProfit(ctx, &m, spec); err != nil {
		return nil, err
	}
	rows, _, err := flow.MaxProfitTransportWith(i.Transport, m.Rows(), need, caps)
	if err != nil {
		return nil, err
	}
	if i.ViaILP {
		rows, err = pairILPExact(m.Rows(), need, caps, rows)
		if err != nil {
			return nil, err
		}
	}
	a := core.NewAssignment(P)
	for p, cols := range rows {
		for _, r := range cols {
			a.Assign(p, r)
		}
	}
	if err := in.ValidateAssignment(a); err != nil {
		return nil, err
	}
	return a, nil
}

// pairILPExact solves the ARAP program as a 0/1 integer program: binary
// x[p][r], Σ_r x[p][r] = δp per paper, Σ_p x[p][r] ≤ δr per reviewer,
// maximise Σ profit·x. The transportation solution seeds the branch-and-bound
// incumbent, so the search only explores nodes that could beat it — which,
// total unimodularity holding, is none.
func pairILPExact(profit [][]float64, need, caps []int, incumbent [][]int) ([][]int, error) {
	P := len(profit)
	R := 0
	if P > 0 {
		R = len(profit[0])
	}
	xVar := func(p, r int) int { return p*R + r }
	prob := ilp.NewProblem(P * R)
	for p := 0; p < P; p++ {
		for r := 0; r < R; r++ {
			prob.SetKind(xVar(p, r), ilp.Binary)
			if math.IsInf(profit[p][r], -1) {
				prob.LP.SetUpperBound(xVar(p, r), 0)
			} else {
				prob.LP.Objective[xVar(p, r)] = profit[p][r]
			}
		}
	}
	for p := 0; p < P; p++ {
		row := make([]float64, P*R)
		for r := 0; r < R; r++ {
			row[xVar(p, r)] = 1
		}
		prob.LP.AddConstraint(row, lp.EQ, float64(need[p]))
	}
	for r := 0; r < R; r++ {
		row := make([]float64, P*R)
		for p := 0; p < P; p++ {
			row[xVar(p, r)] = 1
		}
		prob.LP.AddConstraint(row, lp.LE, float64(caps[r]))
	}
	seed := make([]float64, P*R)
	for p, cols := range incumbent {
		for _, r := range cols {
			seed[xVar(p, r)] = 1
		}
	}
	sol, err := prob.Solve(ilp.Options{Incumbent: seed})
	if err != nil {
		return nil, err
	}
	rows := make([][]int, P)
	for p := 0; p < P; p++ {
		for r := 0; r < R; r++ {
			if math.Round(sol.X[xVar(p, r)]) == 1 {
				rows[p] = append(rows[p], r)
			}
		}
	}
	return rows, nil
}

// PairObjective returns the ARAP objective value Σ_p Σ_{r∈A[p]} c(r, p) of an
// assignment; used by tests to check PairILP's optimality.
func PairObjective(in *core.Instance, a *core.Assignment) float64 {
	s := 0.0
	for p := range a.Groups {
		for _, r := range a.Groups[p] {
			s += in.PairScore(r, p)
		}
	}
	return s
}
