package cra

import (
	"repro/internal/core"
	"repro/internal/flow"
)

// PairILP is the "ILP" baseline of the experiments (Section 5.2): it
// maximises the pair-additive ARAP objective Σ_p Σ_{r∈A[p]} c(r, p) subject
// to the WGRAP constraints. Because that objective is linear in the
// individual assignment pairs, the integer program's constraint matrix is
// totally unimodular and the exact optimum is obtained by a single
// transportation (min-cost flow) solve — no branching is needed. As the
// paper notes, optimising pairs individually ignores the diversity of the
// group assigned to each paper, which is why it loses to SDGA on the
// group-coverage metric.
type PairILP struct{}

// Name implements Algorithm.
func (PairILP) Name() string { return "ILP" }

// Assign implements Algorithm.
func (PairILP) Assign(instance *core.Instance) (*core.Assignment, error) {
	in, err := prepare(instance)
	if err != nil {
		return nil, err
	}
	P, R := in.NumPapers(), in.NumReviewers()
	profit := make([][]float64, P)
	need := make([]int, P)
	caps := make([]int, R)
	for r := 0; r < R; r++ {
		caps[r] = in.Workload
	}
	for p := 0; p < P; p++ {
		need[p] = in.GroupSize
		profit[p] = make([]float64, R)
		for r := 0; r < R; r++ {
			if in.IsConflict(r, p) {
				profit[p][r] = flow.Forbidden
				continue
			}
			profit[p][r] = in.PairScore(r, p)
		}
	}
	rows, _, err := flow.MaxProfitTransport(profit, need, caps)
	if err != nil {
		return nil, err
	}
	a := core.NewAssignment(P)
	for p, cols := range rows {
		for _, r := range cols {
			a.Assign(p, r)
		}
	}
	if err := in.ValidateAssignment(a); err != nil {
		return nil, err
	}
	return a, nil
}

// PairObjective returns the ARAP objective value Σ_p Σ_{r∈A[p]} c(r, p) of an
// assignment; used by tests to check PairILP's optimality.
func PairObjective(in *core.Instance, a *core.Assignment) float64 {
	s := 0.0
	for p := range a.Groups {
		for _, r := range a.Groups[p] {
			s += in.PairScore(r, p)
		}
	}
	return s
}
