package cra

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

// stuckInstance builds a partial assignment in which the only reviewer with
// spare capacity already sits in the stuck paper's group, so a plain fill is
// infeasible and the swap-based repair must be used.
func stuckInstance() (*core.Instance, *core.Assignment, []int) {
	papers := []core.Paper{
		{ID: "p0", Topics: core.Vector{1, 0}},
		{ID: "p1", Topics: core.Vector{0, 1}},
	}
	reviewers := []core.Reviewer{
		{ID: "r0", Topics: core.Vector{1, 0}},
		{ID: "r1", Topics: core.Vector{0, 1}},
		{ID: "r2", Topics: core.Vector{0.5, 0.5}},
	}
	// p1 misses one reviewer and the only spare capacity belongs to r2,
	// which is already in p1's group, so a direct fill is impossible.
	b := core.NewAssignment(2)
	b.Assign(0, 0)
	b.Assign(0, 1)
	b.Assign(1, 2)
	// loads: r0=1, r1=1, r2=1; rem with δr=2: r0=1, r1=1, r2=1 — direct fill
	// possible. To force the swap, shrink the workload to 1 for everyone
	// except r2.
	in2 := core.NewInstance(papers, reviewers, 2, 1)
	rem := []int{0, 0, 1} // only r2 has capacity left, but it is in p1's group
	return in2, b, rem
}

func TestCompleteAssignmentUsesSwapRepair(t *testing.T) {
	in, a, rem := stuckInstance()
	if err := completeAssignment(context.Background(), engine.New(in), a, rem); err != nil {
		t.Fatalf("swap repair failed: %v", err)
	}
	// Every paper must now have exactly δp distinct reviewers and loads must
	// respect the remaining-capacity bookkeeping passed in.
	for p, g := range a.Groups {
		if len(g) != in.GroupSize {
			t.Fatalf("paper %d has %d reviewers after repair", p, len(g))
		}
		seen := map[int]bool{}
		for _, r := range g {
			if seen[r] {
				t.Fatalf("paper %d has duplicate reviewer %d", p, r)
			}
			seen[r] = true
		}
	}
}

func TestCompleteAssignmentReportsImpossible(t *testing.T) {
	// One paper needing two reviewers but only one exists: no repair can fix
	// that, so the helper must fail rather than loop.
	papers := []core.Paper{{Topics: core.Vector{1}}}
	reviewers := []core.Reviewer{{Topics: core.Vector{1}}}
	in := core.NewInstance(papers, reviewers, 2, 2)
	a := core.NewAssignment(1)
	a.Assign(0, 0)
	rem := []int{1}
	if err := completeAssignment(context.Background(), engine.New(in), a, rem); err == nil {
		t.Fatal("impossible completion did not fail")
	}
}

func TestDirectFillPrefersHighestGain(t *testing.T) {
	papers := []core.Paper{{Topics: core.Vector{0.5, 0.5}}}
	reviewers := []core.Reviewer{
		{Topics: core.Vector{0.9, 0.0}},
		{Topics: core.Vector{0.5, 0.5}},
	}
	in := core.NewInstance(papers, reviewers, 1, 1)
	a := core.NewAssignment(1)
	rem := []int{1, 1}
	if !directFill(engine.New(in), a, rem, 0) {
		t.Fatal("directFill found no candidate")
	}
	if !a.Contains(0, 1) {
		t.Fatalf("directFill picked %v, want the fully covering reviewer 1", a.Groups[0])
	}
	if rem[1] != 0 {
		t.Fatal("remaining capacity not decremented")
	}
}

func TestFillMissingSlotsNoOpOnCompleteAssignment(t *testing.T) {
	in, _, _ := stuckInstance()
	full := core.NewAssignment(2)
	full.Assign(0, 0)
	full.Assign(0, 1)
	full.Assign(1, 1)
	full.Assign(1, 2)
	rem := []int{1, 0, 0}
	before := full.Clone()
	var m engine.Matrix
	if _, err := fillMissingSlots(context.Background(), engine.New(in), full, rem, &m, nil, nil); err != nil {
		t.Fatal(err)
	}
	for p := range before.Groups {
		if len(before.Groups[p]) != len(full.Groups[p]) {
			t.Fatal("fillMissingSlots modified a complete assignment")
		}
	}
}
