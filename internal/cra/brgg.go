package cra

import (
	"context"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/jra"
)

// BRGG is the Best Reviewer Group Greedy baseline discussed at the start of
// Section 4.2 and evaluated in Section 5.2: at every iteration it finds, over
// all still-unassigned papers, the best complete reviewer group among the
// reviewers with remaining capacity (an exact JRA solve with BBA) and commits
// it. Early papers receive excellent groups, at the cost of the papers
// assigned in the tail — which is exactly the weakness the experiments show.
type BRGG struct{}

// Name implements Algorithm.
func (BRGG) Name() string { return "BRGG" }

// Assign implements Algorithm.
func (b BRGG) Assign(instance *core.Instance) (*core.Assignment, error) {
	return b.AssignContext(context.Background(), instance)
}

// AssignContext implements Algorithm; cancellation is checked between the
// per-round exact JRA solves.
func (BRGG) AssignContext(ctx context.Context, instance *core.Instance) (*core.Assignment, error) {
	in, err := prepare(instance)
	if err != nil {
		return nil, err
	}
	eng := engine.New(in)
	P := in.NumPapers()
	a := core.NewAssignment(P)
	rem := make([]int, in.NumReviewers())
	for r := range rem {
		rem[r] = in.Workload
	}
	assignedPaper := make([]bool, P)
	solver := jra.BranchAndBound{}

	// Cached best group per pending paper; invalidated when one of its
	// reviewers runs out of capacity.
	type cached struct {
		result jra.Result
		valid  bool
	}
	cache := make([]cached, P)

	bestGroupFor := func(p int) (jra.Result, error) {
		sub := restrictedJournal(in, p, rem)
		return solver.Solve(sub)
	}

	for round := 0; round < P; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bestP := -1
		var best jra.Result
		for p := 0; p < P; p++ {
			if assignedPaper[p] {
				continue
			}
			if !cache[p].valid {
				res, err := bestGroupFor(p)
				if err != nil {
					// Not enough spare reviewers for a full group right now;
					// the paper is filled by the repair pass at the end.
					res = jra.Result{Score: -1}
				}
				cache[p] = cached{result: res, valid: true}
			}
			if cache[p].result.Score < 0 {
				continue
			}
			if bestP == -1 || cache[p].result.Score > best.Score {
				bestP = p
				best = cache[p].result
			}
		}
		if bestP == -1 {
			break
		}
		saturated := make(map[int]bool)
		for _, r := range best.Group {
			a.Assign(bestP, r)
			rem[r]--
			if rem[r] == 0 {
				saturated[r] = true
			}
		}
		assignedPaper[bestP] = true
		cache[bestP].valid = false
		// Invalidate cached groups that used a now-saturated reviewer.
		if len(saturated) > 0 {
			for p := 0; p < P; p++ {
				if assignedPaper[p] || !cache[p].valid {
					continue
				}
				for _, r := range cache[p].result.Group {
					if saturated[r] {
						cache[p].valid = false
						break
					}
				}
			}
		}
	}
	if err := completeAssignment(ctx, eng, a, rem); err != nil {
		return nil, err
	}
	if err := in.ValidateAssignment(a); err != nil {
		return nil, err
	}
	return a, nil
}

// restrictedJournal builds a single-paper instance whose candidate pool is
// limited (via conflicts) to reviewers that still have spare capacity.
func restrictedJournal(in *core.Instance, p int, rem []int) *core.Instance {
	sub := in.JournalInstance(p)
	for r := 0; r < in.NumReviewers(); r++ {
		if rem[r] <= 0 {
			sub.AddConflict(r, 0)
		}
	}
	return sub
}
