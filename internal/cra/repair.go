package cra

import (
	"context"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/flow"
)

// fillMissingSlots completes an assignment in which some papers have fewer
// than δp reviewers, by solving one transportation problem over the open
// slots: every under-filled paper demands its missing reviewers, reviewers
// offer their remaining capacity, and the total marginal gain is maximised.
// The profit matrix is built in parallel by the gain oracle into m (reused
// across calls, e.g. across SRA rounds), and the transportation solve runs
// through tr so its flat buffers are also reused (nil = a one-shot solver).
// Papers outside the active mask (nil = all) demand nothing and stay
// untouched. It returns, per paper, the reviewers that were added (empty for
// papers that needed none); it is a no-op for complete assignments.
func fillMissingSlots(ctx context.Context, eng *engine.Oracle, a *core.Assignment, rem []int, m *engine.Matrix, tr *flow.Transport, active []bool) ([][]int, error) {
	in := eng.Instance()
	P := in.NumPapers()
	need := make([]int, P)
	total := 0
	for p := 0; p < P; p++ {
		if active != nil && !active[p] {
			continue
		}
		need[p] = in.GroupSize - len(a.Groups[p])
		if need[p] < 0 {
			need[p] = 0
		}
		total += need[p]
	}
	if total == 0 {
		return make([][]int, P), nil
	}
	groupVecs := make([]core.Vector, P)
	for p := 0; p < P; p++ {
		groupVecs[p] = in.GroupVector(a.Groups[p])
	}
	spec := engine.ProfitSpec{
		GroupVecs: groupVecs,
		Forbidden: func(p, r int) bool {
			return need[p] == 0 || rem[r] <= 0 || a.Contains(p, r) || in.IsConflict(r, p)
		},
		ForbiddenValue: flow.Forbidden,
	}
	if err := eng.FillProfit(ctx, m, spec); err != nil {
		return nil, err
	}
	if tr == nil {
		tr = flow.NewTransport()
	}
	rows, _, err := tr.Solve(m.Rows(), need, rem)
	if err != nil {
		return nil, err
	}
	for p, cols := range rows {
		for _, r := range cols {
			a.Assign(p, r)
			rem[r]--
		}
	}
	return rows, nil
}

// completeAssignment fills every open slot of a partial assignment. It first
// tries the transportation fill of fillMissingSlots; if that is infeasible —
// e.g. a greedy run painted itself into a corner where the only reviewers
// with spare capacity already sit in the paper's group — it falls back to a
// swap-based repair: move a loaded reviewer from another paper to the stuck
// one and backfill the donor paper with a reviewer that still has capacity.
func completeAssignment(ctx context.Context, eng *engine.Oracle, a *core.Assignment, rem []int) error {
	var m engine.Matrix
	_, err := fillMissingSlots(ctx, eng, a, rem, &m, nil, nil)
	if err == nil {
		return nil
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	in := eng.Instance()
	P := in.NumPapers()
	for guard := 0; guard < P*in.GroupSize+1; guard++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		progress := false
		done := true
		for p := 0; p < P; p++ {
			for len(a.Groups[p]) < in.GroupSize {
				done = false
				if directFill(eng, a, rem, p) || swapFill(in, a, rem, p) {
					progress = true
					continue
				}
				break
			}
		}
		if done {
			return nil
		}
		if !progress {
			return ErrInsufficientCapacity
		}
	}
	return ErrInsufficientCapacity
}

// directFill adds the highest-gain feasible reviewer to paper p, if any.
func directFill(eng *engine.Oracle, a *core.Assignment, rem []int, p int) bool {
	in := eng.Instance()
	gv := in.GroupVector(a.Groups[p])
	best, bestGain := -1, -1.0
	for r := 0; r < in.NumReviewers(); r++ {
		if !feasiblePair(in, a, rem, r, p) {
			continue
		}
		if g := eng.Gain(p, gv, r); g > bestGain {
			best, bestGain = r, g
		}
	}
	if best == -1 {
		return false
	}
	a.Assign(p, best)
	rem[best]--
	return true
}

// swapFill frees a slot for paper p by relocating a reviewer u from some
// donor paper q to p and backfilling q with a reviewer that still has spare
// capacity. Returns true when a swap was applied.
func swapFill(in *core.Instance, a *core.Assignment, rem []int, p int) bool {
	for q := 0; q < in.NumPapers(); q++ {
		if q == p {
			continue
		}
		for _, u := range a.Groups[q] {
			// u moves from q to p.
			if a.Contains(p, u) || in.IsConflict(u, p) {
				continue
			}
			// Find a backfill reviewer for q.
			for w := 0; w < in.NumReviewers(); w++ {
				if w == u || rem[w] <= 0 || a.Contains(q, w) || in.IsConflict(w, q) {
					continue
				}
				a.Remove(q, u)
				a.Assign(q, w)
				a.Assign(p, u)
				rem[w]--
				return true
			}
		}
	}
	return false
}
