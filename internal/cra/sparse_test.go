package cra

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/engine"
)

func TestEffectiveCandidateCap(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := randomConference(rng, 10, 20, 8, 3)
	cases := []struct{ k, want int }{
		{0, 0}, {-5, 0}, {20, 0}, {25, 0}, // off, or cap covers the pool
		{1, 3}, {2, 3}, // below the group size: raised to δp
		{3, 3}, {8, 8}, {19, 19},
	}
	for _, tc := range cases {
		if got := effectiveCandidateCap(in, tc.k); got != tc.want {
			t.Fatalf("effectiveCandidateCap(%d) = %d, want %d", tc.k, got, tc.want)
		}
	}
}

func TestBuildCandidatesShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := randomConference(rng, 40, 60, 12, 3)
	for _, workers := range []int{1, 4} {
		cands := buildCandidates(in, 8, workers)
		if len(cands) != in.NumPapers() {
			t.Fatalf("workers=%d: %d candidate lists, want %d", workers, len(cands), in.NumPapers())
		}
		for p, c := range cands {
			if len(c) != 8 {
				t.Fatalf("workers=%d: paper %d has %d candidates, want 8", workers, p, len(c))
			}
			for x := 1; x < len(c); x++ {
				if c[x] <= c[x-1] {
					t.Fatalf("workers=%d: paper %d candidates not ascending: %v", workers, p, c)
				}
			}
		}
	}
	// Sharded and serial builds must agree (TopK is deterministic).
	a, b := buildCandidates(in, 8, 1), buildCandidates(in, 8, 3)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("candidate lists differ across worker counts")
	}
}

// TestSDGACandidateCapFullPool: a cap at (or above) the pool size must take
// the exact dense path and produce the identical assignment.
func TestSDGACandidateCapFullPool(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	in := randomConference(rng, 30, 24, 10, 3)
	dense, err := SDGA{}.Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	capped, err := SDGA{CandidateCap: in.NumReviewers()}.Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dense.Sorted(), capped.Sorted()) {
		t.Fatal("full-pool candidate cap diverged from the dense path")
	}
}

// TestSDGACandidateCapValidAndClose: pruned construction must stay feasible
// and lose only a small fraction of the dense objective.
func TestSDGACandidateCapValidAndClose(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 5; trial++ {
		in := randomConference(rng, 50, 40, 12, 3)
		dense, err := SDGA{}.Assign(in)
		if err != nil {
			t.Fatal(err)
		}
		sparse, err := SDGA{CandidateCap: 12}.Assign(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := in.ValidateAssignment(sparse); err != nil {
			t.Fatalf("trial %d: pruned assignment invalid: %v", trial, err)
		}
		ds, ss := in.AssignmentScore(dense), in.AssignmentScore(sparse)
		if ss < 0.9*ds {
			t.Fatalf("trial %d: pruned score %v below 0.9×dense %v", trial, ss, ds)
		}
	}
}

// TestSDGACandidateCapTightCapacity: with workload at the feasibility minimum
// the candidate columns saturate often; the escape hatch must keep the solve
// feasible anyway.
func TestSDGACandidateCapTightCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	in := randomConference(rng, 60, 30, 10, 3) // MinWorkload: tight pool
	a, err := SDGA{CandidateCap: 3}.Assign(in) // raised to δp=3: maximally starved
	if err != nil {
		t.Fatal(err)
	}
	if err := in.ValidateAssignment(a); err != nil {
		t.Fatalf("assignment invalid: %v", err)
	}
}

// TestSRACandidateCapNeverDecreases: refinement under a candidate cap keeps
// the SRA contract — the result is valid and never worse than the start.
func TestSRACandidateCapNeverDecreases(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	in := randomConference(rng, 40, 32, 10, 3)
	start, err := SDGA{CandidateCap: 10}.Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := SRA{Omega: 5, MaxRounds: 40, Seed: 3, CandidateCap: 10}.Refine(in, start)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.ValidateAssignment(refined); err != nil {
		t.Fatalf("refined assignment invalid: %v", err)
	}
	if s0, s1 := in.AssignmentScore(start), in.AssignmentScore(refined); s1 < s0-1e-12 {
		t.Fatalf("refinement decreased score: %v -> %v", s0, s1)
	}
}

// TestPairScoreAtSparseFallback: the probability model must price every pair
// with the exact oracle score — candidate pairs through the candidate-aligned
// matrix, out-of-candidate pairs (reachable after a densified completion)
// through the on-demand fallback, never as zero.
func TestPairScoreAtSparseFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	in := randomConference(rng, 12, 16, 8, 2)
	eng := engine.New(in)
	cands := buildCandidates(in, 4, 1)
	var pairs engine.Matrix
	if err := eng.FillProfitSparse(context.Background(), &pairs, engine.ProfitSpec{}, cands); err != nil {
		t.Fatal(err)
	}
	run := sraRun{eng: eng, cands: cands, pairScore: pairs.Rows()}
	for p := 0; p < in.NumPapers(); p++ {
		for r := 0; r < in.NumReviewers(); r++ {
			want := eng.PairScore(r, p)
			if got := run.pairScoreAt(p, r); math.Abs(got-want) > 1e-12 {
				t.Fatalf("pairScoreAt(%d,%d) = %v, want %v", p, r, got, want)
			}
		}
	}
}
