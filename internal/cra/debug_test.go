package cra

import (
	"math/rand"
	"testing"
)

// TestDebugSeeds reproduces previously failing quick-check seeds directly so
// regressions surface with full detail.
func TestDebugSeedSDGASolvers(t *testing.T) {
	seed := int64(8687629866177144313)
	rng := rand.New(rand.NewSource(seed))
	in := randomConference(rng, 4+rng.Intn(10), 4+rng.Intn(6), 3+rng.Intn(6), 2+rng.Intn(2))
	a1, err1 := SDGA{Solver: StageFlow}.Assign(in)
	a2, err2 := SDGA{Solver: StageHungarian}.Assign(in)
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v %v", err1, err2)
	}
	t.Logf("P=%d R=%d T=%d delta=%d workload=%d", in.NumPapers(), in.NumReviewers(), in.NumTopics(), in.GroupSize, in.Workload)
	t.Logf("flow score=%v hungarian score=%v", in.AssignmentScore(a1), in.AssignmentScore(a2))
}

func TestDebugSeedSRA(t *testing.T) {
	seed := int64(6659235318012465962)
	rng := rand.New(rand.NewSource(seed))
	in := randomConference(rng, 4+rng.Intn(10), 5+rng.Intn(6), 3+rng.Intn(6), 2+rng.Intn(2))
	base, err := SDGA{}.Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []ProbabilityModel{ProbCoverageDecay, ProbCoverage, ProbUniform} {
		refined, err := (SRA{Omega: 3, MaxRounds: 15, Model: model, Seed: seed}).Refine(in, base)
		if err != nil {
			t.Fatalf("model %v: %v", model, err)
		}
		work := *in
		work.Workload = in.MinWorkload()
		if err := work.ValidateAssignment(refined); err != nil {
			t.Errorf("model %v: invalid: %v", model, err)
		}
		if in.AssignmentScore(refined) < in.AssignmentScore(base)-1e-9 {
			t.Errorf("model %v: score decreased", model)
		}
	}
}
