package cra

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
)

func sessionInstance(rng *rand.Rand, p, r, t, delta int) *core.Instance {
	papers := make([]core.Paper, p)
	for i := range papers {
		papers[i] = core.Paper{Topics: randomVector(rng, t)}
	}
	reviewers := make([]core.Reviewer, r)
	for i := range reviewers {
		reviewers[i] = core.Reviewer{Topics: randomVector(rng, t)}
	}
	in := core.NewInstance(papers, reviewers, delta, 0)
	in.Workload = in.MinWorkload()
	return in
}

func randomVector(rng *rand.Rand, t int) core.Vector {
	v := make(core.Vector, t)
	for i := range v {
		v[i] = rng.Float64()
	}
	return v.Normalized()
}

// scoreActive sums the group scores of the non-withdrawn papers.
func scoreActive(s *Session, a *core.Assignment) float64 {
	total := 0.0
	for p := range a.Groups {
		if s.Active(p) {
			total += s.Instance().GroupScore(p, a.Groups[p])
		}
	}
	return total
}

// applyEdit applies the k-th scripted edit to a session; the same script is
// replayed onto the warm session and onto fresh cold sessions so their
// instances stay identical.
func applyEdit(t *testing.T, s *Session, rng *rand.Rand, k int) {
	t.Helper()
	in := s.Instance()
	P, R := in.NumPapers(), in.NumReviewers()
	switch k % 4 {
	case 0: // late conflict of interest
		if err := s.AddConflict(rng.Intn(R), rng.Intn(P)); err != nil {
			t.Fatalf("edit %d (conflict): %v", k, err)
		}
	case 1: // withdrawal
		p := rng.Intn(P)
		if err := s.WithdrawPaper(p); err != nil {
			t.Fatalf("edit %d (withdraw): %v", k, err)
		}
	case 2: // workload change (grow, so capacity always stays sufficient)
		if err := s.SetWorkload(in.Workload + 1); err != nil {
			t.Fatalf("edit %d (workload): %v", k, err)
		}
	case 3: // restore whatever is withdrawn
		for p := 0; p < P; p++ {
			if !s.Active(p) {
				if err := s.RestorePaper(p); err != nil {
					t.Fatalf("edit %d (restore): %v", k, err)
				}
			}
		}
	}
}

// replayEdits drives a fresh session through the same edit script (without
// solving) so a cold Solve sees the identical edited instance.
func replayEdits(t *testing.T, base *core.Instance, cfg SessionConfig, edits int, seed int64) *Session {
	t.Helper()
	s, err := NewSession(base.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for k := 0; k < edits; k++ {
		applyEdit(t, s, rng, k)
	}
	return s
}

// TestSessionResolveParitySDGA is the warm-path correctness requirement:
// after every scripted edit, the warm Resolve assignment score must match a
// cold Solve on the identically edited instance to 1e-9.
func TestSessionResolveParitySDGA(t *testing.T) {
	for _, cfg := range []struct {
		name string
		c    SessionConfig
	}{
		{"sdga", SessionConfig{}},
		{"sdga-sra", SessionConfig{Refine: true, SRA: SRA{Omega: 3, MaxRounds: 25, Seed: 5}}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(31))
			base := sessionInstance(rng, 40, 30, 12, 3)
			warm, err := NewSession(base.Clone(), cfg.c)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := warm.Solve(context.Background()); err != nil {
				t.Fatal(err)
			}
			editRng := rand.New(rand.NewSource(77))
			for k := 0; k < 8; k++ {
				applyEdit(t, warm, editRng, k)
				warmA, err := warm.Resolve(context.Background())
				if err != nil {
					t.Fatalf("edit %d: warm resolve: %v", k, err)
				}
				cold := replayEdits(t, base, cfg.c, k+1, 77)
				coldA, err := cold.Solve(context.Background())
				if err != nil {
					t.Fatalf("edit %d: cold solve: %v", k, err)
				}
				ws, cs := scoreActive(warm, warmA), scoreActive(cold, coldA)
				if math.Abs(ws-cs) > 1e-9 {
					t.Fatalf("edit %d: warm score %v != cold score %v", k, ws, cs)
				}
				// The warm assignment must satisfy the constraints on the
				// active papers.
				validateSessionAssignment(t, warm, warmA)
			}
		})
	}
}

// validateSessionAssignment checks the WGRAP constraints with the session's
// withdrawal mask applied: active papers have exactly δp distinct eligible
// reviewers, withdrawn ones none, and loads respect δr.
func validateSessionAssignment(t *testing.T, s *Session, a *core.Assignment) {
	t.Helper()
	in := s.Instance()
	loads := make([]int, in.NumReviewers())
	for p, g := range a.Groups {
		if !s.Active(p) {
			if len(g) != 0 {
				t.Fatalf("withdrawn paper %d has reviewers %v", p, g)
			}
			continue
		}
		if len(g) != in.GroupSize {
			t.Fatalf("paper %d has %d reviewers, want %d", p, len(g), in.GroupSize)
		}
		seen := map[int]bool{}
		for _, r := range g {
			if seen[r] {
				t.Fatalf("paper %d has duplicate reviewer %d", p, r)
			}
			seen[r] = true
			if in.IsConflict(r, p) {
				t.Fatalf("conflicting pair (%d,%d) assigned", r, p)
			}
			loads[r]++
		}
	}
	for r, l := range loads {
		if l > in.Workload {
			t.Fatalf("reviewer %d load %d exceeds δr=%d", r, l, in.Workload)
		}
	}
}

// TestSessionAddReviewer: a structural edit (new reviewer) invalidates the
// warm state; the next Resolve must still match a cold solve.
func TestSessionAddReviewer(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	base := sessionInstance(rng, 30, 20, 10, 3)
	warm, err := NewSession(base.Clone(), SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Solve(context.Background()); err != nil {
		t.Fatal(err)
	}
	newRev := core.Reviewer{Topics: randomVector(rng, 10)}
	idx, err := warm.AddReviewer(newRev)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 20 {
		t.Fatalf("AddReviewer index = %d, want 20", idx)
	}
	warmA, err := warm.Resolve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	coldIn := base.Clone()
	coldIn.AddReviewer(newRev)
	cold, err := NewSession(coldIn, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	coldA, err := cold.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ws, cs := scoreActive(warm, warmA), scoreActive(cold, coldA)
	if math.Abs(ws-cs) > 1e-9 {
		t.Fatalf("warm %v != cold %v after reviewer addition", ws, cs)
	}
}

// TestSessionConflictSaturation: edits that would leave a paper without δp
// eligible reviewers are rejected with ErrConflictSaturated; building a
// session on an already-saturated instance fails the same way.
func TestSessionConflictSaturation(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	in := sessionInstance(rng, 4, 3, 6, 3) // δp = R: no conflict is affordable
	s, err := NewSession(in.Clone(), SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddConflict(0, 1); !errors.Is(err, ErrConflictSaturated) {
		t.Fatalf("saturating conflict: err = %v, want ErrConflictSaturated", err)
	}
	// A withdrawn paper tolerates the conflict, but cannot be restored while
	// saturated.
	if err := s.WithdrawPaper(1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddConflict(0, 1); err != nil {
		t.Fatalf("conflict on withdrawn paper: %v", err)
	}
	if err := s.RestorePaper(1); !errors.Is(err, ErrConflictSaturated) {
		t.Fatalf("restore of saturated paper: err = %v, want ErrConflictSaturated", err)
	}
	saturated := in.Clone()
	saturated.AddConflict(2, 0)
	if _, err := NewSession(saturated, SessionConfig{}); !errors.Is(err, ErrConflictSaturated) {
		t.Fatalf("NewSession on saturated instance: err = %v, want ErrConflictSaturated", err)
	}
}

// TestSessionWorkloadGuard: shrinking δr below the feasible floor is
// rejected before it can corrupt the session.
func TestSessionWorkloadGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	in := sessionInstance(rng, 20, 10, 8, 2) // min workload = 4
	s, err := NewSession(in.Clone(), SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetWorkload(3); !errors.Is(err, ErrInsufficientCapacity) {
		t.Fatalf("infeasible workload: err = %v, want ErrInsufficientCapacity", err)
	}
	if err := s.SetWorkload(0); err == nil {
		t.Fatal("non-positive workload accepted")
	}
	// Withdrawing papers lowers the demand enough for the smaller workload.
	for p := 0; p < 5; p++ {
		if err := s.WithdrawPaper(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SetWorkload(3); err != nil {
		t.Fatalf("feasible workload after withdrawals rejected: %v", err)
	}
	if _, err := s.Solve(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestSessionStageFallbackWarm: sessions on instances tight enough to need
// the stage-capacity fallback must still resolve warm with cold parity. The
// seed loop mirrors TestSDGAFallbackResolve: dense conflicts on indivisible
// workloads push tail stages into the fallback on a fraction of the seeds.
func TestSessionStageFallbackWarm(t *testing.T) {
	fallbacks := 0
	stageFallbackHook = func() { fallbacks++ }
	defer func() { stageFallbackHook = nil }()
	exercised := 0
	for seed := int64(0); seed < 300 && exercised < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := sessionInstance(rng, 6+rng.Intn(6), 3+rng.Intn(3), 4, 2)
		in.Workload = in.MinWorkload() + 1
		for p := 0; p < in.NumPapers(); p++ {
			if rng.Float64() < 0.5 {
				in.AddConflict(rng.Intn(in.NumReviewers()), p)
			}
		}
		warm, err := NewSession(in.Clone(), SessionConfig{})
		if err != nil {
			continue // saturated by the random conflicts: not this test's target
		}
		before := fallbacks
		if _, err := warm.Solve(context.Background()); err != nil {
			continue // stage-wise infeasible even with the fallback
		}
		// A benign edit that keeps the instance feasible: withdraw one paper.
		if err := warm.WithdrawPaper(rng.Intn(in.NumPapers())); err != nil {
			t.Fatalf("seed %d: withdraw: %v", seed, err)
		}
		warmA, err := warm.Resolve(context.Background())
		if err != nil {
			continue
		}
		if fallbacks > before {
			exercised++
		}
		validateSessionAssignment(t, warm, warmA)
		cold, err := NewSession(warm.Instance().Clone(), SessionConfig{})
		if err != nil {
			t.Fatalf("seed %d: cold session: %v", seed, err)
		}
		if err := cold.WithdrawPaper(firstWithdrawn(warm)); err != nil {
			t.Fatalf("seed %d: cold withdraw: %v", seed, err)
		}
		coldA, err := cold.Solve(context.Background())
		if err != nil {
			t.Fatalf("seed %d: cold solve failed where warm succeeded: %v", seed, err)
		}
		if ws, cs := scoreActive(warm, warmA), scoreActive(cold, coldA); math.Abs(ws-cs) > 1e-9 {
			t.Fatalf("seed %d: fallback parity: warm %v != cold %v", seed, ws, cs)
		}
	}
	if exercised == 0 {
		t.Fatal("no seed exercised the stage fallback; tighten the instances")
	}
}

// firstWithdrawn returns the index of the session's first withdrawn paper.
func firstWithdrawn(s *Session) int {
	for p := 0; p < s.Instance().NumPapers(); p++ {
		if !s.Active(p) {
			return p
		}
	}
	return -1
}

// TestSessionBatchedEditParity is the batched-edit correctness requirement:
// several edits (conflicts, withdrawals, workload changes, restores) are
// applied before a single warm Resolve, which must match a cold Solve of the
// identically edited instance to 1e-9. Shards is pinned above 1 so the
// sharded stage solve is exercised even on single-CPU runners.
func TestSessionBatchedEditParity(t *testing.T) {
	for _, cfg := range []struct {
		name string
		c    SessionConfig
	}{
		{"sdga-sharded", SessionConfig{Shards: 4}},
		{"sdga-sra-sharded", SessionConfig{Shards: 4, Refine: true, SRA: SRA{Omega: 3, MaxRounds: 20, Seed: 9, Shards: 4}}},
		{"sdga-serial", SessionConfig{Shards: 1}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(53))
			base := sessionInstance(rng, 36, 28, 10, 3)
			warm, err := NewSession(base.Clone(), cfg.c)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := warm.Solve(context.Background()); err != nil {
				t.Fatal(err)
			}
			editRng := rand.New(rand.NewSource(101))
			// Batch sizes come from a separate stream: replayEdits regenerates
			// the edit script from the edit seed alone, so batch-size draws
			// must not skew it.
			batchRng := rand.New(rand.NewSource(7))
			edits := 0
			for batch := 0; batch < 4; batch++ {
				// A batch of 2–5 edits before one warm resolve.
				n := 2 + batchRng.Intn(4)
				for k := 0; k < n; k++ {
					applyEdit(t, warm, editRng, edits)
					edits++
				}
				warmA, err := warm.Resolve(context.Background())
				if err != nil {
					t.Fatalf("batch %d: warm resolve: %v", batch, err)
				}
				cold := replayEdits(t, base, cfg.c, edits, 101)
				coldA, err := cold.Solve(context.Background())
				if err != nil {
					t.Fatalf("batch %d: cold solve: %v", batch, err)
				}
				ws, cs := scoreActive(warm, warmA), scoreActive(cold, coldA)
				if math.Abs(ws-cs) > 1e-9 {
					t.Fatalf("batch %d (%d edits): warm score %v != cold score %v", batch, edits, ws, cs)
				}
				validateSessionAssignment(t, warm, warmA)
			}
		})
	}
}

// TestSessionDriftSaturationSurfaces: conflicts added behind the session's
// back (out-of-band instance mutation) that saturate an active paper must
// surface ErrConflictSaturated from the next Resolve — never a panic, a
// late-stage transport error, or a silently confirmed stale assignment.
func TestSessionDriftSaturationSurfaces(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	base := sessionInstance(rng, 8, 6, 8, 3)
	s, err := NewSession(base.Clone(), SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Out-of-band: saturate paper 3 directly on the owned instance, leaving
	// only δp−1 eligible reviewers.
	inner := s.Instance()
	for r := 0; r < inner.NumReviewers()-inner.GroupSize+1; r++ {
		inner.AddConflict(r, 3)
	}
	for attempt := 0; attempt < 2; attempt++ {
		a, err := s.Resolve(context.Background())
		if !errors.Is(err, ErrConflictSaturated) {
			t.Fatalf("attempt %d: err = %v, want ErrConflictSaturated", attempt, err)
		}
		if a != nil {
			t.Fatalf("attempt %d: Resolve returned an assignment alongside the error", attempt)
		}
	}
	// A withdrawn saturated paper no longer blocks the session.
	if err := s.WithdrawPaper(3); err != nil {
		t.Fatal(err)
	}
	a, err := s.Resolve(context.Background())
	if err != nil {
		t.Fatalf("resolve after withdrawing the saturated paper: %v", err)
	}
	validateSessionAssignment(t, s, a)
}

// TestSessionBatchedEditParityRandomized sweeps random instances, SRA seeds
// and edit scripts: each batch applies four edits before a single warm
// Resolve, which must match a cold Solve of the identically edited instance
// to 1e-9 — with refinement enabled and the sharded stage solve forced on.
func TestSessionBatchedEditParityRandomized(t *testing.T) {
	fail := 0
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		base := sessionInstance(rng, 30+rng.Intn(20), 22+rng.Intn(14), 8+rng.Intn(6), 3)
		cfg := SessionConfig{Refine: true, SRA: SRA{Omega: 3, MaxRounds: 15, Seed: seed + 1}, Shards: 3}
		warm, err := NewSession(base.Clone(), cfg)
		if err != nil {
			continue
		}
		if _, err := warm.Solve(context.Background()); err != nil {
			continue
		}
		editRng := rand.New(rand.NewSource(1000 + seed))
		edits := 0
		for batch := 0; batch < 3; batch++ {
			for k := 0; k < 4; k++ {
				applyEdit(t, warm, editRng, edits)
				edits++
			}
			warmA, err := warm.Resolve(context.Background())
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			cold := replayEdits(t, base, cfg, edits, 1000+seed)
			coldA, err := cold.Solve(context.Background())
			if err != nil {
				t.Fatalf("seed %d cold: %v", seed, err)
			}
			if ws, cs := scoreActive(warm, warmA), scoreActive(cold, coldA); math.Abs(ws-cs) > 1e-9 {
				t.Errorf("seed %d batch %d: warm %v != cold %v", seed, batch, ws, cs)
				fail++
			}
		}
	}
	t.Logf("failures: %d", fail)
}
