package cra

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/flow"
)

// TestSDGATransportSolversAgree runs SDGA with the Dijkstra Transport and the
// legacy SPFA solver on random instances. Both must produce valid
// assignments; on single-stage instances — where the stage optimum is the
// final score — the scores must also agree. (On multi-stage instances equal
// stage optima can still pick tie-equivalent different reviewers, which
// legitimately diverges later stages, so only validity is required there.)
func TestSDGATransportSolversAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		singleStage := rng.Intn(2) == 0
		delta := 1
		if !singleStage {
			delta = 2 + rng.Intn(2)
		}
		in := randomConference(rng, 4+rng.Intn(12), 4+rng.Intn(8), 3+rng.Intn(6), delta)
		a1, err1 := SDGA{}.Assign(in)
		a2, err2 := SDGA{Transport: flow.Legacy}.Assign(in)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		work := *in
		work.Workload = in.MinWorkload()
		if work.ValidateAssignment(a1) != nil || work.ValidateAssignment(a2) != nil {
			return false
		}
		if singleStage {
			return math.Abs(in.AssignmentScore(a1)-in.AssignmentScore(a2)) < 1e-6
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSDGAFallbackResolve forces the stage-capacity fallback (workload
// headroom + conflicts that make the equal per-stage partition infeasible)
// and checks that the incremental Resolve path yields valid, complete,
// deterministic assignments wherever the legacy full re-solve does. (Exact
// score equality across solvers cannot be asserted here: equal stage optima
// may pick tie-equivalent different reviewers, which legitimately diverges
// later stages; per-stage objective parity is covered by the flow package's
// Resolve tests.)
func TestSDGAFallbackResolve(t *testing.T) {
	fallbacks := 0
	stageFallbackHook = func() { fallbacks++ }
	defer func() { stageFallbackHook = nil }()
	trials := 0
	recovered := 0
	for seed := int64(0); seed < 1000; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := randomConference(rng, 6+rng.Intn(6), 3+rng.Intn(3), 4, 2)
		in.Workload = in.MinWorkload() + 1
		// Dense conflicts push tail stages into the fallback.
		for p := 0; p < in.NumPapers(); p++ {
			if rng.Float64() < 0.5 {
				in.AddConflict(rng.Intn(in.NumReviewers()), p)
			}
		}
		before := fallbacks
		a1, err1 := SDGA{}.Assign(in)
		dijkstraFellBack := fallbacks > before
		a2, err2 := SDGA{Transport: flow.Legacy}.Assign(in)
		// Solvers may break stage ties differently, and on instances this
		// tight a tie decides whether a later stage stays feasible at all —
		// so asymmetric errors are legitimate; only successes are compared.
		if err2 == nil {
			if err := in.ValidateAssignment(a2); err != nil {
				t.Fatalf("seed %d: legacy assignment invalid: %v", seed, err)
			}
		}
		if err1 != nil {
			continue
		}
		if dijkstraFellBack {
			recovered++
		}
		trials++
		if err := in.ValidateAssignment(a1); err != nil {
			t.Fatalf("seed %d: dijkstra assignment invalid: %v", seed, err)
		}
		again, err := SDGA{}.Assign(in)
		if err != nil {
			t.Fatalf("seed %d: rerun failed: %v", seed, err)
		}
		if math.Abs(in.AssignmentScore(a1)-in.AssignmentScore(again)) > 1e-12 {
			t.Fatalf("seed %d: SDGA with Resolve fallback is nondeterministic", seed)
		}
	}
	if trials == 0 {
		t.Fatal("no feasible instances drawn")
	}
	if fallbacks == 0 {
		t.Fatal("the stage-capacity fallback was never exercised")
	}
	if recovered == 0 {
		t.Fatal("no instance recovered through the Resolve fallback")
	}
}

// TestPairILPTransportSolversAgree checks that the ARAP optimum is identical
// across the Dijkstra solver, the legacy SPFA solver and the genuine integer
// program (which validates the total-unimodularity shortcut and exercises
// internal/ilp's transport-seeded incumbent).
func TestPairILPTransportSolversAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomConference(rng, 2+rng.Intn(3), 4+rng.Intn(3), 2+rng.Intn(4), 2)
		objectives := make([]float64, 0, 3)
		for _, alg := range []Algorithm{
			PairILP{},
			PairILP{Transport: flow.Legacy},
			PairILP{ViaILP: true},
		} {
			a, err := alg.Assign(in)
			if err != nil {
				return false
			}
			objectives = append(objectives, PairObjective(in, a))
		}
		return math.Abs(objectives[0]-objectives[1]) < 1e-9 &&
			math.Abs(objectives[0]-objectives[2]) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
