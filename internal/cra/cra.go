// Package cra implements the Conference Reviewer Assignment algorithms of
// Section 4 of the paper and the baselines used in its evaluation
// (Section 5.2):
//
//   - Greedy         — the pairwise greedy of Long et al. (1/3-approximation)
//   - BRGG           — Best Reviewer Group Greedy (best group per iteration)
//   - SDGA           — Stage Deepening Greedy Algorithm (the paper's
//     1/2 ⋯ (1−1/e)-approximation, Section 4.2/4.3)
//   - SRA            — Stochastic Refinement (Section 4.4), plus a classic
//     Local Search refiner for comparison (Figure 12)
//   - StableMatching — capacitated Gale–Shapley baseline (SM)
//   - PairILP        — exact optimiser of the pair-additive ARAP objective
//     (the "ILP" baseline of the experiments)
//
// All algorithms consume a core.Instance and produce a core.Assignment that
// satisfies the WGRAP constraints of Definition 3.
package cra

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
)

// Algorithm computes a full conference assignment.
type Algorithm interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Assign computes an assignment satisfying the instance constraints.
	// It is AssignContext with context.Background().
	Assign(in *core.Instance) (*core.Assignment, error)
	// AssignContext computes an assignment and aborts early when ctx is
	// cancelled or its deadline passes, returning the context's error.
	AssignContext(ctx context.Context, in *core.Instance) (*core.Assignment, error)
}

// Refiner improves an existing assignment without violating constraints.
type Refiner interface {
	// Name identifies the refiner in experiment output.
	Name() string
	// Refine returns an assignment with a coverage score at least as high as
	// the input. The input assignment is not modified. It is RefineContext
	// with context.Background().
	Refine(in *core.Instance, a *core.Assignment) (*core.Assignment, error)
	// RefineContext refines under a context. Refiners are anytime
	// algorithms: when ctx is done they stop and return the best assignment
	// found so far (never worse than the input) rather than an error.
	RefineContext(ctx context.Context, in *core.Instance, a *core.Assignment) (*core.Assignment, error)
}

// ErrInsufficientCapacity is returned when the reviewer pool cannot possibly
// satisfy the group size constraint of every paper.
var ErrInsufficientCapacity = errors.New("cra: insufficient reviewer capacity")

// prepare validates the instance and returns the effective workload (callers
// may leave Workload at zero to mean "minimum balanced workload", the default
// setting of the experiments).
func prepare(in *core.Instance) (*core.Instance, error) {
	work := in
	if in.Workload == 0 {
		clone := *in
		clone.Workload = in.MinWorkload()
		work = &clone
	}
	if err := work.Validate(); err != nil {
		return nil, fmt.Errorf("cra: %w", err)
	}
	return work, nil
}

// remainingCapacity returns δr minus the current load for every reviewer.
func remainingCapacity(in *core.Instance, a *core.Assignment) []int {
	loads := a.ReviewerLoads(in.NumReviewers())
	rem := make([]int, len(loads))
	for r, l := range loads {
		rem[r] = in.Workload - l
	}
	return rem
}

// feasiblePair reports whether reviewer r can still be added to paper p.
func feasiblePair(in *core.Instance, a *core.Assignment, rem []int, r, p int) bool {
	return rem[r] > 0 &&
		len(a.Groups[p]) < in.GroupSize &&
		!a.Contains(p, r) &&
		!in.IsConflict(r, p)
}

// WithRefiner composes an assignment algorithm with a refinement step (e.g.
// SDGA followed by stochastic refinement, the paper's SDGA-SRA).
type WithRefiner struct {
	Base    Algorithm
	Refiner Refiner
}

// Name implements Algorithm.
func (w WithRefiner) Name() string { return w.Base.Name() + "-" + w.Refiner.Name() }

// Assign implements Algorithm.
func (w WithRefiner) Assign(in *core.Instance) (*core.Assignment, error) {
	return w.AssignContext(context.Background(), in)
}

// AssignContext implements Algorithm: the base algorithm runs under ctx and
// whatever time remains is spent refining (the refiner stops gracefully at
// the deadline).
func (w WithRefiner) AssignContext(ctx context.Context, in *core.Instance) (*core.Assignment, error) {
	a, err := w.Base.AssignContext(ctx, in)
	if err != nil {
		return nil, err
	}
	return w.Refiner.RefineContext(ctx, in, a)
}
