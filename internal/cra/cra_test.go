package cra

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/flow"
)

// sectionFourInstance is the 3×3 example of Section 4.2 where greedy
// assignment of r1 to two papers in the first stage hurts the total score.
func sectionFourInstance() *core.Instance {
	reviewers := []core.Reviewer{
		{ID: "r1", Topics: core.Vector{0.1, 0.5, 0.4}},
		{ID: "r2", Topics: core.Vector{1, 0, 0}},
		{ID: "r3", Topics: core.Vector{0, 1, 0}},
	}
	papers := []core.Paper{
		{ID: "p1", Topics: core.Vector{0.6, 0, 0.4}},
		{ID: "p2", Topics: core.Vector{0.5, 0.5, 0}},
		{ID: "p3", Topics: core.Vector{0.5, 0.5, 0}},
	}
	return core.NewInstance(papers, reviewers, 2, 2)
}

func randomConference(rng *rand.Rand, p, r, t, delta int) *core.Instance {
	papers := make([]core.Paper, p)
	for i := range papers {
		papers[i] = core.Paper{Topics: randVec(rng, t)}
	}
	reviewers := make([]core.Reviewer, r)
	for i := range reviewers {
		reviewers[i] = core.Reviewer{Topics: randVec(rng, t)}
	}
	in := core.NewInstance(papers, reviewers, delta, 0)
	in.Workload = in.MinWorkload()
	return in
}

func randVec(rng *rand.Rand, t int) core.Vector {
	v := make(core.Vector, t)
	for i := range v {
		v[i] = rng.Float64()
	}
	return v.Normalized()
}

func allAlgorithms() []Algorithm {
	return []Algorithm{
		StableMatching{},
		PairILP{},
		PairILP{Transport: flow.Legacy},
		PairILP{ViaILP: true},
		Greedy{},
		Greedy{Naive: true},
		BRGG{},
		SDGA{},
		SDGA{Transport: flow.Legacy},
		SDGA{Solver: StageHungarian},
		WithRefiner{Base: SDGA{}, Refiner: SRA{Omega: 3, MaxRounds: 20}},
		WithRefiner{Base: SDGA{}, Refiner: LocalSearch{MaxMoves: 500, Patience: 200}},
	}
}

func TestAllAlgorithmsProduceValidAssignments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := randomConference(rng, 20, 8, 6, 3)
	for _, alg := range allAlgorithms() {
		a, err := alg.Assign(in)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		work := *in
		work.Workload = in.MinWorkload()
		if err := work.ValidateAssignment(a); err != nil {
			t.Errorf("%s produced an invalid assignment: %v", alg.Name(), err)
		}
	}
}

func TestAlgorithmsRespectConflicts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := randomConference(rng, 10, 8, 5, 2)
	in.Workload = in.MinWorkload() + 1 // headroom so conflicts stay feasible
	for p := 0; p < in.NumPapers(); p += 2 {
		in.AddConflict(p%in.NumReviewers(), p)
	}
	for _, alg := range allAlgorithms() {
		a, err := alg.Assign(in)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		for p, g := range a.Groups {
			for _, r := range g {
				if in.IsConflict(r, p) {
					t.Errorf("%s assigned conflicting pair (r%d, p%d)", alg.Name(), r, p)
				}
			}
		}
	}
}

func TestSDGABeatsNaiveFirstStageGreedy(t *testing.T) {
	in := sectionFourInstance()
	sdga, err := SDGA{}.Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	score := in.AssignmentScore(sdga)
	// The optimum of this instance assigns r1 to p1 (covering topic t3) and
	// spreads r2/r3 over the remaining slots; SDGA must reach at least the
	// greedy score and in this construction strictly beat the "spend r1
	// early" assignment of Section 4.2, which scores 0.6+1.0+1.0 = 2.6.
	if score < 2.6-1e-9 {
		t.Fatalf("SDGA score = %v, want >= 2.6", score)
	}
}

// With δp = 1 the whole assignment is a single Stage-WGRAP, so the two stage
// solvers must return exactly the same optimal value. For δp > 1 the stage
// optima may be non-unique, in which case the downstream stages (and hence
// the total scores) can legitimately differ; there the test only requires
// both results to be valid assignments.
func TestSDGAStageSolversAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		singleStage := rng.Intn(2) == 0
		delta := 1
		if !singleStage {
			delta = 2 + rng.Intn(2)
		}
		in := randomConference(rng, 4+rng.Intn(10), 4+rng.Intn(6), 3+rng.Intn(6), delta)
		a1, err1 := SDGA{Solver: StageFlow}.Assign(in)
		a2, err2 := SDGA{Solver: StageHungarian}.Assign(in)
		if err1 != nil || err2 != nil {
			return false
		}
		work := *in
		work.Workload = in.MinWorkload()
		if work.ValidateAssignment(a1) != nil || work.ValidateAssignment(a2) != nil {
			return false
		}
		if singleStage {
			return math.Abs(in.AssignmentScore(a1)-in.AssignmentScore(a2)) < 1e-6
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyHeapMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomConference(rng, 3+rng.Intn(10), 4+rng.Intn(6), 2+rng.Intn(6), 2)
		a1, err1 := Greedy{}.Assign(in)
		a2, err2 := Greedy{Naive: true}.Assign(in)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(in.AssignmentScore(a1)-in.AssignmentScore(a2)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// exhaustive computes the optimal WGRAP score on a tiny instance.
func exhaustive(in *core.Instance) float64 {
	P := in.NumPapers()
	best := -1.0
	var groups [][]int
	var gen func(start int, cur []int)
	gen = func(start int, cur []int) {
		if len(cur) == in.GroupSize {
			groups = append(groups, append([]int(nil), cur...))
			return
		}
		for r := start; r < in.NumReviewers(); r++ {
			gen(r+1, append(cur, r))
		}
	}
	gen(0, nil)
	loads := make([]int, in.NumReviewers())
	var rec func(p int, score float64)
	rec = func(p int, score float64) {
		if p == P {
			if score > best {
				best = score
			}
			return
		}
		for _, g := range groups {
			ok := true
			for _, r := range g {
				if loads[r] >= in.Workload || in.IsConflict(r, p) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for _, r := range g {
				loads[r]++
			}
			rec(p+1, score+in.GroupScore(p, g))
			for _, r := range g {
				loads[r]--
			}
		}
	}
	rec(0, 0)
	return best
}

// Property (Theorem 2): SDGA achieves at least half the optimal score on
// small random instances; SDGA-SRA only improves it.
func TestSDGAApproximationBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomConference(rng, 2+rng.Intn(3), 4+rng.Intn(2), 2+rng.Intn(4), 2)
		opt := exhaustive(in)
		if opt <= 0 {
			return true
		}
		a, err := SDGA{}.Assign(in)
		if err != nil {
			return false
		}
		score := in.AssignmentScore(a)
		if score < 0.5*opt-1e-9 {
			return false
		}
		refined, err := (SRA{Omega: 3, MaxRounds: 30}).Refine(in, a)
		if err != nil {
			return false
		}
		return in.AssignmentScore(refined) >= score-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Greedy achieves at least 1/3 of the optimum (its proven bound).
func TestGreedyApproximationBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomConference(rng, 2+rng.Intn(3), 4+rng.Intn(2), 2+rng.Intn(4), 2)
		opt := exhaustive(in)
		if opt <= 0 {
			return true
		}
		a, err := Greedy{}.Assign(in)
		if err != nil {
			return false
		}
		return in.AssignmentScore(a) >= opt/3-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPairILPMaximisesPairObjective(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomConference(rng, 2+rng.Intn(3), 4+rng.Intn(3), 2+rng.Intn(4), 2)
		a, err := PairILP{}.Assign(in)
		if err != nil {
			return false
		}
		got := PairObjective(in, a)
		// Compare against every other algorithm's pair objective: the exact
		// optimiser must dominate them all.
		for _, alg := range []Algorithm{Greedy{}, SDGA{}, StableMatching{}} {
			b, err := alg.Assign(in)
			if err != nil {
				return false
			}
			if PairObjective(in, b) > got+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// The deferred-acceptance phase of the SM baseline must be stable: no
// reviewer-paper pair exists where both would prefer each other over someone
// they currently hold. (The subsequent quota-completion step can break strict
// stability because WGRAP's group-size constraint is hard.)
func TestStableMatchingPhaseHasNoBlockingPairs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomConference(rng, 3+rng.Intn(8), 4+rng.Intn(6), 3+rng.Intn(5), 2)
		in.Workload = in.MinWorkload()
		a, err := deferredAcceptance(context.Background(), engine.New(in))
		if err != nil {
			return false
		}
		return len(BlockingPairs(in, a)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestStableMatchingAssignFillsQuotas(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	in := randomConference(rng, 10, 5, 4, 2)
	a, err := StableMatching{}.Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	work := *in
	work.Workload = in.MinWorkload()
	if err := work.ValidateAssignment(a); err != nil {
		t.Fatalf("SM output invalid: %v", err)
	}
}

func TestSRANeverDecreasesScore(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomConference(rng, 4+rng.Intn(10), 5+rng.Intn(6), 3+rng.Intn(6), 2+rng.Intn(2))
		base, err := SDGA{}.Assign(in)
		if err != nil {
			return false
		}
		for _, model := range []ProbabilityModel{ProbCoverageDecay, ProbCoverage, ProbUniform} {
			refined, err := (SRA{Omega: 3, MaxRounds: 15, Model: model, Seed: seed}).Refine(in, base)
			if err != nil {
				return false
			}
			work := *in
			work.Workload = in.MinWorkload()
			if work.ValidateAssignment(refined) != nil {
				return false
			}
			if in.AssignmentScore(refined) < in.AssignmentScore(base)-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSRARefineDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := randomConference(rng, 8, 6, 5, 2)
	base, err := SDGA{}.Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := base.Clone()
	if _, err := (SRA{Omega: 3, MaxRounds: 10}).Refine(in, base); err != nil {
		t.Fatal(err)
	}
	for p := range snapshot.Groups {
		if len(snapshot.Groups[p]) != len(base.Groups[p]) {
			t.Fatal("Refine modified its input assignment")
		}
		for i := range snapshot.Groups[p] {
			if snapshot.Groups[p][i] != base.Groups[p][i] {
				t.Fatal("Refine modified its input assignment")
			}
		}
	}
}

func TestSRAOnRoundCallback(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := randomConference(rng, 10, 6, 5, 2)
	base, err := SDGA{}.Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	var rounds int
	var lastScore float64
	refiner := SRA{Omega: 3, MaxRounds: 12}
	refiner.OnRound = func(round int, best float64, _ time.Duration) {
		rounds = round
		if best < lastScore-1e-12 {
			t.Fatal("best score decreased across rounds")
		}
		lastScore = best
	}
	if _, err := refiner.Refine(in, base); err != nil {
		t.Fatal(err)
	}
	if rounds == 0 {
		t.Fatal("OnRound was never called")
	}
}

func TestLocalSearchNeverDecreasesScore(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := randomConference(rng, 12, 8, 6, 3)
	base, err := Greedy{}.Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := (LocalSearch{MaxMoves: 2000, Patience: 500}).Refine(in, base)
	if err != nil {
		t.Fatal(err)
	}
	work := *in
	work.Workload = in.MinWorkload()
	if err := work.ValidateAssignment(refined); err != nil {
		t.Fatalf("local search broke feasibility: %v", err)
	}
	if in.AssignmentScore(refined) < in.AssignmentScore(base)-1e-9 {
		t.Fatal("local search decreased the score")
	}
}

func TestWithRefinerName(t *testing.T) {
	alg := WithRefiner{Base: SDGA{}, Refiner: SRA{}}
	if alg.Name() != "SDGA-SRA" {
		t.Fatalf("Name = %q", alg.Name())
	}
}

func TestPrepareDefaultsWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	in := randomConference(rng, 10, 5, 4, 2)
	in.Workload = 0
	a, err := SDGA{}.Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	loads := a.ReviewerLoads(in.NumReviewers())
	min := in.MinWorkload()
	for r, l := range loads {
		if l > min {
			t.Fatalf("reviewer %d load %d exceeds minimum workload %d", r, l, min)
		}
	}
}

func TestInvalidInstanceRejected(t *testing.T) {
	in := core.NewInstance(nil, nil, 2, 2)
	for _, alg := range []Algorithm{Greedy{}, SDGA{}, BRGG{}, StableMatching{}, PairILP{}} {
		if _, err := alg.Assign(in); err == nil {
			t.Errorf("%s accepted an empty instance", alg.Name())
		}
	}
}

// --- Regression seeds: previously failing quick-check seeds, pinned so any
// --- regression surfaces with full detail (folded in from the old scratch
// --- debug tests).

func TestRegressionSeedSDGASolvers(t *testing.T) {
	seed := int64(8687629866177144313)
	rng := rand.New(rand.NewSource(seed))
	in := randomConference(rng, 4+rng.Intn(10), 4+rng.Intn(6), 3+rng.Intn(6), 2+rng.Intn(2))
	a1, err1 := SDGA{Solver: StageFlow}.Assign(in)
	a2, err2 := SDGA{Solver: StageHungarian}.Assign(in)
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v %v", err1, err2)
	}
	work := *in
	work.Workload = in.MinWorkload()
	for name, a := range map[string]*core.Assignment{"flow": a1, "hungarian": a2} {
		if err := work.ValidateAssignment(a); err != nil {
			t.Errorf("%s: invalid assignment: %v", name, err)
		}
	}
}

func TestRegressionSeedSRA(t *testing.T) {
	seed := int64(6659235318012465962)
	rng := rand.New(rand.NewSource(seed))
	in := randomConference(rng, 4+rng.Intn(10), 5+rng.Intn(6), 3+rng.Intn(6), 2+rng.Intn(2))
	base, err := SDGA{}.Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []ProbabilityModel{ProbCoverageDecay, ProbCoverage, ProbUniform} {
		refined, err := (SRA{Omega: 3, MaxRounds: 15, Model: model, Seed: seed}).Refine(in, base)
		if err != nil {
			t.Fatalf("model %v: %v", model, err)
		}
		work := *in
		work.Workload = in.MinWorkload()
		if err := work.ValidateAssignment(refined); err != nil {
			t.Errorf("model %v: invalid: %v", model, err)
		}
		if in.AssignmentScore(refined) < in.AssignmentScore(base)-1e-9 {
			t.Errorf("model %v: score decreased", model)
		}
	}
}

func TestRegressionSeedGreedy(t *testing.T) {
	seed := int64(284869796476506422)
	rng := rand.New(rand.NewSource(seed))
	in := randomConference(rng, 3+rng.Intn(10), 4+rng.Intn(6), 2+rng.Intn(6), 2)
	a1, err1 := Greedy{}.Assign(in)
	a2, err2 := Greedy{Naive: true}.Assign(in)
	if err1 != nil || err2 != nil {
		t.Fatalf("errs: %v %v", err1, err2)
	}
	if s1, s2 := in.AssignmentScore(a1), in.AssignmentScore(a2); math.Abs(s1-s2) > 1e-9 {
		t.Errorf("heap score %v != naive score %v (the two variants must make identical choices)", s1, s2)
	}
}
