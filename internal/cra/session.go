package cra

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/flow"
)

// ErrConflictSaturated is returned when conflicts of interest leave an
// active paper with fewer than δp eligible reviewers, so no feasible
// assignment can exist for it.
var ErrConflictSaturated = errors.New("cra: conflicts leave a paper with fewer candidates than the group size")

// SessionConfig configures a long-lived solver session.
type SessionConfig struct {
	// Refine runs the stochastic refinement after SDGA (the paper's SDGA-SRA
	// pipeline). Off = construction only.
	Refine bool
	// SRA parameterises the refinement (defaults are applied internally:
	// Omega 10, Lambda 0.1, MaxRounds 1000, Seed 1).
	SRA SRA
	// Shards bounds the goroutines each stage transport uses to load and
	// seed its instance, sharded across papers (0 = GOMAXPROCS, 1 = serial;
	// see cra.SDGA.Shards). The solved assignment is identical for every
	// value.
	Shards int
	// CandidateCap, when positive, restricts every stage (and the
	// refinement's pair scores and completions) to the top-k candidate
	// reviewers per paper — the sparse solve path, see SDGA.CandidateCap.
	// Candidate lists depend only on topic vectors, so they survive every
	// session edit except reviewer additions (a structural rebuild
	// recomputes them). 0 keeps the exact dense path.
	CandidateCap int
	// OnConstruct, when set, receives a private copy of the construction
	// (SDGA) assignment before refinement starts.
	OnConstruct func(a *core.Assignment)
}

// Session is a long-lived SDGA(-SRA) solver bound to one instance. It owns
// every piece of reusable hot state — the gain oracle, one profit matrix and
// one transportation solver per SDGA stage, the refinement's pair-score
// matrix and completion scratch — and supports incremental instance edits
// followed by warm re-solves:
//
//   - Solve computes the assignment from scratch (and records per-stage
//     state);
//   - AddConflict / WithdrawPaper / RestorePaper / AddReviewer / SetWorkload
//     edit the instance and mark the affected state dirty;
//   - Resolve re-solves warm: profit-matrix rows are re-filled only for
//     dirty papers, each stage's transportation re-solves through
//     Transport.ResolveRows from the retained flow and duals, and papers
//     whose stage choice drifts are propagated as dirty into later stages.
//
// Resolve replays the exact solve pipeline (same stage structure, same
// refinement seed), so on instances whose stage optima are unique — true
// with probability one for continuous random scores — it returns the same
// assignment a cold Solve of the edited instance would, only faster.
//
// A Session is not safe for concurrent use; callers serialise access (the
// public wgrap.Solver wraps it in a mutex).
type Session struct {
	in  *core.Instance // owned by the session
	eng *engine.Oracle
	cfg SessionConfig

	withdrawn []bool
	activeN   int
	// conflictN[p] counts paper p's conflicts, kept incrementally so the
	// saturation check on every edit is O(1) instead of a conflict-set scan.
	conflictN []int

	dirty      map[int]struct{}
	structural bool // dimensions or large-scale state changed: rebuild everything
	capsDirty  bool // only capacities changed (workload edit)
	version    uint64

	stages []*sessionStage

	// Refinement state: pair scores depend only on topic vectors, so the
	// matrix survives every edit except reviewer additions.
	pairs      engine.Matrix
	pairsValid bool
	fill       engine.Matrix
	sraTr      flow.Transport

	// cands holds the per-paper candidate reviewers of the sparse solve path
	// (nil when CandidateCap is off); rebuilt on structural resolves.
	cands [][]int32

	// Reused replay scratch.
	groupVecs []core.Vector
	rem       []int
	need      []int
	caps      []int
	rowDirty  []bool
	dirtyList []int

	last *core.Assignment
}

// sessionStage is the retained state of one SDGA stage.
type sessionStage struct {
	m        engine.Matrix
	tr       flow.Transport
	perPaper []int // chosen reviewer per paper (-1 for withdrawn papers)
}

// NewSession builds a session around the instance, taking ownership of it:
// the caller must not mutate in afterwards (wgrap clones on behalf of its
// callers). The instance's Workload must already be resolved (non-zero).
func NewSession(in *core.Instance, cfg SessionConfig) (*Session, error) {
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("cra: %w", err)
	}
	s := &Session{
		in:         in,
		eng:        engine.New(in),
		cfg:        cfg,
		withdrawn:  make([]bool, in.NumPapers()),
		activeN:    in.NumPapers(),
		dirty:      make(map[int]struct{}),
		structural: true,
		version:    in.Version(),
	}
	// Conflict saturation is not part of core.Validate (it is a solver-level
	// concern): detect it here so sessions fail with a typed error up front
	// instead of a late transport infeasibility. The per-paper counts stay
	// on the session and are maintained incrementally by AddConflict.
	s.conflictN = make([]int, in.NumPapers())
	for _, c := range in.Conflicts() {
		if c.Paper >= 0 && c.Paper < in.NumPapers() {
			s.conflictN[c.Paper]++
		}
	}
	for p, n := range s.conflictN {
		if in.NumReviewers()-n < in.GroupSize {
			return nil, fmt.Errorf("%w (paper %d)", ErrConflictSaturated, p)
		}
	}
	return s, nil
}

// eligible returns how many reviewers may serve paper p, from the
// incrementally maintained conflict counts.
func (s *Session) eligible(p int) int { return s.in.NumReviewers() - s.conflictN[p] }

// Instance returns the session's instance. Callers must treat it as
// read-only; edits go through the session mutators.
func (s *Session) Instance() *core.Instance { return s.in }

// Active reports whether paper p participates in the assignment (i.e. has
// not been withdrawn).
func (s *Session) Active(p int) bool { return !s.withdrawn[p] }

// ActivePapers returns the number of non-withdrawn papers.
func (s *Session) ActivePapers() int { return s.activeN }

// markDirty records paper p as needing a profit-row refill in every stage.
func (s *Session) markDirty(p int) { s.dirty[p] = struct{}{} }

// AddConflict registers a conflict of interest between reviewer r and paper
// p and marks the paper dirty. It rejects edits that would leave an active
// paper without δp eligible reviewers with ErrConflictSaturated.
func (s *Session) AddConflict(r, p int) error {
	if r < 0 || r >= s.in.NumReviewers() || p < 0 || p >= s.in.NumPapers() {
		return fmt.Errorf("cra: conflict (%d,%d) out of range", r, p)
	}
	if s.in.IsConflict(r, p) {
		return nil
	}
	if !s.withdrawn[p] && s.eligible(p)-1 < s.in.GroupSize {
		return fmt.Errorf("%w (paper %d)", ErrConflictSaturated, p)
	}
	s.in.AddConflict(r, p)
	s.conflictN[p]++
	s.markDirty(p)
	s.version = s.in.Version()
	return nil
}

// WithdrawPaper removes paper p from the workload: it keeps its index but
// receives no reviewers until restored.
func (s *Session) WithdrawPaper(p int) error {
	if p < 0 || p >= s.in.NumPapers() {
		return fmt.Errorf("cra: paper %d out of range", p)
	}
	if s.withdrawn[p] {
		return nil
	}
	s.withdrawn[p] = true
	s.activeN--
	s.markDirty(p)
	return nil
}

// RestorePaper re-activates a withdrawn paper. It fails with
// ErrConflictSaturated when conflicts added in the meantime leave the paper
// without δp eligible reviewers, and with ErrInsufficientCapacity when the
// reviewer pool cannot absorb the extra load.
func (s *Session) RestorePaper(p int) error {
	if p < 0 || p >= s.in.NumPapers() {
		return fmt.Errorf("cra: paper %d out of range", p)
	}
	if !s.withdrawn[p] {
		return nil
	}
	if s.eligible(p) < s.in.GroupSize {
		return fmt.Errorf("%w (paper %d)", ErrConflictSaturated, p)
	}
	if s.in.NumReviewers()*s.in.Workload < (s.activeN+1)*s.in.GroupSize {
		return ErrInsufficientCapacity
	}
	s.withdrawn[p] = false
	s.activeN++
	s.markDirty(p)
	return nil
}

// AddReviewer appends a reviewer to the pool and returns its index. The
// edit is structural (every profit matrix gains a column), so the next
// Resolve rebuilds the warm state from scratch.
func (s *Session) AddReviewer(r core.Reviewer) (int, error) {
	if t := s.in.NumTopics(); r.Topics.Dim() != t {
		return -1, fmt.Errorf("cra: reviewer has %d topics, want %d", r.Topics.Dim(), t)
	}
	idx := s.in.AddReviewer(r)
	s.structural = true
	s.pairsValid = false
	s.version = s.in.Version()
	return idx, nil
}

// SetWorkload changes the per-reviewer workload δr. Profit matrices are
// unaffected (gains do not depend on δr), so the next Resolve only reworks
// the transportation capacities.
func (s *Session) SetWorkload(workload int) error {
	if workload <= 0 {
		return fmt.Errorf("cra: workload δr must be positive, got %d", workload)
	}
	if s.in.NumReviewers()*workload < s.activeN*s.in.GroupSize {
		return ErrInsufficientCapacity
	}
	if workload == s.in.Workload {
		return nil
	}
	s.in.Workload = workload
	s.capsDirty = true
	return nil
}

// Solve computes the assignment from a cold start, recording the per-stage
// state later Resolve calls warm-start from.
func (s *Session) Solve(ctx context.Context) (*core.Assignment, error) {
	s.structural = true
	return s.resolve(ctx)
}

// Resolve re-solves after the pending edits, warm: only dirty profit rows
// are re-filled and each stage's transportation re-solves from its retained
// flow and duals. With no pending edits it returns a copy of the recorded
// assignment without re-running anything; without a preceding Solve it
// solves cold.
func (s *Session) Resolve(ctx context.Context) (*core.Assignment, error) {
	return s.resolve(ctx)
}

// Assignment returns a copy of the last solved assignment, or nil before the
// first Solve. Withdrawn papers have empty groups.
func (s *Session) Assignment() *core.Assignment {
	if s.last == nil {
		return nil
	}
	return s.last.Clone()
}

func (s *Session) resolve(ctx context.Context) (*core.Assignment, error) {
	in := s.in
	P, R := in.NumPapers(), in.NumReviewers()
	if s.version != in.Version() {
		// The instance drifted outside the session mutators (defensive: the
		// session owns its instance, but a stale warm state would silently
		// corrupt results, so invalidate everything). Checked before the
		// no-edit fast path — out-of-band edits must never confirm a stale
		// assignment.
		s.structural = true
		s.version = in.Version()
		s.conflictN = growInts(s.conflictN, P)
		clear(s.conflictN)
		for _, c := range in.Conflicts() {
			if c.Paper >= 0 && c.Paper < P {
				s.conflictN[c.Paper]++
			}
		}
	}
	// Conflict saturation can only arise here through drift (the session's
	// own mutators reject saturating edits up front), but an active paper
	// with fewer than δp eligible reviewers would otherwise surface as a
	// generic transport infeasibility in whichever stage first runs out of
	// candidates — after the earlier stages already ran. Fail fast with the
	// precise typed error instead.
	for p := 0; p < P; p++ {
		if !s.withdrawn[p] && s.eligible(p) < in.GroupSize {
			return nil, fmt.Errorf("%w (paper %d)", ErrConflictSaturated, p)
		}
	}
	if !s.structural && !s.capsDirty && len(s.dirty) == 0 && s.last != nil {
		// No pending edits: the recorded assignment is still the solution of
		// the current instance (every solve path is deterministic for a
		// fixed seed), so confirm it without re-running anything.
		return s.last.Clone(), nil
	}
	if s.stages == nil {
		s.stages = make([]*sessionStage, in.GroupSize)
		for i := range s.stages {
			s.stages[i] = &sessionStage{}
		}
	}
	workers := shardWorkers(s.cfg.Shards)
	for _, st := range s.stages {
		st.tr.Workers = workers
	}
	// The refinement transport follows the session-wide setting unless the
	// SRA config pins its own shard count (mirroring what the same SRA value
	// would do through SRA.RefineContext).
	if s.cfg.SRA.Shards != 0 {
		s.sraTr.Workers = shardWorkers(s.cfg.SRA.Shards)
	} else {
		s.sraTr.Workers = workers
	}
	structural := s.structural || s.last == nil
	if structural {
		// Candidate lists depend on the topic vectors and the pool size, both
		// of which only change through structural edits; the pair-score matrix
		// retains the candidate slices, so it must be rebuilt alongside them.
		if k := effectiveCandidateCap(in, s.cfg.CandidateCap); k > 0 {
			s.cands = buildCandidates(in, k, workers)
			s.pairsValid = false
		} else {
			s.cands = nil
		}
	}

	// Replay scratch.
	if s.groupVecs == nil {
		s.groupVecs = make([]core.Vector, P)
		for p := range s.groupVecs {
			s.groupVecs[p] = make(core.Vector, in.NumTopics())
		}
	}
	for p := range s.groupVecs {
		clear(s.groupVecs[p])
	}
	s.rem = growInts(s.rem, R)
	for r := range s.rem {
		s.rem[r] = in.Workload
	}
	s.need = growInts(s.need, P)
	for p := 0; p < P; p++ {
		if s.withdrawn[p] {
			s.need[p] = 0
		} else {
			s.need[p] = 1
		}
	}
	s.caps = growInts(s.caps, R)
	s.rowDirty = growBools(s.rowDirty, P)
	clear(s.rowDirty)
	s.dirtyList = s.dirtyList[:0]
	for p := range s.dirty {
		s.rowDirty[p] = true
		s.dirtyList = append(s.dirtyList, p)
	}
	sort.Ints(s.dirtyList)

	a := core.NewAssignment(P)
	for stage := 0; stage < in.GroupSize; stage++ {
		if err := s.runStage(ctx, stage, a, structural); err != nil {
			// The abort may have committed some stages' recorded choices but
			// not others', so the drift bookkeeping no longer describes a
			// complete run; invalidate the warm state — the next resolve
			// rebuilds cold (still reusing the buffers) instead of silently
			// solving on stale profit rows.
			s.structural = true
			return nil, fmt.Errorf("cra: session stage %d: %w", stage+1, err)
		}
	}

	if s.cfg.OnConstruct != nil {
		s.cfg.OnConstruct(a.Clone())
	}

	result := a
	if s.cfg.Refine {
		refined, err := s.refineConstruction(ctx, a)
		if err != nil {
			return nil, err
		}
		result = refined
	}

	s.last = result.Clone()
	clear(s.dirty)
	s.structural = false
	s.capsDirty = false
	return result, nil
}

// runStage solves one SDGA stage of the replay, warm when possible, and
// applies its choices to the replay state (assignment, group vectors,
// remaining workloads, drift-dirty propagation).
func (s *Session) runStage(ctx context.Context, stage int, a *core.Assignment, structural bool) error {
	in := s.in
	P, R := in.NumPapers(), in.NumReviewers()
	st := s.stages[stage]
	stageCap := in.StageWorkload()
	for r := 0; r < R; r++ {
		c := stageCap
		if s.rem[r] < c {
			c = s.rem[r]
		}
		if c < 0 {
			c = 0
		}
		s.caps[r] = c
	}
	// Capacity exhaustion is expressed through the transportation column
	// capacities (not the profit matrix), so profit rows stay valid across
	// edits that only shift reviewer loads. The tie-break bonus makes stage
	// optima unique, which is what lets the warm ResolveRows path reproduce
	// a cold solve's plan exactly (see tieBreak).
	spec := engine.ProfitSpec{
		GroupVecs: s.groupVecs,
		Forbidden: func(p, r int) bool {
			return s.withdrawn[p] || a.Contains(p, r) || in.IsConflict(r, p)
		},
		ForbiddenValue: flow.Forbidden,
		Bonus:          tieBreak,
	}

	if s.cands != nil {
		// Sparse mode: the escape hatch (and the warm re-read of densified
		// rows) needs this stage's spec, whose closures read replay state
		// valid only within the call — re-point the callback every stage.
		st.tr.DenseRow = func(i int, buf []float64) []float64 {
			s.eng.FillRowInto(buf, i, spec)
			return buf
		}
	}
	var rows [][]int
	var err error
	if structural {
		if s.cands != nil {
			if err = s.eng.FillProfitSparse(ctx, &st.m, spec, s.cands); err == nil {
				rows, _, err = st.tr.SolveSparse(st.m.Rows(), s.cands, R, s.need, s.caps)
			}
		} else if err = s.eng.FillProfit(ctx, &st.m, spec); err == nil {
			rows, _, err = st.tr.SolveDense(st.m.Rows(), s.need, s.caps)
		}
	} else {
		if err = s.eng.FillProfitRows(ctx, &st.m, spec, s.dirtyList); err == nil {
			rows, _, err = st.tr.ResolveRows(st.m.Rows(), s.dirtyList, s.need, s.caps)
		}
	}
	if err != nil && ctx.Err() == nil && in.Workload > stageCap {
		if stageFallbackHook != nil {
			stageFallbackHook()
		}
		// The equal per-stage partition of Definition 9 can be infeasible in
		// the general case; fall back to the reviewers' full remaining
		// workload via a capacity-only warm re-solve (the matrix and CSR are
		// untouched), which keeps the overall assignment feasible whenever
		// one exists stage-wise.
		for r := 0; r < R; r++ {
			c := s.rem[r]
			if c < 0 {
				c = 0
			}
			s.caps[r] = c
		}
		rows, _, err = st.tr.Resolve(s.caps)
	}
	if err != nil {
		return err
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}

	st.perPaper = growInts(st.perPaper, P)
	record := !structural // diff against the recorded run only when one exists
	for p := 0; p < P; p++ {
		var chosen int
		if s.withdrawn[p] || len(rows[p]) == 0 {
			chosen = -1
		} else {
			chosen = rows[p][0]
		}
		if record && chosen != st.perPaper[p] && !s.rowDirty[p] {
			// The stage choice drifted: the paper's group vector now differs
			// from the recorded run, so its profit rows in every later stage
			// must be re-filled.
			s.rowDirty[p] = true
			s.dirtyList = append(s.dirtyList, p)
		}
		st.perPaper[p] = chosen
		if chosen >= 0 {
			a.Assign(p, chosen)
			s.groupVecs[p].MaxInPlace(in.Reviewers[chosen].Topics)
			s.rem[chosen]--
		}
	}
	if !structural {
		sort.Ints(s.dirtyList)
	}
	return nil
}

// refineConstruction runs the session's stochastic refinement on the
// construction assignment, reusing the session pair-score matrix, completion
// matrix and transportation solver. The stochastic stream restarts from the
// configured seed on every call, so warm and cold runs of the same edited
// instance follow the same trajectory.
func (s *Session) refineConstruction(ctx context.Context, construction *core.Assignment) (*core.Assignment, error) {
	cfg := s.cfg.SRA.withDefaults()
	if cfg.TimeBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.TimeBudget)
		defer cancel()
	}
	if !s.pairsValid {
		var err error
		if s.cands != nil {
			err = s.eng.FillProfitSparse(ctx, &s.pairs, engine.ProfitSpec{}, s.cands)
		} else {
			err = s.eng.FillPairScores(ctx, &s.pairs)
		}
		if err != nil {
			// Context exhausted before refinement: anytime semantics.
			return construction, nil
		}
		s.pairsValid = true
	}
	active := make([]bool, s.in.NumPapers())
	for p := range active {
		active[p] = !s.withdrawn[p]
	}
	run := sraRun{
		cfg:           cfg,
		eng:           s.eng,
		pairScore:     s.pairs.Rows(),
		reviewerTotal: pairReviewerTotals(s.pairs.Rows(), active, s.in.NumReviewers(), s.cands),
		active:        active,
		cands:         s.cands,
		fill:          &s.fill,
		tr:            &s.sraTr,
		rng:           rand.New(rand.NewSource(cfg.Seed)),
	}
	return run.refine(ctx, construction)
}

// tieBreak returns a deterministic, index-keyed perturbation in [0, 1e-7)
// added to every stage profit cell. Weighted-coverage gains tie exactly and
// systematically (the min() saturates: any reviewer covering a paper's
// remaining need yields the identical capped gain), and tied transportation
// optima are broken by search order — which differs between a cold
// SolveDense and a warm ResolveRows. The perturbation makes the stage
// optimum unique, so warm and cold runs of the same edited instance pick
// identical plans and the session's replay parity is exact rather than
// tie-lucky.
//
// The range is a deliberate compromise between two failure modes. It must
// sit far ABOVE the transport's tightness tolerance (1e-12): the solver
// treats any reduced cost within that tolerance as zero, so a perturbation
// gap that lands below it is invisible and the "unique" optimum decays back
// into search-order ambiguity — warm and cold replays then legitimately pick
// different plans, which the stochastic refinement amplifies into real score
// divergence (observed at the earlier [0, 1e-9) range, where roughly one
// tied pair in 10³ drew an unresolvable gap; at 1e-7 that is one in 10⁵ of
// an already small population). And it must sit BELOW any genuine gain
// difference it could override: real non-tied gains differ at the 1e-2
// scale, so a 1e-7 nudge only ever decides exact ties. The value is
// identical across runs (it depends only on the pair indices).
func tieBreak(p, r int) float64 {
	x := uint64(p+1)*0x9E3779B97F4A7C15 ^ uint64(r+1)*0xC2B2AE3D27D4EB4F
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return 1e-7 * float64(x>>11) / float64(1<<53)
}

// growInts returns s resized to n; contents are unspecified.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}
