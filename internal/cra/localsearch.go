package cra

import (
	"context"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
)

// LocalSearch is the classic local-search refiner the paper compares SRA
// against (Figure 12): it repeatedly proposes a random move — either
// replacing one assigned reviewer with an unassigned one, or swapping the
// reviewers of two papers — and accepts the move only when it increases the
// coverage score. Because it never accepts non-improving moves it tends to
// get stuck in a local maximum, which is the behaviour the paper reports.
type LocalSearch struct {
	// MaxMoves caps the number of proposed moves (default 100,000).
	MaxMoves int
	// Patience stops the search after this many consecutive rejected moves
	// (default 5,000).
	Patience int
	// TimeBudget optionally bounds the wall-clock time (0 = none). It is
	// folded into the RefineContext deadline; the earlier deadline wins.
	TimeBudget time.Duration
	// Seed makes the search reproducible (default 1).
	Seed int64
	// OnImprove, when set, is called after every accepted move with the move
	// number, the current score and the elapsed time.
	OnImprove func(move int, score float64, elapsed time.Duration)
}

// Name implements Refiner.
func (LocalSearch) Name() string { return "LS" }

func (l LocalSearch) withDefaults() LocalSearch {
	if l.MaxMoves <= 0 {
		l.MaxMoves = 100000
	}
	if l.Patience <= 0 {
		l.Patience = 5000
	}
	if l.Seed == 0 {
		l.Seed = 1
	}
	return l
}

// Refine implements Refiner.
func (l LocalSearch) Refine(instance *core.Instance, start *core.Assignment) (*core.Assignment, error) {
	return l.RefineContext(context.Background(), instance, start)
}

// lsCheckEvery bounds how many proposed moves run between context checks.
const lsCheckEvery = 64

// RefineContext implements Refiner. Like SRA, local search is an anytime
// process: when ctx is done the current (best) assignment is returned.
func (l LocalSearch) RefineContext(ctx context.Context, instance *core.Instance, start *core.Assignment) (*core.Assignment, error) {
	l = l.withDefaults()
	in, err := prepare(instance)
	if err != nil {
		return nil, err
	}
	if err := in.ValidateAssignment(start); err != nil {
		return nil, err
	}
	if l.TimeBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, l.TimeBudget)
		defer cancel()
	}
	eng := engine.New(in)
	rng := rand.New(rand.NewSource(l.Seed))
	a := start.Clone()
	rem := remainingCapacity(in, a)
	paperScores := eng.PaperScores(a)
	score := 0.0
	for _, s := range paperScores {
		score += s
	}
	startTime := time.Now()
	rejected := 0

	for move := 0; move < l.MaxMoves && rejected < l.Patience; move++ {
		if move%lsCheckEvery == 0 && ctx.Err() != nil {
			break
		}
		improved := false
		if rng.Intn(2) == 0 {
			improved = l.tryReplace(eng, a, rem, paperScores, rng)
		} else {
			improved = l.trySwap(eng, a, paperScores, rng)
		}
		if improved {
			rejected = 0
			score = 0
			for _, s := range paperScores {
				score += s
			}
			if l.OnImprove != nil {
				l.OnImprove(move, score, time.Since(startTime))
			}
		} else {
			rejected++
		}
	}
	return a, nil
}

// tryReplace substitutes one assigned reviewer of a random paper with a
// random reviewer that has spare capacity; keeps the move if it improves the
// paper's score.
func (l LocalSearch) tryReplace(eng *engine.Oracle, a *core.Assignment, rem []int, paperScores []float64, rng *rand.Rand) bool {
	in := eng.Instance()
	P, R := in.NumPapers(), in.NumReviewers()
	p := rng.Intn(P)
	g := a.Groups[p]
	if len(g) == 0 {
		return false
	}
	out := g[rng.Intn(len(g))]
	incoming := rng.Intn(R)
	if rem[incoming] <= 0 || incoming == out || a.Contains(p, incoming) || in.IsConflict(incoming, p) {
		return false
	}
	candidate := append([]int(nil), g...)
	for i, r := range candidate {
		if r == out {
			candidate[i] = incoming
			break
		}
	}
	newScore := eng.GroupScore(p, candidate)
	if newScore <= paperScores[p]+1e-12 {
		return false
	}
	a.Remove(p, out)
	a.Assign(p, incoming)
	rem[out]++
	rem[incoming]--
	paperScores[p] = newScore
	return true
}

// trySwap exchanges one reviewer between two random papers; keeps the move if
// the summed score of the two papers improves.
func (l LocalSearch) trySwap(eng *engine.Oracle, a *core.Assignment, paperScores []float64, rng *rand.Rand) bool {
	in := eng.Instance()
	P := in.NumPapers()
	if P < 2 {
		return false
	}
	p1 := rng.Intn(P)
	p2 := rng.Intn(P)
	if p1 == p2 {
		return false
	}
	g1, g2 := a.Groups[p1], a.Groups[p2]
	if len(g1) == 0 || len(g2) == 0 {
		return false
	}
	r1 := g1[rng.Intn(len(g1))]
	r2 := g2[rng.Intn(len(g2))]
	if r1 == r2 ||
		a.Contains(p1, r2) || a.Contains(p2, r1) ||
		in.IsConflict(r2, p1) || in.IsConflict(r1, p2) {
		return false
	}
	swap := func(g []int, from, to int) []int {
		out := append([]int(nil), g...)
		for i, r := range out {
			if r == from {
				out[i] = to
				break
			}
		}
		return out
	}
	n1 := eng.GroupScore(p1, swap(g1, r1, r2))
	n2 := eng.GroupScore(p2, swap(g2, r2, r1))
	if n1+n2 <= paperScores[p1]+paperScores[p2]+1e-12 {
		return false
	}
	a.Remove(p1, r1)
	a.Remove(p2, r2)
	a.Assign(p1, r2)
	a.Assign(p2, r1)
	paperScores[p1] = n1
	paperScores[p2] = n2
	return true
}
