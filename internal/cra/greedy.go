package cra

import (
	"container/heap"
	"context"

	"repro/internal/core"
	"repro/internal/engine"
)

// Greedy is the incremental greedy algorithm of Long et al. (Section 4.1):
// at every iteration the feasible reviewer-paper pair with the largest
// marginal gain is added to the assignment, until every paper has δp
// reviewers. It is a 1/3-approximation for SGRAP/WGRAP.
//
// The default implementation keeps the feasible pairs in a lazy max-heap:
// because the gain function is monotonically non-increasing as the
// assignment grows (submodularity), a popped pair whose stored gain is stale
// can simply be re-scored and pushed back. The initial P×R pair scores are
// computed in parallel by the gain oracle; re-scores use its fused,
// allocation-free gain. Setting Naive rescans every pair at every iteration
// instead (the ablation of BenchmarkAblationGreedyHeap).
type Greedy struct {
	// Naive disables the lazy heap and rescans all pairs each iteration.
	Naive bool
}

// Name implements Algorithm.
func (Greedy) Name() string { return "Greedy" }

// pairItem is a heap entry for a candidate (reviewer, paper) pair.
type pairItem struct {
	r, p int
	gain float64
	// epoch is the size of the paper's group when the gain was computed;
	// a mismatch means the cached gain may be stale.
	epoch int
}

type pairHeap []pairItem

func (h pairHeap) Len() int { return len(h) }

// Less orders by descending gain and breaks ties by (paper, reviewer) so the
// heap-based and naive implementations make identical choices.
func (h pairHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	if h[i].p != h[j].p {
		return h[i].p < h[j].p
	}
	return h[i].r < h[j].r
}
func (h pairHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x interface{}) { *h = append(*h, x.(pairItem)) }
func (h *pairHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Assign implements Algorithm.
func (g Greedy) Assign(instance *core.Instance) (*core.Assignment, error) {
	return g.AssignContext(context.Background(), instance)
}

// AssignContext implements Algorithm.
func (g Greedy) AssignContext(ctx context.Context, instance *core.Instance) (*core.Assignment, error) {
	in, err := prepare(instance)
	if err != nil {
		return nil, err
	}
	eng := engine.New(in)
	if g.Naive {
		return greedyNaive(ctx, eng)
	}
	return greedyHeap(ctx, eng)
}

// greedyCheckEvery bounds how many heap operations run between context
// checks; individual iterations are too cheap to check every time.
const greedyCheckEvery = 1024

func greedyHeap(ctx context.Context, eng *engine.Oracle) (*core.Assignment, error) {
	in := eng.Instance()
	P, R := in.NumPapers(), in.NumReviewers()
	a := core.NewAssignment(P)
	rem := make([]int, R)
	for r := range rem {
		rem[r] = in.Workload
	}
	// Group vectors maintained incrementally per paper.
	groupVecs := make([]core.Vector, P)
	for p := range groupVecs {
		groupVecs[p] = make(core.Vector, in.NumTopics())
	}

	// Initial gains are the plain pair scores; build them in parallel.
	var m engine.Matrix
	if err := eng.FillPairScores(ctx, &m); err != nil {
		return nil, err
	}
	h := make(pairHeap, 0, P*R)
	for p := 0; p < P; p++ {
		row := m.Row(p)
		for r := 0; r < R; r++ {
			if in.IsConflict(r, p) {
				continue
			}
			h = append(h, pairItem{r: r, p: p, gain: row[r], epoch: 0})
		}
	}
	heap.Init(&h)

	need := P * in.GroupSize
	assigned := 0
	for ops := 0; assigned < need && h.Len() > 0; ops++ {
		if ops%greedyCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		top := heap.Pop(&h).(pairItem)
		p, r := top.p, top.r
		if rem[r] <= 0 || len(a.Groups[p]) >= in.GroupSize || a.Contains(p, r) {
			continue
		}
		if top.epoch != len(a.Groups[p]) {
			// Stale gain: recompute and push back (lazy evaluation).
			top.gain = eng.Gain(p, groupVecs[p], r)
			top.epoch = len(a.Groups[p])
			heap.Push(&h, top)
			continue
		}
		a.Assign(p, r)
		groupVecs[p].MaxInPlace(in.Reviewers[r].Topics)
		rem[r]--
		assigned++
	}
	if assigned < need {
		// Greedy can strand a paper whose remaining candidates are exhausted
		// (all spare capacity sits with reviewers already in its group);
		// repair the tail with swaps rather than failing.
		if err := completeAssignment(ctx, eng, a, rem); err != nil {
			return nil, err
		}
	}
	return a, nil
}

func greedyNaive(ctx context.Context, eng *engine.Oracle) (*core.Assignment, error) {
	in := eng.Instance()
	P := in.NumPapers()
	a := core.NewAssignment(P)
	rem := make([]int, in.NumReviewers())
	for r := range rem {
		rem[r] = in.Workload
	}
	groupVecs := make([]core.Vector, P)
	for p := range groupVecs {
		groupVecs[p] = make(core.Vector, in.NumTopics())
	}
	need := P * in.GroupSize
	for assigned := 0; assigned < need; assigned++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bestGain := -1.0
		bestR, bestP := -1, -1
		for p := 0; p < P; p++ {
			if len(a.Groups[p]) >= in.GroupSize {
				continue
			}
			for r := 0; r < in.NumReviewers(); r++ {
				if rem[r] <= 0 || a.Contains(p, r) || in.IsConflict(r, p) {
					continue
				}
				if gain := eng.Gain(p, groupVecs[p], r); gain > bestGain {
					bestGain, bestR, bestP = gain, r, p
				}
			}
		}
		if bestR == -1 {
			if err := completeAssignment(ctx, eng, a, rem); err != nil {
				return nil, err
			}
			break
		}
		a.Assign(bestP, bestR)
		groupVecs[bestP].MaxInPlace(in.Reviewers[bestR].Topics)
		rem[bestR]--
	}
	return a, nil
}
