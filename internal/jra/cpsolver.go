package jra

import (
	"sort"

	"repro/internal/core"
	"repro/internal/cp"
	"repro/internal/flow"
)

// CP solves JRA with the generic constraint-programming solver of
// internal/cp, mirroring the CPLEX CP Optimizer baseline of Section 5.1. The
// model has δp slot variables over the candidate pool, an all-different and a
// strictly-increasing (symmetry breaking) constraint, and best-coverage value
// ordering. As in the paper's discussion, the model lacks a problem-specific
// tight upper bound, which is why BBA dominates it.
type CP struct {
	// MaxNodes caps the search (0 = solver default).
	MaxNodes int
}

// Name implements Solver.
func (CP) Name() string { return "CP" }

// Solve implements Solver.
func (s CP) Solve(in *core.Instance) (Result, error) {
	candidates, err := validate(in)
	if err != nil {
		return Result{}, err
	}
	model := cp.NewModel()
	vars := make([]int, in.GroupSize)
	for i := range vars {
		vars[i] = model.AddVar(candidates)
	}
	model.Add(cp.AllDifferent{Vars: vars})
	model.Add(cp.StrictlyIncreasing{Vars: vars})

	objective := func(values []int) float64 {
		return in.GroupScore(0, values)
	}
	// Value ordering: try reviewers with the highest individual coverage
	// first so a good incumbent is found early (matches the CP baseline
	// returning a first feasible solution quickly).
	pairScore := make(map[int]float64, len(candidates))
	for _, r := range candidates {
		pairScore[r] = in.PairScore(r, 0)
	}
	valueOrder := func(_ int, domain []int) []int {
		out := append([]int(nil), domain...)
		sort.SliceStable(out, func(i, j int) bool { return pairScore[out[i]] > pairScore[out[j]] })
		return out
	}
	// Completion bound: assigned group coverage plus the best total
	// coverage of k *distinct* further candidates, for every possible
	// number k of open slots. Coverage is submodular with c(∅) = 0, so
	// c(A ∪ S) ≤ c(A) + Σ_{r∈S} c({r}), and the distinct-candidate sums are
	// exactly tiny transportation optima (one row demanding k columns of
	// unit capacity) solved upfront by the flow package. Still weaker than
	// BBA's per-topic bound — the CP baseline's documented handicap — but
	// strictly tighter than the previous open·max(c) slack.
	profitRow := make([]float64, len(candidates))
	unitCaps := make([]int, len(candidates))
	for i, r := range candidates {
		profitRow[i] = pairScore[r]
		unitCaps[i] = 1
	}
	bestCompletion := make([]float64, in.GroupSize+1)
	for k := 1; k <= in.GroupSize; k++ {
		_, total, err := flow.MaxProfitTransport([][]float64{profitRow}, []int{k}, unitCaps)
		if err != nil {
			return Result{}, err
		}
		bestCompletion[k] = total
	}
	bound := func(values []int, assigned []bool) float64 {
		group := make([]int, 0, len(values))
		open := 0
		for i, ok := range assigned {
			if ok {
				group = append(group, values[i])
			} else {
				open++
			}
		}
		return in.GroupScore(0, group) + bestCompletion[open]
	}

	sol, err := model.Maximize(cp.Options{
		Objective:  objective,
		Bound:      bound,
		ValueOrder: valueOrder,
		MaxNodes:   s.MaxNodes,
	})
	if err != nil && sol == nil {
		return Result{}, err
	}
	return Result{Group: sortedGroup(sol.Values), Score: sol.Objective}, nil
}
