package jra

import (
	"sort"

	"repro/internal/core"
	"repro/internal/cp"
)

// CP solves JRA with the generic constraint-programming solver of
// internal/cp, mirroring the CPLEX CP Optimizer baseline of Section 5.1. The
// model has δp slot variables over the candidate pool, an all-different and a
// strictly-increasing (symmetry breaking) constraint, and best-coverage value
// ordering. As in the paper's discussion, the model lacks a problem-specific
// tight upper bound, which is why BBA dominates it.
type CP struct {
	// MaxNodes caps the search (0 = solver default).
	MaxNodes int
}

// Name implements Solver.
func (CP) Name() string { return "CP" }

// Solve implements Solver.
func (s CP) Solve(in *core.Instance) (Result, error) {
	candidates, err := validate(in)
	if err != nil {
		return Result{}, err
	}
	model := cp.NewModel()
	vars := make([]int, in.GroupSize)
	for i := range vars {
		vars[i] = model.AddVar(candidates)
	}
	model.Add(cp.AllDifferent{Vars: vars})
	model.Add(cp.StrictlyIncreasing{Vars: vars})

	objective := func(values []int) float64 {
		return in.GroupScore(0, values)
	}
	// Value ordering: try reviewers with the highest individual coverage
	// first so a good incumbent is found early (matches the CP baseline
	// returning a first feasible solution quickly).
	pairScore := make(map[int]float64, len(candidates))
	for _, r := range candidates {
		pairScore[r] = in.PairScore(r, 0)
	}
	valueOrder := func(_ int, domain []int) []int {
		out := append([]int(nil), domain...)
		sort.SliceStable(out, func(i, j int) bool { return pairScore[out[i]] > pairScore[out[j]] })
		return out
	}
	// Loose bound: assigned group coverage plus the best single-reviewer
	// coverage for every open slot. Valid but far weaker than BBA's
	// per-topic bound.
	bestSingle := 0.0
	for _, r := range candidates {
		if pairScore[r] > bestSingle {
			bestSingle = pairScore[r]
		}
	}
	bound := func(values []int, assigned []bool) float64 {
		group := make([]int, 0, len(values))
		open := 0
		for i, ok := range assigned {
			if ok {
				group = append(group, values[i])
			} else {
				open++
			}
		}
		return in.GroupScore(0, group) + float64(open)*bestSingle
	}

	sol, err := model.Maximize(cp.Options{
		Objective:  objective,
		Bound:      bound,
		ValueOrder: valueOrder,
		MaxNodes:   s.MaxNodes,
	})
	if err != nil && sol == nil {
		return Result{}, err
	}
	return Result{Group: sortedGroup(sol.Values), Score: sol.Objective}, nil
}
