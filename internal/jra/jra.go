// Package jra solves the Journal Reviewer Assignment problem (Section 3 of
// the paper): given one paper and a pool of R candidate reviewers, find the
// group of exactly δp reviewers maximising the weighted coverage of the
// paper's topics.
//
// Four exact solvers are provided, matching the paper's evaluation:
//
//   - BruteForce enumerates every δp-combination (the BFS baseline).
//   - BranchAndBound is the paper's BBA: marginal-gain prioritised branching
//     with a per-topic upper bound derived from the best remaining
//     candidates (Equations 2 and 3); it also supports top-k retrieval.
//   - ILP solves the designated-coverer MILP formulation with the
//     branch-and-bound ILP solver of internal/ilp (the lp_solve baseline).
//   - CP solves a constraint-programming model with internal/cp (the CPLEX
//     CP Optimizer baseline).
package jra

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
)

// Result is a solved journal assignment: the chosen reviewer group (indices
// into the instance's reviewer pool) and its coverage score.
type Result struct {
	Group []int
	Score float64
}

// Solver finds the best reviewer group for a single-paper instance.
type Solver interface {
	// Name identifies the solver in experiment output.
	Name() string
	// Solve returns the optimal group for the instance's only paper. The
	// instance must contain exactly one paper and GroupSize = δp.
	Solve(in *core.Instance) (Result, error)
}

// ErrNotJournal is returned when a solver receives an instance with more than
// one paper.
var ErrNotJournal = errors.New("jra: instance must contain exactly one paper")

// ErrTooFewCandidates is returned when conflicts of interest leave fewer
// than δp eligible reviewers for the paper.
var ErrTooFewCandidates = errors.New("jra: too few non-conflicting candidates for the group size")

// validate checks the common preconditions of the JRA solvers and returns the
// candidate reviewers (non-conflicting, valid indices).
func validate(in *core.Instance) ([]int, error) {
	if in.NumPapers() != 1 {
		return nil, ErrNotJournal
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	candidates := make([]int, 0, in.NumReviewers())
	for r := 0; r < in.NumReviewers(); r++ {
		if !in.IsConflict(r, 0) {
			candidates = append(candidates, r)
		}
	}
	if len(candidates) < in.GroupSize {
		return nil, fmt.Errorf("%w: only %d candidates for group size %d", ErrTooFewCandidates, len(candidates), in.GroupSize)
	}
	return candidates, nil
}

// sortedGroup returns a sorted copy of the group for deterministic output.
func sortedGroup(g []int) []int {
	out := append([]int(nil), g...)
	sort.Ints(out)
	return out
}
