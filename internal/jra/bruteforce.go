package jra

import (
	"repro/internal/core"
)

// BruteForce enumerates every δp-combination of the candidate reviewers and
// keeps the best one. It is the BFS baseline of Section 5.1 and the ground
// truth against which BBA is property-tested.
type BruteForce struct{}

// Name implements Solver.
func (BruteForce) Name() string { return "BFS" }

// Solve implements Solver by exhaustive enumeration.
func (BruteForce) Solve(in *core.Instance) (Result, error) {
	candidates, err := validate(in)
	if err != nil {
		return Result{}, err
	}
	k := in.GroupSize
	paper := in.Papers[0].Topics
	score := in.ScoreFn()

	best := Result{Score: -1}
	group := make([]int, 0, k)
	// groupVecs[d] is the aggregated expertise of the first d group members,
	// maintained incrementally so each node costs O(T).
	groupVecs := make([]core.Vector, k+1)
	groupVecs[0] = make(core.Vector, in.NumTopics())

	var recurse func(start, depth int)
	recurse = func(start, depth int) {
		if depth == k {
			s := score(groupVecs[depth], paper)
			if s > best.Score {
				best = Result{Group: sortedGroup(group), Score: s}
			}
			return
		}
		// Not enough candidates left to fill the group.
		for i := start; i <= len(candidates)-(k-depth); i++ {
			r := candidates[i]
			groupVecs[depth+1] = core.Max(groupVecs[depth], in.Reviewers[r].Topics)
			group = append(group, r)
			recurse(i+1, depth+1)
			group = group[:len(group)-1]
		}
	}
	recurse(0, 0)
	return best, nil
}

// EnumerateScores returns the score of every δp-combination, used by tests to
// verify top-k retrieval. The number of combinations grows combinatorially;
// callers must keep instances small.
func EnumerateScores(in *core.Instance) ([]Result, error) {
	candidates, err := validate(in)
	if err != nil {
		return nil, err
	}
	k := in.GroupSize
	paper := in.Papers[0].Topics
	score := in.ScoreFn()
	var out []Result
	group := make([]int, 0, k)
	var recurse func(start int, g core.Vector)
	recurse = func(start int, g core.Vector) {
		if len(group) == k {
			out = append(out, Result{Group: sortedGroup(group), Score: score(g, paper)})
			return
		}
		for i := start; i <= len(candidates)-(k-len(group)); i++ {
			r := candidates[i]
			group = append(group, r)
			recurse(i+1, core.Max(g, in.Reviewers[r].Topics))
			group = group[:len(group)-1]
		}
	}
	recurse(0, make(core.Vector, in.NumTopics()))
	return out, nil
}
