package jra

import (
	"math"

	"repro/internal/core"
	"repro/internal/ilp"
	"repro/internal/lp"
)

// ILP solves JRA exactly through a mixed-integer linear program, mirroring
// the lp_solve baseline of Section 5.1.
//
// The group objective max_t over selected reviewers is linearised with
// designated-coverer variables: for every reviewer r and topic t a variable
// y[r][t] ∈ [0,1] says that r is the reviewer credited with covering t.
//
//	maximize  Σ_r Σ_t y[r][t] · min(r[t], p[t]) / Σ_t p[t]
//	s.t.      Σ_r x[r] = δp
//	          y[r][t] ≤ x[r]                        ∀ r, t
//	          Σ_r y[r][t] ≤ 1                       ∀ t
//	          x[r] ∈ {0,1},  y[r][t] ≥ 0
//
// For any fixed selection x the optimal y credits each topic to the best
// selected reviewer, so the MILP optimum equals the weighted-coverage optimum
// of Definition 6. Only the x variables need to be integral.
type ILP struct {
	// MaxNodes bounds the branch-and-bound search (0 = solver default).
	MaxNodes int
}

// Name implements Solver.
func (ILP) Name() string { return "ILP" }

// Solve implements Solver.
func (s ILP) Solve(in *core.Instance) (Result, error) {
	candidates, err := validate(in)
	if err != nil {
		return Result{}, err
	}
	paper := in.Papers[0].Topics
	T := in.NumTopics()
	R := len(candidates)
	den := paper.Sum()
	if den == 0 {
		// Degenerate paper: any group is optimal.
		return Result{Group: sortedGroup(candidates[:in.GroupSize]), Score: 0}, nil
	}

	// Variable layout: x[0..R-1], then y[r*T + t] for r in 0..R-1, t in 0..T-1.
	nVars := R + R*T
	xVar := func(r int) int { return r }
	yVar := func(r, t int) int { return R + r*T + t }

	prob := ilp.NewProblem(nVars)
	for i := 0; i < R; i++ {
		prob.SetKind(xVar(i), ilp.Binary)
	}
	for i := 0; i < R; i++ {
		rev := in.Reviewers[candidates[i]].Topics
		for t := 0; t < T; t++ {
			prob.LP.Objective[yVar(i, t)] = math.Min(rev[t], paper[t]) / den
			prob.LP.SetUpperBound(yVar(i, t), 1)
		}
	}
	// Σ_r x[r] = δp.
	row := make([]float64, nVars)
	for i := 0; i < R; i++ {
		row[xVar(i)] = 1
	}
	prob.LP.AddConstraint(row, lp.EQ, float64(in.GroupSize))
	// y[r][t] ≤ x[r].
	for i := 0; i < R; i++ {
		for t := 0; t < T; t++ {
			row := make([]float64, nVars)
			row[yVar(i, t)] = 1
			row[xVar(i)] = -1
			prob.LP.AddConstraint(row, lp.LE, 0)
		}
	}
	// Σ_r y[r][t] ≤ 1 for every topic.
	for t := 0; t < T; t++ {
		row := make([]float64, nVars)
		for i := 0; i < R; i++ {
			row[yVar(i, t)] = 1
		}
		prob.LP.AddConstraint(row, lp.LE, 1)
	}

	sol, err := prob.Solve(ilp.Options{MaxNodes: s.MaxNodes})
	if err != nil {
		return Result{}, err
	}
	group := make([]int, 0, in.GroupSize)
	for i := 0; i < R; i++ {
		if math.Round(sol.X[xVar(i)]) == 1 {
			group = append(group, candidates[i])
		}
	}
	return Result{Group: sortedGroup(group), Score: in.GroupScore(0, group)}, nil
}
