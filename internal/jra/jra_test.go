package jra

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// paperExample is the running example of Section 3 (Figure 5): one paper and
// three reviewers; the optimal pair is {r1, r2} with coverage 0.9.
func paperExample() *core.Instance {
	papers := []core.Paper{{ID: "p", Topics: core.Vector{0.35, 0.45, 0.2}}}
	reviewers := []core.Reviewer{
		{ID: "r1", Topics: core.Vector{0.15, 0.75, 0.1}},
		{ID: "r2", Topics: core.Vector{0.75, 0.15, 0.1}},
		{ID: "r3", Topics: core.Vector{0.1, 0.35, 0.55}},
	}
	return core.NewInstance(papers, reviewers, 2, 1)
}

// randomJournal builds a random single-paper instance.
func randomJournal(rng *rand.Rand, r, t, delta int) *core.Instance {
	papers := []core.Paper{{Topics: randVec(rng, t)}}
	reviewers := make([]core.Reviewer, r)
	for i := range reviewers {
		reviewers[i] = core.Reviewer{Topics: randVec(rng, t)}
	}
	return core.NewInstance(papers, reviewers, delta, 1)
}

func randVec(rng *rand.Rand, t int) core.Vector {
	v := make(core.Vector, t)
	for i := range v {
		v[i] = rng.Float64()
	}
	return v.Normalized()
}

func sameGroup(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int(nil), a...)
	bs := append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func allSolvers() []Solver {
	return []Solver{BruteForce{}, BranchAndBound{}, ILP{}, CP{}}
}

func TestSolversOnPaperExample(t *testing.T) {
	in := paperExample()
	for _, s := range allSolvers() {
		res, err := s.Solve(in)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if math.Abs(res.Score-0.9) > 1e-9 {
			t.Errorf("%s: score = %v, want 0.9", s.Name(), res.Score)
		}
		if !sameGroup(res.Group, []int{0, 1}) {
			t.Errorf("%s: group = %v, want [0 1]", s.Name(), res.Group)
		}
	}
}

func TestSolversRespectConflicts(t *testing.T) {
	in := paperExample()
	in.AddConflict(1, 0) // r2 conflicts with the paper
	for _, s := range allSolvers() {
		res, err := s.Solve(in)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		for _, r := range res.Group {
			if r == 1 {
				t.Errorf("%s assigned a conflicting reviewer", s.Name())
			}
		}
		// Best conflict-free group is {r1, r3}: covers 0.35? compute:
		// max(r1,r3) = (0.15, 0.75, 0.55) -> min with p = 0.15+0.45+0.2 = 0.8.
		if math.Abs(res.Score-0.8) > 1e-9 {
			t.Errorf("%s: score = %v, want 0.8", s.Name(), res.Score)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	multi := core.NewInstance(
		[]core.Paper{{Topics: core.Vector{1}}, {Topics: core.Vector{1}}},
		[]core.Reviewer{{Topics: core.Vector{1}}, {Topics: core.Vector{1}}},
		1, 1)
	for _, s := range allSolvers() {
		if _, err := s.Solve(multi); err != ErrNotJournal {
			t.Errorf("%s: err = %v, want ErrNotJournal", s.Name(), err)
		}
	}
	// Too many conflicts leave fewer candidates than δp.
	in := paperExample()
	in.AddConflict(0, 0)
	in.AddConflict(1, 0)
	for _, s := range allSolvers() {
		if _, err := s.Solve(in); err == nil {
			t.Errorf("%s accepted an instance with too few candidates", s.Name())
		}
	}
}

func TestGroupSizeOne(t *testing.T) {
	in := paperExample()
	in.GroupSize = 1
	for _, s := range allSolvers() {
		res, err := s.Solve(in)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(res.Group) != 1 || res.Group[0] != 0 || math.Abs(res.Score-0.7) > 1e-9 {
			t.Errorf("%s: result = %+v, want r1 with 0.7", s.Name(), res)
		}
	}
}

// Property: BBA equals BFS on random instances (the central exactness claim).
func TestBBAMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 4 + rng.Intn(8)
		delta := 2 + rng.Intn(2)
		in := randomJournal(rng, r, 2+rng.Intn(8), delta)
		bfs, err1 := BruteForce{}.Solve(in)
		bba, err2 := BranchAndBound{}.Solve(in)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(bfs.Score-bba.Score) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the BBA ablations (no bounding / no gain ordering) remain exact.
func TestBBAAblationsRemainExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomJournal(rng, 4+rng.Intn(6), 3+rng.Intn(6), 2)
		want, err := BruteForce{}.Solve(in)
		if err != nil {
			return false
		}
		for _, b := range []BranchAndBound{
			{DisableBounding: true},
			{DisableGainOrdering: true},
			{DisableBounding: true, DisableGainOrdering: true},
		} {
			got, err := b.Solve(in)
			if err != nil || math.Abs(got.Score-want.Score) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: ILP and CP equal BFS on small random instances.
func TestILPAndCPMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomJournal(rng, 4+rng.Intn(4), 2+rng.Intn(4), 2)
		want, err := BruteForce{}.Solve(in)
		if err != nil {
			return false
		}
		ilpRes, err := (ILP{}).Solve(in)
		if err != nil || math.Abs(ilpRes.Score-want.Score) > 1e-6 {
			return false
		}
		cpRes, err := (CP{}).Solve(in)
		if err != nil || math.Abs(cpRes.Score-want.Score) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBBAStats(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := randomJournal(rng, 30, 10, 3)
	full := BranchAndBound{}
	noBound := BranchAndBound{DisableBounding: true}
	_, statsFull, err := full.SolveWithStats(in)
	if err != nil {
		t.Fatal(err)
	}
	_, statsNoBound, err := noBound.SolveWithStats(in)
	if err != nil {
		t.Fatal(err)
	}
	if statsFull.Nodes >= statsNoBound.Nodes {
		t.Fatalf("bounding should reduce explored nodes: %d >= %d", statsFull.Nodes, statsNoBound.Nodes)
	}
	if statsFull.Pruned == 0 {
		t.Fatal("expected some pruning on a 30-reviewer instance")
	}
}

func TestTopKMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := randomJournal(rng, 9, 6, 3)
	all, err := EnumerateScores(in)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Score > all[j].Score })
	for _, k := range []int{1, 3, 10, 25} {
		got, err := (BranchAndBound{}).TopK(in, k)
		if err != nil {
			t.Fatal(err)
		}
		want := k
		if want > len(all) {
			want = len(all)
		}
		if len(got) != want {
			t.Fatalf("TopK(%d) returned %d results", k, len(got))
		}
		for i := range got {
			if math.Abs(got[i].Score-all[i].Score) > 1e-9 {
				t.Fatalf("TopK(%d)[%d] score = %v, want %v", k, i, got[i].Score, all[i].Score)
			}
			if i > 0 && got[i].Score > got[i-1].Score+1e-12 {
				t.Fatalf("TopK results not sorted: %v", got)
			}
		}
	}
}

func TestTopKWithKBelowOne(t *testing.T) {
	in := paperExample()
	got, err := (BranchAndBound{}).TopK(in, 0)
	if err != nil || len(got) != 1 {
		t.Fatalf("TopK(0) = %v, %v", got, err)
	}
}

func TestEnumerateScoresCount(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	in := randomJournal(rng, 7, 4, 3)
	all, err := EnumerateScores(in)
	if err != nil {
		t.Fatal(err)
	}
	// C(7,3) = 35 combinations.
	if len(all) != 35 {
		t.Fatalf("len = %d, want 35", len(all))
	}
}

// Property: results of every solver are valid groups (distinct reviewers,
// correct size, no conflicts) and scores match the group they report.
func TestResultsAreConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomJournal(rng, 5+rng.Intn(5), 3+rng.Intn(5), 2)
		// Random conflict.
		if rng.Intn(2) == 0 {
			in.AddConflict(rng.Intn(in.NumReviewers()), 0)
		}
		for _, s := range allSolvers() {
			res, err := s.Solve(in)
			if err != nil {
				// Only acceptable if conflicts removed too many candidates.
				continue
			}
			if len(res.Group) != in.GroupSize {
				return false
			}
			seen := map[int]bool{}
			for _, r := range res.Group {
				if seen[r] || in.IsConflict(r, 0) {
					return false
				}
				seen[r] = true
			}
			if math.Abs(res.Score-in.GroupScore(0, res.Group)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// BBA must remain exact under the alternative scoring functions of Appendix B
// because they are all submodular and monotone.
func TestBBAWithAlternativeScoringFunctions(t *testing.T) {
	for name, fn := range core.ScoringFunctions {
		fn := fn
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			in := randomJournal(rng, 5+rng.Intn(6), 3+rng.Intn(5), 2)
			in.Score = fn
			bfs, err1 := BruteForce{}.Solve(in)
			bba, err2 := BranchAndBound{}.Solve(in)
			if err1 != nil || err2 != nil {
				return false
			}
			return math.Abs(bfs.Score-bba.Score) < 1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestBBACancellation: a pre-cancelled context aborts the exact search with
// the context error; a live context returns the optimum unchanged.
func TestBBACancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	in := randomJournal(rng, 40, 10, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (BranchAndBound{}).SolveContext(ctx, in); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveContext on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := (BranchAndBound{}).TopKContext(ctx, in, 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("TopKContext on cancelled ctx: err = %v, want context.Canceled", err)
	}
	want, err := (BranchAndBound{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := (BranchAndBound{}).SolveContext(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Score-want.Score) > 1e-12 {
		t.Fatalf("ctx path optimum %v differs from plain %v", got.Score, want.Score)
	}
}

// TestTooFewCandidatesTyped: conflict saturation surfaces as the typed
// ErrTooFewCandidates sentinel.
func TestTooFewCandidatesTyped(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	in := randomJournal(rng, 3, 8, 3)
	in.AddConflict(0, 0)
	if _, err := (BranchAndBound{}).Solve(in); !errors.Is(err, ErrTooFewCandidates) {
		t.Fatalf("err = %v, want ErrTooFewCandidates", err)
	}
}
