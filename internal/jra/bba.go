package jra

import (
	"container/heap"
	"context"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
)

// BranchAndBound is the paper's Branch-and-Bound Algorithm (BBA, Algorithm 1)
// for the Journal Reviewer Assignment problem. The search enumerates reviewer
// combinations stage by stage; at every node the remaining candidates are
// explored in descending order of marginal gain (Definition 8, the branching
// rule) and a per-topic upper bound built from the best remaining candidate
// expertise (Equation 3, the bounding rule) prunes branches that cannot beat
// the best group found so far.
//
// The zero value is a ready-to-use exact solver. The ablation fields disable
// one of the two ingredients to quantify their contribution
// (BenchmarkAblationBBA).
type BranchAndBound struct {
	// DisableBounding turns off the upper-bound pruning (branching only).
	DisableBounding bool
	// DisableGainOrdering explores candidates in pool order instead of
	// descending marginal gain (bounding only).
	DisableGainOrdering bool
}

// Name implements Solver.
func (b BranchAndBound) Name() string { return "BBA" }

// Stats reports the work performed by a BBA run.
type Stats struct {
	// Nodes is the number of search-tree nodes expanded.
	Nodes int64
	// Pruned is the number of branches cut by the upper bound.
	Pruned int64
}

// Solve implements Solver; it returns the optimal reviewer group.
func (b BranchAndBound) Solve(in *core.Instance) (Result, error) {
	return b.SolveContext(context.Background(), in)
}

// SolveContext is Solve under a context: the search checks ctx periodically
// and aborts with its error when it is cancelled or its deadline passes (BBA
// is exact, so there is no partial result to return).
func (b BranchAndBound) SolveContext(ctx context.Context, in *core.Instance) (Result, error) {
	results, _, err := b.solve(ctx, in, 1)
	if err != nil {
		return Result{}, err
	}
	return results[0], nil
}

// SolveWithStats returns the optimal group together with search statistics.
func (b BranchAndBound) SolveWithStats(in *core.Instance) (Result, Stats, error) {
	results, stats, err := b.solve(context.Background(), in, 1)
	if err != nil {
		return Result{}, stats, err
	}
	return results[0], stats, err
}

// TopK returns the k best reviewer groups in descending score order
// (Section 3 notes BBA extends to top-k by replacing the incumbent with a
// heap of the k best groups; Figure 15 evaluates this).
func (b BranchAndBound) TopK(in *core.Instance, k int) ([]Result, error) {
	return b.TopKContext(context.Background(), in, k)
}

// TopKContext is TopK under a context (see SolveContext).
func (b BranchAndBound) TopKContext(ctx context.Context, in *core.Instance, k int) ([]Result, error) {
	if k < 1 {
		k = 1
	}
	results, _, err := b.solve(ctx, in, k)
	return results, err
}

// resultHeap is a min-heap of results ordered by score, holding the k best
// groups found so far.
type resultHeap []Result

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return h[i].Score < h[j].Score }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func (b BranchAndBound) solve(ctx context.Context, in *core.Instance, k int) ([]Result, Stats, error) {
	candidates, err := validate(in)
	if err != nil {
		return nil, Stats{}, err
	}
	delta := in.GroupSize
	// All gain ordering and bound evaluations go through the fused gain
	// oracle: no merged-vector materialisation in the search hot loop.
	eng := engine.New(in)
	T := in.NumTopics()

	// T sorted lists: candidate indices in descending order of expertise on
	// each topic (Figure 5(b)). Together with the active mask they give the
	// "running cursor" upper bound of Equation 3.
	sortedLists := make([][]int, T)
	for t := 0; t < T; t++ {
		lst := append([]int(nil), candidates...)
		sort.Slice(lst, func(i, j int) bool {
			return in.Reviewers[lst[i]].Topics[t] > in.Reviewers[lst[j]].Topics[t]
		})
		sortedLists[t] = lst
	}
	active := make([]bool, in.NumReviewers())
	for _, r := range candidates {
		active[r] = true
	}

	best := &resultHeap{}
	heap.Init(best)
	threshold := func() (float64, bool) {
		if best.Len() < k {
			return 0, false
		}
		return (*best)[0].Score, true
	}
	record := func(group []int, s float64) {
		if best.Len() < k {
			heap.Push(best, Result{Group: sortedGroup(group), Score: s})
			return
		}
		if s > (*best)[0].Score {
			(*best)[0] = Result{Group: sortedGroup(group), Score: s}
			heap.Fix(best, 0)
		}
	}

	// upperBound computes Equation 3: for every topic the best value among
	// the group vector and the best still-active candidate.
	ubVec := make(core.Vector, T)
	upperBound := func(g core.Vector) float64 {
		for t := 0; t < T; t++ {
			v := g[t]
			for _, r := range sortedLists[t] {
				if active[r] {
					if x := in.Reviewers[r].Topics[t]; x > v {
						v = x
					}
					break
				}
			}
			ubVec[t] = v
		}
		return eng.Score(ubVec, 0)
	}

	var stats Stats
	// cancelled polls the context up front and then every 256 expanded
	// nodes: cheap enough to vanish in the branching cost, frequent enough
	// for sub-millisecond reaction on the paper-scale pools of Figure 14.
	cancelled := func() bool {
		return stats.Nodes&255 == 0 && ctx.Err() != nil
	}
	aborted := ctx.Err() != nil
	group := make([]int, 0, delta)
	// Depth-indexed group vectors, allocated once and overwritten in place
	// as the search descends — no per-node vector allocation.
	groupVecs := make([]core.Vector, delta+1)
	for i := range groupVecs {
		groupVecs[i] = make(core.Vector, T)
	}
	// gainBuf is reused at every node; a node only reads it while sorting
	// its own order, before recursing.
	gainBuf := make([]float64, in.NumReviewers())

	var recurse func(cands []int, depth int)
	recurse = func(cands []int, depth int) {
		if depth == delta {
			record(group, eng.Score(groupVecs[depth], 0))
			return
		}
		// Branching order: descending marginal gain (Definition 8).
		order := append([]int(nil), cands...)
		if !b.DisableGainOrdering {
			for _, r := range order {
				gainBuf[r] = eng.Gain(0, groupVecs[depth], r)
			}
			sort.SliceStable(order, func(i, j int) bool { return gainBuf[order[i]] > gainBuf[order[j]] })
		}
		deactivated := make([]int, 0, len(order))
		defer func() {
			for _, r := range deactivated {
				active[r] = true
			}
		}()
		for i, r := range order {
			if aborted {
				return
			}
			if len(order)-i < delta-depth {
				break // not enough candidates left to complete the group
			}
			// Bounding (Equation 3): prune when even the optimistic
			// completion cannot beat the k-th best score so far.
			if !b.DisableBounding {
				if thr, ok := threshold(); ok {
					if upperBound(groupVecs[depth]) <= thr+1e-12 {
						stats.Pruned++
						break
					}
				}
			}
			stats.Nodes++
			if cancelled() {
				aborted = true
				return
			}
			active[r] = false
			deactivated = append(deactivated, r)
			copy(groupVecs[depth+1], groupVecs[depth])
			groupVecs[depth+1].MaxInPlace(in.Reviewers[r].Topics)
			group = append(group, r)
			recurse(order[i+1:], depth+1)
			group = group[:len(group)-1]
		}
	}
	if !aborted {
		recurse(candidates, 0)
	}
	if aborted {
		return nil, stats, ctx.Err()
	}

	// Drain the heap into descending order.
	out := make([]Result, best.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(best).(Result)
	}
	return out, stats, nil
}
