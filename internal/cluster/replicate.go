package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/durable"
	"repro/internal/tenant"
	"repro/internal/wire"
)

// replicaFor returns (creating if needed) the per-tenant replication state.
func (m *Member) replicaFor(id string) *replica {
	m.repMu.Lock()
	defer m.repMu.Unlock()
	rep, ok := m.reps[id]
	if !ok {
		rep = &replica{}
		m.reps[id] = rep
	}
	return rep
}

func (m *Member) dropReplica(id string) {
	m.repMu.Lock()
	delete(m.reps, id)
	m.repMu.Unlock()
}

// NotifyWrite ships the records an accepted edit batch appended to tenant
// id's journal to the tenant's ring successor, synchronously: the HTTP
// handler calls it before acknowledging the batch, so by the time a client
// sees the ack the follower holds the records too — which is what makes an
// owner SIGKILL lose no acknowledged edit. Shipping is still best-effort
// against the follower (a down follower must not take the owner down with
// it): on failure the tail position rewinds so the next write re-ships the
// missed suffix, and the periodic pull loop covers the gap meanwhile.
func (m *Member) NotifyWrite(id string) {
	_, successor := m.ownerAndSuccessor(id)
	if successor == "" || successor == m.cfg.Self {
		return // nobody to replicate to (single alive node)
	}
	m.mu.Lock()
	addr := m.addrLocked(successor)
	m.mu.Unlock()

	rep := m.replicaFor(id)
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if rep.tail == nil {
		st, err := durable.ReadState(m.reg.Dir(id))
		if err != nil {
			m.logf("cluster: push %s: reading snapshot: %v", id, err)
			return
		}
		rep.tail = durable.NewTailReader(m.reg.Dir(id), st.Seq)
	}
	start := rep.tail.Seq()
	recs, err := rep.tail.Drain()
	if err != nil {
		// A compaction folded unshipped records into the snapshot; the
		// follower's pull loop re-bootstraps past the horizon. Restart the
		// tail at the new snapshot.
		m.logf("cluster: push %s: %v (follower will re-bootstrap)", id, err)
		rep.tail = nil
		return
	}
	if len(recs) == 0 {
		return
	}
	if err := m.pushRecords(addr, id, recs); err != nil {
		m.logf("cluster: push %s -> %s: %v", id, successor, err)
		rep.tail = durable.NewTailReader(m.reg.Dir(id), start) // re-ship next time
		if errors.Is(err, errNotBootstrapped) {
			// Don't wait for the follower's discovery poll: a synchronous
			// follow request bootstraps it now, so the next accepted edit
			// replicates before it is acknowledged.
			m.requestFollow(addr, id)
		}
	}
}

// errNotBootstrapped: the follower answered a record push for a tenant it
// has no replica of yet.
var errNotBootstrapped = errors.New("follower has not bootstrapped the tenant yet")

// EnsureFollower synchronously asks tenant id's ring successor to bootstrap
// a replica. The create handler calls it right after a tenant is created:
// without it, every edit acknowledged before the follower's first discovery
// poll (ReplicaPoll later) would ride on the owner's disk alone — an owner
// SIGKILL inside that window would lose the whole tenant to the cluster.
// Best-effort: a down follower must not fail tenant creation.
func (m *Member) EnsureFollower(id string) {
	_, successor := m.ownerAndSuccessor(id)
	if successor == "" || successor == m.cfg.Self {
		return
	}
	m.mu.Lock()
	addr := m.addrLocked(successor)
	m.mu.Unlock()
	if addr == "" {
		return
	}
	m.requestFollow(addr, id)
}

func (m *Member) requestFollow(addr, id string) {
	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.PushTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST",
		fmt.Sprintf("http://%s/cluster/tenants/%s/follow", addr, id), nil)
	if err != nil {
		return
	}
	resp, err := m.hc.Do(req)
	if err != nil {
		m.logf("cluster: follow request %s -> %s: %v", id, addr, err)
		return
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		m.logf("cluster: follow request %s -> %s: %s", id, addr, resp.Status)
	}
}

func (m *Member) pushRecords(addr, id string, recs []durable.Record) error {
	body, err := json.Marshal(RecordChunk{Records: recs})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.PushTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST",
		fmt.Sprintf("http://%s/cluster/tenants/%s/records", addr, id), bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := m.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	switch resp.StatusCode {
	case http.StatusOK:
		return nil
	case http.StatusNotFound:
		return errNotBootstrapped
	default:
		return fmt.Errorf("follower answered %s", resp.Status)
	}
}

// ingest applies shipped journal records to this node's replica of tenant
// id, in sequence. Records at or below the replica's sequence are skipped
// (re-shipped suffix after a push failure); a record skipping ahead is a
// gap the pull loop must fill, reported as an error so the pusher rewinds.
// After applying, a coalescing async re-solve keeps the standby warm.
func (m *Member) ingest(id string, recs []durable.Record) error {
	t, err := m.reg.Get(id)
	if err != nil {
		return err
	}
	rep := m.replicaFor(id)
	rep.mu.Lock()
	defer rep.mu.Unlock()
	applied := false
	for _, rec := range recs {
		cur := t.Solver.Seq()
		if rec.Seq <= cur {
			continue
		}
		if rec.Seq != cur+1 {
			return fmt.Errorf("cluster: replica %s at seq %d cannot apply record seq %d", id, cur, rec.Seq)
		}
		if _, err := tenant.ApplyEdits(t, []wire.Edit{rec.Edit}); err != nil {
			// The owner journaled this record after accepting the edit, so the
			// replica (same snapshot, same prefix) must accept it too; failure
			// means the replica has diverged and must re-bootstrap.
			return fmt.Errorf("cluster: replica %s rejected journaled edit at seq %d: %w", id, rec.Seq, err)
		}
		applied = true
	}
	if applied {
		t.Solver.ResolveAsync() // keep the standby warm (coalescing)
	}
	return nil
}

// syncLoop is the pull side of replication: it discovers tenants this node
// should follow (it is their owner's ring successor) and bootstraps them
// from the owner, keeps existing replicas caught up, purges replicas of
// tenants their owner deleted, and drops replica state this node no longer
// needs. Push keeps followers current record-by-record; the pull loop is
// what makes replication converge from any state (fresh node, missed
// pushes, compaction horizon).
func (m *Member) syncLoop() {
	defer m.wg.Done()
	tick := time.NewTicker(m.cfg.ReplicaPoll)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
		}
		m.syncOnce()
	}
}

func (m *Member) syncOnce() {
	sm := m.Map()
	// Discover tenants to follow: every tenant living on an alive peer whose
	// ring successor is this node.
	for _, n := range sm.Nodes {
		if n.ID == m.cfg.Self || !n.Alive {
			continue
		}
		ids, err := m.listTenants(n.Addr)
		if err != nil {
			continue // prober will mark it dead if it stays unreachable
		}
		for _, id := range ids {
			owner, successor := m.ownerAndSuccessor(id)
			if owner != n.ID || successor != m.cfg.Self || m.reg.Has(id) {
				continue
			}
			// Serialize with an owner-requested follow of the same tenant
			// (handleFollow) — only one side may materialize the replica.
			rep := m.replicaFor(id)
			rep.mu.Lock()
			if m.reg.Has(id) {
				rep.mu.Unlock()
				continue
			}
			err := m.bootstrap(id, n.Addr)
			rep.mu.Unlock()
			if err != nil {
				m.logf("cluster: bootstrap %s from %s: %v", id, n.ID, err)
			} else {
				m.logf("cluster: following %s (owner %s)", id, n.ID)
			}
		}
	}
	// Catch existing replicas up (and purge the ones whose owner deleted the
	// tenant). Tenants this node owns are served, not pulled.
	for _, id := range m.reg.List() {
		owner, _ := m.ownerAndSuccessor(id)
		if owner == m.cfg.Self {
			continue
		}
		m.mu.Lock()
		addr := m.addrLocked(owner)
		aliveOwner := m.alive[owner]
		m.mu.Unlock()
		if !aliveOwner || addr == "" {
			continue // owner dead: the ring already promoted someone
		}
		if err := m.pullOnce(id, addr); err != nil {
			m.logf("cluster: pull %s from %s: %v", id, owner, err)
		}
	}
}

func (m *Member) listTenants(addr string) ([]string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.PushTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", "http://"+addr+"/v1/tenants", nil)
	if err != nil {
		return nil, err
	}
	resp, err := m.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("listing tenants: %s", resp.Status)
	}
	var list wire.TenantList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return nil, err
	}
	return list.Tenants, nil
}

// fetchJournal pulls a tenant's journal chunk from its owner. A nil chunk
// with nil error means the owner no longer has the tenant (deleted).
func (m *Member) fetchJournal(addr, id string, after uint64, bootstrap bool) (*JournalChunk, error) {
	url := fmt.Sprintf("http://%s/cluster/tenants/%s/journal?after=%d", addr, id, after)
	if bootstrap {
		url += "&bootstrap=1"
	}
	ctx, cancel := context.WithTimeout(context.Background(), m.cfg.PushTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := m.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var chunk JournalChunk
		if err := json.NewDecoder(resp.Body).Decode(&chunk); err != nil {
			return nil, err
		}
		return &chunk, nil
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		return nil, nil // owner is alive and the tenant is gone: deleted
	default:
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("journal fetch: %s", resp.Status)
	}
}

// bootstrap materialises a follower replica of tenant id from its owner's
// snapshot + journal and adopts it into the registry as a warm standby.
func (m *Member) bootstrap(id, ownerAddr string) error {
	chunk, err := m.fetchJournal(ownerAddr, id, 0, true)
	if err != nil {
		return err
	}
	if chunk == nil {
		return nil // deleted while we were discovering it
	}
	if chunk.Snapshot == nil {
		return errors.New("owner sent no snapshot")
	}
	if err := durable.Materialize(m.reg.Dir(id), chunk.Snapshot, chunk.Records); err != nil {
		return err
	}
	t, err := m.reg.Adopt(id, chunk.Config)
	if err != nil {
		return err
	}
	t.Solver.ResolveAsync() // warm the standby
	return nil
}

// pullOnce catches one replica up to its owner. When the replica has fallen
// behind the owner's compaction horizon (the chunk's snapshot is ahead of
// the replica), it is re-bootstrapped from the snapshot.
func (m *Member) pullOnce(id, ownerAddr string) error {
	t, err := m.reg.Get(id)
	if err != nil {
		return err
	}
	after := t.Solver.Seq()
	chunk, err := m.fetchJournal(ownerAddr, id, after, false)
	if err != nil {
		return err
	}
	if chunk == nil {
		// Owner is alive and no longer has the tenant: it was deleted. The
		// replica must not survive to resurrect it at the next failover.
		m.logf("cluster: tenant %s deleted by owner; purging replica", id)
		m.dropReplica(id)
		return m.reg.Purge(id)
	}
	if chunk.Snapshot != nil && chunk.Snapshot.Seq > after {
		// Behind the compaction horizon: the journal alone cannot catch us
		// up. Rebuild the replica from the owner's current snapshot.
		m.logf("cluster: replica %s behind compaction horizon (at %d, snapshot %d); re-bootstrapping", id, after, chunk.Snapshot.Seq)
		m.dropReplica(id)
		if err := m.reg.Purge(id); err != nil {
			return err
		}
		if err := durable.Materialize(m.reg.Dir(id), chunk.Snapshot, chunk.Records); err != nil {
			return err
		}
		t, err := m.reg.Adopt(id, chunk.Config)
		if err != nil {
			return err
		}
		t.Solver.ResolveAsync()
		return nil
	}
	return m.ingest(id, chunk.Records)
}
