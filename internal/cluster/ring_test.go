package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("venue-%d", i)
	}
	return keys
}

// TestRingDeterministic: ownership is a pure function of the node set — the
// order the nodes are listed in must not matter, since every node and every
// client builds its own ring from the shard map independently.
func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"n1", "n2", "n3"}, 0)
	b := NewRing([]string{"n3", "n1", "n2"}, 0)
	for _, k := range ringKeys(500) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner of %q depends on node-list order: %q vs %q", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingSuccessorIsFailoverTarget pins the invariant failover rests on:
// the designated follower (OwnerAndSuccessor) is exactly the node that
// becomes owner when the owner is removed from the ring. If these ever
// diverged, the node promoted by a death would not be the node holding the
// replica.
func TestRingSuccessorIsFailoverTarget(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4", "n5"}
	r := NewRing(nodes, 0)
	for _, k := range ringKeys(1000) {
		owner, succ := r.OwnerAndSuccessor(k)
		var without []string
		for _, n := range nodes {
			if n != owner {
				without = append(without, n)
			}
		}
		if got := NewRing(without, 0).Owner(k); got != succ {
			t.Fatalf("key %q: successor %q but owner-after-removing-%q is %q", k, succ, owner, got)
		}
	}
}

// TestRingRemovalOnlyMovesOwnedKeys: consistent hashing's point — removing a
// node must not reshuffle keys it did not own.
func TestRingRemovalOnlyMovesOwnedKeys(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4"}
	full := NewRing(nodes, 0)
	reduced := NewRing([]string{"n1", "n2", "n3"}, 0)
	moved := 0
	for _, k := range ringKeys(2000) {
		before := full.Owner(k)
		after := reduced.Owner(k)
		if before != "n4" && after != before {
			t.Fatalf("key %q moved from %q to %q though %q stayed in the ring", k, before, after, before)
		}
		if before == "n4" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no key owned by the removed node — distribution is broken")
	}
}

// TestRingDistribution: with DefaultVNodes the spread over 3 nodes should be
// rough but not degenerate — no node owning less than 15% or more than 55%
// of 3000 keys.
func TestRingDistribution(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	r := NewRing(nodes, 0)
	counts := make(map[string]int)
	keys := ringKeys(3000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	for _, n := range nodes {
		share := float64(counts[n]) / float64(len(keys))
		if share < 0.15 || share > 0.55 {
			t.Fatalf("node %s owns %.1f%% of keys: %v", n, 100*share, counts)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if got := NewRing(nil, 0).Owner("x"); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
	r := NewRing([]string{"only"}, 0)
	owner, succ := r.OwnerAndSuccessor("x")
	if owner != "only" || succ != "" {
		t.Fatalf("single-node ring: owner=%q succ=%q, want only/empty", owner, succ)
	}
}

func TestParsePeers(t *testing.T) {
	nodes, err := ParsePeers("n2=127.0.0.1:7002, n1=127.0.0.1:7001")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 || nodes[0].ID != "n2" || nodes[1].Addr != "127.0.0.1:7001" {
		t.Fatalf("unexpected parse: %+v", nodes)
	}
	for _, bad := range []string{"", "n1", "=addr", "n1=", "n1=a,n1=b"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Fatalf("ParsePeers(%q) accepted", bad)
		}
	}
}
