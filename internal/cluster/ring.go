// Package cluster turns a set of wgrap-serve processes into a shard-aware
// cluster: static membership with health probing, consistent hashing of
// venue (tenant) ids onto the alive nodes, an epoch-stamped shard map
// served at /cluster/map, and journal replication — each tenant's durable
// edit journal is shipped over HTTP to the ring successor of its owner,
// which replays it into a warm standby Solver (stale-bounded read views)
// and takes ownership when the owner dies. Failover is journal replay: the
// same snapshot + CRC-checked record stream that crash recovery replays
// from disk, read from the wire instead.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per member. It is part of the
// shard-map contract: servers and clients must hash with the same count to
// compute the same owners, so the map carries it explicitly.
const DefaultVNodes = 64

type ringPoint struct {
	hash uint64
	node string
}

// Ring is a consistent-hash ring over node ids. Ownership of a key is the
// first ring point clockwise of the key's hash; removing a node only moves
// the keys it owned (to each key's successor), which is what keeps a
// failover from reshuffling healthy tenants.
type Ring struct {
	points []ringPoint
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	// Avalanche finalizer (the murmur3 fmix64 constants): raw FNV-1a on
	// short keys with shared prefixes — vnode labels are "n1#0", "n1#1", … —
	// leaves the low bits correlated and skews the ring badly (one node of
	// three can end up owning 70% of the keyspace). Mixing restores a
	// near-uniform spread without changing the ring contract: ownership is
	// still a pure function of (node set, vnodes).
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// NewRing builds a ring over nodes with vnodes virtual points per node
// (DefaultVNodes when <= 0). The ring is deterministic in the node set:
// any process given the same nodes computes identical ownership.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{points: make([]ringPoint, 0, len(nodes)*vnodes)}
	for _, n := range nodes {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// find returns the index of the first point clockwise of key's hash.
func (r *Ring) find(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owner returns the node owning key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.find(key)].node
}

// OwnerAndSuccessor returns key's owner and its designated follower: the
// first distinct node clockwise of the owner's point. By construction the
// successor is exactly the node that becomes owner when the owner is
// removed from the ring — so the follower replicating a tenant's journal is
// the node failover promotes, and the replica it built is the state the
// cluster serves from.
func (r *Ring) OwnerAndSuccessor(key string) (owner, successor string) {
	if len(r.points) == 0 {
		return "", ""
	}
	i := r.find(key)
	owner = r.points[i].node
	for j := 1; j < len(r.points); j++ {
		if n := r.points[(i+j)%len(r.points)].node; n != owner {
			return owner, n
		}
	}
	return owner, ""
}
