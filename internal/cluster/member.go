package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/durable"
	"repro/internal/tenant"
	"repro/internal/wire"
)

// Config is one member's static cluster configuration.
type Config struct {
	// Self is this node's id; it must appear in Nodes.
	Self string
	// Nodes is the full static membership (id + advertised address).
	Nodes []wire.NodeInfo
	// VNodes is the virtual-node count of the hash ring (DefaultVNodes
	// when 0). All members and clients must agree on it.
	VNodes int
	// ProbeInterval paces the peer health prober (default 250ms).
	ProbeInterval time.Duration
	// ReplicaPoll paces the replication sync loop: discovery of tenants to
	// follow and catch-up pulls (default 500ms).
	ReplicaPoll time.Duration
	// PushTimeout bounds the synchronous record push to a follower after an
	// accepted edit batch (default 2s).
	PushTimeout time.Duration
	// Logf receives replication/membership events (nil discards them).
	Logf func(format string, args ...any)
}

// ParsePeers parses a "-peers" flag value: comma-separated id=host:port
// pairs, e.g. "n1=127.0.0.1:7001,n2=127.0.0.1:7002,n3=127.0.0.1:7003".
func ParsePeers(s string) ([]wire.NodeInfo, error) {
	var nodes []wire.NodeInfo
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("cluster: bad peer %q (want id=host:port)", part)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", id)
		}
		seen[id] = true
		nodes = append(nodes, wire.NodeInfo{ID: id, Addr: addr, Alive: true})
	}
	if len(nodes) == 0 {
		return nil, errors.New("cluster: empty peer list")
	}
	return nodes, nil
}

// Member is one node's view of the cluster: static membership with health
// probing, the epoch-stamped hash ring over the alive nodes, and the
// replication engine that keeps this node's replicas in sync with the
// tenants it follows.
type Member struct {
	cfg Config
	reg *tenant.Registry
	hc  *http.Client

	mu    sync.Mutex
	alive map[string]bool
	epoch uint64
	ring  *Ring

	repMu sync.Mutex
	reps  map[string]*replica // per-tenant replication state

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// replica is the per-tenant replication state: an ingest mutex serialising
// pushed and pulled records, and (on the owner side) the journal tail
// reader feeding pushes to the follower.
type replica struct {
	mu   sync.Mutex
	tail *durable.TailReader // owner role: position of the last shipped record
}

// NewMember validates cfg and builds the member. Start launches the prober
// and the replication loop; until then the member answers ownership from
// the all-alive ring.
func NewMember(reg *tenant.Registry, cfg Config) (*Member, error) {
	if cfg.Self == "" {
		return nil, errors.New("cluster: missing self node id")
	}
	if !reg.Durable() {
		return nil, errors.New("cluster: members require a durable registry (journal replication ships the data directory)")
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 250 * time.Millisecond
	}
	if cfg.ReplicaPoll <= 0 {
		cfg.ReplicaPoll = 500 * time.Millisecond
	}
	if cfg.PushTimeout <= 0 {
		cfg.PushTimeout = 2 * time.Second
	}
	found := false
	for _, n := range cfg.Nodes {
		if n.ID == cfg.Self {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: self id %q not in peer list", cfg.Self)
	}
	sort.Slice(cfg.Nodes, func(i, j int) bool { return cfg.Nodes[i].ID < cfg.Nodes[j].ID })
	m := &Member{
		cfg:   cfg,
		reg:   reg,
		hc:    &http.Client{},
		alive: make(map[string]bool),
		epoch: 1,
		reps:  make(map[string]*replica),
		stop:  make(chan struct{}),
	}
	for _, n := range cfg.Nodes {
		m.alive[n.ID] = true
	}
	m.ring = m.buildRingLocked()
	return m, nil
}

func (m *Member) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// buildRingLocked rebuilds the ring over the alive nodes. Caller holds m.mu.
func (m *Member) buildRingLocked() *Ring {
	var ids []string
	for _, n := range m.cfg.Nodes {
		if m.alive[n.ID] {
			ids = append(ids, n.ID)
		}
	}
	return NewRing(ids, m.cfg.VNodes)
}

// Start launches the health prober and the replication sync loop.
func (m *Member) Start() {
	m.wg.Add(2)
	go m.probeLoop()
	go m.syncLoop()
}

// Close stops the background loops. The registry stays open — the caller
// owns its lifecycle.
func (m *Member) Close() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.wg.Wait()
}

// Epoch returns the current shard-map epoch.
func (m *Member) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Map snapshots the shard map: static membership with this node's health
// view, the hashing parameters, and the epoch.
func (m *Member) Map() wire.ShardMap {
	m.mu.Lock()
	defer m.mu.Unlock()
	sm := wire.ShardMap{Epoch: m.epoch, Self: m.cfg.Self, VNodes: m.cfg.VNodes}
	for _, n := range m.cfg.Nodes {
		n.Alive = m.alive[n.ID]
		sm.Nodes = append(sm.Nodes, n)
	}
	return sm
}

// Owner returns the id and address of the node owning tenant id under the
// current ring.
func (m *Member) Owner(id string) (node, addr string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	node = m.ring.Owner(id)
	return node, m.addrLocked(node)
}

// ownerAndSuccessor resolves both ring roles for a tenant.
func (m *Member) ownerAndSuccessor(id string) (owner, successor string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ring.OwnerAndSuccessor(id)
}

func (m *Member) addrLocked(node string) string {
	for _, n := range m.cfg.Nodes {
		if n.ID == node {
			return n.Addr
		}
	}
	return ""
}

// IsOwner reports whether this node owns tenant id.
func (m *Member) IsOwner(id string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ring.Owner(id) == m.cfg.Self
}

// probeLoop marks peers dead and alive again by probing /v1/healthz; every
// transition bumps the epoch and rebuilds the ring, which is what moves a
// dead owner's tenants to their successors (failover) and only those
// tenants (consistent hashing).
func (m *Member) probeLoop() {
	defer m.wg.Done()
	tick := time.NewTicker(m.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
		}
		for _, n := range m.cfg.Nodes {
			if n.ID == m.cfg.Self {
				continue
			}
			up := m.probe(n.Addr)
			m.mu.Lock()
			if m.alive[n.ID] != up {
				m.alive[n.ID] = up
				m.epoch++
				m.ring = m.buildRingLocked()
				epoch := m.epoch
				m.mu.Unlock()
				m.logf("cluster: node %s now alive=%v (epoch %d)", n.ID, up, epoch)
				continue
			}
			m.mu.Unlock()
		}
	}
}

func (m *Member) probe(addr string) bool {
	timeout := m.cfg.ProbeInterval
	if timeout < 100*time.Millisecond {
		timeout = 100 * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", "http://"+addr+"/v1/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := m.hc.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// JournalChunk is the journal-shipping payload: the tenant's config, an
// optional snapshot (bootstrap, or the requested position fell behind the
// compaction horizon), and the records beyond the requested position. Seq
// is the highest sequence the chunk reaches.
type JournalChunk struct {
	Config   wire.TenantConfig `json:"config"`
	Snapshot *durable.State    `json:"snapshot,omitempty"`
	Records  []durable.Record  `json:"records,omitempty"`
	Seq      uint64            `json:"seq"`
}

// RecordChunk is the owner→follower push payload.
type RecordChunk struct {
	Records []durable.Record `json:"records"`
}

// Routes returns the /cluster/* HTTP surface of this member:
//
//	GET  /cluster/map                          epoch-stamped shard map
//	GET  /cluster/tenants/{id}/journal         journal chunk after ?after=N
//	                                           (?bootstrap=1 forces snapshot)
//	POST /cluster/tenants/{id}/records         owner push into a follower
func (m *Member) Routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /cluster/map", func(w http.ResponseWriter, r *http.Request) {
		clusterJSON(w, http.StatusOK, m.Map())
	})
	mux.HandleFunc("GET /cluster/tenants/{id}/journal", m.handleJournal)
	mux.HandleFunc("POST /cluster/tenants/{id}/records", m.handleRecords)
	mux.HandleFunc("POST /cluster/tenants/{id}/follow", m.handleFollow)
	return mux
}

// handleFollow bootstraps this node's replica of tenant id from its owner,
// synchronously — the owner requests it at tenant creation and when a record
// push finds no replica, so replication does not wait for this node's
// discovery poll. Idempotent: a node already holding the tenant answers ok.
func (m *Member) handleFollow(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if m.IsOwner(id) {
		m.WriteNotOwner(w, id)
		return
	}
	rep := m.replicaFor(id)
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if m.reg.Has(id) {
		clusterJSON(w, http.StatusOK, map[string]string{"status": "following"})
		return
	}
	owner, _ := m.ownerAndSuccessor(id)
	m.mu.Lock()
	addr := m.addrLocked(owner)
	m.mu.Unlock()
	if owner == m.cfg.Self || addr == "" {
		clusterJSON(w, http.StatusConflict, &wire.Error{Code: wire.CodeInternal,
			Message: fmt.Sprintf("no reachable owner for tenant %q", id)})
		return
	}
	if err := m.bootstrap(id, addr); err != nil {
		clusterJSON(w, http.StatusInternalServerError, &wire.Error{Code: wire.CodeInternal, Message: err.Error()})
		return
	}
	m.logf("cluster: following %s (owner %s, on request)", id, owner)
	clusterJSON(w, http.StatusOK, map[string]string{"status": "following"})
}

// handleJournal serves a tenant's journal chunk — the pull side of journal
// shipping. Only the owner serves it: a follower's journal is itself a
// replica and must not become a second source of truth.
func (m *Member) handleJournal(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !m.IsOwner(id) {
		m.WriteNotOwner(w, id)
		return
	}
	t, err := m.reg.Get(id)
	if err != nil {
		clusterJSON(w, http.StatusNotFound, &wire.Error{Code: wire.CodeNotFound, Message: err.Error()})
		return
	}
	var after uint64
	fmt.Sscanf(r.URL.Query().Get("after"), "%d", &after)
	bootstrap := r.URL.Query().Get("bootstrap") == "1"

	// Flush the group-commit window so the shipped prefix is also the
	// durable prefix, then read snapshot + records without touching the
	// live store.
	if err := t.Solver.Sync(); err != nil {
		clusterJSON(w, http.StatusInternalServerError, &wire.Error{Code: wire.CodeInternal, Message: err.Error()})
		return
	}
	st, recs, err := durable.ReadSince(m.reg.Dir(id), after)
	if err != nil {
		clusterJSON(w, http.StatusInternalServerError, &wire.Error{Code: wire.CodeInternal, Message: err.Error()})
		return
	}
	chunk := JournalChunk{Config: t.Config, Records: recs, Seq: st.Seq}
	if len(recs) > 0 {
		chunk.Seq = recs[len(recs)-1].Seq
	}
	if bootstrap || after < st.Seq {
		chunk.Snapshot = st
	}
	clusterJSON(w, http.StatusOK, chunk)
}

// handleRecords ingests an owner push into this node's replica of the
// tenant — the push side of journal shipping. Refused when this node owns
// the tenant (a stale previous owner must not write into the promoted one).
func (m *Member) handleRecords(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if m.IsOwner(id) {
		m.WriteNotOwner(w, id)
		return
	}
	var chunk RecordChunk
	if err := json.NewDecoder(r.Body).Decode(&chunk); err != nil {
		clusterJSON(w, http.StatusBadRequest, &wire.Error{Code: wire.CodeInvalidEdit, Message: err.Error()})
		return
	}
	if err := m.ingest(id, chunk.Records); err != nil {
		status := http.StatusConflict
		if errors.Is(err, tenant.ErrTenantNotFound) {
			status = http.StatusNotFound
		}
		clusterJSON(w, status, &wire.Error{Code: wire.CodeInternal, Message: err.Error()})
		return
	}
	clusterJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// WriteNotOwner answers a request for a tenant this node does not own: the
// not_owner envelope names the owner and carries the epoch so the client
// can redirect (refreshing its map when its epoch is stale).
func (m *Member) WriteNotOwner(w http.ResponseWriter, id string) {
	m.mu.Lock()
	owner := m.ring.Owner(id)
	addr := m.addrLocked(owner)
	epoch := m.epoch
	m.mu.Unlock()
	clusterJSON(w, http.StatusMisdirectedRequest, &wire.Error{
		Code:      wire.CodeNotOwner,
		Message:   fmt.Sprintf("tenant %q is owned by node %s", id, owner),
		Owner:     owner,
		OwnerAddr: addr,
		Epoch:     epoch,
	})
}

func clusterJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
