package randx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGammaPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, shape := range []float64{0.1, 0.5, 1, 2, 10} {
		for i := 0; i < 100; i++ {
			if g := Gamma(rng, shape); g <= 0 || math.IsNaN(g) {
				t.Fatalf("Gamma(%v) = %v", shape, g)
			}
		}
	}
}

func TestGammaMean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 20000
	shape := 3.0
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += Gamma(rng, shape)
	}
	mean := sum / n
	if math.Abs(mean-shape) > 0.1 {
		t.Fatalf("Gamma(3) sample mean = %v, want ≈3", mean)
	}
}

func TestGammaPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive shape")
		}
	}()
	Gamma(rand.New(rand.NewSource(1)), 0)
}

func TestDirichletSumsToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 2 + rng.Intn(30)
		alpha := 0.05 + rng.Float64()*3
		d := Dirichlet(rng, alpha, dim)
		sum := 0.0
		for _, x := range d {
			if x < 0 {
				return false
			}
			sum += x
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDirichletVecSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	alphas := []float64{10, 0.1, 0.1}
	sum0 := 0.0
	const n = 500
	for i := 0; i < n; i++ {
		d := DirichletVec(rng, alphas)
		sum0 += d[0]
	}
	if sum0/n < 0.8 {
		t.Fatalf("dimension with alpha=10 should dominate, mean share = %v", sum0/n)
	}
}

func TestCategoricalDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 30000
	for i := 0; i < n; i++ {
		counts[Categorical(rng, weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("ratio of counts = %v, want ≈3", ratio)
	}
}

func TestCategoricalUniformFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	weights := []float64{0, 0, 0}
	seen := make(map[int]bool)
	for i := 0; i < 100; i++ {
		seen[Categorical(rng, weights)] = true
	}
	if len(seen) < 2 {
		t.Fatal("uniform fallback did not spread draws")
	}
}

func TestWeightedChoiceWithoutReplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	weights := []float64{5, 1, 0, 2}
	for i := 0; i < 100; i++ {
		got := WeightedChoiceWithoutReplacement(rng, weights, 3)
		if len(got) != 3 {
			t.Fatalf("got %d indices", len(got))
		}
		seen := map[int]bool{}
		for _, x := range got {
			if x < 0 || x >= len(weights) || seen[x] {
				t.Fatalf("bad or duplicate index in %v", got)
			}
			seen[x] = true
		}
	}
	// Requesting more than available returns every index exactly once.
	all := WeightedChoiceWithoutReplacement(rng, weights, 10)
	if len(all) != 4 {
		t.Fatalf("want all 4 indices, got %v", all)
	}
}

func TestWeightedChoiceZeroWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	got := WeightedChoiceWithoutReplacement(rng, []float64{0, 0, 0, 0}, 2)
	if len(got) != 2 || got[0] == got[1] {
		t.Fatalf("zero-weight fallback returned %v", got)
	}
}

func TestLongTailInt(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	low, high := 0, 0
	for i := 0; i < 5000; i++ {
		v := LongTailInt(rng, 1.5, 60)
		if v < 1 || v > 60 {
			t.Fatalf("LongTailInt out of range: %d", v)
		}
		if v <= 5 {
			low++
		}
		if v > 30 {
			high++
		}
	}
	if low <= high {
		t.Fatalf("distribution not long-tailed: low=%d high=%d", low, high)
	}
	if got := LongTailInt(rng, 2, 0); got != 1 {
		t.Fatalf("LongTailInt with max<1 = %d, want 1", got)
	}
}

func TestPermDeterminism(t *testing.T) {
	a := Perm(rand.New(rand.NewSource(9)), 10)
	b := Perm(rand.New(rand.NewSource(9)), 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed should give same permutation")
		}
	}
}
