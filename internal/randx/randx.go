// Package randx provides small, deterministic sampling utilities used by the
// topic models, the synthetic corpus generator and the stochastic refinement
// algorithm: Dirichlet and categorical sampling, Gamma variates, weighted
// choice without replacement and Zipf-like long-tailed integers.
//
// All functions take an explicit *rand.Rand so that every simulation in the
// repository is reproducible from a seed.
package randx

import (
	"math"
	"math/rand"
	"sort"
)

// Gamma draws a Gamma(shape, 1) variate using the Marsaglia–Tsang method.
// Shape must be positive.
func Gamma(rng *rand.Rand, shape float64) float64 {
	if shape <= 0 {
		panic("randx: Gamma shape must be positive")
	}
	if shape < 1 {
		// Boosting: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := rng.Float64()
		return Gamma(rng, shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Dirichlet draws a sample from a symmetric Dirichlet distribution with
// concentration alpha over dim dimensions. The result sums to one.
func Dirichlet(rng *rand.Rand, alpha float64, dim int) []float64 {
	alphas := make([]float64, dim)
	for i := range alphas {
		alphas[i] = alpha
	}
	return DirichletVec(rng, alphas)
}

// DirichletVec draws a sample from a Dirichlet distribution with the given
// per-dimension concentrations. The result sums to one.
func DirichletVec(rng *rand.Rand, alphas []float64) []float64 {
	out := make([]float64, len(alphas))
	sum := 0.0
	for i, a := range alphas {
		out[i] = Gamma(rng, a)
		sum += out[i]
	}
	if sum == 0 {
		// Degenerate draw (can happen for tiny alphas); fall back to uniform.
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Categorical draws an index in [0, len(weights)) with probability
// proportional to the weights. Non-positive total weight yields a uniform
// draw.
func Categorical(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return rng.Intn(len(weights))
	}
	u := rng.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// WeightedChoiceWithoutReplacement draws k distinct indices from
// [0, len(weights)) where the probability of drawing an index is proportional
// to its (positive) weight among the remaining indices. If fewer than k
// indices have positive weight the remainder is filled uniformly from the
// unused indices.
func WeightedChoiceWithoutReplacement(rng *rand.Rand, weights []float64, k int) []int {
	n := len(weights)
	if k > n {
		k = n
	}
	w := append([]float64(nil), weights...)
	chosen := make([]int, 0, k)
	used := make([]bool, n)
	for len(chosen) < k {
		total := 0.0
		for i, x := range w {
			if !used[i] && x > 0 {
				total += x
			}
		}
		if total <= 0 {
			// Fill uniformly from the unused indices.
			rest := make([]int, 0, n)
			for i := range w {
				if !used[i] {
					rest = append(rest, i)
				}
			}
			rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
			chosen = append(chosen, rest[:k-len(chosen)]...)
			break
		}
		u := rng.Float64() * total
		acc := 0.0
		pick := -1
		for i, x := range w {
			if used[i] || x <= 0 {
				continue
			}
			acc += x
			if u < acc {
				pick = i
				break
			}
		}
		if pick < 0 {
			for i := n - 1; i >= 0; i-- {
				if !used[i] {
					pick = i
					break
				}
			}
		}
		used[pick] = true
		chosen = append(chosen, pick)
	}
	sort.Ints(chosen)
	return chosen
}

// LongTailInt draws a positive integer from a discrete power-law-like
// distribution with the given exponent and maximum; used for synthetic
// h-indices and publication counts.
func LongTailInt(rng *rand.Rand, exponent float64, max int) int {
	if max < 1 {
		return 1
	}
	// Inverse-CDF sampling over {1..max} with P(x) ∝ x^(-exponent).
	weights := make([]float64, max)
	for i := 1; i <= max; i++ {
		weights[i-1] = math.Pow(float64(i), -exponent)
	}
	return 1 + Categorical(rng, weights)
}

// Perm returns a random permutation of [0, n) using the supplied generator.
func Perm(rng *rand.Rand, n int) []int { return rng.Perm(n) }
