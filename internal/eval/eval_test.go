package eval

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/cra"
)

func randVec(rng *rand.Rand, t int) core.Vector {
	v := make(core.Vector, t)
	for i := range v {
		v[i] = rng.Float64()
	}
	return v.Normalized()
}

func randomInstance(rng *rand.Rand, p, r, t, delta int) *core.Instance {
	papers := make([]core.Paper, p)
	for i := range papers {
		papers[i] = core.Paper{ID: "p", Title: "paper", Topics: randVec(rng, t)}
	}
	reviewers := make([]core.Reviewer, r)
	for i := range reviewers {
		reviewers[i] = core.Reviewer{ID: "r", Name: "rev", Topics: randVec(rng, t)}
	}
	in := core.NewInstance(papers, reviewers, delta, 0)
	in.Workload = in.MinWorkload()
	return in
}

func TestIdealAssignmentIgnoresWorkload(t *testing.T) {
	// One excellent reviewer, several poor ones: the ideal assignment gives
	// the excellent reviewer to every paper even though that breaks δr.
	papers := []core.Paper{
		{Topics: core.Vector{1, 0}},
		{Topics: core.Vector{1, 0}},
		{Topics: core.Vector{1, 0}},
	}
	reviewers := []core.Reviewer{
		{Topics: core.Vector{1, 0}},
		{Topics: core.Vector{0, 1}},
		{Topics: core.Vector{0, 1}},
		{Topics: core.Vector{0, 1}},
	}
	in := core.NewInstance(papers, reviewers, 1, 1)
	ideal := IdealAssignment(in)
	for p := range papers {
		if len(ideal.Groups[p]) != 1 || ideal.Groups[p][0] != 0 {
			t.Fatalf("paper %d did not get the best reviewer: %v", p, ideal.Groups[p])
		}
	}
	if score := in.AssignmentScore(ideal); math.Abs(score-3) > 1e-9 {
		t.Fatalf("ideal score = %v, want 3", score)
	}
}

func TestIdealAssignmentRespectsConflicts(t *testing.T) {
	papers := []core.Paper{{Topics: core.Vector{1, 0}}}
	reviewers := []core.Reviewer{
		{Topics: core.Vector{1, 0}},
		{Topics: core.Vector{0.5, 0.5}},
	}
	in := core.NewInstance(papers, reviewers, 1, 1)
	in.AddConflict(0, 0)
	ideal := IdealAssignment(in)
	if ideal.Groups[0][0] != 1 {
		t.Fatalf("conflicting reviewer chosen: %v", ideal.Groups[0])
	}
}

// Property: the ideal assignment's score upper-bounds any feasible
// assignment's score, so the optimality ratio is in (0, 1].
func TestOptimalityRatioBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 2+rng.Intn(8), 4+rng.Intn(6), 3+rng.Intn(6), 2)
		a, err := cra.SDGA{}.Assign(in)
		if err != nil {
			return false
		}
		ratio := OptimalityRatio(in, a)
		return ratio > 0 && ratio <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSuperiorityRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := randomInstance(rng, 6, 6, 4, 2)
	x, err := cra.SDGA{}.Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	// Against itself: everything ties.
	self := SuperiorityRatio(in, x, x)
	if self.BetterOrEqual != 1 || self.Ties != 1 {
		t.Fatalf("self comparison = %+v", self)
	}
	y, err := cra.StableMatching{}.Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	s := SuperiorityRatio(in, x, y)
	if s.BetterOrEqual < 0 || s.BetterOrEqual > 1 || s.Ties > s.BetterOrEqual {
		t.Fatalf("superiority out of range: %+v", s)
	}
	// X over Y and Y over X must cover all papers at least once (ties count
	// in both directions).
	s2 := SuperiorityRatio(in, y, x)
	if s.BetterOrEqual+s2.BetterOrEqual < 1-1e-9 {
		t.Fatalf("superiority ratios inconsistent: %v + %v < 1", s.BetterOrEqual, s2.BetterOrEqual)
	}
}

func TestSuperiorityEmptyInstance(t *testing.T) {
	in := core.NewInstance(nil, nil, 1, 1)
	s := SuperiorityRatio(in, core.NewAssignment(0), core.NewAssignment(0))
	if s.BetterOrEqual != 0 || s.Ties != 0 {
		t.Fatalf("empty superiority = %+v", s)
	}
}

func TestLowestAndAverageCoverage(t *testing.T) {
	papers := []core.Paper{
		{Topics: core.Vector{1, 0}},
		{Topics: core.Vector{0, 1}},
	}
	reviewers := []core.Reviewer{
		{Topics: core.Vector{1, 0}},
		{Topics: core.Vector{0.5, 0.5}},
	}
	in := core.NewInstance(papers, reviewers, 1, 1)
	a := core.NewAssignment(2)
	a.Assign(0, 0) // perfect: 1.0
	a.Assign(1, 1) // half: 0.5
	if got := LowestCoverage(in, a); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("LowestCoverage = %v", got)
	}
	if got := AverageCoverage(in, a); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("AverageCoverage = %v", got)
	}
	if LowestCoverage(core.NewInstance(nil, nil, 1, 1), core.NewAssignment(0)) != 0 {
		t.Fatal("empty LowestCoverage should be 0")
	}
	if AverageCoverage(core.NewInstance(nil, nil, 1, 1), core.NewAssignment(0)) != 0 {
		t.Fatal("empty AverageCoverage should be 0")
	}
}

func TestImprovedPapers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := randomInstance(rng, 8, 6, 5, 2)
	base, err := cra.SDGA{}.Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := (cra.SRA{Omega: 5, MaxRounds: 40}).Refine(in, base)
	if err != nil {
		t.Fatal(err)
	}
	if n := ImprovedPapers(in, refined, base); n < 0 || n > in.NumPapers() {
		t.Fatalf("ImprovedPapers = %d", n)
	}
	if ImprovedPapers(in, base, base) != 0 {
		t.Fatal("an assignment cannot improve on itself")
	}
}

func TestCaseStudy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := randomInstance(rng, 4, 5, 6, 2)
	in.Papers[1].Title = "The Space Complexity of Processing XML Twig Queries"
	in.Reviewers[0].Name = "Christoph Koch"
	a, err := cra.SDGA{}.Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	cs := NewCaseStudy(in, a, 1, "SDGA", 5)
	if len(cs.Topics) != 5 || len(cs.PaperWeight) != 5 || len(cs.GroupWeight) != 5 {
		t.Fatalf("case study sizes wrong: %+v", cs)
	}
	for i := range cs.Topics {
		if cs.GroupWeight[i] > cs.PaperWeight[i]+1e-12 {
			t.Fatal("covered weight exceeds the paper weight")
		}
		if i > 0 && cs.PaperWeight[i] > cs.PaperWeight[i-1]+1e-12 {
			t.Fatal("topics not sorted by paper weight")
		}
	}
	if math.Abs(cs.Score-in.GroupScore(1, a.Groups[1])) > 1e-12 {
		t.Fatal("case study score mismatch")
	}
	text := cs.String()
	if !strings.Contains(text, "SDGA") || !strings.Contains(text, "XML Twig") {
		t.Fatalf("String() missing expected content:\n%s", text)
	}
}
