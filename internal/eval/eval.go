// Package eval implements the quality metrics of the paper's experimental
// study (Section 5.2 and Appendix C): the ideal assignment and optimality
// ratio, the superiority ratio between two assignments, the lowest per-paper
// coverage score, and the per-paper case-study breakdown of Figures 19/20.
package eval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/jra"
)

// IdealAssignment assigns to every paper its best possible set of δp
// reviewers while ignoring the workload constraint, as the paper constructs
// the ideal assignment AI whose score upper-bounds the optimum (c(AI) ≥
// c(O)). Each per-paper group is solved exactly with the BBA solver so the
// bound is rigorous; conflicts of interest are still respected.
func IdealAssignment(in *core.Instance) *core.Assignment {
	return idealAssignment(engine.New(in))
}

// idealAssignment is IdealAssignment for callers that already hold an oracle
// over the instance (avoids a duplicate oracle build in OptimalityRatio).
func idealAssignment(eng *engine.Oracle) *core.Assignment {
	in := eng.Instance()
	solver := jra.BranchAndBound{}
	a := core.NewAssignment(in.NumPapers())
	for p := 0; p < in.NumPapers(); p++ {
		res, err := solver.Solve(in.JournalInstance(p))
		if err != nil {
			// Not enough conflict-free candidates for a full group; fall back
			// to the best achievable smaller group, built greedily with the
			// fused gain oracle.
			g := make(core.Vector, in.NumTopics())
			chosen := make(map[int]bool, in.GroupSize)
			for len(chosen) < in.GroupSize {
				best, bestGain := -1, -1.0
				for r := 0; r < in.NumReviewers(); r++ {
					if chosen[r] || in.IsConflict(r, p) {
						continue
					}
					if gain := eng.Gain(p, g, r); gain > bestGain {
						best, bestGain = r, gain
					}
				}
				if best == -1 {
					break
				}
				chosen[best] = true
				a.Assign(p, best)
				g.MaxInPlace(in.Reviewers[best].Topics)
			}
			continue
		}
		for _, r := range res.Group {
			a.Assign(p, r)
		}
	}
	return a
}

// OptimalityRatio returns c(A)/c(AI): the assignment's score relative to the
// ideal (workload-free) assignment. Because c(AI) ≥ c(O), the ratio is a
// lower bound on the true approximation ratio c(A)/c(O).
func OptimalityRatio(in *core.Instance, a *core.Assignment) float64 {
	eng := engine.New(in)
	ideal := eng.AssignmentScore(idealAssignment(eng))
	if ideal == 0 {
		return 1
	}
	return eng.AssignmentScore(a) / ideal
}

// Superiority holds the superiority ratio of assignment X over assignment Y.
type Superiority struct {
	// BetterOrEqual is the fraction of papers whose coverage under X is at
	// least their coverage under Y (the full bar of Figure 11).
	BetterOrEqual float64
	// Ties is the fraction of papers with equal coverage under X and Y (the
	// dark portion of the bar).
	Ties float64
}

// SuperiorityRatio compares two assignments paper by paper (Section 5.2):
// ratio(X, Y) = |{p : c(AX[p], p) ≥ c(AY[p], p)}| / P.
func SuperiorityRatio(in *core.Instance, x, y *core.Assignment) Superiority {
	eng := engine.New(in)
	sx := eng.PaperScores(x)
	sy := eng.PaperScores(y)
	better, ties := 0, 0
	for p := range sx {
		switch {
		case sx[p] > sy[p]+1e-12:
			better++
		case sx[p] >= sy[p]-1e-12:
			ties++
		}
	}
	n := float64(len(sx))
	if n == 0 {
		return Superiority{}
	}
	return Superiority{
		BetterOrEqual: float64(better+ties) / n,
		Ties:          float64(ties) / n,
	}
}

// LowestCoverage returns the minimum per-paper coverage score of the
// assignment (Table 7), i.e. the quality of the worst-served paper.
func LowestCoverage(in *core.Instance, a *core.Assignment) float64 {
	scores := in.PaperScores(a)
	if len(scores) == 0 {
		return 0
	}
	min := scores[0]
	for _, s := range scores[1:] {
		if s < min {
			min = s
		}
	}
	return min
}

// AverageCoverage returns the mean per-paper coverage score.
func AverageCoverage(in *core.Instance, a *core.Assignment) float64 {
	if in.NumPapers() == 0 {
		return 0
	}
	return in.AssignmentScore(a) / float64(in.NumPapers())
}

// ImprovedPapers counts papers whose coverage is strictly higher under X than
// under Y (the "389 out of 617 papers" style statistic of Section 5.2).
func ImprovedPapers(in *core.Instance, x, y *core.Assignment) int {
	sx := in.PaperScores(x)
	sy := in.PaperScores(y)
	n := 0
	for p := range sx {
		if sx[p] > sy[p]+1e-12 {
			n++
		}
	}
	return n
}

// CaseStudy is the per-paper breakdown of Figures 19 and 20: the paper's most
// relevant topics, the assigned reviewers, and how well the group covers each
// of those topics.
type CaseStudy struct {
	Paper     core.Paper
	Method    string
	Reviewers []core.Reviewer
	// Topics are the indices of the paper's top topics, most relevant first.
	Topics []int
	// PaperWeight[i] is the paper's weight on Topics[i].
	PaperWeight []float64
	// GroupWeight[i] is the group expertise on Topics[i] (clipped to the
	// paper weight, i.e. the achieved coverage per topic).
	GroupWeight []float64
	// Score is the overall weighted coverage of the group for the paper.
	Score float64
}

// NewCaseStudy builds the case-study breakdown for paper p under the given
// assignment, reporting the topK most relevant topics.
func NewCaseStudy(in *core.Instance, a *core.Assignment, p int, method string, topK int) CaseStudy {
	group := a.Groups[p]
	gvec := in.GroupVector(group)
	top := in.Papers[p].Topics.TopTopics(topK)
	cs := CaseStudy{
		Paper:  in.Papers[p],
		Method: method,
		Topics: top,
		Score:  in.GroupScore(p, group),
	}
	for _, r := range group {
		cs.Reviewers = append(cs.Reviewers, in.Reviewers[r])
	}
	for _, t := range top {
		cs.PaperWeight = append(cs.PaperWeight, in.Papers[p].Topics[t])
		w := gvec[t]
		if pw := in.Papers[p].Topics[t]; w > pw {
			w = pw
		}
		cs.GroupWeight = append(cs.GroupWeight, w)
	}
	return cs
}

// String renders the case study as a small text table with one row per topic.
func (cs CaseStudy) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s (score %.2f)\n", cs.Method, cs.Score)
	fmt.Fprintf(&sb, "  paper: %s\n", cs.Paper.Title)
	names := make([]string, len(cs.Reviewers))
	for i, r := range cs.Reviewers {
		names[i] = r.Name
	}
	sort.Strings(names)
	fmt.Fprintf(&sb, "  reviewers: %s\n", strings.Join(names, ", "))
	for i, t := range cs.Topics {
		fmt.Fprintf(&sb, "  topic t%-2d  paper %.3f  covered %.3f\n", t, cs.PaperWeight[i], cs.GroupWeight[i])
	}
	return sb.String()
}
