package flow

import (
	"math"
	"math/rand"
	"testing"
)

// sparseFromDense builds position-aligned candidate rows (vals, cols) from a
// dense profit matrix: every row keeps a random sorted k-subset of columns.
func sparseFromDense(rng *rand.Rand, profit [][]float64, k int) ([][]float64, [][]int32) {
	n := len(profit)
	vals := make([][]float64, n)
	cols := make([][]int32, n)
	for i := range profit {
		m := len(profit[i])
		if k >= m {
			cols[i] = make([]int32, m)
			vals[i] = make([]float64, m)
			for j := 0; j < m; j++ {
				cols[i][j] = int32(j)
				vals[i][j] = profit[i][j]
			}
			continue
		}
		perm := rng.Perm(m)[:k]
		c := make([]int32, k)
		for x, j := range perm {
			c[x] = int32(j)
		}
		for x := 1; x < len(c); x++ {
			for y := x; y > 0 && c[y] < c[y-1]; y-- {
				c[y], c[y-1] = c[y-1], c[y]
			}
		}
		v := make([]float64, k)
		for x, j := range c {
			v[x] = profit[i][j]
		}
		cols[i], vals[i] = c, v
	}
	return vals, cols
}

// maskOutsideCandidates returns a dense copy of profit with every
// non-candidate cell Forbidden (rows marked full keep every cell).
func maskOutsideCandidates(profit [][]float64, cols [][]int32, full []bool) [][]float64 {
	masked := make([][]float64, len(profit))
	for i := range profit {
		masked[i] = make([]float64, len(profit[i]))
		if full != nil && full[i] {
			copy(masked[i], profit[i])
			continue
		}
		for j := range masked[i] {
			masked[i][j] = Forbidden
		}
		for _, j := range cols[i] {
			masked[i][j] = profit[i][j]
		}
	}
	return masked
}

// TestSolveSparseAllColumnsMatchesSolve: with every column a candidate the
// sparse path must reproduce the dense solve exactly.
func TestSolveSparseAllColumnsMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		profit, need, caps := randomInstance(rng, 3+rng.Intn(5), 3+rng.Intn(5), 2, 2, 0.2)
		vals, cols := sparseFromDense(rng, profit, len(profit[0]))
		var dense, sparse Transport
		dRows, dTotal, dErr := dense.Solve(profit, need, caps)
		sRows, sTotal, sErr := sparse.SolveSparse(vals, cols, len(profit[0]), need, caps)
		if (dErr == nil) != (sErr == nil) {
			t.Fatalf("trial %d: dense err=%v sparse err=%v", trial, dErr, sErr)
		}
		if dErr != nil {
			continue
		}
		if math.Abs(dTotal-sTotal) > 1e-9 {
			t.Fatalf("trial %d: dense=%v sparse=%v", trial, dTotal, sTotal)
		}
		if got := checkFeasible(t, profit, need, caps, sRows); math.Abs(got-sTotal) > 1e-9 {
			t.Fatalf("trial %d: sparse reported %v but plan sums to %v", trial, sTotal, got)
		}
		_ = dRows
	}
}

// TestSolveSparseSubsetMatchesMaskedDense: restricting each row to a
// candidate subset must solve exactly the masked instance (non-candidate
// cells Forbidden) — same feasibility verdict, same objective — and never
// beat the unrestricted dense optimum.
func TestSolveSparseSubsetMatchesMaskedDense(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	feasible := 0
	for trial := 0; trial < 40; trial++ {
		n, m := 4+rng.Intn(5), 6+rng.Intn(5)
		profit, need, caps := randomInstance(rng, n, m, 2, 3, 0.1)
		k := 2 + rng.Intn(3)
		vals, cols := sparseFromDense(rng, profit, k)
		masked := maskOutsideCandidates(profit, cols, nil)

		var sp, dn, full Transport
		sRows, sTotal, sErr := sp.SolveSparse(vals, cols, m, need, caps)
		_, mTotal, mErr := dn.Solve(masked, need, caps)
		if (sErr == nil) != (mErr == nil) {
			t.Fatalf("trial %d: sparse err=%v masked dense err=%v", trial, sErr, mErr)
		}
		if sErr != nil {
			continue
		}
		feasible++
		if math.Abs(sTotal-mTotal) > 1e-9 {
			t.Fatalf("trial %d: sparse=%v masked dense=%v", trial, sTotal, mTotal)
		}
		if got := checkFeasible(t, masked, need, caps, sRows); math.Abs(got-sTotal) > 1e-9 {
			t.Fatalf("trial %d: sparse reported %v but plan sums to %v", trial, sTotal, got)
		}
		if _, fTotal, fErr := full.Solve(profit, need, caps); fErr == nil && sTotal > fTotal+1e-9 {
			t.Fatalf("trial %d: sparse %v beats dense optimum %v", trial, sTotal, fTotal)
		}
	}
	if feasible == 0 {
		t.Fatal("no feasible trials exercised")
	}
}

// TestSolveSparseDensifyEscape: rows whose candidate columns all saturate
// must be widened through the DenseRow callback instead of failing, and the
// result must be optimal for the widened instance.
func TestSolveSparseDensifyEscape(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	const n, m = 4, 6
	profit := make([][]float64, n)
	for i := range profit {
		profit[i] = make([]float64, m)
		for j := range profit[i] {
			profit[i][j] = rng.Float64()
		}
	}
	need := []int{1, 1, 1, 1}
	caps := []int{1, 1, 1, 1, 1, 1}
	// Every row's candidates point at the same two unit-capacity columns, so
	// two rows must densify to find capacity elsewhere.
	cols := make([][]int32, n)
	vals := make([][]float64, n)
	for i := range cols {
		cols[i] = []int32{0, 1}
		vals[i] = []float64{profit[i][0], profit[i][1]}
	}

	// Without the callback the sparse instance is genuinely infeasible.
	var bare Transport
	if _, _, err := bare.SolveSparse(vals, cols, m, need, caps); err != ErrInfeasible {
		t.Fatalf("no callback: got err=%v, want ErrInfeasible", err)
	}

	widened := 0
	densifyHook = func(rows int) { widened += rows }
	defer func() { densifyHook = nil }()
	var tr Transport
	tr.DenseRow = func(i int, buf []float64) []float64 {
		copy(buf, profit[i])
		return buf
	}
	rows, total, err := tr.SolveSparse(vals, cols, m, need, caps)
	if err != nil {
		t.Fatalf("SolveSparse with DenseRow: %v", err)
	}
	if widened != 2 {
		t.Fatalf("densified %d rows, want 2", widened)
	}
	// The solved instance is: densified rows full width, the rest restricted
	// to their candidates. Its brute-force optimum is the expected objective.
	masked := maskOutsideCandidates(profit, cols, tr.rowFull[:n])
	got := checkFeasible(t, masked, need, caps, rows)
	if math.Abs(got-total) > 1e-9 {
		t.Fatalf("reported %v but plan sums to %v", total, got)
	}
	want, ok := bruteForceTransport(masked, need, caps)
	if !ok {
		t.Fatal("masked instance unexpectedly infeasible")
	}
	if math.Abs(total-want) > 1e-9 {
		t.Fatalf("objective %v, brute force of widened instance %v", total, want)
	}
}

// TestResolveRowsSparse: warm re-solves after candidate-row edits (cost
// changes, a forbidden candidate, a demand bump) must match a fresh sparse
// solve of the edited instance.
func TestResolveRowsSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		n, m := 6+rng.Intn(5), 9+rng.Intn(6)
		profit, need, caps := randomInstance(rng, n, m, 2, 3, 0.0)
		vals, cols := sparseFromDense(rng, profit, 4)

		var warm Transport
		if _, _, err := warm.SolveSparse(vals, cols, m, need, caps); err != nil {
			continue // infeasible draw: nothing to warm-start from
		}

		// Edit a couple of rows in place: perturb one candidate, forbid
		// another, and bump one row's demand down to keep feasibility easy.
		dirty := []int{trial % n, (trial*3 + 1) % n}
		if dirty[0] == dirty[1] {
			dirty = dirty[:1]
		}
		for _, i := range dirty {
			vals[i][rng.Intn(len(vals[i]))] = rng.Float64() * 2
			vals[i][rng.Intn(len(vals[i]))] = Forbidden
		}
		need[dirty[0]] = 1

		wRows, wTotal, wErr := warm.ResolveRows(vals, dirty, need, caps)
		var cold Transport
		_, cTotal, cErr := cold.SolveSparse(vals, cols, m, need, caps)
		if (wErr == nil) != (cErr == nil) {
			t.Fatalf("trial %d: warm err=%v cold err=%v", trial, wErr, cErr)
		}
		if wErr != nil {
			continue
		}
		if math.Abs(wTotal-cTotal) > 1e-9 {
			t.Fatalf("trial %d: warm=%v cold=%v", trial, wTotal, cTotal)
		}
		masked := maskOutsideCandidates(profit, cols, nil)
		for i := range masked {
			for x, j := range cols[i] {
				masked[i][j] = vals[i][x]
			}
		}
		if got := checkFeasible(t, masked, need, caps, wRows); math.Abs(got-wTotal) > 1e-9 {
			t.Fatalf("trial %d: warm reported %v but plan sums to %v", trial, wTotal, got)
		}
	}
}

// TestResolveRowsSparseDensifiedRow: a row the escape hatch widened must be
// re-read through DenseRow on later warm re-solves, so edits to it apply
// even though the caller still passes P×k rows.
func TestResolveRowsSparseDensifiedRow(t *testing.T) {
	const n, m = 3, 5
	profit := [][]float64{
		{5, 4, 1, 1, 1},
		{5, 4, 1, 1, 1},
		{5, 4, 9, 1, 1},
	}
	need := []int{1, 1, 1}
	caps := []int{1, 1, 1, 1, 1}
	cols := [][]int32{{0, 1}, {0, 1}, {0, 1}}
	vals := [][]float64{{5, 4}, {5, 4}, {5, 4}}

	var tr Transport
	tr.DenseRow = func(i int, buf []float64) []float64 {
		copy(buf, profit[i])
		return buf
	}
	if _, _, err := tr.SolveSparse(vals, cols, m, need, caps); err != nil {
		t.Fatalf("SolveSparse: %v", err)
	}
	var full int
	for i := 0; i < n; i++ {
		if tr.rowFull[i] {
			full++
		}
	}
	if full != 1 {
		t.Fatalf("widened %d rows, want exactly 1", full)
	}

	// Edit the dense profits of every row; the densified row's new costs
	// must flow in through the callback, the candidate rows' through vals.
	for i := 0; i < n; i++ {
		profit[i][2] = 20 + float64(i)
		vals[i][1] = 6 + float64(i)
		profit[i][1] = vals[i][1]
	}
	wRows, wTotal, err := tr.ResolveRows(vals, []int{0, 1, 2}, need, caps)
	if err != nil {
		t.Fatalf("ResolveRows: %v", err)
	}
	masked := maskOutsideCandidates(profit, cols, tr.rowFull[:n])
	if got := checkFeasible(t, masked, need, caps, wRows); math.Abs(got-wTotal) > 1e-9 {
		t.Fatalf("reported %v but plan sums to %v", wTotal, got)
	}
	want, ok := bruteForceTransport(masked, need, caps)
	if !ok {
		t.Fatal("masked instance infeasible")
	}
	if math.Abs(wTotal-want) > 1e-9 {
		t.Fatalf("objective %v, brute force %v", wTotal, want)
	}
}

// TestSolveSparseShardedLoadDeterminism: the sharded sparse instance load
// must produce the identical plan and objective as the serial load.
func TestSolveSparseShardedLoadDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	n, m := 400, 200 // n*m ≥ 64k so loadWorkers actually shards
	profit, need, caps := randomInstance(rng, n, m, 2, 8, 0.0)
	vals, cols := sparseFromDense(rng, profit, 12)

	var serial Transport
	sRows, sTotal, sErr := serial.SolveSparse(vals, cols, m, need, caps)
	par := Transport{Workers: 4}
	pRows, pTotal, pErr := par.SolveSparse(vals, cols, m, need, caps)
	if (sErr == nil) != (pErr == nil) {
		t.Fatalf("serial err=%v parallel err=%v", sErr, pErr)
	}
	if sErr != nil {
		t.Skip("infeasible draw")
	}
	if sTotal != pTotal {
		t.Fatalf("objectives differ: serial=%v parallel=%v", sTotal, pTotal)
	}
	for i := range sRows {
		if len(sRows[i]) != len(pRows[i]) {
			t.Fatalf("row %d plans differ", i)
		}
		for x := range sRows[i] {
			if sRows[i][x] != pRows[i][x] {
				t.Fatalf("row %d plans differ: %v vs %v", i, sRows[i], pRows[i])
			}
		}
	}
}

// TestSolveSparseValidation: malformed candidate structures must be rejected
// up front.
func TestSolveSparseValidation(t *testing.T) {
	var tr Transport
	need, caps := []int{1}, []int{1, 1, 1}
	cases := []struct {
		name string
		vals [][]float64
		cols [][]int32
	}{
		{"ragged", [][]float64{{1, 2}}, [][]int32{{0}}},
		{"descending", [][]float64{{1, 2}}, [][]int32{{2, 1}}},
		{"duplicate", [][]float64{{1, 2}}, [][]int32{{1, 1}}},
		{"out of range", [][]float64{{1, 2}}, [][]int32{{0, 3}}},
	}
	for _, tc := range cases {
		if _, _, err := tr.SolveSparse(tc.vals, tc.cols, 3, need, caps); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
	if _, _, err := tr.SolveSparse(nil, nil, 0, nil, nil); err != nil {
		t.Fatalf("empty instance rejected: %v", err)
	}
}
