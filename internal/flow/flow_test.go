package flow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lap"
)

func TestMinCostFlowSimple(t *testing.T) {
	// source(0) -> a(1) -> sink(3) and source -> b(2) -> sink, cheaper via b.
	g := NewGraph(4)
	e1 := g.AddEdge(0, 1, 2, 1)
	g.AddEdge(1, 3, 2, 1)
	e2 := g.AddEdge(0, 2, 2, 0)
	g.AddEdge(2, 3, 2, 0)
	flow, cost, err := g.MinCostFlow(0, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if flow != 3 {
		t.Fatalf("flow = %d, want 3", flow)
	}
	// Two units via b (cost 0), one via a (cost 2).
	if math.Abs(cost-2) > 1e-9 {
		t.Fatalf("cost = %v, want 2", cost)
	}
	if g.Flow(e2) != 2 || g.Flow(e1) != 1 {
		t.Fatalf("edge flows = %d,%d", g.Flow(e1), g.Flow(e2))
	}
}

func TestMinCostFlowMaxFlowLimit(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 1, 10, 1)
	flow, cost, err := g.MinCostFlow(0, 1, 4)
	if err != nil || flow != 4 || cost != 4 {
		t.Fatalf("flow=%d cost=%v err=%v", flow, cost, err)
	}
}

func TestMinCostFlowDisconnected(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 1, 1)
	flow, _, err := g.MinCostFlow(0, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if flow != 0 {
		t.Fatalf("flow = %d, want 0", flow)
	}
}

func TestMinCostFlowSourceEqualsSink(t *testing.T) {
	g := NewGraph(1)
	if _, _, err := g.MinCostFlow(0, 0, 1); err == nil {
		t.Fatal("source == sink accepted")
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGraph(2).AddEdge(0, 5, 1, 0)
}

func TestMinCostFlowNegativeCosts(t *testing.T) {
	// A negative-cost edge must be preferred.
	g := NewGraph(4)
	g.AddEdge(0, 1, 1, -5)
	g.AddEdge(1, 3, 1, 0)
	g.AddEdge(0, 2, 1, 1)
	g.AddEdge(2, 3, 1, 0)
	flow, cost, err := g.MinCostFlow(0, 3, 1)
	if err != nil || flow != 1 {
		t.Fatalf("flow=%d err=%v", flow, err)
	}
	if cost != -5 {
		t.Fatalf("cost = %v, want -5", cost)
	}
}

func TestMaxProfitTransportBasic(t *testing.T) {
	profit := [][]float64{
		{0.9, 0.2, 0.3},
		{0.8, 0.7, 0.1},
	}
	rows, total, err := MaxProfitTransport(profit, []int{1, 1}, []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-1.6) > 1e-9 {
		t.Fatalf("total = %v, want 1.6", total)
	}
	if len(rows[0]) != 1 || len(rows[1]) != 1 || rows[0][0] != 0 || rows[1][0] != 1 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestMaxProfitTransportColumnCapacity(t *testing.T) {
	// Both rows prefer column 0 but it only has capacity 1.
	profit := [][]float64{
		{1.0, 0.1},
		{1.0, 0.5},
	}
	rows, total, err := MaxProfitTransport(profit, []int{1, 1}, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-1.5) > 1e-9 {
		t.Fatalf("total = %v, want 1.5", total)
	}
	if rows[0][0] == rows[1][0] {
		t.Fatalf("column capacity violated: %v", rows)
	}
}

func TestMaxProfitTransportMultiNeed(t *testing.T) {
	// A single row needing two distinct columns.
	profit := [][]float64{{0.5, 0.9, 0.1}}
	rows, total, err := MaxProfitTransport(profit, []int{2}, []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-1.4) > 1e-9 {
		t.Fatalf("total = %v, want 1.4", total)
	}
	if len(rows[0]) != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestMaxProfitTransportForbidden(t *testing.T) {
	profit := [][]float64{
		{Forbidden, 0.2},
		{0.9, Forbidden},
	}
	rows, _, err := MaxProfitTransport(profit, []int{1, 1}, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != 1 || rows[1][0] != 0 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestMaxProfitTransportInfeasible(t *testing.T) {
	profit := [][]float64{{Forbidden, Forbidden}}
	if _, _, err := MaxProfitTransport(profit, []int{1}, []int{1, 1}); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	// Not enough column capacity.
	if _, _, err := MaxProfitTransport([][]float64{{1, 1}}, []int{3}, []int{1, 1}); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestMaxProfitTransportValidationErrors(t *testing.T) {
	if _, _, err := MaxProfitTransport([][]float64{{1}}, []int{1, 2}, []int{1}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, _, err := MaxProfitTransport([][]float64{{1, 2}, {3}}, []int{1, 1}, []int{1, 1}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	if _, _, err := MaxProfitTransport([][]float64{{1}}, []int{-1}, []int{1}); err == nil {
		t.Fatal("negative demand accepted")
	}
	if rows, total, err := MaxProfitTransport(nil, nil, nil); err != nil || rows != nil || total != 0 {
		t.Fatal("empty instance should be trivially solved")
	}
}

// Property: with unit demands and capacities the transportation optimum
// matches the Hungarian algorithm.
func TestTransportMatchesHungarian(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		m := n + rng.Intn(4)
		profit := make([][]float64, n)
		for i := range profit {
			profit[i] = make([]float64, m)
			for j := range profit[i] {
				profit[i][j] = rng.Float64()
			}
		}
		need := make([]int, n)
		caps := make([]int, m)
		for i := range need {
			need[i] = 1
		}
		for j := range caps {
			caps[j] = 1
		}
		_, ft, err1 := MaxProfitTransport(profit, need, caps)
		_, ht, err2 := lap.MaximizeRect(profit)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(ft-ht) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: solutions respect demands, capacities and forbidden cells.
func TestTransportFeasibility(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		m := 2 + rng.Intn(6)
		profit := make([][]float64, n)
		for i := range profit {
			profit[i] = make([]float64, m)
			for j := range profit[i] {
				if rng.Float64() < 0.1 {
					profit[i][j] = Forbidden
				} else {
					profit[i][j] = rng.Float64()
				}
			}
		}
		need := make([]int, n)
		for i := range need {
			need[i] = 1 + rng.Intn(2)
		}
		caps := make([]int, m)
		for j := range caps {
			caps[j] = 1 + rng.Intn(2)
		}
		rows, _, err := MaxProfitTransport(profit, need, caps)
		if err == ErrInfeasible {
			return true
		}
		if err != nil {
			return false
		}
		colUse := make([]int, m)
		for i, cols := range rows {
			if len(cols) != need[i] {
				return false
			}
			seen := map[int]bool{}
			for _, c := range cols {
				if seen[c] || math.IsInf(profit[i][c], -1) {
					return false
				}
				seen[c] = true
				colUse[c]++
			}
		}
		for j, u := range colUse {
			if u > caps[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
