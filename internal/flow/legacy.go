package flow

import "math"

// legacyMaxProfitTransport is the original transportation path: it expands
// the instance into the generic adjacency-list Graph (source → rows → columns
// → sink) and runs the SPFA-based successive-shortest-paths solver, one
// search per unit of flow. Selected with the Legacy solver; the default
// solver is Transport.
func legacyMaxProfitTransport(profit [][]float64, rowNeed, colCap []int) ([][]int, float64, error) {
	if err := validateTransport(profit, rowNeed, colCap); err != nil {
		return nil, 0, err
	}
	n := len(profit)
	if n == 0 {
		return nil, 0, nil
	}
	m := len(profit[0])
	need := 0
	for _, r := range rowNeed {
		need += r
	}

	// Node layout: 0 = source, 1..n = rows, n+1..n+m = columns, n+m+1 = sink.
	source := 0
	rowNode := func(i int) int { return 1 + i }
	colNode := func(j int) int { return 1 + n + j }
	sink := 1 + n + m
	g := NewGraph(sink + 1)

	for i := 0; i < n; i++ {
		g.AddEdge(source, rowNode(i), rowNeed[i], 0)
	}
	type pairEdge struct{ row, col, id int }
	var pairs []pairEdge
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			p := profit[i][j]
			if math.IsInf(p, -1) {
				continue
			}
			id := g.AddEdge(rowNode(i), colNode(j), 1, -p)
			pairs = append(pairs, pairEdge{row: i, col: j, id: id})
		}
	}
	for j := 0; j < m; j++ {
		if colCap[j] > 0 {
			g.AddEdge(colNode(j), sink, colCap[j], 0)
		}
	}

	flowed, cost, err := g.MinCostFlow(source, sink, need)
	if err != nil {
		return nil, 0, err
	}
	if flowed < need {
		return nil, 0, ErrInfeasible
	}
	out := make([][]int, n)
	for _, pe := range pairs {
		if g.Flow(pe.id) > 0 {
			out[pe.row] = append(out[pe.row], pe.col)
		}
	}
	return out, -cost, nil
}
