// Package flow solves the transportation problems of the reviewer-assignment
// pipeline:
//
//   - the Stage-WGRAP sub-problem of the Stage Deepening Greedy Algorithm
//     when the per-stage reviewer workload ⌈δr/δp⌉ exceeds one (Section 4.2),
//     where the Hungarian algorithm no longer applies directly; and
//   - the ARAP/ILP baseline of the experiments (Section 5.2), whose
//     pair-additive objective makes the relaxation integral, so min-cost flow
//     yields the exact optimum.
//
// The default solver is Transport: costs are reduced to non-negative with
// Johnson-style node potentials, each phase runs one dense Dijkstra over the
// CSR-stored bipartite residual graph and augments along every tight path it
// exposes (many units per search), and Solve/Resolve warm-start potentials
// and residual flow across related instances (SDGA's δp stage re-solves).
// This file keeps the original generic min-cost max-flow solver (successive
// shortest paths with SPFA, one search per unit of flow), which still backs
// the Legacy transportation path used by parity tests and ablations.
package flow

import (
	"errors"
	"math"
)

// Graph is a flow network on nodes 0..n-1 with capacities and per-unit costs.
type Graph struct {
	n     int
	heads [][]int // adjacency: node -> indices into edges
	edges []edge
}

type edge struct {
	to, rev  int // rev is the global index of the reverse edge in edges
	cap      int
	cost     float64
	original int // original capacity (to recover flow)
}

// NewGraph creates an empty flow network with n nodes.
func NewGraph(n int) *Graph {
	return &Graph{n: n, heads: make([][]int, n)}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// AddEdge adds a directed edge from u to v with the given capacity and cost
// and returns its identifier, which can later be passed to Flow.
func (g *Graph) AddEdge(u, v, capacity int, cost float64) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic("flow: node out of range")
	}
	id := len(g.edges)
	rid := id + 1
	g.edges = append(g.edges, edge{to: v, rev: rid, cap: capacity, cost: cost, original: capacity})
	g.edges = append(g.edges, edge{to: u, rev: id, cap: 0, cost: -cost, original: 0})
	g.heads[u] = append(g.heads[u], id)
	g.heads[v] = append(g.heads[v], rid)
	return id
}

// Flow returns the amount of flow pushed through the edge with the given
// identifier after MinCostFlow has run.
func (g *Graph) Flow(id int) int {
	e := g.edges[id]
	return e.original - e.cap
}

// MinCostFlow pushes up to maxFlow units from source to sink along successive
// shortest (cheapest) paths and returns the flow actually pushed and its total
// cost. Negative edge costs are allowed (SPFA is used for the shortest path).
func (g *Graph) MinCostFlow(source, sink, maxFlow int) (int, float64, error) {
	if source == sink {
		return 0, 0, errors.New("flow: source equals sink")
	}
	totalFlow := 0
	totalCost := 0.0
	for totalFlow < maxFlow {
		dist, parentEdge := g.spfa(source)
		if math.IsInf(dist[sink], 1) {
			break
		}
		// Find bottleneck along the path.
		push := maxFlow - totalFlow
		for v := sink; v != source; {
			id := parentEdge[v]
			if g.edges[id].cap < push {
				push = g.edges[id].cap
			}
			v = g.edges[g.edges[id].rev].to // tail of edge id
		}
		// Apply.
		for v := sink; v != source; {
			id := parentEdge[v]
			g.edges[id].cap -= push
			g.edges[g.edges[id].rev].cap += push
			v = g.edges[g.edges[id].rev].to
		}
		totalFlow += push
		totalCost += dist[sink] * float64(push)
	}
	return totalFlow, totalCost, nil
}

// spfa computes single-source shortest distances by cost over edges with
// residual capacity, returning the distance array and, for every node, the
// edge used to reach it.
func (g *Graph) spfa(source int) ([]float64, []int) {
	dist := make([]float64, g.n)
	inQueue := make([]bool, g.n)
	parentEdge := make([]int, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
		parentEdge[i] = -1
	}
	dist[source] = 0
	queue := []int{source}
	inQueue[source] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		for _, id := range g.heads[u] {
			e := g.edges[id]
			if e.cap <= 0 {
				continue
			}
			if nd := dist[u] + e.cost; nd < dist[e.to]-1e-12 {
				dist[e.to] = nd
				parentEdge[e.to] = id
				if !inQueue[e.to] {
					queue = append(queue, e.to)
					inQueue[e.to] = true
				}
			}
		}
	}
	return dist, parentEdge
}
