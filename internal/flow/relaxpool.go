package flow

import (
	"runtime"
	"sync/atomic"
)

// relaxPool runs the sharded row-relaxation scans of one Transport on a set
// of persistent workers. A repair search settles on the order of n rows and
// each settled wide row dispatches one ~m-cell scan — a few microseconds of
// work — so the per-dispatch cost has to stay in the ~100ns range for the
// sharding to win: spawning goroutines (a microsecond each) or waking parked
// ones (a futex round trip) once per row would eat the parallel gain.
// Workers therefore spin briefly on the dispatch sequence number, staying
// hot across the few-microsecond gaps between dispatches within one search,
// and park on a channel only when the spin budget runs out (between searches
// and between solves) — one wake-up per worker per search instead of one per
// row.
//
// Memory-model notes: the dispatcher writes the scan payload, then publishes
// it with the atomic seq increment; a worker's acquiring seq load therefore
// observes the payload. Each worker's relaxBufs writes are published by its
// atomic done increment and observed by the dispatcher's done loads, so the
// dispatcher reads complete buffers after the barrier. While no scan is
// dispatched, workers touch nothing but the pool's atomics — the owning
// goroutine may freely mutate the Transport between dispatches.
type relaxPool struct {
	t       *Transport
	workers int

	seq  atomic.Uint32 // dispatch sequence; incremented to publish a scan
	done atomic.Int32  // worker scans completed for the current dispatch
	stop atomic.Bool

	// Scan payload, valid for the dispatch published by the latest seq.
	x      int32
	bd, ur float64
	lo, hi int32

	parked []atomic.Bool   // parked[wi]: worker wi is blocked on wake[wi]
	wake   []chan struct{} // capacity-1 park channels
}

// relaxSpinBudget bounds how long an idle worker spins on seq before
// parking. The budget only needs to cover the serial work between two row
// settles of one search (heap pops plus the label replay, single-digit
// microseconds); parking promptly after that keeps idle workers off the CPU
// between searches.
const relaxSpinBudget = 1 << 13

// startRelaxPool spins up the sharded-relaxation workers if the transport
// wants them and none are running. It returns whether this call started the
// pool and therefore owns the matching stopRelaxPool (run and repairSinkDual
// can nest, e.g. through resetFlow).
func (t *Transport) startRelaxPool() bool {
	if t.relax != nil {
		return false
	}
	w := t.searchWorkers()
	if w <= 1 {
		return false
	}
	if cap(t.relaxBufs) < w {
		t.relaxBufs = make([][]relaxCand, w)
	}
	t.relaxBufs = t.relaxBufs[:w]
	p := &relaxPool{
		t:       t,
		workers: w,
		parked:  make([]atomic.Bool, w),
		wake:    make([]chan struct{}, w),
	}
	for wi := 1; wi < w; wi++ {
		p.wake[wi] = make(chan struct{}, 1)
		go p.work(wi)
	}
	t.relax = p
	return true
}

// stopRelaxPool shuts the workers down and detaches the pool. Pool
// goroutines never outlive the solve that started them, so an abandoned
// Transport leaks nothing.
func (t *Transport) stopRelaxPool() {
	p := t.relax
	if p == nil {
		return
	}
	t.relax = nil
	p.stop.Store(true)
	for wi := 1; wi < p.workers; wi++ {
		if p.parked[wi].CompareAndSwap(true, false) {
			select {
			case p.wake[wi] <- struct{}{}:
			default:
			}
		}
	}
}

// dispatch publishes one row scan to the workers, runs shard 0 on the
// calling goroutine, and returns once every shard has filled its relaxBufs
// entry.
func (p *relaxPool) dispatch(x int32, bd, ur float64, lo, hi int32) {
	p.x, p.bd, p.ur, p.lo, p.hi = x, bd, ur, lo, hi
	p.done.Store(0)
	p.seq.Add(1)
	for wi := 1; wi < p.workers; wi++ {
		if p.parked[wi].CompareAndSwap(true, false) {
			select {
			case p.wake[wi] <- struct{}{}:
			default: // a stale token is already buffered; it will wake the worker
			}
		}
	}
	p.t.relaxScan(0, p.workers, x, bd, ur, lo, hi)
	for p.done.Load() < int32(p.workers-1) {
		runtime.Gosched()
	}
}

// work is the worker loop: spin on seq for the next dispatch, run the
// worker's shard, count it done; park when the spin budget runs out.
func (p *relaxPool) work(wi int) {
	last := uint32(0)
	for {
		s := p.seq.Load()
		if s == last {
			for i := 0; s == last && i < relaxSpinBudget; i++ {
				if p.stop.Load() {
					return
				}
				if i&255 == 255 {
					runtime.Gosched()
				}
				s = p.seq.Load()
			}
			if s == last {
				// Park. The seq re-check after publishing parked closes the
				// race with a concurrent dispatch: if the dispatcher's seq
				// increment preceded our parked store, we see it here and skip
				// the block; otherwise the dispatcher's CAS sees parked and
				// sends a token. A token can go stale only on this abort path,
				// and the next blocking receive consumes it as a spurious
				// wake-up, so at most one is ever buffered.
				p.parked[wi].Store(true)
				if p.seq.Load() == last && !p.stop.Load() {
					<-p.wake[wi]
				}
				p.parked[wi].Store(false)
				continue
			}
		}
		if p.stop.Load() {
			return
		}
		last = s
		p.t.relaxScan(wi, p.workers, p.x, p.bd, p.ur, p.lo, p.hi)
		p.done.Add(1)
	}
}
