package flow

import (
	"errors"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrInfeasible is returned when a transportation instance cannot satisfy the
// demand of every row.
var ErrInfeasible = errors.New("flow: demand cannot be satisfied")

// Forbidden marks an impossible row/column pairing in MaxProfitTransport.
var Forbidden = math.Inf(-1)

// Solver selects the algorithm behind MaxProfitTransport.
type Solver int

// Transportation solvers.
const (
	// Dijkstra is the default solver: Johnson-style node potentials keep
	// every residual reduced cost non-negative, so each phase can run one
	// heap-frontier Dijkstra over the bipartite residual graph and then
	// augment along every tight (zero-reduced-cost) path the search exposes —
	// many units of flow per search instead of one SPFA per unit. Instances
	// are stored in flat CSR arrays with reusable scratch buffers; see
	// Transport.
	Dijkstra Solver = iota
	// Legacy is the original successive-shortest-paths solver: one SPFA per
	// unit of flow over the generic adjacency-list Graph of this package.
	// Kept for parity tests and the transport ablation benchmarks.
	Legacy
)

// validateTransport checks the shared preconditions of both solvers.
func validateTransport(profit [][]float64, rowNeed, colCap []int) error {
	n := len(profit)
	if n == 0 {
		if len(rowNeed) != 0 || len(colCap) != 0 {
			return errors.New("flow: dimension mismatch")
		}
		return nil
	}
	m := len(profit[0])
	if len(rowNeed) != n || len(colCap) != m {
		return errors.New("flow: dimension mismatch")
	}
	for i := range profit {
		if len(profit[i]) != m {
			return errors.New("flow: ragged profit matrix")
		}
		if rowNeed[i] < 0 {
			return errors.New("flow: negative row demand")
		}
	}
	for _, c := range colCap {
		if c < 0 {
			return errors.New("flow: negative column capacity")
		}
	}
	return nil
}

// MaxProfitTransport solves the transportation problem used by Stage-WGRAP
// and the ARAP baseline: every row i (a paper) must be matched to exactly
// rowNeed[i] distinct columns (reviewers), every column j may serve at most
// colCap[j] rows, and the sum of profit[i][j] over matched pairs is
// maximised. Cells equal to Forbidden are never matched (conflicts of
// interest or reviewers already in the paper's group).
//
// It returns, for every row, the sorted list of matched column indices, and
// uses the default Dijkstra solver; callers that need to re-solve the same
// instance under changing capacities, or to warm-start a sequence of related
// instances, should hold a Transport instead.
func MaxProfitTransport(profit [][]float64, rowNeed, colCap []int) ([][]int, float64, error) {
	return MaxProfitTransportWith(Dijkstra, profit, rowNeed, colCap)
}

// MaxProfitTransportWith is MaxProfitTransport with an explicit solver
// selection.
func MaxProfitTransportWith(s Solver, profit [][]float64, rowNeed, colCap []int) ([][]int, float64, error) {
	if s == Legacy {
		return legacyMaxProfitTransport(profit, rowNeed, colCap)
	}
	var t Transport
	return t.Solve(profit, rowNeed, colCap)
}

// tightEps is the tolerance under which a residual reduced cost counts as
// zero (a "tight" edge usable by the augmenting DFS). Potentials are sums of
// a handful of O(1)-magnitude profits, so float noise sits around 1e-15;
// 1e-12 leaves three orders of magnitude of slack without admitting paths
// that are measurably non-shortest.
const tightEps = 1e-12

// seedCands is how many tight candidate edges per row the instance-load pass
// records for the greedy seed placement (see seed). With continuous profits a
// row almost always has exactly one tight edge under cold duals, so a small
// fixed fan-out covers practically every row; rows that exhaust their
// candidates simply fall through to the augmenting DFS.
const seedCands = 4

// colArc is one unit of flow through a column: the row it serves and the CSR
// edge that carries it.
type colArc struct{ row, edge int32 }

// pathStep is one edge of an augmenting path: at even positions the CSR edge
// row→column being assigned (row is the tail), at odd positions the assigned
// edge being released (row is its owner).
type pathStep struct {
	edge int32
	row  int32
}

// Transport is a reusable solver for the Stage-WGRAP / ARAP transportation
// problem (see MaxProfitTransport for the model). It exists for two reasons
// beyond raw speed:
//
//   - all state — the CSR instance, flow, potentials and search scratch —
//     lives in flat buffers that are reused across calls, so SDGA's δp stage
//     re-solves through one Transport run allocation-free apart from their
//     result slices; and
//   - it is incremental: Resolve re-solves the current instance after a
//     column-capacity change, and ResolveRows after per-row profit or demand
//     edits, warm-starting from the residual flow and potentials of the
//     previous solve so only the changed parts are re-worked (SDGA's
//     stage-capacity fallback and the session warm re-solves).
//
// The zero value is ready to use. A Transport must not be used concurrently;
// setting Workers > 1 only shards the internal instance-load passes, the
// external contract is unchanged.
type Transport struct {
	// Workers bounds the goroutines used by Solve/SolveDense to load the
	// instance (CSR build, cold duals, seed candidates) sharded across rows.
	// 0 or 1 means serial. The solved plan and objective are identical for
	// every value: the parallel passes write disjoint per-row state computed
	// from immutable inputs, and the claim order that consumes them stays
	// serial in row order.
	Workers int

	// DenseRow, when set, supplies the full-width profit row of row i on
	// demand (into buf, len m; the returned slice is read immediately). It is
	// the escape hatch of the sparse mode: when a row's candidate columns all
	// saturate (conflicted or at capacity), the solver widens that one row to
	// full width instead of failing, so candidate pruning can never make a
	// feasible instance infeasible. The callback must stay consistent with
	// the last loaded instance until the next SolveSparse/Solve/SolveDense,
	// and — with Workers > 1 — must be safe to call from multiple goroutines
	// for distinct rows (the ResolveRows read phase is sharded).
	DenseRow func(row int, buf []float64) []float64

	n, m int

	// CSR of the usable cells: row i's cells are
	// colIdx[rowStart[i]:rowStart[i+1]], cost holds the negated profit.
	// Solve drops Forbidden cells from the CSR; SolveDense keeps every cell
	// (Forbidden ones carry +Inf cost), making the sparsity pattern
	// edit-stable so ResolveRows can re-cost any row in place. SolveSparse
	// keeps one cell per candidate column (Forbidden candidates carry +Inf
	// cost), so its P×k pattern is edit-stable the same way.
	rowStart []int32
	colIdx   []int32
	cost     []float64
	assigned []bool
	dense    bool
	sparse   bool
	// rowFull marks sparse rows widened to full width by the densification
	// escape hatch; their CSR segment covers every column (position == column
	// index, like a dense row).
	rowFull []bool
	// stuck collects the deficit rows whose shortest-path search failed in
	// the current attempt — the densification candidates.
	stuck    []int32
	denseBuf []float64
	// Spare CSR buffers for rebuildSparseCSR (swapped with the live arrays on
	// every densification so repeated rebuilds do not allocate).
	rowStartTmp []int32
	colIdxTmp   []int32
	costTmp     []float64

	rowNeed []int
	colCap  []int
	rowFlow []int
	deficit int // Σ_i (rowNeed[i] − rowFlow[i])

	// colPairs[j] lists the units currently flowing through column j; its
	// length is the column's used capacity.
	colPairs [][]colArc

	// Node potentials (u rows, v columns, potT the implicit sink): every
	// residual edge keeps reduced cost c + pot(tail) − pot(head) ≥ 0, which
	// is what lets Dijkstra replace SPFA on a graph whose raw costs are
	// negative. potT − v[j] is the dual price of column j's capacity: zero
	// for columns with spare slots, positive for binding ones. Only dual
	// differences are meaningful: the per-phase Johnson update is applied
	// shifted by −distT so that untouched nodes keep their value (see
	// dijkstra), which keeps the update O(touched) instead of O(V).
	u, v   []float64
	potT   float64
	solved bool

	// Search scratch, generation-marked so a phase only initialises what it
	// touches: dist/settled/parentEdge/parentNode[x] are valid iff
	// mark[x] == gen, and arcRow/arcCol[x] iff arcMark[x] == gen. touched
	// lists the nodes labeled by the current phase — the only ones whose
	// potentials the Johnson update must move.
	dist       []float64
	settled    []bool
	parentEdge []int32
	parentNode []int32
	mark       []uint32
	arcMark    []uint32
	gen        uint32
	touched    []int32
	heap       []heapNode

	arcRow []int32
	arcCol []int32
	onPath []bool
	path   []pathStep

	// cycleCands collects every improving-cycle candidate settled by one
	// repair search (cancelImprovingCycle applies a node-disjoint batch of
	// them per search instead of the single best).
	cycleCands []cycleCand

	// relax, when non-nil, is the persistent worker pool that shards wide row
	// relaxations during a search (started around run and repairSinkDual when
	// Workers > 1 and the instance is wide enough); relaxBufs holds one
	// label-candidate buffer per worker (see relaxRowSharded).
	relax     *relaxPool
	relaxBufs [][]relaxCand

	// Scratch of the ResolveRows dirty-row pass: per-dirty-row keep decision
	// and released-dual value computed by the (possibly sharded) read phase,
	// consumed by the serial claim phase; rrBufs holds one DenseRow buffer per
	// worker so densified rows can be re-read concurrently.
	rrKeep []bool
	rrBest []float64
	rrBufs [][]float64

	// deficitRows lists the rows still short of their demand, rebuilt once
	// per run and compacted lazily, so phases iterate deficits instead of
	// scanning all n rows.
	deficitRows []int32

	// cand holds seedCands tight candidate edges per row (-1 padded),
	// produced by the instance-load pass and consumed once by seed.
	cand      []int32
	rowCnt    []int32
	seedReady bool
}

// heapNode is one frontier entry: a node index and the distance it was pushed
// with. Stale entries (their node already settled, or re-pushed with a
// smaller distance) are skipped on pop.
type heapNode struct {
	d float64
	x int32
}

// cycleCand is one improving-cycle candidate of a repair search: an
// underpriced spare column settled through the flow, with its cycle value
// (settled distance + sink gap, < 0 for an improvement).
type cycleCand struct {
	cand float64
	j    int32
}

// relaxCand is one improving label found by a sharded row-relaxation worker:
// the edge and the tentative distance of its column.
type relaxCand struct {
	d float64
	e int32
}

// NewTransport returns an empty reusable solver (equivalent to new(Transport)).
func NewTransport() *Transport { return &Transport{} }

// Solve loads the instance into the solver's flat buffers and computes an
// optimal transportation plan, returning the per-row matched columns (sorted)
// and the total profit. On ErrInfeasible the partial maximum flow is
// retained, so a following Resolve with enlarged capacities continues from
// it instead of starting over.
func (t *Transport) Solve(profit [][]float64, rowNeed, colCap []int) ([][]int, float64, error) {
	return t.solve(profit, rowNeed, colCap, false)
}

// SolveDense is Solve with a dense CSR: every cell is kept, Forbidden cells
// with +Inf cost, so the sparsity pattern survives any later per-row profit
// edit. Sessions use it so ResolveRows can warm-start re-solves after
// conflict additions, withdrawals or score changes; the solved plan and
// objective are identical to Solve's (a +Inf-cost edge is never used).
func (t *Transport) SolveDense(profit [][]float64, rowNeed, colCap []int) ([][]int, float64, error) {
	return t.solve(profit, rowNeed, colCap, true)
}

func (t *Transport) solve(profit [][]float64, rowNeed, colCap []int, dense bool) ([][]int, float64, error) {
	if err := validateTransport(profit, rowNeed, colCap); err != nil {
		return nil, 0, err
	}
	n := len(profit)
	if n == 0 {
		t.n, t.m = 0, 0
		t.solved = true
		return nil, 0, nil
	}
	m := len(profit[0])
	t.n, t.m = n, m
	t.dense = dense
	t.sparse = false

	t.buildCSR(profit, dense)
	t.assigned = growBool(t.assigned, len(t.colIdx))
	clear(t.assigned)

	t.rowNeed = growInt(t.rowNeed, n)
	copy(t.rowNeed, rowNeed)
	t.colCap = growInt(t.colCap, m)
	copy(t.colCap, colCap)
	t.rowFlow = growInt(t.rowFlow, n)
	clear(t.rowFlow)
	t.deficit = 0
	for _, need := range rowNeed {
		t.deficit += need
	}
	if cap(t.colPairs) < m {
		t.colPairs = make([][]colArc, m)
	}
	t.colPairs = t.colPairs[:m]
	for j := range t.colPairs {
		t.colPairs[j] = t.colPairs[j][:0]
	}

	// Potentials: with zero flow the residual graph has no backward arcs,
	// so a row's true shortest path is simply its best cell — which is what
	// cold duals (v = 0, u[i] = max_j profit[i][j], potT = 0) encode. They
	// make every column sink-tight, letting the greedy seed and tight pass
	// place most units before the first Dijkstra. (Retaining the previous
	// instance's spread-out column duals was measured to serialise the
	// augmentation to one unit per phase, an order of magnitude slower —
	// after a cost change, cold duals are the correct warm start.)
	t.v = growFloat(t.v, m)
	clear(t.v)
	t.u = growFloat(t.u, n)
	t.resetDualsForEmptyFlow()
	t.solved = true

	if err := t.run(); err != nil {
		return nil, 0, err
	}
	return t.extract()
}

// buildCSR loads the profit matrix into the flat CSR arrays; when Workers > 1
// the per-row segments are filled by a pool of goroutines (each row's
// segment is disjoint, so the result is identical to the serial build).
func (t *Transport) buildCSR(profit [][]float64, dense bool) {
	n, m := t.n, t.m
	t.rowStart = growInt32(t.rowStart, n+1)
	workers := t.loadWorkers()
	if dense {
		for i := 0; i <= n; i++ {
			t.rowStart[i] = int32(i * m)
		}
		t.colIdx = growInt32(t.colIdx, n*m)
		t.cost = growFloat(t.cost, n*m)
		shardRows(workers, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				base := i * m
				for j, p := range profit[i] {
					t.colIdx[base+j] = int32(j)
					if math.IsInf(p, -1) {
						t.cost[base+j] = math.Inf(1)
					} else {
						t.cost[base+j] = -p
					}
				}
			}
		})
		return
	}
	if workers <= 1 {
		t.colIdx = t.colIdx[:0]
		t.cost = t.cost[:0]
		t.rowStart[0] = 0
		for i, row := range profit {
			for j, p := range row {
				if math.IsInf(p, -1) {
					continue
				}
				t.colIdx = append(t.colIdx, int32(j))
				t.cost = append(t.cost, -p)
			}
			t.rowStart[i+1] = int32(len(t.colIdx))
		}
		return
	}
	// Sparse parallel build: count usable cells per row, prefix-sum the row
	// starts, then fill each row's segment in place.
	t.rowCnt = growInt32(t.rowCnt, n)
	shardRows(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c := int32(0)
			for _, p := range profit[i] {
				if !math.IsInf(p, -1) {
					c++
				}
			}
			t.rowCnt[i] = c
		}
	})
	t.rowStart[0] = 0
	for i := 0; i < n; i++ {
		t.rowStart[i+1] = t.rowStart[i] + t.rowCnt[i]
	}
	total := int(t.rowStart[n])
	t.colIdx = growInt32(t.colIdx, total)
	t.cost = growFloat(t.cost, total)
	shardRows(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := t.rowStart[i]
			for j, p := range profit[i] {
				if math.IsInf(p, -1) {
					continue
				}
				t.colIdx[e] = int32(j)
				t.cost[e] = -p
				e++
			}
		}
	})
}

// validateTransportSparse checks the preconditions of the sparse-row mode:
// matching row counts, position-aligned vals/cols rows, strictly ascending
// in-range candidate columns, non-negative demands and capacities.
func validateTransportSparse(vals [][]float64, cols [][]int32, m int, rowNeed, colCap []int) error {
	n := len(vals)
	if len(cols) != n || len(rowNeed) != n || len(colCap) != m {
		return errors.New("flow: dimension mismatch")
	}
	if m < 0 {
		return errors.New("flow: negative column count")
	}
	for i := range vals {
		if len(vals[i]) != len(cols[i]) {
			return errors.New("flow: ragged candidate rows")
		}
		if rowNeed[i] < 0 {
			return errors.New("flow: negative row demand")
		}
		prev := int32(-1)
		for _, j := range cols[i] {
			if j <= prev || int(j) >= m {
				return errors.New("flow: candidate columns must be strictly ascending and in range")
			}
			prev = j
		}
	}
	for _, c := range colCap {
		if c < 0 {
			return errors.New("flow: negative column capacity")
		}
	}
	return nil
}

// SolveSparse solves the instance restricted to per-row candidate columns:
// vals[i][x] is the profit of pairing row i with column cols[i][x] (columns
// strictly ascending per row); pairs outside the candidate lists do not
// exist. Every pass — CSR build, cold duals, greedy seeding, Dijkstra
// phases, ResolveRows — then scales with the candidate count instead of m.
//
// Forbidden candidate cells are kept at +Inf cost (as in SolveDense), so the
// P×k pattern is edit-stable and ResolveRows can re-cost candidate rows in
// place for warm re-solves. When a row's candidates saturate and its demand
// cannot be met, the solver widens that row to full width through the
// DenseRow callback and retries (see Transport.DenseRow) — with the callback
// set, SolveSparse is infeasible only when the underlying dense instance is.
func (t *Transport) SolveSparse(vals [][]float64, cols [][]int32, m int, rowNeed, colCap []int) ([][]int, float64, error) {
	if err := t.LoadSparse(vals, cols, m, rowNeed, colCap); err != nil {
		return nil, 0, err
	}
	if t.n == 0 {
		return nil, 0, nil
	}
	if err := t.run(); err != nil {
		return nil, 0, err
	}
	return t.extract()
}

// LoadSparse validates and loads a sparse-row instance into the solver's
// flat buffers — CSR from the candidate lists (sharded across rows when
// Workers > 1), capacities, zero flow and cold duals — without running the
// solve. SolveSparse is LoadSparse followed by the augmentation run;
// LoadSparse is exposed for callers that stage instance loading separately
// (and for tests of the construction pass).
func (t *Transport) LoadSparse(vals [][]float64, cols [][]int32, m int, rowNeed, colCap []int) error {
	if err := validateTransportSparse(vals, cols, m, rowNeed, colCap); err != nil {
		return err
	}
	n := len(vals)
	if n == 0 {
		t.n, t.m = 0, 0
		t.solved = true
		return nil
	}
	t.n, t.m = n, m
	t.dense = false
	t.sparse = true
	t.rowFull = growBool(t.rowFull, n)
	clear(t.rowFull)

	t.rowStart = growInt32(t.rowStart, n+1)
	t.rowStart[0] = 0
	for i := 0; i < n; i++ {
		t.rowStart[i+1] = t.rowStart[i] + int32(len(cols[i]))
	}
	total := int(t.rowStart[n])
	t.colIdx = growInt32(t.colIdx, total)
	t.cost = growFloat(t.cost, total)
	shardRows(t.loadWorkers(), n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			base := int(t.rowStart[i])
			copy(t.colIdx[base:base+len(cols[i])], cols[i])
			for x, p := range vals[i] {
				if math.IsInf(p, -1) {
					t.cost[base+x] = math.Inf(1)
				} else {
					t.cost[base+x] = -p
				}
			}
		}
	})
	t.assigned = growBool(t.assigned, total)
	clear(t.assigned)

	t.rowNeed = growInt(t.rowNeed, n)
	copy(t.rowNeed, rowNeed)
	t.colCap = growInt(t.colCap, m)
	copy(t.colCap, colCap)
	t.rowFlow = growInt(t.rowFlow, n)
	clear(t.rowFlow)
	t.deficit = 0
	for _, need := range rowNeed {
		t.deficit += need
	}
	if cap(t.colPairs) < m {
		t.colPairs = make([][]colArc, m)
	}
	t.colPairs = t.colPairs[:m]
	for j := range t.colPairs {
		t.colPairs[j] = t.colPairs[j][:0]
	}

	t.v = growFloat(t.v, m)
	clear(t.v)
	t.u = growFloat(t.u, n)
	t.resetDualsForEmptyFlow()
	t.solved = true
	return nil
}

// loadWorkers returns the effective worker count for the instance-load
// passes: Workers capped to something useful for the instance size.
func (t *Transport) loadWorkers() int {
	w := t.Workers
	if w <= 1 || t.n < 2 {
		return 1
	}
	// Below ~64k cells the goroutine handoff costs more than it saves.
	if t.n*t.m < 1<<16 {
		return 1
	}
	if w > t.n {
		w = t.n
	}
	return w
}

// resolveRowsWorkers bounds the goroutines of the ResolveRows read phase:
// the per-row work is O(m), so small batches (a single withdrawal, one late
// conflict) stay serial — the handoff would cost more than it saves.
func (t *Transport) resolveRowsWorkers(nr int) int {
	w := t.Workers
	if w <= 1 || nr < 2 {
		return 1
	}
	if nr*t.m < 1<<15 {
		return 1
	}
	if w > nr {
		w = nr
	}
	return w
}

// duplicateRows reports whether rows lists the same index twice.
func duplicateRows(rows []int) bool {
	seen := make(map[int]struct{}, len(rows))
	for _, i := range rows {
		if _, ok := seen[i]; ok {
			return true
		}
		seen[i] = struct{}{}
	}
	return false
}

// shardRows runs fn over [0, n) split into one contiguous block per worker.
// Blocks are disjoint, so fn may write per-row state without synchronisation.
func shardRows(workers, n int, fn func(lo, hi int)) {
	shardRowsID(workers, n, func(_, lo, hi int) { fn(lo, hi) })
}

// shardRowsID is shardRows with the worker index passed through, for shards
// that need per-worker scratch buffers.
func shardRowsID(workers, n int, fn func(w, lo, hi int)) {
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// Resolve re-solves the instance of the preceding Solve after a column
// capacity change, warm-starting from the current residual flow and
// potentials: columns whose capacity grew simply regain spare slots, columns
// now over capacity have the surplus units cancelled (the affected rows are
// fully released and their dual repaired), and only the resulting deficits
// are re-augmented. Profits and row demands are those of the last Solve.
func (t *Transport) Resolve(colCap []int) ([][]int, float64, error) {
	if !t.solved {
		return nil, 0, errors.New("flow: Resolve called before Solve")
	}
	if len(colCap) != t.m {
		return nil, 0, errors.New("flow: dimension mismatch")
	}
	for _, c := range colCap {
		if c < 0 {
			return nil, 0, errors.New("flow: negative column capacity")
		}
	}
	if t.n == 0 {
		return nil, 0, nil
	}
	for j, c := range colCap {
		for len(t.colPairs[j]) > c {
			a := t.colPairs[j][len(t.colPairs[j])-1]
			t.releaseRow(int(a.row))
		}
		t.colCap[j] = c
	}
	// The retained flow is only optimal for its value if the sink-side dual
	// stays feasible; repairSinkDual re-pins the sink potential when it can
	// and restarts the flow from cold duals when it cannot.
	t.repairSinkDual()
	if err := t.run(); err != nil {
		return nil, 0, err
	}
	return t.extract()
}

// ResolveRows re-solves the instance of the preceding SolveDense or
// SolveSparse after in-place edits to the profit rows listed in rows: each
// dirty row's costs are re-read from profit (the CSR pattern is unchanged,
// so Forbidden cells simply become +Inf), its flow is released and its dual
// repaired, its demand is updated from rowNeed, and column capacities are
// updated as in Resolve. Only the released units are re-augmented unless the
// sink-side dual turns infeasible, in which case the flow restarts from cold
// duals on the kept CSR (still far cheaper than a cold Solve, which would
// also rescan every clean row).
//
// profit rows are position-aligned with the loaded CSR: the full dense row
// after SolveDense, the candidate cells (in candidate order) after
// SolveSparse. A sparse row the escape hatch widened to full width is
// re-read through the DenseRow callback instead of profit[i], so callers
// keep handing the same P×k rows regardless of densification. rowNeed and
// colCap are the full new vectors; rowNeed may differ from the previous
// solve only at the dirty rows. Rows not listed in rows must have unchanged
// profits; listing the same row twice is allowed but defeats the sharded
// read phase below.
//
// With Workers > 1 and enough dirty rows to pay for the goroutine handoff,
// the per-row read phase — keep/release decision, CSR re-cost, released-dual
// value — runs sharded across the dirty rows: it only reads shared state the
// claim phase never writes (column duals and each row's own CSR segment), so
// per-row results land in disjoint scratch slots. The order-sensitive claim
// phase (flow releases mutate the shared per-column pair lists) then replays
// them serially in rows order — the same deterministic split as the sharded
// instance load, so the plan is bit-identical for every worker count.
func (t *Transport) ResolveRows(profit [][]float64, rows []int, rowNeed, colCap []int) ([][]int, float64, error) {
	if !t.solved {
		return nil, 0, errors.New("flow: ResolveRows called before Solve")
	}
	if !t.dense && !t.sparse {
		return nil, 0, errors.New("flow: ResolveRows requires SolveDense or SolveSparse")
	}
	if len(profit) != t.n || len(rowNeed) != t.n || len(colCap) != t.m {
		return nil, 0, errors.New("flow: dimension mismatch")
	}
	if t.n == 0 {
		return nil, 0, nil
	}
	// Validation pass (serial, cheap): everything the sharded read phase
	// relies on is checked up front so the phase itself cannot fail.
	needBuf := false
	for _, i := range rows {
		if i < 0 || i >= t.n {
			return nil, 0, errors.New("flow: dirty row out of range")
		}
		if rowNeed[i] < 0 {
			return nil, 0, errors.New("flow: negative row demand")
		}
		if t.sparse && t.rowFull[i] {
			if t.DenseRow == nil {
				return nil, 0, errors.New("flow: densified row edited without a DenseRow callback")
			}
			needBuf = true
		} else if len(profit[i]) != int(t.rowStart[i+1]-t.rowStart[i]) {
			return nil, 0, errors.New("flow: dirty row not position-aligned with the loaded pattern")
		}
	}
	workers := t.resolveRowsWorkers(len(rows))
	if workers > 1 && duplicateRows(rows) {
		// A repeated row would make the sharded segment writes race; the
		// serial order handles it (the second pass is a no-op).
		workers = 1
	}
	t.rrKeep = growBool(t.rrKeep, len(rows))
	t.rrBest = growFloat(t.rrBest, len(rows))
	if needBuf {
		if cap(t.rrBufs) < workers {
			t.rrBufs = make([][]float64, workers)
		}
		t.rrBufs = t.rrBufs[:workers]
	}
	var badAlign atomic.Bool
	shardRowsID(workers, len(rows), func(w, lo, hi int) {
		for k := lo; k < hi; k++ {
			i := rows[k]
			base := int(t.rowStart[i])
			seg := int(t.rowStart[i+1]) - base
			rowVals := profit[i]
			if t.sparse && t.rowFull[i] {
				t.rrBufs[w] = growFloat(t.rrBufs[w], t.m)
				rowVals = t.DenseRow(i, t.rrBufs[w][:t.m])
				if len(rowVals) != seg {
					badAlign.Store(true)
					return
				}
			}
			// Fast path: when the row's demand is unchanged, no assigned cell
			// changed cost, and every unassigned cell keeps a non-negative
			// reduced cost under the current duals (always true for pure cost
			// increases — a new conflict turns an unassigned cell +Inf), the
			// retained flow stays optimal as-is: patch the costs in place and
			// keep the row's flow, duals and everything downstream untouched.
			// This is the dominant session case — a late COI on a pair the
			// stage never assigned — and it avoids the release → re-augment →
			// possible flow-reset cascade entirely.
			keep := false
			if rowNeed[i] == t.rowNeed[i] {
				keep = true
				ui := t.u[i]
				for x, p := range rowVals {
					e := base + x
					nc := -p
					if math.IsInf(p, -1) {
						nc = math.Inf(1)
					}
					if t.assigned[e] {
						if nc != t.cost[e] {
							keep = false
							break
						}
						continue
					}
					if nc+ui-t.v[t.colIdx[e]] < -tightEps {
						keep = false
						break
					}
				}
			}
			// Re-cost the row's CSR segment in place; the pattern (one edge
			// per column / per candidate) is unchanged by construction.
			for x, p := range rowVals {
				if math.IsInf(p, -1) {
					t.cost[base+x] = math.Inf(1)
				} else {
					t.cost[base+x] = -p
				}
			}
			t.rrKeep[k] = keep
			if !keep {
				// Released dual for the new costs: with no assigned pairs,
				// u[i] = max_j (v[j] − cost) keeps every residual edge of the
				// row at non-negative reduced cost.
				best := 0.0
				for e := t.rowStart[i]; e < t.rowStart[i+1]; e++ {
					if rd := t.v[t.colIdx[e]] - t.cost[e]; e == t.rowStart[i] || rd > best {
						best = rd
					}
				}
				t.rrBest[k] = best
			}
		}
	})
	if badAlign.Load() {
		return nil, 0, errors.New("flow: dirty row not position-aligned with the loaded pattern")
	}
	// Claim phase (serial, in rows order): flow releases mutate the shared
	// per-column pair lists, and their swap-remove order must match the
	// serial replay for bit-identical plans.
	for k, i := range rows {
		if t.rrKeep[k] {
			continue
		}
		t.releaseRowFlow(i)
		t.u[i] = t.rrBest[k]
		t.deficit += rowNeed[i] - t.rowNeed[i]
		t.rowNeed[i] = rowNeed[i]
	}
	// Column-capacity changes, exactly as in Resolve: cancel surplus units on
	// shrunk columns, then check the sink-side dual stays feasible (a column
	// with spare capacity must carry no capacity price).
	for j, c := range colCap {
		if c < 0 {
			return nil, 0, errors.New("flow: negative column capacity")
		}
		for len(t.colPairs[j]) > c {
			a := t.colPairs[j][len(t.colPairs[j])-1]
			t.releaseRow(int(a.row))
		}
		t.colCap[j] = c
	}
	t.repairSinkDual()
	if err := t.run(); err != nil {
		return nil, 0, err
	}
	return t.extract()
}

// repairSinkDual re-establishes the sink-side dual invariant after flow
// releases or capacity changes. The invariant has two halves: columns with
// spare capacity need v[j] ≥ potT (their sink arc is residual) and columns
// carrying flow need v[j] ≤ potT (their reverse sink arc is residual). A
// release or a capacity bump can free a slot on a priced column, leaving
// v[j] below the stale potT — but as long as every flowed column prices at
// or below every spare one, the dual is repairable by re-pinning potT into
// the valid band, keeping the whole residual graph at non-negative reduced
// cost (hence the retained flow optimal for its value) without discarding
// anything. Only when a flowed column genuinely out-prices a spare one —
// flow placed elsewhere would profitably reroute into the freed slots —
// does the flow restart from cold duals (the CSR instance is kept, so no
// matrix pass is repeated — still far cheaper than a cold Solve).
func (t *Transport) repairSinkDual() {
	// Edit-sized repairs (a withdrawal, one shrunk column) need zero to a
	// couple of cycles; a repair that is still not pinnable after several is
	// a bulk change (e.g. SDGA's stage-capacity relaxation frees slots on
	// hundreds of priced columns), where restarting the flow from cold duals
	// on the kept CSR — with the greedy seed re-placing most units — is far
	// cheaper than cancelling the backlog one full-graph search at a time.
	const bound = 8
	if t.startRelaxPool() {
		defer t.stopRelaxPool()
	}
	for iter := 0; iter < bound; iter++ {
		if t.trySinkDualPin() {
			return
		}
		if !t.cancelImprovingCycle() {
			break
		}
	}
	if t.trySinkDualPin() {
		return
	}
	t.resetFlow()
}

// trySinkDualPin re-pins the sink potential into the feasible band when one
// exists (every flowed column prices at or below every spare one) and
// reports success.
func (t *Transport) trySinkDualPin() bool {
	maxFlowed := math.Inf(-1)
	minSpare := math.Inf(1)
	for j := 0; j < t.m; j++ {
		if v := t.v[j]; len(t.colPairs[j]) > 0 && v > maxFlowed {
			maxFlowed = v
		}
		if v := t.v[j]; len(t.colPairs[j]) < t.colCap[j] && v < minSpare {
			minSpare = v
		}
	}
	if maxFlowed > minSpare+tightEps {
		return false
	}
	pot := t.potT
	if pot > minSpare {
		pot = minSpare
	}
	if pot < maxFlowed {
		pot = maxFlowed
	}
	t.potT = pot
	return true
}

// ensureScratch sizes the generation-marked search scratch for the current
// instance. Freshly grown mark arrays are zero-valued; beginPhase keeps gen
// strictly positive, so stale entries can never alias a live generation.
func (t *Transport) ensureScratch() {
	total := t.n + t.m
	t.dist = growFloat(t.dist, total)
	t.settled = growBool(t.settled, total)
	t.parentEdge = growInt32(t.parentEdge, total)
	t.parentNode = growInt32(t.parentNode, total)
	if cap(t.mark) < total {
		t.mark = make([]uint32, total)
	} else {
		t.mark = t.mark[:total]
	}
	if cap(t.arcMark) < total {
		t.arcMark = make([]uint32, total)
	} else {
		t.arcMark = t.arcMark[:total]
	}
	t.arcRow = growInt32(t.arcRow, t.n)
	t.arcCol = growInt32(t.arcCol, t.m)
	// onPath relies on an all-false invariant maintained by dfs/apply, so it
	// is zeroed only when the buffer actually grows.
	if cap(t.onPath) < total {
		t.onPath = make([]bool, total)
	} else {
		t.onPath = t.onPath[:total]
	}
}

// beginPhase opens a fresh search generation: previously written dist,
// settled, parent and current-arc entries all become invalid at once, without
// touching the arrays.
func (t *Transport) beginPhase() {
	if t.gen == math.MaxUint32 {
		// Clear the full capacity, not just the current length: a smaller
		// instance may have resliced the arrays, and a later regrow would
		// otherwise re-expose pre-wrap marks that alias the restarted
		// generation counter.
		clear(t.mark[:cap(t.mark)])
		clear(t.arcMark[:cap(t.arcMark)])
		t.gen = 0
	}
	t.gen++
	t.heap = t.heap[:0]
	t.touched = t.touched[:0]
}

// label relaxes node x to distance d with the given parent, pushing a
// frontier entry. Unmarked nodes are initialised lazily.
func (t *Transport) label(x int32, d float64, pe, pn int32) {
	if t.mark[x] != t.gen {
		t.mark[x] = t.gen
		t.settled[x] = false
		t.touched = append(t.touched, x)
	} else if d >= t.dist[x] {
		return
	}
	t.dist[x] = d
	t.parentEdge[x] = pe
	t.parentNode[x] = pn
	t.heapPush(heapNode{d: d, x: x})
}

// isSettled reports whether x was settled in the current generation.
func (t *Transport) isSettled(x int32) bool {
	return t.mark[x] == t.gen && t.settled[x]
}

// distOf returns x's current-generation distance, +Inf when unlabeled.
func (t *Transport) distOf(x int32) float64 {
	if t.mark[x] == t.gen {
		return t.dist[x]
	}
	return math.Inf(1)
}

// heapPush / heapPop implement a 4-ary min-heap with lazy deletion: nodes are
// re-pushed on every improvement and stale entries skipped on pop.
func (t *Transport) heapPush(hn heapNode) {
	t.heap = append(t.heap, hn)
	i := len(t.heap) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if t.heap[p].d <= hn.d {
			break
		}
		t.heap[i] = t.heap[p]
		i = p
	}
	t.heap[i] = hn
}

func (t *Transport) heapPop() heapNode {
	h := t.heap
	top := h[0]
	last := h[len(h)-1]
	h = h[:len(h)-1]
	t.heap = h
	if len(h) > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= len(h) {
				break
			}
			end := c + 4
			if end > len(h) {
				end = len(h)
			}
			min := c
			for k := c + 1; k < end; k++ {
				if h[k].d < h[min].d {
					min = k
				}
			}
			if h[min].d >= last.d {
				break
			}
			h[i] = h[min]
			i = min
		}
		h[i] = last
	}
	return top
}

// resetDualsForEmptyFlow derives valid potentials for a zero-flow state from
// the current column duals — u rows cover the pair edges, potT the
// column→sink edges — and records each row's tight candidate edges for the
// greedy seed pass. When Workers > 1 the per-row pass is sharded (each row's
// dual and candidate slots are disjoint, so the result is identical).
func (t *Transport) resetDualsForEmptyFlow() {
	t.cand = growInt32(t.cand, t.n*seedCands)
	shardRows(t.loadWorkers(), t.n, t.rowDualsAndCands)
	t.seedReady = true
	t.potT = 0
	seeded := false
	for j := 0; j < t.m; j++ {
		if t.colCap[j] > 0 && (!seeded || t.v[j] < t.potT) {
			t.potT, seeded = t.v[j], true
		}
	}
}

// rowDualsAndCands computes u[i] = max_e (v[col(e)] − cost[e]) for rows
// [lo, hi) and collects up to seedCands edges within tightEps of the running
// maximum. Candidates are re-verified against the final dual at claim time,
// so the running-max approximation can only lose candidates, never admit a
// non-tight one.
func (t *Transport) rowDualsAndCands(lo, hi int) {
	for i := lo; i < hi; i++ {
		base := i * seedCands
		nc := 0
		best := 0.0
		for e := t.rowStart[i]; e < t.rowStart[i+1]; e++ {
			rd := t.v[t.colIdx[e]] - t.cost[e]
			if e == t.rowStart[i] || rd > best {
				if rd > best+tightEps {
					nc = 0
				}
				best = rd
			}
			if nc < seedCands && rd >= best-tightEps {
				t.cand[base+nc] = e
				nc++
			}
		}
		for k := nc; k < seedCands; k++ {
			t.cand[base+k] = -1
		}
		t.u[i] = best
	}
}

// resetFlow discards the placed flow and restarts from cold duals (see
// solve: spread column duals serialise zero-flow augmentation), keeping the
// CSR instance so no matrix pass is repeated.
func (t *Transport) resetFlow() {
	if resetFlowHook != nil {
		resetFlowHook()
	}
	clear(t.assigned[:len(t.colIdx)])
	clear(t.rowFlow[:t.n])
	for j := range t.colPairs {
		t.colPairs[j] = t.colPairs[j][:0]
	}
	t.deficit = 0
	for i := 0; i < t.n; i++ {
		t.deficit += t.rowNeed[i]
	}
	clear(t.v[:t.m])
	t.resetDualsForEmptyFlow()
}

// releaseRow cancels every unit of flow through row r and repairs its dual.
// Releasing the whole row (rather than a single pair) keeps the reduced-cost
// invariant local: with no assigned pairs left, setting u[r] to the row
// maximum of v[j] + profit makes all of its — now residual — edges
// non-negative again without touching any other node's potential.
func (t *Transport) releaseRow(r int) {
	best := 0.0
	for e := t.rowStart[r]; e < t.rowStart[r+1]; e++ {
		if t.assigned[e] {
			t.assigned[e] = false
			t.removeArc(int(t.colIdx[e]), e)
		}
		if rd := t.v[t.colIdx[e]] - t.cost[e]; e == t.rowStart[r] || rd > best {
			best = rd
		}
	}
	t.deficit += t.rowFlow[r]
	t.rowFlow[r] = 0
	t.u[r] = best
}

// releaseRowFlow is the flow half of releaseRow: it cancels row r's units
// without recomputing the dual. ResolveRows uses it when the released dual
// was already computed (against the row's new costs) by the sharded read
// phase.
func (t *Transport) releaseRowFlow(r int) {
	for e := t.rowStart[r]; e < t.rowStart[r+1]; e++ {
		if t.assigned[e] {
			t.assigned[e] = false
			t.removeArc(int(t.colIdx[e]), e)
		}
	}
	t.deficit += t.rowFlow[r]
	t.rowFlow[r] = 0
}

// removeArc deletes the unit carried by edge from column j's list.
func (t *Transport) removeArc(j int, edge int32) {
	arcs := t.colPairs[j]
	for k := range arcs {
		if arcs[k].edge == edge {
			arcs[k] = arcs[len(arcs)-1]
			t.colPairs[j] = arcs[:len(arcs)-1]
			return
		}
	}
}

// run drives the solve until every row demand is met: a greedy seed over
// the recorded tight candidates and a tight-edge blocking pass first (with
// cold duals they already place most units), then one single-source
// shortest-path phase per remaining unit of deficit. Single-source phases are
// what keeps the frontier narrow: with continuous profits each Dijkstra can
// only ever expose one new augmenting path, so searching from every deficit
// row at once (the previous multi-source formulation) settled and relaxed the
// whole near-tight neighbourhood of all deficit rows for every single unit
// placed — two orders of magnitude more edge relaxations at paper scale.
//
// In sparse mode with a DenseRow callback, an attempt that leaves stuck rows
// (sink unreachable within their candidate columns) widens those rows to
// full width and retries from a flow reset; each row widens at most once, so
// the loop terminates, and a final failure means the full-width instance is
// genuinely infeasible.
func (t *Transport) run() error {
	if t.startRelaxPool() {
		defer t.stopRelaxPool()
	}
	for {
		if t.deficit == 0 {
			return nil
		}
		t.ensureScratch()
		t.collectDeficitRows()
		t.beginPhase()
		t.seed()
		t.augmentTight(t.deficitRows)
		// Every augmentation fills exactly one spare column slot, so once none
		// are left the remaining deficit rows cannot possibly be served — skip
		// their (individually failing) searches wholesale.
		spare := 0
		for j := 0; j < t.m; j++ {
			spare += t.colCap[j] - len(t.colPairs[j])
		}
		t.stuck = t.stuck[:0]
		for _, i32 := range t.deficitRows {
			i := int(i32)
			for t.rowFlow[i] < t.rowNeed[i] && spare > 0 {
				jStar, ok := t.shortestPathFrom(i)
				if !ok {
					// This row cannot reach the sink (residual reachability
					// accounts for every rerouting of the placed flow), but
					// later deficit rows may still be satisfiable: keep
					// augmenting them so the retained partial flow is maximal —
					// the contract a follow-up Resolve with enlarged capacities
					// continues from. In sparse mode the row is also the
					// densification candidate of the retry below.
					t.stuck = append(t.stuck, i32)
					break
				}
				t.augmentParentChain(jStar)
				spare--
			}
		}
		if t.deficit == 0 {
			return nil
		}
		if !t.densifyStuck() {
			return ErrInfeasible
		}
	}
}

// densifyStuck is the sparse escape hatch: it widens every not-yet-full
// stuck row to the full column width (costs via the DenseRow callback),
// rebuilds the CSR and restarts the flow from cold duals. It reports whether
// anything was widened — false means densification cannot help (dense mode,
// no callback, or every stuck row already full) and the caller fails with
// ErrInfeasible. The flow reset it forces is acceptable because saturated
// candidate sets are the rare tail case the escape hatch exists for, not the
// steady state.
func (t *Transport) densifyStuck() bool {
	if !t.sparse || t.DenseRow == nil || len(t.stuck) == 0 {
		return false
	}
	newly := 0
	for _, i32 := range t.stuck {
		if !t.rowFull[i32] {
			t.rowFull[i32] = true
			newly++
		}
	}
	if newly == 0 {
		return false
	}
	if densifyHook != nil {
		densifyHook(newly)
	}
	t.rebuildSparseCSR()
	t.resetFlow()
	return true
}

// rebuildSparseCSR rebuilds the CSR with every rowFull row widened to the
// full column width (position == column index, like a dense row); other
// rows' segments are copied unchanged. The live and spare CSR buffers are
// swapped, so repeated densifications reuse the same two generations of
// arrays.
func (t *Transport) rebuildSparseCSR() {
	n, m := t.n, t.m
	newStart := growInt32(t.rowStartTmp, n+1)
	newStart[0] = 0
	for i := 0; i < n; i++ {
		seg := t.rowStart[i+1] - t.rowStart[i]
		if t.rowFull[i] {
			seg = int32(m)
		}
		newStart[i+1] = newStart[i] + seg
	}
	total := int(newStart[n])
	newIdx := growInt32(t.colIdxTmp, total)
	newCost := growFloat(t.costTmp, total)
	t.denseBuf = growFloat(t.denseBuf, m)
	for i := 0; i < n; i++ {
		base := int(newStart[i])
		oldBase := int(t.rowStart[i])
		oldSeg := int(t.rowStart[i+1]) - oldBase
		if t.rowFull[i] && oldSeg < m {
			row := t.DenseRow(i, t.denseBuf[:m])
			for j := 0; j < m; j++ {
				newIdx[base+j] = int32(j)
				if p := row[j]; math.IsInf(p, -1) {
					newCost[base+j] = math.Inf(1)
				} else {
					newCost[base+j] = -p
				}
			}
			continue
		}
		copy(newIdx[base:base+oldSeg], t.colIdx[oldBase:oldBase+oldSeg])
		copy(newCost[base:base+oldSeg], t.cost[oldBase:oldBase+oldSeg])
	}
	t.rowStartTmp, t.rowStart = t.rowStart, newStart
	t.colIdxTmp, t.colIdx = t.colIdx, newIdx
	t.costTmp, t.cost = t.cost, newCost
	t.assigned = growBool(t.assigned, total)
	// resetFlow (the caller's next step) clears assigned and re-derives duals
	// and seeds from the new CSR; the old edge indices die with the old flow.
}

// collectDeficitRows rebuilds the deficit-row list (ascending) — the one
// O(n) scan of a run; later phases work off the compacted list.
func (t *Transport) collectDeficitRows() {
	t.deficitRows = t.deficitRows[:0]
	for i := 0; i < t.n; i++ {
		if t.rowFlow[i] < t.rowNeed[i] {
			t.deficitRows = append(t.deficitRows, int32(i))
		}
	}
}

// seed places one unit per recorded tight candidate edge, in ascending row
// order. The candidates were computed (possibly in parallel) by the
// instance-load pass from immutable state; the serial claim order makes the
// placement deterministic and independent of the worker count. Each claim is
// re-verified against the current duals and capacities, so a stale or
// non-tight candidate is simply skipped and the row falls through to the
// augmenting DFS.
func (t *Transport) seed() {
	if !t.seedReady {
		return
	}
	t.seedReady = false
	for _, i32 := range t.deficitRows {
		i := int(i32)
		ui := t.u[i]
		if math.IsInf(ui, -1) {
			continue
		}
		base := i * seedCands
		for k := 0; k < seedCands && t.rowFlow[i] < t.rowNeed[i]; k++ {
			e := t.cand[base+k]
			if e < 0 {
				break
			}
			j := int(t.colIdx[e])
			if t.assigned[e] || len(t.colPairs[j]) >= t.colCap[j] {
				continue
			}
			if t.cost[e]+ui-t.v[j] > tightEps || t.v[j]-t.potT > tightEps {
				continue
			}
			t.assigned[e] = true
			t.colPairs[j] = append(t.colPairs[j], colArc{row: i32, edge: e})
			t.rowFlow[i]++
			t.deficit--
		}
	}
}

// relaxNode relaxes every residual arc out of node x, just settled at
// distance bd: for a column, the backward arcs to the rows it currently
// serves; for a row, its unassigned (non-Forbidden) forward cells. Shared by
// the shortest-path phases and the improving-cycle repair so the two search
// paths can never diverge in how they price arcs.
func (t *Transport) relaxNode(x int32, bd float64) {
	n := t.n
	if int(x) >= n {
		j := int(x) - n
		vj := t.v[j]
		for _, a := range t.colPairs[j] {
			if t.isSettled(a.row) {
				continue
			}
			rd := vj - t.cost[a.edge] - t.u[a.row]
			if rd < 0 {
				rd = 0
			}
			t.label(a.row, bd+rd, a.edge, x)
		}
		return
	}
	r := int(x)
	ur := t.u[r]
	lo, hi := t.rowStart[r], t.rowStart[r+1]
	if t.relax != nil && int(hi-lo) >= relaxShardMin {
		t.relaxRowSharded(x, bd, ur, lo, hi)
		return
	}
	for e := lo; e < hi; e++ {
		if t.assigned[e] {
			continue
		}
		c := t.cost[e]
		if math.IsInf(c, 1) {
			continue // Forbidden cell of a dense CSR
		}
		j := t.colIdx[e]
		y := int32(n) + j
		if t.isSettled(y) {
			continue
		}
		rd := c + ur - t.v[j]
		if rd < 0 {
			rd = 0
		}
		t.label(y, bd+rd, e, x)
	}
}

// relaxShardMin is the row width below which the sharded relaxation is not
// worth the goroutine handoff.
const relaxShardMin = 1024

// relaxRowSharded relaxes a settled row's outgoing arcs with the reduced-cost
// scan sharded across the relax pool's workers. A CSR row holds each column
// at most once, so the per-edge computations are independent: workers only
// read shared search state (cost, duals, dist, settled — nothing writes them
// while a scan is dispatched) and collect their improving labels into
// per-worker buffers; the label/heap mutation then replays serially in
// ascending edge order, the exact order the serial scan issues, so the heap
// sequence — and with it every downstream settle, parent and potential — is
// bit-identical for any worker count. This is the lever that parallelises
// the warm repair searches: each one is a near-full-graph Dijkstra whose
// time is almost entirely this scan.
func (t *Transport) relaxRowSharded(x int32, bd, ur float64, lo, hi int32) {
	p := t.relax
	p.dispatch(x, bd, ur, lo, hi)
	n := t.n
	for _, buf := range t.relaxBufs[:p.workers] {
		for _, rc := range buf {
			t.label(int32(n)+t.colIdx[rc.e], rc.d, rc.e, x)
		}
	}
}

// relaxScan is one worker's shard of a dispatched row relaxation: the
// contiguous edge range [lo + wi·seg/w, lo + (wi+1)·seg/w) of the row,
// filtered and priced exactly like the serial loop in relaxNode, with the
// improving labels appended to the worker's relaxBufs entry instead of
// applied. Concatenating the buffers in worker order restores ascending edge
// order.
func (t *Transport) relaxScan(wi, w int, x int32, bd, ur float64, lo, hi int32) {
	buf := t.relaxBufs[wi][:0]
	n, seg := t.n, int(hi-lo)
	for e := lo + int32(wi*seg/w); e < lo+int32((wi+1)*seg/w); e++ {
		if t.assigned[e] {
			continue
		}
		c := t.cost[e]
		if math.IsInf(c, 1) {
			continue // Forbidden cell of a dense CSR
		}
		j := t.colIdx[e]
		y := int32(n) + j
		if t.isSettled(y) {
			continue
		}
		nd := bd + (c + ur - t.v[j])
		if nd < bd {
			nd = bd // same clamp as the serial rd < 0 branch
		}
		// Cheap pre-filter; label re-applies the same check on the serial
		// side, so a label another shard outprices is still dropped.
		if t.mark[y] == t.gen && nd >= t.dist[y] {
			continue
		}
		buf = append(buf, relaxCand{d: nd, e: e})
	}
	t.relaxBufs[wi] = buf
}

// searchWorkers resolves the sharded-relaxation worker count: Workers, off
// for narrow instances where no row can clear relaxShardMin.
func (t *Transport) searchWorkers() int {
	w := t.Workers
	if w <= 1 || t.m < relaxShardMin {
		return 1
	}
	return w
}

// shortestPathFrom runs one heap-frontier Dijkstra from deficit row root
// over the residual graph under reduced costs — including the column→sink
// edges, whose reduced cost v[j] − potT prices each column's remaining
// capacity — stopping once every node closer than the sink is settled. It
// then shifts the touched potentials by min(dist, D) − D with D the sink
// distance: the Johnson update with a global −D offset folded in, which
// leaves untouched nodes exactly as they were (only dual differences matter —
// see the potential invariant on Transport) so the update costs O(touched)
// instead of O(V). Returns the column through which the sink was reached, or
// ok=false when the sink is unreachable from root (the instance is infeasible
// at the current capacities: residual reachability accounts for every
// possible rerouting of the placed flow).
func (t *Transport) shortestPathFrom(root int) (jStar int, ok bool) {
	if math.IsInf(t.u[root], -1) {
		// Every cell of the row is Forbidden (dense mode keeps them at +Inf
		// cost), so the sink is unreachable.
		return -1, false
	}
	t.beginPhase()
	n := t.n
	t.label(int32(root), 0, -1, -1)
	distT := math.Inf(1)
	jStar = -1
	for len(t.heap) > 0 {
		hn := t.heapPop()
		x, bd := hn.x, hn.d
		if t.settled[x] || bd > t.dist[x] {
			continue // stale frontier entry
		}
		if bd > distT {
			break
		}
		t.settled[x] = true
		if int(x) >= n {
			j := int(x) - n
			if len(t.colPairs[j]) < t.colCap[j] {
				rd := t.v[j] - t.potT
				if rd < 0 {
					rd = 0
				}
				if nd := bd + rd; nd < distT {
					distT, jStar = nd, j
				}
			}
		}
		t.relaxNode(x, bd)
	}
	if jStar < 0 {
		return -1, false
	}
	for _, x := range t.touched {
		d := t.dist[x]
		if d >= distT {
			continue // min(d, D) − D = 0: potential unchanged
		}
		if int(x) < n {
			t.u[x] += d - distT
		} else {
			t.v[int(x)-n] += d - distT
		}
	}
	return jStar, true
}

// augmentTight pushes as many units as possible along tight
// (zero-reduced-cost) residual paths from the given deficit rows to spare
// columns — a blocking-flow pass over the admissible subgraph with
// Dinic-style current arcs. Pushing along tight edges keeps the flow optimal
// for its value under the unchanged potentials, so any deficit row may
// augment in any order. It runs once per solve, over the deficit rows the
// greedy seed left unplaced, under cold duals (where ties are plentiful);
// the single-source phases that follow place exactly one unit each, so they
// augment the parent chain directly instead.
func (t *Transport) augmentTight(roots []int32) int {
	pushed := 0
	for _, i32 := range roots {
		i := int(i32)
		for t.rowFlow[i] < t.rowNeed[i] {
			if !t.dfs(i) {
				break
			}
			pushed++
		}
	}
	return pushed
}

// dfs searches one tight augmenting path from deficit row start and applies
// it. Current-arc pointers (generation-marked, initialised on first touch)
// only advance past permanently unusable prefixes (assigned or non-tight
// edges); on-path nodes are skipped without advancing so a temporarily
// blocked edge can be reused by a later search.
func (t *Transport) dfs(start int) bool {
	t.path = t.path[:0]
	t.onPath[start] = true
	cur := start
	for {
		if cur < t.n { // at a row: take a tight unassigned edge forward
			r := cur
			if t.arcMark[r] != t.gen {
				t.arcMark[r] = t.gen
				t.arcRow[r] = t.rowStart[r]
			}
			next := -1
			var took int32
			for k := t.arcRow[r]; k < t.rowStart[r+1]; k++ {
				e := k
				j := int(t.colIdx[e])
				usable := !t.assigned[e] && t.cost[e]+t.u[r]-t.v[j] <= tightEps
				if !usable {
					if k == t.arcRow[r] {
						t.arcRow[r]++
					}
					continue
				}
				if t.onPath[t.n+j] {
					continue
				}
				next, took = t.n+j, e
				break
			}
			if next >= 0 {
				t.path = append(t.path, pathStep{edge: took, row: int32(r)})
				t.onPath[next] = true
				cur = next
				continue
			}
			t.onPath[r] = false
			if len(t.path) == 0 {
				return false
			}
			last := t.path[len(t.path)-1] // arc that led here from a column
			t.path = t.path[:len(t.path)-1]
			cur = t.n + int(t.colIdx[last.edge])
			t.arcCol[cur-t.n]++
		} else { // at a column: tight spare slot, or a tight residual arc back
			j := cur - t.n
			if t.arcMark[t.n+j] != t.gen {
				t.arcMark[t.n+j] = t.gen
				t.arcCol[j] = 0
			}
			if len(t.colPairs[j]) < t.colCap[j] && t.v[j]-t.potT <= tightEps {
				t.apply(start)
				return true
			}
			next := -1
			var took colArc
			for k := t.arcCol[j]; int(k) < len(t.colPairs[j]); k++ {
				a := t.colPairs[j][k]
				usable := t.v[j]-t.cost[a.edge]-t.u[a.row] <= tightEps
				if !usable {
					if k == t.arcCol[j] {
						t.arcCol[j]++
					}
					continue
				}
				if t.onPath[a.row] {
					continue
				}
				next, took = int(a.row), a
				break
			}
			if next >= 0 {
				t.path = append(t.path, pathStep{edge: took.edge, row: took.row})
				t.onPath[next] = true
				cur = next
				continue
			}
			t.onPath[t.n+j] = false
			if len(t.path) == 0 {
				return false
			}
			last := t.path[len(t.path)-1] // edge that led here from a row
			t.path = t.path[:len(t.path)-1]
			cur = int(last.row)
			t.arcRow[cur]++
		}
	}
}

// apply commits the path accumulated by dfs (or augmentParentChain): even
// steps assign their edge, odd steps release theirs, and the starting row
// gains one unit of flow. It also clears the path's on-path marks.
func (t *Transport) apply(start int) {
	for k, st := range t.path {
		j := int(t.colIdx[st.edge])
		if k%2 == 0 {
			t.assigned[st.edge] = true
			t.colPairs[j] = append(t.colPairs[j], colArc{row: st.row, edge: st.edge})
			t.onPath[t.n+j] = false
		} else {
			t.assigned[st.edge] = false
			t.removeArc(j, st.edge)
			t.onPath[int(st.row)] = false
		}
	}
	t.onPath[start] = false
	t.rowFlow[start]++
	t.deficit--
}

// augmentParentChain pushes one unit along the Dijkstra shortest-path tree
// into spare column jStar — the fallback that guarantees phase progress when
// rounding keeps the tight DFS from reproducing the path.
func (t *Transport) augmentParentChain(jStar int) {
	t.path = t.path[:0]
	x := t.n + jStar
	for t.parentEdge[x] >= 0 {
		e, from := t.parentEdge[x], t.parentNode[x]
		if x >= t.n {
			t.path = append(t.path, pathStep{edge: e, row: from})
		} else {
			t.path = append(t.path, pathStep{edge: e, row: int32(x)})
		}
		x = int(from)
	}
	for l, r := 0, len(t.path)-1; l < r; l, r = l+1, r-1 {
		t.path[l], t.path[r] = t.path[r], t.path[l]
	}
	t.apply(x)
}

// cancelImprovingCycle removes a batch of negative residual cycles through
// freed spare slots, the targeted alternative to a full flow reset: a
// withdrawal (or capacity shrink) that frees a slot on a priced column
// creates exactly one family of negative residual arcs — column→sink on the
// underpriced spare columns — while every other residual arc keeps a
// non-negative reduced cost. Each improving reroute is therefore a shortest
// path from the sink (entering through some flowed column, alternating
// backward and forward pair arcs) into an underpriced spare column,
// computable with one Dijkstra. The search stops early once no unsettled
// node can close a better cycle (popped distance + the most negative
// spare-column sink gap can no longer beat the best candidate); it records
// every improving candidate it settles along the way, and applies a maximal
// node-disjoint set of them — best first — under a single Johnson update
// capped at B, the largest selected target distance. The cap is exact: every
// unsettled label is ≥ the exit distance ≥ B, so min(dist, cap) matches what
// the full search would have computed for every arc that matters; and every
// node of a selected path carries dist ≤ its target's distance ≤ B, so each
// selected path comes out tight. Disjointness makes the applications
// independent — the paths of the parent tree either share a suffix toward
// the sink or nothing, so a batch of node-disjoint tree paths flips disjoint
// arc sets — and the selection order (ascending cycle value, column index as
// tie-break) is deterministic, so the repair is Workers-independent.
// Batching matters because one edit wave frees many slots at once: a
// coalesced withdrawal batch used to cost one full-graph search per freed
// slot, and now costs one search per cascade depth. Returns false when no
// improving cycle remains, after a capped potential update that certifies
// the repaired dual for the reachable columns (the caller then re-checks the
// band and only resets in the residual pathological cases). Unlike the phase
// update of shortestPathFrom, potT stays fixed here, so the update is the
// plain (unshifted) Johnson shift over all nodes — acceptable on this repair
// path.
func (t *Transport) cancelImprovingCycle() bool {
	t.ensureScratch()
	t.beginPhase()
	n, m := t.n, t.m
	// Seed with the sink's outgoing residual arcs: sink→j for every flowed
	// column (reduced cost potT − v[j] ≥ 0), and record the most negative
	// sink gap of a spare column — the early-exit bound below.
	minSpareGap := math.Inf(1)
	for j := 0; j < m; j++ {
		if len(t.colPairs[j]) > 0 {
			rd := t.potT - t.v[j]
			if rd < 0 {
				rd = 0
			}
			t.label(int32(n+j), rd, -1, -2)
		}
		if len(t.colPairs[j]) < t.colCap[j] {
			if g := t.v[j] - t.potT; g < minSpareGap {
				minSpareGap = g
			}
		}
	}
	t.cycleCands = t.cycleCands[:0]
	candBest := -tightEps
	exitB := math.Inf(1)
	for len(t.heap) > 0 {
		hn := t.heapPop()
		x, bd := hn.x, hn.d
		if t.settled[x] || bd > t.dist[x] {
			continue
		}
		if bd+minSpareGap >= candBest {
			// No reachable spare column can close a cycle below candBest any
			// more: every unsettled label is ≥ bd, so its candidate value is
			// ≥ bd + minSpareGap.
			exitB = bd
			break
		}
		t.settled[x] = true
		if int(x) >= n {
			j := int(x) - n
			// An underpriced spare column settled through the flow (not
			// straight from the sink, which would close a zero cycle) is an
			// improving-cycle candidate.
			if len(t.colPairs[j]) < t.colCap[j] && t.parentNode[x] != -2 {
				if cand := bd + t.v[j] - t.potT; cand < -tightEps {
					t.cycleCands = append(t.cycleCands, cycleCand{cand: cand, j: int32(j)})
					if cand < candBest {
						candBest = cand
					}
				}
			}
		}
		t.relaxNode(x, bd)
	}
	maxD := 0.0
	for _, x := range t.touched {
		if d := t.dist[x]; d > maxD {
			maxD = d
		}
	}
	if len(t.cycleCands) == 0 {
		// No improving cycle: raise the reachable potentials so every
		// non-improving spare column becomes sink-feasible, then report
		// exhaustion. The cap is maxD on natural exhaustion (every label
		// settled and exact) and the exit distance on an early exit (every
		// unsettled label is ≥ exitB, so capping there is exact).
		bound := math.Min(maxD, exitB)
		for i := 0; i < n; i++ {
			t.u[i] += math.Min(t.distOf(int32(i)), bound)
		}
		for j := 0; j < m; j++ {
			t.v[j] += math.Min(t.distOf(int32(n+j)), bound)
		}
		return false
	}
	// Select a maximal node-disjoint candidate set, best cycle first. Used
	// nodes are marked in arcMark (free under the fresh generation: the tight
	// DFS that shares it never runs inside this search). Paths of the parent
	// tree that touch any marked node would share their whole tail toward the
	// sink, so a single mark check per node is a complete overlap test.
	sort.Slice(t.cycleCands, func(a, b int) bool {
		ca, cb := t.cycleCands[a], t.cycleCands[b]
		if ca.cand != cb.cand {
			return ca.cand < cb.cand
		}
		return ca.j < cb.j
	})
	sel := t.cycleCands[:0]
	B := 0.0
	for _, c := range t.cycleCands {
		x, free := n+int(c.j), true
		for {
			if t.arcMark[x] == t.gen {
				free = false
				break
			}
			if t.parentNode[x] == -2 {
				break
			}
			if x >= n {
				x = int(t.parentNode[x])
			} else {
				x = n + int(t.colIdx[t.parentEdge[x]])
			}
		}
		if !free {
			continue
		}
		x = n + int(c.j)
		for {
			t.arcMark[x] = t.gen
			if t.parentNode[x] == -2 {
				break
			}
			if x >= n {
				x = int(t.parentNode[x])
			} else {
				x = n + int(t.colIdx[t.parentEdge[x]])
			}
		}
		sel = append(sel, c)
		if d := t.dist[n+int(c.j)]; d > B {
			B = d
		}
	}
	// One capped Johnson update covers the whole batch: B ≤ the exit
	// distance, so the cap argument above holds, and every selected path's
	// nodes sit at dist ≤ B, so all selected paths turn tight at once.
	for i := 0; i < n; i++ {
		t.u[i] += math.Min(t.distOf(int32(i)), B)
	}
	for j := 0; j < m; j++ {
		t.v[j] += math.Min(t.distOf(int32(n+j)), B)
	}
	for _, c := range sel {
		// Extract the path sink→j2→r1→…→jStar from the parent pointers; after
		// reversal the first step is the released pair (r1, j2) and the rest
		// is a standard alternating augmenting path from r1 into jStar.
		t.path = t.path[:0]
		x := n + int(c.j)
		for t.parentNode[x] != -2 {
			if x >= n {
				t.path = append(t.path, pathStep{edge: t.parentEdge[x], row: t.parentNode[x]})
				x = int(t.parentNode[x])
			} else {
				t.path = append(t.path, pathStep{edge: t.parentEdge[x], row: int32(x)})
				x = n + int(t.colIdx[t.parentEdge[x]])
			}
		}
		for l, r := 0, len(t.path)-1; l < r; l, r = l+1, r-1 {
			t.path[l], t.path[r] = t.path[r], t.path[l]
		}
		first := t.path[0]
		j2 := int(t.colIdx[first.edge])
		t.assigned[first.edge] = false
		t.removeArc(j2, first.edge)
		t.rowFlow[first.row]--
		t.deficit++
		t.path = t.path[1:]
		t.apply(int(first.row))
	}
	return true
}

// extract materialises the per-row column lists and the total profit.
func (t *Transport) extract() ([][]int, float64, error) {
	out := make([][]int, t.n)
	total := 0.0
	for j, arcs := range t.colPairs[:t.m] {
		for _, a := range arcs {
			out[a.row] = append(out[a.row], j)
			total -= t.cost[a.edge]
		}
	}
	for _, cols := range out {
		sort.Ints(cols)
	}
	return out, total, nil
}

// growInt32 and friends return s resized to n, reallocating only when the
// capacity is insufficient; contents are unspecified (callers overwrite).
func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growFloat(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// resetFlowHook, when non-nil, is invoked whenever an incremental re-solve
// falls back to restarting the flow from cold duals; tests and benchmarks
// use it to count resets.
var resetFlowHook func()

// densifyHook, when non-nil, is invoked with the number of rows newly widened
// whenever the sparse escape hatch densifies stuck rows; tests use it to
// assert the hatch fires (or stays quiet) where expected.
var densifyHook func(rows int)
