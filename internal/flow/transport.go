package flow

import (
	"errors"
	"math"
	"sort"
)

// ErrInfeasible is returned when a transportation instance cannot satisfy the
// demand of every row.
var ErrInfeasible = errors.New("flow: demand cannot be satisfied")

// Forbidden marks an impossible row/column pairing in MaxProfitTransport.
var Forbidden = math.Inf(-1)

// Solver selects the algorithm behind MaxProfitTransport.
type Solver int

// Transportation solvers.
const (
	// Dijkstra is the default solver: Johnson-style node potentials keep
	// every residual reduced cost non-negative, so each phase can run one
	// dense Dijkstra over the bipartite residual graph and then augment
	// along every tight (zero-reduced-cost) path the search exposes — many
	// units of flow per search instead of one SPFA per unit. Instances are
	// stored in flat CSR arrays with reusable scratch buffers; see Transport.
	Dijkstra Solver = iota
	// Legacy is the original successive-shortest-paths solver: one SPFA per
	// unit of flow over the generic adjacency-list Graph of this package.
	// Kept for parity tests and the transport ablation benchmarks.
	Legacy
)

// validateTransport checks the shared preconditions of both solvers.
func validateTransport(profit [][]float64, rowNeed, colCap []int) error {
	n := len(profit)
	if n == 0 {
		if len(rowNeed) != 0 || len(colCap) != 0 {
			return errors.New("flow: dimension mismatch")
		}
		return nil
	}
	m := len(profit[0])
	if len(rowNeed) != n || len(colCap) != m {
		return errors.New("flow: dimension mismatch")
	}
	for i := range profit {
		if len(profit[i]) != m {
			return errors.New("flow: ragged profit matrix")
		}
		if rowNeed[i] < 0 {
			return errors.New("flow: negative row demand")
		}
	}
	for _, c := range colCap {
		if c < 0 {
			return errors.New("flow: negative column capacity")
		}
	}
	return nil
}

// MaxProfitTransport solves the transportation problem used by Stage-WGRAP
// and the ARAP baseline: every row i (a paper) must be matched to exactly
// rowNeed[i] distinct columns (reviewers), every column j may serve at most
// colCap[j] rows, and the sum of profit[i][j] over matched pairs is
// maximised. Cells equal to Forbidden are never matched (conflicts of
// interest or reviewers already in the paper's group).
//
// It returns, for every row, the sorted list of matched column indices, and
// uses the default Dijkstra solver; callers that need to re-solve the same
// instance under changing capacities, or to warm-start a sequence of related
// instances, should hold a Transport instead.
func MaxProfitTransport(profit [][]float64, rowNeed, colCap []int) ([][]int, float64, error) {
	return MaxProfitTransportWith(Dijkstra, profit, rowNeed, colCap)
}

// MaxProfitTransportWith is MaxProfitTransport with an explicit solver
// selection.
func MaxProfitTransportWith(s Solver, profit [][]float64, rowNeed, colCap []int) ([][]int, float64, error) {
	if s == Legacy {
		return legacyMaxProfitTransport(profit, rowNeed, colCap)
	}
	var t Transport
	return t.Solve(profit, rowNeed, colCap)
}

// tightEps is the tolerance under which a residual reduced cost counts as
// zero (a "tight" edge usable by the augmenting DFS). Potentials are sums of
// a handful of O(1)-magnitude profits, so float noise sits around 1e-15;
// 1e-12 leaves three orders of magnitude of slack without admitting paths
// that are measurably non-shortest.
const tightEps = 1e-12

// colArc is one unit of flow through a column: the row it serves and the CSR
// edge that carries it.
type colArc struct{ row, edge int32 }

// pathStep is one edge of an augmenting path: at even positions the CSR edge
// row→column being assigned (row is the tail), at odd positions the assigned
// edge being released (row is its owner).
type pathStep struct {
	edge int32
	row  int32
}

// Transport is a reusable solver for the Stage-WGRAP / ARAP transportation
// problem (see MaxProfitTransport for the model). It exists for two reasons
// beyond raw speed:
//
//   - all state — the CSR instance, flow, potentials and search scratch —
//     lives in flat buffers that are reused across calls, so SDGA's δp stage
//     re-solves through one Transport run allocation-free apart from their
//     result slices; and
//   - it is incremental: Resolve re-solves the current instance after a
//     column-capacity change, and ResolveRows after per-row profit or demand
//     edits, warm-starting from the residual flow and potentials of the
//     previous solve so only the changed parts are re-worked (SDGA's
//     stage-capacity fallback and the session warm re-solves).
//
// The zero value is ready to use. A Transport must not be used concurrently.
type Transport struct {
	n, m int

	// CSR of the usable cells: row i's cells are
	// colIdx[rowStart[i]:rowStart[i+1]], cost holds the negated profit.
	// Solve drops Forbidden cells from the CSR; SolveDense keeps every cell
	// (Forbidden ones carry +Inf cost), making the sparsity pattern
	// edit-stable so ResolveRows can re-cost any row in place.
	rowStart []int32
	colIdx   []int32
	cost     []float64
	assigned []bool
	dense    bool

	rowNeed []int
	colCap  []int
	rowFlow []int
	deficit int // Σ_i (rowNeed[i] − rowFlow[i])

	// colPairs[j] lists the units currently flowing through column j; its
	// length is the column's used capacity.
	colPairs [][]colArc

	// Node potentials (u rows, v columns, potT the implicit sink): every
	// residual edge keeps reduced cost c + pot(tail) − pot(head) ≥ 0, which
	// is what lets Dijkstra replace SPFA on a graph whose raw costs are
	// negative. potT − v[j] is the dual price of column j's capacity: zero
	// for columns with spare slots, positive for binding ones.
	u, v   []float64
	potT   float64
	solved bool

	// Scratch reused across phases and calls.
	dist       []float64
	settled    []bool
	parentEdge []int32
	parentNode []int32
	arcRow     []int32
	arcCol     []int32
	onPath     []bool
	path       []pathStep
}

// NewTransport returns an empty reusable solver (equivalent to new(Transport)).
func NewTransport() *Transport { return &Transport{} }

// Solve loads the instance into the solver's flat buffers and computes an
// optimal transportation plan, returning the per-row matched columns (sorted)
// and the total profit. On ErrInfeasible the partial maximum flow is
// retained, so a following Resolve with enlarged capacities continues from
// it instead of starting over.
func (t *Transport) Solve(profit [][]float64, rowNeed, colCap []int) ([][]int, float64, error) {
	return t.solve(profit, rowNeed, colCap, false)
}

// SolveDense is Solve with a dense CSR: every cell is kept, Forbidden cells
// with +Inf cost, so the sparsity pattern survives any later per-row profit
// edit. Sessions use it so ResolveRows can warm-start re-solves after
// conflict additions, withdrawals or score changes; the solved plan and
// objective are identical to Solve's (a +Inf-cost edge is never used).
func (t *Transport) SolveDense(profit [][]float64, rowNeed, colCap []int) ([][]int, float64, error) {
	return t.solve(profit, rowNeed, colCap, true)
}

func (t *Transport) solve(profit [][]float64, rowNeed, colCap []int, dense bool) ([][]int, float64, error) {
	if err := validateTransport(profit, rowNeed, colCap); err != nil {
		return nil, 0, err
	}
	n := len(profit)
	if n == 0 {
		t.n, t.m = 0, 0
		t.solved = true
		return nil, 0, nil
	}
	m := len(profit[0])
	t.n, t.m = n, m
	t.dense = dense

	// CSR build.
	t.rowStart = growInt32(t.rowStart, n+1)
	t.colIdx = t.colIdx[:0]
	t.cost = t.cost[:0]
	t.rowStart[0] = 0
	for i, row := range profit {
		for j, p := range row {
			if math.IsInf(p, -1) {
				if !dense {
					continue
				}
				t.colIdx = append(t.colIdx, int32(j))
				t.cost = append(t.cost, math.Inf(1))
				continue
			}
			t.colIdx = append(t.colIdx, int32(j))
			t.cost = append(t.cost, -p)
		}
		t.rowStart[i+1] = int32(len(t.colIdx))
	}
	t.assigned = growBool(t.assigned, len(t.colIdx))
	clear(t.assigned)

	t.rowNeed = growInt(t.rowNeed, n)
	copy(t.rowNeed, rowNeed)
	t.colCap = growInt(t.colCap, m)
	copy(t.colCap, colCap)
	t.rowFlow = growInt(t.rowFlow, n)
	clear(t.rowFlow)
	t.deficit = 0
	for _, need := range rowNeed {
		t.deficit += need
	}
	if cap(t.colPairs) < m {
		t.colPairs = make([][]colArc, m)
	}
	t.colPairs = t.colPairs[:m]
	for j := range t.colPairs {
		t.colPairs[j] = t.colPairs[j][:0]
	}

	// Potentials: with zero flow the residual graph has no backward arcs,
	// so a row's true shortest path is simply its best cell — which is what
	// cold duals (v = 0, u[i] = max_j profit[i][j], potT = 0) encode. They
	// make every column sink-tight, letting the greedy pass place most
	// units before the first Dijkstra. (Retaining the previous instance's
	// spread-out column duals was measured to serialise the augmentation to
	// one unit per phase, an order of magnitude slower — after a cost
	// change, cold duals are the correct warm start.)
	t.v = growFloat(t.v, m)
	clear(t.v)
	t.u = growFloat(t.u, n)
	t.resetDualsForEmptyFlow()
	t.solved = true

	if err := t.run(); err != nil {
		return nil, 0, err
	}
	return t.extract()
}

// Resolve re-solves the instance of the preceding Solve after a column
// capacity change, warm-starting from the current residual flow and
// potentials: columns whose capacity grew simply regain spare slots, columns
// now over capacity have the surplus units cancelled (the affected rows are
// fully released and their dual repaired), and only the resulting deficits
// are re-augmented. Profits and row demands are those of the last Solve.
func (t *Transport) Resolve(colCap []int) ([][]int, float64, error) {
	if !t.solved {
		return nil, 0, errors.New("flow: Resolve called before Solve")
	}
	if len(colCap) != t.m {
		return nil, 0, errors.New("flow: dimension mismatch")
	}
	for _, c := range colCap {
		if c < 0 {
			return nil, 0, errors.New("flow: negative column capacity")
		}
	}
	if t.n == 0 {
		return nil, 0, nil
	}
	for j, c := range colCap {
		for len(t.colPairs[j]) > c {
			a := t.colPairs[j][len(t.colPairs[j])-1]
			t.releaseRow(int(a.row))
		}
		t.colCap[j] = c
	}
	// The retained flow is only optimal for its value if the sink-side dual
	// stays feasible; repairSinkDual re-pins the sink potential when it can
	// and restarts the flow from cold duals when it cannot.
	t.repairSinkDual()
	if err := t.run(); err != nil {
		return nil, 0, err
	}
	return t.extract()
}

// ResolveRows re-solves the instance of the preceding SolveDense after
// in-place edits to the profit rows listed in rows: each dirty row's costs
// are re-read from profit (the dense CSR pattern is unchanged, so Forbidden
// cells simply become +Inf), its flow is released and its dual repaired, its
// demand is updated from rowNeed, and column capacities are updated as in
// Resolve. Only the released units are re-augmented unless the sink-side
// dual turns infeasible, in which case the flow restarts from cold duals on
// the kept CSR (still far cheaper than a cold Solve, which would also rescan
// every clean row).
//
// rowNeed and colCap are the full new vectors; rowNeed may differ from the
// previous solve only at the dirty rows. Rows not listed in rows must have
// unchanged profits.
func (t *Transport) ResolveRows(profit [][]float64, rows []int, rowNeed, colCap []int) ([][]int, float64, error) {
	if !t.solved {
		return nil, 0, errors.New("flow: ResolveRows called before Solve")
	}
	if !t.dense {
		return nil, 0, errors.New("flow: ResolveRows requires SolveDense")
	}
	if len(profit) != t.n || len(rowNeed) != t.n || len(colCap) != t.m {
		return nil, 0, errors.New("flow: dimension mismatch")
	}
	if t.n == 0 {
		return nil, 0, nil
	}
	for _, i := range rows {
		if i < 0 || i >= t.n {
			return nil, 0, errors.New("flow: dirty row out of range")
		}
		if rowNeed[i] < 0 {
			return nil, 0, errors.New("flow: negative row demand")
		}
		base := int(t.rowStart[i])
		// Fast path: when the row's demand is unchanged, no assigned cell
		// changed cost, and every unassigned cell keeps a non-negative
		// reduced cost under the current duals (always true for pure cost
		// increases — a new conflict turns an unassigned cell +Inf), the
		// retained flow stays optimal as-is: patch the costs in place and
		// keep the row's flow, duals and everything downstream untouched.
		// This is the dominant session case — a late COI on a pair the stage
		// never assigned — and it avoids the release → re-augment → possible
		// flow-reset cascade entirely.
		if rowNeed[i] == t.rowNeed[i] {
			keep := true
			ui := t.u[i]
			for j, p := range profit[i] {
				e := base + j
				nc := -p
				if math.IsInf(p, -1) {
					nc = math.Inf(1)
				}
				if t.assigned[e] {
					if nc != t.cost[e] {
						keep = false
						break
					}
					continue
				}
				if nc+ui-t.v[j] < -tightEps {
					keep = false
					break
				}
			}
			if keep {
				for j, p := range profit[i] {
					if math.IsInf(p, -1) {
						t.cost[base+j] = math.Inf(1)
					} else {
						t.cost[base+j] = -p
					}
				}
				continue
			}
		}
		t.releaseRow(i)
		// Re-cost the row's dense CSR segment in place; the pattern (one edge
		// per column) is unchanged by construction.
		for j, p := range profit[i] {
			if math.IsInf(p, -1) {
				t.cost[base+j] = math.Inf(1)
			} else {
				t.cost[base+j] = -p
			}
		}
		// Repair the row dual for the new costs (releaseRow already set it for
		// the old ones): with no assigned pairs, u[i] = max_j (v[j] − cost)
		// keeps every residual edge of the row at non-negative reduced cost.
		best := 0.0
		for e := t.rowStart[i]; e < t.rowStart[i+1]; e++ {
			if rd := t.v[t.colIdx[e]] - t.cost[e]; e == t.rowStart[i] || rd > best {
				best = rd
			}
		}
		t.u[i] = best
		t.deficit += rowNeed[i] - t.rowNeed[i]
		t.rowNeed[i] = rowNeed[i]
	}
	// Column-capacity changes, exactly as in Resolve: cancel surplus units on
	// shrunk columns, then check the sink-side dual stays feasible (a column
	// with spare capacity must carry no capacity price).
	for j, c := range colCap {
		if c < 0 {
			return nil, 0, errors.New("flow: negative column capacity")
		}
		for len(t.colPairs[j]) > c {
			a := t.colPairs[j][len(t.colPairs[j])-1]
			t.releaseRow(int(a.row))
		}
		t.colCap[j] = c
	}
	t.repairSinkDual()
	if err := t.run(); err != nil {
		return nil, 0, err
	}
	return t.extract()
}

// repairSinkDual re-establishes the sink-side dual invariant after flow
// releases or capacity changes. The invariant has two halves: columns with
// spare capacity need v[j] ≥ potT (their sink arc is residual) and columns
// carrying flow need v[j] ≤ potT (their reverse sink arc is residual). A
// release or a capacity bump can free a slot on a priced column, leaving
// v[j] below the stale potT — but as long as every flowed column prices at
// or below every spare one, the dual is repairable by re-pinning potT into
// the valid band, keeping the whole residual graph at non-negative reduced
// cost (hence the retained flow optimal for its value) without discarding
// anything. Only when a flowed column genuinely out-prices a spare one —
// flow placed elsewhere would profitably reroute into the freed slots —
// does the flow restart from cold duals (the CSR instance is kept, so no
// matrix pass is repeated — still far cheaper than a cold Solve).
func (t *Transport) repairSinkDual() {
	bound := t.n + t.m + 16
	for iter := 0; iter < bound; iter++ {
		if t.trySinkDualPin() {
			return
		}
		if !t.cancelImprovingCycle() {
			break
		}
	}
	if t.trySinkDualPin() {
		return
	}
	t.resetFlow()
}

// trySinkDualPin re-pins the sink potential into the feasible band when one
// exists (every flowed column prices at or below every spare one) and
// reports success.
func (t *Transport) trySinkDualPin() bool {
	maxFlowed := math.Inf(-1)
	minSpare := math.Inf(1)
	for j := 0; j < t.m; j++ {
		if v := t.v[j]; len(t.colPairs[j]) > 0 && v > maxFlowed {
			maxFlowed = v
		}
		if v := t.v[j]; len(t.colPairs[j]) < t.colCap[j] && v < minSpare {
			minSpare = v
		}
	}
	if maxFlowed > minSpare+tightEps {
		return false
	}
	pot := t.potT
	if pot > minSpare {
		pot = minSpare
	}
	if pot < maxFlowed {
		pot = maxFlowed
	}
	t.potT = pot
	return true
}

// cancelImprovingCycle removes one negative residual cycle through a freed
// spare slot, the targeted alternative to a full flow reset: a withdrawal
// (or capacity shrink) that frees a slot on a priced column creates exactly
// one family of negative residual arcs — column→sink on the underpriced
// spare columns — while every other residual arc keeps a non-negative
// reduced cost. The cheapest improving reroute is therefore a shortest path
// from the sink (entering through some flowed column, alternating backward
// and forward pair arcs) into an underpriced spare column, computable with
// one Dijkstra. The Johnson potential update then makes that path tight and
// the cycle is applied in place: one unit leaves the entry column and
// cascades into the freed slot. Returns false when no improving cycle
// remains, after a final potential update that certifies the repaired dual
// for the reachable columns (the caller then re-checks the band and only
// resets in the residual pathological cases).
func (t *Transport) cancelImprovingCycle() bool {
	n, m := t.n, t.m
	total := n + m
	t.dist = growFloat(t.dist, total)
	t.settled = growBool(t.settled, total)
	t.parentEdge = growInt32(t.parentEdge, total)
	t.parentNode = growInt32(t.parentNode, total)
	inf := math.Inf(1)
	for x := 0; x < total; x++ {
		t.dist[x] = inf
		t.settled[x] = false
		t.parentEdge[x] = -1
		t.parentNode[x] = -1
	}
	// Seed with the sink's outgoing residual arcs: sink→j for every flowed
	// column (reduced cost potT − v[j] ≥ 0). parentNode −2 marks "reached
	// directly from the sink".
	for j := 0; j < m; j++ {
		if len(t.colPairs[j]) > 0 {
			rd := t.potT - t.v[j]
			if rd < 0 {
				rd = 0
			}
			if rd < t.dist[n+j] {
				t.dist[n+j] = rd
				t.parentNode[n+j] = -2
			}
		}
	}
	for {
		best, bd := -1, inf
		for x := 0; x < total; x++ {
			if !t.settled[x] && t.dist[x] < bd {
				bd, best = t.dist[x], x
			}
		}
		if best < 0 {
			break
		}
		t.settled[best] = true
		if best >= n {
			j := best - n
			vj := t.v[j]
			for _, a := range t.colPairs[j] {
				if t.settled[a.row] {
					continue
				}
				rd := vj - t.cost[a.edge] - t.u[a.row]
				if rd < 0 {
					rd = 0
				}
				if nd := bd + rd; nd < t.dist[a.row] {
					t.dist[a.row] = nd
					t.parentEdge[a.row] = a.edge
					t.parentNode[a.row] = int32(best)
				}
			}
		} else {
			r := best
			ur := t.u[r]
			for e := t.rowStart[r]; e < t.rowStart[r+1]; e++ {
				if t.assigned[e] {
					continue
				}
				j := int(t.colIdx[e])
				if t.settled[n+j] {
					continue
				}
				rd := t.cost[e] + ur - t.v[j]
				if rd < 0 {
					rd = 0
				}
				if nd := bd + rd; nd < t.dist[n+j] {
					t.dist[n+j] = nd
					t.parentEdge[n+j] = e
					t.parentNode[n+j] = int32(r)
				}
			}
		}
	}
	// The improving cycle closes through an underpriced spare column: total
	// reduced cost dist[j] + (v[j] − potT) < 0. Pick the most negative one.
	jStar, candBest := -1, -tightEps
	maxD := 0.0
	for x := 0; x < total; x++ {
		if d := t.dist[x]; !math.IsInf(d, 1) && d > maxD {
			maxD = d
		}
	}
	for j := 0; j < m; j++ {
		if len(t.colPairs[j]) >= t.colCap[j] || math.IsInf(t.dist[n+j], 1) {
			continue
		}
		// A column reached straight from the sink closes a zero cycle; skip.
		if t.parentNode[n+j] == -2 {
			continue
		}
		if cand := t.dist[n+j] + t.v[j] - t.potT; cand < candBest {
			candBest, jStar = cand, j
		}
	}
	if jStar < 0 {
		// No improving cycle: raise the reachable potentials so every
		// non-improving spare column becomes sink-feasible, then report
		// exhaustion.
		for i := 0; i < n; i++ {
			t.u[i] += math.Min(t.dist[i], maxD)
		}
		for j := 0; j < m; j++ {
			t.v[j] += math.Min(t.dist[n+j], maxD)
		}
		return false
	}
	// Johnson update capped at the target distance turns the shortest path
	// tight while keeping every residual reduced cost non-negative.
	D := t.dist[n+jStar]
	for i := 0; i < n; i++ {
		t.u[i] += math.Min(t.dist[i], D)
	}
	for j := 0; j < m; j++ {
		t.v[j] += math.Min(t.dist[n+j], D)
	}
	// Extract the path sink→j2→r1→…→jStar from the parent pointers; after
	// reversal the first step is the released pair (r1, j2) and the rest is
	// a standard alternating augmenting path from r1 into jStar.
	t.path = t.path[:0]
	x := n + jStar
	for t.parentNode[x] != -2 {
		if x >= n {
			t.path = append(t.path, pathStep{edge: t.parentEdge[x], row: t.parentNode[x]})
			x = int(t.parentNode[x])
		} else {
			t.path = append(t.path, pathStep{edge: t.parentEdge[x], row: int32(x)})
			x = n + int(t.colIdx[t.parentEdge[x]])
		}
	}
	for l, r := 0, len(t.path)-1; l < r; l, r = l+1, r-1 {
		t.path[l], t.path[r] = t.path[r], t.path[l]
	}
	first := t.path[0]
	j2 := int(t.colIdx[first.edge])
	t.assigned[first.edge] = false
	t.removeArc(j2, first.edge)
	t.rowFlow[first.row]--
	t.deficit++
	t.path = t.path[1:]
	t.apply(int(first.row))
	return true
}

// resetDualsForEmptyFlow derives valid potentials for a zero-flow state from
// the current column duals: u rows cover the pair edges, potT the
// column→sink edges.
func (t *Transport) resetDualsForEmptyFlow() {
	for i := 0; i < t.n; i++ {
		best := 0.0
		for e := t.rowStart[i]; e < t.rowStart[i+1]; e++ {
			if r := t.v[t.colIdx[e]] - t.cost[e]; e == t.rowStart[i] || r > best {
				best = r
			}
		}
		t.u[i] = best
	}
	t.potT = 0
	seeded := false
	for j := 0; j < t.m; j++ {
		if t.colCap[j] > 0 && (!seeded || t.v[j] < t.potT) {
			t.potT, seeded = t.v[j], true
		}
	}
}

// resetFlow discards the placed flow and restarts from cold duals (see
// Solve: spread column duals serialise zero-flow augmentation), keeping the
// CSR instance so no matrix pass is repeated.
func (t *Transport) resetFlow() {
	if resetFlowHook != nil {
		resetFlowHook()
	}
	clear(t.assigned)
	clear(t.rowFlow)
	for j := range t.colPairs {
		t.colPairs[j] = t.colPairs[j][:0]
	}
	t.deficit = 0
	for i := 0; i < t.n; i++ {
		t.deficit += t.rowNeed[i]
	}
	clear(t.v[:t.m])
	t.resetDualsForEmptyFlow()
}

// releaseRow cancels every unit of flow through row r and repairs its dual.
// Releasing the whole row (rather than a single pair) keeps the reduced-cost
// invariant local: with no assigned pairs left, setting u[r] to the row
// maximum of v[j] + profit makes all of its — now residual — edges
// non-negative again without touching any other node's potential.
func (t *Transport) releaseRow(r int) {
	best := 0.0
	for e := t.rowStart[r]; e < t.rowStart[r+1]; e++ {
		if t.assigned[e] {
			t.assigned[e] = false
			t.removeArc(int(t.colIdx[e]), e)
		}
		if rd := t.v[t.colIdx[e]] - t.cost[e]; e == t.rowStart[r] || rd > best {
			best = rd
		}
	}
	t.deficit += t.rowFlow[r]
	t.rowFlow[r] = 0
	t.u[r] = best
}

// removeArc deletes the unit carried by edge from column j's list.
func (t *Transport) removeArc(j int, edge int32) {
	arcs := t.colPairs[j]
	for k := range arcs {
		if arcs[k].edge == edge {
			arcs[k] = arcs[len(arcs)-1]
			t.colPairs[j] = arcs[:len(arcs)-1]
			return
		}
	}
}

// run drives phases until every row demand is met: a greedy tight-edge pass
// first (with warm potentials it already places most units), then Dijkstra
// phases, each followed by a blocking-flow augmentation over the tight
// subgraph. Progress per phase is guaranteed: if floating-point noise leaves
// the tight DFS empty-handed, one unit is pushed along the Dijkstra parent
// chain, which the potential update made exactly tight.
func (t *Transport) run() error {
	if t.deficit == 0 {
		return nil
	}
	t.augmentTight()
	for t.deficit > 0 {
		jStar, ok := t.dijkstra()
		if !ok {
			return ErrInfeasible
		}
		if t.augmentTight() == 0 {
			t.augmentParentChain(jStar)
		}
	}
	return nil
}

// dijkstra runs one dense multi-source Dijkstra from all deficit rows over
// the residual graph under reduced costs — including the column→sink edges,
// whose reduced cost v[j] − potT prices each column's remaining capacity —
// stopping once every node closer than the sink is settled. It then shifts
// the potentials by min(dist, D) with D the sink distance — the Johnson
// update that keeps residual reduced costs non-negative and turns every
// settled shortest path tight. Returns the column through which the sink was
// reached, or ok=false when the sink is unreachable (the instance is
// infeasible at the current capacities).
func (t *Transport) dijkstra() (jStar int, ok bool) {
	n, m := t.n, t.m
	total := n + m
	t.dist = growFloat(t.dist, total)
	t.settled = growBool(t.settled, total)
	t.parentEdge = growInt32(t.parentEdge, total)
	t.parentNode = growInt32(t.parentNode, total)
	inf := math.Inf(1)
	for x := 0; x < total; x++ {
		t.dist[x] = inf
		t.settled[x] = false
		t.parentEdge[x] = -1
		t.parentNode[x] = -1
	}
	// The implicit super-source s has cost-0 edges to every deficit row;
	// potS = max u keeps their reduced costs non-negative.
	potS := math.Inf(-1)
	for i := 0; i < n; i++ {
		if t.rowFlow[i] < t.rowNeed[i] && t.u[i] > potS {
			potS = t.u[i]
		}
	}
	if math.IsInf(potS, -1) {
		// Every deficit row has u = −Inf: all of its cells are Forbidden
		// (dense mode keeps them at +Inf cost), so the sink is unreachable.
		return -1, false
	}
	for i := 0; i < n; i++ {
		if t.rowFlow[i] < t.rowNeed[i] {
			t.dist[i] = potS - t.u[i]
		}
	}
	distT := inf
	jStar = -1
	for {
		best, bd := -1, inf
		for x := 0; x < total; x++ {
			if !t.settled[x] && t.dist[x] < bd {
				bd, best = t.dist[x], x
			}
		}
		if best < 0 || bd > distT {
			break
		}
		t.settled[best] = true
		if best >= n {
			j := best - n
			if len(t.colPairs[j]) < t.colCap[j] {
				rd := t.v[j] - t.potT
				if rd < 0 {
					rd = 0
				}
				if nd := bd + rd; nd < distT {
					distT, jStar = nd, j
				}
			}
			// Residual arcs column → the rows it currently serves.
			vj := t.v[j]
			for _, a := range t.colPairs[j] {
				if t.settled[a.row] {
					continue
				}
				rd := vj - t.cost[a.edge] - t.u[a.row]
				if rd < 0 {
					rd = 0
				}
				if nd := bd + rd; nd < t.dist[a.row] {
					t.dist[a.row] = nd
					t.parentEdge[a.row] = a.edge
					t.parentNode[a.row] = int32(best)
				}
			}
		} else {
			r := best
			ur := t.u[r]
			for e := t.rowStart[r]; e < t.rowStart[r+1]; e++ {
				if t.assigned[e] {
					continue
				}
				j := int(t.colIdx[e])
				if t.settled[n+j] {
					continue
				}
				rd := t.cost[e] + ur - t.v[j]
				if rd < 0 {
					rd = 0
				}
				if nd := bd + rd; nd < t.dist[n+j] {
					t.dist[n+j] = nd
					t.parentEdge[n+j] = e
					t.parentNode[n+j] = int32(r)
				}
			}
		}
	}
	if jStar < 0 {
		return -1, false
	}
	for i := 0; i < n; i++ {
		t.u[i] += math.Min(t.dist[i], distT)
	}
	for j := 0; j < m; j++ {
		t.v[j] += math.Min(t.dist[n+j], distT)
	}
	t.potT += distT
	return jStar, true
}

// augmentTight pushes as many units as possible along tight
// (zero-reduced-cost) residual paths from deficit rows to spare columns — a
// blocking-flow pass over the admissible subgraph with Dinic-style current
// arcs. Pushing along tight edges keeps the flow optimal for its value under
// the unchanged potentials, so any deficit row may augment in any order.
func (t *Transport) augmentTight() int {
	n, m := t.n, t.m
	t.arcRow = growInt32(t.arcRow, n)
	copy(t.arcRow, t.rowStart[:n])
	t.arcCol = growInt32(t.arcCol, m)
	clear(t.arcCol)
	t.onPath = growBool(t.onPath, n+m)
	clear(t.onPath)
	pushed := 0
	for i := 0; i < n; i++ {
		for t.rowFlow[i] < t.rowNeed[i] {
			if !t.dfs(i) {
				break
			}
			pushed++
		}
	}
	return pushed
}

// dfs searches one tight augmenting path from deficit row start and applies
// it. Current-arc pointers only advance past permanently unusable prefixes
// (assigned or non-tight edges); on-path nodes are skipped without advancing
// so a temporarily blocked edge can be reused by a later search.
func (t *Transport) dfs(start int) bool {
	t.path = t.path[:0]
	t.onPath[start] = true
	cur := start
	for {
		if cur < t.n { // at a row: take a tight unassigned edge forward
			r := cur
			next := -1
			var took int32
			for k := t.arcRow[r]; k < t.rowStart[r+1]; k++ {
				e := k
				j := int(t.colIdx[e])
				usable := !t.assigned[e] && t.cost[e]+t.u[r]-t.v[j] <= tightEps
				if !usable {
					if k == t.arcRow[r] {
						t.arcRow[r]++
					}
					continue
				}
				if t.onPath[t.n+j] {
					continue
				}
				next, took = t.n+j, e
				break
			}
			if next >= 0 {
				t.path = append(t.path, pathStep{edge: took, row: int32(r)})
				t.onPath[next] = true
				cur = next
				continue
			}
			t.onPath[r] = false
			if len(t.path) == 0 {
				return false
			}
			last := t.path[len(t.path)-1] // arc that led here from a column
			t.path = t.path[:len(t.path)-1]
			cur = t.n + int(t.colIdx[last.edge])
			t.arcCol[cur-t.n]++
		} else { // at a column: tight spare slot, or a tight residual arc back
			j := cur - t.n
			if len(t.colPairs[j]) < t.colCap[j] && t.v[j]-t.potT <= tightEps {
				t.apply(start)
				return true
			}
			next := -1
			var took colArc
			for k := t.arcCol[j]; int(k) < len(t.colPairs[j]); k++ {
				a := t.colPairs[j][k]
				usable := t.v[j]-t.cost[a.edge]-t.u[a.row] <= tightEps
				if !usable {
					if k == t.arcCol[j] {
						t.arcCol[j]++
					}
					continue
				}
				if t.onPath[a.row] {
					continue
				}
				next, took = int(a.row), a
				break
			}
			if next >= 0 {
				t.path = append(t.path, pathStep{edge: took.edge, row: took.row})
				t.onPath[next] = true
				cur = next
				continue
			}
			t.onPath[t.n+j] = false
			if len(t.path) == 0 {
				return false
			}
			last := t.path[len(t.path)-1] // edge that led here from a row
			t.path = t.path[:len(t.path)-1]
			cur = int(last.row)
			t.arcRow[cur]++
		}
	}
}

// apply commits the path accumulated by dfs (or augmentParentChain): even
// steps assign their edge, odd steps release theirs, and the starting row
// gains one unit of flow. It also clears the path's on-path marks.
func (t *Transport) apply(start int) {
	for k, st := range t.path {
		j := int(t.colIdx[st.edge])
		if k%2 == 0 {
			t.assigned[st.edge] = true
			t.colPairs[j] = append(t.colPairs[j], colArc{row: st.row, edge: st.edge})
			t.onPath[t.n+j] = false
		} else {
			t.assigned[st.edge] = false
			t.removeArc(j, st.edge)
			t.onPath[int(st.row)] = false
		}
	}
	t.onPath[start] = false
	t.rowFlow[start]++
	t.deficit--
}

// augmentParentChain pushes one unit along the Dijkstra shortest-path tree
// into spare column jStar — the fallback that guarantees phase progress when
// rounding keeps the tight DFS from reproducing the path.
func (t *Transport) augmentParentChain(jStar int) {
	t.path = t.path[:0]
	x := t.n + jStar
	for t.parentEdge[x] >= 0 {
		e, from := t.parentEdge[x], t.parentNode[x]
		if x >= t.n {
			t.path = append(t.path, pathStep{edge: e, row: from})
		} else {
			t.path = append(t.path, pathStep{edge: e, row: int32(x)})
		}
		x = int(from)
	}
	for l, r := 0, len(t.path)-1; l < r; l, r = l+1, r-1 {
		t.path[l], t.path[r] = t.path[r], t.path[l]
	}
	t.apply(x)
}

// extract materialises the per-row column lists and the total profit.
func (t *Transport) extract() ([][]int, float64, error) {
	out := make([][]int, t.n)
	total := 0.0
	for j, arcs := range t.colPairs[:t.m] {
		for _, a := range arcs {
			out[a.row] = append(out[a.row], j)
			total -= t.cost[a.edge]
		}
	}
	for _, cols := range out {
		sort.Ints(cols)
	}
	return out, total, nil
}

// growInt32 and friends return s resized to n, reallocating only when the
// capacity is insufficient; contents are unspecified (callers overwrite).
func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growInt(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growFloat(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// resetFlowHook, when non-nil, is invoked whenever an incremental re-solve
// falls back to restarting the flow from cold duals; tests and benchmarks
// use it to count resets.
var resetFlowHook func()
