package flow

import (
	"errors"
	"math"
)

// ErrInfeasible is returned when a transportation instance cannot satisfy the
// demand of every row.
var ErrInfeasible = errors.New("flow: demand cannot be satisfied")

// Forbidden marks an impossible row/column pairing in MaxProfitTransport.
var Forbidden = math.Inf(-1)

// MaxProfitTransport solves the transportation problem used by Stage-WGRAP
// and the ARAP baseline: every row i (a paper) must be matched to exactly
// rowNeed[i] distinct columns (reviewers), every column j may serve at most
// colCap[j] rows, and the sum of profit[i][j] over matched pairs is
// maximised. Cells equal to Forbidden are never matched (conflicts of
// interest or reviewers already in the paper's group).
//
// It returns, for every row, the list of matched column indices.
func MaxProfitTransport(profit [][]float64, rowNeed, colCap []int) ([][]int, float64, error) {
	n := len(profit)
	if n == 0 {
		return nil, 0, nil
	}
	m := len(profit[0])
	if len(rowNeed) != n || len(colCap) != m {
		return nil, 0, errors.New("flow: dimension mismatch")
	}
	need := 0
	for i, r := range rowNeed {
		if len(profit[i]) != m {
			return nil, 0, errors.New("flow: ragged profit matrix")
		}
		if r < 0 {
			return nil, 0, errors.New("flow: negative row demand")
		}
		need += r
	}

	// Node layout: 0 = source, 1..n = rows, n+1..n+m = columns, n+m+1 = sink.
	source := 0
	rowNode := func(i int) int { return 1 + i }
	colNode := func(j int) int { return 1 + n + j }
	sink := 1 + n + m
	g := NewGraph(sink + 1)

	for i := 0; i < n; i++ {
		g.AddEdge(source, rowNode(i), rowNeed[i], 0)
	}
	type pairEdge struct{ row, col, id int }
	var pairs []pairEdge
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			p := profit[i][j]
			if math.IsInf(p, -1) {
				continue
			}
			id := g.AddEdge(rowNode(i), colNode(j), 1, -p)
			pairs = append(pairs, pairEdge{row: i, col: j, id: id})
		}
	}
	for j := 0; j < m; j++ {
		if colCap[j] > 0 {
			g.AddEdge(colNode(j), sink, colCap[j], 0)
		}
	}

	flowed, cost, err := g.MinCostFlow(source, sink, need)
	if err != nil {
		return nil, 0, err
	}
	if flowed < need {
		return nil, 0, ErrInfeasible
	}
	out := make([][]int, n)
	for _, pe := range pairs {
		if g.Flow(pe.id) > 0 {
			out[pe.row] = append(out[pe.row], pe.col)
		}
	}
	return out, -cost, nil
}
