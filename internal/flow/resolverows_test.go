package flow

import (
	"math"
	"math/rand"
	"testing"
)

// TestSolveDenseMatchesSolve: the dense CSR (Forbidden cells kept at +Inf
// cost) must produce the same objective as the sparse Solve on instances
// with conflicts, spare capacity and zero-capacity columns.
func TestSolveDenseMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(12)
		m := n + rng.Intn(12)
		profit := benchProfit(rng, n, m)
		need := make([]int, n)
		for i := range need {
			need[i] = 1 + rng.Intn(2)
		}
		caps := make([]int, m)
		for j := range caps {
			caps[j] = rng.Intn(3)
		}
		var sparse, dense Transport
		_, so, serr := sparse.Solve(profit, need, caps)
		_, do, derr := dense.SolveDense(profit, need, caps)
		if (serr == nil) != (derr == nil) {
			t.Fatalf("trial %d: feasibility disagrees: sparse=%v dense=%v", trial, serr, derr)
		}
		if serr != nil {
			continue
		}
		if math.Abs(so-do) > 1e-9 {
			t.Fatalf("trial %d: objective mismatch: sparse=%v dense=%v", trial, so, do)
		}
	}
}

// TestResolveRowsParity: after per-row edits (profit perturbations, new
// Forbidden cells, demand drops, capacity changes) the warm ResolveRows
// objective must match a cold Solve of the edited instance to 1e-9.
func TestResolveRowsParity(t *testing.T) {
	const P, R = 60, 120
	rng := rand.New(rand.NewSource(5))
	profit := benchProfit(rng, P, R)
	need := fillInts(P, 1)
	caps := fillInts(R, 1)

	var tr Transport
	if _, warmObj, err := tr.SolveDense(profit, need, caps); err != nil {
		t.Fatal(err)
	} else {
		var fresh Transport
		_, coldObj, err := fresh.Solve(profit, need, caps)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(warmObj-coldObj) > 1e-9 {
			t.Fatalf("initial dense solve disagrees with sparse: %v vs %v", warmObj, coldObj)
		}
	}

	for trial := 0; trial < 60; trial++ {
		var dirty []int
		switch trial % 4 {
		case 0: // perturb every cost of one row (hardest: full re-route)
			row := rng.Intn(P)
			for j := range profit[row] {
				if !math.IsInf(profit[row][j], -1) {
					profit[row][j] = rng.Float64()
				}
			}
			dirty = []int{row}
		case 1: // a new conflict: one cell becomes Forbidden
			row := rng.Intn(P)
			profit[row][rng.Intn(R)] = Forbidden
			dirty = []int{row}
		case 2: // a withdrawal: one row's demand drops to zero
			row := rng.Intn(P)
			need[row] = 0
			dirty = []int{row}
		case 3: // a restore plus a capacity bump
			for i := range need {
				if need[i] == 0 {
					need[i] = 1
					dirty = append(dirty, i)
				}
			}
			caps[rng.Intn(R)] = 2
		}
		_, warmObj, err := tr.ResolveRows(profit, dirty, need, caps)
		if err != nil {
			t.Fatalf("trial %d: warm resolve: %v", trial, err)
		}
		var fresh Transport
		_, coldObj, err := fresh.Solve(profit, need, caps)
		if err != nil {
			t.Fatalf("trial %d: cold solve: %v", trial, err)
		}
		if math.Abs(warmObj-coldObj) > 1e-9 {
			t.Fatalf("trial %d: warm %v cold %v", trial, warmObj, coldObj)
		}
	}
}

// TestResolveRowsPlanMatchesColdPlan: on instances with unique optima the
// warm re-solve must reproduce the cold plan exactly (the property the
// session warm replay relies on for assignment-level parity).
func TestResolveRowsPlanMatchesColdPlan(t *testing.T) {
	const P, R = 40, 80
	rng := rand.New(rand.NewSource(7))
	profit := benchProfit(rng, P, R)
	need := fillInts(P, 1)
	caps := fillInts(R, 1)
	var tr Transport
	if _, _, err := tr.SolveDense(profit, need, caps); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		row := rng.Intn(P)
		profit[row][rng.Intn(R)] = Forbidden
		if rng.Intn(2) == 0 {
			for j := range profit[row] {
				if !math.IsInf(profit[row][j], -1) {
					profit[row][j] = rng.Float64()
				}
			}
		}
		warmRows, _, err := tr.ResolveRows(profit, []int{row}, need, caps)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var fresh Transport
		coldRows, _, err := fresh.Solve(profit, need, caps)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range coldRows {
			if len(warmRows[i]) != len(coldRows[i]) {
				t.Fatalf("trial %d row %d: warm %v cold %v", trial, i, warmRows[i], coldRows[i])
			}
			for k := range coldRows[i] {
				if warmRows[i][k] != coldRows[i][k] {
					t.Fatalf("trial %d row %d: warm %v cold %v", trial, i, warmRows[i], coldRows[i])
				}
			}
		}
	}
}

// TestResolveRowsShardedDeterminism: warm re-solves must produce
// bit-identical plans at any worker count now that three pieces of the warm
// path run concurrently when Workers > 1 — the sharded dirty-row read phase
// of ResolveRows, the pooled row-relaxation shards inside the repair and
// phase searches, and the batched improving-cycle cancellation they feed.
// The instance is drawn wide enough that every parallel path actually
// engages (m ≥ relaxShardMin for the relax pool, dirty-set × m above the
// read-phase threshold), and the edit script replays withdrawal waves,
// restores with cost perturbations and conflict batches — the coalesced
// batch shapes the session layer drains. This is the re-augment counterpart
// of TestShardedLoadDeterminism.
func TestResolveRowsShardedDeterminism(t *testing.T) {
	const P, R, wave = 80, 1100, 32
	run := func(workers int) (plans [][][]int, totals []float64) {
		rng := rand.New(rand.NewSource(331))
		profit := benchProfit(rng, P, R)
		need := fillInts(P, 1)
		caps := fillInts(R, 1)
		tr := Transport{Workers: workers}
		record := func(rows [][]int, total float64, err error) {
			if err != nil {
				t.Fatalf("workers %d step %d: %v", workers, len(plans), err)
			}
			cp := make([][]int, len(rows))
			for i := range rows {
				cp[i] = append([]int(nil), rows[i]...)
			}
			plans, totals = append(plans, cp), append(totals, total)
		}
		record(tr.SolveDense(profit, need, caps))
		for trial := 0; trial < 4; trial++ {
			dirty := rng.Perm(P)[:wave]
			// A withdrawal wave: the freed columns force the sink-dual
			// repair (and its batched cycle cancellation) on the resolve.
			for _, i := range dirty {
				need[i] = 0
			}
			record(tr.ResolveRows(profit, dirty, need, caps))
			// Restore the wave with perturbed rows: every restored row
			// re-reads its full width and re-augments.
			for _, i := range dirty {
				need[i] = 1
				for j := range profit[i] {
					if !math.IsInf(profit[i][j], -1) {
						profit[i][j] = rng.Float64()
					}
				}
			}
			record(tr.ResolveRows(profit, dirty, need, caps))
			// A conflict batch across distinct rows.
			coi := rng.Perm(P)[:8]
			for _, i := range coi {
				profit[i][rng.Intn(R)] = Forbidden
			}
			record(tr.ResolveRows(profit, coi, need, caps))
		}
		return plans, totals
	}
	refPlans, refTotals := run(1)
	for _, workers := range []int{2, 4, 8} {
		plans, totals := run(workers)
		for s := range refPlans {
			if totals[s] != refTotals[s] {
				t.Fatalf("workers %d step %d: total %v != serial %v", workers, s, totals[s], refTotals[s])
			}
			for i := range refPlans[s] {
				if len(plans[s][i]) != len(refPlans[s][i]) {
					t.Fatalf("workers %d step %d row %d: plan %v != serial %v", workers, s, i, plans[s][i], refPlans[s][i])
				}
				for k := range refPlans[s][i] {
					if plans[s][i][k] != refPlans[s][i][k] {
						t.Fatalf("workers %d step %d row %d: plan %v != serial %v", workers, s, i, plans[s][i], refPlans[s][i])
					}
				}
			}
		}
	}
}

// TestResolveRowsInfeasibleRow: a row whose cells all become Forbidden makes
// the instance infeasible; the dense path must report that rather than hang
// or corrupt state, and a later fix must recover.
func TestResolveRowsInfeasibleRow(t *testing.T) {
	const P, R = 6, 8
	rng := rand.New(rand.NewSource(9))
	profit := benchProfit(rng, P, R)
	for i := range profit {
		for j := range profit[i] {
			if math.IsInf(profit[i][j], -1) {
				profit[i][j] = rng.Float64()
			}
		}
	}
	need := fillInts(P, 1)
	caps := fillInts(R, 1)
	var tr Transport
	if _, _, err := tr.SolveDense(profit, need, caps); err != nil {
		t.Fatal(err)
	}
	saved := append([]float64(nil), profit[2]...)
	for j := range profit[2] {
		profit[2][j] = Forbidden
	}
	if _, _, err := tr.ResolveRows(profit, []int{2}, need, caps); err != ErrInfeasible {
		t.Fatalf("fully forbidden row: err = %v, want ErrInfeasible", err)
	}
	copy(profit[2], saved)
	if _, _, err := tr.ResolveRows(profit, []int{2}, need, caps); err != nil {
		t.Fatalf("recovery after restoring the row: %v", err)
	}
}

// TestResolveRowsErrors covers the misuse guards.
func TestResolveRowsErrors(t *testing.T) {
	profit := [][]float64{{1, 2}, {3, 4}}
	need := []int{1, 1}
	caps := []int{1, 1}

	var unsolved Transport
	if _, _, err := unsolved.ResolveRows(profit, nil, need, caps); err == nil {
		t.Fatal("ResolveRows before Solve accepted")
	}
	var sparse Transport
	if _, _, err := sparse.Solve(profit, need, caps); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sparse.ResolveRows(profit, nil, need, caps); err == nil {
		t.Fatal("ResolveRows after sparse Solve accepted")
	}
	var dense Transport
	if _, _, err := dense.SolveDense(profit, need, caps); err != nil {
		t.Fatal(err)
	}
	if _, _, err := dense.ResolveRows(profit, []int{5}, need, caps); err == nil {
		t.Fatal("out-of-range dirty row accepted")
	}
	if _, _, err := dense.ResolveRows(profit, nil, []int{1}, caps); err == nil {
		t.Fatal("rowNeed dimension mismatch accepted")
	}
	if _, _, err := dense.ResolveRows(profit, []int{0}, []int{-1, 1}, caps); err == nil {
		t.Fatal("negative demand accepted")
	}
	if _, _, err := dense.ResolveRows(profit, nil, need, []int{1, -1}); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

// TestSolveDenseFullyForbiddenRow: a cold dense solve with a demanding row
// whose cells are all Forbidden must return ErrInfeasible (never panic), a
// zero-demand forbidden row must be tolerated, and after the offending
// demand is dropped the retained state must re-solve to the optimum of the
// reduced instance.
func TestSolveDenseFullyForbiddenRow(t *testing.T) {
	profit := [][]float64{
		{0.5, 0.2, 0.1},
		{Forbidden, Forbidden, Forbidden},
		{0.3, 0.4, 0.2},
	}
	need := []int{1, 1, 1}
	caps := []int{1, 1, 1}
	var tr Transport
	if _, _, err := tr.SolveDense(profit, need, caps); err != ErrInfeasible {
		t.Fatalf("saturated row: err = %v, want ErrInfeasible", err)
	}
	// Dropping the saturated row's demand makes the instance feasible again;
	// the warm path must agree with a fresh solve.
	need[1] = 0
	rows, total, err := tr.ResolveRows(profit, []int{1}, need, caps)
	if err != nil {
		t.Fatalf("resolve after dropping the saturated demand: %v", err)
	}
	if len(rows[1]) != 0 {
		t.Fatalf("forbidden row received columns %v", rows[1])
	}
	_, fresh, err := MaxProfitTransport(profit, need, caps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-fresh) > 1e-9 {
		t.Fatalf("warm total %v != fresh total %v", total, fresh)
	}
	// A zero-demand forbidden row is fine from cold too.
	var tr2 Transport
	if _, _, err := tr2.SolveDense(profit, need, caps); err != nil {
		t.Fatalf("cold solve with inactive forbidden row: %v", err)
	}
}

// TestResolveRowsForbiddenRowAmongOthers: the saturated row must surface
// ErrInfeasible even when other rows still have deficits the solver could
// satisfy, and the partial state must stay consistent for a later recovery.
func TestResolveRowsForbiddenRowAmongOthers(t *testing.T) {
	const P, R = 10, 14
	rng := rand.New(rand.NewSource(27))
	profit := benchProfit(rng, P, R)
	for i := range profit {
		for j := range profit[i] {
			if math.IsInf(profit[i][j], -1) {
				profit[i][j] = rng.Float64()
			}
		}
	}
	need := fillInts(P, 1)
	caps := fillInts(R, 1)
	var tr Transport
	if _, _, err := tr.SolveDense(profit, need, caps); err != nil {
		t.Fatal(err)
	}
	// Saturate row 4 and simultaneously dirty two healthy rows, so the
	// re-solve has real work besides the infeasibility.
	saved := append([]float64(nil), profit[4]...)
	for j := range profit[4] {
		profit[4][j] = Forbidden
	}
	profit[0][3] = Forbidden
	profit[7][1] = Forbidden
	if _, _, err := tr.ResolveRows(profit, []int{0, 4, 7}, need, caps); err != ErrInfeasible {
		t.Fatalf("saturated row among dirty rows: err = %v, want ErrInfeasible", err)
	}
	// Restore the row: the warm state must recover to the fresh optimum.
	copy(profit[4], saved)
	rows, total, err := tr.ResolveRows(profit, []int{4}, need, caps)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	got := checkFeasible(t, profit, need, caps, rows)
	_, fresh, err := MaxProfitTransport(profit, need, caps)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-fresh) > 1e-9 || math.Abs(got-fresh) > 1e-9 {
		t.Fatalf("recovery total %v (plan %v) != fresh %v", total, got, fresh)
	}
}
