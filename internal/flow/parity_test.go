package flow

import (
	"math"
	"math/rand"
	"testing"
)

// randomInstance draws a transportation instance; forbiddenP cells are set to
// Forbidden.
func randomInstance(rng *rand.Rand, n, m, maxNeed, maxCap int, forbiddenP float64) ([][]float64, []int, []int) {
	profit := make([][]float64, n)
	for i := range profit {
		profit[i] = make([]float64, m)
		for j := range profit[i] {
			if rng.Float64() < forbiddenP {
				profit[i][j] = Forbidden
			} else {
				profit[i][j] = rng.Float64()
			}
		}
	}
	need := make([]int, n)
	for i := range need {
		need[i] = 1 + rng.Intn(maxNeed)
	}
	caps := make([]int, m)
	for j := range caps {
		caps[j] = rng.Intn(maxCap + 1)
	}
	return profit, need, caps
}

// bruteForceTransport enumerates every feasible plan of a small instance and
// returns the maximum total profit (ok=false when the instance is infeasible).
func bruteForceTransport(profit [][]float64, rowNeed, colCap []int) (float64, bool) {
	n := len(profit)
	m := 0
	if n > 0 {
		m = len(profit[0])
	}
	use := make([]int, m)
	best := math.Inf(-1)
	found := false
	var rec func(row int, acc float64)
	var choose func(row, from, left int, acc float64)
	rec = func(row int, acc float64) {
		if row == n {
			if !found || acc > best {
				best, found = acc, true
			}
			return
		}
		choose(row, 0, rowNeed[row], acc)
	}
	choose = func(row, from, left int, acc float64) {
		if left == 0 {
			rec(row+1, acc)
			return
		}
		for j := from; j <= m-left; j++ {
			if use[j] >= colCap[j] || math.IsInf(profit[row][j], -1) {
				continue
			}
			use[j]++
			choose(row, j+1, left-1, acc+profit[row][j])
			use[j]--
		}
	}
	rec(0, 0)
	return best, found
}

// checkFeasible verifies demands, distinctness, capacities and forbidden
// cells, and returns the plan's total profit.
func checkFeasible(t *testing.T, profit [][]float64, rowNeed, colCap []int, rows [][]int) float64 {
	t.Helper()
	m := 0
	if len(profit) > 0 {
		m = len(profit[0])
	}
	use := make([]int, m)
	total := 0.0
	for i, cols := range rows {
		if len(cols) != rowNeed[i] {
			t.Fatalf("row %d matched %d columns, want %d", i, len(cols), rowNeed[i])
		}
		seen := map[int]bool{}
		for _, j := range cols {
			if seen[j] {
				t.Fatalf("row %d matched column %d twice", i, j)
			}
			seen[j] = true
			if math.IsInf(profit[i][j], -1) {
				t.Fatalf("row %d matched forbidden column %d", i, j)
			}
			use[j]++
			total += profit[i][j]
		}
	}
	for j, u := range use {
		if u > colCap[j] {
			t.Fatalf("column %d used %d times, capacity %d", j, u, colCap[j])
		}
	}
	return total
}

// runParity solves with both solvers (and brute force when small enough) and
// cross-checks objectives and feasibility. Returns whether it was feasible.
func runParity(t *testing.T, profit [][]float64, need, caps []int, brute bool) bool {
	t.Helper()
	dRows, dTotal, dErr := MaxProfitTransportWith(Dijkstra, profit, need, caps)
	lRows, lTotal, lErr := MaxProfitTransportWith(Legacy, profit, need, caps)
	if (dErr == nil) != (lErr == nil) {
		t.Fatalf("solver disagreement: dijkstra err=%v, legacy err=%v", dErr, lErr)
	}
	if dErr != nil {
		if dErr != ErrInfeasible || lErr != ErrInfeasible {
			t.Fatalf("unexpected errors: dijkstra=%v legacy=%v", dErr, lErr)
		}
		if brute {
			if _, ok := bruteForceTransport(profit, need, caps); ok {
				t.Fatalf("solvers infeasible but brute force found a plan")
			}
		}
		return false
	}
	if got := checkFeasible(t, profit, need, caps, dRows); math.Abs(got-dTotal) > 1e-9 {
		t.Fatalf("dijkstra reported %v but plan sums to %v", dTotal, got)
	}
	checkFeasible(t, profit, need, caps, lRows)
	if math.Abs(dTotal-lTotal) > 1e-9 {
		t.Fatalf("objectives differ: dijkstra=%v legacy=%v", dTotal, lTotal)
	}
	if brute {
		bTotal, ok := bruteForceTransport(profit, need, caps)
		if !ok {
			t.Fatalf("solvers found a plan but brute force is infeasible")
		}
		if math.Abs(dTotal-bTotal) > 1e-9 {
			t.Fatalf("objectives differ: dijkstra=%v brute=%v", dTotal, bTotal)
		}
	}
	return true
}

func TestParityRandomSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	feasible := 0
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(5)
		profit, need, caps := randomInstance(rng, n, m, 2, 2, 0.15)
		if runParity(t, profit, need, caps, true) {
			feasible++
		}
	}
	if feasible == 0 {
		t.Fatal("no feasible instances drawn; parity untested")
	}
}

func TestParityForbiddenHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	infeasible := 0
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(5)
		profit, need, caps := randomInstance(rng, n, m, 2, 2, 0.7)
		if !runParity(t, profit, need, caps, true) {
			infeasible++
		}
	}
	if infeasible == 0 {
		t.Fatal("no infeasible instances drawn; the forbidden-heavy regime is untested")
	}
}

func TestParityRandomMedium(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		n := 10 + rng.Intn(20)
		m := n + rng.Intn(30)
		profit, need, caps := randomInstance(rng, n, m, 3, 3, 0.1)
		runParity(t, profit, need, caps, false)
	}
}

func TestParityInfeasibleByCapacity(t *testing.T) {
	// Total capacity below total demand.
	profit := [][]float64{{1, 1}, {1, 1}}
	if _, _, err := MaxProfitTransportWith(Dijkstra, profit, []int{2, 2}, []int{1, 1}); err != ErrInfeasible {
		t.Fatalf("dijkstra err = %v, want ErrInfeasible", err)
	}
	if _, _, err := MaxProfitTransportWith(Legacy, profit, []int{2, 2}, []int{1, 1}); err != ErrInfeasible {
		t.Fatalf("legacy err = %v, want ErrInfeasible", err)
	}
}

func TestNegativeColumnCapacityRejected(t *testing.T) {
	profit := [][]float64{{1, 2}}
	for _, s := range []Solver{Dijkstra, Legacy} {
		if _, _, err := MaxProfitTransportWith(s, profit, []int{1}, []int{1, -1}); err == nil || err == ErrInfeasible {
			t.Fatalf("solver %v accepted negative column capacity (err=%v)", s, err)
		}
	}
	var tr Transport
	if _, _, err := tr.Solve(profit, []int{1}, []int{1, 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tr.Resolve([]int{1, -1}); err == nil || err == ErrInfeasible {
		t.Fatalf("Resolve accepted negative column capacity (err=%v)", err)
	}
}

func TestResolveBeforeSolve(t *testing.T) {
	var tr Transport
	if _, _, err := tr.Resolve([]int{1}); err == nil {
		t.Fatal("Resolve before Solve accepted")
	}
}

// TestResolveMatchesFreshSolve grows and shrinks column capacities and checks
// that the warm-started Resolve matches a cold Solve of the final instance.
func TestResolveMatchesFreshSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(6)
		profit, need, caps := randomInstance(rng, n, m, 2, 2, 0.15)
		var tr Transport
		_, _, err := tr.Solve(profit, need, caps)
		if err != nil && err != ErrInfeasible {
			t.Fatal(err)
		}
		// Perturb capacities in both directions.
		caps2 := make([]int, m)
		for j := range caps2 {
			caps2[j] = caps[j] + rng.Intn(3) - 1
			if caps2[j] < 0 {
				caps2[j] = 0
			}
		}
		warmRows, warmTotal, warmErr := tr.Resolve(caps2)
		freshRows, freshTotal, freshErr := MaxProfitTransport(profit, need, caps2)
		if (warmErr == nil) != (freshErr == nil) {
			t.Fatalf("trial %d: warm err=%v, fresh err=%v", trial, warmErr, freshErr)
		}
		if warmErr != nil {
			continue
		}
		checkFeasible(t, profit, need, caps2, warmRows)
		checkFeasible(t, profit, need, caps2, freshRows)
		if math.Abs(warmTotal-freshTotal) > 1e-9 {
			t.Fatalf("trial %d: warm=%v fresh=%v", trial, warmTotal, freshTotal)
		}
	}
}

// TestResolveAfterInfeasibleSolve is SDGA's stage fallback: a Solve that fails
// on tight per-stage capacities is continued by Resolve with the reviewers'
// full remaining workload.
func TestResolveAfterInfeasibleSolve(t *testing.T) {
	profit := [][]float64{
		{0.9, 0.1},
		{0.8, Forbidden},
		{0.7, 0.2},
	}
	var tr Transport
	if _, _, err := tr.Solve(profit, []int{1, 1, 1}, []int{1, 1}); err != ErrInfeasible {
		t.Fatalf("tight caps err = %v, want ErrInfeasible", err)
	}
	rows, total, err := tr.Resolve([]int{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	got := checkFeasible(t, profit, []int{1, 1, 1}, []int{2, 1}, rows)
	want, ok := bruteForceTransport(profit, []int{1, 1, 1}, []int{2, 1})
	if !ok || math.Abs(got-want) > 1e-9 || math.Abs(total-want) > 1e-9 {
		t.Fatalf("resolve total = %v (plan %v), brute force = %v", total, got, want)
	}
}

// TestWarmStartAcrossStages re-solves a sequence of related instances through
// one Transport (SDGA's δp stages) and checks each solve against a cold one.
func TestWarmStartAcrossStages(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, m := 12, 20
	var tr Transport
	profit, need, caps := randomInstance(rng, n, m, 1, 1, 0.1)
	for j := range caps {
		caps[j] = 1
	}
	for stage := 0; stage < 4; stage++ {
		// Stage-to-stage drift: marginal gains shrink as groups fill up.
		for i := range profit {
			for j := range profit[i] {
				if !math.IsInf(profit[i][j], -1) {
					profit[i][j] *= 0.5 + 0.5*rng.Float64()
				}
			}
		}
		warmRows, warmTotal, warmErr := tr.Solve(profit, need, caps)
		freshRows, freshTotal, freshErr := MaxProfitTransport(profit, need, caps)
		if (warmErr == nil) != (freshErr == nil) {
			t.Fatalf("stage %d: warm err=%v, fresh err=%v", stage, warmErr, freshErr)
		}
		if warmErr != nil {
			continue
		}
		checkFeasible(t, profit, need, caps, warmRows)
		checkFeasible(t, profit, need, caps, freshRows)
		if math.Abs(warmTotal-freshTotal) > 1e-9 {
			t.Fatalf("stage %d: warm=%v fresh=%v", stage, warmTotal, freshTotal)
		}
	}
}

// TestTransportReuseShrinksAllocations exercises dimension changes through one
// reused solver.
func TestTransportReuseAcrossShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var tr Transport
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(7)
		profit, need, caps := randomInstance(rng, n, m, 2, 2, 0.2)
		rows, total, err := tr.Solve(profit, need, caps)
		fRows, fTotal, fErr := MaxProfitTransportWith(Legacy, profit, need, caps)
		if (err == nil) != (fErr == nil) {
			t.Fatalf("trial %d: err=%v legacy=%v", trial, err, fErr)
		}
		if err != nil {
			continue
		}
		checkFeasible(t, profit, need, caps, rows)
		checkFeasible(t, profit, need, caps, fRows)
		if math.Abs(total-fTotal) > 1e-9 {
			t.Fatalf("trial %d: total=%v legacy=%v", trial, total, fTotal)
		}
	}
}

// TestShardedLoadDeterminism: the sharded (Workers > 1) instance-load passes
// must produce byte-identical plans to the serial solver — not merely equal
// objectives — because sessions rely on replay determinism. Instances are
// drawn above the parallel-load threshold so the goroutine pool actually
// runs.
func TestShardedLoadDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 6; trial++ {
		n := 120 + rng.Intn(60)
		m := 600 + rng.Intn(200)
		profit, need, caps := randomInstance(rng, n, m, 1, 1, 0.05)
		serial := Transport{Workers: 1}
		sRows, sTotal, sErr := serial.Solve(profit, need, caps)
		for _, workers := range []int{2, 4, 7} {
			sharded := Transport{Workers: workers}
			pRows, pTotal, pErr := sharded.Solve(profit, need, caps)
			if (sErr == nil) != (pErr == nil) {
				t.Fatalf("trial %d workers %d: err=%v vs serial err=%v", trial, workers, pErr, sErr)
			}
			if sErr != nil {
				continue
			}
			if math.Abs(sTotal-pTotal) > 1e-12 {
				t.Fatalf("trial %d workers %d: total %v != serial %v", trial, workers, pTotal, sTotal)
			}
			for i := range sRows {
				if len(sRows[i]) != len(pRows[i]) {
					t.Fatalf("trial %d workers %d row %d: plan %v != serial %v", trial, workers, i, pRows[i], sRows[i])
				}
				for k := range sRows[i] {
					if sRows[i][k] != pRows[i][k] {
						t.Fatalf("trial %d workers %d row %d: plan %v != serial %v", trial, workers, i, pRows[i], sRows[i])
					}
				}
			}
		}
		// The dense path must agree with itself across worker counts too.
		d1 := Transport{Workers: 1}
		r1, t1, e1 := d1.SolveDense(profit, need, caps)
		d4 := Transport{Workers: 4}
		r4, t4, e4 := d4.SolveDense(profit, need, caps)
		if (e1 == nil) != (e4 == nil) {
			t.Fatalf("trial %d dense: err=%v vs %v", trial, e1, e4)
		}
		if e1 == nil {
			if math.Abs(t1-t4) > 1e-12 {
				t.Fatalf("trial %d dense: totals %v vs %v", trial, t1, t4)
			}
			for i := range r1 {
				for k := range r1[i] {
					if r1[i][k] != r4[i][k] {
						t.Fatalf("trial %d dense row %d: %v vs %v", trial, i, r4[i], r1[i])
					}
				}
			}
		}
	}
}
