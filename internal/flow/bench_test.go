package flow

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// benchProfit draws a dense stage-shaped profit matrix with a small share of
// forbidden (conflict) cells.
func benchProfit(rng *rand.Rand, n, m int) [][]float64 {
	profit := make([][]float64, n)
	for i := range profit {
		profit[i] = make([]float64, m)
		for j := range profit[i] {
			if rng.Float64() < 0.02 {
				profit[i][j] = Forbidden
			} else {
				profit[i][j] = rng.Float64()
			}
		}
	}
	return profit
}

func fillInts(n, v int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// BenchmarkTransportSolve is the reduced-scale (P=200, R=400) transport solve
// tracked by the CI bench-regression gate (see BENCH_BASELINE.json and
// cmd/wgrap-bench): one SDGA-stage-shaped instance — unit row demands,
// unit column capacities — solved from cold.
func BenchmarkTransportSolve(b *testing.B) {
	const P, R = 200, 400
	profit := benchProfit(rand.New(rand.NewSource(3)), P, R)
	need := fillInts(P, 1)
	caps := fillInts(R, 1)
	b.Run("dijkstra-200x400", func(b *testing.B) {
		b.ReportAllocs()
		var tr Transport
		for i := 0; i < b.N; i++ {
			if _, _, err := tr.Solve(profit, need, caps); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("legacy-200x400", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := MaxProfitTransportWith(Legacy, profit, need, caps); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTransportStageSequencePaperScale replays the δp=3 stage re-solves
// of SDGA at the paper's conference scale (P=1000 papers, R=2000 reviewers,
// δp=3, so δr=⌈P·δp/R⌉=2 and a per-stage capacity of 1): three related
// profit matrices solved in sequence. The dijkstra variant shares one
// Transport across the stages, warm-starting the column duals exactly as
// cra.SDGA does; the legacy variant is the SPFA successive-shortest-paths
// path. Both variants must agree on every stage objective to 1e-9 — checked
// once before timing — which is the old-vs-new evidence behind the
// transport-rewrite acceptance criterion.
func BenchmarkTransportStageSequencePaperScale(b *testing.B) {
	const P, R, stages = 1000, 2000, 3
	rng := rand.New(rand.NewSource(17))
	profits := make([][][]float64, stages)
	for s := range profits {
		profits[s] = benchProfit(rng, P, R)
	}
	need := fillInts(P, 1)
	caps := fillInts(R, 1)

	solveDijkstra := func() []float64 {
		totals := make([]float64, stages)
		var tr Transport
		for s := 0; s < stages; s++ {
			_, total, err := tr.Solve(profits[s], need, caps)
			if err != nil {
				b.Fatal(err)
			}
			totals[s] = total
		}
		return totals
	}
	solveLegacy := func() []float64 {
		totals := make([]float64, stages)
		for s := 0; s < stages; s++ {
			_, total, err := MaxProfitTransportWith(Legacy, profits[s], need, caps)
			if err != nil {
				b.Fatal(err)
			}
			totals[s] = total
		}
		return totals
	}

	solveSharded := func() []float64 {
		totals := make([]float64, stages)
		tr := Transport{Workers: runtime.GOMAXPROCS(0)}
		for s := 0; s < stages; s++ {
			_, total, err := tr.Solve(profits[s], need, caps)
			if err != nil {
				b.Fatal(err)
			}
			totals[s] = total
		}
		return totals
	}

	// The legacy solver takes minutes at this scale — that gap is the point
	// of the ablation — so each variant runs its solves exactly once per
	// iteration and the objective parity is asserted on the iterations
	// themselves rather than in a separate warm-up pass.
	var dTotals, lTotals [][]float64
	b.Run("dijkstra-warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dTotals = append(dTotals, solveDijkstra())
		}
	})
	b.Run("dijkstra-warm-sharded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sTotals := solveSharded()
			for s := range sTotals {
				if len(dTotals) > 0 && math.Abs(sTotals[s]-dTotals[0][s]) > 1e-9 {
					b.Fatalf("stage %d: sharded objective %v != serial %v", s, sTotals[s], dTotals[0][s])
				}
			}
		}
	})
	b.Run("legacy-spfa", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lTotals = append(lTotals, solveLegacy())
		}
	})
	if len(dTotals) > 0 && len(lTotals) > 0 {
		for s := 0; s < stages; s++ {
			if math.Abs(dTotals[0][s]-lTotals[0][s]) > 1e-9 {
				b.Fatalf("stage %d objective mismatch: dijkstra=%v legacy=%v", s, dTotals[0][s], lTotals[0][s])
			}
		}
	}
}

// BenchmarkTransportResolve measures the warm Resolve against a cold re-Solve
// after the capacity change of SDGA's stage fallback (per-stage caps relaxed
// to the full remaining workload).
func BenchmarkTransportResolve(b *testing.B) {
	const P, R = 200, 400
	profit := benchProfit(rand.New(rand.NewSource(9)), P, R)
	need := fillInts(P, 1)
	tight := fillInts(R, 1)
	relaxed := fillInts(R, 2)
	b.Run("warm-resolve", func(b *testing.B) {
		b.ReportAllocs()
		var tr Transport
		for i := 0; i < b.N; i++ {
			if _, _, err := tr.Solve(profit, need, tight); err != nil {
				b.Fatal(err)
			}
			if _, _, err := tr.Resolve(relaxed); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold-resolve", func(b *testing.B) {
		b.ReportAllocs()
		var tr Transport
		for i := 0; i < b.N; i++ {
			if _, _, err := tr.Solve(profit, need, tight); err != nil {
				b.Fatal(err)
			}
			var fresh Transport
			if _, _, err := fresh.Solve(profit, need, relaxed); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTransportResolveRowsPaperScale measures the session warm path at
// paper scale (P=1000, R=2000): one conflict-of-interest edit to a random
// row, re-solved via ResolveRows against a cold dense re-solve. resets/op
// counts how often the warm path had to restart the flow from cold duals
// (the sink-side dual turned infeasible).
func BenchmarkTransportResolveRowsPaperScale(b *testing.B) {
	const P, R = 1000, 2000
	rng := rand.New(rand.NewSource(21))
	profit := benchProfit(rng, P, R)
	need := fillInts(P, 1)
	caps := fillInts(R, 1)
	b.Run("warm-resolve-rows", func(b *testing.B) {
		var tr Transport
		if _, _, err := tr.SolveDense(profit, need, caps); err != nil {
			b.Fatal(err)
		}
		resets := 0
		orig := resetFlowHook
		resetFlowHook = func() { resets++ }
		defer func() { resetFlowHook = orig }()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			row := rng.Intn(P)
			profit[row][rng.Intn(R)] = Forbidden
			if _, _, err := tr.ResolveRows(profit, []int{row}, need, caps); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(resets)/float64(b.N), "resets/op")
	})
	b.Run("cold-dense-solve", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			row := rng.Intn(P)
			profit[row][rng.Intn(R)] = Forbidden
			var tr Transport
			if _, _, err := tr.SolveDense(profit, need, caps); err != nil {
				b.Fatal(err)
			}
		}
	})
}
