package tenant

import (
	"sync"

	"repro/internal/wire"
)

// hub fans one tenant's progress snapshots out to its subscribers.
// broadcast runs on the solving goroutine (inside the solve lock), so it
// must never block: every subscriber gets a buffered channel and a slow one
// loses events rather than stalling the solve — progress is a lossy metrics
// stream by design, the authoritative state is the View.
type hub struct {
	mu     sync.Mutex
	subs   map[chan wire.Progress]struct{}
	closed bool
}

func newHub() *hub {
	return &hub{subs: make(map[chan wire.Progress]struct{})}
}

// subscribe registers a new subscriber. The returned cancel function is
// idempotent and safe to call concurrently with broadcasts; after cancel
// the channel is closed.
func (h *hub) subscribe() (<-chan wire.Progress, func()) {
	ch := make(chan wire.Progress, 64)
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			h.mu.Lock()
			if _, ok := h.subs[ch]; ok {
				delete(h.subs, ch)
				close(ch)
			}
			h.mu.Unlock()
		})
	}
	return ch, cancel
}

// broadcast delivers p to every subscriber without blocking.
func (h *hub) broadcast(p wire.Progress) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for ch := range h.subs {
		select {
		case ch <- p:
		default: // slow subscriber: drop
		}
	}
}

// closeAll closes every subscriber channel (tenant deleted / server
// shutdown), ending their SSE streams.
func (h *hub) closeAll() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
	}
}
