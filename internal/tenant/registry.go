// Package tenant is the transport-agnostic tenant core of the serving
// stack: a registry of per-venue tenants, each a long-lived wgrap.Solver
// session, with the lifecycle (create, restore, adopt, delete), the
// edit/solve semantics (accepted-prefix edit batches) and the progress
// fan-out hub — everything a serving front needs except the transport.
// internal/serve mounts an HTTP API over this core; the client package's
// mem:// backend drives the same core in-process; internal/cluster
// replicates tenants between cores on different nodes. One core, three
// fronts, identical semantics.
//
// With a data directory the tenants are durable: each lives in its own
// subdirectory holding the solver's snapshot + edit journal (internal/durable
// via wgrap.WithJournalDir) and a config.json with the solver options, so a
// killed server reopens the directory and replays every tenant back to its
// exact pre-crash state.
package tenant

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	wgrap "repro"
	"repro/internal/durable"
	"repro/internal/wire"
)

// Registry-level errors, mapped to wire error codes by the transport layer.
var (
	ErrTenantExists   = errors.New("tenant: already exists")
	ErrTenantNotFound = errors.New("tenant: not found")
	ErrBadTenantID    = errors.New("tenant: invalid tenant id")
)

const configFile = "config.json"

// Tenant is one hosted solver session.
type Tenant struct {
	ID      string
	Solver  *wgrap.Solver
	Config  wire.TenantConfig
	Durable bool
	hub     *hub

	ticketMu sync.Mutex
	tickets  map[string]*wgrap.Ticket
}

// Registry hosts the tenants of one server process.
type Registry struct {
	dataDir string // "" = purely in-memory tenants

	mu      sync.RWMutex
	tenants map[string]*Tenant

	ticketSeq atomic.Uint64
}

// NewRegistry builds a registry. A non-empty dataDir makes every tenant
// durable under dataDir/<tenant-id> and reopens the tenants already stored
// there (crash recovery): their sessions come back at the journaled edit
// sequence with the solver options saved at creation.
func NewRegistry(dataDir string) (*Registry, error) {
	r := &Registry{dataDir: dataDir, tenants: make(map[string]*Tenant)}
	if dataDir == "" {
		return r, nil
	}
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dataDir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() || !durable.Exists(filepath.Join(dataDir, e.Name())) {
			continue
		}
		if err := r.restoreTenant(e.Name()); err != nil {
			return nil, fmt.Errorf("tenant: restoring %q: %w", e.Name(), err)
		}
	}
	return r, nil
}

// Durable reports whether the registry persists its tenants.
func (r *Registry) Durable() bool { return r.dataDir != "" }

// Dir returns the durable directory of a tenant id ("" for an in-memory
// registry). The directory may or may not exist.
func (r *Registry) Dir(id string) string {
	if r.dataDir == "" {
		return ""
	}
	return filepath.Join(r.dataDir, id)
}

// validTenantID accepts DNS-label-like ids: they double as directory names.
func validTenantID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return id[0] != '.'
}

// configOptions converts the serializable tenant config to solver options.
func configOptions(cfg wire.TenantConfig) []wgrap.Option {
	var opts []wgrap.Option
	if cfg.Method != "" {
		opts = append(opts, wgrap.WithMethod(wgrap.Method(cfg.Method)))
	}
	if cfg.Omega > 0 {
		opts = append(opts, wgrap.WithOmega(cfg.Omega))
	}
	if cfg.Seed != 0 {
		opts = append(opts, wgrap.WithSeed(cfg.Seed))
	}
	if cfg.RefinementBudget > 0 {
		opts = append(opts, wgrap.WithRefinementBudget(time.Duration(cfg.RefinementBudget)))
	}
	if cfg.Shards > 0 {
		opts = append(opts, wgrap.WithShards(cfg.Shards))
	}
	if cfg.CandidateCap > 0 {
		opts = append(opts, wgrap.WithCandidateCap(cfg.CandidateCap))
	}
	if cfg.SnapshotEvery > 0 {
		opts = append(opts, wgrap.WithSnapshotEvery(cfg.SnapshotEvery))
	}
	if cfg.FsyncIntervalNS != 0 {
		// Negative means "fsync every record" (WithFsyncInterval(<=0)).
		d := time.Duration(cfg.FsyncIntervalNS)
		if d < 0 {
			d = 0
		}
		opts = append(opts, wgrap.WithFsyncInterval(d))
	}
	return opts
}

// Create builds and registers a new tenant from an uploaded instance. With a
// data directory the tenant is durable from its first edit.
func (r *Registry) Create(req *wire.CreateRequest) (*Tenant, error) {
	if !validTenantID(req.ID) {
		return nil, fmt.Errorf("%w: %q", ErrBadTenantID, req.ID)
	}
	if req.Instance == nil {
		return nil, fmt.Errorf("%w: missing instance", wgrap.ErrInvalidInstance)
	}
	in, err := req.Instance.ToInstance()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", wgrap.ErrInvalidInstance, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tenants[req.ID]; ok {
		return nil, fmt.Errorf("%w: %q", ErrTenantExists, req.ID)
	}
	opts := configOptions(req.Config)
	durableTenant := r.dataDir != ""
	if durableTenant {
		dir := filepath.Join(r.dataDir, req.ID)
		if durable.Exists(dir) {
			return nil, fmt.Errorf("%w: %q has durable state on disk", ErrTenantExists, req.ID)
		}
		opts = append(opts, wgrap.WithJournalDir(dir))
	}
	s, err := wgrap.NewSolver(in, opts...)
	if err != nil {
		return nil, err
	}
	t := newTenant(req.ID, s, req.Config, durableTenant)
	if durableTenant {
		if err := r.saveConfig(req.ID, req.Config); err != nil {
			s.Close()
			return nil, err
		}
	}
	r.tenants[req.ID] = t
	return t, nil
}

// restoreTenant reopens one durable tenant directory (crash recovery).
// Caller holds r.mu.
func (r *Registry) restoreTenant(id string) error {
	cfg, err := r.loadConfig(id)
	if err != nil {
		return err
	}
	s, err := wgrap.RestoreSolver(filepath.Join(r.dataDir, id), configOptions(cfg)...)
	if err != nil {
		return err
	}
	r.tenants[id] = newTenant(id, s, cfg, true)
	return nil
}

// Adopt registers a tenant from durable state written out of band — the
// replication bootstrap path: a cluster follower materialises a snapshot +
// journal it fetched from the owner into dataDir/<id> and then adopts it,
// which saves the shipped config and restores the solver exactly like crash
// recovery would. It fails when the id is already live or the directory
// holds no durable state.
func (r *Registry) Adopt(id string, cfg wire.TenantConfig) (*Tenant, error) {
	if !validTenantID(id) {
		return nil, fmt.Errorf("%w: %q", ErrBadTenantID, id)
	}
	if r.dataDir == "" {
		return nil, errors.New("tenant: Adopt requires a durable registry")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tenants[id]; ok {
		return nil, fmt.Errorf("%w: %q", ErrTenantExists, id)
	}
	if !durable.Exists(filepath.Join(r.dataDir, id)) {
		return nil, fmt.Errorf("%w: %q has no durable state to adopt", ErrTenantNotFound, id)
	}
	if err := r.saveConfig(id, cfg); err != nil {
		return nil, err
	}
	if err := r.restoreTenant(id); err != nil {
		return nil, err
	}
	return r.tenants[id], nil
}

func newTenant(id string, s *wgrap.Solver, cfg wire.TenantConfig, durableTenant bool) *Tenant {
	t := &Tenant{
		ID: id, Solver: s, Config: cfg, Durable: durableTenant,
		hub:     newHub(),
		tickets: make(map[string]*wgrap.Ticket),
	}
	// Fan every anytime snapshot out to the tenant's SSE subscribers. The
	// callback runs on the solving goroutine, so it must never block: the hub
	// drops events for slow subscribers instead.
	s.OnImprovement(func(sn wgrap.Snapshot) {
		t.hub.broadcast(wire.Progress{
			Phase: sn.Phase, Round: sn.Round, Score: sn.Score, ElapsedNS: int64(sn.Elapsed),
		})
	})
	return t
}

func (r *Registry) saveConfig(id string, cfg wire.TenantConfig) error {
	raw, err := json.Marshal(cfg)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(r.dataDir, id, configFile), raw, 0o644)
}

func (r *Registry) loadConfig(id string) (wire.TenantConfig, error) {
	var cfg wire.TenantConfig
	raw, err := os.ReadFile(filepath.Join(r.dataDir, id, configFile))
	if errors.Is(err, os.ErrNotExist) {
		return cfg, nil // defaults
	}
	if err != nil {
		return cfg, err
	}
	err = json.Unmarshal(raw, &cfg)
	return cfg, err
}

// Get returns a tenant by id.
func (r *Registry) Get(id string) (*Tenant, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.tenants[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrTenantNotFound, id)
	}
	return t, nil
}

// Has reports whether a tenant id is live without allocating an error.
func (r *Registry) Has(id string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.tenants[id]
	return ok
}

// List returns the tenant ids, sorted.
func (r *Registry) List() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]string, 0, len(r.tenants))
	for id := range r.tenants {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Delete closes a tenant's session and unregisters it. Durable state stays
// on disk: re-creating the tenant with the same id is refused until the
// directory is removed out of band, and a server restart restores it.
func (r *Registry) Delete(id string) error {
	r.mu.Lock()
	t, ok := r.tenants[id]
	delete(r.tenants, id)
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrTenantNotFound, id)
	}
	t.hub.closeAll()
	return t.Solver.Close()
}

// Purge deletes a tenant (if live) and removes its durable directory — the
// replication cleanup path, used when the owner reports a replicated tenant
// gone so the follower's stale copy must not resurrect it. Unlike Delete it
// succeeds when only on-disk state exists.
func (r *Registry) Purge(id string) error {
	if !validTenantID(id) {
		return fmt.Errorf("%w: %q", ErrBadTenantID, id)
	}
	err := r.Delete(id)
	if err != nil && !errors.Is(err, ErrTenantNotFound) {
		return err
	}
	if r.dataDir != "" {
		if rmErr := os.RemoveAll(filepath.Join(r.dataDir, id)); rmErr != nil {
			return rmErr
		}
	}
	return nil
}

// Close shuts every tenant down: journals flushed and closed, SSE
// subscribers released. The registry is unusable afterwards.
func (r *Registry) Close() error {
	r.mu.Lock()
	tenants := r.tenants
	r.tenants = make(map[string]*Tenant)
	r.mu.Unlock()
	var first error
	for _, t := range tenants {
		t.hub.closeAll()
		if err := t.Solver.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// NewTicket registers an async-resolve ticket under a fresh token.
func (r *Registry) NewTicket(t *Tenant, tk *wgrap.Ticket) string {
	token := fmt.Sprintf("tk-%d", r.ticketSeq.Add(1))
	t.ticketMu.Lock()
	t.tickets[token] = tk
	t.ticketMu.Unlock()
	return token
}

// Ticket looks a ticket up by token. Completed tickets stay queryable until
// the tenant is deleted (they are O(1) each; a venue's edit stream is far
// smaller than memory).
func (t *Tenant) Ticket(token string) (*wgrap.Ticket, bool) {
	t.ticketMu.Lock()
	defer t.ticketMu.Unlock()
	tk, ok := t.tickets[token]
	return tk, ok
}

// Subscribe attaches a progress subscriber to the tenant's SSE hub; the
// in-process (mem://) client uses it to offer the same lossy progress stream
// the HTTP endpoint serves. The cancel function is idempotent; the channel
// closes on cancel and on tenant shutdown.
func (t *Tenant) Subscribe() (<-chan wire.Progress, func()) {
	return t.hub.subscribe()
}
