package tenant

import (
	"errors"
	"fmt"

	wgrap "repro"
	"repro/internal/wire"
)

// ApplyEdits applies one edit batch to a tenant's session in order, shared
// by the HTTP handler, the in-process (mem://) client and the cluster
// replication ingest. It stops at the first rejected edit; the returned
// response always counts the accepted prefix (edits are not transactional —
// accepted ones stay applied and journaled, like consecutive mutator calls)
// and reports the session's edit sequence after the batch, which is what
// lets a cluster client reconcile a batch interrupted by a failover.
func ApplyEdits(t *Tenant, edits []wire.Edit) (*wire.EditResponse, error) {
	resp := &wire.EditResponse{}
	for _, e := range edits {
		var err error
		switch e.Op {
		case wire.OpAddConflict:
			err = t.Solver.AddConflict(e.R, e.P)
		case wire.OpWithdraw:
			err = t.Solver.WithdrawPaper(e.P)
		case wire.OpRestore:
			err = t.Solver.RestorePaper(e.P)
		case wire.OpAddReviewer:
			if e.Reviewer == nil {
				err = fmt.Errorf("%w: add-reviewer without a reviewer", wgrap.ErrInvalidEdit)
				break
			}
			var idx int
			idx, err = t.Solver.AddReviewer(wgrap.Reviewer{
				ID: e.Reviewer.ID, Name: e.Reviewer.Name,
				HIndex: e.Reviewer.HIndex, Topics: e.Reviewer.Topics,
			})
			if err == nil {
				resp.ReviewerIndices = append(resp.ReviewerIndices, idx)
			}
		case wire.OpSetWorkload:
			err = t.Solver.SetWorkload(e.Workload)
		default:
			err = fmt.Errorf("%w: unknown op %q", wgrap.ErrInvalidEdit, e.Op)
		}
		if err != nil {
			resp.Seq = t.Solver.Seq()
			return resp, err
		}
		resp.Accepted++
	}
	resp.Seq = t.Solver.Seq()
	return resp, nil
}

// StatusOf assembles a tenant's wire status from its lock-free read surface.
func StatusOf(t *Tenant) wire.Status {
	in := t.Solver.Instance()
	return wire.Status{
		ID:        t.ID,
		Papers:    in.NumPapers(),
		Reviewers: in.NumReviewers(),
		Active:    t.Solver.ActivePapers(),
		Seq:       t.Solver.Seq(),
		Version:   t.Solver.View().Version,
		Durable:   t.Durable,
	}
}

// ResultOf converts a solver result to its wire form.
func ResultOf(res *wgrap.Result) *wire.Result {
	if res == nil {
		return nil
	}
	return &wire.Result{
		Score:           res.Score,
		AverageCoverage: res.AverageCoverage,
		LowestCoverage:  res.LowestCoverage,
		ElapsedNS:       int64(res.Elapsed),
		Method:          string(res.Method),
		Groups:          res.Assignment.Groups,
	}
}

// ViewOf converts a published view to its wire form.
func ViewOf(v *wgrap.View) wire.View {
	return wire.View{
		Version:    v.Version,
		Warm:       v.Warm,
		Edits:      v.Edits,
		WhenUnixNS: v.When.UnixNano(),
		Result:     ResultOf(v.Result),
	}
}

// ToWireError classifies err into the wire error envelope.
func ToWireError(err error) *wire.Error {
	code := wire.CodeInternal
	switch {
	case errors.Is(err, wgrap.ErrInvalidEdit):
		code = wire.CodeInvalidEdit
	case errors.Is(err, wgrap.ErrConflictSaturated):
		code = wire.CodeConflictSaturated
	case errors.Is(err, wgrap.ErrInfeasible):
		code = wire.CodeInfeasible
	case errors.Is(err, wgrap.ErrInvalidInstance), errors.Is(err, ErrBadTenantID):
		code = wire.CodeInvalidInstance
	case errors.Is(err, wgrap.ErrUnknownMethod):
		code = wire.CodeUnknownMethod
	case errors.Is(err, ErrTenantNotFound):
		code = wire.CodeNotFound
	case errors.Is(err, ErrTenantExists), errors.Is(err, wgrap.ErrJournalExists):
		code = wire.CodeTenantExists
	}
	return &wire.Error{Code: code, Message: err.Error()}
}
