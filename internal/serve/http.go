package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	wgrap "repro"
	"repro/internal/wire"
)

// Handler builds the HTTP API over a registry. Routes (all JSON except the
// SSE stream):
//
//	GET    /v1/healthz                          liveness
//	POST   /v1/tenants                          create tenant (CreateRequest)
//	GET    /v1/tenants                          list tenant ids
//	GET    /v1/tenants/{id}                     tenant status
//	DELETE /v1/tenants/{id}                     close + unregister tenant
//	POST   /v1/tenants/{id}/edits               apply an edit batch
//	POST   /v1/tenants/{id}/solve               cold solve (blocking)
//	POST   /v1/tenants/{id}/resolve             warm re-solve (blocking)
//	POST   /v1/tenants/{id}/resolve-async       enqueue re-solve, returns ticket
//	GET    /v1/tenants/{id}/tickets/{ticket}    poll an async resolve
//	GET    /v1/tenants/{id}/view                latest published View (lock-free)
//	GET    /v1/tenants/{id}/result              latest Result (lock-free)
//	GET    /v1/tenants/{id}/progress            SSE stream of anytime snapshots
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST /v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		var req wire.CreateRequest
		if !readJSON(w, r, &req) {
			return
		}
		t, err := reg.Create(&req)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusCreated, StatusOf(t))
	})
	mux.HandleFunc("GET /v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, wire.TenantList{Tenants: reg.List()})
	})
	mux.HandleFunc("GET /v1/tenants/{id}", withTenant(reg, func(w http.ResponseWriter, r *http.Request, t *Tenant) {
		writeJSON(w, http.StatusOK, StatusOf(t))
	}))
	mux.HandleFunc("DELETE /v1/tenants/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := reg.Delete(r.PathValue("id")); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
	})
	mux.HandleFunc("POST /v1/tenants/{id}/edits", withTenant(reg, handleEdits))
	mux.HandleFunc("POST /v1/tenants/{id}/solve", withTenant(reg, func(w http.ResponseWriter, r *http.Request, t *Tenant) {
		res, err := t.Solver.Solve(r.Context())
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, ResultOf(res))
	}))
	mux.HandleFunc("POST /v1/tenants/{id}/resolve", withTenant(reg, func(w http.ResponseWriter, r *http.Request, t *Tenant) {
		res, err := t.Solver.Resolve(r.Context())
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, ResultOf(res))
	}))
	mux.HandleFunc("POST /v1/tenants/{id}/resolve-async", withTenant(reg, func(w http.ResponseWriter, r *http.Request, t *Tenant) {
		token := reg.NewTicket(t, t.Solver.ResolveAsync())
		writeJSON(w, http.StatusAccepted, wire.Ticket{Ticket: token})
	}))
	mux.HandleFunc("GET /v1/tenants/{id}/tickets/{ticket}", withTenant(reg, handleTicket))
	mux.HandleFunc("GET /v1/tenants/{id}/view", withTenant(reg, func(w http.ResponseWriter, r *http.Request, t *Tenant) {
		writeJSON(w, http.StatusOK, ViewOf(t.Solver.View()))
	}))
	mux.HandleFunc("GET /v1/tenants/{id}/result", withTenant(reg, func(w http.ResponseWriter, r *http.Request, t *Tenant) {
		res := t.Solver.Result()
		if res == nil {
			writeErr(w, fmt.Errorf("%w: tenant has no published result yet", ErrTenantNotFound))
			return
		}
		writeJSON(w, http.StatusOK, ResultOf(res))
	}))
	mux.HandleFunc("GET /v1/tenants/{id}/progress", withTenant(reg, handleProgress))
	return mux
}

// withTenant resolves the {id} path segment before invoking h.
func withTenant(reg *Registry, h func(http.ResponseWriter, *http.Request, *Tenant)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t, err := reg.Get(r.PathValue("id"))
		if err != nil {
			writeErr(w, err)
			return
		}
		h(w, r, t)
	}
}

// handleEdits applies one edit batch in order. The batch is not atomic —
// edits before the failing one stay accepted (and journaled), exactly like a
// sequence of mutator calls on the embedded Solver; the response reports how
// many were accepted so the client can resume.
func handleEdits(w http.ResponseWriter, r *http.Request, t *Tenant) {
	var req wire.EditRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp, err := ApplyEdits(t, req.Edits)
	if err != nil {
		writeEditErr(w, err, resp.Accepted)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// ApplyEdits applies one edit batch to a tenant's session in order, shared
// by the HTTP handler and the in-process (mem://) client. It stops at the
// first rejected edit; the returned response always counts the accepted
// prefix (edits are not transactional — accepted ones stay applied and
// journaled, like consecutive mutator calls).
func ApplyEdits(t *Tenant, edits []wire.Edit) (*wire.EditResponse, error) {
	resp := &wire.EditResponse{}
	for _, e := range edits {
		var err error
		switch e.Op {
		case wire.OpAddConflict:
			err = t.Solver.AddConflict(e.R, e.P)
		case wire.OpWithdraw:
			err = t.Solver.WithdrawPaper(e.P)
		case wire.OpRestore:
			err = t.Solver.RestorePaper(e.P)
		case wire.OpAddReviewer:
			if e.Reviewer == nil {
				err = fmt.Errorf("%w: add-reviewer without a reviewer", wgrap.ErrInvalidEdit)
				break
			}
			var idx int
			idx, err = t.Solver.AddReviewer(wgrap.Reviewer{
				ID: e.Reviewer.ID, Name: e.Reviewer.Name,
				HIndex: e.Reviewer.HIndex, Topics: e.Reviewer.Topics,
			})
			if err == nil {
				resp.ReviewerIndices = append(resp.ReviewerIndices, idx)
			}
		case wire.OpSetWorkload:
			err = t.Solver.SetWorkload(e.Workload)
		default:
			err = fmt.Errorf("%w: unknown op %q", wgrap.ErrInvalidEdit, e.Op)
		}
		if err != nil {
			return resp, err
		}
		resp.Accepted++
	}
	return resp, nil
}

// handleTicket reports an async resolve's state without blocking: done-ness
// is a non-blocking read of the ticket's completion channel.
func handleTicket(w http.ResponseWriter, r *http.Request, t *Tenant) {
	tk, ok := t.Ticket(r.PathValue("ticket"))
	if !ok {
		writeErr(w, fmt.Errorf("%w: ticket %q", ErrTenantNotFound, r.PathValue("ticket")))
		return
	}
	st := wire.TicketStatus{}
	select {
	case <-tk.Done():
		st.Done = true
		res, err := tk.Wait(r.Context()) // completed: returns immediately
		if err != nil {
			st.Error = ToWireError(err)
		} else {
			st.Version = tk.Version()
			st.Result = ResultOf(res)
		}
	default:
	}
	writeJSON(w, http.StatusOK, st)
}

// handleProgress streams the tenant's anytime snapshots as Server-Sent
// Events until the client disconnects or the tenant shuts down. Events are
// metrics-only (wire.Progress); assignments travel through the view
// endpoint.
func handleProgress(w http.ResponseWriter, r *http.Request, t *Tenant) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, errors.New("serve: streaming unsupported by this connection"))
		return
	}
	ch, cancel := t.hub.subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case p, open := <-ch:
			if !open {
				return
			}
			raw, err := json.Marshal(p)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: progress\ndata: %s\n\n", raw); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// StatusOf assembles a tenant's wire status from its lock-free read surface.
func StatusOf(t *Tenant) wire.Status {
	in := t.Solver.Instance()
	return wire.Status{
		ID:        t.ID,
		Papers:    in.NumPapers(),
		Reviewers: in.NumReviewers(),
		Active:    t.Solver.ActivePapers(),
		Seq:       t.Solver.Seq(),
		Version:   t.Solver.View().Version,
		Durable:   t.Durable,
	}
}

// ResultOf converts a solver result to its wire form.
func ResultOf(res *wgrap.Result) *wire.Result {
	if res == nil {
		return nil
	}
	return &wire.Result{
		Score:           res.Score,
		AverageCoverage: res.AverageCoverage,
		LowestCoverage:  res.LowestCoverage,
		ElapsedNS:       int64(res.Elapsed),
		Method:          string(res.Method),
		Groups:          res.Assignment.Groups,
	}
}

// ViewOf converts a published view to its wire form.
func ViewOf(v *wgrap.View) wire.View {
	return wire.View{
		Version:    v.Version,
		Warm:       v.Warm,
		Edits:      v.Edits,
		WhenUnixNS: v.When.UnixNano(),
		Result:     ResultOf(v.Result),
	}
}

// ToWireError classifies err into the wire error envelope.
func ToWireError(err error) *wire.Error {
	code := wire.CodeInternal
	switch {
	case errors.Is(err, wgrap.ErrInvalidEdit):
		code = wire.CodeInvalidEdit
	case errors.Is(err, wgrap.ErrConflictSaturated):
		code = wire.CodeConflictSaturated
	case errors.Is(err, wgrap.ErrInfeasible):
		code = wire.CodeInfeasible
	case errors.Is(err, wgrap.ErrInvalidInstance), errors.Is(err, ErrBadTenantID):
		code = wire.CodeInvalidInstance
	case errors.Is(err, wgrap.ErrUnknownMethod):
		code = wire.CodeUnknownMethod
	case errors.Is(err, ErrTenantNotFound):
		code = wire.CodeNotFound
	case errors.Is(err, ErrTenantExists), errors.Is(err, wgrap.ErrJournalExists):
		code = wire.CodeTenantExists
	}
	return &wire.Error{Code: code, Message: err.Error()}
}

// httpStatus maps wire error codes to HTTP statuses.
func httpStatus(code string) int {
	switch code {
	case wire.CodeInvalidEdit, wire.CodeInvalidInstance, wire.CodeUnknownMethod:
		return http.StatusBadRequest
	case wire.CodeConflictSaturated, wire.CodeInfeasible, wire.CodeTenantExists:
		return http.StatusConflict
	case wire.CodeNotFound:
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

func writeErr(w http.ResponseWriter, err error) {
	we := ToWireError(err)
	writeJSON(w, httpStatus(we.Code), we)
}

// writeEditErr is writeErr plus the accepted-edit count, so a partially
// applied batch is reported precisely (edits are not transactional).
func writeEditErr(w http.ResponseWriter, err error, accepted int) {
	we := ToWireError(err)
	writeJSON(w, httpStatus(we.Code), struct {
		*wire.Error
		Accepted int `json:"accepted"`
	}{we, accepted})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, fmt.Errorf("%w: decoding request body: %v", wgrap.ErrInvalidInstance, err))
		return false
	}
	return true
}
