// Package serve is the HTTP front of the serving stack: a thin transport
// over the transport-agnostic tenant core (internal/tenant), which owns the
// registry, tenant lifecycle and edit/solve semantics. The same core also
// backs the client package's in-process mem:// backend — the HTTP layer
// adds only encoding, routing and (when configured) cluster ownership
// guards, so both fronts expose identical behaviour.
//
// With WithCluster the handler becomes one node of a shard-aware cluster
// (internal/cluster): write routes are refused with a not_owner envelope
// when the venue hashes to another node, read routes are answered from a
// local replica when one exists, and /cluster/* (shard map, journal
// shipping) is mounted alongside /v1/*.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	wgrap "repro"
	"repro/internal/cluster"
	"repro/internal/tenant"
	"repro/internal/wire"
)

// Compatibility aliases: the registry and tenant types moved to
// internal/tenant when the core was split out of the HTTP layer; existing
// importers (client/mem.go, cmd/wgrap-serve) keep working unchanged.
type (
	Registry = tenant.Registry
	Tenant   = tenant.Tenant
)

var (
	ErrTenantExists   = tenant.ErrTenantExists
	ErrTenantNotFound = tenant.ErrTenantNotFound
	ErrBadTenantID    = tenant.ErrBadTenantID
)

// NewRegistry builds a tenant registry (see tenant.NewRegistry).
func NewRegistry(dataDir string) (*Registry, error) { return tenant.NewRegistry(dataDir) }

// Option configures the handler.
type Option func(*handler)

// WithCluster makes the handler cluster-aware: ownership guards on write
// routes, replica-served reads, and the /cluster/* routes of m.
func WithCluster(m *cluster.Member) Option {
	return func(h *handler) { h.cluster = m }
}

type handler struct {
	reg     *Registry
	cluster *cluster.Member
}

// Handler builds the HTTP API over a registry. Routes (all JSON except the
// SSE stream):
//
//	GET    /v1/healthz                          liveness
//	POST   /v1/tenants                          create tenant (CreateRequest)
//	GET    /v1/tenants                          list tenant ids (this node's)
//	GET    /v1/tenants/{id}                     tenant status
//	DELETE /v1/tenants/{id}                     close + unregister tenant
//	POST   /v1/tenants/{id}/edits               apply an edit batch
//	POST   /v1/tenants/{id}/solve               cold solve (blocking)
//	POST   /v1/tenants/{id}/resolve             warm re-solve (blocking)
//	POST   /v1/tenants/{id}/resolve-async       enqueue re-solve, returns ticket
//	GET    /v1/tenants/{id}/tickets/{ticket}    poll an async resolve
//	GET    /v1/tenants/{id}/view                latest published View (lock-free)
//	GET    /v1/tenants/{id}/result              latest Result (lock-free)
//	GET    /v1/tenants/{id}/progress            SSE stream of anytime snapshots
//
// Cluster mode (WithCluster) splits the tenant routes into two classes.
// Mutating routes (create, delete, edits, solve, resolve, resolve-async,
// status, progress) are owner-only: a node that does not own the venue
// answers 421 with a not_owner envelope naming the owner, and a client
// follows it. Read routes (view, result, tickets) are local-reads: any node
// holding the tenant — owner or replication follower — answers from its
// local (possibly stale-bounded) copy, which is what lets a standby serve
// reads and answer for tickets it issued. /cluster/map and the journal
// shipping endpoints are mounted alongside.
func Handler(reg *Registry, opts ...Option) http.Handler {
	h := &handler{reg: reg}
	for _, o := range opts {
		o(h)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST /v1/tenants", h.handleCreate)
	mux.HandleFunc("GET /v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, wire.TenantList{Tenants: reg.List()})
	})
	mux.HandleFunc("GET /v1/tenants/{id}", h.owned(func(w http.ResponseWriter, r *http.Request, t *Tenant) {
		writeJSON(w, http.StatusOK, tenant.StatusOf(t))
	}))
	mux.HandleFunc("DELETE /v1/tenants/{id}", h.ownedID(func(w http.ResponseWriter, r *http.Request, id string) {
		if err := reg.Delete(id); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
	}))
	mux.HandleFunc("POST /v1/tenants/{id}/edits", h.owned(h.handleEdits))
	mux.HandleFunc("POST /v1/tenants/{id}/solve", h.owned(func(w http.ResponseWriter, r *http.Request, t *Tenant) {
		res, err := t.Solver.Solve(r.Context())
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, tenant.ResultOf(res))
	}))
	mux.HandleFunc("POST /v1/tenants/{id}/resolve", h.owned(func(w http.ResponseWriter, r *http.Request, t *Tenant) {
		res, err := t.Solver.Resolve(r.Context())
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, tenant.ResultOf(res))
	}))
	mux.HandleFunc("POST /v1/tenants/{id}/resolve-async", h.owned(func(w http.ResponseWriter, r *http.Request, t *Tenant) {
		token := reg.NewTicket(t, t.Solver.ResolveAsync())
		writeJSON(w, http.StatusAccepted, wire.Ticket{Ticket: token})
	}))
	mux.HandleFunc("GET /v1/tenants/{id}/tickets/{ticket}", h.local(handleTicket))
	mux.HandleFunc("GET /v1/tenants/{id}/view", h.local(func(w http.ResponseWriter, r *http.Request, t *Tenant) {
		writeJSON(w, http.StatusOK, tenant.ViewOf(t.Solver.View()))
	}))
	mux.HandleFunc("GET /v1/tenants/{id}/result", h.local(func(w http.ResponseWriter, r *http.Request, t *Tenant) {
		res := t.Solver.Result()
		if res == nil {
			writeErr(w, fmt.Errorf("%w: tenant has no published result yet", ErrTenantNotFound))
			return
		}
		writeJSON(w, http.StatusOK, tenant.ResultOf(res))
	}))
	mux.HandleFunc("GET /v1/tenants/{id}/progress", h.owned(handleProgress))
	if h.cluster != nil {
		mux.Handle("/cluster/", h.cluster.Routes())
	}
	return mux
}

// handleCreate registers a new tenant. In cluster mode creation is routed
// like any write: only the owner of the requested id accepts it.
func (h *handler) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req wire.CreateRequest
	if !readJSON(w, r, &req) {
		return
	}
	if h.cluster != nil && req.ID != "" && !h.cluster.IsOwner(req.ID) {
		h.cluster.WriteNotOwner(w, req.ID)
		return
	}
	t, err := h.reg.Create(&req)
	if err != nil {
		writeErr(w, err)
		return
	}
	if h.cluster != nil {
		// Stand the follower up before acknowledging the create: from the
		// first accepted edit on, replication is synchronous with the ack,
		// and that only protects anything if the replica already exists.
		h.cluster.EnsureFollower(t.ID)
	}
	writeJSON(w, http.StatusCreated, tenant.StatusOf(t))
}

// ownedID guards a mutating route that needs only the id (delete): in
// cluster mode a non-owner answers not_owner instead of touching the local
// registry.
func (h *handler) ownedID(fn func(http.ResponseWriter, *http.Request, string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if h.cluster != nil && !h.cluster.IsOwner(id) {
			h.cluster.WriteNotOwner(w, id)
			return
		}
		fn(w, r, id)
	}
}

// owned resolves {id} on mutating routes: cluster ownership first, then the
// local registry.
func (h *handler) owned(fn func(http.ResponseWriter, *http.Request, *Tenant)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if h.cluster != nil && !h.cluster.IsOwner(id) {
			h.cluster.WriteNotOwner(w, id)
			return
		}
		t, err := h.reg.Get(id)
		if err != nil {
			writeErr(w, err)
			return
		}
		fn(w, r, t)
	}
}

// local resolves {id} on read routes from the local registry regardless of
// ownership — a replication follower serves its stale-bounded copy. Only
// when the tenant is not local at all does cluster mode answer not_owner so
// the client retries at the owner.
func (h *handler) local(fn func(http.ResponseWriter, *http.Request, *Tenant)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		t, err := h.reg.Get(id)
		if err != nil {
			if h.cluster != nil && !h.cluster.IsOwner(id) {
				h.cluster.WriteNotOwner(w, id)
				return
			}
			writeErr(w, err)
			return
		}
		fn(w, r, t)
	}
}

// handleEdits applies one edit batch in order. The batch is not atomic —
// edits before the failing one stay accepted (and journaled), exactly like a
// sequence of mutator calls on the embedded Solver; the response reports how
// many were accepted so the client can resume. In cluster mode the accepted
// records are pushed to the tenant's replication follower before the batch
// is acknowledged, so an acknowledged edit survives the owner's death.
func (h *handler) handleEdits(w http.ResponseWriter, r *http.Request, t *Tenant) {
	var req wire.EditRequest
	if !readJSON(w, r, &req) {
		return
	}
	resp, err := tenant.ApplyEdits(t, req.Edits)
	if h.cluster != nil && resp.Accepted > 0 {
		h.cluster.NotifyWrite(t.ID)
	}
	if err != nil {
		writeEditErr(w, err, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTicket reports an async resolve's state without blocking: done-ness
// is a non-blocking read of the ticket's completion channel.
func handleTicket(w http.ResponseWriter, r *http.Request, t *Tenant) {
	tk, ok := t.Ticket(r.PathValue("ticket"))
	if !ok {
		writeErr(w, fmt.Errorf("%w: ticket %q", ErrTenantNotFound, r.PathValue("ticket")))
		return
	}
	st := wire.TicketStatus{}
	select {
	case <-tk.Done():
		st.Done = true
		res, err := tk.Wait(r.Context()) // completed: returns immediately
		if err != nil {
			st.Error = tenant.ToWireError(err)
		} else {
			st.Version = tk.Version()
			st.Result = tenant.ResultOf(res)
		}
	default:
	}
	writeJSON(w, http.StatusOK, st)
}

// handleProgress streams the tenant's anytime snapshots as Server-Sent
// Events until the client disconnects or the tenant shuts down. Events are
// metrics-only (wire.Progress); assignments travel through the view
// endpoint.
func handleProgress(w http.ResponseWriter, r *http.Request, t *Tenant) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, errors.New("serve: streaming unsupported by this connection"))
		return
	}
	ch, cancel := t.Subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case p, open := <-ch:
			if !open {
				return
			}
			raw, err := json.Marshal(p)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: progress\ndata: %s\n\n", raw); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// httpStatus maps wire error codes to HTTP statuses.
func httpStatus(code string) int {
	switch code {
	case wire.CodeInvalidEdit, wire.CodeInvalidInstance, wire.CodeUnknownMethod:
		return http.StatusBadRequest
	case wire.CodeConflictSaturated, wire.CodeInfeasible, wire.CodeTenantExists:
		return http.StatusConflict
	case wire.CodeNotFound:
		return http.StatusNotFound
	case wire.CodeNotOwner:
		return http.StatusMisdirectedRequest
	default:
		return http.StatusInternalServerError
	}
}

func writeErr(w http.ResponseWriter, err error) {
	we := tenant.ToWireError(err)
	writeJSON(w, httpStatus(we.Code), we)
}

// writeEditErr is writeErr plus the accepted-edit count and post-batch
// sequence, so a partially applied batch is reported precisely (edits are
// not transactional).
func writeEditErr(w http.ResponseWriter, err error, resp *wire.EditResponse) {
	we := tenant.ToWireError(err)
	writeJSON(w, httpStatus(we.Code), struct {
		*wire.Error
		Accepted int    `json:"accepted"`
		Seq      uint64 `json:"seq,omitempty"`
	}{we, resp.Accepted, resp.Seq})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, fmt.Errorf("%w: decoding request body: %v", wgrap.ErrInvalidInstance, err))
		return false
	}
	return true
}
