package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	wgrap "repro"
	"repro/internal/wire"
)

func testWireInstance(p, r, t int, seed int64) *wire.Instance {
	rng := rand.New(rand.NewSource(seed))
	vec := func() []float64 {
		v := make(wgrap.Vector, t)
		for i := range v {
			v[i] = rng.Float64()
		}
		return v.Normalized()
	}
	in := &wire.Instance{GroupSize: 3}
	for i := 0; i < p; i++ {
		in.Papers = append(in.Papers, wire.Paper{ID: fmt.Sprintf("p%d", i), Topics: vec()})
	}
	for i := 0; i < r; i++ {
		in.Reviewers = append(in.Reviewers, wire.Reviewer{ID: fmt.Sprintf("r%d", i), Topics: vec()})
	}
	return in
}

type testServer struct {
	t   *testing.T
	reg *Registry
	srv *httptest.Server
}

func newTestServer(t *testing.T, dataDir string) *testServer {
	t.Helper()
	reg, err := NewRegistry(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(reg))
	t.Cleanup(func() { srv.Close(); reg.Close() })
	return &testServer{t: t, reg: reg, srv: srv}
}

// do issues one JSON request and decodes the response into out (skipped when
// nil), asserting the expected status.
func (ts *testServer) do(method, path string, body, out any, wantStatus int) {
	ts.t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			ts.t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, ts.srv.URL+path, &buf)
	if err != nil {
		ts.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		ts.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var raw bytes.Buffer
		raw.ReadFrom(resp.Body)
		ts.t.Fatalf("%s %s: status %d, want %d (body %s)", method, path, resp.StatusCode, wantStatus, raw.String())
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			ts.t.Fatal(err)
		}
	}
}

func (ts *testServer) createTenant(id string, in *wire.Instance, cfg wire.TenantConfig) {
	ts.t.Helper()
	var st wire.Status
	ts.do("POST", "/v1/tenants", wire.CreateRequest{ID: id, Instance: in, Config: cfg}, &st, http.StatusCreated)
	if st.ID != id || st.Papers != len(in.Papers) {
		ts.t.Fatalf("create status mismatch: %+v", st)
	}
}

func TestServerLifecycle(t *testing.T) {
	ts := newTestServer(t, "")
	in := testWireInstance(16, 12, 6, 1)
	cfg := wire.TenantConfig{Omega: 3, Seed: 9}
	ts.createTenant("icde", in, cfg)

	// Duplicate id is refused.
	ts.do("POST", "/v1/tenants", wire.CreateRequest{ID: "icde", Instance: in}, nil, http.StatusConflict)
	// Bad id is refused.
	ts.do("POST", "/v1/tenants", wire.CreateRequest{ID: "no/slash", Instance: in}, nil, http.StatusBadRequest)

	var list wire.TenantList
	ts.do("GET", "/v1/tenants", nil, &list, http.StatusOK)
	if len(list.Tenants) != 1 || list.Tenants[0] != "icde" {
		t.Fatalf("tenant list mismatch: %+v", list)
	}

	// Cold solve over HTTP matches the embedded solver on the same instance.
	var res wire.Result
	ts.do("POST", "/v1/tenants/icde/solve", nil, &res, http.StatusOK)
	coreIn, err := in.ToInstance()
	if err != nil {
		t.Fatal(err)
	}
	workload := coreIn.MinWorkload() // a zero wire workload resolves to the minimum
	ref, err := wgrap.NewSolver(coreIn, wgrap.WithOmega(3), wgrap.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Score-refRes.Score) > 1e-9 {
		t.Fatalf("HTTP solve score %v != embedded score %v", res.Score, refRes.Score)
	}
	if len(res.Groups) != 16 {
		t.Fatalf("result groups missing: %d", len(res.Groups))
	}

	// Edits + warm resolve, against the same embedded reference.
	edits := wire.EditRequest{Edits: []wire.Edit{
		{Op: wire.OpAddConflict, R: 1, P: 2},
		{Op: wire.OpWithdraw, P: 5},
		{Op: wire.OpSetWorkload, Workload: workload + 1},
	}}
	var eresp wire.EditResponse
	ts.do("POST", "/v1/tenants/icde/edits", edits, &eresp, http.StatusOK)
	if eresp.Accepted != 3 {
		t.Fatalf("accepted %d edits, want 3", eresp.Accepted)
	}
	ts.do("POST", "/v1/tenants/icde/resolve", nil, &res, http.StatusOK)
	if err := ref.AddConflict(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := ref.WithdrawPaper(5); err != nil {
		t.Fatal(err)
	}
	if err := ref.SetWorkload(workload + 1); err != nil {
		t.Fatal(err)
	}
	if refRes, err = ref.Resolve(context.Background()); err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Score-refRes.Score) > 1e-9 {
		t.Fatalf("HTTP warm resolve score %v != embedded %v", res.Score, refRes.Score)
	}

	// View reflects the published state, lock-free.
	var view wire.View
	ts.do("GET", "/v1/tenants/icde/view", nil, &view, http.StatusOK)
	if view.Version != 2 || !view.Warm || view.Result == nil {
		t.Fatalf("view mismatch: %+v", view)
	}
	var st wire.Status
	ts.do("GET", "/v1/tenants/icde", nil, &st, http.StatusOK)
	if st.Seq != 3 || st.Active != 15 || st.Version != 2 || st.Durable {
		t.Fatalf("status mismatch: %+v", st)
	}

	// Invalid edit: the batch reports the accepted prefix.
	bad := wire.EditRequest{Edits: []wire.Edit{
		{Op: wire.OpWithdraw, P: 1},
		{Op: wire.OpAddConflict, R: -1, P: 0},
	}}
	ts.do("POST", "/v1/tenants/icde/edits", bad, nil, http.StatusBadRequest)

	// Delete, then 404.
	ts.do("DELETE", "/v1/tenants/icde", nil, nil, http.StatusOK)
	ts.do("GET", "/v1/tenants/icde", nil, nil, http.StatusNotFound)
}

func TestServerAsyncTicket(t *testing.T) {
	ts := newTestServer(t, "")
	ts.createTenant("kdd", testWireInstance(14, 10, 5, 2), wire.TenantConfig{Omega: 3})

	ts.do("POST", "/v1/tenants/kdd/edits",
		wire.EditRequest{Edits: []wire.Edit{{Op: wire.OpWithdraw, P: 3}}}, nil, http.StatusOK)
	var tk wire.Ticket
	ts.do("POST", "/v1/tenants/kdd/resolve-async", nil, &tk, http.StatusAccepted)
	if tk.Ticket == "" {
		t.Fatal("empty ticket token")
	}
	deadline := time.Now().Add(10 * time.Second)
	var st wire.TicketStatus
	for {
		ts.do("GET", "/v1/tenants/kdd/tickets/"+tk.Ticket, nil, &st, http.StatusOK)
		if st.Done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("async resolve never completed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Error != nil || st.Result == nil || st.Version == 0 {
		t.Fatalf("ticket status mismatch: %+v", st)
	}
	// The published view is at least the ticket's version.
	var view wire.View
	ts.do("GET", "/v1/tenants/kdd/view", nil, &view, http.StatusOK)
	if view.Version < st.Version {
		t.Fatalf("view version %d behind ticket version %d", view.Version, st.Version)
	}
	ts.do("GET", "/v1/tenants/kdd/tickets/tk-unknown", nil, nil, http.StatusNotFound)
}

// TestServerProgressSSE subscribes to the progress stream and checks that a
// solve emits at least the construction snapshot as a well-formed SSE event.
func TestServerProgressSSE(t *testing.T) {
	ts := newTestServer(t, "")
	ts.createTenant("vldb", testWireInstance(14, 10, 5, 3), wire.TenantConfig{Omega: 3})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.srv.URL+"/v1/tenants/vldb/progress", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	events := make(chan wire.Progress, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if data, ok := strings.CutPrefix(line, "data: "); ok {
				var p wire.Progress
				if json.Unmarshal([]byte(data), &p) == nil {
					events <- p
				}
			}
		}
	}()

	ts.do("POST", "/v1/tenants/vldb/solve", nil, nil, http.StatusOK)
	select {
	case p := <-events:
		if p.Phase != "construct" {
			t.Fatalf("first progress phase = %q, want construct", p.Phase)
		}
		if p.Score <= 0 {
			t.Fatalf("construct snapshot score = %v", p.Score)
		}
	case <-ctx.Done():
		t.Fatal("no SSE progress event arrived for a completed solve")
	}
}

// TestServerDurableRestart is the in-process restart property behind the CI
// crash test: a registry with a data directory, edits, close, fresh registry
// over the same directory — the tenant comes back at the same Seq and its
// resolve matches the pre-restart result at 1e-9.
func TestServerDurableRestart(t *testing.T) {
	dir := t.TempDir()
	in := testWireInstance(16, 12, 6, 4)
	cfg := wire.TenantConfig{Omega: 3, Seed: 7, FsyncIntervalNS: -1}

	ts := newTestServer(t, dir)
	ts.createTenant("www", in, cfg)
	ts.do("POST", "/v1/tenants/www/edits", wire.EditRequest{Edits: []wire.Edit{
		{Op: wire.OpAddConflict, R: 2, P: 1},
		{Op: wire.OpWithdraw, P: 7},
	}}, nil, http.StatusOK)
	var before wire.Result
	ts.do("POST", "/v1/tenants/www/solve", nil, &before, http.StatusOK)
	var st wire.Status
	ts.do("GET", "/v1/tenants/www", nil, &st, http.StatusOK)
	if !st.Durable || st.Seq != 2 {
		t.Fatalf("pre-restart status: %+v", st)
	}
	ts.srv.Close()
	if err := ts.reg.Close(); err != nil {
		t.Fatal(err)
	}

	ts2 := newTestServer(t, dir)
	var st2 wire.Status
	ts2.do("GET", "/v1/tenants/www", nil, &st2, http.StatusOK)
	if st2.Seq != st.Seq || !st2.Durable {
		t.Fatalf("restored status %+v, want seq %d", st2, st.Seq)
	}
	var after wire.Result
	ts2.do("POST", "/v1/tenants/www/resolve", nil, &after, http.StatusOK)
	if math.Abs(after.Score-before.Score) > 1e-9 {
		t.Fatalf("restored resolve score %v != pre-restart %v", after.Score, before.Score)
	}
	// Re-creating a tenant whose durable state survives is refused.
	ts2.do("POST", "/v1/tenants", wire.CreateRequest{ID: "www", Instance: in}, nil, http.StatusConflict)
}

// TestServerConcurrentClients hammers one tenant from many goroutines —
// edits, async resolves, ticket polls, views, statuses — and then checks
// convergence: a final resolve answers with every accepted edit applied.
// Run under -race in CI.
func TestServerConcurrentClients(t *testing.T) {
	ts := newTestServer(t, "")
	ts.createTenant("sigmod", testWireInstance(20, 16, 6, 5), wire.TenantConfig{Omega: 3})
	ts.do("POST", "/v1/tenants/sigmod/solve", nil, nil, http.StatusOK)

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				switch i % 3 {
				case 0:
					ts.do("POST", "/v1/tenants/sigmod/edits", wire.EditRequest{Edits: []wire.Edit{
						{Op: wire.OpAddConflict, R: (w*7 + i) % 16, P: (w*3 + i) % 20},
					}}, nil, http.StatusOK)
				case 1:
					var tk wire.Ticket
					ts.do("POST", "/v1/tenants/sigmod/resolve-async", nil, &tk, http.StatusAccepted)
					ts.do("GET", "/v1/tenants/sigmod/tickets/"+tk.Ticket, nil, nil, http.StatusOK)
				case 2:
					var view wire.View
					ts.do("GET", "/v1/tenants/sigmod/view", nil, &view, http.StatusOK)
					var st wire.Status
					ts.do("GET", "/v1/tenants/sigmod", nil, &st, http.StatusOK)
				}
			}
		}(w)
	}
	wg.Wait()

	var st wire.Status
	ts.do("GET", "/v1/tenants/sigmod", nil, &st, http.StatusOK)
	if st.Seq != workers*2 { // 2 edit rounds per worker
		t.Fatalf("Seq = %d, want %d accepted edits", st.Seq, workers*2)
	}
	var res wire.Result
	ts.do("POST", "/v1/tenants/sigmod/resolve", nil, &res, http.StatusOK)
	if res.Score <= 0 {
		t.Fatalf("post-hammer resolve score = %v", res.Score)
	}
}

// TestCleanShutdownNoGoroutineLeak is the leak gate behind the CI server
// job: a full workload — durable tenant, solves, SSE subscriber, async
// tickets — then registry close, after which the goroutine count must return
// to its baseline (the solver's worker pools and the journal flusher all
// tie their lifetime to the session).
func TestCleanShutdownNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	reg, err := NewRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(reg))
	ts := &testServer{t: t, reg: reg, srv: srv}
	ts.createTenant("leak", testWireInstance(14, 10, 5, 6), wire.TenantConfig{Omega: 3, FsyncIntervalNS: int64(time.Millisecond)})

	// SSE subscriber held open across a solve.
	sseCtx, sseCancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(sseCtx, "GET", srv.URL+"/v1/tenants/leak/progress", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	ts.do("POST", "/v1/tenants/leak/solve", nil, nil, http.StatusOK)
	ts.do("POST", "/v1/tenants/leak/edits",
		wire.EditRequest{Edits: []wire.Edit{{Op: wire.OpWithdraw, P: 2}}}, nil, http.StatusOK)
	var tk wire.Ticket
	ts.do("POST", "/v1/tenants/leak/resolve-async", nil, &tk, http.StatusAccepted)
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st wire.TicketStatus
		ts.do("GET", "/v1/tenants/leak/tickets/"+tk.Ticket, nil, &st, http.StatusOK)
		if st.Done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("async resolve never completed")
		}
		time.Sleep(2 * time.Millisecond)
	}

	sseCancel()
	resp.Body.Close()
	srv.Close()
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	http.DefaultClient.CloseIdleConnections()

	// Goroutine teardown is asynchronous (http conn goroutines, the flusher);
	// poll until the count returns to baseline.
	deadline = time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after clean shutdown: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerDeleteDuringAsyncSolve races DELETE against an in-flight async
// re-solve: the delete must complete cleanly, later polls of the orphaned
// ticket must answer the plain not-found sentinel (no panic, no hang), and
// the async worker goroutine must wind down instead of leaking. Both tenant
// flavors run: the in-memory solver stays usable after Close (the solve in
// flight completes into the void), the durable one refuses further solves —
// either way the HTTP surface must look identical.
func TestServerDeleteDuringAsyncSolve(t *testing.T) {
	for _, durableTenant := range []bool{false, true} {
		name := "memory"
		if durableTenant {
			name = "durable"
		}
		t.Run(name, func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			dir := ""
			if durableTenant {
				dir = t.TempDir()
			}
			reg, err := NewRegistry(dir)
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(Handler(reg))
			ts := &testServer{t: t, reg: reg, srv: srv}
			in := testWireInstance(40, 30, 8, 7)
			// A real refinement budget keeps the async solve in flight when the
			// delete lands.
			cfg := wire.TenantConfig{Omega: 3, Seed: 4, RefinementBudget: int64(800 * time.Millisecond)}
			ts.createTenant("race", in, cfg)

			var tk wire.Ticket
			ts.do("POST", "/v1/tenants/race/resolve-async", nil, &tk, http.StatusAccepted)
			time.Sleep(30 * time.Millisecond) // let the solve start

			ts.do("DELETE", "/v1/tenants/race", nil, nil, http.StatusOK)

			// The orphaned ticket and the tenant itself answer the clean
			// not-found sentinel.
			ts.do("GET", "/v1/tenants/race/tickets/"+tk.Ticket, nil, nil, http.StatusNotFound)
			ts.do("GET", "/v1/tenants/race", nil, nil, http.StatusNotFound)

			if durableTenant {
				// Durable state survives a delete by design: re-creating the id
				// is refused until the directory is removed out of band.
				ts.do("POST", "/v1/tenants", wire.CreateRequest{ID: "race", Instance: in}, nil, http.StatusConflict)
			} else {
				// In-memory: the id is free again immediately.
				ts.createTenant("race", in, wire.TenantConfig{Omega: 3, Seed: 5})
				ts.do("DELETE", "/v1/tenants/race", nil, nil, http.StatusOK)
			}

			srv.Close()
			if err := reg.Close(); err != nil {
				t.Fatal(err)
			}
			http.DefaultClient.CloseIdleConnections()

			deadline := time.Now().Add(10 * time.Second)
			for {
				if n := runtime.NumGoroutine(); n <= baseline {
					return
				}
				if time.Now().After(deadline) {
					buf := make([]byte, 1<<20)
					n := runtime.Stack(buf, true)
					t.Fatalf("goroutines leaked after delete-during-async-solve: baseline %d, now %d\n%s",
						baseline, runtime.NumGoroutine(), buf[:n])
				}
				time.Sleep(10 * time.Millisecond)
			}
		})
	}
}
