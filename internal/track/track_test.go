package track_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/track"
	"repro/internal/wire"
)

// testInstance generates a small deterministic corpus instance.
func testInstance(t *testing.T) *wire.Instance {
	t.Helper()
	ds, err := corpus.NewGenerator(corpus.Config{Scale: 0.06, Seed: 3, AuthorsPerArea: 60}).Dataset(corpus.Databases, 2008)
	if err != nil {
		t.Fatal(err)
	}
	in, err := wire.FromInstance(ds.Instance(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// testTrack generates a small valid track over a corpus reference.
func testTrack(t *testing.T, scenario string, seed int64) *track.Track {
	t.Helper()
	in := testInstance(t)
	ops, err := track.Generate(scenario, in, track.GenConfig{Seed: seed, Edits: 40})
	if err != nil {
		t.Fatal(err)
	}
	return &track.Track{
		Format:   track.FormatVersion,
		Name:     "test-" + scenario,
		Scenario: scenario,
		Seed:     seed,
		Config:   wire.TenantConfig{Method: "sdga", Seed: 1},
		Corpus: &track.CorpusRef{
			Area: "DB", Year: 2008, Scale: 0.06, Seed: 3, Authors: 60, GroupSize: 3,
		},
		Ops: ops,
	}
}

func TestTrackRoundTrip(t *testing.T) {
	tr := testTrack(t, "coi-storm", 7)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := track.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Scenario != tr.Scenario || got.Seed != tr.Seed {
		t.Fatalf("metadata changed in round trip: %+v", got)
	}
	if len(got.Ops) != len(tr.Ops) {
		t.Fatalf("op count changed: wrote %d read %d", len(tr.Ops), len(got.Ops))
	}
	for i := range got.Ops {
		if got.Ops[i].Kind != tr.Ops[i].Kind || got.Ops[i].R != tr.Ops[i].R || got.Ops[i].P != tr.Ops[i].P {
			t.Fatalf("op %d changed in round trip: %+v vs %+v", i, tr.Ops[i], got.Ops[i])
		}
	}
	if got.Corpus == nil || got.Corpus.Area != "DB" {
		t.Fatalf("corpus ref lost: %+v", got.Corpus)
	}
}

// TestTrackReadTruncated cuts a serialized track at several points; every cut
// must be rejected — a torn artifact must never replay as a shorter workload.
func TestTrackReadTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := testTrack(t, "withdrawal-wave", 5).Write(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 1, len(full) / 4, len(full) / 2, len(full) - 2} {
		if _, err := track.Read(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncated track (%d of %d bytes) accepted", cut, len(full))
		}
	}
}

func TestTrackValidate(t *testing.T) {
	valid := func() *track.Track { return testTrack(t, "rebalance", 2) }
	cases := []struct {
		name   string
		mutate func(*track.Track)
		want   string
	}{
		{"future format", func(tr *track.Track) { tr.Format = track.FormatVersion + 1 }, "unsupported format"},
		{"zero format", func(tr *track.Track) { tr.Format = 0 }, "unsupported format"},
		{"missing name", func(tr *track.Track) { tr.Name = "" }, "missing name"},
		{"no instance source", func(tr *track.Track) { tr.Corpus = nil }, "instance source"},
		{"two instance sources", func(tr *track.Track) { tr.Instance = &wire.Instance{} }, "instance source"},
		{"bad corpus area", func(tr *track.Track) { tr.Corpus.Area = "XX" }, "unknown corpus area"},
		{"non-positive scale", func(tr *track.Track) { tr.Corpus.Scale = 0 }, "positive scale"},
		{"empty ops", func(tr *track.Track) { tr.Ops = nil }, "empty op stream"},
		{"unknown kind", func(tr *track.Track) { tr.Ops[0].Kind = "explode" }, "unknown kind"},
		{"negative conflict", func(tr *track.Track) {
			tr.Ops = append(tr.Ops, track.Op{Kind: track.OpAddConflict, R: -1})
		}, "negative conflict index"},
		{"bad workload", func(tr *track.Track) {
			tr.Ops = append(tr.Ops, track.Op{Kind: track.OpSetWorkload})
		}, "non-positive workload"},
		{"reviewerless add_reviewer", func(tr *track.Track) {
			tr.Ops = append(tr.Ops, track.Op{Kind: track.OpAddReviewer})
		}, "without a reviewer"},
		{"nameless phase", func(tr *track.Track) {
			tr.Ops = append(tr.Ops, track.Op{Kind: track.OpPhase})
		}, "phase marker"},
		{"negative sleep", func(tr *track.Track) {
			tr.Ops = append(tr.Ops, track.Op{Kind: track.OpSleep, SleepNS: -1})
		}, "negative sleep"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := valid()
			tc.mutate(tr)
			err := tr.Validate()
			if err == nil {
				t.Fatal("invalid track accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			// Write must refuse to serialize it too.
			if err := tr.Write(&bytes.Buffer{}); err == nil {
				t.Fatal("invalid track serialized")
			}
		})
	}
}

func TestMaterializeCorpusRefDeterministic(t *testing.T) {
	tr := testTrack(t, "coi-storm", 1)
	a, err := tr.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Papers) != len(b.Papers) || len(a.Reviewers) != len(b.Reviewers) {
		t.Fatalf("corpus ref rematerialized differently: %d/%d vs %d/%d papers/reviewers",
			len(a.Papers), len(a.Reviewers), len(b.Papers), len(b.Reviewers))
	}
	for i := range a.Papers {
		if a.Papers[i].ID != b.Papers[i].ID {
			t.Fatalf("paper %d differs: %s vs %s", i, a.Papers[i].ID, b.Papers[i].ID)
		}
	}
	// And it matches the instance the track was generated against.
	in := testInstance(t)
	if len(a.Papers) != len(in.Papers) || len(a.Reviewers) != len(in.Reviewers) {
		t.Fatalf("materialized %d/%d, generated against %d/%d",
			len(a.Papers), len(a.Reviewers), len(in.Papers), len(in.Reviewers))
	}
}

func TestIsEdit(t *testing.T) {
	for _, k := range []string{track.OpAddConflict, track.OpWithdraw, track.OpRestore, track.OpAddReviewer, track.OpSetWorkload} {
		if !track.IsEdit(k) {
			t.Errorf("IsEdit(%q) = false", k)
		}
	}
	for _, k := range []string{track.OpSolve, track.OpResolve, track.OpResolveAsync, track.OpView, track.OpSleep, track.OpPhase, "nope"} {
		if track.IsEdit(k) {
			t.Errorf("IsEdit(%q) = true", k)
		}
	}
}
