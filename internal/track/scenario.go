package track

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	wgrap "repro"
	"repro/client"
	"repro/internal/wire"
)

// GenConfig parameterizes scenario generation. The zero value selects the
// documented defaults, so Generate(name, in, GenConfig{Seed: 7}) is a
// complete call.
type GenConfig struct {
	// Seed drives every random choice; the same (scenario, instance, config)
	// triple always yields the identical op stream.
	Seed int64
	// Edits is the approximate number of edit ops to emit (default 320).
	Edits int
	// EditsPerResolve is the mean number of edits coalesced between resolve
	// points — the workload's write rate relative to its solve rate
	// (default 8).
	EditsPerResolve int
	// AsyncFrac is the fraction of resolve points issued as resolve_async
	// instead of blocking resolves (default 0.25).
	AsyncFrac float64
	// ViewsPerResolve is the number of view reads after each resolve point
	// (default 3).
	ViewsPerResolve int
	// Skew is the Zipf exponent of hot-paper/hot-reviewer targeting: edits
	// concentrate on a shuffled popularity ranking with weight
	// 1/(rank+1)^Skew, the way real CoI reports and withdrawals pile onto a
	// few contested submissions (default 1.1; 0 disables targeting).
	Skew float64
	// Sleep, when positive, paces the stream: a sleep op of this length is
	// emitted after each resolve point (burst pacing; the replayer can scale
	// or skip it).
	Sleep time.Duration
	// Config is the tenant config of the shadow session the generator drives
	// alongside the stream (default the deterministic {Method: sdga, Seed: 1});
	// use the config the track will replay under.
	Config wire.TenantConfig
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Edits <= 0 {
		c.Edits = 320
	}
	if c.EditsPerResolve <= 0 {
		c.EditsPerResolve = 8
	}
	if c.AsyncFrac == 0 {
		c.AsyncFrac = 0.25
	}
	if c.AsyncFrac < 0 {
		c.AsyncFrac = 0
	}
	if c.ViewsPerResolve <= 0 {
		c.ViewsPerResolve = 3
	}
	if c.Skew == 0 {
		c.Skew = 1.1
	}
	if c.Config.Method == "" {
		c.Config = wire.TenantConfig{Method: string(wgrap.MethodSDGA), Seed: 1}
	}
	return c
}

// ScenarioInfo describes one catalog entry.
type ScenarioInfo struct {
	Name        string
	Description string
}

// scenario couples a catalog entry with its generator body.
type scenario struct {
	info ScenarioInfo
	run  func(g *gen)
}

// catalog is the ordered scenario registry. Order matters only for listings.
var catalog = []scenario{
	{ScenarioInfo{"coi-storm",
		"conflict-of-interest reports trickle in, then burst onto a few hot papers near the deadline, then the over-conflicted papers withdraw"},
		(*gen).coiStorm},
	{ScenarioInfo{"withdrawal-wave",
		"waves of withdrawals hit hot papers with partial restores between waves"},
		(*gen).withdrawalWave},
	{ScenarioInfo{"reviewer-churn",
		"the pool churns: new reviewers sign up, immediately report conflicts, and the workload is rebalanced as capacity grows"},
		(*gen).reviewerChurn},
	{ScenarioInfo{"late-signups",
		"a quiet editing period, then a rush of reviewer sign-ups with workload rebalancing as the pool grows"},
		(*gen).lateSignups},
	{ScenarioInfo{"rebalance",
		"withdrawal blocks tighten the workload down, restores force it back up — the capacity-feasibility edge exercised both ways"},
		(*gen).rebalance},
	{ScenarioInfo{"deadline-rush",
		"the composite serving narrative: calm edits, a CoI storm, a withdrawal wave, late sign-ups, and a final rebalance"},
		(*gen).deadlineRush},
}

// Scenarios lists the generator catalog.
func Scenarios() []ScenarioInfo {
	out := make([]ScenarioInfo, len(catalog))
	for i, s := range catalog {
		out[i] = s.info
	}
	return out
}

// Generate derives the named scenario's op stream from the instance. The
// generator drives a live in-memory shadow session with the candidate stream
// as it goes: per-edit validity comes from simulating the session's edit
// mirror, and solve feasibility — a global property skewed conflict pile-ups
// can break without tripping any single-edit check — comes from actually
// resolving the shadow at every resolve point, emitting workload bumps until
// the flow is feasible again. The resulting stream is therefore accepted and
// solvable by construction; the replayer's rejected counter exists for
// robustness, not by design here. Every stream starts with a cold solve and
// ends with a blocking resolve, so the final view reflects every edit.
func Generate(name string, in *wire.Instance, cfg GenConfig) (ops []Op, err error) {
	var run func(g *gen)
	for _, s := range catalog {
		if s.info.Name == name {
			run = s.run
			break
		}
	}
	if run == nil {
		return nil, fmt.Errorf("track: unknown scenario %q (have %s)", name, scenarioNames())
	}
	d := dimsOf(in)
	if d.papers == 0 || d.reviewers == 0 {
		return nil, fmt.Errorf("track: scenario %s needs a non-empty instance", name)
	}
	cfg = cfg.withDefaults()

	c, err := client.Open("mem://")
	if err != nil {
		return nil, err
	}
	defer c.Close()
	ctx := context.Background()
	const shadowID = "track-gen-shadow"
	if _, err := c.CreateTenant(ctx, &wire.CreateRequest{ID: shadowID, Instance: in, Config: cfg.Config}); err != nil {
		return nil, fmt.Errorf("track: shadow session: %w", err)
	}
	defer c.DeleteTenant(ctx, shadowID)

	g := &gen{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		d:         d,
		ctx:       ctx,
		c:         c,
		id:        shadowID,
		withdrawn: make([]bool, d.papers),
		conflictN: make([]int, d.papers),
		conflicts: make(map[[2]int]bool),
		activeN:   d.papers,
	}
	for _, cf := range in.Conflicts {
		if !g.conflicts[[2]int{cf[0], cf[1]}] {
			g.conflicts[[2]int{cf[0], cf[1]}] = true
			g.conflictN[cf[1]]++
		}
	}
	g.paperRank = g.rng.Perm(d.papers)
	g.reviewerRank = g.rng.Perm(d.reviewers)

	// Scenario bodies run arbitrary loops; a shadow-session failure aborts
	// them via panic so no body has to thread an error through its control
	// flow.
	defer func() {
		if r := recover(); r != nil {
			a, ok := r.(genAbort)
			if !ok {
				panic(r)
			}
			ops, err = nil, a.err
		}
	}()

	g.solvePoint()
	run(g)
	g.resolve(false) // drain everything so the final view is the track's verdict
	g.emit(Op{Kind: OpView})
	return g.ops, nil
}

// genAbort carries a shadow-session error out of a scenario body.
type genAbort struct{ err error }

func (g *gen) fail(err error) { panic(genAbort{err}) }

func scenarioNames() string {
	var names []string
	for _, s := range catalog {
		names = append(names, s.info.Name)
	}
	sort.Strings(names)
	return fmt.Sprint(names)
}

// gen is the scenario generator state: the op stream under construction, a
// simulation of the session's edit-validation mirror (withdrawn flags,
// per-paper conflict counts, pool size, workload) used to pick valid edits
// cheaply, and the live shadow session that confirms each edit and every
// resolve point for real.
type gen struct {
	cfg GenConfig
	rng *rand.Rand
	d   dims
	ops []Op

	ctx context.Context
	c   client.Client
	id  string

	withdrawn []bool
	conflictN []int
	conflicts map[[2]int]bool
	activeN   int
	added     int // reviewers added so far (pool size is d.reviewers+added)

	// paperRank / reviewerRank are the popularity shuffles hot-edit
	// targeting samples through: drawn once per track, so "hot" papers stay
	// hot for the whole narrative.
	paperRank    []int
	reviewerRank []int

	sinceResolve int // edits emitted since the last resolve point
}

func (g *gen) emit(op Op) { g.ops = append(g.ops, op) }

func (g *gen) phase(name string) { g.emit(Op{Kind: OpPhase, Phase: name}) }

func (g *gen) pool() int { return g.d.reviewers + g.added }

// apply runs one edit on the shadow session. A sentinel rejection returns
// false (the candidate edit is dropped, never emitted); any other error
// aborts generation.
func (g *gen) apply(e wire.Edit) bool {
	if _, err := g.c.Edit(g.ctx, g.id, e); err != nil {
		if rejected(err) {
			return false
		}
		g.fail(fmt.Errorf("track: shadow %s edit: %w", e.Op, err))
	}
	return true
}

// ensureSolvable retries the shadow solve, raising δr through emitted
// set_workload edits until the flow is feasible again. Per-edit validation
// is local (pool size, per-paper conflict counts), but feasibility is global:
// skewed conflict pile-ups can violate Hall's condition without tripping any
// single-edit check. δr = activeN always suffices (every active paper keeps
// ≥ δp eligible reviewers), so the escalation terminates well before the cap.
func (g *gen) ensureSolvable(solve func() error) {
	for tries := 0; ; tries++ {
		err := solve()
		if err == nil {
			return
		}
		if !errors.Is(err, wgrap.ErrInfeasible) || tries >= 32 {
			g.fail(fmt.Errorf("track: shadow solve: %w", err))
		}
		if !g.setWorkload(g.d.workload + 1 + g.d.workload/10) {
			g.fail(fmt.Errorf("track: cannot repair infeasible state at δr=%d: %w", g.d.workload, err))
		}
	}
}

// solvePoint emits the stream's cold solve, repaired to feasibility first.
func (g *gen) solvePoint() {
	g.ensureSolvable(func() error { _, err := g.c.Solve(g.ctx, g.id); return err })
	g.emit(Op{Kind: OpSolve})
}

// zipf samples an index skewed toward the front of the rank permutation:
// idx = ⌊n·u^s⌋ for uniform u, which for s>1 piles mass onto the low ranks
// the way Zipf targeting should. Cheap, rejection-free and deterministic.
func (g *gen) zipf(rank []int) int {
	n := len(rank)
	if g.cfg.Skew <= 0 {
		return rank[g.rng.Intn(n)]
	}
	idx := int(math.Floor(float64(n) * math.Pow(g.rng.Float64(), 1+g.cfg.Skew)))
	if idx >= n {
		idx = n - 1
	}
	return rank[idx]
}

func (g *gen) hotPaper() int    { return g.zipf(g.paperRank) }
func (g *gen) hotReviewer() int { return g.zipf(g.reviewerRank) }

// addConflict emits a valid conflict edit (dedup'd, never saturating an
// active paper), reporting whether one was emitted.
func (g *gen) addConflict(r, p int) bool {
	if r < 0 || r >= g.pool() || p < 0 || p >= g.d.papers {
		return false
	}
	if g.conflicts[[2]int{r, p}] {
		return false
	}
	// Leave δp+1 eligible reviewers rather than the session's δp minimum:
	// the track stays acceptable even after unrelated withdraw/restore
	// interleavings.
	if !g.withdrawn[p] && g.pool()-g.conflictN[p]-1 <= g.d.groupSize {
		return false
	}
	if !g.apply(wire.Edit{Op: wire.OpAddConflict, R: r, P: p}) {
		return false
	}
	g.conflicts[[2]int{r, p}] = true
	g.conflictN[p]++
	g.emit(Op{Kind: OpAddConflict, R: r, P: p})
	g.sinceResolve++
	return true
}

func (g *gen) withdraw(p int) bool {
	if g.withdrawn[p] {
		return false
	}
	if !g.apply(wire.Edit{Op: wire.OpWithdraw, P: p}) {
		return false
	}
	g.withdrawn[p] = true
	g.activeN--
	g.emit(Op{Kind: OpWithdraw, P: p})
	g.sinceResolve++
	return true
}

func (g *gen) restore(p int) bool {
	if !g.withdrawn[p] {
		return false
	}
	if g.pool()-g.conflictN[p] < g.d.groupSize {
		return false // saturated while withdrawn
	}
	if g.pool()*g.d.workload < (g.activeN+1)*g.d.groupSize {
		// Not enough capacity at the current workload: rebalance up first,
		// like a chair would.
		g.setWorkload(g.minWorkload(g.activeN + 1))
	}
	if !g.apply(wire.Edit{Op: wire.OpRestore, P: p}) {
		return false
	}
	g.withdrawn[p] = false
	g.activeN++
	g.emit(Op{Kind: OpRestore, P: p})
	g.sinceResolve++
	return true
}

// minWorkload is the smallest feasible δr for active papers over the current
// pool.
func (g *gen) minWorkload(active int) int {
	w := (active*g.d.groupSize + g.pool() - 1) / g.pool()
	if w < 1 {
		w = 1
	}
	return w
}

func (g *gen) setWorkload(w int) bool {
	if w <= 0 || w == g.d.workload {
		return false
	}
	if g.pool()*w < g.activeN*g.d.groupSize {
		return false
	}
	if !g.apply(wire.Edit{Op: wire.OpSetWorkload, Workload: w}) {
		return false
	}
	g.d.workload = w
	g.emit(Op{Kind: OpSetWorkload, Workload: w})
	g.sinceResolve++
	return true
}

// addReviewer emits a pool entrant whose expertise peaks on a few topics —
// the shape corpus reviewers have — and returns the entrant's pool index
// (-1 if the session refused the sign-up).
func (g *gen) addReviewer() int {
	v := make([]float64, g.d.topics)
	for i := range v {
		v[i] = 0.02 + 0.05*g.rng.Float64()
	}
	for k := 0; k < 3; k++ {
		v[g.rng.Intn(g.d.topics)] += 0.4 + 0.6*g.rng.Float64()
	}
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	for i := range v {
		v[i] /= sum
	}
	rev := &wire.Reviewer{
		ID:     fmt.Sprintf("late-r%03d", g.added),
		Name:   fmt.Sprintf("Late Signup %d", g.added),
		Topics: v,
	}
	if !g.apply(wire.Edit{Op: wire.OpAddReviewer, Reviewer: rev}) {
		return -1
	}
	idx := g.pool()
	g.emit(Op{Kind: OpAddReviewer, Reviewer: rev})
	g.added++
	g.sinceResolve++
	return idx
}

// resolve emits a resolve point: the re-solve itself (async per AsyncFrac
// unless forced blocking), the configured view reads, and the pacing sleep.
// The shadow session resolves first — emitting repair set_workload edits if
// the accumulated conflicts broke feasibility — so the emitted resolve is
// guaranteed to succeed on replay.
func (g *gen) resolve(allowAsync bool) {
	g.ensureSolvable(func() error { _, err := g.c.Resolve(g.ctx, g.id); return err })
	kind := OpResolve
	if allowAsync && g.rng.Float64() < g.cfg.AsyncFrac {
		kind = OpResolveAsync
	}
	g.emit(Op{Kind: kind})
	for v := 0; v < g.cfg.ViewsPerResolve; v++ {
		g.emit(Op{Kind: OpView})
	}
	if g.cfg.Sleep > 0 {
		g.emit(Op{Kind: OpSleep, SleepNS: g.cfg.Sleep.Nanoseconds()})
	}
	g.sinceResolve = 0
}

// maybeResolve closes the current burst once it reaches the configured mean
// size (with ±50% jitter so resolve points don't fall on a metronome).
func (g *gen) maybeResolve() {
	target := g.cfg.EditsPerResolve/2 + g.rng.Intn(g.cfg.EditsPerResolve+1)
	if target < 1 {
		target = 1
	}
	if g.sinceResolve >= target {
		g.resolve(true)
	}
}

// --- the scenario bodies ---------------------------------------------------

// coiStorm: scattered early conflicts, then bursts piling onto hot papers,
// then the most contested papers withdraw.
func (g *gen) coiStorm() { g.coiStormBudget(g.cfg.Edits) }

func (g *gen) coiStormBudget(budget int) {
	calm := budget / 4
	storm := budget * 6 / 10
	g.phase("coi-calm")
	for e := 0; e < calm; e++ {
		g.addConflict(g.rng.Intn(g.pool()), g.rng.Intn(g.d.papers))
		g.maybeResolve()
	}
	g.resolve(true)
	g.phase("coi-storm")
	// The guard bounds wasted draws: once most hot papers saturate, stop
	// rather than spin hunting for the few that still accept conflicts.
	for e, guard := 0, storm*40; e < storm && guard > 0; guard-- {
		// A burst: one hot paper draws several conflict reports at once.
		p := g.hotPaper()
		burst := 1 + g.rng.Intn(2*g.cfg.EditsPerResolve)
		for b := 0; b < burst && e < storm; b++ {
			if g.addConflict(g.hotReviewer(), p) {
				e++
			} else {
				p = g.hotPaper() // saturating or duplicate: move on
			}
			g.maybeResolve()
		}
	}
	g.resolve(true)
	g.phase("coi-aftermath")
	// The most conflicted papers give up and withdraw.
	type cp struct{ p, n int }
	var worst []cp
	for p, n := range g.conflictN {
		if n > 0 && !g.withdrawn[p] {
			worst = append(worst, cp{p, n})
		}
	}
	sort.Slice(worst, func(i, j int) bool {
		if worst[i].n != worst[j].n {
			return worst[i].n > worst[j].n
		}
		return worst[i].p < worst[j].p
	})
	quit := budget - calm - storm
	if quit > len(worst) {
		quit = len(worst)
	}
	for i := 0; i < quit; i++ {
		g.withdraw(worst[i].p)
		g.maybeResolve()
	}
}

// withdrawalWave: waves of withdrawals with partial restores between them.
func (g *gen) withdrawalWave() { g.withdrawalWaveBudget(g.cfg.Edits) }

func (g *gen) withdrawalWaveBudget(budget int) {
	waves := 4
	perWave := budget / waves
	if perWave < 2 {
		perWave, waves = 2, budget/2
	}
	for w := 0; w < waves; w++ {
		g.phase(fmt.Sprintf("wave-%d", w+1))
		var gone []int
		pull := perWave * 2 / 3
		for e := 0; e < pull; e++ {
			p := g.hotPaper()
			for tries := 0; g.withdrawn[p] && tries < 8; tries++ {
				p = g.rng.Intn(g.d.papers)
			}
			if g.withdraw(p) {
				gone = append(gone, p)
			}
			g.maybeResolve()
		}
		g.resolve(true)
		// Some authors appeal and come back.
		for e := 0; e < perWave-pull && len(gone) > 0; e++ {
			i := g.rng.Intn(len(gone))
			g.restore(gone[i])
			gone = append(gone[:i], gone[i+1:]...)
			g.maybeResolve()
		}
		g.resolve(true)
	}
}

// reviewerChurn: sign-ups that immediately report their conflicts, light
// withdraw/restore noise, and periodic rebalancing as the pool grows.
func (g *gen) reviewerChurn() { g.reviewerChurnBudget(g.cfg.Edits) }

func (g *gen) reviewerChurnBudget(budget int) {
	g.phase("churn")
	var floating []int
	for e, guard := 0, budget*40; e < budget && guard > 0; guard-- {
		switch roll := g.rng.Float64(); {
		case roll < 0.30:
			if r := g.addReviewer(); r >= 0 {
				e++
				// A new PC member knows people: conflicts arrive with them.
				for c := 0; c < 1+g.rng.Intn(3) && e < budget; c++ {
					if g.addConflict(r, g.hotPaper()) {
						e++
					}
				}
			}
		case roll < 0.45:
			p := g.rng.Intn(g.d.papers)
			if g.withdraw(p) {
				floating = append(floating, p)
				e++
			}
		case roll < 0.60 && len(floating) > 0:
			i := g.rng.Intn(len(floating))
			if g.restore(floating[i]) {
				e++
			}
			floating = append(floating[:i], floating[i+1:]...)
		case roll < 0.70:
			// Rebalance toward the minimum the grown pool allows. The slot
			// counts even when the workload is already minimal, so the loop
			// terminates regardless of state.
			g.setWorkload(g.minWorkload(g.activeN))
			e++
		default:
			g.addConflict(g.hotReviewer(), g.hotPaper())
			e++
		}
		g.maybeResolve()
	}
}

// lateSignups: quiet edits, then a sign-up rush with rebalancing.
func (g *gen) lateSignups() { g.lateSignupsBudget(g.cfg.Edits) }

func (g *gen) lateSignupsBudget(budget int) {
	quiet := budget / 4
	g.phase("pre-deadline-quiet")
	for e := 0; e < quiet; e++ {
		g.addConflict(g.rng.Intn(g.pool()), g.rng.Intn(g.d.papers))
		g.maybeResolve()
	}
	g.resolve(true)
	g.phase("signup-rush")
	for e := quiet; e < budget; {
		burst := 2 + g.rng.Intn(4)
		for b := 0; b < burst && e < budget; b++ {
			g.addReviewer()
			e++
		}
		// The chair spreads the load over the larger pool.
		if g.setWorkload(g.minWorkload(g.activeN)) {
			e++
		}
		g.resolve(true)
	}
}

// rebalance: withdrawal blocks tighten δr down, restores push it back up.
func (g *gen) rebalance() { g.rebalanceBudget(g.cfg.Edits) }

func (g *gen) rebalanceBudget(budget int) {
	cycles := 3
	per := budget / cycles
	if per < 4 {
		per, cycles = 4, budget/4
	}
	for c := 0; c < cycles; c++ {
		g.phase(fmt.Sprintf("tighten-%d", c+1))
		var gone []int
		for e := 0; e < per/2; e++ {
			p := g.hotPaper()
			for tries := 0; g.withdrawn[p] && tries < 8; tries++ {
				p = g.rng.Intn(g.d.papers)
			}
			if g.withdraw(p) {
				gone = append(gone, p)
			}
			g.maybeResolve()
		}
		g.setWorkload(g.minWorkload(g.activeN))
		g.resolve(true)
		g.phase(fmt.Sprintf("relax-%d", c+1))
		for _, p := range gone {
			g.restore(p) // restore raises δr itself when capacity runs short
			g.maybeResolve()
		}
		g.resolve(true)
	}
}

// deadlineRush: the composite narrative used by the canonical CI track.
func (g *gen) deadlineRush() {
	b := g.cfg.Edits
	g.coiStormBudget(b * 35 / 100)
	g.resolve(false)
	g.withdrawalWaveBudget(b * 25 / 100)
	g.lateSignupsBudget(b * 20 / 100)
	g.rebalanceBudget(b * 20 / 100)
}
