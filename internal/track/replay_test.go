package track_test

import (
	"context"
	"math"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/client"
	"repro/internal/serve"
	"repro/internal/track"
	"repro/internal/wire"
)

func trackConfig() wire.TenantConfig {
	return wire.TenantConfig{Method: "sdga", Seed: 1}
}

// replayOn opens a backend, replays the track, and returns the report.
func replayOn(t *testing.T, backend string, tr *track.Track) *track.Report {
	t.Helper()
	c, err := client.Open(backend)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep, err := track.Replay(context.Background(), c, tr, track.ReplayOptions{Backend: backend})
	if err != nil {
		t.Fatalf("replay on %s: %v", backend, err)
	}
	return rep
}

// liveServer starts an in-process wgrap-serve and returns its base URL — the
// same serve.Handler wgrap-serve mounts, so http:// replays here exercise the
// full wire path.
func liveServer(t *testing.T) string {
	t.Helper()
	reg, err := serve.NewRegistry("")
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(serve.Handler(reg))
	t.Cleanup(srv.Close)
	return srv.URL
}

// assertParity is THE track parity check: two replays of the same track must
// agree on the accepted-edit sequence exactly and on the objective to 1e-9,
// whatever backend each ran against.
func assertParity(t *testing.T, a, b *track.Report) {
	t.Helper()
	if a.FinalSeq != b.FinalSeq {
		t.Errorf("final seq diverged: %s=%d vs %s=%d", a.Backend, a.FinalSeq, b.Backend, b.FinalSeq)
	}
	if a.EditsAccepted != b.EditsAccepted || a.EditsRejected != b.EditsRejected {
		t.Errorf("edit outcomes diverged: %s=%d/%d vs %s=%d/%d",
			a.Backend, a.EditsAccepted, a.EditsRejected, b.Backend, b.EditsAccepted, b.EditsRejected)
	}
	if d := math.Abs(a.FinalScore - b.FinalScore); d > 1e-9 {
		t.Errorf("objective diverged by %g: %s=%.12f vs %s=%.12f", d, a.Backend, a.FinalScore, b.Backend, b.FinalScore)
	}
	if a.FinalScore == 0 && b.FinalScore == 0 {
		t.Error("both replays ended with a zero objective — the final view carried no result")
	}
}

// TestReplayDeterministicAcrossRuns: the same track replayed twice against
// fresh mem:// sessions lands on the identical final state.
func TestReplayDeterministicAcrossRuns(t *testing.T) {
	tr := testTrack(t, "coi-storm", 11)
	assertParity(t, replayOn(t, "mem://", tr), replayOn(t, "mem://", tr))
}

// TestReplayParityMemHTTP: the same track against mem:// and a live http://
// server — the acceptance check of the subsystem.
func TestReplayParityMemHTTP(t *testing.T) {
	tr := testTrack(t, "deadline-rush", 11)
	mem := replayOn(t, "mem://", tr)
	http := replayOn(t, liveServer(t), tr)
	assertParity(t, mem, http)
	if mem.EditsRejected != 0 {
		t.Errorf("generated track had %d rejections", mem.EditsRejected)
	}
}

// TestReplayStats sanity-checks the report's derived numbers.
func TestReplayStats(t *testing.T) {
	tr := testTrack(t, "withdrawal-wave", 3)
	rep := replayOn(t, "mem://", tr)
	edit := rep.Kinds["edit"]
	if edit == nil || edit.Count == 0 {
		t.Fatal("no aggregated edit stats")
	}
	if edit.Accepted != rep.EditsAccepted || edit.Rejected != rep.EditsRejected {
		t.Fatalf("edit aggregate %d/%d disagrees with totals %d/%d",
			edit.Accepted, edit.Rejected, rep.EditsAccepted, rep.EditsRejected)
	}
	if edit.P50NS <= 0 || edit.P99NS < edit.P50NS || edit.MaxNS < edit.P99NS {
		t.Fatalf("implausible percentiles: p50=%d p99=%d max=%d", edit.P50NS, edit.P99NS, edit.MaxNS)
	}
	if len(edit.HistogramLog2US) == 0 {
		t.Fatal("missing latency histogram")
	}
	n := 0
	for _, b := range edit.HistogramLog2US {
		n += b
	}
	if n != edit.Count {
		t.Fatalf("histogram holds %d samples, want %d", n, edit.Count)
	}
	if len(rep.Phases) == 0 {
		t.Fatal("no phase stats despite phase markers")
	}
	if rep.Kinds[track.OpResolve] == nil {
		t.Fatal("no resolve stats")
	}
}

func TestTenantIDFor(t *testing.T) {
	for name, want := range map[string]string{
		"deadline-rush-db08": "track-deadline-rush-db08",
		"Weird Name!":        "track-weird-name",
		"":                   "track-track",
	} {
		if got := track.TenantIDFor(name); got != want {
			t.Errorf("TenantIDFor(%q) = %q, want %q", name, got, want)
		}
	}
}

// TestCommittedTracksParity replays every track committed under
// testdata/tracks against mem:// twice and against a live http:// server
// once, asserting full parity — the repo's canonical tracks must stay
// replayable by construction. Paper-scale, so skipped under -short.
func TestCommittedTracksParity(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale track replays")
	}
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "tracks", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 {
		t.Fatalf("want at least 2 committed tracks, found %v", paths)
	}
	url := liveServer(t)
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			tr, err := track.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			mem := replayOn(t, "mem://", tr)
			assertParity(t, mem, replayOn(t, "mem://", tr))
			assertParity(t, mem, replayOn(t, url, tr))
			if mem.EditsRejected != 0 {
				t.Errorf("committed track has %d rejected edits", mem.EditsRejected)
			}
		})
	}
}
