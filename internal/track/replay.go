package track

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"os"
	"sort"
	"strings"
	"time"

	wgrap "repro"
	"repro/client"
	"repro/internal/wire"
)

// ReplayOptions tunes a replay. The zero value replays full-speed (sleeps
// skipped) under an auto-derived tenant id.
type ReplayOptions struct {
	// TenantID hosts the replay session (default: "track-" + the track name
	// sanitized to a DNS label). The tenant is created by the replay and
	// deleted afterwards unless KeepTenant is set.
	TenantID string
	// SleepScale multiplies sleep ops; 0 skips them entirely (latency
	// replay), 1 replays the track's own pacing.
	SleepScale float64
	// PollInterval is the resolve_async ticket polling interval
	// (default 1ms).
	PollInterval time.Duration
	// KeepTenant leaves the tenant (and any durable state) behind.
	KeepTenant bool
	// Backend labels the report; purely informational.
	Backend string
	// Log, when set, receives one line per phase marker.
	Log io.Writer
}

// KindStats is the latency histogram of one op kind.
type KindStats struct {
	Count int `json:"count"`
	// Accepted/Rejected split edit outcomes; rejected edits are the ones the
	// session refused with a sentinel (ErrInvalidEdit, ErrConflictSaturated,
	// ErrInfeasible) — identical across backends, so parity checks can
	// compare them too.
	Accepted int   `json:"accepted,omitempty"`
	Rejected int   `json:"rejected,omitempty"`
	MeanNS   int64 `json:"mean_ns"`
	P50NS    int64 `json:"p50_ns"`
	P95NS    int64 `json:"p95_ns"`
	P99NS    int64 `json:"p99_ns"`
	MaxNS    int64 `json:"max_ns"`
	// HistogramLog2US[i] counts ops whose latency fell in [2^(i-1), 2^i) µs;
	// bucket 0 is <1µs. A log-scale shape survives averaging across runs in
	// a way raw percentiles don't.
	HistogramLog2US []int `json:"histogram_log2_us,omitempty"`

	samples []time.Duration
}

func (k *KindStats) record(d time.Duration) {
	k.Count++
	k.samples = append(k.samples, d)
}

func (k *KindStats) finalize() {
	if len(k.samples) == 0 {
		return
	}
	sorted := make([]time.Duration, len(k.samples))
	copy(sorted, k.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	maxBucket := 0
	buckets := make([]int, 64)
	for _, d := range sorted {
		sum += d
		b := bits.Len64(uint64(d.Microseconds()))
		buckets[b]++
		if b > maxBucket {
			maxBucket = b
		}
	}
	k.MeanNS = int64(sum) / int64(len(sorted))
	k.P50NS = quantile(sorted, 0.50).Nanoseconds()
	k.P95NS = quantile(sorted, 0.95).Nanoseconds()
	k.P99NS = quantile(sorted, 0.99).Nanoseconds()
	k.MaxNS = sorted[len(sorted)-1].Nanoseconds()
	k.HistogramLog2US = buckets[:maxBucket+1]
}

// quantile returns the q-quantile of an ascending slice (nearest-rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// PhaseStat is one phase's slice of the replay. Kinds holds the phase-local
// latency histograms — the same shape as Report.Kinds, restricted to the ops
// between this phase marker and the next — so a latency budget can target
// the phase where it matters (edit p99 during a deadline rush, not averaged
// into the quiet phases around it).
type PhaseStat struct {
	Name   string                `json:"name"`
	Ops    int                   `json:"ops"`
	WallNS int64                 `json:"wall_ns"`
	Kinds  map[string]*KindStats `json:"kinds,omitempty"`
}

// Report is the outcome of one replay: final-state fingerprints for parity
// checks (seq, version, objective) and per-op-kind latency histograms for
// benchmarking. The "edit" kind aggregates the five edit op kinds.
type Report struct {
	Track    string `json:"track"`
	Scenario string `json:"scenario,omitempty"`
	Backend  string `json:"backend,omitempty"`
	TenantID string `json:"tenant_id"`
	Ops      int    `json:"ops"`
	WallNS   int64  `json:"wall_ns"`

	EditsAccepted int     `json:"edits_accepted"`
	EditsRejected int     `json:"edits_rejected"`
	FinalSeq      uint64  `json:"final_seq"`
	FinalVersion  uint64  `json:"final_version"`
	FinalScore    float64 `json:"final_score"`

	Kinds  map[string]*KindStats `json:"kinds"`
	Phases []PhaseStat           `json:"phases,omitempty"`
}

// WriteJSON writes the report, indented, to path.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// rejected classifies an edit error: a sentinel rejection is part of the
// workload (counted, replay continues); anything else aborts the replay.
func rejected(err error) bool {
	return errors.Is(err, wgrap.ErrInvalidEdit) ||
		errors.Is(err, wgrap.ErrConflictSaturated) ||
		errors.Is(err, wgrap.ErrInfeasible)
}

// TenantIDFor derives the default replay tenant id from a track name.
func TenantIDFor(name string) string {
	id := strings.ToLower(name)
	mapper := func(r rune) rune {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' {
			return r
		}
		return '-'
	}
	id = strings.Map(mapper, id)
	id = strings.Trim(id, "-")
	if id == "" {
		id = "track"
	}
	if len(id) > 48 {
		id = id[:48]
	}
	return "track-" + id
}

// Replay drives the track through the client — the same track runs
// unchanged against mem://, mem:///dir and http:// backends — timing every
// op. It returns a report whose FinalSeq/FinalScore fingerprint the
// replayed session: two backends given the same track must agree on both
// (seq exactly, objective to 1e-9), which is the subsystem's cross-backend
// parity check.
func Replay(ctx context.Context, c client.Client, t *Track, opt ReplayOptions) (*Report, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	in, err := t.Materialize()
	if err != nil {
		return nil, err
	}
	id := opt.TenantID
	if id == "" {
		id = TenantIDFor(t.Name)
	}
	poll := opt.PollInterval
	if poll <= 0 {
		poll = time.Millisecond
	}

	rep := &Report{
		Track:    t.Name,
		Scenario: t.Scenario,
		Backend:  opt.Backend,
		TenantID: id,
		Ops:      len(t.Ops),
		Kinds:    make(map[string]*KindStats),
	}
	var phaseKinds map[string]*KindStats // kinds of the currently open phase
	statsFor := func(m map[string]*KindStats, name string) *KindStats {
		k := m[name]
		if k == nil {
			k = &KindStats{}
			m[name] = k
		}
		return k
	}
	kind := func(name string) *KindStats { return statsFor(rep.Kinds, name) }
	// record books one op's latency globally and into the open phase.
	record := func(name string, d time.Duration, accepted, isRejected bool) {
		targets := []*KindStats{kind(name)}
		if phaseKinds != nil {
			targets = append(targets, statsFor(phaseKinds, name))
		}
		for _, k := range targets {
			k.record(d)
			if accepted {
				k.Accepted++
			}
			if isRejected {
				k.Rejected++
			}
		}
	}
	// aggregateEdits folds the edit op kinds of one kind map into an "edit"
	// aggregate and finalizes everything — the shape gates and budgets read.
	aggregateEdits := func(m map[string]*KindStats) {
		agg := &KindStats{}
		for name, k := range m {
			if IsEdit(name) {
				agg.Count += k.Count
				agg.Accepted += k.Accepted
				agg.Rejected += k.Rejected
				agg.samples = append(agg.samples, k.samples...)
			}
			k.finalize()
		}
		if agg.Count > 0 {
			agg.finalize()
			m["edit"] = agg
		}
	}

	if _, err := c.CreateTenant(ctx, &wire.CreateRequest{ID: id, Instance: in, Config: t.Config}); err != nil {
		return nil, fmt.Errorf("track %s: create tenant %s: %w", t.Name, id, err)
	}
	if !opt.KeepTenant {
		defer c.DeleteTenant(context.WithoutCancel(ctx), id)
	}

	start := time.Now()
	phaseStart := start
	phaseOps := 0
	closePhase := func() {
		if n := len(rep.Phases); n > 0 {
			rep.Phases[n-1].Ops = phaseOps
			rep.Phases[n-1].WallNS = time.Since(phaseStart).Nanoseconds()
			aggregateEdits(phaseKinds)
			rep.Phases[n-1].Kinds = phaseKinds
		}
	}
	for i, op := range t.Ops {
		phaseOps++
		switch op.Kind {
		case OpPhase:
			closePhase()
			rep.Phases = append(rep.Phases, PhaseStat{Name: op.Phase})
			phaseKinds = make(map[string]*KindStats)
			phaseStart, phaseOps = time.Now(), 0
			if opt.Log != nil {
				fmt.Fprintf(opt.Log, "track %s: phase %q (op %d/%d, %v elapsed)\n",
					t.Name, op.Phase, i, len(t.Ops), time.Since(start).Round(time.Millisecond))
			}
		case OpSleep:
			if opt.SleepScale > 0 {
				d := time.Duration(float64(op.SleepNS) * opt.SleepScale)
				select {
				case <-time.After(d):
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
		case OpSolve:
			t0 := time.Now()
			if _, err := c.Solve(ctx, id); err != nil {
				return nil, fmt.Errorf("track %s: op %d solve: %w", t.Name, i, err)
			}
			record(OpSolve, time.Since(t0), false, false)
		case OpResolve:
			t0 := time.Now()
			if _, err := c.Resolve(ctx, id); err != nil {
				return nil, fmt.Errorf("track %s: op %d resolve: %w", t.Name, i, err)
			}
			record(OpResolve, time.Since(t0), false, false)
		case OpResolveAsync:
			t0 := time.Now()
			token, err := c.ResolveAsync(ctx, id)
			if err != nil {
				return nil, fmt.Errorf("track %s: op %d resolve_async: %w", t.Name, i, err)
			}
			for {
				st, err := c.Ticket(ctx, id, token)
				if err != nil {
					return nil, fmt.Errorf("track %s: op %d ticket: %w", t.Name, i, err)
				}
				if st.Done {
					if st.Error != nil {
						return nil, fmt.Errorf("track %s: op %d async solve: %s", t.Name, i, st.Error.Message)
					}
					break
				}
				select {
				case <-time.After(poll):
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			record(OpResolveAsync, time.Since(t0), false, false)
		case OpView:
			t0 := time.Now()
			if _, err := c.View(ctx, id); err != nil {
				return nil, fmt.Errorf("track %s: op %d view: %w", t.Name, i, err)
			}
			record(OpView, time.Since(t0), false, false)
		default: // an edit kind (Validate guarantees it)
			e := wire.Edit{Workload: op.Workload, Reviewer: op.Reviewer, R: op.R, P: op.P}
			switch op.Kind {
			case OpAddConflict:
				e.Op = wire.OpAddConflict
			case OpWithdraw:
				e.Op = wire.OpWithdraw
			case OpRestore:
				e.Op = wire.OpRestore
			case OpAddReviewer:
				e.Op = wire.OpAddReviewer
			case OpSetWorkload:
				e.Op = wire.OpSetWorkload
			}
			t0 := time.Now()
			_, err := c.Edit(ctx, id, e)
			d := time.Since(t0)
			switch {
			case err == nil:
				record(op.Kind, d, true, false)
				rep.EditsAccepted++
			case rejected(err):
				record(op.Kind, d, false, true)
				rep.EditsRejected++
			default:
				return nil, fmt.Errorf("track %s: op %d %s: %w", t.Name, i, op.Kind, err)
			}
		}
	}
	closePhase()
	rep.WallNS = time.Since(start).Nanoseconds()

	st, err := c.Status(ctx, id)
	if err != nil {
		return nil, fmt.Errorf("track %s: final status: %w", t.Name, err)
	}
	rep.FinalSeq = st.Seq
	v, err := c.View(ctx, id)
	if err != nil {
		return nil, fmt.Errorf("track %s: final view: %w", t.Name, err)
	}
	rep.FinalVersion = v.Version
	if v.Result != nil {
		rep.FinalScore = v.Result.Score
	}

	// Aggregate the edit kinds into one "edit" histogram: the bench-level
	// number a CI gate watches.
	aggregateEdits(rep.Kinds)
	return rep, nil
}
