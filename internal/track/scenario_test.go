package track_test

import (
	"context"
	"reflect"
	"testing"

	"repro/client"
	"repro/internal/track"
)

func TestGenerateUnknownScenario(t *testing.T) {
	if _, err := track.Generate("no-such-scenario", testInstance(t), track.GenConfig{Seed: 1}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestGenerateRejectsEmptyInstance(t *testing.T) {
	in := testInstance(t)
	in.Papers = nil
	if _, err := track.Generate("coi-storm", in, track.GenConfig{Seed: 1}); err == nil {
		t.Fatal("empty instance accepted")
	}
}

// TestGenerateDeterministic: the same (scenario, instance, seed) triple must
// yield the identical op stream — tracks are reproducibility artifacts.
func TestGenerateDeterministic(t *testing.T) {
	in := testInstance(t)
	a, err := track.Generate("deadline-rush", in, track.GenConfig{Seed: 9, Edits: 60})
	if err != nil {
		t.Fatal(err)
	}
	b, err := track.Generate("deadline-rush", in, track.GenConfig{Seed: 9, Edits: 60})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two generations with the same seed differ: %d vs %d ops", len(a), len(b))
	}
	c, err := track.Generate("deadline-rush", in, track.GenConfig{Seed: 10, Edits: 60})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced the identical stream")
	}
}

// TestScenarioCatalogAcceptedByConstruction replays every catalog scenario:
// the generator simulates the session's edit validation AND confirms every
// resolve point against a live shadow session, so zero rejections and a clean
// replay are the contract, not an aspiration.
func TestScenarioCatalogAcceptedByConstruction(t *testing.T) {
	in := testInstance(t)
	scenarios := track.Scenarios()
	if len(scenarios) < 5 {
		t.Fatalf("catalog shrank to %d scenarios", len(scenarios))
	}
	for _, s := range scenarios {
		t.Run(s.Name, func(t *testing.T) {
			ops, err := track.Generate(s.Name, in, track.GenConfig{Seed: 4, Edits: 50})
			if err != nil {
				t.Fatal(err)
			}
			edits := 0
			for _, op := range ops {
				if track.IsEdit(op.Kind) {
					edits++
				}
			}
			if edits == 0 {
				t.Fatal("scenario emitted no edits")
			}
			if ops[0].Kind != track.OpSolve {
				t.Fatalf("stream starts with %q, want a cold solve", ops[0].Kind)
			}
			tr := &track.Track{
				Format: track.FormatVersion, Name: "cat-" + s.Name, Scenario: s.Name,
				Config: trackConfig(), Instance: in, Ops: ops,
			}
			c, err := client.Open("mem://")
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			rep, err := track.Replay(context.Background(), c, tr, track.ReplayOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.EditsRejected != 0 {
				t.Fatalf("generated stream had %d rejected edits", rep.EditsRejected)
			}
			if rep.EditsAccepted != edits {
				t.Fatalf("accepted %d of %d edits", rep.EditsAccepted, edits)
			}
			if rep.FinalSeq != uint64(edits) {
				t.Fatalf("final seq %d, want %d (one bump per accepted edit)", rep.FinalSeq, edits)
			}
		})
	}
}
