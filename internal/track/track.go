// Package track is the workload-generation and replay subsystem: a
// versioned, seed-deterministic file format for *scenario tracks* — an
// instance source plus an ordered stream of timed session operations — a
// generator that derives realistic serving narratives (CoI storms,
// withdrawal waves, reviewer churn, late sign-ups, workload rebalancing)
// from a corpus, and a replayer that drives a track through the client
// package so the same workload runs unchanged against an embedded mem://
// registry, a durable mem:///dir one, or a live http:// wgrap-serve daemon.
//
// The shape follows elastic-package's corpus/track split: wgrap-datagen
// generates a corpus by size and a named track of operations over it;
// wgrap-bench -track replays the track and reports per-op-kind latency
// percentiles. Committed tracks under testdata/tracks/ give every perf PR
// the same production-shaped workloads to be judged on, and the replayer's
// final seq/objective make cross-backend parity checks one comparison.
package track

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/corpus"
	"repro/internal/wire"
)

// FormatVersion is the track file format this package reads and writes.
// Readers reject other versions outright: a track is a reproducibility
// artifact, and silently reinterpreting an old file would change what a
// benchmark measures.
const FormatVersion = 1

// Op kinds. The edit kinds mirror the Solver's incremental mutators; the
// rest drive the session lifecycle around them.
const (
	// OpSolve runs a cold solve (tracks start with one).
	OpSolve = "solve"
	// OpResolve runs a blocking warm re-solve of everything pending.
	OpResolve = "resolve"
	// OpResolveAsync enqueues a coalescing background re-solve and waits for
	// its ticket to complete (the wait keeps replay deterministic while still
	// exercising the async path).
	OpResolveAsync = "resolve_async"
	// OpView reads the latest published view without blocking.
	OpView = "view"
	// OpSleep pauses the replay (scaled by ReplayOptions.SleepScale).
	OpSleep = "sleep"
	// OpPhase marks a named phase boundary for per-phase reporting.
	OpPhase = "phase"

	// OpAddConflict declares reviewer R conflicted with paper P.
	OpAddConflict = "add_conflict"
	// OpWithdraw withdraws paper P.
	OpWithdraw = "withdraw"
	// OpRestore restores a withdrawn paper P.
	OpRestore = "restore"
	// OpAddReviewer adds Reviewer to the pool.
	OpAddReviewer = "add_reviewer"
	// OpSetWorkload sets the per-reviewer workload δr to Workload.
	OpSetWorkload = "set_workload"
)

// editKinds is the subset of kinds that are session edits (they consume the
// accepted-edit sequence and aggregate into the "edit" latency bucket).
var editKinds = map[string]bool{
	OpAddConflict: true,
	OpWithdraw:    true,
	OpRestore:     true,
	OpAddReviewer: true,
	OpSetWorkload: true,
}

// IsEdit reports whether kind is one of the session-edit op kinds.
func IsEdit(kind string) bool { return editKinds[kind] }

// Op is one operation of a track's stream. Only the fields of its Kind are
// meaningful.
type Op struct {
	Kind string `json:"kind"`
	// R and P are reviewer/paper indices (add_conflict uses both, withdraw
	// and restore use P). Indices of reviewers added earlier in the stream
	// are valid: the n-th add_reviewer lands at index R₀+n of the original
	// pool size R₀, on every backend.
	R int `json:"r,omitempty"`
	P int `json:"p,omitempty"`
	// Workload is the new δr of a set_workload op.
	Workload int `json:"workload,omitempty"`
	// Reviewer is the pool entrant of an add_reviewer op.
	Reviewer *wire.Reviewer `json:"reviewer,omitempty"`
	// SleepNS is the pause of a sleep op.
	SleepNS int64 `json:"sleep_ns,omitempty"`
	// Phase names the phase beginning at a phase op.
	Phase string `json:"phase,omitempty"`
}

// CorpusRef references a deterministic synthetic corpus instead of an inline
// instance: the replayer regenerates the identical instance from these
// parameters, so committed paper-scale tracks stay a few kilobytes.
type CorpusRef struct {
	// Area and Year select the Table 3 conference (corpus.Area, 2008/2009).
	Area string `json:"area"`
	Year int    `json:"year"`
	// Scale, Seed, Authors and Skew are corpus.Config knobs.
	Scale   float64 `json:"scale"`
	Seed    int64   `json:"seed"`
	Authors int     `json:"authors,omitempty"`
	Skew    float64 `json:"skew,omitempty"`
	// GroupSize is δp; Workload 0 selects the minimum balanced workload.
	GroupSize int `json:"group_size"`
	Workload  int `json:"workload,omitempty"`
}

// Track is one replayable workload: metadata, an instance source (exactly
// one of Corpus and Instance) and the ordered op stream.
type Track struct {
	// Format must equal FormatVersion.
	Format int `json:"format"`
	// Name identifies the track in reports and bench lines; keep it
	// bench-name-safe (no spaces).
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Scenario records the generator scenario that produced the stream and
	// Seed its seed — provenance, not replay inputs (the ops are concrete).
	Scenario string `json:"scenario,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	// Config is the tenant's solver configuration; its Seed/Method pin the
	// solve trajectory so replays are comparable across backends and runs.
	Config wire.TenantConfig `json:"config"`
	// Corpus or Instance is the instance source.
	Corpus   *CorpusRef     `json:"corpus,omitempty"`
	Instance *wire.Instance `json:"instance,omitempty"`
	Ops      []Op           `json:"ops"`
}

// Validate checks the structural invariants of the track: version, name, a
// single instance source, and per-op well-formedness. Index ranges are the
// replayed session's job (a track may legitimately carry an edit the session
// rejects — the replayer counts it); Validate only rejects ops that could
// never mean anything.
func (t *Track) Validate() error {
	if t.Format != FormatVersion {
		return fmt.Errorf("track: unsupported format version %d (this build reads version %d)", t.Format, FormatVersion)
	}
	if t.Name == "" {
		return fmt.Errorf("track: missing name")
	}
	if (t.Corpus == nil) == (t.Instance == nil) {
		return fmt.Errorf("track %s: want exactly one instance source (corpus or instance)", t.Name)
	}
	if t.Corpus != nil {
		c := t.Corpus
		if c.Scale <= 0 || c.GroupSize <= 0 {
			return fmt.Errorf("track %s: corpus ref needs positive scale and group_size", t.Name)
		}
		if _, err := corpusSpec(c.Area); err != nil {
			return fmt.Errorf("track %s: %w", t.Name, err)
		}
	}
	if len(t.Ops) == 0 {
		return fmt.Errorf("track %s: empty op stream", t.Name)
	}
	for i, op := range t.Ops {
		switch op.Kind {
		case OpSolve, OpResolve, OpResolveAsync, OpView:
		case OpSleep:
			if op.SleepNS < 0 {
				return fmt.Errorf("track %s: op %d: negative sleep", t.Name, i)
			}
		case OpPhase:
			if op.Phase == "" {
				return fmt.Errorf("track %s: op %d: phase marker without a name", t.Name, i)
			}
		case OpAddConflict:
			if op.R < 0 || op.P < 0 {
				return fmt.Errorf("track %s: op %d: negative conflict index", t.Name, i)
			}
		case OpWithdraw, OpRestore:
			if op.P < 0 {
				return fmt.Errorf("track %s: op %d: negative paper index", t.Name, i)
			}
		case OpSetWorkload:
			if op.Workload <= 0 {
				return fmt.Errorf("track %s: op %d: non-positive workload", t.Name, i)
			}
		case OpAddReviewer:
			if op.Reviewer == nil || len(op.Reviewer.Topics) == 0 {
				return fmt.Errorf("track %s: op %d: add_reviewer without a reviewer vector", t.Name, i)
			}
		default:
			return fmt.Errorf("track %s: op %d: unknown kind %q", t.Name, i, op.Kind)
		}
	}
	return nil
}

// corpusSpec validates the area name without constructing a generator.
func corpusSpec(area string) (corpus.Area, error) {
	for _, a := range corpus.Areas {
		if string(a) == area {
			return a, nil
		}
	}
	return "", fmt.Errorf("track: unknown corpus area %q", area)
}

// Materialize resolves the track's instance source to a concrete wire
// instance: inline instances are returned as-is, corpus references are
// regenerated deterministically from their parameters.
func (t *Track) Materialize() (*wire.Instance, error) {
	if t.Instance != nil {
		return t.Instance, nil
	}
	if t.Corpus == nil {
		return nil, fmt.Errorf("track %s: no instance source", t.Name)
	}
	c := t.Corpus
	area, err := corpusSpec(c.Area)
	if err != nil {
		return nil, err
	}
	gen := corpus.NewGenerator(corpus.Config{
		Scale:          c.Scale,
		Seed:           c.Seed,
		AuthorsPerArea: c.Authors,
		Skew:           c.Skew,
	})
	ds, err := gen.Dataset(area, c.Year)
	if err != nil {
		return nil, fmt.Errorf("track %s: %w", t.Name, err)
	}
	in := ds.Instance(c.GroupSize, c.Workload)
	w, err := wire.FromInstance(in)
	if err != nil {
		return nil, fmt.Errorf("track %s: %w", t.Name, err)
	}
	return w, nil
}

// dims describes the instance a track's op stream was generated against,
// mirroring exactly the state the session's edit validation sees. The
// scenario generator simulates it to emit (mostly) acceptable edits; the
// effective workload follows core.Instance's minimum-balanced default.
type dims struct {
	papers    int
	reviewers int
	topics    int
	groupSize int
	workload  int
}

func dimsOf(in *wire.Instance) dims {
	d := dims{
		papers:    len(in.Papers),
		reviewers: len(in.Reviewers),
		groupSize: in.GroupSize,
		workload:  in.Workload,
	}
	if len(in.Papers) > 0 {
		d.topics = len(in.Papers[0].Topics)
	}
	if d.workload == 0 && d.reviewers > 0 {
		// Mirror core.Instance: a zero workload means the minimum balanced
		// workload ⌈P·δp/R⌉.
		d.workload = (d.papers*d.groupSize + d.reviewers - 1) / d.reviewers
	}
	return d
}

// Write serialises the track as indented JSON.
func (t *Track) Write(w io.Writer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}

// Read parses and validates a track. A torn or truncated file fails the
// JSON decode (the object never closes), and a decodable track still goes
// through Validate — a half-written artifact is never replayed.
func Read(r io.Reader) (*Track, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var t Track
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("track: decoding (torn or truncated file?): %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// ReadFile reads a track from a file.
func ReadFile(path string) (*Track, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}
