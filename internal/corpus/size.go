package corpus

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSize parses a human-readable byte size: a plain integer, or one with
// a K/M/G suffix (decimal multipliers, elastic-package style: "100M" asks
// for roughly 100 megabytes). Fractions work with suffixes ("1.5G").
func ParseSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1e9, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1e6, s[:len(s)-1]
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1e3, s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("corpus: bad size %q (want e.g. 500K, 100M, 2G)", s)
	}
	return int64(v * float64(mult)), nil
}

// countingWriter measures serialized size without storing the bytes.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// measureDataset returns the serialized JSON size of the dataset.
func measureDataset(d *Dataset, abstracts bool) (int64, error) {
	var cw countingWriter
	if err := d.WriteJSON(&cw, abstracts); err != nil {
		return 0, err
	}
	return cw.n, nil
}

// maxProbeAuthors caps the author population the sizer grows on its own:
// beyond it, extra output size comes from papers (which Dataset tops up
// with fresh submissions at any scale) rather than from an ever-larger PC,
// keeping generation time bounded. An explicit Config.AuthorsPerArea above
// the cap is honored.
const maxProbeAuthors = 5000

// SizedDataset generates a dataset whose serialized JSON size approximates
// target bytes, elastic-package's `--size 100M` shape: it probes a small
// generation to learn bytes-per-entity, scales Config.Scale (and, within
// bounds, AuthorsPerArea) to the prediction, and refines once when the
// first attempt lands more than 15% off. Returns the dataset, the resolved
// config and the achieved serialized size.
//
// The target steers Scale, so base.Scale is ignored; Seed, Skew, Topics and
// an explicit AuthorsPerArea are honored.
func SizedDataset(base Config, area Area, year int, target int64, abstracts bool) (*Dataset, Config, int64, error) {
	if target <= 0 {
		return nil, base, 0, fmt.Errorf("corpus: non-positive size target %d", target)
	}
	const probeScale = 0.1
	cfg := base
	cfg.Scale = probeScale
	gen := NewGenerator(cfg)
	ds, err := gen.Dataset(area, year)
	if err != nil {
		return nil, cfg, 0, err
	}
	probeBytes, err := measureDataset(ds, abstracts)
	if err != nil {
		return nil, cfg, 0, err
	}

	spec, err := gen.spec(area)
	if err != nil {
		return nil, cfg, 0, err
	}
	scale := probeScale * float64(target) / float64(probeBytes)
	for attempt := 0; ; attempt++ {
		cfg.Scale = scale
		// Grow the author pool with the PC demand (the PC caps at the
		// population size), bounded so generation time stays sane.
		wantPC := int(float64(spec.pcSizeByYear[year])*scale + 0.5)
		authors := wantPC + wantPC/4
		if authors > maxProbeAuthors {
			authors = maxProbeAuthors
		}
		if base.AuthorsPerArea > authors {
			authors = base.AuthorsPerArea
		}
		cfg.AuthorsPerArea = authors

		ds, err = NewGenerator(cfg).Dataset(area, year)
		if err != nil {
			return nil, cfg, 0, err
		}
		achieved, err := measureDataset(ds, abstracts)
		if err != nil {
			return nil, cfg, 0, err
		}
		off := float64(achieved-target) / float64(target)
		if off < 0 {
			off = -off
		}
		// One correction pass absorbs the non-linearities (floors, the PC
		// cap, abstract share); after that, ship what we have — the target
		// is approximate by contract.
		if off <= 0.15 || attempt >= 1 {
			return ds, cfg, achieved, nil
		}
		scale *= float64(target) / float64(achieved)
	}
}

// FormatSize renders a byte count the way ParseSize reads it.
func FormatSize(n int64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.1fG", float64(n)/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.1fK", float64(n)/1e3)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
