package corpus

import "testing"

func TestParseSize(t *testing.T) {
	good := map[string]int64{
		"100":  100,
		"2K":   2_000,
		"2k":   2_000,
		"1.5M": 1_500_000,
		"100M": 100_000_000,
		"2G":   2_000_000_000,
		" 3K ": 3_000,
	}
	for in, want := range good {
		got, err := ParseSize(in)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, in := range []string{"", "abc", "-5", "0", "1T", "K"} {
		if got, err := ParseSize(in); err == nil {
			t.Errorf("ParseSize(%q) = %d, want error", in, got)
		}
	}
}

func TestFormatSizeRoundTrips(t *testing.T) {
	for in, want := range map[int64]string{
		512:           "512B",
		2_000:         "2.0K",
		1_500_000:     "1.5M",
		2_000_000_000: "2.0G",
	} {
		if got := FormatSize(in); got != want {
			t.Errorf("FormatSize(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestSizedDatasetHitsTarget(t *testing.T) {
	const target = 300_000
	base := Config{Seed: 5, AuthorsPerArea: 120}
	ds, cfg, achieved, err := SizedDataset(base, Databases, 2008, target, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Papers) == 0 || len(ds.Reviewers) == 0 {
		t.Fatalf("empty sized dataset: %d papers, %d reviewers", len(ds.Papers), len(ds.Reviewers))
	}
	// The contract is approximate; a refined pass should land well within 25%.
	off := float64(achieved-target) / float64(target)
	if off < 0 {
		off = -off
	}
	if off > 0.25 {
		t.Fatalf("achieved %d for target %d (%.0f%% off)", achieved, target, off*100)
	}
	// The reported config regenerates the identical dataset — this is what a
	// track CorpusRef relies on.
	again, err := NewGenerator(cfg).Dataset(Databases, 2008)
	if err != nil {
		t.Fatal(err)
	}
	size, err := measureDataset(again, false)
	if err != nil {
		t.Fatal(err)
	}
	if size != achieved {
		t.Fatalf("resolved config regenerated %d bytes, sizer reported %d", size, achieved)
	}
}

func TestSizedDatasetRejectsBadTarget(t *testing.T) {
	if _, _, _, err := SizedDataset(Config{}, Databases, 2008, 0, false); err == nil {
		t.Fatal("zero target accepted")
	}
}
