// Package corpus generates the synthetic DBLP-like data used to reproduce the
// paper's evaluation (Section 5, Table 3). The real experiments use the
// ArnetMiner/DBLP citation corpus — paper abstracts of SIGKDD/ICDM/SDM/CIKM,
// SIGMOD/VLDB/ICDE/PODS and STOC/FOCS/SODA for 2008–2009, plus the program
// committees of SIGKDD, SIGMOD and STOC — which is not available offline.
// This package builds a corpus with the same shape:
//
//   - three research areas, each owning a block of topics out of T=30;
//   - authors whose topic profiles are Dirichlet draws concentrated on their
//     home area, with long-tailed publication counts and h-indices;
//   - publications (2000–2009) with abstracts sampled from per-topic word
//     distributions, so the internal/topics pipeline can be exercised
//     end-to-end;
//   - per-area, per-year conference datasets whose paper counts and PC sizes
//     match Table 3 (scaled by Config.Scale).
//
// Every downstream algorithm consumes only topic vectors, so this synthetic
// substitute exercises exactly the same code paths as the original data.
package corpus

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/randx"
)

// Area identifies one of the three research areas of Table 3.
type Area string

// Research areas.
const (
	DataMining Area = "DM"
	Databases  Area = "DB"
	Theory     Area = "T"
)

// Areas lists the three areas in the paper's order.
var Areas = []Area{DataMining, Databases, Theory}

// areaSpec describes one area of Table 3.
type areaSpec struct {
	name          Area
	venues        []string
	papersByYear  map[int]int
	pcVenue       string
	pcSizeByYear  map[int]int
	topicLo       int // first topic index owned by the area (inclusive)
	topicHi       int // last topic index owned by the area (exclusive)
	keywordsStems []string
}

// Config controls the generator.
type Config struct {
	// Topics is the total number of topics T (default 30, as in the paper).
	Topics int
	// Scale multiplies the paper counts and PC sizes of Table 3 (default 1.0;
	// tests use small values such as 0.05).
	Scale float64
	// AuthorsPerArea is the size of each area's author population
	// (default 400).
	AuthorsPerArea int
	// WordsPerTopic is the number of dedicated vocabulary words per topic
	// (default 40).
	WordsPerTopic int
	// SharedWords is the number of area-independent vocabulary words
	// (default 120).
	SharedWords int
	// AbstractWords is the abstract length in tokens (default 90).
	AbstractWords int
	// Concentration is the Dirichlet concentration of an author's profile on
	// the topics of their home area (default 0.25; smaller = more peaked).
	Concentration float64
	// Skew, when positive, makes topic popularity Zipf-distributed within
	// each area: the Dirichlet alpha of an area's i-th topic is scaled by
	// 1/(i+1)^Skew, so early topics are "hot" and late ones long-tail. Real
	// conference corpora are skewed this way, and the skew is what makes
	// candidate-pruned solves collide on the same popular reviewers — the
	// sparse benchmarks set it to exercise exactly that. 0 (the default)
	// keeps the uniform per-area alphas.
	Skew float64
	// Seed makes generation reproducible (default 1).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Topics <= 0 {
		c.Topics = 30
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.AuthorsPerArea <= 0 {
		c.AuthorsPerArea = 400
	}
	if c.WordsPerTopic <= 0 {
		c.WordsPerTopic = 40
	}
	if c.SharedWords <= 0 {
		c.SharedWords = 120
	}
	if c.AbstractWords <= 0 {
		c.AbstractWords = 90
	}
	if c.Concentration <= 0 {
		c.Concentration = 0.25
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Author is a synthetic researcher.
type Author struct {
	ID      string
	Name    string
	Area    Area
	HIndex  int
	Profile core.Vector
	// Publications generated for the author, newest last.
	Publications []Publication
}

// Publication is a synthetic paper authored by one or more authors.
type Publication struct {
	ID       string
	Title    string
	Abstract string
	Venue    string
	Year     int
	// AuthorIdx are indices into Generator.Authors().
	AuthorIdx []int
	// Mixture is the ground-truth topic mixture the abstract was sampled
	// from; it doubles as the paper's topic vector in the "direct" pipeline.
	Mixture core.Vector
}

// Generator produces authors, publications and conference datasets.
type Generator struct {
	cfg     Config
	specs   []areaSpec
	authors []Author
	pubs    []Publication
	// pubsByVenueYear indexes publications for dataset construction.
	pubsByVenueYear map[string][]int
	// topicWords[t] lists the vocabulary dedicated to topic t.
	topicWords [][]string
	shared     []string
}

// NewGenerator builds the synthetic world deterministically from the seed.
func NewGenerator(cfg Config) *Generator {
	cfg = cfg.withDefaults()
	g := &Generator{cfg: cfg, pubsByVenueYear: make(map[string][]int)}
	g.buildSpecs()
	g.buildVocabulary()
	rng := rand.New(rand.NewSource(cfg.Seed))
	g.buildAuthors(rng)
	g.buildPublications(rng)
	return g
}

func (g *Generator) buildSpecs() {
	per := g.cfg.Topics / 3
	g.specs = []areaSpec{
		{
			name:   DataMining,
			venues: []string{"SIGKDD", "ICDM", "SDM", "CIKM"},
			papersByYear: map[int]int{
				2008: 545, 2009: 648,
			},
			pcVenue:       "SIGKDD",
			pcSizeByYear:  map[int]int{2008: 203, 2009: 145},
			topicLo:       0,
			topicHi:       per,
			keywordsStems: []string{"mining", "clustering", "classification", "pattern", "learning", "feature", "anomaly", "stream", "graph", "recommendation"},
		},
		{
			name:   Databases,
			venues: []string{"SIGMOD", "VLDB", "ICDE", "PODS"},
			papersByYear: map[int]int{
				2008: 617, 2009: 513,
			},
			pcVenue:       "SIGMOD",
			pcSizeByYear:  map[int]int{2008: 105, 2009: 90},
			topicLo:       per,
			topicHi:       2 * per,
			keywordsStems: []string{"query", "index", "transaction", "storage", "xml", "spatial", "privacy", "optimization", "distributed", "schema"},
		},
		{
			name:   Theory,
			venues: []string{"STOC", "FOCS", "SODA"},
			papersByYear: map[int]int{
				2008: 281, 2009: 226,
			},
			pcVenue:       "STOC",
			pcSizeByYear:  map[int]int{2008: 228, 2009: 222},
			topicLo:       2 * per,
			topicHi:       g.cfg.Topics,
			keywordsStems: []string{"approximation", "complexity", "randomized", "hardness", "combinatorial", "lower", "bound", "algorithmic", "game", "lattice"},
		},
	}
}

func (g *Generator) spec(area Area) (*areaSpec, error) {
	for i := range g.specs {
		if g.specs[i].name == area {
			return &g.specs[i], nil
		}
	}
	return nil, fmt.Errorf("corpus: unknown area %q", area)
}

// buildVocabulary creates per-topic and shared word lists; words embed their
// owning area's keyword stems so topic listings read naturally.
func (g *Generator) buildVocabulary() {
	g.topicWords = make([][]string, g.cfg.Topics)
	for t := 0; t < g.cfg.Topics; t++ {
		stem := "general"
		for _, s := range g.specs {
			if t >= s.topicLo && t < s.topicHi {
				stem = s.keywordsStems[(t-s.topicLo)%len(s.keywordsStems)]
			}
		}
		words := make([]string, g.cfg.WordsPerTopic)
		for w := range words {
			words[w] = fmt.Sprintf("%s%02dterm%02d", stem, t, w)
		}
		g.topicWords[t] = words
	}
	g.shared = make([]string, g.cfg.SharedWords)
	for i := range g.shared {
		g.shared[i] = fmt.Sprintf("common%03d", i)
	}
}

// buildAuthors draws each area's author population.
func (g *Generator) buildAuthors(rng *rand.Rand) {
	first := []string{"Alex", "Bing", "Chen", "Dana", "Elena", "Feng", "Grace", "Hugo", "Iris", "Jun", "Kai", "Lena", "Ming", "Nora", "Omar", "Ping", "Qing", "Rosa", "Sami", "Tara", "Uwe", "Vera", "Wei", "Xin", "Yan", "Zoe"}
	last := []string{"Almeida", "Baros", "Chen", "Dimitrov", "Eriksson", "Fujita", "Garcia", "Huang", "Ivanov", "Jansen", "Kumar", "Liu", "Moreau", "Nakamura", "Olsen", "Petrov", "Qureshi", "Rossi", "Singh", "Tanaka", "Ueda", "Vargas", "Wang", "Xu", "Yamada", "Zhang"}
	for _, s := range g.specs {
		for i := 0; i < g.cfg.AuthorsPerArea; i++ {
			idx := len(g.authors)
			alphas := make([]float64, g.cfg.Topics)
			for t := range alphas {
				if t >= s.topicLo && t < s.topicHi {
					alphas[t] = g.cfg.Concentration * zipfWeight(t-s.topicLo, g.cfg.Skew)
				} else {
					alphas[t] = g.cfg.Concentration / 20
				}
			}
			profile := core.Vector(randx.DirichletVec(rng, alphas))
			g.authors = append(g.authors, Author{
				ID:      fmt.Sprintf("a%04d", idx),
				Name:    fmt.Sprintf("%s %s (%s-%d)", first[rng.Intn(len(first))], last[rng.Intn(len(last))], s.name, i),
				Area:    s.name,
				HIndex:  randx.LongTailInt(rng, 1.3, 60),
				Profile: profile,
			})
		}
	}
}

// buildPublications generates every author's publication record (2000–2009)
// and the venue submissions that later become conference datasets.
func (g *Generator) buildPublications(rng *rand.Rand) {
	for ai := range g.authors {
		a := &g.authors[ai]
		spec, _ := g.spec(a.Area)
		// Long-tailed publication count correlated with the h-index.
		nPubs := 2 + a.HIndex/3 + rng.Intn(4)
		for k := 0; k < nPubs; k++ {
			year := 2000 + rng.Intn(10)
			venue := spec.venues[rng.Intn(len(spec.venues))]
			// Occasionally add a co-author from the same area.
			authorIdx := []int{ai}
			if rng.Float64() < 0.5 {
				co := rng.Intn(g.cfg.AuthorsPerArea) + areaOffset(a.Area, g.cfg.AuthorsPerArea)
				if co != ai {
					authorIdx = append(authorIdx, co)
				}
			}
			mixture := g.paperMixture(rng, authorIdx)
			pub := Publication{
				ID:        fmt.Sprintf("p%05d", len(g.pubs)),
				Title:     g.title(rng, mixture),
				Abstract:  g.abstract(rng, mixture),
				Venue:     venue,
				Year:      year,
				AuthorIdx: authorIdx,
				Mixture:   mixture,
			}
			pi := len(g.pubs)
			g.pubs = append(g.pubs, pub)
			for _, x := range authorIdx {
				g.authors[x].Publications = append(g.authors[x].Publications, pub)
			}
			key := venueYearKey(venue, year)
			g.pubsByVenueYear[key] = append(g.pubsByVenueYear[key], pi)
		}
	}
}

// zipfWeight is the Zipf popularity weight 1/(rank+1)^skew of a topic's rank
// within its area; skew <= 0 keeps every topic equally popular.
func zipfWeight(rank int, skew float64) float64 {
	if skew <= 0 {
		return 1
	}
	return math.Pow(float64(rank+1), -skew)
}

func areaOffset(a Area, perArea int) int {
	switch a {
	case DataMining:
		return 0
	case Databases:
		return perArea
	default:
		return 2 * perArea
	}
}

func venueYearKey(venue string, year int) string { return fmt.Sprintf("%s-%d", venue, year) }

// paperMixture blends the profiles of the authors and renormalises, adding a
// little noise so papers are not clones of their authors.
func (g *Generator) paperMixture(rng *rand.Rand, authorIdx []int) core.Vector {
	mix := make(core.Vector, g.cfg.Topics)
	for _, ai := range authorIdx {
		for t, v := range g.authors[ai].Profile {
			mix[t] += v
		}
	}
	noise := randx.Dirichlet(rng, 0.15, g.cfg.Topics)
	for t := range mix {
		mix[t] = 0.8*mix[t]/float64(len(authorIdx)) + 0.2*noise[t]
	}
	return mix.Normalized()
}

// title builds a short synthetic title from the mixture's dominant topics.
func (g *Generator) title(rng *rand.Rand, mixture core.Vector) string {
	top := mixture.TopTopics(2)
	w1 := g.topicWords[top[0]][rng.Intn(len(g.topicWords[top[0]]))]
	w2 := g.topicWords[top[1]][rng.Intn(len(g.topicWords[top[1]]))]
	return fmt.Sprintf("On %s and %s", w1, w2)
}

// abstract samples AbstractWords tokens: 85% from the mixture's topics and
// 15% from the shared vocabulary.
func (g *Generator) abstract(rng *rand.Rand, mixture core.Vector) string {
	var sb strings.Builder
	for i := 0; i < g.cfg.AbstractWords; i++ {
		if rng.Float64() < 0.15 {
			sb.WriteString(g.shared[rng.Intn(len(g.shared))])
		} else {
			t := randx.Categorical(rng, mixture)
			words := g.topicWords[t]
			sb.WriteString(words[rng.Intn(len(words))])
		}
		sb.WriteByte(' ')
	}
	return strings.TrimSpace(sb.String())
}

// Authors returns the generated author population.
func (g *Generator) Authors() []Author { return g.authors }

// Publications returns every generated publication.
func (g *Generator) Publications() []Publication { return g.pubs }

// Config returns the effective configuration.
func (g *Generator) Config() Config { return g.cfg }
