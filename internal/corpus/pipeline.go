package corpus

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/topics"
)

// BuildTopicCorpus assembles the internal/topics corpus for a dataset's
// reviewer pool: every publication (2000 up to and including the dataset
// year) of every PC member, with the PC members as the corpus authors. It is
// the input of the Author-Topic Model step of Section 2.4.
func (d *Dataset) BuildTopicCorpus(upToYear int) (*topics.Corpus, error) {
	c := topics.NewCorpus(len(d.ReviewerAuthors))
	for ri, a := range d.ReviewerAuthors {
		for _, p := range a.Publications {
			if upToYear > 0 && p.Year > upToYear {
				continue
			}
			if err := c.AddText(p.Abstract, []int{ri}); err != nil {
				return nil, err
			}
		}
	}
	if len(c.Docs) == 0 {
		return nil, fmt.Errorf("corpus: no reviewer publications up to %d", upToYear)
	}
	return c, nil
}

// ExtractedInstance runs the full topic-extraction pipeline of Section 2.4 on
// the dataset: fit the Author-Topic Model on the PC members' publication
// abstracts, take the fitted author-topic rows as the reviewer vectors, and
// infer every submission's topic vector from its abstract with EM
// (Equation 11). The result is a WGRAP instance whose vectors come from text
// rather than from the generator's ground truth.
func (d *Dataset) ExtractedInstance(groupSize, workload int, atmCfg topics.ATMConfig) (*core.Instance, *topics.ATMResult, error) {
	if len(d.PaperPubs) != len(d.Papers) {
		return nil, nil, fmt.Errorf("corpus: dataset lacks abstracts for the extraction pipeline")
	}
	tc, err := d.BuildTopicCorpus(d.Year)
	if err != nil {
		return nil, nil, err
	}
	model, err := topics.FitATM(tc, atmCfg)
	if err != nil {
		return nil, nil, err
	}
	reviewers := make([]core.Reviewer, len(d.Reviewers))
	for i, r := range d.Reviewers {
		reviewers[i] = r
		reviewers[i].Topics = core.Vector(model.AuthorTopic[i]).Clone()
	}
	papers := make([]core.Paper, len(d.Papers))
	for i, p := range d.Papers {
		vec, err := topics.InferDocument(d.PaperPubs[i].Abstract, tc.Vocab, model.TopicWord, topics.InferConfig{})
		if err != nil {
			return nil, nil, err
		}
		papers[i] = p
		papers[i].Topics = core.Vector(vec)
	}
	in := core.NewInstance(papers, reviewers, groupSize, workload)
	if workload == 0 {
		in.Workload = in.MinWorkload()
	}
	return in, model, nil
}
