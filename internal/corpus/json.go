package corpus

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
)

// datasetJSON is the on-disk representation of a Dataset, used by the
// wgrap-datagen and wgrap-assign command-line tools so generated conferences
// can be inspected, archived and re-used across runs.
type datasetJSON struct {
	Area      Area              `json:"area"`
	Year      int               `json:"year"`
	Papers    []paperJSON       `json:"papers"`
	Reviewers []reviewerJSON    `json:"reviewers"`
	Abstracts map[string]string `json:"abstracts,omitempty"`
}

type paperJSON struct {
	ID     string    `json:"id"`
	Title  string    `json:"title"`
	Topics []float64 `json:"topics"`
}

type reviewerJSON struct {
	ID     string    `json:"id"`
	Name   string    `json:"name"`
	HIndex int       `json:"h_index"`
	Topics []float64 `json:"topics"`
}

// WriteJSON serialises the dataset (topic vectors plus, optionally, the
// abstracts of its papers for the topic-model pipeline).
func (d *Dataset) WriteJSON(w io.Writer, includeAbstracts bool) error {
	out := datasetJSON{Area: d.Area, Year: d.Year}
	for _, p := range d.Papers {
		out.Papers = append(out.Papers, paperJSON{ID: p.ID, Title: p.Title, Topics: p.Topics})
	}
	for _, r := range d.Reviewers {
		out.Reviewers = append(out.Reviewers, reviewerJSON{ID: r.ID, Name: r.Name, HIndex: r.HIndex, Topics: r.Topics})
	}
	if includeAbstracts {
		out.Abstracts = make(map[string]string, len(d.PaperPubs))
		for _, p := range d.PaperPubs {
			out.Abstracts[p.ID] = p.Abstract
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SaveJSON writes the dataset to a file.
func (d *Dataset) SaveJSON(path string, includeAbstracts bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return d.WriteJSON(f, includeAbstracts)
}

// ReadJSON parses a dataset previously written with WriteJSON.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var in datasetJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("corpus: decoding dataset: %w", err)
	}
	d := &Dataset{Area: in.Area, Year: in.Year}
	for _, p := range in.Papers {
		d.Papers = append(d.Papers, core.Paper{ID: p.ID, Title: p.Title, Topics: p.Topics})
	}
	for _, r := range in.Reviewers {
		d.Reviewers = append(d.Reviewers, core.Reviewer{ID: r.ID, Name: r.Name, HIndex: r.HIndex, Topics: r.Topics})
	}
	if len(in.Abstracts) > 0 {
		for _, p := range d.Papers {
			if abs, ok := in.Abstracts[p.ID]; ok {
				d.PaperPubs = append(d.PaperPubs, Publication{ID: p.ID, Title: p.Title, Abstract: abs})
			}
		}
	}
	return d, nil
}

// LoadJSON reads a dataset from a file.
func LoadJSON(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}
