package corpus

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/randx"
)

// Dataset is one simulated conference: the submissions of an area and year
// (all papers published at the area's venues that year, as in Section 5) and
// the program committee of the area's flagship venue.
type Dataset struct {
	Area Area
	Year int
	// Papers are the submissions with their topic vectors.
	Papers []core.Paper
	// Reviewers are the PC members with their topic vectors and h-indices.
	Reviewers []core.Reviewer
	// PaperPubs and ReviewerAuthors link back to the generator's world for
	// case studies and the topic-model pipeline.
	PaperPubs       []Publication
	ReviewerAuthors []Author
}

// Instance builds a WGRAP instance from the dataset with the given group
// size; workload 0 means the minimum balanced workload ⌈P·δp/R⌉ (the default
// of Section 5.2).
func (d *Dataset) Instance(groupSize, workload int) *core.Instance {
	in := core.NewInstance(d.Papers, d.Reviewers, groupSize, workload)
	if workload == 0 {
		in.Workload = in.MinWorkload()
	}
	return in
}

// Dataset assembles the simulated conference of the given area and year.
// Paper counts and PC sizes follow Table 3, scaled by Config.Scale (at least
// one paper and max(δ needs) reviewers are always kept).
func (g *Generator) Dataset(area Area, year int) (*Dataset, error) {
	spec, err := g.spec(area)
	if err != nil {
		return nil, err
	}
	wantPapers, ok := spec.papersByYear[year]
	if !ok {
		return nil, fmt.Errorf("corpus: area %s has no data for year %d (Table 3 covers 2008-2009)", area, year)
	}
	wantPC := spec.pcSizeByYear[year]
	wantPapers = scaled(wantPapers, g.cfg.Scale, 4)
	wantPC = scaled(wantPC, g.cfg.Scale, 8)

	rng := rand.New(rand.NewSource(g.cfg.Seed + int64(year)*31 + int64(len(spec.venues))))

	// Submissions: publications of the area's venues in that year. The
	// generator may not have produced exactly the Table 3 count; top up with
	// freshly sampled submissions from the area's author population.
	var pubIdx []int
	for _, v := range spec.venues {
		pubIdx = append(pubIdx, g.pubsByVenueYear[venueYearKey(v, year)]...)
	}
	sort.Ints(pubIdx)
	papers := make([]core.Paper, 0, wantPapers)
	paperPubs := make([]Publication, 0, wantPapers)
	for _, pi := range pubIdx {
		if len(papers) == wantPapers {
			break
		}
		pub := g.pubs[pi]
		papers = append(papers, core.Paper{ID: pub.ID, Title: pub.Title, Topics: pub.Mixture.Clone()})
		paperPubs = append(paperPubs, pub)
	}
	for len(papers) < wantPapers {
		ai := areaOffset(area, g.cfg.AuthorsPerArea) + rng.Intn(g.cfg.AuthorsPerArea)
		mixture := g.paperMixture(rng, []int{ai})
		pub := Publication{
			ID:        fmt.Sprintf("sub-%s-%d-%04d", area, year, len(papers)),
			Title:     g.title(rng, mixture),
			Abstract:  g.abstract(rng, mixture),
			Venue:     spec.venues[rng.Intn(len(spec.venues))],
			Year:      year,
			AuthorIdx: []int{ai},
			Mixture:   mixture,
		}
		papers = append(papers, core.Paper{ID: pub.ID, Title: pub.Title, Topics: pub.Mixture.Clone()})
		paperPubs = append(paperPubs, pub)
	}

	// Program committee: authors of the area, sampled with probability
	// proportional to their publication volume (senior researchers serve on
	// PCs more often).
	offset := areaOffset(area, g.cfg.AuthorsPerArea)
	weights := make([]float64, g.cfg.AuthorsPerArea)
	for i := 0; i < g.cfg.AuthorsPerArea; i++ {
		weights[i] = float64(len(g.authors[offset+i].Publications))
	}
	if wantPC > g.cfg.AuthorsPerArea {
		wantPC = g.cfg.AuthorsPerArea
	}
	chosen := randx.WeightedChoiceWithoutReplacement(rng, weights, wantPC)
	reviewers := make([]core.Reviewer, 0, wantPC)
	reviewerAuthors := make([]Author, 0, wantPC)
	for _, i := range chosen {
		a := g.authors[offset+i]
		reviewers = append(reviewers, core.Reviewer{
			ID:     a.ID,
			Name:   a.Name,
			Topics: ReviewerVector(a),
			HIndex: a.HIndex,
		})
		reviewerAuthors = append(reviewerAuthors, a)
	}
	return &Dataset{
		Area:            area,
		Year:            year,
		Papers:          papers,
		Reviewers:       reviewers,
		PaperPubs:       paperPubs,
		ReviewerAuthors: reviewerAuthors,
	}, nil
}

// ReviewerVector derives a reviewer's topic vector from their publication
// record: the normalised average of their papers' mixtures (falling back to
// the latent profile when the author has no publications). This mirrors
// Section 2.4, where reviewer vectors are extracted from publication records
// rather than declared directly.
func ReviewerVector(a Author) core.Vector {
	if len(a.Publications) == 0 {
		return a.Profile.Clone()
	}
	v := make(core.Vector, a.Profile.Dim())
	for _, p := range a.Publications {
		for t, x := range p.Mixture {
			v[t] += x
		}
	}
	return v.Normalized()
}

// ReviewerPool returns the JRA candidate pool of Section 5.1: every author
// with at least minPubs publications in [fromYear, toYear], as reviewers.
func (g *Generator) ReviewerPool(minPubs, fromYear, toYear int) []core.Reviewer {
	var out []core.Reviewer
	for _, a := range g.authors {
		count := 0
		for _, p := range a.Publications {
			if p.Year >= fromYear && p.Year <= toYear {
				count++
			}
		}
		if count >= minPubs {
			out = append(out, core.Reviewer{ID: a.ID, Name: a.Name, Topics: ReviewerVector(a), HIndex: a.HIndex})
		}
	}
	return out
}

// ScaleByHIndex returns a copy of the reviewers with their vectors scaled by
// 1 + (h - hmin)/(hmax - hmin) as in Equation 15 (Figure 21(d)).
func ScaleByHIndex(reviewers []core.Reviewer) []core.Reviewer {
	if len(reviewers) == 0 {
		return nil
	}
	hmin, hmax := reviewers[0].HIndex, reviewers[0].HIndex
	for _, r := range reviewers {
		if r.HIndex < hmin {
			hmin = r.HIndex
		}
		if r.HIndex > hmax {
			hmax = r.HIndex
		}
	}
	out := make([]core.Reviewer, len(reviewers))
	for i, r := range reviewers {
		factor := 1.0
		if hmax > hmin {
			factor = 1 + float64(r.HIndex-hmin)/float64(hmax-hmin)
		}
		out[i] = r
		out[i].Topics = r.Topics.Scale(factor)
	}
	return out
}

// scaled applies the scale factor with a floor.
func scaled(n int, scale float64, min int) int {
	v := int(float64(n)*scale + 0.5)
	if v < min {
		v = min
	}
	if v > n && scale <= 1 {
		v = n
	}
	return v
}
