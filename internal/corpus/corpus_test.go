package corpus

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/cra"
	"repro/internal/topics"
)

// smallGen returns a generator scaled down enough for fast tests.
func smallGen() *Generator {
	return NewGenerator(Config{
		Scale:          0.04,
		AuthorsPerArea: 60,
		AbstractWords:  40,
		Seed:           7,
	})
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := NewGenerator(Config{Scale: 0.02, AuthorsPerArea: 20, Seed: 3})
	g2 := NewGenerator(Config{Scale: 0.02, AuthorsPerArea: 20, Seed: 3})
	a1, a2 := g1.Authors(), g2.Authors()
	if len(a1) != len(a2) {
		t.Fatal("different author counts for the same seed")
	}
	for i := range a1 {
		if a1[i].Name != a2[i].Name || a1[i].HIndex != a2[i].HIndex {
			t.Fatal("same seed produced different authors")
		}
		if !core.Equal(a1[i].Profile, a2[i].Profile, 0) {
			t.Fatal("same seed produced different profiles")
		}
	}
}

func TestAuthorProfilesConcentrateOnHomeArea(t *testing.T) {
	g := smallGen()
	per := g.Config().Topics / 3
	misplaced := 0
	for _, a := range g.Authors() {
		lo := areaOffset(a.Area, 1) * per // 0, per, 2*per
		mass := 0.0
		for t := lo; t < lo+per; t++ {
			mass += a.Profile[t]
		}
		if mass < 0.5 {
			misplaced++
		}
	}
	if frac := float64(misplaced) / float64(len(g.Authors())); frac > 0.05 {
		t.Fatalf("%.1f%% of authors have less than half their mass in their home area", frac*100)
	}
}

func TestPublicationsWellFormed(t *testing.T) {
	g := smallGen()
	if len(g.Publications()) == 0 {
		t.Fatal("no publications generated")
	}
	for _, p := range g.Publications() {
		if p.Year < 2000 || p.Year > 2009 {
			t.Fatalf("publication year out of range: %d", p.Year)
		}
		if len(p.AuthorIdx) == 0 || p.Abstract == "" || p.Title == "" {
			t.Fatalf("malformed publication %+v", p)
		}
		if math.Abs(p.Mixture.Sum()-1) > 1e-9 {
			t.Fatalf("mixture not normalised: %v", p.Mixture.Sum())
		}
	}
}

func TestDatasetShapeMatchesScaledTable3(t *testing.T) {
	g := smallGen()
	cases := []struct {
		area   Area
		year   int
		papers int
		pc     int
	}{
		{DataMining, 2008, 545, 203},
		{DataMining, 2009, 648, 145},
		{Databases, 2008, 617, 105},
		{Databases, 2009, 513, 90},
		{Theory, 2008, 281, 228},
		{Theory, 2009, 226, 222},
	}
	for _, c := range cases {
		d, err := g.Dataset(c.area, c.year)
		if err != nil {
			t.Fatalf("%s %d: %v", c.area, c.year, err)
		}
		wantPapers := scaled(c.papers, 0.04, 4)
		wantPC := scaled(c.pc, 0.04, 8)
		if len(d.Papers) != wantPapers {
			t.Errorf("%s %d: %d papers, want %d", c.area, c.year, len(d.Papers), wantPapers)
		}
		if len(d.Reviewers) != wantPC {
			t.Errorf("%s %d: %d reviewers, want %d", c.area, c.year, len(d.Reviewers), wantPC)
		}
		if len(d.PaperPubs) != len(d.Papers) || len(d.ReviewerAuthors) != len(d.Reviewers) {
			t.Errorf("%s %d: metadata length mismatch", c.area, c.year)
		}
	}
}

func TestDatasetUnknownAreaYear(t *testing.T) {
	g := smallGen()
	if _, err := g.Dataset("XX", 2008); err == nil {
		t.Fatal("unknown area accepted")
	}
	if _, err := g.Dataset(Databases, 1999); err == nil {
		t.Fatal("unknown year accepted")
	}
}

func TestDatasetInstanceSolvable(t *testing.T) {
	g := smallGen()
	d, err := g.Dataset(Databases, 2008)
	if err != nil {
		t.Fatal(err)
	}
	in := d.Instance(3, 0)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	a, err := cra.SDGA{}.Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.ValidateAssignment(a); err != nil {
		t.Fatal(err)
	}
	score := in.AssignmentScore(a) / float64(in.NumPapers())
	if score < 0.3 {
		t.Fatalf("average coverage %v is implausibly low for area-matched reviewers", score)
	}
}

func TestReviewerPool(t *testing.T) {
	g := smallGen()
	all := g.ReviewerPool(1, 2000, 2009)
	strict := g.ReviewerPool(5, 2005, 2009)
	if len(all) == 0 {
		t.Fatal("empty reviewer pool")
	}
	if len(strict) >= len(all) {
		t.Fatalf("stricter filter should shrink the pool: %d vs %d", len(strict), len(all))
	}
	for _, r := range all {
		if r.Topics.Dim() != g.Config().Topics {
			t.Fatal("wrong vector dimension in reviewer pool")
		}
	}
}

func TestScaleByHIndex(t *testing.T) {
	reviewers := []core.Reviewer{
		{ID: "low", HIndex: 2, Topics: core.Vector{0.5, 0.5}},
		{ID: "high", HIndex: 50, Topics: core.Vector{0.5, 0.5}},
	}
	scaled := ScaleByHIndex(reviewers)
	if !core.Equal(scaled[0].Topics, core.Vector{0.5, 0.5}, 1e-12) {
		t.Fatalf("lowest h-index should keep factor 1, got %v", scaled[0].Topics)
	}
	if !core.Equal(scaled[1].Topics, core.Vector{1, 1}, 1e-12) {
		t.Fatalf("highest h-index should double, got %v", scaled[1].Topics)
	}
	if !core.Equal(reviewers[1].Topics, core.Vector{0.5, 0.5}, 0) {
		t.Fatal("ScaleByHIndex modified its input")
	}
	if ScaleByHIndex(nil) != nil {
		t.Fatal("nil input should return nil")
	}
	same := ScaleByHIndex(reviewers[:1])
	if !core.Equal(same[0].Topics, core.Vector{0.5, 0.5}, 1e-12) {
		t.Fatal("single reviewer should be unscaled")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := smallGen()
	d, err := g.Dataset(Theory, 2009)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf, true); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Area != d.Area || back.Year != d.Year {
		t.Fatal("area/year lost in round trip")
	}
	if len(back.Papers) != len(d.Papers) || len(back.Reviewers) != len(d.Reviewers) {
		t.Fatal("sizes lost in round trip")
	}
	for i := range d.Papers {
		if !core.Equal(back.Papers[i].Topics, d.Papers[i].Topics, 1e-12) {
			t.Fatal("paper vectors lost in round trip")
		}
	}
	if len(back.PaperPubs) != len(d.Papers) {
		t.Fatal("abstracts lost in round trip")
	}
	// The reconstructed dataset must still build a solvable instance.
	in := back.Instance(2, 0)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestBuildTopicCorpusAndExtraction(t *testing.T) {
	g := NewGenerator(Config{
		Scale:          0.02,
		AuthorsPerArea: 30,
		AbstractWords:  30,
		Topics:         6,
		Seed:           5,
	})
	d, err := g.Dataset(Databases, 2008)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := d.BuildTopicCorpus(2008)
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.Validate(); err != nil {
		t.Fatal(err)
	}
	in, model, err := d.ExtractedInstance(2, 0, topics.ATMConfig{Topics: 6, Iterations: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(model.TopicWord) != 6 {
		t.Fatalf("unexpected topic count %d", len(model.TopicWord))
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	// The extracted instance must be solvable end to end.
	a, err := cra.SDGA{}.Assign(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.ValidateAssignment(a); err != nil {
		t.Fatal(err)
	}
}

func TestScaledHelper(t *testing.T) {
	if scaled(100, 0.1, 4) != 10 {
		t.Fatal("scaled(100, 0.1) != 10")
	}
	if scaled(10, 0.01, 4) != 4 {
		t.Fatal("floor not applied")
	}
	if scaled(10, 1, 4) != 10 {
		t.Fatal("identity scale broken")
	}
}

func TestSkewConcentratesTopicPopularity(t *testing.T) {
	mass := func(skew float64) (first, last float64) {
		g := NewGenerator(Config{Scale: 0.02, AuthorsPerArea: 80, Seed: 5, Skew: skew})
		per := g.Config().Topics / 3
		for _, a := range g.Authors() {
			lo := areaOffset(a.Area, 1) * per
			first += a.Profile[lo]
			last += a.Profile[lo+per-1]
		}
		return first, last
	}
	uf, ul := mass(0)
	if ratio := uf / ul; ratio > 2 || ratio < 0.5 {
		t.Fatalf("uniform corpus already skewed: first/last mass ratio %.2f", ratio)
	}
	sf, sl := mass(2)
	if sf < 4*sl {
		t.Fatalf("skew=2 corpus not skewed: first topic mass %.2f vs last %.2f", sf, sl)
	}
}
