package topics

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("We propose a Novel, query-processing engine for XML streams!")
	want := []string{"novel", "query", "processing", "engine", "xml", "streams"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tokenize = %v, want %v", got, want)
		}
	}
	if len(Tokenize("a an of to")) != 0 {
		t.Fatal("stopwords not removed")
	}
}

func TestVocabulary(t *testing.T) {
	v := NewVocabulary()
	id1 := v.Add("graph")
	id2 := v.Add("query")
	if id1 == id2 {
		t.Fatal("distinct words share an id")
	}
	if again := v.Add("graph"); again != id1 {
		t.Fatal("re-adding a word changed its id")
	}
	if v.Size() != 2 {
		t.Fatalf("Size = %d", v.Size())
	}
	if w := v.Word(id2); w != "query" {
		t.Fatalf("Word = %q", w)
	}
	if _, ok := v.ID("missing"); ok {
		t.Fatal("unknown word resolved")
	}
	words := v.Words()
	words[0] = "mutated"
	if v.Word(id1) == "mutated" {
		t.Fatal("Words() exposed internal storage")
	}
}

func TestCorpusValidate(t *testing.T) {
	c := NewCorpus(2)
	if err := c.Validate(); err == nil {
		t.Fatal("empty corpus accepted")
	}
	if err := c.AddText("graph mining algorithms", []int{0}); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.AddText("bad author", []int{5}); err == nil {
		t.Fatal("out-of-range author accepted")
	}
	c.Docs = append(c.Docs, Document{Words: []int{99}, Authors: []int{0}})
	if err := c.Validate(); err == nil {
		t.Fatal("out-of-range word accepted")
	}
}

// syntheticCorpus builds a corpus with two clearly separated topics:
// author 0 writes only topic-A words, author 1 only topic-B words, and
// author 2 writes both.
func syntheticCorpus(docsPerAuthor int) (*Corpus, []string, []string) {
	wordsA := []string{"spatial", "index", "road", "trajectory", "nearest", "neighbor"}
	wordsB := []string{"privacy", "anonymity", "secure", "encryption", "attack", "noise"}
	c := NewCorpus(3)
	rng := rand.New(rand.NewSource(7))
	makeDoc := func(words []string) string {
		var sb strings.Builder
		for i := 0; i < 30; i++ {
			sb.WriteString(words[rng.Intn(len(words))])
			sb.WriteByte(' ')
		}
		return sb.String()
	}
	for i := 0; i < docsPerAuthor; i++ {
		_ = c.AddText(makeDoc(wordsA), []int{0})
		_ = c.AddText(makeDoc(wordsB), []int{1})
		_ = c.AddText(makeDoc(wordsA)+" "+makeDoc(wordsB), []int{2})
	}
	return c, wordsA, wordsB
}

func TestFitATMSeparatesTopics(t *testing.T) {
	c, wordsA, wordsB := syntheticCorpus(12)
	res, err := FitATM(c, ATMConfig{Topics: 2, Iterations: 150, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Rows are probability distributions.
	for a, row := range res.AuthorTopic {
		sum := 0.0
		for _, x := range row {
			if x < 0 {
				t.Fatalf("author %d has a negative weight", a)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("author %d topic vector sums to %v", a, sum)
		}
	}
	// Authors 0 and 1 should be concentrated on different topics.
	top := func(row []float64) int {
		best := 0
		for t := range row {
			if row[t] > row[best] {
				best = t
			}
		}
		return best
	}
	t0, t1 := top(res.AuthorTopic[0]), top(res.AuthorTopic[1])
	if t0 == t1 {
		t.Fatalf("authors with disjoint vocabularies mapped to the same topic: %v vs %v",
			res.AuthorTopic[0], res.AuthorTopic[1])
	}
	if res.AuthorTopic[0][t0] < 0.8 || res.AuthorTopic[1][t1] < 0.8 {
		t.Fatalf("single-topic authors not concentrated: %v %v", res.AuthorTopic[0], res.AuthorTopic[1])
	}
	// The mixed author should spread over both topics.
	if res.AuthorTopic[2][t0] < 0.2 || res.AuthorTopic[2][t1] < 0.2 {
		t.Fatalf("mixed author not spread: %v", res.AuthorTopic[2])
	}
	// Topic-word distributions should separate the two vocabularies.
	topWords0 := TopWords(res.TopicWord[t0], c.Vocab, 6)
	for _, w := range topWords0 {
		for _, b := range wordsB {
			if w == b {
				t.Fatalf("topic %d mixes vocabularies: %v", t0, topWords0)
			}
		}
	}
	topWords1 := TopWords(res.TopicWord[t1], c.Vocab, 6)
	for _, w := range topWords1 {
		for _, a := range wordsA {
			if w == a {
				t.Fatalf("topic %d mixes vocabularies: %v", t1, topWords1)
			}
		}
	}
}

func TestFitATMDeterministicWithSeed(t *testing.T) {
	c, _, _ := syntheticCorpus(4)
	r1, err := FitATM(c, ATMConfig{Topics: 2, Iterations: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := FitATM(c, ATMConfig{Topics: 2, Iterations: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for a := range r1.AuthorTopic {
		for t2 := range r1.AuthorTopic[a] {
			if r1.AuthorTopic[a][t2] != r2.AuthorTopic[a][t2] {
				t.Fatal("same seed produced different ATM fits")
			}
		}
	}
}

func TestFitATMRejectsEmptyCorpus(t *testing.T) {
	if _, err := FitATM(NewCorpus(1), ATMConfig{}); err == nil {
		t.Fatal("empty corpus accepted")
	}
}

func TestFitLDASeparatesTopics(t *testing.T) {
	c, _, _ := syntheticCorpus(10)
	// A small alpha keeps the per-document smoothing from washing out the
	// concentration on such short synthetic documents.
	res, err := FitLDA(c, LDAConfig{Topics: 2, Alpha: 0.1, Iterations: 120, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Documents by author 0 (indices 0,3,6,...) should be concentrated on a
	// single topic, and documents by author 1 on the other one.
	top := func(row []float64) int {
		best := 0
		for t := range row {
			if row[t] > row[best] {
				best = t
			}
		}
		return best
	}
	tA := top(res.DocTopic[0])
	tB := top(res.DocTopic[1])
	if tA == tB {
		t.Fatalf("disjoint-vocabulary documents mapped to the same topic")
	}
	if res.DocTopic[0][tA] < 0.7 || res.DocTopic[1][tB] < 0.7 {
		t.Fatalf("documents not concentrated: %v %v", res.DocTopic[0], res.DocTopic[1])
	}
}

func TestInferDocument(t *testing.T) {
	c, wordsA, wordsB := syntheticCorpus(12)
	res, err := FitATM(c, ATMConfig{Topics: 2, Iterations: 150, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	top := func(row []float64) int {
		best := 0
		for t := range row {
			if row[t] > row[best] {
				best = t
			}
		}
		return best
	}
	tA := top(res.AuthorTopic[0])

	vecA, err := InferDocument(strings.Join(wordsA, " "), c.Vocab, res.TopicWord, InferConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if top(vecA) != tA || vecA[tA] < 0.8 {
		t.Fatalf("pure topic-A document inferred as %v", vecA)
	}
	mixed, err := InferDocument(strings.Join(append(append([]string{}, wordsA...), wordsB...), " "), c.Vocab, res.TopicWord, InferConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if mixed[0] < 0.2 || mixed[1] < 0.2 {
		t.Fatalf("mixed document not spread over both topics: %v", mixed)
	}
	// Unknown words only: uniform.
	unk, err := InferDocument("zzzz qqqq", c.Vocab, res.TopicWord, InferConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range unk {
		if math.Abs(x-0.5) > 1e-9 {
			t.Fatalf("unknown-word document should be uniform, got %v", unk)
		}
	}
}

func TestInferDocumentErrors(t *testing.T) {
	if _, err := InferDocument("anything", NewVocabulary(), nil, InferConfig{}); err == nil {
		t.Fatal("missing topics accepted")
	}
}

// Property: EM inference never decreases the likelihood of Equation 11
// compared to the uniform initialisation.
func TestInferImprovesLikelihood(t *testing.T) {
	c, _, _ := syntheticCorpus(8)
	res, err := FitATM(c, ATMConfig{Topics: 2, Iterations: 80, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Build a random document from the corpus vocabulary.
		n := 5 + rng.Intn(30)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			fmt.Fprintf(&sb, "%s ", c.Vocab.Word(rng.Intn(c.Vocab.Size())))
		}
		text := sb.String()
		words := WordIDs(text, c.Vocab)
		if len(words) == 0 {
			return true
		}
		uniform := []float64{0.5, 0.5}
		inferred, err := InferDocument(text, c.Vocab, res.TopicWord, InferConfig{})
		if err != nil {
			return false
		}
		return Likelihood(words, inferred, res.TopicWord) >= Likelihood(words, uniform, res.TopicWord)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTopWords(t *testing.T) {
	v := NewVocabulary()
	v.Add("alpha")
	v.Add("beta")
	v.Add("gamma")
	dist := []float64{0.2, 0.5, 0.3}
	got := TopWords(dist, v, 2)
	if len(got) != 2 || got[0] != "beta" || got[1] != "gamma" {
		t.Fatalf("TopWords = %v", got)
	}
	if len(TopWords(dist, v, 10)) != 3 {
		t.Fatal("TopWords should clamp k to the vocabulary size")
	}
}
