package topics

import (
	"errors"
	"math"
)

// InferConfig configures the EM inference of a new document's topic vector.
type InferConfig struct {
	// Iterations is the number of EM steps (default 50).
	Iterations int
	// Tolerance stops early when the topic vector changes by less than this
	// L1 amount between iterations (default 1e-6).
	Tolerance float64
}

func (c InferConfig) withDefaults() InferConfig {
	if c.Iterations <= 0 {
		c.Iterations = 50
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 1e-6
	}
	return c
}

// InferDocument estimates the topic vector of a new document (a submitted
// paper's abstract) given the fitted topic-word distributions, by
// Expectation-Maximisation on the mixture likelihood of Equation 11:
//
//	p = argmax_p Π_i Σ_j p(w_i | t_j) · p[t_j]
//
// The E step computes the responsibility of every topic for every word; the
// M step re-estimates p as the average responsibility. Words that are not in
// the vocabulary are ignored. The returned vector sums to one; a document
// with no known words yields the uniform vector.
func InferDocument(text string, vocab *Vocabulary, topicWord [][]float64, cfg InferConfig) ([]float64, error) {
	if len(topicWord) == 0 {
		return nil, errors.New("topics: no topics")
	}
	cfg = cfg.withDefaults()
	T := len(topicWord)
	words := make([]int, 0)
	for _, tok := range Tokenize(text) {
		if id, ok := vocab.ID(tok); ok {
			words = append(words, id)
		}
	}
	p := make([]float64, T)
	for t := range p {
		p[t] = 1 / float64(T)
	}
	if len(words) == 0 {
		return p, nil
	}

	resp := make([]float64, T)
	next := make([]float64, T)
	for iter := 0; iter < cfg.Iterations; iter++ {
		for t := range next {
			next[t] = 0
		}
		for _, w := range words {
			total := 0.0
			for t := 0; t < T; t++ {
				resp[t] = topicWord[t][w] * p[t]
				total += resp[t]
			}
			if total <= 0 {
				continue
			}
			for t := 0; t < T; t++ {
				next[t] += resp[t] / total
			}
		}
		delta := 0.0
		for t := 0; t < T; t++ {
			next[t] /= float64(len(words))
			if d := next[t] - p[t]; d > 0 {
				delta += d
			} else {
				delta -= d
			}
		}
		copy(p, next)
		if delta < cfg.Tolerance {
			break
		}
	}
	normalize(p)
	return p, nil
}

// Likelihood returns the per-word average log-likelihood of a document under
// a topic mixture p and the topic-word distributions; used by tests to verify
// that EM increases the objective of Equation 11.
func Likelihood(words []int, p []float64, topicWord [][]float64) float64 {
	if len(words) == 0 {
		return 0
	}
	total := 0.0
	for _, w := range words {
		mix := 0.0
		for t := range p {
			mix += topicWord[t][w] * p[t]
		}
		if mix <= 0 {
			mix = 1e-300
		}
		total += math.Log(mix)
	}
	return total / float64(len(words))
}

// WordIDs tokenizes text and maps it onto known vocabulary identifiers.
func WordIDs(text string, vocab *Vocabulary) []int {
	out := make([]int, 0)
	for _, tok := range Tokenize(text) {
		if id, ok := vocab.ID(tok); ok {
			out = append(out, id)
		}
	}
	return out
}
