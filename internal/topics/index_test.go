package topics

import (
	"math/rand"
	"slices"
	"testing"
)

// randVecs draws n sparse-ish random topic vectors of the given dimension:
// a handful of positive weights each, normalized to sum 1 — the shape the
// reviewer pool has after topic inference.
func randVecs(rng *rand.Rand, n, dim, hot int) [][]float64 {
	vecs := make([][]float64, n)
	for i := range vecs {
		v := make([]float64, dim)
		total := 0.0
		for h := 0; h < hot; h++ {
			t := rng.Intn(dim)
			w := rng.Float64()
			v[t] += w
			total += w
		}
		for t := range v {
			v[t] /= total
		}
		vecs[i] = v
	}
	return vecs
}

// coverageScore is the exact numerator of the weighted-coverage objective.
func coverageScore(v, q []float64) float64 {
	s := 0.0
	for t := range q {
		if v[t] < q[t] {
			s += v[t]
		} else {
			s += q[t]
		}
	}
	return s
}

func TestTopKRecallsHighCoverageVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, dim, k = 500, 30, 32
	vecs := randVecs(rng, n, dim, 4)
	ix := BuildIndex(vecs)
	sc := ix.NewScorer()
	for trial := 0; trial < 20; trial++ {
		q := randVecs(rng, 1, dim, 4)[0]
		got := sc.TopK(q, k, nil)
		if len(got) != k {
			t.Fatalf("TopK returned %d candidates, want %d", len(got), k)
		}
		if !slices.IsSorted(got) {
			t.Fatalf("TopK result not ascending: %v", got)
		}
		for i := 1; i < len(got); i++ {
			if got[i] == got[i-1] {
				t.Fatalf("TopK result has duplicate %d", got[i])
			}
		}
		// The exact top-(k/4) by full coverage score must (nearly) all appear
		// within the k candidates; the budgeted posting scan may lose deep-tail
		// mass but not the strong matches.
		type rs struct {
			id int
			s  float64
		}
		ranked := make([]rs, n)
		for id, v := range vecs {
			ranked[id] = rs{id: id, s: coverageScore(v, q)}
		}
		slices.SortFunc(ranked, func(a, b rs) int {
			switch {
			case a.s > b.s:
				return -1
			case a.s < b.s:
				return 1
			default:
				return a.id - b.id
			}
		})
		missed := 0
		for _, top := range ranked[:k/4] {
			if !slices.Contains(got, int32(top.id)) {
				missed++
			}
		}
		if missed > 1 {
			t.Fatalf("trial %d: %d of the exact top-%d missing from the %d candidates", trial, missed, k/4, k)
		}
	}
}

func TestTopKDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vecs := randVecs(rng, 300, 25, 3)
	q := randVecs(rng, 1, 25, 3)[0]
	ix := BuildIndex(vecs)
	a := ix.NewScorer().TopK(q, 24, nil)
	sc := ix.NewScorer()
	sc.TopK(randVecs(rng, 1, 25, 3)[0], 24, nil) // interleave another query
	b := sc.TopK(q, 24, nil)
	if !slices.Equal(a, b) {
		t.Fatalf("TopK not deterministic:\n%v\n%v", a, b)
	}
}

func TestTopKEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vecs := randVecs(rng, 20, 10, 3)
	ix := BuildIndex(vecs)
	sc := ix.NewScorer()

	if got := sc.TopK(vecs[0], 0, nil); len(got) != 0 {
		t.Fatalf("k=0: got %v, want empty", got)
	}
	got := sc.TopK(vecs[0], 50, nil)
	if len(got) != 20 {
		t.Fatalf("k>=n: got %d candidates, want all 20", len(got))
	}
	for i, id := range got {
		if id != int32(i) {
			t.Fatalf("k>=n: candidate %d is %d, want %d", i, id, i)
		}
	}
	// A zero query has no topic signal: the result must still have k entries
	// (the padding keeps downstream instances feasible).
	zero := make([]float64, 10)
	got = sc.TopK(zero, 5, nil)
	want := []int32{0, 1, 2, 3, 4}
	if !slices.Equal(got, want) {
		t.Fatalf("zero query: got %v, want %v", got, want)
	}
	// Reusing the out buffer must not allocate new backing when it fits.
	buf := make([]int32, 0, 8)
	got = sc.TopK(vecs[1], 8, buf)
	if len(got) != 8 || &got[0] != &buf[:1][0] {
		t.Fatalf("out buffer not reused")
	}
}

func TestBuildIndexEmpty(t *testing.T) {
	ix := BuildIndex(nil)
	if ix.Len() != 0 || ix.Dim() != 0 {
		t.Fatalf("empty index: Len=%d Dim=%d", ix.Len(), ix.Dim())
	}
	if got := ix.NewScorer().TopK([]float64{0.5}, 3, nil); len(got) != 0 {
		t.Fatalf("empty index TopK: got %v", got)
	}
}
