// Package topics implements the topic-extraction substrate of the paper
// (Section 2.4 and Appendix A): a vocabulary and tokenizer, the Author-Topic
// Model fitted with collapsed Gibbs sampling (used to extract reviewer topic
// vectors and the per-topic word distributions from publication records),
// Latent Dirichlet Allocation (the classic document-topic model the ATM
// generalises), and the Expectation-Maximisation inference of Equation 11
// that maps a new paper's abstract onto the learned topics.
package topics

import (
	"sort"
	"strings"
	"unicode"
)

// Vocabulary maps words to dense integer identifiers.
type Vocabulary struct {
	words []string
	index map[string]int
}

// NewVocabulary creates an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{index: make(map[string]int)}
}

// Add returns the identifier of the word, inserting it if needed.
func (v *Vocabulary) Add(word string) int {
	if id, ok := v.index[word]; ok {
		return id
	}
	id := len(v.words)
	v.words = append(v.words, word)
	v.index[word] = id
	return id
}

// ID returns the identifier of a word and whether it is known.
func (v *Vocabulary) ID(word string) (int, bool) {
	id, ok := v.index[word]
	return id, ok
}

// Word returns the word with the given identifier.
func (v *Vocabulary) Word(id int) string { return v.words[id] }

// Size returns the number of distinct words.
func (v *Vocabulary) Size() int { return len(v.words) }

// Words returns a copy of all words in identifier order.
func (v *Vocabulary) Words() []string { return append([]string(nil), v.words...) }

// stopwords is a small English stop list sufficient for abstracts.
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "by": true, "for": true, "from": true, "has": true, "have": true,
	"in": true, "is": true, "it": true, "its": true, "of": true, "on": true,
	"or": true, "our": true, "that": true, "the": true, "this": true, "to": true,
	"we": true, "with": true, "which": true, "their": true, "these": true,
	"can": true, "such": true, "also": true, "than": true, "them": true,
	"then": true, "there": true, "was": true, "were": true, "will": true,
	"into": true, "over": true, "under": true, "using": true, "used": true,
	"use": true, "based": true, "paper": true, "propose": true, "proposed": true,
	"show": true, "shows": true, "results": true, "approach": true,
	"problem": true, "problems": true, "new": true, "both": true,
}

// Tokenize lowercases the text, splits it on non-letter characters, and drops
// stop words and tokens shorter than three characters.
func Tokenize(text string) []string {
	fields := strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
	out := make([]string, 0, len(fields))
	for _, f := range fields {
		if len(f) < 3 || stopwords[f] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// TopWords returns the k most probable words of a topic's word distribution,
// in descending probability order.
func TopWords(dist []float64, vocab *Vocabulary, k int) []string {
	type wp struct {
		w int
		p float64
	}
	all := make([]wp, len(dist))
	for w, p := range dist {
		all[w] = wp{w: w, p: p}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].p > all[j].p })
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = vocab.Word(all[i].w)
	}
	return out
}
