package topics

import (
	"errors"
	"math/rand"

	"repro/internal/randx"
)

// ATMConfig configures the Author-Topic Model sampler.
type ATMConfig struct {
	// Topics is the number of latent topics T (the paper uses 30).
	Topics int
	// Alpha is the symmetric Dirichlet prior over an author's topics.
	Alpha float64
	// Beta is the symmetric Dirichlet prior over a topic's words.
	Beta float64
	// Iterations is the number of Gibbs sweeps (default 200).
	Iterations int
	// BurnIn is the number of sweeps before samples contribute to the
	// estimates (default Iterations/2).
	BurnIn int
	// Seed makes sampling reproducible (default 1).
	Seed int64
}

func (c ATMConfig) withDefaults() ATMConfig {
	if c.Topics <= 0 {
		c.Topics = 30
	}
	if c.Alpha <= 0 {
		c.Alpha = 50.0 / float64(c.Topics)
	}
	if c.Beta <= 0 {
		c.Beta = 0.01
	}
	if c.Iterations <= 0 {
		c.Iterations = 200
	}
	if c.BurnIn <= 0 || c.BurnIn >= c.Iterations {
		c.BurnIn = c.Iterations / 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ATMResult holds the fitted Author-Topic Model.
type ATMResult struct {
	// AuthorTopic[a][t] is the probability that author a writes about topic
	// t; each row sums to one. These rows are the reviewer topic vectors of
	// Section 2.4.
	AuthorTopic [][]float64
	// TopicWord[t][w] is the probability of word w under topic t; each row
	// sums to one (the topic set T of Appendix A, used by EM inference).
	TopicWord [][]float64
	// Config echoes the effective configuration.
	Config ATMConfig
}

// FitATM fits the Author-Topic Model of Rosen-Zvi et al. with collapsed Gibbs
// sampling: every word token is assigned both a latent author (uniform over
// the document's authors) and a latent topic, and the pair is resampled from
// its conditional distribution. Counts accumulated after burn-in yield the
// author-topic and topic-word distributions.
func FitATM(c *Corpus, cfg ATMConfig) (*ATMResult, error) {
	cfg = cfg.withDefaults()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	T := cfg.Topics
	V := c.Vocab.Size()
	A := c.NumAuthors
	if A == 0 {
		return nil, errors.New("topics: corpus has no authors")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Count matrices of the collapsed sampler.
	authorTopic := make([][]int, A) // n_{a,t}
	for a := range authorTopic {
		authorTopic[a] = make([]int, T)
	}
	topicWord := make([][]int, T) // n_{t,w}
	for t := range topicWord {
		topicWord[t] = make([]int, V)
	}
	topicTotal := make([]int, T)  // n_t
	authorTotal := make([]int, A) // n_a

	// Token state: assigned author and topic per token.
	type tokenState struct{ author, topic int }
	states := make([][]tokenState, len(c.Docs))
	for d, doc := range c.Docs {
		states[d] = make([]tokenState, len(doc.Words))
		for i, w := range doc.Words {
			a := doc.Authors[rng.Intn(len(doc.Authors))]
			t := rng.Intn(T)
			states[d][i] = tokenState{author: a, topic: t}
			authorTopic[a][t]++
			topicWord[t][w]++
			topicTotal[t]++
			authorTotal[a]++
		}
	}

	// Accumulators for the post-burn-in estimates.
	accAuthorTopic := make([][]float64, A)
	for a := range accAuthorTopic {
		accAuthorTopic[a] = make([]float64, T)
	}
	accTopicWord := make([][]float64, T)
	for t := range accTopicWord {
		accTopicWord[t] = make([]float64, V)
	}
	samples := 0

	weights := make([]float64, 0, T*4)
	for iter := 0; iter < cfg.Iterations; iter++ {
		for d, doc := range c.Docs {
			for i, w := range doc.Words {
				st := states[d][i]
				// Remove the token from the counts.
				authorTopic[st.author][st.topic]--
				topicWord[st.topic][w]--
				topicTotal[st.topic]--
				authorTotal[st.author]--

				// Sample a new (author, topic) pair from the conditional.
				weights = weights[:0]
				for _, a := range doc.Authors {
					for t := 0; t < T; t++ {
						pw := (float64(topicWord[t][w]) + cfg.Beta) / (float64(topicTotal[t]) + cfg.Beta*float64(V))
						pt := (float64(authorTopic[a][t]) + cfg.Alpha) / (float64(authorTotal[a]) + cfg.Alpha*float64(T))
						weights = append(weights, pw*pt)
					}
				}
				pick := randx.Categorical(rng, weights)
				na := doc.Authors[pick/T]
				nt := pick % T

				states[d][i] = tokenState{author: na, topic: nt}
				authorTopic[na][nt]++
				topicWord[nt][w]++
				topicTotal[nt]++
				authorTotal[na]++
			}
		}
		if iter >= cfg.BurnIn {
			samples++
			for a := 0; a < A; a++ {
				den := float64(authorTotal[a]) + cfg.Alpha*float64(T)
				for t := 0; t < T; t++ {
					accAuthorTopic[a][t] += (float64(authorTopic[a][t]) + cfg.Alpha) / den
				}
			}
			for t := 0; t < T; t++ {
				den := float64(topicTotal[t]) + cfg.Beta*float64(V)
				for w := 0; w < V; w++ {
					accTopicWord[t][w] += (float64(topicWord[t][w]) + cfg.Beta) / den
				}
			}
		}
	}
	if samples == 0 {
		samples = 1
	}
	res := &ATMResult{
		AuthorTopic: accAuthorTopic,
		TopicWord:   accTopicWord,
		Config:      cfg,
	}
	for a := range res.AuthorTopic {
		normalize(res.AuthorTopic[a])
	}
	for t := range res.TopicWord {
		normalize(res.TopicWord[t])
	}
	return res, nil
}

// normalize scales a slice so it sums to one (uniform if it sums to zero).
func normalize(xs []float64) {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	if s == 0 {
		for i := range xs {
			xs[i] = 1 / float64(len(xs))
		}
		return
	}
	for i := range xs {
		xs[i] /= s
	}
}
