package topics

import (
	"math/rand"

	"repro/internal/randx"
)

// LDAConfig configures the plain Latent Dirichlet Allocation sampler. LDA is
// the document-topic model the Author-Topic Model generalises (Blei et al.,
// reference [5] of the paper); it is provided both as a substrate for
// experimentation and as the simplest way to extract document topic vectors
// when author information is unavailable.
type LDAConfig struct {
	Topics     int
	Alpha      float64
	Beta       float64
	Iterations int
	BurnIn     int
	Seed       int64
}

func (c LDAConfig) withDefaults() LDAConfig {
	if c.Topics <= 0 {
		c.Topics = 30
	}
	if c.Alpha <= 0 {
		c.Alpha = 50.0 / float64(c.Topics)
	}
	if c.Beta <= 0 {
		c.Beta = 0.01
	}
	if c.Iterations <= 0 {
		c.Iterations = 200
	}
	if c.BurnIn <= 0 || c.BurnIn >= c.Iterations {
		c.BurnIn = c.Iterations / 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// LDAResult holds the fitted LDA model.
type LDAResult struct {
	// DocTopic[d][t] is the topic distribution of document d.
	DocTopic [][]float64
	// TopicWord[t][w] is the word distribution of topic t.
	TopicWord [][]float64
	Config    LDAConfig
}

// FitLDA fits LDA with collapsed Gibbs sampling.
func FitLDA(c *Corpus, cfg LDAConfig) (*LDAResult, error) {
	cfg = cfg.withDefaults()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	T := cfg.Topics
	V := c.Vocab.Size()
	D := len(c.Docs)
	rng := rand.New(rand.NewSource(cfg.Seed))

	docTopic := make([][]int, D)
	for d := range docTopic {
		docTopic[d] = make([]int, T)
	}
	topicWord := make([][]int, T)
	for t := range topicWord {
		topicWord[t] = make([]int, V)
	}
	topicTotal := make([]int, T)
	docTotal := make([]int, D)
	assign := make([][]int, D)

	for d, doc := range c.Docs {
		assign[d] = make([]int, len(doc.Words))
		for i, w := range doc.Words {
			t := rng.Intn(T)
			assign[d][i] = t
			docTopic[d][t]++
			topicWord[t][w]++
			topicTotal[t]++
			docTotal[d]++
		}
	}

	accDocTopic := make([][]float64, D)
	for d := range accDocTopic {
		accDocTopic[d] = make([]float64, T)
	}
	accTopicWord := make([][]float64, T)
	for t := range accTopicWord {
		accTopicWord[t] = make([]float64, V)
	}

	weights := make([]float64, T)
	for iter := 0; iter < cfg.Iterations; iter++ {
		for d, doc := range c.Docs {
			for i, w := range doc.Words {
				t := assign[d][i]
				docTopic[d][t]--
				topicWord[t][w]--
				topicTotal[t]--
				docTotal[d]--

				for k := 0; k < T; k++ {
					pw := (float64(topicWord[k][w]) + cfg.Beta) / (float64(topicTotal[k]) + cfg.Beta*float64(V))
					pt := float64(docTopic[d][k]) + cfg.Alpha
					weights[k] = pw * pt
				}
				nt := randx.Categorical(rng, weights)
				assign[d][i] = nt
				docTopic[d][nt]++
				topicWord[nt][w]++
				topicTotal[nt]++
				docTotal[d]++
			}
		}
		if iter >= cfg.BurnIn {
			for d := 0; d < D; d++ {
				den := float64(docTotal[d]) + cfg.Alpha*float64(T)
				for t := 0; t < T; t++ {
					accDocTopic[d][t] += (float64(docTopic[d][t]) + cfg.Alpha) / den
				}
			}
			for t := 0; t < T; t++ {
				den := float64(topicTotal[t]) + cfg.Beta*float64(V)
				for w := 0; w < V; w++ {
					accTopicWord[t][w] += (float64(topicWord[t][w]) + cfg.Beta) / den
				}
			}
		}
	}
	res := &LDAResult{DocTopic: accDocTopic, TopicWord: accTopicWord, Config: cfg}
	for d := range res.DocTopic {
		normalize(res.DocTopic[d])
	}
	for t := range res.TopicWord {
		normalize(res.TopicWord[t])
	}
	return res, nil
}
