package topics

import (
	"slices"
	"sort"
)

// Index is an inverted index over a fixed pool of topic vectors (typically
// the reviewer pool): for every topic it holds the postings of vectors with
// positive weight on that topic, sorted by weight descending. It is the
// candidate-generation stage of the sparse solve path: the weighted-coverage
// objective concentrates nearly all assignment mass on reviewers whose topic
// vectors overlap the paper's, so scanning a budgeted prefix of the postings
// of the paper's own topics recovers the high-score reviewers without ever
// touching the full pool.
//
// An Index is immutable after BuildIndex and safe for concurrent use; the
// per-query scratch lives in Scorer, so concurrent queries use one Scorer
// per goroutine.
type Index struct {
	dim  int
	n    int
	post [][]posting
}

// posting is one inverted-index entry: a vector id and its weight on the
// posting's topic.
type posting struct {
	id int32
	w  float64
}

// scanBudgetFactor scales the posting-scan budget of TopK: roughly
// scanBudgetFactor·k postings are read per query, split across the query's
// topics proportionally to their weight. Impact ordering (postings are
// weight-descending) makes the truncated tail contribute at most the last
// scanned weight per skipped posting, so a small multiple of k suffices; 16
// was chosen so the measured objective loss at paper scale stays within the
// test-asserted epsilon while TopK stays O(k) rather than O(pool).
const scanBudgetFactor = 16

// BuildIndex builds the inverted index over the given vectors. All vectors
// must share the dimension of the first; zero weights produce no postings.
// The input slices are only read during the build.
func BuildIndex(vecs [][]float64) *Index {
	ix := &Index{n: len(vecs)}
	if len(vecs) == 0 {
		return ix
	}
	ix.dim = len(vecs[0])
	ix.post = make([][]posting, ix.dim)
	counts := make([]int, ix.dim)
	for _, v := range vecs {
		for t, w := range v {
			if w > 0 {
				counts[t]++
			}
		}
	}
	for t, c := range counts {
		if c > 0 {
			ix.post[t] = make([]posting, 0, c)
		}
	}
	for id, v := range vecs {
		for t, w := range v {
			if w > 0 {
				ix.post[t] = append(ix.post[t], posting{id: int32(id), w: w})
			}
		}
	}
	for t := range ix.post {
		// Weight-descending, ties by id ascending: the scan order (and with
		// it every TopK result) is fully deterministic.
		slices.SortFunc(ix.post[t], func(a, b posting) int {
			switch {
			case a.w > b.w:
				return -1
			case a.w < b.w:
				return 1
			case a.id < b.id:
				return -1
			case a.id > b.id:
				return 1
			default:
				return 0
			}
		})
	}
	return ix
}

// Len returns the number of indexed vectors.
func (ix *Index) Len() int { return ix.n }

// Dim returns the topic dimension.
func (ix *Index) Dim() int { return ix.dim }

// Scorer holds the reusable per-query scratch of TopK. A Scorer is bound to
// its Index and must not be used concurrently; create one per goroutine.
type Scorer struct {
	ix      *Index
	score   []float64
	mark    []uint32
	gen     uint32
	touched []int32
	sel     []scored
}

// scored pairs a candidate id with its accumulated score for the selection
// sort.
type scored struct {
	id int32
	s  float64
}

// NewScorer returns a scorer with scratch sized for the index.
func (ix *Index) NewScorer() *Scorer {
	return &Scorer{
		ix:    ix,
		score: make([]float64, ix.n),
		mark:  make([]uint32, ix.n),
	}
}

// TopK returns the indices of (up to) k indexed vectors with the highest
// approximate weighted-coverage score against the query vector q, ascending
// by index. The score accumulated per candidate is Σ_t min(w_t, q_t) over
// the scanned postings — the numerator of the coverage objective — so the
// returned set is exactly the reviewers a dense scoring pass would rank
// highest, up to the posting-scan truncation described on scanBudgetFactor.
//
// When fewer than k candidates score positive (a query orthogonal to most of
// the pool), the result is padded with the lowest unused indices so callers
// can rely on |result| = min(k, Len): downstream sparse solvers need the
// candidate sets to keep the instance feasible, not just high-scoring.
//
// out, when non-nil, is used as the backing for the result (avoiding one
// allocation per call); it is resliced from out[:0]. TopK is deterministic:
// the same index and query always produce the same candidate list.
func (s *Scorer) TopK(q []float64, k int, out []int32) []int32 {
	ix := s.ix
	n := ix.n
	if k > n {
		k = n
	}
	res := out[:0]
	if k <= 0 {
		return res
	}
	if k == n {
		for id := 0; id < n; id++ {
			res = append(res, int32(id))
		}
		return res
	}
	sumQ := 0.0
	for t := 0; t < ix.dim && t < len(q); t++ {
		if q[t] > 0 {
			sumQ += q[t]
		}
	}
	s.touched = s.touched[:0]
	if sumQ > 0 {
		s.gen++
		if s.gen == 0 { // wrapped: invalidate every stale mark
			clear(s.mark)
			s.gen = 1
		}
		budget := float64(scanBudgetFactor * k)
		for t := 0; t < ix.dim && t < len(q); t++ {
			qt := q[t]
			if qt <= 0 || len(ix.post[t]) == 0 {
				continue
			}
			limit := int(budget*qt/sumQ) + 1
			post := ix.post[t]
			if limit > len(post) {
				limit = len(post)
			}
			for _, pe := range post[:limit] {
				c := pe.w
				if qt < c {
					c = qt
				}
				if s.mark[pe.id] != s.gen {
					s.mark[pe.id] = s.gen
					s.score[pe.id] = c
					s.touched = append(s.touched, pe.id)
				} else {
					s.score[pe.id] += c
				}
			}
		}
	}
	// Select the k best touched candidates: score descending, id ascending on
	// ties. The touched set is O(scanBudgetFactor·k + dim), so a full sort of
	// the selection buffer is cheap and keeps the result deterministic.
	s.sel = s.sel[:0]
	for _, id := range s.touched {
		s.sel = append(s.sel, scored{id: id, s: s.score[id]})
	}
	slices.SortFunc(s.sel, func(a, b scored) int {
		switch {
		case a.s > b.s:
			return -1
		case a.s < b.s:
			return 1
		case a.id < b.id:
			return -1
		case a.id > b.id:
			return 1
		default:
			return 0
		}
	})
	if len(s.sel) > k {
		s.sel = s.sel[:k]
	}
	for _, c := range s.sel {
		res = append(res, c.id)
	}
	sort.Slice(res, func(i, j int) bool { return res[i] < res[j] })
	if len(res) < k {
		res = padCandidates(res, k, n)
	}
	return res
}

// padCandidates extends a sorted ascending candidate list to length k with
// the lowest indices not already present.
func padCandidates(res []int32, k, n int) []int32 {
	have := len(res)
	next := int32(0)
	pos := 0
	for len(res) < k && next < int32(n) {
		for pos < have && res[pos] < next {
			pos++
		}
		if pos < have && res[pos] == next {
			next++
			continue
		}
		res = append(res, next)
		next++
	}
	slices.Sort(res)
	return res
}
