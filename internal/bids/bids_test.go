package bids

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/cra"
)

func randVec(rng *rand.Rand, t int) core.Vector {
	v := make(core.Vector, t)
	for i := range v {
		v[i] = rng.Float64()
	}
	return v.Normalized()
}

func randomInstance(rng *rand.Rand, p, r, t, delta int) *core.Instance {
	papers := make([]core.Paper, p)
	for i := range papers {
		papers[i] = core.Paper{Topics: randVec(rng, t)}
	}
	reviewers := make([]core.Reviewer, r)
	for i := range reviewers {
		reviewers[i] = core.Reviewer{Topics: randVec(rng, t)}
	}
	in := core.NewInstance(papers, reviewers, delta, 0)
	in.Workload = in.MinWorkload()
	return in
}

func TestLevelStringsAndWeights(t *testing.T) {
	order := []Level{Conflict, NotWilling, Neutral, Willing, Eager}
	prev := -1.0
	for _, l := range order {
		if l.String() == "" {
			t.Fatalf("missing string for %d", l)
		}
		w := l.weight()
		if w < prev {
			t.Fatalf("weights not monotone in bid level: %v", order)
		}
		prev = w
	}
	if Level(99).String() == "" {
		t.Fatal("unknown level should still render")
	}
	if Conflict.weight() != 0 || Eager.weight() != 1 {
		t.Fatal("extreme weights wrong")
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	if m.NumReviewers() != 2 || m.NumPapers() != 3 {
		t.Fatalf("dims = %d x %d", m.NumReviewers(), m.NumPapers())
	}
	if m.Get(1, 2) != Neutral {
		t.Fatal("default bid should be Neutral")
	}
	m.Set(1, 2, Eager)
	if m.Get(1, 2) != Eager {
		t.Fatal("Set/Get mismatch")
	}
	if NewMatrix(0, 0).NumPapers() != 0 {
		t.Fatal("empty matrix paper count")
	}
}

func TestValidateAndApplyConflicts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := randomInstance(rng, 3, 4, 3, 2)
	m := NewMatrix(4, 3)
	if err := m.Validate(in); err != nil {
		t.Fatal(err)
	}
	bad := NewMatrix(2, 3)
	if err := bad.Validate(in); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	m.Set(0, 1, Conflict)
	m.Set(2, 2, Conflict)
	if n := m.ApplyConflicts(in); n != 2 {
		t.Fatalf("ApplyConflicts = %d, want 2", n)
	}
	if !in.IsConflict(0, 1) || !in.IsConflict(2, 2) {
		t.Fatal("conflicts not registered")
	}
}

func TestGenerateCorrelatesWithRelevance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := randomInstance(rng, 30, 20, 8, 3)
	m := Generate(in, 0.02, 5)
	// Average relevance of Eager pairs must exceed that of NotWilling pairs.
	sum := map[Level]float64{}
	count := map[Level]int{}
	conflicts := 0
	for r := 0; r < in.NumReviewers(); r++ {
		for p := 0; p < in.NumPapers(); p++ {
			l := m.Get(r, p)
			if l == Conflict {
				conflicts++
				continue
			}
			sum[l] += core.WeightedCoverage(in.Reviewers[r].Topics, in.Papers[p].Topics)
			count[l]++
		}
	}
	if conflicts == 0 {
		t.Fatal("no conflicts generated despite positive rate")
	}
	if count[Eager] == 0 || count[NotWilling] == 0 {
		t.Skipf("degenerate draw: eager=%d notwilling=%d", count[Eager], count[NotWilling])
	}
	if sum[Eager]/float64(count[Eager]) <= sum[NotWilling]/float64(count[NotWilling]) {
		t.Fatal("eager bids are not more relevant than not-willing bids")
	}
}

func TestScores(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := randomInstance(rng, 2, 4, 3, 2)
	m := NewMatrix(4, 2)
	m.Set(0, 0, Eager)
	m.Set(1, 0, NotWilling)
	group := []int{0, 1}
	alpha := 0.7
	bonus := BonusScore(in, m, group, 0, alpha)
	want := (1 - alpha) * (1.0 + 0.1) / 2
	if math.Abs(bonus-want) > 1e-12 {
		t.Fatalf("BonusScore = %v, want %v", bonus, want)
	}
	total := TotalScore(in, m, group, 0, alpha)
	if math.Abs(total-(alpha*in.GroupScore(0, group)+bonus)) > 1e-12 {
		t.Fatalf("TotalScore inconsistent")
	}
	a := core.NewAssignment(2)
	a.Assign(0, 0)
	a.Assign(0, 1)
	if math.Abs(AssignmentScore(in, m, a, alpha)-total) > 1e-12 {
		t.Fatal("AssignmentScore should equal the single populated paper's total")
	}
}

func TestAssignRespectsConflictBidsAndConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := randomInstance(rng, 10, 8, 5, 2)
	in.Workload = in.MinWorkload() + 1
	m := Generate(in, 0.03, 9)
	a, err := Assign(in, m, 0.7, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.ValidateAssignment(a); err != nil {
		t.Fatal(err)
	}
	for p := range a.Groups {
		for _, r := range a.Groups[p] {
			if m.Get(r, p) == Conflict {
				t.Fatalf("conflict bid (r%d,p%d) assigned", r, p)
			}
		}
	}
}

func TestAssignAlphaValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := randomInstance(rng, 4, 4, 3, 2)
	m := NewMatrix(4, 4)
	if _, err := Assign(in, m, 1.5, 1); err == nil {
		t.Fatal("alpha > 1 accepted")
	}
	if _, err := Assign(in, NewMatrix(1, 1), 0.5, 1); err == nil {
		t.Fatal("mismatched matrix accepted")
	}
}

// Property: lowering alpha (weighting bids more) never decreases the bid
// satisfaction of the SDGA-with-bids assignment, and alpha=1 matches plain
// SDGA's coverage score.
func TestAssignTradeoff(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 5+rng.Intn(8), 5+rng.Intn(5), 3+rng.Intn(4), 2)
		m := Generate(in, 0, seed)
		aCoverage, err := Assign(in, m, 1.0, seed)
		if err != nil {
			return false
		}
		aBids, err := Assign(in, m, 0.0, seed)
		if err != nil {
			return false
		}
		// With alpha = 1 the result must match plain SDGA's coverage score.
		plain, err := (cra.SDGA{}).Assign(in)
		if err != nil {
			return false
		}
		if math.Abs(in.AssignmentScore(aCoverage)-in.AssignmentScore(plain)) > 1e-9 {
			return false
		}
		// Pure-bid optimisation cannot satisfy bids worse than pure-coverage
		// optimisation.
		return Satisfy(m, aBids).MeanWeight >= Satisfy(m, aCoverage).MeanWeight-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSatisfy(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, Eager)
	m.Set(1, 0, NotWilling)
	m.Set(0, 1, Willing)
	a := core.NewAssignment(2)
	a.Assign(0, 0)
	a.Assign(0, 1)
	a.Assign(1, 0)
	s := Satisfy(m, a)
	if s.Eager != 1 || s.NotWilling != 1 || s.Willing != 1 || s.Neutral != 0 {
		t.Fatalf("Satisfy = %+v", s)
	}
	want := (1.0 + 0.1 + 0.75) / 3
	if math.Abs(s.MeanWeight-want) > 1e-12 {
		t.Fatalf("MeanWeight = %v, want %v", s.MeanWeight, want)
	}
	if Satisfy(m, core.NewAssignment(2)).MeanWeight != 0 {
		t.Fatal("empty assignment should have zero mean weight")
	}
}
