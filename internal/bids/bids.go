// Package bids implements the extension sketched in the paper's conclusion
// (Section 6): combining the weighted-coverage relevance of a reviewer group
// with the reviewers' bids ("willingness") on individual papers.
//
// Bids are the standard conference-management signal (e.g. "eager",
// "willing", "reluctant", "conflict"). The package provides
//
//   - a Matrix type holding per (reviewer, paper) bid levels,
//   - a synthetic bid generator that correlates bids with topical relevance
//     (reviewers tend to bid on papers close to their expertise),
//   - BlendScore, a scoring function that mixes weighted coverage with the
//     average bid of the assigned group and remains submodular, so SDGA's
//     approximation guarantee (Appendix B, Lemma 4) still applies, and
//   - helpers to translate "conflict" bids into hard conflicts of interest.
package bids

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cra"
)

// Level is a reviewer's bid on a paper.
type Level int

// Bid levels, ordered from most to least desirable.
const (
	// Conflict marks a conflict of interest; the pair must never be assigned.
	Conflict Level = iota
	// NotWilling means the reviewer asked not to review the paper.
	NotWilling
	// Neutral is the default when no bid was entered.
	Neutral
	// Willing means the reviewer is happy to review the paper.
	Willing
	// Eager means the reviewer explicitly requested the paper.
	Eager
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case Conflict:
		return "conflict"
	case NotWilling:
		return "not-willing"
	case Neutral:
		return "neutral"
	case Willing:
		return "willing"
	case Eager:
		return "eager"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// weight maps a bid level to a preference weight in [0, 1].
func (l Level) weight() float64 {
	switch l {
	case Eager:
		return 1.0
	case Willing:
		return 0.75
	case Neutral:
		return 0.5
	case NotWilling:
		return 0.1
	default: // Conflict
		return 0
	}
}

// Matrix stores the bid of every reviewer on every paper.
type Matrix struct {
	levels [][]Level // levels[r][p]
}

// NewMatrix creates a matrix of Neutral bids for r reviewers and p papers.
func NewMatrix(r, p int) *Matrix {
	m := &Matrix{levels: make([][]Level, r)}
	for i := range m.levels {
		row := make([]Level, p)
		for j := range row {
			row[j] = Neutral
		}
		m.levels[i] = row
	}
	return m
}

// NumReviewers returns the number of reviewer rows.
func (m *Matrix) NumReviewers() int { return len(m.levels) }

// NumPapers returns the number of paper columns.
func (m *Matrix) NumPapers() int {
	if len(m.levels) == 0 {
		return 0
	}
	return len(m.levels[0])
}

// Set records reviewer r's bid on paper p.
func (m *Matrix) Set(r, p int, l Level) { m.levels[r][p] = l }

// Get returns reviewer r's bid on paper p.
func (m *Matrix) Get(r, p int) Level { return m.levels[r][p] }

// Validate checks that the matrix matches the instance dimensions.
func (m *Matrix) Validate(in *core.Instance) error {
	if m.NumReviewers() != in.NumReviewers() || m.NumPapers() != in.NumPapers() {
		return fmt.Errorf("bids: matrix is %dx%d, instance needs %dx%d",
			m.NumReviewers(), m.NumPapers(), in.NumReviewers(), in.NumPapers())
	}
	return nil
}

// ApplyConflicts registers every Conflict bid as a hard conflict of interest
// on the instance and returns the number of conflicts added.
func (m *Matrix) ApplyConflicts(in *core.Instance) int {
	n := 0
	for r := 0; r < m.NumReviewers(); r++ {
		for p := 0; p < m.NumPapers(); p++ {
			if m.levels[r][p] == Conflict {
				in.AddConflict(r, p)
				n++
			}
		}
	}
	return n
}

// Generate draws a synthetic bid matrix correlated with topical relevance:
// reviewers are likely to bid Eager/Willing on papers they cover well and
// NotWilling on papers far from their expertise; a small fraction of pairs
// become conflicts (co-authorships, same institution).
func Generate(in *core.Instance, conflictRate float64, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(in.NumReviewers(), in.NumPapers())
	for r := 0; r < in.NumReviewers(); r++ {
		for p := 0; p < in.NumPapers(); p++ {
			if rng.Float64() < conflictRate {
				m.Set(r, p, Conflict)
				continue
			}
			relevance := core.WeightedCoverage(in.Reviewers[r].Topics, in.Papers[p].Topics)
			u := rng.Float64()
			switch {
			case relevance > 0.7 && u < 0.6:
				m.Set(r, p, Eager)
			case relevance > 0.5 && u < 0.6:
				m.Set(r, p, Willing)
			case relevance < 0.25 && u < 0.5:
				m.Set(r, p, NotWilling)
			default:
				m.Set(r, p, Neutral)
			}
		}
	}
	return m
}

// BonusScore returns the bid bonus of assigning the group to paper p:
// (1−alpha)/δp times the summed bid weight of the group. Dividing by δp keeps
// the bonus of a full group in [0, 1−alpha], commensurate with the coverage
// term; because the bonus is a sum over the group members it is modular, so
// the blended objective stays submodular and monotone (Lemma 4) and the
// SDGA/Greedy approximation guarantees carry over.
func BonusScore(in *core.Instance, m *Matrix, group []int, p int, alpha float64) float64 {
	if in.GroupSize == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range group {
		sum += m.Get(r, p).weight()
	}
	return (1 - alpha) * sum / float64(in.GroupSize)
}

// TotalScore blends topical coverage and bids for one paper's group:
// alpha·c(g, p) + BonusScore.
func TotalScore(in *core.Instance, m *Matrix, group []int, p int, alpha float64) float64 {
	return alpha*in.GroupScore(p, group) + BonusScore(in, m, group, p, alpha)
}

// AssignmentScore blends coverage and bids over a full assignment.
func AssignmentScore(in *core.Instance, m *Matrix, a *core.Assignment, alpha float64) float64 {
	s := 0.0
	for p := range a.Groups {
		s += TotalScore(in, m, a.Groups[p], p, alpha)
	}
	return s
}

// Assign computes a bid-aware conference assignment: SDGA driven by the
// blended marginal gain alpha·coverage-gain + (1−alpha)·bidWeight/δp.
// Conflict bids are enforced as hard conflicts of interest. Alpha = 1 reduces
// to plain WGRAP, alpha = 0 ignores topical coverage entirely.
func Assign(in *core.Instance, m *Matrix, alpha float64, seed int64) (*core.Assignment, error) {
	if err := m.Validate(in); err != nil {
		return nil, err
	}
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("bids: alpha %v outside [0,1]", alpha)
	}
	work := *in
	m.ApplyConflicts(&work)
	delta := float64(work.GroupSize)
	alg := cra.SDGA{
		PairBonus: func(r, p int) float64 {
			return (1 - alpha) * m.Get(r, p).weight() / delta
		},
		GainWeight: alpha,
	}
	return alg.Assign(&work)
}

// Satisfaction summarises how well an assignment respects the bids.
type Satisfaction struct {
	// Eager, Willing, Neutral, NotWilling count the assigned pairs at each
	// bid level (Conflict pairs are rejected by the algorithms).
	Eager, Willing, Neutral, NotWilling int
	// MeanWeight is the average bid weight of the assigned pairs.
	MeanWeight float64
}

// Satisfy computes the bid satisfaction of an assignment.
func Satisfy(m *Matrix, a *core.Assignment) Satisfaction {
	var s Satisfaction
	total, n := 0.0, 0
	for p := range a.Groups {
		for _, r := range a.Groups[p] {
			level := m.Get(r, p)
			switch level {
			case Eager:
				s.Eager++
			case Willing:
				s.Willing++
			case Neutral:
				s.Neutral++
			case NotWilling:
				s.NotWilling++
			}
			total += level.weight()
			n++
		}
	}
	if n > 0 {
		s.MeanWeight = total / float64(n)
	}
	return s
}
