package core

import (
	"errors"
	"fmt"
)

// Reviewer is a member of the candidate reviewer pool. Topics is the
// T-dimensional expertise vector extracted from the reviewer's publication
// record (Section 2.4). HIndex is optional metadata used by the h-index
// scaling experiment (Figure 21(d)).
type Reviewer struct {
	ID     string
	Name   string
	Topics Vector
	HIndex int
}

// Paper is a submission. Topics is the T-dimensional content vector of the
// paper (Section 2.4).
type Paper struct {
	ID     string
	Title  string
	Topics Vector
}

// Conflict identifies a reviewer-paper pair that must never be assigned
// (conflict of interest). Indices refer to positions in Instance.Reviewers
// and Instance.Papers.
type Conflict struct {
	Reviewer int
	Paper    int
}

// Instance bundles everything a WGRAP solver needs: the papers, the reviewer
// pool, the group size constraint δp, the reviewer workload δr, the conflicts
// of interest and the scoring function.
type Instance struct {
	Papers    []Paper
	Reviewers []Reviewer

	// GroupSize is δp: the exact number of reviewers every paper receives.
	GroupSize int
	// Workload is δr: the maximum number of papers per reviewer.
	Workload int

	// Score is the per-pair / per-group coverage scoring function. Nil means
	// WeightedCoverage (Definition 1).
	Score ScoreFunc

	conflicts map[Conflict]struct{}

	// version counts structural mutations made through the Instance's
	// methods (AddConflict, AddReviewer). Long-lived solver sessions use it
	// to detect instance drift and invalidate warm state conservatively.
	version uint64
}

// NewInstance builds an instance with the weighted coverage scoring function
// and no conflicts of interest.
func NewInstance(papers []Paper, reviewers []Reviewer, groupSize, workload int) *Instance {
	return &Instance{
		Papers:    papers,
		Reviewers: reviewers,
		GroupSize: groupSize,
		Workload:  workload,
		Score:     WeightedCoverage,
	}
}

// NumPapers returns P.
func (in *Instance) NumPapers() int { return len(in.Papers) }

// NumReviewers returns R.
func (in *Instance) NumReviewers() int { return len(in.Reviewers) }

// NumTopics returns T, taken from the first paper or reviewer vector.
func (in *Instance) NumTopics() int {
	if len(in.Papers) > 0 {
		return in.Papers[0].Topics.Dim()
	}
	if len(in.Reviewers) > 0 {
		return in.Reviewers[0].Topics.Dim()
	}
	return 0
}

// ScoreFn returns the configured scoring function, defaulting to
// WeightedCoverage when none was set.
func (in *Instance) ScoreFn() ScoreFunc {
	if in.Score == nil {
		return WeightedCoverage
	}
	return in.Score
}

// AddConflict registers a conflict of interest between reviewer r and paper p.
func (in *Instance) AddConflict(r, p int) {
	if in.conflicts == nil {
		in.conflicts = make(map[Conflict]struct{})
	}
	in.conflicts[Conflict{Reviewer: r, Paper: p}] = struct{}{}
	in.version++
}

// AddReviewer appends a reviewer to the pool and returns its index.
func (in *Instance) AddReviewer(r Reviewer) int {
	in.Reviewers = append(in.Reviewers, r)
	in.version++
	return len(in.Reviewers) - 1
}

// Version counts the structural mutations made through the instance's
// methods; it changes whenever a conflict or reviewer is added. Sessions
// record it to detect edits and invalidate warm solver state.
func (in *Instance) Version() uint64 { return in.version }

// Clone returns a session-private copy of the instance: the paper and
// reviewer slices and the conflict set are copied, so later mutations of the
// original (or of the clone) do not leak across. Topic vectors are shared —
// they are treated as immutable throughout the library.
func (in *Instance) Clone() *Instance {
	c := &Instance{
		Papers:    append([]Paper(nil), in.Papers...),
		Reviewers: append([]Reviewer(nil), in.Reviewers...),
		GroupSize: in.GroupSize,
		Workload:  in.Workload,
		Score:     in.Score,
		version:   in.version,
	}
	if in.conflicts != nil {
		c.conflicts = make(map[Conflict]struct{}, len(in.conflicts))
		for k := range in.conflicts {
			c.conflicts[k] = struct{}{}
		}
	}
	return c
}

// NonConflicting returns how many reviewers may review paper p. Long-lived
// sessions keep their own incremental per-paper counts; this scan is for
// one-shot callers.
func (in *Instance) NonConflicting(p int) int {
	n := in.NumReviewers()
	for c := range in.conflicts {
		if c.Paper == p && c.Reviewer >= 0 && c.Reviewer < in.NumReviewers() {
			n--
		}
	}
	return n
}

// IsConflict reports whether assigning reviewer r to paper p is forbidden.
func (in *Instance) IsConflict(r, p int) bool {
	if in.conflicts == nil {
		return false
	}
	_, ok := in.conflicts[Conflict{Reviewer: r, Paper: p}]
	return ok
}

// Conflicts returns all registered conflicts of interest in unspecified order.
func (in *Instance) Conflicts() []Conflict {
	out := make([]Conflict, 0, len(in.conflicts))
	for c := range in.conflicts {
		out = append(out, c)
	}
	return out
}

// MinWorkload returns the smallest feasible reviewer workload
// ⌈P·δp / R⌉ (Section 5.2 uses this as the default δr).
func (in *Instance) MinWorkload() int {
	if in.NumReviewers() == 0 {
		return 0
	}
	need := in.NumPapers() * in.GroupSize
	return (need + in.NumReviewers() - 1) / in.NumReviewers()
}

// StageWorkload returns the per-stage reviewer workload ⌈δr/δp⌉ used by the
// Stage Deepening Greedy Algorithm (Definition 9).
func (in *Instance) StageWorkload() int {
	if in.GroupSize == 0 {
		return 0
	}
	return (in.Workload + in.GroupSize - 1) / in.GroupSize
}

// Validate checks that the instance is well formed: consistent vector
// dimensions, positive constraints and enough total reviewer capacity
// (R·δr ≥ P·δp as assumed in Section 2.2).
func (in *Instance) Validate() error {
	if len(in.Papers) == 0 {
		return errors.New("core: instance has no papers")
	}
	if len(in.Reviewers) == 0 {
		return errors.New("core: instance has no reviewers")
	}
	if in.GroupSize <= 0 {
		return fmt.Errorf("core: group size δp must be positive, got %d", in.GroupSize)
	}
	if in.Workload <= 0 {
		return fmt.Errorf("core: workload δr must be positive, got %d", in.Workload)
	}
	t := in.NumTopics()
	if t == 0 {
		return errors.New("core: topic dimension is zero")
	}
	for i, p := range in.Papers {
		if p.Topics.Dim() != t {
			return fmt.Errorf("core: paper %d has %d topics, want %d", i, p.Topics.Dim(), t)
		}
	}
	for i, r := range in.Reviewers {
		if r.Topics.Dim() != t {
			return fmt.Errorf("core: reviewer %d has %d topics, want %d", i, r.Topics.Dim(), t)
		}
	}
	if in.GroupSize > in.NumReviewers() {
		return fmt.Errorf("core: group size δp=%d exceeds reviewer pool R=%d", in.GroupSize, in.NumReviewers())
	}
	if in.NumReviewers()*in.Workload < in.NumPapers()*in.GroupSize {
		return fmt.Errorf("core: insufficient capacity: R·δr=%d < P·δp=%d",
			in.NumReviewers()*in.Workload, in.NumPapers()*in.GroupSize)
	}
	for c := range in.conflicts {
		if c.Reviewer < 0 || c.Reviewer >= in.NumReviewers() || c.Paper < 0 || c.Paper >= in.NumPapers() {
			return fmt.Errorf("core: conflict (%d,%d) out of range", c.Reviewer, c.Paper)
		}
	}
	return nil
}

// JournalInstance builds a single-paper instance (the Journal Reviewer
// Assignment special case of Definition 6) that shares the reviewer pool,
// scoring function and conflicts of paper p in the receiver.
func (in *Instance) JournalInstance(p int) *Instance {
	ji := &Instance{
		Papers:    []Paper{in.Papers[p]},
		Reviewers: in.Reviewers,
		GroupSize: in.GroupSize,
		Workload:  1,
		Score:     in.Score,
	}
	for c := range in.conflicts {
		if c.Paper == p {
			ji.AddConflict(c.Reviewer, 0)
		}
	}
	return ji
}
