package core

// ScoreFunc scores how well an expertise vector g (a single reviewer or the
// aggregated expertise of a reviewer group, Definition 2) covers a paper
// vector p. All scoring functions studied in the paper normalise by the sum
// of the paper vector so that scores of a fully covered paper equal 1.
type ScoreFunc func(g, p Vector) float64

// WeightedCoverage is the default quality measure of the paper
// (Definition 1): sum_t min(g[t], p[t]) / sum_t p[t].
func WeightedCoverage(g, p Vector) float64 {
	den := p.Sum()
	if den == 0 {
		return 0
	}
	return MinSum(g, p) / den
}

// ReviewerCoverage is the winner-takes-all alternative cR of Appendix B: a
// topic contributes the reviewer's weight g[t] whenever g[t] >= p[t].
func ReviewerCoverage(g, p Vector) float64 {
	den := p.Sum()
	if den == 0 {
		return 0
	}
	num := 0.0
	for t, x := range g {
		if x >= p[t] {
			num += x
		}
	}
	return num / den
}

// PaperCoverage is the alternative cP of Appendix B: a topic contributes the
// paper's weight p[t] whenever the group fully covers it (g[t] >= p[t]).
func PaperCoverage(g, p Vector) float64 {
	den := p.Sum()
	if den == 0 {
		return 0
	}
	num := 0.0
	for t, x := range g {
		if x >= p[t] {
			num += p[t]
		}
	}
	return num / den
}

// DotProduct is the alternative cD of Appendix B: the inner product of the
// group expertise and the paper vector, normalised by the paper weight.
func DotProduct(g, p Vector) float64 {
	den := p.Sum()
	if den == 0 {
		return 0
	}
	return Dot(g, p) / den
}

// ScoringFunctions maps the names used in the paper (Table 5) to the
// corresponding implementations; convenient for CLIs and experiments.
var ScoringFunctions = map[string]ScoreFunc{
	"weighted":    WeightedCoverage,
	"reviewer":    ReviewerCoverage,
	"paper":       PaperCoverage,
	"dot-product": DotProduct,
}

// GroupVector aggregates the expertise of the reviewers with the given
// indices into the group vector of Definition 2 (per-topic maximum). An empty
// group yields the zero vector.
func (in *Instance) GroupVector(group []int) Vector {
	g := make(Vector, in.NumTopics())
	for _, r := range group {
		g.MaxInPlace(in.Reviewers[r].Topics)
	}
	return g
}

// PairScore returns c(r, p): the score of a single reviewer r for paper p.
func (in *Instance) PairScore(r, p int) float64 {
	return in.ScoreFn()(in.Reviewers[r].Topics, in.Papers[p].Topics)
}

// GroupScore returns c(g, p) for the group of reviewer indices assigned to
// paper p.
func (in *Instance) GroupScore(p int, group []int) float64 {
	return in.ScoreFn()(in.GroupVector(group), in.Papers[p].Topics)
}

// Gain returns the marginal gain of adding reviewer r to the running group of
// paper p (Definition 8): c(g ∪ {r}, p) − c(g, p).
func (in *Instance) Gain(p int, group []int, r int) float64 {
	g := in.GroupVector(group)
	base := in.ScoreFn()(g, in.Papers[p].Topics)
	g.MaxInPlace(in.Reviewers[r].Topics)
	return in.ScoreFn()(g, in.Papers[p].Topics) - base
}

// GainWithVector is the allocation-light variant of Gain for callers that
// maintain the running group vector themselves: it returns the marginal gain
// of merging reviewer r into group vector g for paper p, without modifying g.
func (in *Instance) GainWithVector(p int, g Vector, r int) float64 {
	score := in.ScoreFn()
	paper := in.Papers[p].Topics
	base := score(g, paper)
	merged := Max(g, in.Reviewers[r].Topics)
	return score(merged, paper) - base
}
