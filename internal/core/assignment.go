package core

import (
	"fmt"
	"sort"
)

// Assignment holds, for every paper index, the set of reviewer indices
// assigned to it. Assignments are built incrementally by the solvers; use
// Instance.ValidateAssignment to check the WGRAP constraints of
// Definition 3 and Instance.AssignmentScore for the objective value.
type Assignment struct {
	// Groups[p] lists the reviewer indices assigned to paper p.
	Groups [][]int
}

// NewAssignment creates an empty assignment for p papers.
func NewAssignment(p int) *Assignment {
	return &Assignment{Groups: make([][]int, p)}
}

// Clone returns a deep copy.
func (a *Assignment) Clone() *Assignment {
	c := NewAssignment(len(a.Groups))
	for p, g := range a.Groups {
		c.Groups[p] = append([]int(nil), g...)
	}
	return c
}

// CloneInto deep-copies a into dst, reusing dst's group slices when they
// have capacity — the allocation-free variant of Clone for hot loops that
// re-derive a scratch assignment from a base one every iteration (the
// refinement's removal phase).
func (a *Assignment) CloneInto(dst *Assignment) {
	if cap(dst.Groups) < len(a.Groups) {
		dst.Groups = make([][]int, len(a.Groups))
	} else {
		dst.Groups = dst.Groups[:len(a.Groups)]
	}
	for p, g := range a.Groups {
		dst.Groups[p] = append(dst.Groups[p][:0], g...)
	}
}

// Assign adds reviewer r to paper p. It does not check constraints.
func (a *Assignment) Assign(p, r int) {
	a.Groups[p] = append(a.Groups[p], r)
}

// Remove deletes reviewer r from paper p and reports whether it was present.
func (a *Assignment) Remove(p, r int) bool {
	g := a.Groups[p]
	for i, x := range g {
		if x == r {
			a.Groups[p] = append(g[:i], g[i+1:]...)
			return true
		}
	}
	return false
}

// Contains reports whether reviewer r is assigned to paper p.
func (a *Assignment) Contains(p, r int) bool {
	for _, x := range a.Groups[p] {
		if x == r {
			return true
		}
	}
	return false
}

// Group returns the reviewers assigned to paper p.
func (a *Assignment) Group(p int) []int { return a.Groups[p] }

// Pairs returns the total number of (reviewer, paper) pairs in the assignment.
func (a *Assignment) Pairs() int {
	n := 0
	for _, g := range a.Groups {
		n += len(g)
	}
	return n
}

// ReviewerLoads returns, for a pool of r reviewers, how many papers each
// reviewer has been assigned.
func (a *Assignment) ReviewerLoads(r int) []int {
	loads := make([]int, r)
	for _, g := range a.Groups {
		for _, rev := range g {
			loads[rev]++
		}
	}
	return loads
}

// Sorted returns a copy of the assignment with every group sorted by
// reviewer index; useful for deterministic output and comparisons in tests.
func (a *Assignment) Sorted() *Assignment {
	c := a.Clone()
	for _, g := range c.Groups {
		sort.Ints(g)
	}
	return c
}

// AssignmentScore computes the WGRAP objective of Definition 3:
// sum over papers of the coverage score of the assigned group.
func (in *Instance) AssignmentScore(a *Assignment) float64 {
	s := 0.0
	for p := range in.Papers {
		s += in.GroupScore(p, a.Groups[p])
	}
	return s
}

// PaperScores returns the per-paper coverage scores of the assignment.
func (in *Instance) PaperScores(a *Assignment) []float64 {
	out := make([]float64, in.NumPapers())
	for p := range in.Papers {
		out[p] = in.GroupScore(p, a.Groups[p])
	}
	return out
}

// ValidateAssignment checks the WGRAP constraints of Definition 3: every
// paper has exactly δp distinct reviewers, no reviewer exceeds δr papers and
// no conflicting pair is assigned.
func (in *Instance) ValidateAssignment(a *Assignment) error {
	if len(a.Groups) != in.NumPapers() {
		return fmt.Errorf("core: assignment covers %d papers, want %d", len(a.Groups), in.NumPapers())
	}
	loads := make([]int, in.NumReviewers())
	for p, g := range a.Groups {
		if len(g) != in.GroupSize {
			return fmt.Errorf("core: paper %d has %d reviewers, want δp=%d", p, len(g), in.GroupSize)
		}
		seen := make(map[int]bool, len(g))
		for _, r := range g {
			if r < 0 || r >= in.NumReviewers() {
				return fmt.Errorf("core: paper %d has out-of-range reviewer %d", p, r)
			}
			if seen[r] {
				return fmt.Errorf("core: paper %d has duplicate reviewer %d", p, r)
			}
			seen[r] = true
			if in.IsConflict(r, p) {
				return fmt.Errorf("core: conflicting pair (reviewer %d, paper %d) assigned", r, p)
			}
			loads[r]++
		}
	}
	for r, l := range loads {
		if l > in.Workload {
			return fmt.Errorf("core: reviewer %d assigned %d papers, exceeds δr=%d", r, l, in.Workload)
		}
	}
	return nil
}

// ValidatePartial checks the constraints that must hold for a partially
// built assignment: group sizes do not exceed δp, loads do not exceed δr, no
// duplicates and no conflicts.
func (in *Instance) ValidatePartial(a *Assignment) error {
	if len(a.Groups) != in.NumPapers() {
		return fmt.Errorf("core: assignment covers %d papers, want %d", len(a.Groups), in.NumPapers())
	}
	loads := make([]int, in.NumReviewers())
	for p, g := range a.Groups {
		if len(g) > in.GroupSize {
			return fmt.Errorf("core: paper %d has %d reviewers, exceeds δp=%d", p, len(g), in.GroupSize)
		}
		seen := make(map[int]bool, len(g))
		for _, r := range g {
			if r < 0 || r >= in.NumReviewers() {
				return fmt.Errorf("core: paper %d has out-of-range reviewer %d", p, r)
			}
			if seen[r] {
				return fmt.Errorf("core: paper %d has duplicate reviewer %d", p, r)
			}
			seen[r] = true
			if in.IsConflict(r, p) {
				return fmt.Errorf("core: conflicting pair (reviewer %d, paper %d) assigned", r, p)
			}
			loads[r]++
		}
	}
	for r, l := range loads {
		if l > in.Workload {
			return fmt.Errorf("core: reviewer %d assigned %d papers, exceeds δr=%d", r, l, in.Workload)
		}
	}
	return nil
}
