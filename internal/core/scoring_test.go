package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Table 6 of the paper: the toy example comparing the four scoring functions.
func TestScoringFunctionsTable6(t *testing.T) {
	p := Vector{0.6, 0.4}
	r1 := Vector{0.9, 0.1}
	r2 := Vector{0.5, 0.5}

	cases := []struct {
		name string
		fn   ScoreFunc
		r1   float64
		r2   float64
	}{
		{"reviewer coverage", ReviewerCoverage, 0.9, 0.5},
		{"paper coverage", PaperCoverage, 0.6, 0.4},
		{"dot-product", DotProduct, 0.58, 0.5},
		{"weighted coverage", WeightedCoverage, 0.7, 0.9},
	}
	for _, c := range cases {
		if got := c.fn(r1, p); !almostEqual(got, c.r1) {
			t.Errorf("%s(r1,p) = %v, want %v", c.name, got, c.r1)
		}
		if got := c.fn(r2, p); !almostEqual(got, c.r2) {
			t.Errorf("%s(r2,p) = %v, want %v", c.name, got, c.r2)
		}
	}
}

// Figure 3(a)/5(a) example from the paper: single-reviewer weighted coverage.
func TestWeightedCoveragePaperExample(t *testing.T) {
	p := Vector{0.35, 0.45, 0.2}
	r1 := Vector{0.15, 0.75, 0.1}
	r2 := Vector{0.75, 0.15, 0.1}
	r3 := Vector{0.1, 0.35, 0.55}
	if got := WeightedCoverage(r1, p); !almostEqual(got, 0.7) {
		t.Errorf("c(r1,p) = %v, want 0.7", got)
	}
	if got := WeightedCoverage(r2, p); !almostEqual(got, 0.6) {
		t.Errorf("c(r2,p) = %v, want 0.6", got)
	}
	if got := WeightedCoverage(r3, p); !almostEqual(got, 0.65) {
		t.Errorf("c(r3,p) = %v, want 0.65", got)
	}
}

func TestZeroPaperVector(t *testing.T) {
	p := Vector{0, 0}
	g := Vector{0.5, 0.5}
	for name, fn := range ScoringFunctions {
		if got := fn(g, p); got != 0 {
			t.Errorf("%s with zero paper vector = %v, want 0", name, got)
		}
	}
}

func TestGroupVector(t *testing.T) {
	in := smallInstance()
	g := in.GroupVector([]int{0, 1})
	want := Vector{0.75, 0.75, 0.1}
	if !Equal(g, want, 1e-12) {
		t.Fatalf("GroupVector = %v, want %v", g, want)
	}
	empty := in.GroupVector(nil)
	if !Equal(empty, Vector{0, 0, 0}, 0) {
		t.Fatalf("empty group vector = %v", empty)
	}
}

func TestGroupScoreAndGain(t *testing.T) {
	in := smallInstance()
	// c({r1}, p) = 0.7, c({r1,r2}, p) = min(.75,.35)+min(.75,.45)+min(.1,.2) = .35+.45+.1 = .9
	if got := in.GroupScore(0, []int{0}); !almostEqual(got, 0.7) {
		t.Fatalf("GroupScore({r1}) = %v", got)
	}
	if got := in.GroupScore(0, []int{0, 1}); !almostEqual(got, 0.9) {
		t.Fatalf("GroupScore({r1,r2}) = %v", got)
	}
	if got := in.Gain(0, []int{0}, 1); !almostEqual(got, 0.2) {
		t.Fatalf("Gain = %v, want 0.2", got)
	}
	g := in.GroupVector([]int{0})
	if got := in.GainWithVector(0, g, 1); !almostEqual(got, 0.2) {
		t.Fatalf("GainWithVector = %v, want 0.2", got)
	}
	// GainWithVector must not modify g.
	if !Equal(g, in.GroupVector([]int{0}), 0) {
		t.Fatal("GainWithVector modified the group vector")
	}
}

// smallInstance is the 3-reviewer, 1-paper example used throughout Section 3.
func smallInstance() *Instance {
	papers := []Paper{{ID: "p", Topics: Vector{0.35, 0.45, 0.2}}}
	reviewers := []Reviewer{
		{ID: "r1", Topics: Vector{0.15, 0.75, 0.1}},
		{ID: "r2", Topics: Vector{0.75, 0.15, 0.1}},
		{ID: "r3", Topics: Vector{0.1, 0.35, 0.55}},
	}
	return NewInstance(papers, reviewers, 2, 1)
}

// randomInstance builds a random, normalised instance for property tests.
func randomInstance(rng *rand.Rand, p, r, t int) *Instance {
	papers := make([]Paper, p)
	for i := range papers {
		papers[i] = Paper{Topics: randomVector(rng, t).Normalized()}
	}
	reviewers := make([]Reviewer, r)
	for i := range reviewers {
		reviewers[i] = Reviewer{Topics: randomVector(rng, t).Normalized()}
	}
	gs := 1 + rng.Intn(min(3, r))
	wl := 1 + rng.Intn(3)
	for r*wl < p*gs {
		wl++
	}
	return NewInstance(papers, reviewers, gs, wl)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Property: every scoring function is bounded in [0, something sane] and the
// weighted/paper coverage are bounded by 1; scores are monotone when the
// group grows (condition C.2 of Lemma 4).
func TestScoreBoundsAndMonotonicity(t *testing.T) {
	fns := []struct {
		name    string
		fn      ScoreFunc
		atMost1 bool
	}{
		{"weighted", WeightedCoverage, true},
		{"paper", PaperCoverage, true},
		{"reviewer", ReviewerCoverage, false},
		{"dot-product", DotProduct, false},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tdim := 2 + rng.Intn(20)
		p := randomVector(rng, tdim).Normalized()
		g := randomVector(rng, tdim).Normalized()
		extra := randomVector(rng, tdim).Normalized()
		grown := Max(g, extra)
		for _, c := range fns {
			s := c.fn(g, p)
			if s < -1e-12 {
				return false
			}
			if c.atMost1 && s > 1+1e-9 {
				return false
			}
			if c.fn(grown, p) < s-1e-9 { // monotone in group expertise
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property (Lemma 4): the assignment objective is submodular for all four
// scoring functions. We test the equivalent diminishing-returns form on a
// single paper: gain of adding r to a superset group is never larger than the
// gain of adding r to a subset group.
func TestSubmodularityAllScoringFunctions(t *testing.T) {
	for name, fn := range ScoringFunctions {
		fn := fn
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			tdim := 2 + rng.Intn(15)
			p := randomVector(rng, tdim).Normalized()
			sub := randomVector(rng, tdim).Normalized()  // group vector of the subset
			addl := randomVector(rng, tdim).Normalized() // the extra reviewer making it a superset
			r := randomVector(rng, tdim).Normalized()    // the reviewer whose gain we measure
			super := Max(sub, addl)

			gainSub := fn(Max(sub, r), p) - fn(sub, p)
			gainSuper := fn(Max(super, r), p) - fn(super, p)
			return gainSuper <= gainSub+1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
			t.Errorf("submodularity violated for %s: %v", name, err)
		}
	}
}

// Property: weighted coverage of a group is always at least the best single
// member's coverage and at most the sum of members' coverages.
func TestGroupScoreBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 1, 3+rng.Intn(5), 2+rng.Intn(10))
		k := 1 + rng.Intn(3)
		group := rng.Perm(in.NumReviewers())[:k]
		gs := in.GroupScore(0, group)
		best, sum := 0.0, 0.0
		for _, r := range group {
			s := in.PairScore(r, 0)
			if s > best {
				best = s
			}
			sum += s
		}
		return gs >= best-1e-9 && gs <= sum+1e-9 && gs <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGainNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, 2, 4, 2+rng.Intn(10))
		group := []int{rng.Intn(4)}
		r := rng.Intn(4)
		return in.Gain(rng.Intn(2), group, r) >= -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDotProductSymmetryWithNormalisedPaper(t *testing.T) {
	p := Vector{0.5, 0.5}
	g := Vector{0.25, 0.75}
	want := (0.5*0.25 + 0.5*0.75) / 1.0
	if got := DotProduct(g, p); math.Abs(got-want) > 1e-12 {
		t.Fatalf("DotProduct = %v, want %v", got, want)
	}
}
