// Package core defines the data model of the Weighted-coverage Group-based
// Reviewer Assignment Problem (WGRAP): topic vectors, reviewers, papers,
// reviewer groups, assignments, workload constraints, conflicts of interest
// and the family of coverage scoring functions studied in the paper
// (weighted coverage, reviewer coverage, paper coverage and dot-product).
//
// All algorithm packages (internal/jra, internal/cra, ...) operate on the
// types defined here and address reviewers and papers by their index in an
// Instance, which keeps the hot paths allocation free.
package core

import (
	"fmt"
	"math"
	"strings"
)

// Vector is a T-dimensional topic vector. Entry t holds the relevance of a
// reviewer's expertise or a paper's content to topic t. Vectors are usually
// normalised so that their entries sum to one, but none of the scoring
// functions require it (Definition 1 keeps the normalising denominator).
type Vector []float64

// Dim returns the number of topics T.
func (v Vector) Dim() int { return len(v) }

// Sum returns the sum of all entries.
func (v Vector) Sum() float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Clone returns a deep copy of the vector.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Normalized returns a copy of v scaled so its entries sum to one. A zero
// vector is returned unchanged.
func (v Vector) Normalized() Vector {
	s := v.Sum()
	c := v.Clone()
	if s <= 0 {
		return c
	}
	for i := range c {
		c[i] /= s
	}
	return c
}

// Scale returns a copy of v with every entry multiplied by f.
func (v Vector) Scale(f float64) Vector {
	c := make(Vector, len(v))
	for i, x := range v {
		c[i] = x * f
	}
	return c
}

// MaxInPlace raises every entry of v to at least the corresponding entry of
// o. It implements the group-expertise aggregation of Definition 2
// incrementally. The two vectors must have the same dimension.
func (v Vector) MaxInPlace(o Vector) {
	for i, x := range o {
		if x > v[i] {
			v[i] = x
		}
	}
}

// Max returns the entry-wise maximum of a and b as a new vector.
func Max(a, b Vector) Vector {
	c := a.Clone()
	c.MaxInPlace(b)
	return c
}

// Dot returns the inner product of a and b.
func Dot(a, b Vector) float64 {
	s := 0.0
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// MinSum returns sum_t min(a[t], b[t]), the numerator of the weighted
// coverage score (Definition 1).
func MinSum(a, b Vector) float64 {
	s := 0.0
	for i, x := range a {
		if y := b[i]; y < x {
			s += y
		} else {
			s += x
		}
	}
	return s
}

// TopTopics returns the indices of the k largest entries of v in descending
// order of weight. Ties are broken by topic index.
func (v Vector) TopTopics(k int) []int {
	if k > len(v) {
		k = len(v)
	}
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	// Selection of the k largest; T is small (tens) so O(kT) is fine.
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if v[idx[j]] > v[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}

// Equal reports whether a and b have the same dimension and their entries
// differ by at most eps.
func Equal(a, b Vector, eps float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > eps {
			return false
		}
	}
	return true
}

// String renders the vector with three decimals, e.g. "[0.350 0.450 0.200]".
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, x := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.3f", x)
	}
	b.WriteByte(']')
	return b.String()
}
