package core

import (
	"math/rand"
	"strings"
	"testing"
)

func conferenceInstance() *Instance {
	// The 3-reviewer / 3-paper example of Section 4.2.
	reviewers := []Reviewer{
		{ID: "r1", Topics: Vector{0.1, 0.5, 0.4}},
		{ID: "r2", Topics: Vector{1, 0, 0}},
		{ID: "r3", Topics: Vector{0, 1, 0}},
	}
	papers := []Paper{
		{ID: "p1", Topics: Vector{0.6, 0, 0.4}},
		{ID: "p2", Topics: Vector{0.5, 0.5, 0}},
		{ID: "p3", Topics: Vector{0.5, 0.5, 0}},
	}
	return NewInstance(papers, reviewers, 2, 2)
}

func TestInstanceBasics(t *testing.T) {
	in := conferenceInstance()
	if in.NumPapers() != 3 || in.NumReviewers() != 3 || in.NumTopics() != 3 {
		t.Fatalf("sizes = %d/%d/%d", in.NumPapers(), in.NumReviewers(), in.NumTopics())
	}
	if err := in.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := in.MinWorkload(); got != 2 {
		t.Fatalf("MinWorkload = %d, want 2", got)
	}
	if got := in.StageWorkload(); got != 1 {
		t.Fatalf("StageWorkload = %d, want 1", got)
	}
}

func TestInstanceValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Instance)
		want   string
	}{
		{"no papers", func(in *Instance) { in.Papers = nil }, "no papers"},
		{"no reviewers", func(in *Instance) { in.Reviewers = nil }, "no reviewers"},
		{"bad group size", func(in *Instance) { in.GroupSize = 0 }, "group size"},
		{"bad workload", func(in *Instance) { in.Workload = -1 }, "workload"},
		{"dim mismatch paper", func(in *Instance) { in.Papers[1].Topics = Vector{1} }, "paper 1"},
		{"dim mismatch reviewer", func(in *Instance) { in.Reviewers[2].Topics = Vector{1} }, "reviewer 2"},
		{"group larger than pool", func(in *Instance) { in.GroupSize = 9 }, "exceeds reviewer pool"},
		{"capacity", func(in *Instance) { in.Workload = 1 }, "insufficient capacity"},
		{"conflict range", func(in *Instance) { in.AddConflict(99, 0) }, "out of range"},
	}
	for _, c := range cases {
		in := conferenceInstance()
		c.mutate(in)
		err := in.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestConflicts(t *testing.T) {
	in := conferenceInstance()
	if in.IsConflict(0, 0) {
		t.Fatal("unexpected conflict")
	}
	in.AddConflict(0, 1)
	if !in.IsConflict(0, 1) || in.IsConflict(1, 0) {
		t.Fatal("conflict lookup wrong")
	}
	if got := len(in.Conflicts()); got != 1 {
		t.Fatalf("Conflicts() returned %d entries", got)
	}
}

func TestJournalInstance(t *testing.T) {
	in := conferenceInstance()
	in.AddConflict(1, 2)
	in.AddConflict(2, 0)
	ji := in.JournalInstance(2)
	if ji.NumPapers() != 1 || ji.Papers[0].ID != "p3" {
		t.Fatalf("JournalInstance paper = %+v", ji.Papers)
	}
	if !ji.IsConflict(1, 0) {
		t.Fatal("conflict of the selected paper not carried over")
	}
	if ji.IsConflict(2, 0) {
		t.Fatal("conflict of a different paper leaked into journal instance")
	}
	if ji.Workload != 1 {
		t.Fatalf("journal workload = %d, want 1", ji.Workload)
	}
}

func TestScoreFnDefault(t *testing.T) {
	in := conferenceInstance()
	in.Score = nil
	if got := in.PairScore(0, 1); !almostEqual(got, 0.6) {
		t.Fatalf("default PairScore = %v, want 0.6", got)
	}
	in.Score = DotProduct
	if got := in.ScoreFn()(Vector{1, 0, 0}, Vector{0.5, 0.5, 0}); !almostEqual(got, 0.5) {
		t.Fatalf("custom ScoreFn not used, got %v", got)
	}
}

func TestAssignmentBasics(t *testing.T) {
	a := NewAssignment(3)
	a.Assign(0, 2)
	a.Assign(0, 1)
	a.Assign(1, 2)
	if !a.Contains(0, 2) || a.Contains(2, 0) {
		t.Fatal("Contains wrong")
	}
	if a.Pairs() != 3 {
		t.Fatalf("Pairs = %d", a.Pairs())
	}
	loads := a.ReviewerLoads(4)
	if loads[2] != 2 || loads[1] != 1 || loads[0] != 0 {
		t.Fatalf("ReviewerLoads = %v", loads)
	}
	if !a.Remove(0, 2) || a.Remove(0, 2) {
		t.Fatal("Remove semantics wrong")
	}
	s := a.Sorted()
	if len(s.Groups[0]) != 1 || s.Groups[0][0] != 1 {
		t.Fatalf("Sorted = %+v", s.Groups)
	}
}

func TestAssignmentCloneIndependence(t *testing.T) {
	a := NewAssignment(2)
	a.Assign(0, 1)
	b := a.Clone()
	b.Assign(0, 2)
	if len(a.Groups[0]) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestAssignmentScoreSectionFourExample(t *testing.T) {
	in := conferenceInstance()
	// Greedy-style assignment from Section 4.2: giving r1 to p2 and p3 first
	// prevents topic t3 of p1 from being covered in the second stage.
	bad := NewAssignment(3)
	bad.Assign(1, 0) // r1 -> p2
	bad.Assign(2, 0) // r1 -> p3
	bad.Assign(0, 1) // r2 -> p1
	bad.Assign(0, 2) // r3 -> p1 (cannot cover t3)
	bad.Assign(1, 1)
	bad.Assign(2, 2)

	good := NewAssignment(3)
	good.Assign(0, 0) // reserve r1 for p1 so t3 is covered
	good.Assign(0, 1)
	good.Assign(1, 1)
	good.Assign(1, 2)
	good.Assign(2, 0)
	good.Assign(2, 2)

	if err := in.ValidateAssignment(good); err != nil {
		t.Fatalf("good assignment invalid: %v", err)
	}
	if in.AssignmentScore(good) <= in.AssignmentScore(bad) {
		t.Fatalf("expected reserving r1 to improve the score: good=%v bad=%v",
			in.AssignmentScore(good), in.AssignmentScore(bad))
	}
}

func TestValidateAssignmentErrors(t *testing.T) {
	in := conferenceInstance()
	full := func() *Assignment {
		a := NewAssignment(3)
		a.Assign(0, 0)
		a.Assign(0, 1)
		a.Assign(1, 1)
		a.Assign(1, 2)
		a.Assign(2, 0)
		a.Assign(2, 2)
		return a
	}
	if err := in.ValidateAssignment(full()); err != nil {
		t.Fatalf("valid assignment rejected: %v", err)
	}

	a := full()
	a.Groups[0] = a.Groups[0][:1]
	if err := in.ValidateAssignment(a); err == nil {
		t.Fatal("short group accepted")
	}

	a = full()
	a.Groups[1] = []int{2, 2}
	if err := in.ValidateAssignment(a); err == nil {
		t.Fatal("duplicate reviewer accepted")
	}

	a = full()
	a.Groups[1] = []int{2, 7}
	if err := in.ValidateAssignment(a); err == nil {
		t.Fatal("out-of-range reviewer accepted")
	}

	in2 := conferenceInstance()
	in2.AddConflict(0, 0)
	if err := in2.ValidateAssignment(full()); err == nil {
		t.Fatal("conflicting assignment accepted")
	}

	in3 := conferenceInstance()
	in3.Workload = 2
	b := full()
	// Overload reviewer 0 by swapping one slot.
	b.Groups[1] = []int{0, 1}
	if err := in3.ValidateAssignment(b); err == nil {
		t.Fatal("overloaded reviewer accepted")
	}

	if err := in.ValidateAssignment(NewAssignment(1)); err == nil {
		t.Fatal("wrong paper count accepted")
	}
}

func TestValidatePartial(t *testing.T) {
	in := conferenceInstance()
	a := NewAssignment(3)
	a.Assign(0, 0)
	if err := in.ValidatePartial(a); err != nil {
		t.Fatalf("partial assignment rejected: %v", err)
	}
	a.Assign(0, 1)
	a.Assign(0, 2)
	if err := in.ValidatePartial(a); err == nil {
		t.Fatal("oversized group accepted by ValidatePartial")
	}
}

func TestPaperScores(t *testing.T) {
	in := conferenceInstance()
	a := NewAssignment(3)
	a.Assign(0, 0)
	a.Assign(0, 1)
	scores := in.PaperScores(a)
	if len(scores) != 3 {
		t.Fatalf("len(scores) = %d", len(scores))
	}
	if !almostEqual(scores[0], in.GroupScore(0, []int{0, 1})) {
		t.Fatalf("scores[0] = %v", scores[0])
	}
	if scores[1] != 0 || scores[2] != 0 {
		t.Fatalf("unassigned papers should score 0: %v", scores)
	}
}

func TestRandomInstanceValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		in := randomInstance(rng, 1+rng.Intn(6), 3+rng.Intn(6), 2+rng.Intn(8))
		if err := in.Validate(); err != nil {
			t.Fatalf("random instance invalid: %v", err)
		}
	}
}

func TestInstanceVersionAndClone(t *testing.T) {
	in := NewInstance(
		[]Paper{{Topics: Vector{1, 0}}, {Topics: Vector{0, 1}}},
		[]Reviewer{{Topics: Vector{1, 0}}, {Topics: Vector{0, 1}}, {Topics: Vector{0.5, 0.5}}},
		2, 2)
	v0 := in.Version()
	in.AddConflict(0, 0)
	if in.Version() == v0 {
		t.Fatal("AddConflict did not bump the version")
	}
	if got := in.AddReviewer(Reviewer{Topics: Vector{0.2, 0.8}}); got != 3 {
		t.Fatalf("AddReviewer index = %d, want 3", got)
	}
	v1 := in.Version()

	c := in.Clone()
	if c.Version() != v1 || c.NumReviewers() != 4 || !c.IsConflict(0, 0) {
		t.Fatal("clone does not match the original")
	}
	// Mutations must not leak across the clone boundary, in either direction.
	c.AddConflict(1, 1)
	if in.IsConflict(1, 1) {
		t.Fatal("clone conflict leaked into the original")
	}
	in.AddReviewer(Reviewer{Topics: Vector{0.9, 0.1}})
	in.AddReviewer(Reviewer{Topics: Vector{0.1, 0.9}})
	if c.NumReviewers() != 4 {
		t.Fatal("original reviewer append leaked into the clone")
	}
	if in.Version() == c.Version() {
		t.Fatal("versions should have diverged")
	}
}

func TestNonConflicting(t *testing.T) {
	in := NewInstance(
		[]Paper{{Topics: Vector{1, 0}}},
		[]Reviewer{{Topics: Vector{1, 0}}, {Topics: Vector{0, 1}}, {Topics: Vector{0.5, 0.5}}},
		2, 1)
	if got := in.NonConflicting(0); got != 3 {
		t.Fatalf("NonConflicting = %d, want 3", got)
	}
	in.AddConflict(1, 0)
	in.AddConflict(1, 0) // duplicate must not double-count
	if got := in.NonConflicting(0); got != 2 {
		t.Fatalf("NonConflicting after conflict = %d, want 2", got)
	}
}
