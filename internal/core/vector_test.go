package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestVectorSum(t *testing.T) {
	v := Vector{0.1, 0.2, 0.7}
	if !almostEqual(v.Sum(), 1.0) {
		t.Fatalf("Sum = %v, want 1.0", v.Sum())
	}
	if (Vector{}).Sum() != 0 {
		t.Fatal("empty vector sum should be 0")
	}
}

func TestVectorCloneIndependence(t *testing.T) {
	v := Vector{1, 2, 3}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone must not share backing storage")
	}
}

func TestVectorNormalized(t *testing.T) {
	v := Vector{2, 2, 4}
	n := v.Normalized()
	if !almostEqual(n.Sum(), 1) {
		t.Fatalf("normalized sum = %v", n.Sum())
	}
	if !almostEqual(n[2], 0.5) {
		t.Fatalf("n[2] = %v, want 0.5", n[2])
	}
	z := Vector{0, 0}
	if got := z.Normalized(); !Equal(got, z, 0) {
		t.Fatalf("zero vector should stay zero, got %v", got)
	}
}

func TestVectorScale(t *testing.T) {
	v := Vector{1, 2}
	s := v.Scale(1.5)
	if !Equal(s, Vector{1.5, 3}, 1e-12) {
		t.Fatalf("Scale = %v", s)
	}
	if !Equal(v, Vector{1, 2}, 0) {
		t.Fatal("Scale must not modify receiver")
	}
}

func TestMaxInPlace(t *testing.T) {
	a := Vector{0.1, 0.9, 0.3}
	b := Vector{0.5, 0.2, 0.3}
	a.MaxInPlace(b)
	if !Equal(a, Vector{0.5, 0.9, 0.3}, 0) {
		t.Fatalf("MaxInPlace = %v", a)
	}
}

func TestMaxDoesNotModifyArgs(t *testing.T) {
	a := Vector{0.1, 0.9}
	b := Vector{0.5, 0.2}
	c := Max(a, b)
	if !Equal(c, Vector{0.5, 0.9}, 0) {
		t.Fatalf("Max = %v", c)
	}
	if !Equal(a, Vector{0.1, 0.9}, 0) || !Equal(b, Vector{0.5, 0.2}, 0) {
		t.Fatal("Max must not modify its arguments")
	}
}

func TestDotAndMinSum(t *testing.T) {
	a := Vector{0.2, 0.8}
	b := Vector{0.5, 0.5}
	if !almostEqual(Dot(a, b), 0.2*0.5+0.8*0.5) {
		t.Fatalf("Dot = %v", Dot(a, b))
	}
	if !almostEqual(MinSum(a, b), 0.2+0.5) {
		t.Fatalf("MinSum = %v", MinSum(a, b))
	}
}

func TestTopTopics(t *testing.T) {
	v := Vector{0.1, 0.4, 0.05, 0.3, 0.15}
	top := v.TopTopics(3)
	want := []int{1, 3, 4}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("TopTopics = %v, want %v", top, want)
		}
	}
	if got := v.TopTopics(100); len(got) != len(v) {
		t.Fatalf("TopTopics(k>T) returned %d entries", len(got))
	}
}

func TestVectorString(t *testing.T) {
	v := Vector{0.35, 0.45, 0.2}
	if got := v.String(); got != "[0.350 0.450 0.200]" {
		t.Fatalf("String = %q", got)
	}
}

func randomVector(rng *rand.Rand, dim int) Vector {
	v := make(Vector, dim)
	for i := range v {
		v[i] = rng.Float64()
	}
	return v
}

// Property: MinSum is symmetric and bounded by min(Sum(a), Sum(b)).
func TestMinSumProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomVector(r, 1+r.Intn(40))
		b := randomVector(r, a.Dim())
		ms := MinSum(a, b)
		if math.Abs(ms-MinSum(b, a)) > 1e-9 {
			return false
		}
		bound := math.Min(a.Sum(), b.Sum())
		return ms <= bound+1e-9 && ms >= -1e-12
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: entry-wise Max dominates both arguments.
func TestMaxDominates(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomVector(r, 1+r.Intn(40))
		b := randomVector(r, a.Dim())
		m := Max(a, b)
		for i := range m {
			if m[i] < a[i] || m[i] < b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
