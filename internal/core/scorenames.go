package core

import "reflect"

// Score names identify the paper's four named scoring functions in
// serialized contexts — instance wire payloads and durable session
// snapshots — where a Go func value cannot travel. The empty name resolves
// to WeightedCoverage, mirroring a nil Instance.Score.
const (
	ScoreWeightedCoverage = "weighted-coverage"
	ScoreReviewerCoverage = "reviewer-coverage"
	ScorePaperCoverage    = "paper-coverage"
	ScoreDotProduct       = "dot-product"
)

// ScoreByName resolves a serialized score name to its function. The empty
// name resolves to WeightedCoverage (the library-wide default); unknown
// names report ok=false.
func ScoreByName(name string) (ScoreFunc, bool) {
	switch name {
	case "", ScoreWeightedCoverage:
		return WeightedCoverage, true
	case ScoreReviewerCoverage:
		return ReviewerCoverage, true
	case ScorePaperCoverage:
		return PaperCoverage, true
	case ScoreDotProduct:
		return DotProduct, true
	}
	return nil, false
}

// ScoreName returns the serialized name of fn when it is one of the four
// named scoring functions (nil counts as WeightedCoverage), and "" with
// ok=false for anything else — custom scoring functions have no wire or
// snapshot representation.
func ScoreName(fn ScoreFunc) (string, bool) {
	if fn == nil {
		return ScoreWeightedCoverage, true
	}
	// Func values are not comparable, but the code pointer of a top-level
	// function is stable and unique among these four.
	switch reflect.ValueOf(fn).Pointer() {
	case reflect.ValueOf(WeightedCoverage).Pointer():
		return ScoreWeightedCoverage, true
	case reflect.ValueOf(ReviewerCoverage).Pointer():
		return ScoreReviewerCoverage, true
	case reflect.ValueOf(PaperCoverage).Pointer():
		return ScorePaperCoverage, true
	case reflect.ValueOf(DotProduct).Pointer():
		return ScoreDotProduct, true
	}
	return "", false
}
