package ilp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lp"
)

func TestBinaryKnapsack(t *testing.T) {
	// values 6,10,12  weights 1,2,3  capacity 5 -> take items 2,3 (22).
	p := NewProblem(3)
	p.LP.Objective = []float64{6, 10, 12}
	p.LP.AddConstraint([]float64{1, 2, 3}, lp.LE, 5)
	for i := 0; i < 3; i++ {
		p.SetKind(i, Binary)
	}
	s, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Objective-22) > 1e-6 {
		t.Fatalf("objective = %v, want 22", s.Objective)
	}
	if math.Round(s.X[1]) != 1 || math.Round(s.X[2]) != 1 || math.Round(s.X[0]) != 0 {
		t.Fatalf("x = %v", s.X)
	}
}

func TestIntegerVariable(t *testing.T) {
	// max x s.t. 2x <= 7, x integer -> x = 3.
	p := NewProblem(1)
	p.LP.Objective = []float64{1}
	p.LP.AddConstraint([]float64{2}, lp.LE, 7)
	p.SetKind(0, Integer)
	s, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.X[0]-3) > 1e-6 {
		t.Fatalf("x = %v, want 3", s.X[0])
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// max 2x + y, x binary, y continuous <= 0.7, x + y <= 1.5.
	p := NewProblem(2)
	p.LP.Objective = []float64{2, 1}
	p.LP.AddConstraint([]float64{1, 1}, lp.LE, 1.5)
	p.SetKind(0, Binary)
	p.LP.SetUpperBound(1, 0.7)
	s, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Objective-2.5) > 1e-6 {
		t.Fatalf("objective = %v, want 2.5", s.Objective)
	}
}

func TestInfeasibleILP(t *testing.T) {
	p := NewProblem(1)
	p.LP.Objective = []float64{1}
	p.LP.AddConstraint([]float64{1}, lp.GE, 2)
	p.SetKind(0, Binary)
	if _, err := p.Solve(Options{}); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestEqualityCardinality(t *testing.T) {
	// Choose exactly 2 of 4 binaries maximising weights.
	p := NewProblem(4)
	p.LP.Objective = []float64{0.1, 0.9, 0.5, 0.7}
	p.LP.AddConstraint([]float64{1, 1, 1, 1}, lp.EQ, 2)
	for i := 0; i < 4; i++ {
		p.SetKind(i, Binary)
	}
	s, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Objective-1.6) > 1e-6 {
		t.Fatalf("objective = %v, want 1.6", s.Objective)
	}
	count := 0
	for _, x := range s.X {
		count += int(math.Round(x))
	}
	if count != 2 {
		t.Fatalf("cardinality = %d, want 2", count)
	}
}

func TestNodeLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 25
	p := NewProblem(n)
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		p.LP.Objective[i] = 1 + rng.Float64()
		weights[i] = 1 + rng.Float64()
		p.SetKind(i, Binary)
	}
	p.LP.AddConstraint(weights, lp.LE, 0.5*float64(n))
	_, err := p.Solve(Options{MaxNodes: 1})
	if err != ErrNodeLimit && err != nil {
		t.Fatalf("unexpected error %v", err)
	}
}

// bruteKnapsack enumerates all subsets. Feasibility uses the same small
// tolerance as the LP solver, so borderline sums that differ from the
// capacity only by floating-point rounding are judged consistently.
func bruteKnapsack(values, weights []float64, capacity float64) float64 {
	n := len(values)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		v, w := 0.0, 0.0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				v += values[i]
				w += weights[i]
			}
		}
		if w <= capacity+1e-9 && v > best {
			best = v
		}
	}
	return best
}

// Property: branch-and-bound equals brute force on random 0/1 knapsacks.
func TestILPMatchesBruteForceKnapsack(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := range values {
			values[i] = math.Round(rng.Float64()*50) / 10
			weights[i] = math.Round(1+rng.Float64()*50) / 10
		}
		capacity := 0.5 * sum(weights)
		p := NewProblem(n)
		copy(p.LP.Objective, values)
		p.LP.AddConstraint(weights, lp.LE, capacity)
		for i := 0; i < n; i++ {
			p.SetKind(i, Binary)
		}
		s, err := p.Solve(Options{})
		if err != nil {
			return false
		}
		want := bruteKnapsack(values, weights, capacity)
		if math.Abs(s.Objective-want) > 1e-5 {
			return false
		}
		// Check integrality and feasibility of the returned point.
		w := 0.0
		for i, x := range s.X {
			if math.Abs(x-math.Round(x)) > 1e-6 {
				return false
			}
			w += x * weights[i]
		}
		return w <= capacity+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// TestKnapsackRegressionSeed pins a previously failing quick-check seed
// (folded in from the old scratch debug test).
func TestKnapsackRegressionSeed(t *testing.T) {
	seed := int64(-3442079697925997769)
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(8)
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = math.Round(rng.Float64()*50) / 10
		weights[i] = math.Round(1+rng.Float64()*50) / 10
	}
	capacity := 0.5 * sum(weights)
	p := NewProblem(n)
	copy(p.LP.Objective, values)
	p.LP.AddConstraint(weights, lp.LE, capacity)
	for i := 0; i < n; i++ {
		p.SetKind(i, Binary)
	}
	s, err := p.Solve(Options{})
	if err != nil {
		t.Fatalf("Solve: %v (values=%v weights=%v cap=%v)", err, values, weights, capacity)
	}
	want := bruteKnapsack(values, weights, capacity)
	if math.Abs(s.Objective-want) > 1e-5 {
		t.Fatalf("objective %v != brute force %v", s.Objective, want)
	}
}

// knapsack22 builds the 3-item knapsack of TestBinaryKnapsack (optimum 22).
func knapsack22() *Problem {
	p := NewProblem(3)
	p.LP.Objective = []float64{6, 10, 12}
	p.LP.AddConstraint([]float64{1, 2, 3}, lp.LE, 5)
	for i := 0; i < 3; i++ {
		p.SetKind(i, Binary)
	}
	return p
}

func TestIncumbentSeedsSearch(t *testing.T) {
	// Optimal incumbent: the search must return it (or an equal optimum).
	p := knapsack22()
	s, err := p.Solve(Options{Incumbent: []float64{0, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Objective-22) > 1e-6 {
		t.Fatalf("objective = %v, want 22", s.Objective)
	}
	// Suboptimal but feasible incumbent: must still find the optimum.
	p = knapsack22()
	s, err = p.Solve(Options{Incumbent: []float64{1, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Objective-22) > 1e-6 {
		t.Fatalf("objective = %v, want 22", s.Objective)
	}
}

func TestIncumbentSurvivesNodeLimit(t *testing.T) {
	// With a node budget too small to search, the incumbent is returned
	// alongside ErrNodeLimit instead of failing outright.
	p := knapsack22()
	s, err := p.Solve(Options{Incumbent: []float64{1, 1, 0}, MaxNodes: 1})
	if err != ErrNodeLimit {
		t.Fatalf("err = %v, want ErrNodeLimit", err)
	}
	if s == nil || math.Abs(s.Objective-16) > 1e-6 {
		t.Fatalf("solution = %+v, want the incumbent objective 16", s)
	}
}

func TestIncumbentRejected(t *testing.T) {
	cases := map[string][]float64{
		"wrong length":        {1, 0},
		"violates constraint": {1, 1, 1},
		"fractional binary":   {0.5, 1, 0},
		"negative":            {-1, 1, 0},
		"above upper bound":   {2, 1, 0},
	}
	for name, inc := range cases {
		if _, err := knapsack22().Solve(Options{Incumbent: inc}); err != ErrBadIncumbent {
			t.Errorf("%s: err = %v, want ErrBadIncumbent", name, err)
		}
	}
}
