package ilp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lp"
)

// Regression test for a previously failing quick-check seed.
func TestKnapsackRegressionSeed(t *testing.T) {
	seed := int64(-3442079697925997769)
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(8)
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = math.Round(rng.Float64()*50) / 10
		weights[i] = math.Round(1+rng.Float64()*50) / 10
	}
	capacity := 0.5 * sum(weights)
	p := NewProblem(n)
	copy(p.LP.Objective, values)
	p.LP.AddConstraint(weights, lp.LE, capacity)
	for i := 0; i < n; i++ {
		p.SetKind(i, Binary)
	}
	s, err := p.Solve(Options{})
	if err != nil {
		t.Fatalf("Solve: %v (values=%v weights=%v cap=%v)", err, values, weights, capacity)
	}
	want := bruteKnapsack(values, weights, capacity)
	t.Logf("n=%d values=%v weights=%v cap=%v", n, values, weights, capacity)
	t.Logf("got=%v want=%v x=%v nodes=%d", s.Objective, want, s.X, s.Nodes)
	if math.Abs(s.Objective-want) > 1e-5 {
		t.Fatalf("objective %v != brute force %v", s.Objective, want)
	}
}
