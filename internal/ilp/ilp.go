// Package ilp implements a branch-and-bound integer linear programming solver
// on top of the LP relaxation provided by internal/lp. It supports binary and
// general integer variables and is used to build the ILP baseline of the JRA
// experiments (Section 5.1), mirroring the role of lp_solve in the paper.
package ilp

import (
	"errors"
	"math"

	"repro/internal/lp"
)

// VarKind describes the integrality requirement of a variable.
type VarKind int

// Variable kinds.
const (
	Continuous VarKind = iota
	Integer
	Binary
)

// Problem is a mixed-integer linear program: an lp.Problem plus per-variable
// integrality requirements.
type Problem struct {
	LP    *lp.Problem
	Kinds []VarKind
}

// Solution is an integral solution of the MILP.
type Solution struct {
	X         []float64
	Objective float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
}

// Errors returned by Solve.
var (
	ErrInfeasible = errors.New("ilp: infeasible")
	// ErrNodeLimit is returned when the node budget is exhausted before the
	// search completes.
	ErrNodeLimit = errors.New("ilp: node limit exceeded")
	// ErrBadIncumbent is returned when Options.Incumbent violates the
	// problem's constraints, bounds or integrality requirements.
	ErrBadIncumbent = errors.New("ilp: incumbent violates the problem")
)

// NewProblem creates a MILP with n continuous variables; mark integer or
// binary variables with SetKind. Binary variables automatically receive an
// upper bound of 1.
func NewProblem(n int) *Problem {
	return &Problem{LP: lp.NewProblem(n), Kinds: make([]VarKind, n)}
}

// SetKind marks variable i as continuous, integer or binary.
func (p *Problem) SetKind(i int, k VarKind) {
	p.Kinds[i] = k
	if k == Binary {
		p.LP.SetUpperBound(i, 1)
	}
}

// Options control the branch-and-bound search.
type Options struct {
	// MaxNodes bounds the number of explored nodes (0 = 1,000,000).
	MaxNodes int
	// Tolerance for deciding integrality (default 1e-6).
	Tolerance float64
	// Incumbent optionally provides a feasible integral starting solution —
	// typically produced by a combinatorial solver such as internal/flow's
	// transportation Transport — whose objective becomes the initial pruning
	// bound, so the search only explores nodes that can beat it. An
	// incumbent that violates the problem is rejected with ErrBadIncumbent.
	Incumbent []float64
}

func (o Options) withDefaults() Options {
	if o.MaxNodes == 0 {
		o.MaxNodes = 1_000_000
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-6
	}
	return o
}

// Solve runs best-bound branch-and-bound and returns the optimal integral
// solution.
func (p *Problem) Solve(opts Options) (*Solution, error) {
	opts = opts.withDefaults()
	root := p.LP.Clone()

	type node struct {
		prob  *lp.Problem
		bound float64
	}
	rootSol, err := root.Solve()
	if err == lp.ErrInfeasible {
		return nil, ErrInfeasible
	}
	if err != nil {
		return nil, err
	}

	best := math.Inf(-1)
	var bestX []float64
	if opts.Incumbent != nil {
		x, obj, err := p.checkIncumbent(opts.Incumbent, opts.Tolerance)
		if err != nil {
			return nil, err
		}
		best, bestX = obj, x
	}
	nodes := 0

	// Depth-first with a stack keeps memory modest; the incumbent prunes.
	stack := []node{{prob: root, bound: rootSol.Objective}}
	for len(stack) > 0 {
		if nodes >= opts.MaxNodes {
			if bestX == nil {
				return nil, ErrNodeLimit
			}
			return &Solution{X: bestX, Objective: best, Nodes: nodes}, ErrNodeLimit
		}
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur.bound <= best+1e-9 {
			continue
		}
		sol, err := cur.prob.Solve()
		if err == lp.ErrInfeasible {
			continue
		}
		if err != nil {
			return nil, err
		}
		nodes++
		if sol.Objective <= best+1e-9 {
			continue
		}
		frac := p.mostFractional(sol.X, opts.Tolerance)
		if frac == -1 {
			// Integral solution.
			if sol.Objective > best {
				best = sol.Objective
				bestX = roundIntegral(sol.X, p.Kinds)
			}
			continue
		}
		v := sol.X[frac]
		floorV := math.Floor(v)
		// Branch down: x_frac <= floor(v).
		down := cur.prob.Clone()
		row := make([]float64, len(p.Kinds))
		row[frac] = 1
		down.AddConstraint(row, lp.LE, floorV)
		// Branch up: x_frac >= floor(v)+1.
		up := cur.prob.Clone()
		row2 := make([]float64, len(p.Kinds))
		row2[frac] = 1
		up.AddConstraint(row2, lp.GE, floorV+1)
		// Explore the more promising side (closer to its bound) last so it is
		// popped first from the stack.
		stack = append(stack, node{prob: down, bound: sol.Objective})
		stack = append(stack, node{prob: up, bound: sol.Objective})
	}
	if bestX == nil {
		return nil, ErrInfeasible
	}
	return &Solution{X: bestX, Objective: best, Nodes: nodes}, nil
}

// checkIncumbent verifies that x is a feasible integral point of the problem
// and returns its rounded copy and objective value.
func (p *Problem) checkIncumbent(x []float64, tol float64) ([]float64, float64, error) {
	if len(x) != p.LP.NumVars() {
		return nil, 0, ErrBadIncumbent
	}
	for i, v := range x {
		if v < -tol {
			return nil, 0, ErrBadIncumbent
		}
		if p.Kinds[i] != Continuous && math.Abs(v-math.Round(v)) > tol {
			return nil, 0, ErrBadIncumbent
		}
		if ub := upperBound(p.LP, i); v > ub+tol {
			return nil, 0, ErrBadIncumbent
		}
	}
	rounded := roundIntegral(x, p.Kinds)
	for _, c := range p.LP.Constraints {
		lhs := 0.0
		for i, a := range c.Coeffs {
			lhs += a * rounded[i]
		}
		switch c.Rel {
		case lp.LE:
			if lhs > c.RHS+tol {
				return nil, 0, ErrBadIncumbent
			}
		case lp.GE:
			if lhs < c.RHS-tol {
				return nil, 0, ErrBadIncumbent
			}
		case lp.EQ:
			if math.Abs(lhs-c.RHS) > tol {
				return nil, 0, ErrBadIncumbent
			}
		}
	}
	obj := 0.0
	for i, c := range p.LP.Objective {
		obj += c * rounded[i]
	}
	return rounded, obj, nil
}

// upperBound returns variable i's upper bound (+Inf when unbounded).
func upperBound(prob *lp.Problem, i int) float64 {
	if prob.UpperBounds == nil || math.IsNaN(prob.UpperBounds[i]) {
		return math.Inf(1)
	}
	return prob.UpperBounds[i]
}

// mostFractional returns the index of the integer/binary variable whose value
// is farthest from an integer, or -1 when the point is integral.
func (p *Problem) mostFractional(x []float64, tol float64) int {
	best := -1
	bestDist := tol
	for i, k := range p.Kinds {
		if k == Continuous {
			continue
		}
		f := x[i] - math.Floor(x[i])
		dist := math.Min(f, 1-f)
		if dist > bestDist {
			bestDist = dist
			best = i
		}
	}
	return best
}

func roundIntegral(x []float64, kinds []VarKind) []float64 {
	out := append([]float64(nil), x...)
	for i, k := range kinds {
		if k != Continuous {
			out[i] = math.Round(out[i])
		}
	}
	return out
}
