package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/jra"
)

// Table6 reproduces the toy example comparing the four scoring functions
// (Appendix B, Table 6): one paper and two reviewers, scored by reviewer
// coverage, paper coverage, dot-product and weighted coverage.
func Table6(cfg Config) (*Result, error) {
	p := core.Vector{0.6, 0.4}
	r1 := core.Vector{0.9, 0.1}
	r2 := core.Vector{0.5, 0.5}
	t := NewTable("Table 6: scoring functions on the toy example", "function", "c(r1,p)", "c(r2,p)", "prefers")
	rows := []struct {
		name string
		fn   core.ScoreFunc
	}{
		{"reviewer coverage cR", core.ReviewerCoverage},
		{"paper coverage cP", core.PaperCoverage},
		{"dot-product cD", core.DotProduct},
		{"weighted coverage c", core.WeightedCoverage},
	}
	for _, row := range rows {
		s1, s2 := row.fn(r1, p), row.fn(r2, p)
		pref := "r1"
		if s2 > s1 {
			pref = "r2"
		}
		t.AddRow(row.name, fmt.Sprintf("%.2f", s1), fmt.Sprintf("%.2f", s2), pref)
	}
	return &Result{Name: "table6", Description: "scoring function toy example", Tables: []*Table{t}}, nil
}

// Figure7 tabulates the analytic approximation ratio of SDGA as a function of
// the group size δp: 1−(1−1/δp)^δp for the integral case and
// 1−(1−1/δp)^(δp−1) for the general case, against the 1/3 bound of Greedy.
func Figure7(cfg Config) (*Result, error) {
	t := NewTable("Figure 7: approximation ratio vs δp",
		"δp", "integral case", "general case", "greedy (1/3)", "1-1/e")
	for d := 2; d <= 10; d++ {
		integral := 1 - math.Pow(1-1/float64(d), float64(d))
		general := 1 - math.Pow(1-1/float64(d), float64(d-1))
		t.AddRow(fmt.Sprintf("%d", d),
			fmt.Sprintf("%.4f", integral),
			fmt.Sprintf("%.4f", general),
			fmt.Sprintf("%.4f", 1.0/3),
			fmt.Sprintf("%.4f", 1-1/math.E))
	}
	return &Result{Name: "figure7", Description: "analytic approximation ratios", Tables: []*Table{t}}, nil
}

// jraPool builds the JRA candidate pool of Section 5.1 (authors with at least
// three publications in 2005-2009) and a set of target papers.
func jraPool(cfg Config) ([]core.Reviewer, []core.Paper, error) {
	gen := corpus.NewGenerator(cfg.generatorConfig())
	pool := gen.ReviewerPool(3, 2005, 2009)
	if len(pool) == 0 {
		return nil, nil, fmt.Errorf("experiments: empty JRA pool")
	}
	// Target papers: random submissions from all three areas of 2008.
	var papers []core.Paper
	for _, area := range corpus.Areas {
		d, err := gen.Dataset(area, 2008)
		if err != nil {
			return nil, nil, err
		}
		papers = append(papers, d.Papers...)
	}
	return pool, papers, nil
}

// journalInstance assembles a single-paper instance with R candidates drawn
// deterministically from the pool.
func journalInstance(pool []core.Reviewer, paper core.Paper, r, delta int, seed int64) *core.Instance {
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(pool))
	if r > len(pool) {
		r = len(pool)
	}
	reviewers := make([]core.Reviewer, r)
	for i := 0; i < r; i++ {
		reviewers[i] = pool[idx[i]]
	}
	return core.NewInstance([]core.Paper{paper}, reviewers, delta, 1)
}

// combinations returns C(n, k) as a float (to test against the BFS budget).
func combinations(n, k int) float64 {
	if k > n {
		return 0
	}
	c := 1.0
	for i := 0; i < k; i++ {
		c *= float64(n-i) / float64(i+1)
	}
	return c
}

// jraCell measures the average response time of a solver over the target
// papers; papers is truncated to keep each cell affordable.
func jraCell(solver jra.Solver, pool []core.Reviewer, papers []core.Paper, r, delta int, seed int64) (time.Duration, error) {
	n := len(papers)
	if n > 3 {
		n = 3
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		in := journalInstance(pool, papers[i], r, delta, seed+int64(i))
		if _, err := solver.Solve(in); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(n), nil
}

// runJRAGrid produces one response-time table for a (R, δp) grid, marking
// cells whose method exceeds its budget as "skipped".
func runJRAGrid(cfg Config, title string, poolSizes, groupSizes []int) (*Table, error) {
	pool, papers, err := jraPool(cfg)
	if err != nil {
		return nil, err
	}
	t := NewTable(title, "R", "δp", "BFS", "ILP", "BBA")
	for _, r := range poolSizes {
		if r > len(pool) {
			r = len(pool)
		}
		for _, d := range groupSizes {
			row := []string{fmt.Sprintf("%d", r), fmt.Sprintf("%d", d)}
			if combinations(r, d) <= cfg.BFSMaxCombos {
				dur, err := jraCell(jra.BruteForce{}, pool, papers, r, d, cfg.Seed)
				if err != nil {
					return nil, err
				}
				row = append(row, formatDuration(dur))
			} else {
				row = append(row, "skipped(>budget)")
			}
			if r <= cfg.ILPMaxReviewers && d <= 4 {
				dur, err := jraCell(jra.ILP{}, pool, papers, r, d, cfg.Seed)
				if err != nil {
					return nil, err
				}
				row = append(row, formatDuration(dur))
			} else {
				row = append(row, "skipped(>budget)")
			}
			dur, err := jraCell(jra.BranchAndBound{}, pool, papers, r, d, cfg.Seed)
			if err != nil {
				return nil, err
			}
			row = append(row, formatDuration(dur))
			t.AddRow(row...)
		}
	}
	return t, nil
}

// Figure9a measures JRA response time as a function of δp with R fixed to the
// largest configured pool size.
func Figure9a(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	r := cfg.JRAPoolSizes[len(cfg.JRAPoolSizes)-1]
	t, err := runJRAGrid(cfg, "Figure 9(a): response time vs δp", []int{r}, cfg.JRAGroupSizes)
	if err != nil {
		return nil, err
	}
	return &Result{Name: "figure9a", Description: "JRA response time vs group size", Tables: []*Table{t}}, nil
}

// Figure9b measures JRA response time as a function of R with δp fixed to the
// smallest configured group size.
func Figure9b(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	d := cfg.JRAGroupSizes[0]
	t, err := runJRAGrid(cfg, "Figure 9(b): response time vs R", cfg.JRAPoolSizes, []int{d})
	if err != nil {
		return nil, err
	}
	return &Result{Name: "figure9b", Description: "JRA response time vs pool size", Tables: []*Table{t}}, nil
}

// Figure14 runs the additional scalability grids of Appendix C: response time
// vs δp at the second-largest pool size and vs R at the second-smallest group
// size.
func Figure14(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	rIdx := len(cfg.JRAPoolSizes) - 2
	if rIdx < 0 {
		rIdx = 0
	}
	dIdx := 1
	if dIdx >= len(cfg.JRAGroupSizes) {
		dIdx = 0
	}
	t1, err := runJRAGrid(cfg, "Figure 14(a): response time vs δp", []int{cfg.JRAPoolSizes[rIdx]}, cfg.JRAGroupSizes)
	if err != nil {
		return nil, err
	}
	t2, err := runJRAGrid(cfg, "Figure 14(b): response time vs R", cfg.JRAPoolSizes, []int{cfg.JRAGroupSizes[dIdx]})
	if err != nil {
		return nil, err
	}
	return &Result{Name: "figure14", Description: "additional JRA scalability", Tables: []*Table{t1, t2}}, nil
}

// Figure15 measures the response time of BBA when retrieving the top-k
// reviewer groups.
func Figure15(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	pool, papers, err := jraPool(cfg)
	if err != nil {
		return nil, err
	}
	r := cfg.JRAPoolSizes[len(cfg.JRAPoolSizes)-1]
	if r > len(pool) {
		r = len(pool)
	}
	d := cfg.JRAGroupSizes[0]
	ks := []int{1, 10, 100, 1000}
	if cfg.Quick {
		ks = []int{1, 10, 50}
	}
	t := NewTable(fmt.Sprintf("Figure 15: top-k retrieval time (R=%d, δp=%d)", r, d), "k", "BBA time")
	solver := jra.BranchAndBound{}
	in := journalInstance(pool, papers[0], r, d, cfg.Seed)
	for _, k := range ks {
		start := time.Now()
		if _, err := solver.TopK(in, k); err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", k), formatDuration(time.Since(start)))
	}
	return &Result{Name: "figure15", Description: "top-k retrieval with BBA", Tables: []*Table{t}}, nil
}

// CPComparison reproduces the Section 5.1 comparison against a generic
// constraint-programming solver on a small instance (the paper uses R=30,
// δp=3 for CPLEX CP): time to the optimal solution for CP and BBA, plus the
// CP solver's search-node counts.
func CPComparison(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	pool, papers, err := jraPool(cfg)
	if err != nil {
		return nil, err
	}
	r := 30
	if cfg.Quick {
		r = 15
	}
	if r > len(pool) {
		r = len(pool)
	}
	in := journalInstance(pool, papers[0], r, 3, cfg.Seed)

	t := NewTable(fmt.Sprintf("Section 5.1: CP vs BBA (R=%d, δp=3)", r), "method", "time", "score", "nodes")
	start := time.Now()
	cpRes, err := (jra.CP{}).Solve(in)
	if err != nil {
		return nil, err
	}
	cpTime := time.Since(start)

	start = time.Now()
	bbaRes, stats, err := (jra.BranchAndBound{}).SolveWithStats(in)
	if err != nil {
		return nil, err
	}
	bbaTime := time.Since(start)

	t.AddRow("CP", formatDuration(cpTime), fmt.Sprintf("%.4f", cpRes.Score), "-")
	t.AddRow("BBA", formatDuration(bbaTime), fmt.Sprintf("%.4f", bbaRes.Score), fmt.Sprintf("%d", stats.Nodes))
	return &Result{Name: "cp", Description: "constraint programming baseline", Tables: []*Table{t}}, nil
}
