package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"
)

// quickCfg is a configuration small enough for unit tests.
func quickCfg() Config {
	return Config{
		Quick:            true,
		Scale:            0.03,
		Seed:             3,
		GroupSizes:       []int{3},
		JRAPoolSizes:     []int{12, 18},
		JRAGroupSizes:    []int{2, 3},
		ILPMaxReviewers:  12,
		BFSMaxCombos:     1e5,
		RefinementBudget: 200 * time.Millisecond,
	}
}

func TestTableFormatting(t *testing.T) {
	tab := NewTable("demo", "a", "bb")
	tab.AddRow("1")
	tab.AddRow("22", "3", "ignored")
	s := tab.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "bb") {
		t.Fatalf("missing header in:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), s)
	}
	if len(tab.Rows[0]) != 2 || tab.Rows[0][1] != "" {
		t.Fatalf("short row not padded: %+v", tab.Rows[0])
	}
}

func TestRegistryAndLookup(t *testing.T) {
	reg := Registry()
	if len(reg) != 17 {
		t.Fatalf("expected 17 experiments, got %d", len(reg))
	}
	seen := map[string]bool{}
	for _, r := range reg {
		if r.Name == "" || r.Description == "" || r.Run == nil {
			t.Fatalf("incomplete runner %+v", r)
		}
		if seen[r.Name] {
			t.Fatalf("duplicate runner name %q", r.Name)
		}
		seen[r.Name] = true
	}
	if _, ok := Lookup("FIGURE10"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("unknown name resolved")
	}
	if len(Names()) != len(reg) {
		t.Fatal("Names() length mismatch")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 0.2 || c.Seed != 1 || len(c.GroupSizes) != 3 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	q := Config{Quick: true}.withDefaults()
	if q.Scale != 0.04 || len(q.GroupSizes) != 1 {
		t.Fatalf("unexpected quick defaults: %+v", q)
	}
}

func TestTable6Values(t *testing.T) {
	res, err := Table6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	// Weighted coverage is the only function preferring r2 (Table 6).
	if !strings.Contains(out, "weighted coverage c") {
		t.Fatalf("missing weighted coverage row:\n%s", out)
	}
	rows := res.Tables[0].Rows
	if rows[3][3] != "r2" {
		t.Fatalf("weighted coverage should prefer r2, got %q", rows[3][3])
	}
	for i := 0; i < 3; i++ {
		if rows[i][3] != "r1" {
			t.Fatalf("row %d should prefer r1: %v", i, rows[i])
		}
	}
}

func TestFigure7Values(t *testing.T) {
	res, err := Figure7(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Tables[0].Rows
	if len(rows) != 9 {
		t.Fatalf("expected 9 rows for δp=2..10, got %d", len(rows))
	}
	// δp = 2: integral 0.75, general 0.5.
	if rows[0][1] != "0.7500" || rows[0][2] != "0.5000" {
		t.Fatalf("δp=2 row wrong: %v", rows[0])
	}
	// δp = 3 general case is 5/9 ≈ 0.5556 (quoted in the paper).
	if rows[1][2] != "0.5556" {
		t.Fatalf("δp=3 general ratio wrong: %v", rows[1])
	}
}

func TestJRAExperimentsQuick(t *testing.T) {
	cfg := quickCfg()
	for _, name := range []string{"figure9a", "figure9b", "figure14", "figure15", "cp"} {
		r, ok := Lookup(name)
		if !ok {
			t.Fatalf("runner %s missing", name)
		}
		res, err := r.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Tables) == 0 || len(res.Tables[0].Rows) == 0 {
			t.Fatalf("%s produced no rows", name)
		}
	}
}

func TestCRAExperimentsQuick(t *testing.T) {
	cfg := quickCfg()
	for _, name := range []string{"table4", "figure10", "figure11", "table7", "casestudies", "figure21"} {
		r, ok := Lookup(name)
		if !ok {
			t.Fatalf("runner %s missing", name)
		}
		res, err := r.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Tables) == 0 || len(res.Tables[0].Rows) == 0 {
			t.Fatalf("%s produced no rows", name)
		}
		if !strings.Contains(res.String(), res.Tables[0].Title) {
			t.Fatalf("%s result string missing its table", name)
		}
	}
}

func TestRefinementExperimentsQuick(t *testing.T) {
	cfg := quickCfg()
	for _, name := range []string{"figure12", "figure16"} {
		r, _ := Lookup(name)
		res, err := r.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Tables) == 0 || len(res.Tables[0].Rows) == 0 {
			t.Fatalf("%s produced no rows", name)
		}
	}
}

func TestFigureQualityOrdering(t *testing.T) {
	// SDGA-SRA should never be worse than SDGA on the same dataset, and both
	// should produce ratios within (0, 1].
	cfg := quickCfg()
	res, err := Figure10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range res.Tables {
		for _, row := range tab.Rows {
			sdga := parsePercent(t, row[5])
			sra := parsePercent(t, row[6])
			if sdga <= 0 || sdga > 100.5 || sra <= 0 || sra > 100.5 {
				t.Fatalf("ratios out of range: %v", row)
			}
			if sra+1e-9 < sdga-2 { // allow tiny noise, SRA must not collapse
				t.Fatalf("SDGA-SRA much worse than SDGA: %v", row)
			}
		}
	}
}

func parsePercent(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is slow; skipped in -short mode")
	}
	var buf bytes.Buffer
	cfg := quickCfg()
	if err := RunAll(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range Names() {
		if !strings.Contains(out, name) {
			t.Fatalf("RunAll output missing experiment %s", name)
		}
	}
}
