package experiments

import (
	"fmt"
	"time"

	"repro/internal/corpus"
	"repro/internal/cra"
	"repro/internal/eval"
)

// Figure12 traces the optimality ratio of the refinement phase over time:
// SDGA followed by the stochastic refinement (SDGA-SRA) versus SDGA followed
// by plain local search (SDGA-LS), on the Databases and Data Mining 2008
// conferences.
func Figure12(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	delta := cfg.GroupSizes[0]
	confs := []conference{{corpus.Databases, 2008}, {corpus.DataMining, 2008}}
	if cfg.Quick {
		confs = confs[:1]
	}
	var tables []*Table
	for _, c := range confs {
		d, err := loadDataset(cfg, c)
		if err != nil {
			return nil, err
		}
		in := d.Instance(delta, 0)
		base, err := cra.SDGA{}.Assign(in)
		if err != nil {
			return nil, err
		}
		ideal := in.AssignmentScore(eval.IdealAssignment(in))
		baseScore := in.AssignmentScore(base)

		// Checkpoints: fractions of the refinement budget.
		checkpoints := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
		ratioAt := func(trace map[time.Duration]float64) []string {
			out := make([]string, len(checkpoints))
			for i, f := range checkpoints {
				limit := time.Duration(float64(cfg.RefinementBudget) * f)
				best := baseScore
				for at, score := range trace {
					if at <= limit && score > best {
						best = score
					}
				}
				out[i] = formatRatio(best / ideal)
			}
			return out
		}

		sraTrace := make(map[time.Duration]float64)
		sra := cra.SRA{
			Omega:      1 << 30, // run to the time budget, not to convergence
			MaxRounds:  1 << 30,
			TimeBudget: cfg.RefinementBudget,
			Seed:       cfg.Seed,
			OnRound:    func(_ int, best float64, elapsed time.Duration) { sraTrace[elapsed] = best },
		}
		if _, err := sra.Refine(in, base); err != nil {
			return nil, err
		}

		lsTrace := make(map[time.Duration]float64)
		ls := cra.LocalSearch{
			MaxMoves:   1 << 30,
			Patience:   1 << 30,
			TimeBudget: cfg.RefinementBudget,
			Seed:       cfg.Seed,
			OnImprove:  func(_ int, score float64, elapsed time.Duration) { lsTrace[elapsed] = score },
		}
		if _, err := ls.Refine(in, base); err != nil {
			return nil, err
		}

		cols := []string{"method"}
		for _, f := range checkpoints {
			cols = append(cols, fmt.Sprintf("%.0f%% budget", f*100))
		}
		t := NewTable(fmt.Sprintf("Figure 12: refinement progress — %s (budget %s, δp=%d)", c, cfg.RefinementBudget, delta), cols...)
		t.AddRow(append([]string{"SDGA-SRA"}, ratioAt(sraTrace)...)...)
		t.AddRow(append([]string{"SDGA-LS"}, ratioAt(lsTrace)...)...)
		tables = append(tables, t)
	}
	return &Result{Name: "figure12", Description: "stochastic refinement vs local search", Tables: tables}, nil
}

// Figure16 studies the effect of the convergence threshold ω on the
// stochastic refinement: larger ω refines longer and yields a (slightly)
// better optimality ratio.
func Figure16(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	delta := cfg.GroupSizes[0]
	omegas := []int{2, 5, 10, 20, 40}
	if cfg.Quick {
		omegas = []int{2, 5, 10}
	}
	confs := []conference{{corpus.Databases, 2008}, {corpus.DataMining, 2008}}
	if cfg.Quick {
		confs = confs[:1]
	}
	var tables []*Table
	for _, c := range confs {
		d, err := loadDataset(cfg, c)
		if err != nil {
			return nil, err
		}
		in := d.Instance(delta, 0)
		base, err := cra.SDGA{}.Assign(in)
		if err != nil {
			return nil, err
		}
		ideal := in.AssignmentScore(eval.IdealAssignment(in))
		t := NewTable(fmt.Sprintf("Figure 16: effect of ω — %s (δp=%d)", c, delta), "ω", "optimality ratio", "refinement time")
		for _, omega := range omegas {
			sra := cra.SRA{Omega: omega, Seed: cfg.Seed}
			start := time.Now()
			refined, err := sra.Refine(in, base)
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			t.AddRow(fmt.Sprintf("%d", omega),
				formatRatio(in.AssignmentScore(refined)/ideal),
				formatDuration(elapsed))
		}
		tables = append(tables, t)
	}
	return &Result{Name: "figure16", Description: "effect of the convergence threshold", Tables: tables}, nil
}
