// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5 and Appendix C) on the synthetic corpus. Each
// experiment is a Runner that produces one or more text tables; the
// wgrap-experiments command and the root-level benchmarks drive them.
//
// Absolute numbers differ from the paper (different hardware, language and —
// most importantly — synthetic rather than DBLP data); EXPERIMENTS.md
// compares the shapes: which method wins, by roughly what factor, and where
// the crossovers fall.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/corpus"
)

// Config controls the scale of every experiment.
type Config struct {
	// Scale multiplies the Table 3 dataset sizes (default 0.2). The paper's
	// full sizes correspond to Scale = 1, which is far slower, particularly
	// for the BRGG baseline.
	Scale float64
	// Seed drives every random choice (default 1).
	Seed int64
	// Quick trims parameter grids so the whole suite runs in seconds; used
	// by unit tests and smoke runs.
	Quick bool
	// GroupSizes is the δp grid for the CRA experiments (default {3,4,5};
	// {3} when Quick).
	GroupSizes []int
	// JRAPoolSizes is the R grid for the JRA scalability experiments
	// (default {50,100,150,200}; {15,25} when Quick).
	JRAPoolSizes []int
	// JRAGroupSizes is the δp grid for the JRA scalability experiments
	// (default {3,4,5,6}; {2,3} when Quick).
	JRAGroupSizes []int
	// BFSMaxCombos skips BFS cells whose combination count exceeds this
	// budget, mirroring the ">24 hours" entries of the paper (default 5e6).
	BFSMaxCombos float64
	// ILPMaxReviewers skips ILP cells with larger pools: the dense-simplex
	// substrate makes larger MILPs impractically slow (default 25).
	ILPMaxReviewers int
	// RefinementBudget is the wall-clock budget of the Figure 12 refinement
	// trace (default 5s; 500ms when Quick).
	RefinementBudget time.Duration
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.2
		if c.Quick {
			c.Scale = 0.04
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.GroupSizes) == 0 {
		c.GroupSizes = []int{3, 4, 5}
		if c.Quick {
			c.GroupSizes = []int{3}
		}
	}
	if len(c.JRAPoolSizes) == 0 {
		c.JRAPoolSizes = []int{20, 40, 100, 200}
		if c.Quick {
			c.JRAPoolSizes = []int{15, 25}
		}
	}
	if len(c.JRAGroupSizes) == 0 {
		c.JRAGroupSizes = []int{3, 4, 5, 6}
		if c.Quick {
			c.JRAGroupSizes = []int{2, 3}
		}
	}
	if c.BFSMaxCombos == 0 {
		c.BFSMaxCombos = 5e6
		if c.Quick {
			c.BFSMaxCombos = 1e5
		}
	}
	if c.ILPMaxReviewers == 0 {
		c.ILPMaxReviewers = 40
		if c.Quick {
			c.ILPMaxReviewers = 15
		}
	}
	if c.RefinementBudget == 0 {
		c.RefinementBudget = 5 * time.Second
		if c.Quick {
			c.RefinementBudget = 500 * time.Millisecond
		}
	}
	return c
}

// generatorConfig maps the experiment configuration to the corpus generator.
func (c Config) generatorConfig() corpus.Config {
	authors := 400
	if c.Quick {
		authors = 60
	}
	return corpus.Config{Scale: c.Scale, Seed: c.Seed, AuthorsPerArea: authors}
}

// Table is a simple text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; missing cells are blank, extras are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			fmt.Fprintf(&sb, "%-*s", widths[i]+2, cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Result is the output of one experiment.
type Result struct {
	Name        string
	Description string
	Tables      []*Table
}

// String concatenates the tables.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s — %s ==\n\n", r.Name, r.Description)
	for _, t := range r.Tables {
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Runner is a named experiment.
type Runner struct {
	// Name is the table/figure identifier used by the paper, e.g. "figure10".
	Name string
	// Description summarises what the experiment measures.
	Description string
	// Run executes the experiment.
	Run func(cfg Config) (*Result, error)
}

// Registry lists every experiment in the order the paper presents them.
func Registry() []Runner {
	return []Runner{
		{Name: "table6", Description: "Toy example of the four scoring functions (Table 6)", Run: Table6},
		{Name: "figure7", Description: "Approximation ratio of SDGA as a function of δp (Figure 7)", Run: Figure7},
		{Name: "figure9a", Description: "JRA response time vs group size δp (Figure 9a)", Run: Figure9a},
		{Name: "figure9b", Description: "JRA response time vs reviewer pool size R (Figure 9b)", Run: Figure9b},
		{Name: "cp", Description: "Constraint-programming solver vs BBA on a small JRA instance (Section 5.1)", Run: CPComparison},
		{Name: "figure14", Description: "Additional JRA scalability grids (Figure 14)", Run: Figure14},
		{Name: "figure15", Description: "Top-k retrieval time of BBA (Figure 15)", Run: Figure15},
		{Name: "table4", Description: "CRA response time of the six methods (Table 4)", Run: Table4},
		{Name: "figure10", Description: "Optimality ratio on Databases and Data Mining 2008 (Figure 10)", Run: Figure10},
		{Name: "figure11", Description: "Superiority ratio of SDGA-SRA over the baselines (Figure 11)", Run: Figure11},
		{Name: "figure12", Description: "Refinement progress: stochastic refinement vs local search (Figure 12)", Run: Figure12},
		{Name: "figure16", Description: "Effect of the convergence threshold ω (Figure 16)", Run: Figure16},
		{Name: "figure17", Description: "CRA quality on Theory 2008 (Figure 17)", Run: Figure17},
		{Name: "figure18", Description: "CRA quality on the 2009 datasets (Figure 18)", Run: Figure18},
		{Name: "table7", Description: "Lowest per-paper coverage score (Table 7)", Run: Table7},
		{Name: "casestudies", Description: "Per-paper case studies (Figures 19 and 20)", Run: CaseStudies},
		{Name: "figure21", Description: "Alternative scoring functions and h-index scaling (Figure 21)", Run: Figure21},
	}
}

// Lookup finds a runner by name (case-insensitive).
func Lookup(name string) (Runner, bool) {
	name = strings.ToLower(name)
	for _, r := range Registry() {
		if r.Name == name {
			return r, true
		}
	}
	return Runner{}, false
}

// Names returns the registered experiment names in order.
func Names() []string {
	var out []string
	for _, r := range Registry() {
		out = append(out, r.Name)
	}
	return out
}

// RunAll executes every registered experiment and writes the results to w.
func RunAll(cfg Config, w io.Writer) error {
	for _, r := range Registry() {
		res, err := r.Run(cfg)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", r.Name, err)
		}
		if _, err := io.WriteString(w, res.String()); err != nil {
			return err
		}
	}
	return nil
}

// formatDuration renders a duration in seconds with millisecond resolution.
func formatDuration(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}

// formatRatio renders a ratio as a percentage.
func formatRatio(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// sortedKeys returns the sorted keys of a string-keyed map (deterministic
// table output).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
