package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/cra"
	"repro/internal/eval"
)

// conference identifies one simulated conference of Table 3.
type conference struct {
	area corpus.Area
	year int
}

func (c conference) String() string { return fmt.Sprintf("%s%02d", c.area, c.year%100) }

// craMethods returns the six methods of the CRA experiments in the paper's
// order: SM, ILP, BRGG, Greedy, SDGA and SDGA-SRA.
func craMethods(seed int64) []cra.Algorithm {
	return []cra.Algorithm{
		cra.StableMatching{},
		cra.PairILP{},
		cra.BRGG{},
		cra.Greedy{},
		cra.SDGA{},
		cra.WithRefiner{Base: cra.SDGA{}, Refiner: cra.SRA{Omega: 10, Seed: seed}},
	}
}

// loadDataset builds the scaled dataset of a conference.
func loadDataset(cfg Config, c conference) (*corpus.Dataset, error) {
	gen := corpus.NewGenerator(cfg.generatorConfig())
	return gen.Dataset(c.area, c.year)
}

// craRun holds one (conference, δp, method) measurement.
type craRun struct {
	assignment *core.Assignment
	elapsed    time.Duration
}

// runConference executes every method on one conference and group size.
func runConference(cfg Config, d *corpus.Dataset, delta int) (*core.Instance, map[string]craRun, error) {
	in := d.Instance(delta, 0)
	out := make(map[string]craRun)
	for _, alg := range craMethods(cfg.Seed) {
		start := time.Now()
		a, err := alg.Assign(in)
		if err != nil {
			return nil, nil, fmt.Errorf("%s on %s: %w", alg.Name(), d.Area, err)
		}
		out[alg.Name()] = craRun{assignment: a, elapsed: time.Since(start)}
	}
	return in, out, nil
}

// methodOrder is the column order used by the CRA tables.
var methodOrder = []string{"SM", "ILP", "BRGG", "Greedy", "SDGA", "SDGA-SRA"}

// Table4 reports the response time of the six CRA methods on the Databases
// and Data Mining conferences of 2008 for δp ∈ {3, 5} (Table 4 of the paper).
func Table4(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	deltas := []int{3, 5}
	if cfg.Quick {
		deltas = []int{3}
	}
	t := NewTable("Table 4: CRA response time (seconds)", append([]string{"dataset", "δp"}, methodOrder...)...)
	for _, c := range []conference{{corpus.Databases, 2008}, {corpus.DataMining, 2008}} {
		d, err := loadDataset(cfg, c)
		if err != nil {
			return nil, err
		}
		for _, delta := range deltas {
			_, runs, err := runConference(cfg, d, delta)
			if err != nil {
				return nil, err
			}
			row := []string{c.String(), fmt.Sprintf("%d", delta)}
			for _, m := range methodOrder {
				row = append(row, formatDuration(runs[m].elapsed))
			}
			t.AddRow(row...)
		}
	}
	return &Result{Name: "table4", Description: "CRA response times", Tables: []*Table{t}}, nil
}

// qualityTable builds the optimality-ratio table of one conference across the
// configured group sizes (Figures 10, 17 and 18).
func qualityTable(cfg Config, c conference) (*Table, error) {
	d, err := loadDataset(cfg, c)
	if err != nil {
		return nil, err
	}
	t := NewTable(fmt.Sprintf("Optimality ratio — %s", c), append([]string{"δp"}, methodOrder...)...)
	for _, delta := range cfg.GroupSizes {
		in, runs, err := runConference(cfg, d, delta)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", delta)}
		for _, m := range methodOrder {
			row = append(row, formatRatio(eval.OptimalityRatio(in, runs[m].assignment)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// superiorityTable builds the superiority-ratio table of SDGA-SRA over the
// four baselines (Figure 11).
func superiorityTable(cfg Config, c conference) (*Table, error) {
	d, err := loadDataset(cfg, c)
	if err != nil {
		return nil, err
	}
	baselines := []string{"SM", "ILP", "BRGG", "Greedy"}
	cols := []string{"δp"}
	for _, b := range baselines {
		cols = append(cols, "vs "+b, "ties "+b)
	}
	t := NewTable(fmt.Sprintf("Superiority ratio of SDGA-SRA — %s", c), cols...)
	for _, delta := range cfg.GroupSizes {
		in, runs, err := runConference(cfg, d, delta)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", delta)}
		best := runs["SDGA-SRA"].assignment
		for _, b := range baselines {
			s := eval.SuperiorityRatio(in, best, runs[b].assignment)
			row = append(row, formatRatio(s.BetterOrEqual), formatRatio(s.Ties))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Figure10 reports the optimality ratio on the Databases and Data Mining
// conferences of 2008.
func Figure10(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	var tables []*Table
	for _, c := range []conference{{corpus.Databases, 2008}, {corpus.DataMining, 2008}} {
		t, err := qualityTable(cfg, c)
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	return &Result{Name: "figure10", Description: "optimality ratio, 2008 datasets", Tables: tables}, nil
}

// Figure11 reports the superiority ratio of SDGA-SRA over the baselines on
// the 2008 Databases and Data Mining conferences.
func Figure11(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	var tables []*Table
	for _, c := range []conference{{corpus.Databases, 2008}, {corpus.DataMining, 2008}} {
		t, err := superiorityTable(cfg, c)
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	return &Result{Name: "figure11", Description: "superiority ratio, 2008 datasets", Tables: tables}, nil
}

// Figure17 reports the optimality and superiority ratios on Theory 2008.
func Figure17(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	c := conference{corpus.Theory, 2008}
	q, err := qualityTable(cfg, c)
	if err != nil {
		return nil, err
	}
	s, err := superiorityTable(cfg, c)
	if err != nil {
		return nil, err
	}
	return &Result{Name: "figure17", Description: "CRA quality, Theory 2008", Tables: []*Table{q, s}}, nil
}

// Figure18 reports the optimality and superiority ratios on the three 2009
// conferences.
func Figure18(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	confs := []conference{{corpus.Theory, 2009}, {corpus.Databases, 2009}, {corpus.DataMining, 2009}}
	if cfg.Quick {
		confs = confs[:1]
	}
	var tables []*Table
	for _, c := range confs {
		q, err := qualityTable(cfg, c)
		if err != nil {
			return nil, err
		}
		s, err := superiorityTable(cfg, c)
		if err != nil {
			return nil, err
		}
		tables = append(tables, q, s)
	}
	return &Result{Name: "figure18", Description: "CRA quality, 2009 datasets", Tables: tables}, nil
}

// Table7 reports the lowest per-paper coverage score of every method on all
// six conferences (Table 7 of Appendix C).
func Table7(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	confs := []conference{
		{corpus.Databases, 2008}, {corpus.DataMining, 2008}, {corpus.Theory, 2008},
		{corpus.Databases, 2009}, {corpus.DataMining, 2009}, {corpus.Theory, 2009},
	}
	if cfg.Quick {
		confs = confs[:2]
	}
	cols := append([]string{"dataset", "δp"}, "SM", "ILP", "BRGG", "Greedy", "SDGA-SRA")
	t := NewTable("Table 7: lowest per-paper coverage score", cols...)
	for _, c := range confs {
		d, err := loadDataset(cfg, c)
		if err != nil {
			return nil, err
		}
		for _, delta := range cfg.GroupSizes {
			in, runs, err := runConference(cfg, d, delta)
			if err != nil {
				return nil, err
			}
			row := []string{c.String(), fmt.Sprintf("%d", delta)}
			for _, m := range []string{"SM", "ILP", "BRGG", "Greedy", "SDGA-SRA"} {
				row = append(row, fmt.Sprintf("%.2f", eval.LowestCoverage(in, runs[m].assignment)))
			}
			t.AddRow(row...)
		}
	}
	return &Result{Name: "table7", Description: "lowest coverage scores", Tables: []*Table{t}}, nil
}

// CaseStudies reproduces the per-paper breakdowns of Figures 19 and 20: for
// the papers where SDGA-SRA improves most over Greedy, report the assigned
// reviewers and the per-topic coverage of each method's group.
func CaseStudies(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	d, err := loadDataset(cfg, conference{corpus.Databases, 2008})
	if err != nil {
		return nil, err
	}
	delta := cfg.GroupSizes[0]
	in, runs, err := runConference(cfg, d, delta)
	if err != nil {
		return nil, err
	}
	best := runs["SDGA-SRA"].assignment
	greedy := runs["Greedy"].assignment
	bestScores := in.PaperScores(best)
	greedyScores := in.PaperScores(greedy)
	// Pick the two papers with the largest improvement (the paper picks an
	// anonymisation paper and an XML paper by hand).
	pick := []int{0, 0}
	for p := range bestScores {
		if bestScores[p]-greedyScores[p] > bestScores[pick[0]]-greedyScores[pick[0]] {
			pick[1] = pick[0]
			pick[0] = p
		} else if p != pick[0] && bestScores[p]-greedyScores[p] > bestScores[pick[1]]-greedyScores[pick[1]] {
			pick[1] = p
		}
	}
	var tables []*Table
	for i, p := range pick {
		t := NewTable(fmt.Sprintf("Case study %d: %q", i+1, in.Papers[p].Title),
			"method", "score", "reviewers", "top-topic coverage")
		for _, m := range []string{"ILP", "BRGG", "Greedy", "SDGA-SRA"} {
			cs := eval.NewCaseStudy(in, runs[m].assignment, p, m, 5)
			names := ""
			for j, r := range cs.Reviewers {
				if j > 0 {
					names += ", "
				}
				names += r.Name
			}
			coverage := ""
			for j, topic := range cs.Topics {
				if j > 0 {
					coverage += " "
				}
				coverage += fmt.Sprintf("t%d:%.2f/%.2f", topic, cs.GroupWeight[j], cs.PaperWeight[j])
			}
			t.AddRow(m, fmt.Sprintf("%.2f", cs.Score), names, coverage)
		}
		tables = append(tables, t)
	}
	return &Result{Name: "casestudies", Description: "per-paper case studies", Tables: tables}, nil
}

// Figure21 evaluates the alternative scoring functions of Appendix B (cR, cP,
// cD) and the h-index scaling of Equation 15 on the Databases 2008 dataset.
func Figure21(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	d, err := loadDataset(cfg, conference{corpus.Databases, 2008})
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name  string
		score core.ScoreFunc
		scale bool
	}{
		{"reviewer coverage cR", core.ReviewerCoverage, false},
		{"paper coverage cP", core.PaperCoverage, false},
		{"dot-product cD", core.DotProduct, false},
		{"h-index scaled (weighted c)", core.WeightedCoverage, true},
	}
	if cfg.Quick {
		variants = variants[:2]
	}
	var tables []*Table
	for _, v := range variants {
		papers := d.Papers
		reviewers := d.Reviewers
		if v.scale {
			reviewers = corpus.ScaleByHIndex(reviewers)
		}
		t := NewTable(fmt.Sprintf("Figure 21: optimality ratio under %s", v.name), append([]string{"δp"}, methodOrder...)...)
		for _, delta := range cfg.GroupSizes {
			in := core.NewInstance(papers, reviewers, delta, 0)
			in.Workload = in.MinWorkload()
			in.Score = v.score
			row := []string{fmt.Sprintf("%d", delta)}
			for _, alg := range craMethods(cfg.Seed) {
				a, err := alg.Assign(in)
				if err != nil {
					return nil, fmt.Errorf("%s under %s: %w", alg.Name(), v.name, err)
				}
				row = append(row, formatRatio(eval.OptimalityRatio(in, a)))
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return &Result{Name: "figure21", Description: "alternative scoring functions and h-index scaling", Tables: tables}, nil
}
