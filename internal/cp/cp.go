// Package cp is a small finite-domain constraint-programming solver:
// integer variables with explicit domains, propagating constraints
// (all-different, strictly-increasing chains) and a depth-first
// branch-and-bound search that maximises a user objective.
//
// It stands in for the commercial CP solver (IBM CPLEX CP Optimizer) that the
// paper compares against in Section 5.1. As the paper observes, generic
// constraint programming lacks a tight, problem-specific upper bound for the
// group-coverage objective; this solver therefore supports an optional bound
// callback but the JRA model in internal/jra deliberately supplies only a
// loose one, mirroring that observation.
package cp

import (
	"errors"
	"sort"
)

// Model is a constraint satisfaction/optimisation model.
type Model struct {
	domains     [][]int
	constraints []Constraint
}

// Constraint restricts the joint values of the model variables. Feasible is
// called with a partial assignment (unassigned entries are -1 sentinel via
// the assigned mask) and must return false only when the partial assignment
// can provably not be extended to a solution.
type Constraint interface {
	Feasible(values []int, assigned []bool) bool
}

// Objective scores a complete assignment; the solver maximises it.
type Objective func(values []int) float64

// Bound optionally overestimates the best objective reachable from a partial
// assignment. Returning +Inf (or any large value) keeps the node alive; tight
// bounds prune. A nil bound disables pruning entirely.
type Bound func(values []int, assigned []bool) float64

// Solution of a CP optimisation run.
type Solution struct {
	Values    []int
	Objective float64
	// Nodes is the number of search nodes visited.
	Nodes int
	// FirstFeasibleNodes is the number of nodes visited until the first
	// feasible complete assignment was found (the paper reports "time to
	// first feasible" for the CP baseline).
	FirstFeasibleNodes int
}

// ErrNoSolution is returned when the model admits no complete assignment.
var ErrNoSolution = errors.New("cp: no solution")

// NewModel creates an empty model.
func NewModel() *Model { return &Model{} }

// AddVar adds a variable with the given domain and returns its index.
func (m *Model) AddVar(domain []int) int {
	d := append([]int(nil), domain...)
	sort.Ints(d)
	m.domains = append(m.domains, d)
	return len(m.domains) - 1
}

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.domains) }

// Add registers a constraint.
func (m *Model) Add(c Constraint) { m.constraints = append(m.constraints, c) }

// AllDifferent forces the listed variables to take pairwise distinct values.
type AllDifferent struct{ Vars []int }

// Feasible implements Constraint with pairwise checks over assigned variables.
func (c AllDifferent) Feasible(values []int, assigned []bool) bool {
	seen := make(map[int]bool, len(c.Vars))
	for _, v := range c.Vars {
		if !assigned[v] {
			continue
		}
		if seen[values[v]] {
			return false
		}
		seen[values[v]] = true
	}
	return true
}

// StrictlyIncreasing forces consecutive listed variables to take strictly
// increasing values; the canonical symmetry-breaking constraint for selecting
// a set with ordered slots.
type StrictlyIncreasing struct{ Vars []int }

// Feasible implements Constraint over adjacent assigned pairs.
func (c StrictlyIncreasing) Feasible(values []int, assigned []bool) bool {
	for i := 1; i < len(c.Vars); i++ {
		a, b := c.Vars[i-1], c.Vars[i]
		if assigned[a] && assigned[b] && values[a] >= values[b] {
			return false
		}
	}
	return true
}

// Forbidden excludes a specific value from a variable's domain dynamically
// (e.g. conflicts of interest).
type Forbidden struct {
	Var   int
	Value int
}

// Feasible implements Constraint.
func (c Forbidden) Feasible(values []int, assigned []bool) bool {
	return !assigned[c.Var] || values[c.Var] != c.Value
}

// Options for the search.
type Options struct {
	// Objective to maximise. Required for Maximize.
	Objective Objective
	// Bound prunes partial assignments; nil disables pruning.
	Bound Bound
	// ValueOrder optionally orders the domain values tried for a variable,
	// best first. Nil keeps the ascending domain order.
	ValueOrder func(variable int, domain []int) []int
	// MaxNodes caps the search (0 = 10,000,000).
	MaxNodes int
}

// ErrNodeLimit is returned when the node budget is exhausted; the best
// incumbent found so far (if any) is still returned.
var ErrNodeLimit = errors.New("cp: node limit exceeded")

// Maximize searches for the complete assignment maximising the objective.
func (m *Model) Maximize(opts Options) (*Solution, error) {
	if opts.Objective == nil {
		return nil, errors.New("cp: Objective is required")
	}
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = 10_000_000
	}
	n := m.NumVars()
	values := make([]int, n)
	assigned := make([]bool, n)
	best := &Solution{Objective: -1e308}
	found := false
	nodes := 0
	firstFeasible := 0

	var dfs func(depth int) error
	dfs = func(depth int) error {
		if nodes >= maxNodes {
			return ErrNodeLimit
		}
		if depth == n {
			obj := opts.Objective(values)
			if !found {
				firstFeasible = nodes
			}
			if !found || obj > best.Objective {
				best.Values = append([]int(nil), values...)
				best.Objective = obj
			}
			found = true
			return nil
		}
		domain := m.domains[depth]
		if opts.ValueOrder != nil {
			domain = opts.ValueOrder(depth, domain)
		}
		for _, v := range domain {
			values[depth] = v
			assigned[depth] = true
			nodes++
			ok := true
			for _, c := range m.constraints {
				if !c.Feasible(values, assigned) {
					ok = false
					break
				}
			}
			if ok && found && opts.Bound != nil {
				if opts.Bound(values, assigned) <= best.Objective+1e-12 {
					ok = false
				}
			}
			if ok {
				if err := dfs(depth + 1); err != nil {
					assigned[depth] = false
					return err
				}
			}
			assigned[depth] = false
		}
		return nil
	}
	err := dfs(0)
	if err != nil && !found {
		return nil, err
	}
	if !found {
		return nil, ErrNoSolution
	}
	best.Nodes = nodes
	best.FirstFeasibleNodes = firstFeasible
	return best, err
}
