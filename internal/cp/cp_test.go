package cp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaximizeSimpleSelection(t *testing.T) {
	// Pick 2 distinct, increasing indices out of 4 maximising weights.
	weights := []float64{0.1, 0.9, 0.5, 0.7}
	m := NewModel()
	dom := []int{0, 1, 2, 3}
	v0 := m.AddVar(dom)
	v1 := m.AddVar(dom)
	m.Add(AllDifferent{Vars: []int{v0, v1}})
	m.Add(StrictlyIncreasing{Vars: []int{v0, v1}})
	sol, err := m.Maximize(Options{Objective: func(vals []int) float64 {
		return weights[vals[0]] + weights[vals[1]]
	}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-1.6) > 1e-9 {
		t.Fatalf("objective = %v, want 1.6", sol.Objective)
	}
	if sol.Values[0] != 1 || sol.Values[1] != 3 {
		t.Fatalf("values = %v", sol.Values)
	}
	if sol.Nodes <= 0 || sol.FirstFeasibleNodes <= 0 || sol.FirstFeasibleNodes > sol.Nodes {
		t.Fatalf("node accounting wrong: %+v", sol)
	}
}

func TestForbiddenConstraint(t *testing.T) {
	m := NewModel()
	v := m.AddVar([]int{0, 1, 2})
	m.Add(Forbidden{Var: v, Value: 2})
	sol, err := m.Maximize(Options{Objective: func(vals []int) float64 { return float64(vals[0]) }})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Values[0] != 1 {
		t.Fatalf("values = %v, want [1]", sol.Values)
	}
}

func TestNoSolution(t *testing.T) {
	m := NewModel()
	v0 := m.AddVar([]int{0})
	v1 := m.AddVar([]int{0})
	m.Add(AllDifferent{Vars: []int{v0, v1}})
	if _, err := m.Maximize(Options{Objective: func([]int) float64 { return 0 }}); err != ErrNoSolution {
		t.Fatalf("err = %v, want ErrNoSolution", err)
	}
}

func TestObjectiveRequired(t *testing.T) {
	m := NewModel()
	m.AddVar([]int{0})
	if _, err := m.Maximize(Options{}); err == nil {
		t.Fatal("missing objective accepted")
	}
}

func TestNodeLimit(t *testing.T) {
	m := NewModel()
	dom := make([]int, 30)
	for i := range dom {
		dom[i] = i
	}
	for i := 0; i < 4; i++ {
		m.AddVar(dom)
	}
	m.Add(AllDifferent{Vars: []int{0, 1, 2, 3}})
	_, err := m.Maximize(Options{
		Objective: func(vals []int) float64 { return float64(vals[0]) },
		MaxNodes:  5,
	})
	if err != ErrNodeLimit {
		t.Fatalf("err = %v, want ErrNodeLimit", err)
	}
}

func TestBoundPruningPreservesOptimum(t *testing.T) {
	weights := []float64{0.3, 0.8, 0.2, 0.9, 0.1}
	build := func() (*Model, Options) {
		m := NewModel()
		dom := []int{0, 1, 2, 3, 4}
		v0 := m.AddVar(dom)
		v1 := m.AddVar(dom)
		m.Add(AllDifferent{Vars: []int{v0, v1}})
		m.Add(StrictlyIncreasing{Vars: []int{v0, v1}})
		opts := Options{Objective: func(vals []int) float64 {
			return weights[vals[0]] + weights[vals[1]]
		}}
		return m, opts
	}
	m1, o1 := build()
	plain, err := m1.Maximize(o1)
	if err != nil {
		t.Fatal(err)
	}
	m2, o2 := build()
	o2.Bound = func(values []int, assigned []bool) float64 {
		// Assigned weights plus the best possible remaining weight.
		s := 0.0
		unassigned := 0
		for i := range assigned {
			if i < 2 && assigned[i] {
				s += weights[values[i]]
			} else if i < 2 {
				unassigned++
			}
		}
		return s + float64(unassigned)*0.9
	}
	pruned, err := m2.Maximize(o2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.Objective-pruned.Objective) > 1e-9 {
		t.Fatalf("bound changed the optimum: %v vs %v", plain.Objective, pruned.Objective)
	}
	if pruned.Nodes > plain.Nodes {
		t.Fatalf("bound did not prune: %d > %d nodes", pruned.Nodes, plain.Nodes)
	}
}

func TestValueOrderAffectsFirstFeasible(t *testing.T) {
	m := NewModel()
	dom := []int{0, 1, 2, 3, 4, 5}
	m.AddVar(dom)
	sol, err := m.Maximize(Options{
		Objective: func(vals []int) float64 { return float64(vals[0]) },
		ValueOrder: func(_ int, d []int) []int {
			out := append([]int(nil), d...)
			for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
				out[i], out[j] = out[j], out[i]
			}
			return out
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.FirstFeasibleNodes != 1 {
		t.Fatalf("best-first value order should hit feasible at node 1, got %d", sol.FirstFeasibleNodes)
	}
	if sol.Objective != 5 {
		t.Fatalf("objective = %v", sol.Objective)
	}
}

// Property: CP optimum for "choose k of n" equals brute-force enumeration.
func TestCPMatchesBruteForceSelection(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		k := 1 + rng.Intn(3)
		if k > n {
			k = n
		}
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = rng.Float64()
		}
		m := NewModel()
		dom := make([]int, n)
		for i := range dom {
			dom[i] = i
		}
		vars := make([]int, k)
		for i := 0; i < k; i++ {
			vars[i] = m.AddVar(dom)
		}
		m.Add(AllDifferent{Vars: vars})
		m.Add(StrictlyIncreasing{Vars: vars})
		sol, err := m.Maximize(Options{Objective: func(vals []int) float64 {
			s := 0.0
			for _, v := range vals {
				s += weights[v]
			}
			return s
		}})
		if err != nil {
			return false
		}
		// Brute force: sum of k largest weights.
		sorted := append([]float64(nil), weights...)
		for i := 0; i < len(sorted); i++ {
			for j := i + 1; j < len(sorted); j++ {
				if sorted[j] > sorted[i] {
					sorted[i], sorted[j] = sorted[j], sorted[i]
				}
			}
		}
		want := 0.0
		for i := 0; i < k; i++ {
			want += sorted[i]
		}
		return math.Abs(sol.Objective-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
