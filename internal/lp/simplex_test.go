package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOrFail(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return s
}

func TestSolveSimpleLE(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6.
	p := NewProblem(2)
	p.Objective = []float64{3, 2}
	p.AddConstraint([]float64{1, 1}, LE, 4)
	p.AddConstraint([]float64{1, 3}, LE, 6)
	s := solveOrFail(t, p)
	if math.Abs(s.Objective-12) > 1e-6 {
		t.Fatalf("objective = %v, want 12", s.Objective)
	}
	if math.Abs(s.X[0]-4) > 1e-6 || math.Abs(s.X[1]) > 1e-6 {
		t.Fatalf("x = %v, want [4 0]", s.X)
	}
}

func TestSolveWithEquality(t *testing.T) {
	// max x + y s.t. x + y = 2, x <= 1.5.
	p := NewProblem(2)
	p.Objective = []float64{1, 1}
	p.AddConstraint([]float64{1, 1}, EQ, 2)
	p.AddConstraint([]float64{1, 0}, LE, 1.5)
	s := solveOrFail(t, p)
	if math.Abs(s.Objective-2) > 1e-6 {
		t.Fatalf("objective = %v, want 2", s.Objective)
	}
	if math.Abs(s.X[0]+s.X[1]-2) > 1e-6 {
		t.Fatalf("equality violated: %v", s.X)
	}
}

func TestSolveWithGE(t *testing.T) {
	// max -x (i.e. minimise x) s.t. x >= 3.
	p := NewProblem(1)
	p.Objective = []float64{-1}
	p.AddConstraint([]float64{1}, GE, 3)
	p.AddConstraint([]float64{1}, LE, 10)
	s := solveOrFail(t, p)
	if math.Abs(s.X[0]-3) > 1e-6 {
		t.Fatalf("x = %v, want 3", s.X[0])
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.Objective = []float64{1}
	p.AddConstraint([]float64{1}, GE, 5)
	p.AddConstraint([]float64{1}, LE, 1)
	if _, err := p.Solve(); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveUnbounded(t *testing.T) {
	p := NewProblem(1)
	p.Objective = []float64{1}
	p.AddConstraint([]float64{1}, GE, 0)
	if _, err := p.Solve(); err != ErrUnbounded {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// x - y <= -1 with x,y in [0,5], maximise x.
	p := NewProblem(2)
	p.Objective = []float64{1, 0}
	p.AddConstraint([]float64{1, -1}, LE, -1)
	p.SetUpperBound(0, 5)
	p.SetUpperBound(1, 5)
	s := solveOrFail(t, p)
	if math.Abs(s.Objective-4) > 1e-6 {
		t.Fatalf("objective = %v, want 4", s.Objective)
	}
	if s.X[0]-s.X[1] > -1+1e-6 {
		t.Fatalf("constraint violated: %v", s.X)
	}
}

func TestUpperBounds(t *testing.T) {
	p := NewProblem(2)
	p.Objective = []float64{1, 1}
	p.SetUpperBound(0, 0.5)
	p.SetUpperBound(1, 0.25)
	s := solveOrFail(t, p)
	if math.Abs(s.Objective-0.75) > 1e-6 {
		t.Fatalf("objective = %v, want 0.75", s.Objective)
	}
}

func TestEmptyProblem(t *testing.T) {
	s, err := NewProblem(0).Solve()
	if err != nil || s.Objective != 0 {
		t.Fatalf("empty problem: %v %v", s, err)
	}
}

func TestConstraintLengthMismatch(t *testing.T) {
	p := NewProblem(2)
	p.Objective = []float64{1, 1}
	p.Constraints = append(p.Constraints, Constraint{Coeffs: []float64{1}, Rel: LE, RHS: 1})
	if _, err := p.Solve(); err == nil {
		t.Fatal("mismatched constraint accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := NewProblem(2)
	p.Objective = []float64{1, 2}
	p.AddConstraint([]float64{1, 1}, LE, 3)
	p.SetUpperBound(0, 1)
	c := p.Clone()
	c.Objective[0] = 99
	c.Constraints[0].RHS = 99
	c.UpperBounds[0] = 99
	if p.Objective[0] != 1 || p.Constraints[0].RHS != 3 || p.UpperBounds[0] != 1 {
		t.Fatal("Clone shares storage with the original")
	}
}

// knapsackLP builds the fractional relaxation of a random knapsack.
func knapsackLP(rng *rand.Rand, n int) (*Problem, []float64, []float64, float64) {
	values := make([]float64, n)
	weights := make([]float64, n)
	for i := range values {
		values[i] = 1 + rng.Float64()*9
		weights[i] = 1 + rng.Float64()*9
	}
	capacity := 0.4 * sum(weights)
	p := NewProblem(n)
	copy(p.Objective, values)
	p.AddConstraint(weights, LE, capacity)
	for i := 0; i < n; i++ {
		p.SetUpperBound(i, 1)
	}
	return p, values, weights, capacity
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Property: the LP optimum of a fractional knapsack equals the greedy
// density solution, and every returned point is feasible.
func TestFractionalKnapsackMatchesGreedy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		p, values, weights, capacity := knapsackLP(rng, n)
		s, err := p.Solve()
		if err != nil {
			return false
		}
		// Feasibility.
		w := 0.0
		for i, x := range s.X {
			if x < -1e-7 || x > 1+1e-7 {
				return false
			}
			w += x * weights[i]
		}
		if w > capacity+1e-6 {
			return false
		}
		// Greedy optimum by value density.
		idx := rng.Perm(n)
		_ = idx
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if values[order[j]]/weights[order[j]] > values[order[i]]/weights[order[i]] {
					order[i], order[j] = order[j], order[i]
				}
			}
		}
		remaining := capacity
		want := 0.0
		for _, i := range order {
			take := math.Min(1, remaining/weights[i])
			if take <= 0 {
				break
			}
			want += take * values[i]
			remaining -= take * weights[i]
		}
		return math.Abs(s.Objective-want) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the simplex optimum is at least as good as any random feasible
// point of a random LE-only LP.
func TestSimplexDominatesRandomFeasiblePoints(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		p := NewProblem(n)
		for j := range p.Objective {
			p.Objective[j] = rng.Float64() * 5
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = 0.2 + rng.Float64()
			}
			p.AddConstraint(row, LE, 1+rng.Float64()*5)
		}
		for j := 0; j < n; j++ {
			p.SetUpperBound(j, 3)
		}
		s, err := p.Solve()
		if err != nil {
			return false
		}
		// Sample random feasible points by scaling random directions.
		for trial := 0; trial < 20; trial++ {
			x := make([]float64, n)
			for j := range x {
				x[j] = rng.Float64() * 3
			}
			// Scale down until feasible.
			scale := 1.0
			for _, c := range p.Constraints {
				lhs := 0.0
				for j := range x {
					lhs += c.Coeffs[j] * x[j]
				}
				if lhs > c.RHS && lhs > 0 {
					if s := c.RHS / lhs; s < scale {
						scale = s
					}
				}
			}
			val := 0.0
			for j := range x {
				val += p.Objective[j] * x[j] * scale
			}
			if val > s.Objective+1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
