// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	maximize   cᵀx
//	subject to A x (<=, =, >=) b,   x >= 0
//
// It is the substrate of the ILP baseline used in the paper's JRA experiments
// (Section 5.1): internal/ilp branches on fractional binaries and calls this
// solver for every LP relaxation, mirroring the lp_solve-based baseline.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation of a constraint row to its right-hand side.
type Relation int

// Constraint relations.
const (
	LE Relation = iota // <=
	GE                 // >=
	EQ                 // =
)

// Constraint is a single row aᵀx (rel) b.
type Constraint struct {
	Coeffs []float64
	Rel    Relation
	RHS    float64
}

// Problem is a linear program over n non-negative variables.
type Problem struct {
	// Objective holds the coefficients of the maximisation objective.
	Objective []float64
	// Constraints holds the rows of the program.
	Constraints []Constraint
	// UpperBounds optionally bounds each variable from above (NaN = unbounded).
	// Bounds are compiled into explicit <= rows.
	UpperBounds []float64
}

// Solution of a linear program.
type Solution struct {
	// X is the optimal assignment of the variables.
	X []float64
	// Objective is the optimal objective value.
	Objective float64
}

// Errors returned by Solve.
var (
	ErrInfeasible = errors.New("lp: infeasible")
	ErrUnbounded  = errors.New("lp: unbounded")
)

const eps = 1e-9

// NewProblem creates a problem with n variables and a zero objective.
func NewProblem(n int) *Problem {
	return &Problem{Objective: make([]float64, n)}
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return len(p.Objective) }

// AddConstraint appends the row coeffsᵀ x (rel) rhs. The coefficient slice is
// copied; missing trailing coefficients are treated as zero.
func (p *Problem) AddConstraint(coeffs []float64, rel Relation, rhs float64) {
	row := make([]float64, p.NumVars())
	copy(row, coeffs)
	p.Constraints = append(p.Constraints, Constraint{Coeffs: row, Rel: rel, RHS: rhs})
}

// SetUpperBound sets an upper bound for variable i (x_i <= ub).
func (p *Problem) SetUpperBound(i int, ub float64) {
	if p.UpperBounds == nil {
		p.UpperBounds = make([]float64, p.NumVars())
		for j := range p.UpperBounds {
			p.UpperBounds[j] = math.NaN()
		}
	}
	p.UpperBounds[i] = ub
}

// Clone returns a deep copy of the problem; used by the branch-and-bound ILP
// solver to add branching constraints without disturbing the parent node.
func (p *Problem) Clone() *Problem {
	c := &Problem{Objective: append([]float64(nil), p.Objective...)}
	if p.UpperBounds != nil {
		c.UpperBounds = append([]float64(nil), p.UpperBounds...)
	}
	c.Constraints = make([]Constraint, len(p.Constraints))
	for i, row := range p.Constraints {
		c.Constraints[i] = Constraint{
			Coeffs: append([]float64(nil), row.Coeffs...),
			Rel:    row.Rel,
			RHS:    row.RHS,
		}
	}
	return c
}

// Solve maximises the objective with a two-phase tableau simplex and returns
// the optimal solution, ErrInfeasible, or ErrUnbounded.
func (p *Problem) Solve() (*Solution, error) {
	n := p.NumVars()
	if n == 0 {
		return &Solution{}, nil
	}

	rows := make([]Constraint, 0, len(p.Constraints)+n)
	rows = append(rows, p.Constraints...)
	for i, ub := range p.UpperBounds {
		if !math.IsNaN(ub) {
			row := make([]float64, n)
			row[i] = 1
			rows = append(rows, Constraint{Coeffs: row, Rel: LE, RHS: ub})
		}
	}
	for i := range rows {
		if len(rows[i].Coeffs) != n {
			return nil, fmt.Errorf("lp: constraint %d has %d coefficients, want %d", i, len(rows[i].Coeffs), n)
		}
		// Normalise to a non-negative right-hand side.
		if rows[i].RHS < 0 {
			coeffs := make([]float64, n)
			for j, v := range rows[i].Coeffs {
				coeffs[j] = -v
			}
			rel := rows[i].Rel
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
			rows[i] = Constraint{Coeffs: coeffs, Rel: rel, RHS: -rows[i].RHS}
		}
	}

	m := len(rows)
	// Count slack/surplus and artificial variables.
	numSlack := 0
	numArt := 0
	for _, r := range rows {
		switch r.Rel {
		case LE:
			numSlack++
		case GE:
			numSlack++
			numArt++
		case EQ:
			numArt++
		}
	}
	total := n + numSlack + numArt
	// Build tableau: m rows of [coeffs | rhs].
	tab := make([][]float64, m)
	basis := make([]int, m)
	slackIdx := n
	artIdx := n + numSlack
	artCols := make([]int, 0, numArt)
	for i, r := range rows {
		tab[i] = make([]float64, total+1)
		copy(tab[i], r.Coeffs)
		tab[i][total] = r.RHS
		switch r.Rel {
		case LE:
			tab[i][slackIdx] = 1
			basis[i] = slackIdx
			slackIdx++
		case GE:
			tab[i][slackIdx] = -1
			slackIdx++
			tab[i][artIdx] = 1
			basis[i] = artIdx
			artCols = append(artCols, artIdx)
			artIdx++
		case EQ:
			tab[i][artIdx] = 1
			basis[i] = artIdx
			artCols = append(artCols, artIdx)
			artIdx++
		}
	}

	// Phase 1: minimise the sum of artificial variables.
	if numArt > 0 {
		obj := make([]float64, total+1)
		for _, c := range artCols {
			obj[c] = -1 // maximise -(sum of artificials)
		}
		value, err := runSimplex(tab, basis, obj)
		if err != nil {
			return nil, err
		}
		if value < -1e-7 {
			return nil, ErrInfeasible
		}
		// Drive any artificial variables out of the basis if possible.
		for i, b := range basis {
			if !contains(artCols, b) {
				continue
			}
			pivoted := false
			for j := 0; j < n+numSlack; j++ {
				if math.Abs(tab[i][j]) > eps {
					pivot(tab, basis, i, j)
					pivoted = true
					break
				}
			}
			if !pivoted && math.Abs(tab[i][total]) > 1e-7 {
				return nil, ErrInfeasible
			}
		}
	}

	// Phase 2: maximise the real objective.
	obj := make([]float64, total+1)
	copy(obj, p.Objective)
	// Forbid artificial columns from re-entering.
	for _, c := range artCols {
		for i := range tab {
			tab[i][c] = 0
		}
	}
	value, err := runSimplex(tab, basis, obj)
	if err != nil {
		return nil, err
	}

	x := make([]float64, n)
	for i, b := range basis {
		if b < n {
			x[b] = tab[i][total]
		}
	}
	return &Solution{X: x, Objective: value}, nil
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// runSimplex maximises objᵀx over the tableau with the given starting basis,
// mutating tableau and basis, and returns the optimal objective value.
//
// An explicit objective row (reduced costs) is maintained alongside the
// tableau and updated on every pivot, so each iteration is O(m·n) for the
// pivot plus O(n) for the entering-column choice.
func runSimplex(tab [][]float64, basis []int, obj []float64) (float64, error) {
	m := len(tab)
	if m == 0 {
		return 0, nil
	}
	total := len(tab[0]) - 1

	// zrow[j] = c_B B⁻¹ A_j − c_j; zrow[total] = current objective value.
	zrow := make([]float64, total+1)
	for j := 0; j < total; j++ {
		zrow[j] = -obj[j]
	}
	for i := 0; i < m; i++ {
		if cb := obj[basis[i]]; cb != 0 {
			for j := 0; j <= total; j++ {
				zrow[j] += cb * tab[i][j]
			}
		}
	}

	for iter := 0; ; iter++ {
		if iter > 200000 {
			return 0, errors.New("lp: iteration limit exceeded")
		}
		// Dantzig rule: the most negative reduced cost enters.
		enter := -1
		best := -eps
		for j := 0; j < total; j++ {
			if zrow[j] < best-eps {
				best = zrow[j]
				enter = j
			}
		}
		if enter == -1 {
			break // optimal
		}
		// Ratio test with a Bland-style tie break to avoid cycling.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][enter] > eps {
				ratio := tab[i][total] / tab[i][enter]
				if ratio < bestRatio-eps || (math.Abs(ratio-bestRatio) <= eps && (leave == -1 || basis[i] < basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return 0, ErrUnbounded
		}
		pivot(tab, basis, leave, enter)
		// Update the objective row with the same elimination step.
		if f := zrow[enter]; f != 0 {
			prow := tab[leave]
			for j := 0; j <= total; j++ {
				zrow[j] -= f * prow[j]
			}
		}
	}
	value := 0.0
	for i := 0; i < m; i++ {
		value += obj[basis[i]] * tab[i][total]
	}
	return value, nil
}

// pivot performs a Gauss-Jordan pivot on tab[row][col] and updates the basis.
func pivot(tab [][]float64, basis []int, row, col int) {
	p := tab[row][col]
	for j := range tab[row] {
		tab[row][j] /= p
	}
	for i := range tab {
		if i == row {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		for j := range tab[i] {
			tab[i][j] -= f * tab[row][j]
		}
	}
	basis[row] = col
}
